// Regenerates Figure 17 of the paper (high-order stencils).
#include "harness/specs.hpp"

int main(int argc, char** argv) {
  return nustencil::harness::high_order_main(nustencil::harness::fig17(), argc, argv);
}
