// bench/validate_model — simulated-vs-measured cross-validation: runs one
// fully instrumented scheme (traffic recorder, cache simulator, trace
// with per-span sampling, hardware counters in auto mode) and emits the
// Spearman rank correlation between each Tile span's simulated cache
// misses and its measured cache-misses delta.
//
// Absolute counts never agree — the simulator models row-granular
// accesses on a virtual hierarchy while the PMU counts real LLC
// transactions with prefetchers in play — so the check asks only that
// the *ordering* survives: spans the simulator calls miss-heavy should
// measure miss-heavy too.  A high rank correlation means the simulated
// counters the dashboards and stragglers are built on track reality.
//
// Degradation is part of the contract: on hosts with no usable PMU
// (containers, perf_event_paranoid, no vPMU) the tool still exits 0 and
// the JSON records status + reason, so CI can run it unconditionally and
// only upload a meaningful artifact when counters were available.
//
//   validate_model --scheme=nuCATS --out=BENCH_validate.json
#include <fstream>
#include <iostream>
#include <string>

#include "cachesim/shared.hpp"
#include "common/args.hpp"
#include "common/error.hpp"
#include "common/provenance.hpp"
#include "hwc/backend.hpp"
#include "hwc/events.hpp"
#include "metrics/json.hpp"
#include "schemes/scheme.hpp"
#include "topology/machine.hpp"
#include "trace/trace.hpp"

namespace {

using namespace nustencil;

constexpr int kValidateSchemaVersion = 1;

void write_doc(const std::string& path, const schemes::RunConfig& cfg,
               const std::string& scheme, Index edge,
               const hwc::HwRunStats& hw) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "validate_model: cannot open " + path);
  metrics::JsonWriter w(out);
  w.begin_object();
  w.kv("schema_version", kValidateSchemaVersion);
  w.kv("generator", "bench/validate_model");
  const BuildInfo& build = build_info();
  w.key("provenance").begin_object();
  w.kv("git_sha", build.git_sha);
  w.kv("compiler", build.compiler);
  w.kv("build_type", build.build_type);
  w.end_object();
  w.kv("scheme", scheme);
  w.kv("edge", static_cast<std::int64_t>(edge));
  w.kv("threads", cfg.num_threads);
  w.kv("timesteps", static_cast<std::int64_t>(cfg.timesteps));
  w.kv("hw_status", hw.status);
  if (!hw.reason.empty()) w.kv("hw_reason", hw.reason);

  // One flat status for scripts: "ok" only when the correlation actually
  // computed; otherwise the most specific reason available.
  std::string status = "ok";
  std::string reason;
  if (!hw.available(hwc::Event::CacheMisses)) {
    status = "degraded";
    reason = "cache-misses event unavailable" +
             (hw.reason.empty() ? "" : " — " + hw.reason);
  } else if (!hw.validation) {
    status = "degraded";
    reason = "run produced no validation (trace or cache sim missing)";
  } else if (hw.validation->status != "ok") {
    status = "degraded";
    reason = hw.validation->status;
  }
  w.kv("status", status);
  if (!reason.empty()) w.kv("reason", reason);

  if (hw.validation) {
    w.kv("n_spans", hw.validation->n);
    w.kv("rank_correlation", hw.validation->spearman);
    w.key("points").begin_array();
    for (const auto& p : hw.validation->points) {
      w.begin_object();
      w.kv("sim_misses", p[0]);
      w.kv("hw_misses", p[1]);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  out << '\n';
  NUSTENCIL_CHECK(out.good(), "validate_model: write failed for " + path);
}

}  // namespace

int main(int argc, char** argv) try {
  ArgParser args("validate_model",
                 "rank-correlate simulated cache misses against measured "
                 "hardware counters, per span");
  args.add_option("scheme", "scheme to instrument", "nuCATS");
  args.add_option("edge", "cubic domain edge (small: every access is "
                          "cache-simulated)", "24");
  args.add_option("steps", "timesteps", "6");
  args.add_option("threads", "worker threads", "2");
  args.add_option("out", "write the correlation JSON here",
                  "BENCH_validate.json");
  if (!args.parse(argc, argv)) return 0;

  const std::string scheme_name = args.get("scheme");
  const Index edge = static_cast<Index>(
      ArgParser::validate_positive("--edge", args.get_long("edge")));
  const topology::MachineSpec machine = topology::xeonX7550();
  const core::StencilSpec stencil = core::StencilSpec::paper_3d7p();
  const auto scheme = schemes::make_scheme(scheme_name);

  schemes::RunConfig cfg;
  cfg.num_threads = static_cast<int>(
      ArgParser::validate_positive("--threads", args.get_long("threads")));
  cfg.timesteps = ArgParser::validate_positive("--steps",
                                               args.get_long("steps"));
  cfg.instrument = true;
  cfg.machine = &machine;
  cfg.profile_spans = true;
  cfg.hw_mode = hwc::Mode::Auto;  // measure what the host offers
  if (scheme_name == "CATS" || scheme_name == "nuCATS")
    cfg.boundary[2] = core::BoundaryKind::Dirichlet;

  trace::Trace tr;
  cfg.trace = &tr;
  cachesim::SharedHierarchy sim(machine, cfg.num_threads);
  cfg.cache_sim = &sim;

  core::Problem problem(Coord{edge, edge, edge}, stencil);
  const schemes::RunResult run = scheme->run(problem, cfg);

  write_doc(args.get("out"), cfg, scheme_name, edge, run.hw);
  std::cout << "validate_model " << scheme_name << " edge=" << edge
            << ": hw=" << run.hw.status;
  if (run.hw.validation && run.hw.validation->status == "ok")
    std::cout << ", rank correlation " << run.hw.validation->spearman
              << " over " << run.hw.validation->n << " spans";
  else if (!run.hw.reason.empty())
    std::cout << " (" << run.hw.reason << ")";
  std::cout << "\nwrote " << args.get("out") << '\n';
  return 0;  // degradation is graceful by design — the JSON says why
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
