// Regenerates Figure 16 of the paper (high-order stencils).
#include "harness/specs.hpp"

int main(int argc, char** argv) {
  return nustencil::harness::high_order_main(nustencil::harness::fig16(), argc, argv);
}
