// Ablation: thread pinning policy (paper Section IV-B).
//
// The paper pins threads compactly — filling one socket before occupying
// the next — so that a scaling study does not exploit another socket's
// memory bandwidth early.  This bench runs the same schemes under compact
// and scatter pinning and reports the measured per-node demand spread:
// with scatter, 4 threads already put demand on all 4 Xeon memory
// controllers (flattering low-core-count bandwidth numbers) and turns
// inter-tile halo traffic remote, because neighbouring tiles now live on
// different sockets.
//
//   ./ablation_pinning [edge] [threads]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "perf/model.hpp"
#include "schemes/scheme.hpp"

int main(int argc, char** argv) try {
  using namespace nustencil;
  const Index edge = argc > 1 ? std::atol(argv[1]) : 48;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const auto machine = topology::xeonX7550();
  const auto stencil = core::StencilSpec::paper_3d7p();

  Table table("pinning ablation (" + std::to_string(edge) + "^3, " +
              std::to_string(threads) + " threads on the Xeon)");
  table.set_header({"scheme / policy", "locality %", "active nodes", "max node share %"});

  for (const std::string name : {"NaiveSSE", "nuCORALS"}) {
    for (const auto policy : {numa::PinPolicy::Compact, numa::PinPolicy::Scatter}) {
      schemes::RunConfig cfg;
      cfg.num_threads = threads;
      cfg.timesteps = 8;
      cfg.instrument = true;
      cfg.machine = &machine;
      cfg.pin_policy = policy;
      core::Problem problem(Coord{edge, edge, edge}, stencil);
      const auto run = schemes::make_scheme(name)->run(problem, cfg);

      double total = 0.0, peak = 0.0;
      int active = 0;
      for (auto b : run.traffic.bytes_from_node) {
        total += static_cast<double>(b);
        peak = std::max(peak, static_cast<double>(b));
        if (b > 0) ++active;
      }
      table.add_row(name + (policy == numa::PinPolicy::Compact ? " compact" : " scatter"),
                    {run.traffic.locality() * 100.0, static_cast<double>(active),
                     total > 0 ? peak / total * 100.0 : 0.0});
    }
  }
  table.print(std::cout);
  std::cout <<
      "\nScatter spreads the demand across all memory controllers at low\n"
      "thread counts (higher aggregate bandwidth, which is why the paper\n"
      "pins compactly for honest scaling curves).  Owned data stays local\n"
      "under both policies (first touch follows the thread), but scatter\n"
      "places *neighbouring* tiles on different sockets, so halo reads and\n"
      "boundary-page sharing turn remote — visible in the locality column.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
