// Regenerates Figure 10 of the paper. See DESIGN.md's experiment index.
#include "harness/specs.hpp"

int main(int argc, char** argv) {
  return nustencil::harness::figure_main(nustencil::harness::fig10(), argc, argv);
}
