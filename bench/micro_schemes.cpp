// Google-benchmark wall-clock comparison of all nine schemes on this
// host (small domain; thread count = min(4, hardware)).  Real execution,
// real time — complements the modelled figure benches.
#include <benchmark/benchmark.h>

#include <thread>

#include "schemes/scheme.hpp"

namespace {

using namespace nustencil;

int bench_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(4u, hw == 0 ? 1u : hw));
}

void run_scheme(benchmark::State& state, const std::string& name) {
  const Index edge = 48;
  const long steps = 8;
  auto scheme = schemes::make_scheme(name);
  schemes::RunConfig cfg;
  cfg.num_threads = bench_threads();
  cfg.timesteps = steps;
  if (name == "CATS" || name == "nuCATS")
    cfg.boundary[2] = core::BoundaryKind::Dirichlet;
  Index updates = 0;
  for (auto _ : state) {
    core::Problem problem(Coord{edge, edge, edge}, core::StencilSpec::paper_3d7p());
    const auto result = scheme->run(problem, cfg);
    updates += result.updates;
  }
  state.SetItemsProcessed(updates);
  state.counters["Gupdates/s"] =
      benchmark::Counter(static_cast<double>(updates), benchmark::Counter::kIsRate);
}

// Large-tau head-to-head: a deep time loop on a domain whose full
// working set exceeds the LLC, so temporal blocking depth decides the
// winner.  MWD's diamonds reach tau ~ Nz/2s here while the CATS-family
// wavefronts pay a full sweep of memory traffic per layer of their
// (smaller) tile height.
void run_large_tau(benchmark::State& state, const std::string& name) {
  const long steps = 48;
  auto scheme = schemes::make_scheme(name);
  schemes::RunConfig cfg;
  cfg.num_threads = bench_threads();
  cfg.timesteps = steps;
  if (name == "CATS" || name == "nuCATS")
    cfg.boundary[2] = core::BoundaryKind::Dirichlet;
  Index updates = 0;
  for (auto _ : state) {
    core::Problem problem(Coord{64, 64, 96}, core::StencilSpec::paper_3d7p());
    const auto result = scheme->run(problem, cfg);
    updates += result.updates;
  }
  state.SetItemsProcessed(updates);
  state.counters["Gupdates/s"] =
      benchmark::Counter(static_cast<double>(updates), benchmark::Counter::kIsRate);
}

}  // namespace

#define SCHEME_BENCH(NAME, STR)                                             \
  void BM_##NAME(benchmark::State& state) { run_scheme(state, STR); }       \
  BENCHMARK(BM_##NAME)->Unit(benchmark::kMillisecond)->MinTime(0.5)->UseRealTime()

SCHEME_BENCH(NaiveSSE, "NaiveSSE");
SCHEME_BENCH(CATS, "CATS");
SCHEME_BENCH(nuCATS, "nuCATS");
SCHEME_BENCH(CORALS, "CORALS");
SCHEME_BENCH(nuCORALS, "nuCORALS");
SCHEME_BENCH(Pochoir, "Pochoir");
SCHEME_BENCH(PLuTo, "PLuTo");
SCHEME_BENCH(MWD, "MWD");
SCHEME_BENCH(nuMWD, "nuMWD");

#define LARGE_TAU_BENCH(NAME, STR)                                            \
  void BM_LargeTau_##NAME(benchmark::State& state) {                          \
    run_large_tau(state, STR);                                                \
  }                                                                           \
  BENCHMARK(BM_LargeTau_##NAME)->Unit(benchmark::kMillisecond)->MinTime(0.5)->UseRealTime()

LARGE_TAU_BENCH(nuCATS, "nuCATS");
LARGE_TAU_BENCH(nuCORALS, "nuCORALS");
LARGE_TAU_BENCH(nuMWD, "nuMWD");

BENCHMARK_MAIN();
