// Ablation: base parallelogram size (Section III-C, "internal parameters").
//
// The recursion stops above single space-time points because tiny bases
// cost control logic and kill vectorisation; oversized bases stop
// exploiting the upper cache levels.  This bench sweeps the base size and
// reports bases per layer plus real wall-clock throughput on this host —
// the one ablation where the host measurement is directly meaningful,
// since control overhead is a property of the code, not the machine.
//
//   ./ablation_base_size [edge] [threads] [steps]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "schemes/corals_common.hpp"

int main(int argc, char** argv) {
  using namespace nustencil;
  const Index edge = argc > 1 ? std::atol(argv[1]) : 64;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const long steps = argc > 3 ? std::atol(argv[3]) : 16;
  const auto stencil = core::StencilSpec::paper_3d7p();

  Table table("base parallelogram size ablation (" + std::to_string(edge) + "^3, " +
              std::to_string(threads) + " threads, " + std::to_string(steps) +
              " steps)");
  table.set_header({"base (space,time)", "bases/layer", "host Gupdates/s"});

  struct Config {
    Index space;
    long time;
  };
  for (const Config c : {Config{2, 1}, Config{4, 2}, Config{8, 8}, Config{16, 8},
                         Config{32, 16}}) {
    schemes::RunConfig cfg;
    cfg.num_threads = threads;
    cfg.timesteps = steps;
    schemes::CoralsParams params;
    params.name = "engine";
    params.base_space = c.space;
    params.base_time = c.time;
    core::Problem problem(Coord{edge, edge, edge}, stencil);
    const auto run = schemes::run_corals_like(problem, cfg, params);
    table.add_row(std::to_string(c.space) + "," + std::to_string(c.time),
                  {run.details.at("bases_per_layer"), run.gupdates_per_second()});
  }
  table.print(std::cout);
  std::cout << "\nTiny bases drown in control logic and per-step neighbour "
               "scans; the defaults (32x8x8 cells, 8 steps) sit on the flat "
               "part of the curve.\n";
  return 0;
}
