// Ablation: tile-to-thread assignment (Section II's core idea).
//
// Holds everything else fixed — identical parallel first-touch placement,
// identical tiling — and only shifts which thread processes which tile.
// The owner-matched assignment (nuCORALS/nuCATS) keeps traffic local; the
// shifted map (the affinity-blind assignment of the original schemes)
// turns almost all of it remote.  Measured locality makes the mechanism
// behind Figs. 20-22 directly visible.
//
//   ./ablation_assignment [edge] [threads]
#include <algorithm>
#include <cstdlib>
#include <vector>
#include <iostream>

#include "common/table.hpp"
#include "schemes/corals_common.hpp"

int main(int argc, char** argv) {
  using namespace nustencil;
  const Index edge = argc > 1 ? std::atol(argv[1]) : 48;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 16;
  const auto machine = topology::xeonX7550();
  const auto stencil = core::StencilSpec::paper_3d7p();

  Table table("tile assignment ablation (parallelogram engine, " +
              std::to_string(edge) + "^3, " + std::to_string(threads) + " threads)");
  table.set_header({"assignment", "measured locality %", "node-0 demand share %"});

  std::vector<int> shifts = {0, 1, threads / 2};
  shifts.erase(std::unique(shifts.begin(), shifts.end()), shifts.end());
  if (threads == 1) shifts = {0};
  for (const int shift : shifts) {
    schemes::RunConfig cfg;
    cfg.num_threads = threads;
    cfg.timesteps = 10;
    cfg.instrument = true;
    cfg.machine = &machine;
    schemes::CoralsParams params;
    params.name = "engine";
    params.numa_init = true;  // first touch always by the allocating thread
    params.owner_shift = shift;
    core::Problem problem(Coord{edge, edge, edge}, stencil);
    const auto run = schemes::run_corals_like(problem, cfg, params);

    double total = 0.0;
    for (auto b : run.traffic.bytes_from_node) total += static_cast<double>(b);
    const double node0 =
        total > 0 ? static_cast<double>(run.traffic.bytes_from_node[0]) / total : 0.0;
    table.add_row(shift == 0 ? "owner-matched (nuCORALS)"
                             : "shifted by " + std::to_string(shift),
                  {run.traffic.locality() * 100.0, node0 * 100.0});
  }
  table.print(std::cout);
  std::cout << "\nOnly the owner-matched assignment satisfies the data-to-core "
               "affinity requirement; any shift makes the same tiling stream its "
               "data across the interconnect.\n";
  return 0;
}
