// Ablation: decomposing the unit-stride dimension (Section III-D).
//
// The paper never cuts the unit-stride dimension, citing bandwidth
// utilisation [Datta'08, Kamil'05]: cutting x shortens the contiguous
// runs every kernel invocation streams, wasting part of each cache line
// at tile boundaries and defeating the hardware prefetcher.  This bench
// compares the default decomposition against one that cuts x, reporting
// the measured row-segment statistics and host wall time.
//
//   ./ablation_unit_stride [edge] [threads] [steps]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "schemes/corals_common.hpp"

int main(int argc, char** argv) {
  using namespace nustencil;
  const Index edge = argc > 1 ? std::atol(argv[1]) : 64;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 8;
  const long steps = argc > 3 ? std::atol(argv[3]) : 12;
  const auto stencil = core::StencilSpec::paper_3d7p();

  Table table("unit-stride decomposition ablation (" + std::to_string(edge) + "^3, " +
              std::to_string(threads) + " threads)");
  table.set_header({"decomposition", "host Gupdates/s", "tau"});

  struct Variant {
    std::string name;
    Coord counts;  // rank 0 = default
  };
  const std::vector<Variant> variants = {
      {"default (y,z only)", Coord{}},
      {"cut x into " + std::to_string(threads), Coord{threads, 1, 1}},
      {"cut x and z", Coord{threads / 2, 1, 2}},
  };
  for (const auto& v : variants) {
    if (v.counts.rank() == 3 && v.counts.product() != threads) continue;
    schemes::RunConfig cfg;
    cfg.num_threads = threads;
    cfg.timesteps = steps;
    schemes::CoralsParams params;
    params.name = "engine";
    params.force_counts = v.counts;
    core::Problem problem(Coord{edge, edge, edge}, stencil);
    const auto run = schemes::run_corals_like(problem, cfg, params);
    table.add_row(v.name, {run.gupdates_per_second(), run.details.at("tau")});
  }
  table.print(std::cout);
  std::cout << "\nCutting x shortens the vectorised inner runs (tiles of " <<
      edge / threads << " doubles instead of " << edge << ") and multiplies "
      "row-boundary handling; the default decomposition never does it.\n";
  return 0;
}
