// bench/trajectory — the performance-trajectory database front end:
// folds a fresh bench/regress output (and optionally a kernel_report)
// into a candidate entry, gates it against the trailing window of the
// committed history with the noise-aware rule from metrics/trajectory,
// and appends it so the next run has one more point of history.
//
//   trajectory --regress=fresh.json --gate                # gate only
//   trajectory --regress=fresh.json --kernel=bench_kernels.json \
//              --gate --append --out=trajectory_updated.json
#include <iostream>
#include <string>

#include "common/args.hpp"
#include "common/error.hpp"
#include "metrics/trajectory.hpp"

int main(int argc, char** argv) try {
  using namespace nustencil;
  ArgParser args("trajectory",
                 "append-only perf history with a noise-aware trailing-window "
                 "gate");
  args.add_option("db", "trajectory database (missing file = empty history)",
                  "BENCH_trajectory.json");
  args.add_option("regress", "fresh bench/regress output to fold in", "");
  args.add_option("kernel", "optional bench/kernel_report output to fold in",
                  "");
  args.add_option("validate",
                  "optional bench/validate_model output to fold in "
                  "(informational, never gated)",
                  "");
  args.add_option("telemetry-overhead",
                  "optional bench/telemetry_overhead output to fold in "
                  "(informational, never gated)",
                  "");
  args.add_option("out", "write the appended database here (default: --db)",
                  "");
  args.add_option("window", "trailing entries per metric for the gate", "5");
  args.add_option("min-effect",
                  "minimum relative regression the gate flags (kernel "
                  "speedups widen to at least 0.25)",
                  "0.05");
  args.add_option("mad-sigmas", "noise band half-width in robust sigmas",
                  "3.0");
  args.add_flag("gate", "fail (exit 1) on significant regressions vs the "
                        "trailing window");
  args.add_flag("append", "append the candidate entry and write the database");
  if (!args.parse(argc, argv)) return 0;

  const std::string regress_path = args.get("regress");
  NUSTENCIL_CHECK(!regress_path.empty(),
                  "trajectory: --regress=<fresh regress json> is required");

  metrics::TrajectoryEntry candidate =
      metrics::entry_from_regress(metrics::parse_json_file(regress_path));
  if (const std::string kernel = args.get("kernel"); !kernel.empty())
    metrics::merge_kernel_report(candidate, metrics::parse_json_file(kernel));
  if (const std::string validate = args.get("validate"); !validate.empty())
    metrics::merge_validate_model(candidate,
                                  metrics::parse_json_file(validate));
  if (const std::string overhead = args.get("telemetry-overhead");
      !overhead.empty())
    metrics::merge_telemetry_overhead(candidate,
                                      metrics::parse_json_file(overhead));

  metrics::TrajectoryDb db = metrics::load_trajectory(args.get("db"));
  std::cout << "trajectory: " << db.entries.size() << " historical entr"
            << (db.entries.size() == 1 ? "y" : "ies") << " in "
            << args.get("db") << ", candidate '" << candidate.git_sha
            << "' carries " << candidate.metrics.size() << " metric(s)\n";

  bool gate_failed = false;
  if (args.get_flag("gate")) {
    metrics::GateOptions opt;
    opt.window = static_cast<int>(
        ArgParser::validate_positive("--window", args.get_long("window")));
    opt.min_effect_rel = args.get_double("min-effect");
    opt.mad_sigmas = args.get_double("mad-sigmas");
    const metrics::GateResult result =
        metrics::gate_candidate(db, candidate, opt);
    std::cout << metrics::format_gate_console(result);
    gate_failed = !result.pass;
  }

  if (args.get_flag("append")) {
    db.entries.push_back(candidate);
    const std::string out =
        args.get("out").empty() ? args.get("db") : args.get("out");
    metrics::save_trajectory(db, out);
    std::cout << "appended entry; wrote " << db.entries.size()
              << " entries to " << out << '\n';
  }
  return gate_failed ? 1 : 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
