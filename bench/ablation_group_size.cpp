// Ablation: MWD thread-group size x diamond width (tau).
//
// Sweeps every divisor of the thread count (plus "auto" = cores sharing
// one LLC) against a range of tau overrides (plus "auto" = fit the LLC)
// on the nuMWD scheme, and reports wall-clock, the planned geometry
// (tau, ring columns, groups), the busy-time imbalance and the measured
// NUMA locality.  The sweet spot the paper predicts: groups as large as
// one LLC's sharers (so a diamond's working set is cached once, not per
// thread) and tau as deep as that cache allows — larger groups with the
// same tau trade parallel columns for intra-diamond parallelism, while
// forcing tau past the LLC budget turns the diamond back into a
// memory-streaming wavefront.
//
//   ./ablation_group_size [--out=group_size_ablation.json] [--steps=N]
//                         [--threads=N] [--edge=N]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "metrics/json.hpp"
#include "schemes/numwd.hpp"
#include "schemes/scheme.hpp"
#include "topology/machine.hpp"

namespace {

using namespace nustencil;

struct Row {
  int group_request = 0;  // 0 = auto
  long tau_request = 0;   // 0 = auto
  double seconds = 0.0;
  double tau = 0.0;
  double columns = 0.0;
  double group_size = 0.0;
  double groups = 0.0;
  double imbalance = 0.0;
  double locality = 0.0;
};

std::string or_auto(long v) { return v == 0 ? "auto" : std::to_string(v); }

Row run_one(const Coord& shape, long steps, int threads, int group,
            long tau, const topology::MachineSpec& machine) {
  schemes::RunConfig cfg;
  cfg.num_threads = threads;
  cfg.timesteps = steps;
  cfg.group_size = group;
  cfg.instrument = true;
  cfg.collect_phase_metrics = true;
  cfg.machine = &machine;

  core::Problem problem(shape, core::StencilSpec::paper_3d7p());
  const schemes::RunResult run = schemes::NuMwdScheme(tau).run(problem, cfg);

  Row r;
  r.group_request = group;
  r.tau_request = tau;
  r.seconds = run.seconds;
  r.tau = run.details.at("tau");
  r.columns = run.details.at("columns");
  r.group_size = run.details.at("group_size");
  r.groups = run.details.at("groups");
  r.imbalance = run.phases.imbalance();
  r.locality = run.traffic.locality();
  return r;
}

void write_json(const std::vector<Row>& rows, const Coord& shape, long steps,
                int threads, const std::string& path) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "ablation_group_size: cannot open " + path);
  metrics::JsonWriter w(out);
  w.begin_object();
  w.kv("generator", "bench/ablation_group_size");
  w.kv("scheme", "nuMWD");
  std::string s;
  for (int d = 0; d < shape.rank(); ++d) s += (d ? "x" : "") + std::to_string(shape[d]);
  w.kv("shape", s);
  w.kv("timesteps", steps);
  w.kv("threads", threads);
  w.key("cases").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.kv("group_size_request", or_auto(r.group_request));
    w.kv("tau_request", or_auto(r.tau_request));
    w.kv("seconds", r.seconds);
    w.kv("tau", r.tau);
    w.kv("columns", r.columns);
    w.kv("group_size", r.group_size);
    w.kv("groups", r.groups);
    w.kv("imbalance", r.imbalance);
    w.kv("locality", r.locality);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  NUSTENCIL_CHECK(out.good(), "ablation_group_size: write failed for " + path);
}

}  // namespace

int main(int argc, char** argv) try {
  ArgParser args("ablation_group_size",
                 "nuMWD group size x diamond width sweep");
  args.add_option("out", "write results as JSON to this file",
                  "group_size_ablation.json");
  args.add_option("steps", "time steps per run", "24");
  args.add_option("threads", "worker threads", "4");
  args.add_option("edge", "cubic domain edge", "48");
  if (!args.parse(argc, argv)) return 0;

  const auto machine = topology::xeonX7550();
  const int threads =
      ArgParser::validate_thread_count(args.get_long("threads"), machine.cores());
  const long steps = args.get_long("steps");
  const Index edge = ArgParser::validate_positive("--edge", args.get_long("edge"));
  const Coord shape{edge, edge, edge};

  // Every divisor of the thread count, then 0 for "auto".
  std::vector<int> group_sizes;
  for (int g = 1; g <= threads; ++g)
    if (threads % g == 0) group_sizes.push_back(g);
  group_sizes.push_back(0);
  const std::vector<long> taus = {0, 1, 2, 4, 8};

  Table table("nuMWD group size x tau (" + std::to_string(threads) +
              " threads on the Xeon)");
  table.set_header({"group / tau", "seconds", "tau", "columns", "groups",
                    "imbalance", "locality %"});

  std::vector<Row> rows;
  for (const int group : group_sizes) {
    for (const long tau : taus) {
      rows.push_back(run_one(shape, steps, threads, group, tau, machine));
      const Row& r = rows.back();
      table.add_row("g=" + or_auto(group) + " tau=" + or_auto(tau),
                    {r.seconds, r.tau, r.columns, r.groups, r.imbalance,
                     r.locality * 100.0});
    }
  }
  table.print(std::cout);
  write_json(rows, shape, steps, threads, args.get("out"));
  std::cout << "wrote " << args.get("out") << '\n'
            << "\nDeeper tau cuts memory sweeps (traffic ~ 1/tau) until a\n"
               "diamond outgrows the shared LLC; larger groups keep one\n"
               "diamond per cache but need enough ring columns to feed\n"
               "every group, so the auto plan backs tau off when columns\n"
               "would drop below the group count.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
