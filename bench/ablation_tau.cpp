// Ablation: the thread-parallelogram height tau (Section III-C).
//
// tau trades temporal locality (larger tau = deeper time tiling, fewer
// layer barriers, less memory streaming) against data-to-core affinity
// (the fraction of data processed by one thread but allocated by another
// is tau/(2b) per decomposed dimension for s=1).  The paper settles on
// tau = b/(2s), i.e. 75% locality.  This bench sweeps tau and reports the
// *measured* locality plus the modelled per-core performance on the Xeon.
//
//   ./ablation_tau [edge] [threads]
#include <algorithm>
#include <cstdlib>
#include <vector>
#include <iostream>

#include "common/table.hpp"
#include "perf/model.hpp"
#include "schemes/corals_common.hpp"
#include "schemes/nucorals.hpp"

int main(int argc, char** argv) {
  using namespace nustencil;
  const Index edge = argc > 1 ? std::atol(argv[1]) : 48;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 16;
  const auto machine = topology::xeonX7550();
  const auto stencil = core::StencilSpec::paper_3d7p();

  // Default b for this configuration, to express the sweep in b fractions.
  core::Problem probe(Coord{edge, edge, edge}, stencil);
  schemes::RunConfig cfg;
  cfg.num_threads = threads;
  cfg.timesteps = 12;
  cfg.instrument = true;
  cfg.machine = &machine;
  const auto base_run = schemes::NuCoralsScheme().run(probe, cfg);
  const long b = static_cast<long>(base_run.details.at("b"));

  Table table("tau ablation (nuCORALS, " + std::to_string(edge) + "^3, " +
              std::to_string(threads) + " threads; paper default tau=b/2)");
  table.set_header({"tau", "measured locality %", "layers", "model Gup/s per core"});

  std::vector<long> taus = {std::max(1L, b / 8), std::max(1L, b / 4),
                            std::max(1L, b / 2), b, 2 * b};
  taus.erase(std::unique(taus.begin(), taus.end()), taus.end());
  for (const long tau : taus) {
    core::Problem problem(Coord{edge, edge, edge}, stencil);
    const schemes::NuCoralsScheme scheme(tau);
    const auto run = scheme.run(problem, cfg);

    perf::ModelInput in;
    in.machine = &machine;
    in.stencil = &stencil;
    in.threads = threads;
    in.traffic = scheme.estimate_traffic(machine, Coord{200, 200, 200}, stencil,
                                         threads, 100);
    // Larger tau lowers the layer-streaming traffic proportionally.
    in.traffic.mem_doubles_per_update *= static_cast<double>(b / 2) / tau;
    in.locality = run.traffic.locality();
    in.node_demand.assign(run.traffic.bytes_from_node.begin(),
                          run.traffic.bytes_from_node.end());
    in.sync_overhead = perf::scheme_sync_overhead("nuCORALS").first;
    table.add_row("b*" + std::to_string(static_cast<double>(tau) / b).substr(0, 4),
                  {run.traffic.locality() * 100.0,
                   static_cast<double>((cfg.timesteps + tau - 1) / tau),
                   perf::model_scheme(in).gupdates_per_core});
  }
  table.print(std::cout);
  if (machine.active_sockets(threads) == 1)
    std::cout << "\nNOTE: " << threads << " threads fit on one socket of the "
              << machine.name << " — all traffic is node-local regardless of "
                 "tau. Use >= " << machine.cores_per_socket + 1
              << " threads to see the trade-off.\n";
  std::cout << "\nLocality falls as tau grows (tau/2b of the data is processed "
               "remotely per decomposed dimension); the paper's tau = b/2 keeps "
               "~75% locality while amortising the layer barriers.\n";
  return 0;
}
