// Trace-driven memory-traffic comparison of all schemes.
//
// Every scheme executes for real with its access stream fed through the
// exact cache simulator of a cache-scaled machine, measuring the memory
// doubles per update each scheme actually needs — the quantity the
// analytic estimates in the figure benches predict.  Run on a domain much
// larger than the toy caches, this is the paper's Section IV-D claim
// ("less than 2 doubles from main memory per update") made measurable
// without any NUMA hardware.
//
//   ./trace_traffic [edge] [steps] [threads]
#include <cstdlib>
#include <iostream>

#include "cachesim/shared.hpp"
#include "common/table.hpp"
#include "perf/model.hpp"
#include "schemes/scheme.hpp"

int main(int argc, char** argv) try {
  using namespace nustencil;
  const Index edge = argc > 1 ? std::atol(argv[1]) : 40;
  const long steps = argc > 2 ? std::atol(argv[2]) : 16;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 2;

  // Scale the Opteron's caches down by 4x so the test domain is "large"
  // relative to them (domain/LLC ~ 8x, like 500^3 against a real LLC)
  // while one base parallelogram (32 KiB) still fits comfortably.
  topology::MachineSpec machine = topology::opteron8222();
  for (auto& c : machine.caches) c.size_bytes /= 4;

  const auto stencil = core::StencilSpec::paper_3d7p();
  Table table("trace-driven memory traffic, " + std::to_string(edge) + "^3, " +
              std::to_string(steps) + " steps, caches/32 (" +
              std::to_string(machine.last_level_cache().size_bytes / 1024) +
              " KiB LLC)");
  table.set_header({"scheme", "simulated mem doubles/update", "analytic estimate",
                    "LLC miss %"});

  for (const auto& name : schemes::scheme_names()) {
    cachesim::SharedHierarchy sim(machine, threads);
    const auto scheme = schemes::make_scheme(name);
    schemes::RunConfig cfg;
    cfg.num_threads = threads;
    cfg.timesteps = steps;
    cfg.cache_sim = &sim;
    if (name == "CATS" || name == "nuCATS")
      cfg.boundary[2] = core::BoundaryKind::Dirichlet;
    core::Problem problem(Coord{edge, edge, edge}, stencil);
    const auto result = scheme->run(problem, cfg);

    const auto traffic = sim.traffic();
    const double mem_doubles =
        static_cast<double>(traffic.memory_bytes(sim.line_bytes())) /
        static_cast<double>(result.updates) / 8.0;
    const auto& llc = traffic.level.back();
    const double miss_rate =
        llc.hits + llc.misses > 0
            ? static_cast<double>(llc.misses) / static_cast<double>(llc.hits + llc.misses)
            : 0.0;
    const auto est = scheme->estimate_traffic(machine, problem.shape(), stencil,
                                              threads, steps);
    table.add_row(name, {mem_doubles, est.mem_doubles_per_update, miss_rate * 100.0});
  }
  table.print(std::cout);
  std::cout << "\nThe naive sweep re-streams both buffers every step (~2+ "
               "doubles/update); the CATS/CORALS families reuse values across "
               "steps — the mechanism behind every figure of the paper.\n"
               "The Pochoir/PLuTo stand-ins tile only the highest-stride "
               "dimension, so their per-step working set exceeds the scaled "
               "cache here and their reuse vanishes — the real systems tile "
               "all dimensions (tuned tiles / full recursion), which is why "
               "the figure benches use analytic estimates for them.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
