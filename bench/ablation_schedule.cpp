// Ablation: tile schedule (static owner-computes vs NUMA-affine work
// stealing vs node-local stealing).
//
// Runs each schedule on a deliberately skewed domain — 67x67x4 cut into
// z-slabs of 2/1/1 planes across 3 threads, so the static owner-computes
// assignment leaves one thread with twice the work — plus a cubic nuCATS
// case, and reports the per-thread busy-time imbalance (max/mean), the
// measured NUMA locality, and the steal counters.  Stealing should pull
// the imbalance towards 1.0 while keeping locality within a few points
// of static (thieves take from the *far* end of the nearest victim, so
// most tiles still run on their owner's node).
//
//   ./ablation_schedule [--out=schedule_ablation.json] [--steps=N] [--threads=N]
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "metrics/json.hpp"
#include "schemes/scheme.hpp"
#include "topology/machine.hpp"

namespace {

using namespace nustencil;

struct Case {
  std::string scheme;
  Coord shape;
  long steps = 0;
};

struct Row {
  Case c;
  std::string schedule;
  double seconds = 0.0;
  double imbalance = 0.0;
  double locality = 0.0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_fails = 0;
  std::uint64_t stolen_updates = 0;
};

std::string shape_str(const Coord& shape) {
  std::string s;
  for (int d = 0; d < shape.rank(); ++d)
    s += (d ? "x" : "") + std::to_string(shape[d]);
  return s;
}

Row run_one(const Case& c, sched::Schedule schedule, int threads,
            const topology::MachineSpec& machine) {
  schemes::RunConfig cfg;
  cfg.num_threads = threads;
  cfg.timesteps = c.steps;
  cfg.schedule = schedule;
  cfg.instrument = true;
  cfg.collect_phase_metrics = true;
  cfg.machine = &machine;
  if (c.scheme == "CATS" || c.scheme == "nuCATS")
    cfg.boundary[2] = core::BoundaryKind::Dirichlet;

  core::Problem problem(c.shape, core::StencilSpec::paper_3d7p());
  const schemes::RunResult run = schemes::make_scheme(c.scheme)->run(problem, cfg);

  Row r;
  r.c = c;
  r.schedule = sched::schedule_name(schedule);
  r.seconds = run.seconds;
  r.imbalance = run.phases.imbalance();
  r.locality = run.traffic.locality();
  r.steal_attempts = run.sched.total_attempts();
  r.steals = run.sched.total_steals();
  r.steal_fails = run.sched.total_fails();
  r.stolen_updates = run.sched.total_stolen_updates();
  return r;
}

void write_json(const std::vector<Row>& rows, int threads,
                const std::string& path) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "ablation_schedule: cannot open " + path);
  metrics::JsonWriter w(out);
  w.begin_object();
  w.kv("generator", "bench/ablation_schedule");
  w.kv("threads", threads);
  w.key("cases").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.kv("scheme", r.c.scheme);
    w.kv("shape", shape_str(r.c.shape));
    w.kv("timesteps", r.c.steps);
    w.kv("schedule", r.schedule);
    w.kv("seconds", r.seconds);
    w.kv("imbalance", r.imbalance);
    w.kv("locality", r.locality);
    w.kv("steal_attempts", r.steal_attempts);
    w.kv("steals", r.steals);
    w.kv("steal_fails", r.steal_fails);
    w.kv("stolen_updates", r.stolen_updates);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  NUSTENCIL_CHECK(out.good(), "ablation_schedule: write failed for " + path);
}

}  // namespace

int main(int argc, char** argv) try {
  ArgParser args("ablation_schedule",
                 "static vs steal vs steal_local on a skewed domain");
  args.add_option("out", "write results as JSON to this file",
                  "schedule_ablation.json");
  args.add_option("steps", "time steps for the skewed case", "400");
  args.add_option("threads", "worker threads", "3");
  if (!args.parse(argc, argv)) return 0;

  const auto machine = topology::xeonX7550();
  const int threads =
      ArgParser::validate_thread_count(args.get_long("threads"), machine.cores());
  const long steps = args.get_long("steps");

  // The skewed flagship (2/1/1 z-planes under 3 threads) plus a cubic
  // temporal-blocking case where stealing must respect dependencies.
  const std::vector<Case> cases = {
      {"NaiveSSE", Coord{67, 67, 4}, steps},
      {"nuCATS", Coord{67, 67, 67}, std::max<long>(1, steps / 10)},
  };

  Table table("schedule ablation (" + std::to_string(threads) +
              " threads on the Xeon)");
  table.set_header({"scheme / schedule", "seconds", "imbalance", "locality %",
                    "steals", "stolen updates"});

  std::vector<Row> rows;
  for (const Case& c : cases) {
    for (const auto schedule : {sched::Schedule::Static, sched::Schedule::Steal,
                                sched::Schedule::StealLocal}) {
      rows.push_back(run_one(c, schedule, threads, machine));
      const Row& r = rows.back();
      table.add_row(r.c.scheme + " " + shape_str(r.c.shape) + " " + r.schedule,
                    {r.seconds, r.imbalance, r.locality * 100.0,
                     static_cast<double>(r.steals),
                     static_cast<double>(r.stolen_updates)});
    }
  }
  table.print(std::cout);
  write_json(rows, threads, args.get("out"));
  std::cout << "wrote " << args.get("out") << '\n'
            << "\nStatic leaves the 2-plane owner ~1.5x busier than the mean;\n"
               "stealing lets the 1-plane owners take tiles from the far end\n"
               "of its deque, pulling imbalance towards 1.0 without moving\n"
               "locality (victims are ranked by NUMA distance, so tiles\n"
               "rarely cross sockets under compact pinning).\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
