// bench/regress — the regression gate: runs a fixed scheme x size matrix,
// writes every deterministic observable to BENCH_schemes.json, and in
// --baseline mode diffs a fresh run against a committed baseline.
//
// The gate is deliberately non-flaky: cell-update counts and simulated
// traffic bytes are integer-deterministic and compared exactly.  The
// local/remote split used to race — a page straddling two threads'
// first-touch ranges went to whichever thread touched it first — and
// locality carried a 0.05 absolute tolerance to absorb that.  Since the
// executors switched to PageTable::first_touch_page_start (a straddling
// page goes to the owner of its first byte, deterministically), the
// split is exact too, so local/remote/unowned bytes are now gated with
// exact integer compares and the locality tolerance is gone.  The model
// output keeps a small relative tolerance only because it runs through
// libm, which may differ across toolchains.  Wall-clock seconds are
// only sanity-checked against a generous ratio (--wall-tol, default 4x)
// so a loaded CI machine cannot fail the build, but a 4x slowdown still
// does.
//
//   regress                         # writes BENCH_schemes.json
//   regress --out=fresh.json --baseline=bench/BENCH_schemes.json
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/error.hpp"
#include "common/provenance.hpp"
#include "metrics/json.hpp"
#include "perf/model.hpp"
#include "schemes/scheme.hpp"
#include "topology/machine.hpp"

namespace {

using namespace nustencil;

// v2 adds the "provenance" block (git SHA, compiler, build type, machine
// conf) so a failing gate can print what actually changed between the
// baseline build and the candidate.  v1 baselines are still accepted —
// they just have no provenance to diff.
constexpr int kRegressSchemaVersion = 2;

const char* kMachineConf = "xeon-x7550";

const std::vector<std::string>& regress_schemes() {
  static const std::vector<std::string> schemes = {
      "NaiveSSE", "CATS", "nuCATS", "CORALS", "nuCORALS", "MWD", "nuMWD"};
  return schemes;
}
const std::vector<Index>& regress_edges() {
  static const std::vector<Index> edges = {24, 40};
  return edges;
}
constexpr long kSteps = 6;
constexpr int kThreads = 2;

struct Case {
  std::string scheme;
  Index edge = 0;
  // Integer-deterministic observables, all compared exactly: updates and
  // the full local/remote/unowned traffic split (deterministic since
  // first-touch switched to the page-start ownership rule).
  Index updates = 0;
  std::uint64_t local_bytes = 0;
  std::uint64_t remote_bytes = 0;
  std::uint64_t unowned_bytes = 0;
  // Derived from the exact split but serialised as a double: tight
  // relative tolerance covers only JSON round-trip formatting.
  double locality = 0.0;
  // Goes through libm: small relative tolerance.
  double model_gupdates_per_core = 0.0;
  // Wall clock: ratio tolerance only.
  double seconds = 0.0;
};

Case run_case(const std::string& name, Index edge) {
  const topology::MachineSpec machine = topology::xeonX7550();
  const core::StencilSpec stencil = core::StencilSpec::paper_3d7p();
  const auto scheme = schemes::make_scheme(name);

  schemes::RunConfig cfg;
  cfg.num_threads = kThreads;
  cfg.timesteps = kSteps;
  cfg.instrument = true;
  cfg.machine = &machine;
  // Scatter the two threads across sockets: compact pinning would put
  // both on node 0 and every scheme would measure locality 1.0, leaving
  // the traffic half of the gate vacuous.
  cfg.pin_policy = numa::PinPolicy::Scatter;
  if (name == "CATS" || name == "nuCATS")
    cfg.boundary[2] = core::BoundaryKind::Dirichlet;

  core::Problem problem(Coord{edge, edge, edge}, stencil);
  const schemes::RunResult run = scheme->run(problem, cfg);

  perf::ModelInput in;
  in.machine = &machine;
  in.stencil = &stencil;
  in.threads = kThreads;
  in.traffic = scheme->estimate_traffic(machine, Coord{edge, edge, edge},
                                        stencil, kThreads, kSteps);
  in.locality = run.traffic.locality();
  in.node_demand.assign(run.traffic.bytes_from_node.begin(),
                        run.traffic.bytes_from_node.end());
  const auto [sync_base, sync_socket] = perf::scheme_sync_overhead(name);
  in.sync_overhead = sync_base;
  in.sync_per_socket = sync_socket;

  Case c;
  c.scheme = name;
  c.edge = edge;
  c.updates = run.updates;
  c.local_bytes = run.traffic.local_bytes;
  c.remote_bytes = run.traffic.remote_bytes;
  c.unowned_bytes = run.traffic.unowned_bytes;
  c.locality = run.traffic.locality();
  c.model_gupdates_per_core = perf::model_scheme(in).gupdates_per_core;
  c.seconds = run.seconds;
  return c;
}

void write_cases(const std::vector<Case>& cases, const std::string& path) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "regress: cannot open " + path);
  metrics::JsonWriter w(out);
  w.begin_object();
  w.kv("schema_version", kRegressSchemaVersion);
  w.kv("generator", "bench/regress");
  w.kv("threads", kThreads);
  w.kv("timesteps", static_cast<std::int64_t>(kSteps));
  w.kv("machine", kMachineConf);
  const BuildInfo& build = build_info();
  w.key("provenance").begin_object();
  w.kv("git_sha", build.git_sha);
  w.kv("compiler", build.compiler);
  w.kv("build_type", build.build_type);
  w.kv("machine_conf", kMachineConf);
  w.end_object();
  w.key("cases").begin_array();
  for (const Case& c : cases) {
    w.begin_object();
    w.kv("scheme", c.scheme);
    w.kv("edge", static_cast<std::int64_t>(c.edge));
    w.kv("updates", static_cast<std::int64_t>(c.updates));
    w.kv("local_bytes", c.local_bytes);
    w.kv("remote_bytes", c.remote_bytes);
    w.kv("unowned_bytes", c.unowned_bytes);
    w.kv("locality", c.locality);
    w.kv("model_gupdates_per_core", c.model_gupdates_per_core);
    w.kv("seconds", c.seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
  NUSTENCIL_CHECK(out.good(), "regress: write failed for " + path);
}

bool close_rel(double a, double b, double eps) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) <= eps * scale;
}

/// How the baseline's build provenance differs from this binary, one
/// line per differing field — a gated-field mismatch plus a compiler or
/// commit delta usually explains itself from the CI log alone.
std::string provenance_delta(const metrics::JsonValue& base) {
  const metrics::JsonValue* prov = base.find("provenance");
  if (!prov)
    return "  baseline predates provenance (schema v1): rebuild it to "
           "record git SHA / compiler / machine conf\n";
  const BuildInfo& build = build_info();
  std::ostringstream os;
  const auto field = [&](const char* key, const std::string& candidate) {
    const metrics::JsonValue* v = prov->find(key);
    const std::string baseline = v ? v->str() : "<absent>";
    if (baseline != candidate)
      os << "  provenance " << key << ": baseline '" << baseline
         << "' vs candidate '" << candidate << "'\n";
  };
  field("git_sha", build.git_sha);
  field("compiler", build.compiler);
  field("build_type", build.build_type);
  field("machine_conf", kMachineConf);
  if (os.str().empty())
    return "  provenance identical: same commit, compiler, build type and "
           "machine conf\n";
  return os.str();
}

const metrics::JsonValue* find_case(const metrics::JsonValue& doc,
                                    const Case& c) {
  for (const metrics::JsonValue& jc : doc.at("cases").array) {
    if (jc.at("scheme").str() == c.scheme &&
        static_cast<Index>(jc.at("edge").num()) == c.edge)
      return &jc;
  }
  return nullptr;
}

/// Diffs fresh cases against the baseline document; prints one line per
/// failure and returns the failure count.
int compare(const std::vector<Case>& fresh, const metrics::JsonValue& base,
            double wall_tol) {
  int failures = 0;
  const auto fail = [&](const Case& c, const std::string& what) {
    std::cerr << "REGRESSION " << c.scheme << " edge=" << c.edge << ": " << what
              << '\n';
    ++failures;
  };

  // Every failure line names the diverging field and prints both sides
  // ("field: expected <baseline> actual <fresh>") so a CI log alone
  // identifies what moved without re-running the gate locally.
  const int base_version = static_cast<int>(base.at("schema_version").num());
  if (base_version < 1 || base_version > kRegressSchemaVersion) {
    std::cerr << "REGRESSION schema_version: expected 1.."
              << kRegressSchemaVersion << " actual " << base_version << '\n';
    return 1;
  }
  for (const Case& c : fresh) {
    const metrics::JsonValue* jc = find_case(base, c);
    if (!jc) {
      fail(c, "case missing from baseline");
      continue;
    }
    const auto exact = [&](const char* key, std::uint64_t got) {
      const auto want = static_cast<std::uint64_t>(jc->at(key).num());
      if (want != got)
        fail(c, std::string(key) + ": expected " + std::to_string(want) +
                    " actual " + std::to_string(got));
    };
    exact("updates", static_cast<std::uint64_t>(c.updates));
    // The split is deterministic under the page-start first-touch rule,
    // so each side is gated exactly — no tolerance for placement drift.
    exact("local_bytes", c.local_bytes);
    exact("remote_bytes", c.remote_bytes);
    exact("unowned_bytes", c.unowned_bytes);
    // Locality is local/(local+remote) — exact up to the JSON round-trip
    // of the double, hence the near-zero relative tolerance.
    if (!close_rel(jc->at("locality").num(), c.locality, 1e-9))
      fail(c, "locality: expected " +
                  std::to_string(jc->at("locality").num()) + " actual " +
                  std::to_string(c.locality));
    if (!close_rel(jc->at("model_gupdates_per_core").num(),
                   c.model_gupdates_per_core, 0.05))
      fail(c, "model_gupdates_per_core: expected " +
                  std::to_string(jc->at("model_gupdates_per_core").num()) +
                  " actual " + std::to_string(c.model_gupdates_per_core) +
                  " (rel tol 0.05)");
    const double base_s = jc->at("seconds").num();
    if (base_s > 0.0 && c.seconds > base_s * wall_tol)
      fail(c, "seconds: expected <= " + std::to_string(base_s * wall_tol) +
                  " (" + std::to_string(wall_tol) + "x baseline " +
                  std::to_string(base_s) + ") actual " +
                  std::to_string(c.seconds));
  }
  if (failures > 0)
    std::cerr << "provenance delta (baseline vs candidate):\n"
              << provenance_delta(base);
  return failures;
}

}  // namespace

int main(int argc, char** argv) try {
  ArgParser args("regress",
                 "fixed scheme x size regression matrix with a baseline gate");
  args.add_option("out", "write fresh results as JSON to this file",
                  "BENCH_schemes.json");
  args.add_option("baseline", "compare against this committed baseline", "");
  args.add_option("wall-tol",
                  "wall-clock failure threshold as a ratio over baseline",
                  "4.0");
  if (!args.parse(argc, argv)) return 0;

  std::vector<Case> cases;
  for (const std::string& scheme : regress_schemes())
    for (const Index edge : regress_edges()) {
      cases.push_back(run_case(scheme, edge));
      std::cout << scheme << " edge=" << edge << ": updates="
                << cases.back().updates << " locality=" << cases.back().locality
                << " model=" << cases.back().model_gupdates_per_core
                << " Gup/s/core, " << cases.back().seconds << " s\n";
    }

  write_cases(cases, args.get("out"));
  std::cout << "wrote " << args.get("out") << '\n';

  if (const std::string baseline = args.get("baseline"); !baseline.empty()) {
    const double wall_tol = std::stod(args.get("wall-tol"));
    const int failures =
        compare(cases, metrics::parse_json_file(baseline), wall_tol);
    if (failures > 0) {
      std::cerr << failures << " regression(s) against " << baseline << '\n';
      return 1;
    }
    std::cout << "no regressions against " << baseline << '\n';
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
