// bench/telemetry_overhead — measures what the live telemetry sampler
// costs the run it watches: the same nuCATS problem is timed with
// telemetry off and with a 10 ms sampler attached (progress slots bound,
// rings filling, no file exports), and the median-vs-median overhead
// lands in the JSON as telemetry/overhead_pct.
//
// The number is informational in the trajectory database — never gated —
// because it measures a *ratio of wall clocks* on whatever runner CI
// landed on.  The hard contract this tool does enforce is the zero-cost
// off path: across every untelemetered rep, Sampler::threads_started()
// must not move, or the tool exits 1.
//
//   telemetry_overhead --edge=64 --steps=20 --reps=3 \
//                      --out=BENCH_telemetry_overhead.json
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/error.hpp"
#include "common/provenance.hpp"
#include "common/stats.hpp"
#include "metrics/json.hpp"
#include "prof/progress.hpp"
#include "schemes/scheme.hpp"
#include "telemetry/sampler.hpp"

namespace {

using namespace nustencil;

constexpr int kOverheadSchemaVersion = 1;

double run_once(const schemes::Scheme& scheme, Index edge,
                schemes::RunConfig cfg) {
  core::Problem problem(Coord{edge, edge, edge},
                        core::StencilSpec::paper_3d7p());
  return scheme.run(problem, cfg).seconds;
}

}  // namespace

int main(int argc, char** argv) try {
  ArgParser args("telemetry_overhead",
                 "time a scheme with and without the live telemetry sampler "
                 "attached");
  args.add_option("scheme", "scheme to time", "nuCATS");
  args.add_option("edge", "cubic domain edge", "64");
  args.add_option("steps", "timesteps", "20");
  args.add_option("threads", "worker threads", "2");
  args.add_option("reps", "repetitions per group (median wins)", "3");
  args.add_option("interval-ms", "sampler cadence while attached", "10");
  args.add_option("out", "write the overhead JSON here",
                  "BENCH_telemetry_overhead.json");
  if (!args.parse(argc, argv)) return 0;

  const std::string scheme_name = args.get("scheme");
  const Index edge = static_cast<Index>(
      ArgParser::validate_positive("--edge", args.get_long("edge")));
  const long steps =
      ArgParser::validate_positive("--steps", args.get_long("steps"));
  const int threads = static_cast<int>(
      ArgParser::validate_positive("--threads", args.get_long("threads")));
  const int reps = static_cast<int>(
      ArgParser::validate_positive("--reps", args.get_long("reps")));
  const double interval_s =
      ArgParser::validate_positive_ms("--interval-ms",
                                      args.get_double("interval-ms")) *
      1e-3;

  const auto scheme = schemes::make_scheme(scheme_name);
  schemes::RunConfig base;
  base.num_threads = threads;
  base.timesteps = steps;
  if (scheme_name == "CATS" || scheme_name == "nuCATS")
    base.boundary[2] = core::BoundaryKind::Dirichlet;

  // Warm-up rep (page faults, frequency ramp) shared by both groups.
  run_once(*scheme, edge, base);

  // Off group, and the zero-cost contract: no sampler thread may appear.
  const std::uint64_t threads_before = telemetry::Sampler::threads_started();
  std::vector<double> off_s;
  for (int r = 0; r < reps; ++r) off_s.push_back(run_once(*scheme, edge, base));
  const std::uint64_t threads_delta_off =
      telemetry::Sampler::threads_started() - threads_before;

  // On group: progress slots bound, sampler ticking, rings filling — the
  // full in-memory pipeline, minus file exports (those are I/O-bound and
  // measured by their own CI leg).
  std::vector<double> on_s;
  std::ostringstream beat_sink;
  for (int r = 0; r < reps; ++r) {
    prof::ProgressMeter meter(3600.0, beat_sink);
    meter.begin_run(scheme_name, threads, 0);
    telemetry::Config tcfg;
    tcfg.interval_s = interval_s;
    tcfg.label = scheme_name;
    telemetry::Sampler sampler(tcfg);
    schemes::RunConfig cfg = base;
    cfg.progress = &meter;
    cfg.telemetry = &sampler;
    on_s.push_back(run_once(*scheme, edge, cfg));
  }

  const double off_med = median(off_s);
  const double on_med = median(on_s);
  const double overhead_pct =
      off_med > 0.0 ? (on_med - off_med) / off_med * 100.0 : 0.0;

  std::ofstream out(args.get("out"));
  NUSTENCIL_CHECK(out.good(),
                  "telemetry_overhead: cannot open " + args.get("out"));
  metrics::JsonWriter w(out);
  w.begin_object();
  w.kv("schema_version", kOverheadSchemaVersion);
  w.kv("generator", "bench/telemetry_overhead");
  const BuildInfo& build = build_info();
  w.key("provenance").begin_object();
  w.kv("git_sha", build.git_sha);
  w.kv("compiler", build.compiler);
  w.kv("build_type", build.build_type);
  w.end_object();
  w.kv("scheme", scheme_name);
  w.kv("edge", static_cast<std::int64_t>(edge));
  w.kv("threads", threads);
  w.kv("timesteps", static_cast<std::int64_t>(steps));
  w.kv("reps", reps);
  w.kv("interval_ms", interval_s * 1e3);
  w.kv("seconds_off", off_med);
  w.kv("seconds_on", on_med);
  w.kv("overhead_pct", overhead_pct);
  w.kv("sampler_threads_started_off", threads_delta_off);
  w.end_object();
  out << '\n';
  NUSTENCIL_CHECK(out.good(),
                  "telemetry_overhead: write failed for " + args.get("out"));

  std::cout << "telemetry overhead: off " << off_med << " s, on " << on_med
            << " s -> " << overhead_pct << " %\n";
  if (threads_delta_off != 0) {
    std::cerr << "telemetry_overhead: FAIL — " << threads_delta_off
              << " sampler thread(s) started during untelemetered reps\n";
    return 1;
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
