// Regenerates Figure 7 of the paper. See DESIGN.md's experiment index.
#include "harness/specs.hpp"

int main(int argc, char** argv) {
  return nustencil::harness::figure_main(nustencil::harness::fig07(), argc, argv);
}
