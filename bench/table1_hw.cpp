// Reproduces Table I: the hardware configurations of the two paper
// machines (encoded in topology::MachineSpec), the derived ratios the
// paper reports, and — since the paper's values are measurements — the
// same microbenchmarks run on this host for comparison.
#include <cstring>
#include <iostream>

#include "common/table.hpp"
#include "perf/microbench.hpp"
#include "topology/machine.hpp"

namespace {

using namespace nustencil;

void machine_column(Table& t, const topology::MachineSpec& m) {
  const double llc_bw = m.last_level_cache().aggregate_bw_gbs;
  const double ll2_bw = m.caches.size() >= 2
                            ? m.caches[m.caches.size() - 2].aggregate_bw_gbs
                            : llc_bw;
  t.add_row("sockets x cores", {static_cast<double>(m.sockets),
                                static_cast<double>(m.cores_per_socket)});
  t.add_row("frequency (GHz)", {m.ghz});
  t.add_row("NUMA nodes", {static_cast<double>(m.numa_nodes())});
  for (const auto& c : m.caches)
    t.add_row("measured " + c.name + " bandwidth (GB/s)", {c.aggregate_bw_gbs});
  t.add_row("measured sys bandwidth (GB/s)", {m.sys_bw_gbs});
  t.add_row("measured peak DP (GFLOPS)", {m.peak_dp_gflops});
  t.add_row("LL1 band / sys band", {llc_bw / m.sys_bw_gbs});
  t.add_row("LL2 band / LL1 band", {ll2_bw / llc_bw});
  t.add_row("arith intensity for sys", {m.peak_dp_gflops / (m.sys_bw_gbs / 8.0)});
  t.add_row("arith intensity for LL1", {m.peak_dp_gflops / (llc_bw / 8.0)});
}

}  // namespace

int main(int argc, char** argv) {
  bool with_host = true;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--no-host") == 0) with_host = false;

  for (const auto& m : {topology::opteron8222(), topology::xeonX7550()}) {
    Table t("Table I - " + m.name);
    t.set_header({"property", "value", "value2"});
    machine_column(t, m);
    t.print(std::cout);
    std::cout << '\n';
  }

  if (with_host) {
    Table t("Table I counterpart measured on this host");
    t.set_header({"property", "value"});
    t.add_row("measured peak DP, 1 core (GFLOPS)",
              {nustencil::perf::measure_peak_dp_gflops()});
    t.add_row("measured L1 copy bandwidth (GB/s)",
              {nustencil::perf::measure_l1_bandwidth_gbs()});
    t.add_row("measured memory copy bandwidth (GB/s)",
              {nustencil::perf::measure_memory_bandwidth_gbs()});
    t.print(std::cout);
  }
  return 0;
}
