// Reproduces Figure 3: scaling of STREAM COPY bandwidth per core, 1 to 16
// cores on the Opteron 8222 and 1 to 32 cores on the Xeon X7550, for both
// the last-level cache (linear per-core scaling) and the system memory
// (saturating).  The curves come from the measured anchors of Section IV-C
// encoded in topology::MachineSpec.
#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "topology/machine.hpp"

int main() {
  using namespace nustencil;
  const auto opteron = topology::opteron8222();
  const auto xeon = topology::xeonX7550();

  Table t("Fig 3: STREAM COPY bandwidth per core (GB/s)");
  t.set_header({"cores", "LL1Band Xeon X7550", "LL1Band Opteron 8222",
                "SysBand Xeon X7550", "SysBand Opteron 8222"});
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const double xeon_llc = xeon.cache_bw_per_core(xeon.caches.size() - 1);
    const double opt_llc = opteron.cache_bw_per_core(opteron.caches.size() - 1);
    const double xeon_sys = n <= xeon.cores() ? xeon.sys_bw_at(n) / n
                                              : std::nan("");
    const double opt_sys = n <= opteron.cores() ? opteron.sys_bw_at(n) / n
                                                : std::nan("");
    t.add_row(std::to_string(n),
              {n <= xeon.cores() ? xeon_llc : std::nan(""),
               n <= opteron.cores() ? opt_llc : std::nan(""), xeon_sys, opt_sys});
  }
  t.print(std::cout);

  std::cout << "\nSection IV-C checkpoints:\n"
            << "  Opteron total speedup 1->16 cores: "
            << opteron.sys_bw_scaling.factor(16) << " (paper: 6.5)\n"
            << "  Xeon total speedup 1->32 cores:    "
            << xeon.sys_bw_scaling.factor(32) << " (paper: 13.7)\n";
  return 0;
}
