// Kernel engine perf trajectory: times one full-domain sweep of the
// paper's 3D 7-point constant stencil under every kernel policy this
// host can honour, verifies the bit-exactness contract, and writes the
// results as JSON (BENCH_kernels.json at the repo root by default) so
// the speedup of the tap-specialized kernels over the generic baseline
// is tracked across PRs.
//
//   kernel_report [--edge 64] [--steps N] [--out BENCH_kernels.json]
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/args.hpp"
#include "common/error.hpp"
#include "core/executor.hpp"
#include "core/kernels.hpp"

namespace {

using namespace nustencil;

core::Box whole(const Coord& shape) {
  core::Box b;
  b.lo = Coord::filled(shape.rank(), 0);
  b.hi = shape;
  return b;
}

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

struct Measurement {
  core::KernelPolicy policy;
  std::string kernel;     // selected variant name
  double seconds_per_sweep = 0.0;
  double gupdates_per_second = 0.0;
};

/// Times `sweeps_per_rep` full-domain sweeps per rep for every policy,
/// interleaving the reps round-robin across the policies (so clock-speed
/// or steal-time drift on a shared machine biases every policy equally,
/// not whichever happened to run during the slow phase) and keeping the
/// best rep per policy.
std::vector<Measurement> measure_all(const std::vector<core::KernelPolicy>& policies,
                                     Index edge, long sweeps_per_rep, int reps) {
  struct Run {
    core::Problem problem;
    core::Executor exec;
    long t = 0;
    double best = 1e30;
    Run(const Coord& shape, core::KernelPolicy policy)
        : problem(shape, core::StencilSpec::paper_3d7p()),
          exec((problem.initialize(), problem), {}, policy) {}
  };
  const Coord shape{edge, edge, edge};
  std::vector<Run> runs;
  runs.reserve(policies.size());
  for (core::KernelPolicy p : policies) runs.emplace_back(shape, p);

  const core::Box domain = whole(shape);
  for (Run& r : runs)
    for (int warm = 0; warm < 2; ++warm) r.exec.update_box(domain, r.t++, 0);

  for (int rep = 0; rep < reps; ++rep) {
    for (Run& r : runs) {
      const double t0 = now_seconds();
      for (long i = 0; i < sweeps_per_rep; ++i) r.exec.update_box(domain, r.t++, 0);
      r.best = std::min(r.best, now_seconds() - t0);
    }
  }

  std::vector<Measurement> out;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    Measurement m;
    m.policy = policies[i];
    m.kernel = runs[i].exec.kernel().name();
    m.seconds_per_sweep = runs[i].best / static_cast<double>(sweeps_per_rep);
    m.gupdates_per_second =
        static_cast<double>(runs[i].problem.volume()) / m.seconds_per_sweep * 1e-9;
    out.push_back(m);
  }
  return out;
}

/// Calibrates the per-rep sweep count so one rep takes ~50 ms.
long calibrate_sweeps(Index edge) {
  core::Problem problem(Coord{edge, edge, edge}, core::StencilSpec::paper_3d7p());
  problem.initialize();
  core::Executor exec(problem, {}, core::KernelPolicy::Scalar);
  const core::Box domain = whole(problem.shape());
  exec.update_box(domain, 0, 0);
  const double t0 = now_seconds();
  exec.update_box(domain, 1, 0);
  const double one = std::max(1e-6, now_seconds() - t0);
  return std::max<long>(1, static_cast<long>(0.05 / one));
}

bool bitexact_vs_scalar(core::KernelPolicy policy, Index edge) {
  const Coord shape{edge, edge, edge};
  std::vector<std::vector<double>> results;
  for (core::KernelPolicy p : {core::KernelPolicy::Scalar, policy}) {
    core::Problem problem(shape, core::StencilSpec::paper_3d7p());
    problem.initialize();
    core::Executor exec(problem, {}, p);
    for (long t = 0; t < 3; ++t) exec.update_box(whole(shape), t, 0);
    const double* d = problem.buffer(3).data();
    results.emplace_back(d, d + problem.volume());
  }
  return std::memcmp(results[0].data(), results[1].data(),
                     results[0].size() * sizeof(double)) == 0;
}

bool policy_runnable(core::KernelPolicy policy) {
  using core::KernelIsa;
  switch (policy) {
    case core::KernelPolicy::SSE2:
      return core::kernel_isa_supported(KernelIsa::SSE2);
    case core::KernelPolicy::AVX2:
      return core::kernel_isa_supported(KernelIsa::AVX2);
    case core::KernelPolicy::FMA:
      return core::kernel_isa_supported(KernelIsa::AVX2) &&
             core::CpuFeatures::host().fma;
    default:
      return true;
  }
}

}  // namespace

int main(int argc, char** argv) try {
  ArgParser args("kernel_report",
                 "time the kernel engine's policies and write BENCH_kernels.json");
  args.add_option("edge", "cubic domain edge", "64");
  args.add_option("steps", "sweeps per timing rep (0 = calibrate to ~50 ms)", "0");
  args.add_option("reps", "interleaved timing reps per policy", "13");
  args.add_option("out", "output JSON path", "BENCH_kernels.json");
  if (!args.parse(argc, argv)) return 0;

  const Index edge = args.get_long("edge");
  long sweeps = args.get_long("steps");
  if (sweeps <= 0) sweeps = calibrate_sweeps(edge);
  const int reps = static_cast<int>(args.get_long("reps"));

  const auto& cpu = core::CpuFeatures::host();
  std::vector<core::KernelPolicy> policies;
  for (core::KernelPolicy policy :
       {core::KernelPolicy::Scalar, core::KernelPolicy::SSE2,
        core::KernelPolicy::AVX2, core::KernelPolicy::FMA,
        core::KernelPolicy::GenericSimd, core::KernelPolicy::Auto}) {
    if (policy_runnable(policy)) policies.push_back(policy);
  }
  const std::vector<Measurement> results = measure_all(policies, edge, sweeps, reps);
  for (const Measurement& m : results)
    std::cout << "  " << to_string(m.policy) << " -> " << m.kernel << ": "
              << m.gupdates_per_second << " Gupdates/s\n";

  double generic_time = 0.0, auto_time = 0.0;
  for (const Measurement& m : results) {
    if (m.policy == core::KernelPolicy::GenericSimd)
      generic_time = m.seconds_per_sweep;
    if (m.policy == core::KernelPolicy::Auto) auto_time = m.seconds_per_sweep;
  }
  const double speedup = auto_time > 0 ? generic_time / auto_time : 0.0;
  const bool exact = bitexact_vs_scalar(core::KernelPolicy::Auto, std::min<Index>(edge, 32));

  std::ofstream out(args.get("out"));
  NUSTENCIL_CHECK(out.good(), "cannot open " + args.get("out"));
  out << "{\n"
      << "  \"bench\": \"kernel_report\",\n"
      << "  \"stencil\": \"3d7p_const\",\n"
      << "  \"edge\": " << edge << ",\n"
      << "  \"sweeps_per_rep\": " << sweeps << ",\n"
      << "  \"host\": {\"sse2\": " << (cpu.sse2 ? "true" : "false")
      << ", \"avx2\": " << (cpu.avx2 ? "true" : "false")
      << ", \"fma\": " << (cpu.fma ? "true" : "false") << "},\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    out << "    {\"policy\": \"" << to_string(m.policy) << "\", \"kernel\": \""
        << m.kernel << "\", \"seconds_per_sweep\": " << m.seconds_per_sweep
        << ", \"gupdates_per_s\": " << m.gupdates_per_second << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"speedup_specialized_vs_generic\": " << speedup << ",\n"
      << "  \"bitexact_auto_vs_scalar\": " << (exact ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "specialized-vs-generic speedup at " << edge << "^3: " << speedup
            << "x; bit-exact: " << (exact ? "yes" : "NO") << "; wrote "
            << args.get("out") << '\n';
  return exact ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
