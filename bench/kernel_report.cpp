// Kernel engine perf trajectory: times one full-domain sweep of the
// paper's 3D 7-point constant stencil under every kernel policy this
// host can honour (plus a forced-streaming-stores case), verifies the
// bit-exactness contract, and writes the results as JSON
// (BENCH_kernels.json at the repo root by default) so the vector
// efficiency of the engine — GB/s per variant and speedup over the true
// scalar baseline — is tracked across PRs and gated in CI.
//
//   kernel_report [--edge 64] [--steps N] [--reps R]
//                 [--min-speedup 1.3] [--huge-edge auto|N|0]
//                 [--out BENCH_kernels.json]
//
// The huge-domain phase ("huge_domain" in the JSON) times the auto
// kernel on an LLC-exceeding domain with regular vs auto stores — the
// size where StorePolicy::Auto engages non-temporal streaming on its
// own, so the report tracks the payoff the main (cache-resident) phase
// cannot see.  --huge-edge 0 skips it.
//
// Exit status: 0 on success; 1 when a bit-exactness check fails or the
// best vector kernel misses the --min-speedup floor over scalar.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "common/args.hpp"
#include "common/error.hpp"
#include "core/executor.hpp"
#include "core/kernels.hpp"

namespace {

using namespace nustencil;

core::Box whole(const Coord& shape) {
  core::Box b;
  b.lo = Coord::filled(shape.rank(), 0);
  b.hi = shape;
  return b;
}

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// One measured configuration: a kernel policy plus a store policy (the
/// engine only honours Stream on aligned layouts with a rotated kernel).
struct Case {
  core::KernelPolicy policy;
  core::StorePolicy stores = core::StorePolicy::Auto;
  std::string label;  // "scalar", "avx2", "auto+stream", ...
};

struct Measurement {
  Case config;
  std::string kernel;  // selected variant name
  double seconds_per_sweep = 0.0;
  double gupdates_per_second = 0.0;
  double gbytes_per_second = 0.0;  // algorithmic traffic / time
  double speedup_vs_scalar = 0.0;
};

/// Times `sweeps_per_rep` full-domain sweeps per rep for every case,
/// interleaving the reps round-robin across the cases (so clock-speed
/// or steal-time drift on a shared machine biases every case equally,
/// not whichever happened to run during the slow phase) and keeping the
/// best rep per case.
std::vector<Measurement> measure_all(const std::vector<Case>& cases, Index edge,
                                     long sweeps_per_rep, int reps) {
  struct Run {
    core::Problem problem;
    core::Executor exec;
    long t = 0;
    double best = 1e30;
    Run(const Coord& shape, const Case& c)
        : problem(shape, core::StencilSpec::paper_3d7p()),
          exec((problem.initialize(), problem), {}, c.policy, c.stores) {}
  };
  const Coord shape{edge, edge, edge};
  std::vector<Run> runs;
  runs.reserve(cases.size());
  for (const Case& c : cases) runs.emplace_back(shape, c);

  const core::Box domain = whole(shape);
  for (Run& r : runs)
    for (int warm = 0; warm < 2; ++warm) r.exec.update_box(domain, r.t++, 0);

  for (int rep = 0; rep < reps; ++rep) {
    for (Run& r : runs) {
      const double t0 = now_seconds();
      for (long i = 0; i < sweeps_per_rep; ++i) r.exec.update_box(domain, r.t++, 0);
      r.best = std::min(r.best, now_seconds() - t0);
    }
  }

  std::vector<Measurement> out;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    Measurement m;
    m.config = cases[i];
    m.kernel = runs[i].exec.kernel().name();
    m.seconds_per_sweep = runs[i].best / static_cast<double>(sweeps_per_rep);
    m.gupdates_per_second =
        static_cast<double>(runs[i].problem.volume()) / m.seconds_per_sweep * 1e-9;
    // Algorithmic bytes of one sweep (read src once, write dst once, plus
    // bands): what a perfect cache would move.  Same numerator for every
    // case, so the GB/s column ranks variants by achieved bandwidth.
    m.gbytes_per_second =
        static_cast<double>(runs[i].problem.sweep_bytes()) / m.seconds_per_sweep * 1e-9;
    out.push_back(m);
  }
  return out;
}

/// Calibrates the per-rep sweep count so one rep takes ~50 ms.
long calibrate_sweeps(Index edge) {
  core::Problem problem(Coord{edge, edge, edge}, core::StencilSpec::paper_3d7p());
  problem.initialize();
  core::Executor exec(problem, {}, core::KernelPolicy::Scalar);
  const core::Box domain = whole(problem.shape());
  exec.update_box(domain, 0, 0);
  const double t0 = now_seconds();
  exec.update_box(domain, 1, 0);
  const double one = std::max(1e-6, now_seconds() - t0);
  return std::max<long>(1, static_cast<long>(0.05 / one));
}

bool bitexact_vs_scalar(core::KernelPolicy policy, core::StorePolicy stores,
                        Index edge) {
  const Coord shape{edge, edge, edge};
  std::vector<std::vector<double>> results;
  for (int i = 0; i < 2; ++i) {
    core::Problem problem(shape, core::StencilSpec::paper_3d7p());
    problem.initialize();
    core::Executor exec(problem, {},
                        i == 0 ? core::KernelPolicy::Scalar : policy,
                        i == 0 ? core::StorePolicy::Auto : stores);
    for (long t = 0; t < 3; ++t) exec.update_box(whole(shape), t, 0);
    const double* d = problem.buffer(3).data();
    results.emplace_back(d, d + problem.volume());
  }
  return std::memcmp(results[0].data(), results[1].data(),
                     results[0].size() * sizeof(double)) == 0;
}

/// Smallest edge whose one-sweep working set (read + write field of the
/// constant 3D 7-point stencil) crosses the StorePolicy::Auto streaming
/// threshold, rounded up to a full cache line of doubles so the rows
/// stay 64B-aligned on any host.
Index auto_huge_edge() {
  const Index threshold = core::stream_auto_threshold_bytes();
  Index edge = 8;
  while (2 * sizeof(double) * edge * edge * edge <
         static_cast<std::size_t>(threshold))
    edge += 8;
  return edge;
}

bool policy_runnable(core::KernelPolicy policy) {
  using core::KernelIsa;
  switch (policy) {
    case core::KernelPolicy::SSE2:
      return core::kernel_isa_supported(KernelIsa::SSE2);
    case core::KernelPolicy::AVX2:
      return core::kernel_isa_supported(KernelIsa::AVX2);
    case core::KernelPolicy::FMA:
      return core::kernel_isa_supported(KernelIsa::AVX2) &&
             core::CpuFeatures::host().fma;
    default:
      return true;
  }
}

}  // namespace

int main(int argc, char** argv) try {
  ArgParser args("kernel_report",
                 "time the kernel engine's policies and write BENCH_kernels.json");
  args.add_option("edge", "cubic domain edge", "64");
  args.add_option("steps", "sweeps per timing rep (0 = calibrate to ~50 ms)", "0");
  args.add_option("reps", "interleaved timing reps per case", "13");
  args.add_option("min-speedup",
                  "vector-efficiency floor: fail (exit 1) unless the best "
                  "bit-exact vector kernel beats scalar by this factor "
                  "(0 = report only)",
                  "0");
  args.add_option("huge-edge",
                  "LLC-exceeding domain edge for the streaming-store "
                  "payoff phase (auto = smallest edge past the streaming "
                  "threshold, 0 = skip)",
                  "auto");
  args.add_option("out", "output JSON path", "BENCH_kernels.json");
  if (!args.parse(argc, argv)) return 0;

  const Index edge = args.get_long("edge");
  long sweeps = args.get_long("steps");
  if (sweeps <= 0) sweeps = calibrate_sweeps(edge);
  const int reps = static_cast<int>(args.get_long("reps"));
  const double floor = args.get_double("min-speedup");

  const auto& cpu = core::CpuFeatures::host();
  std::vector<Case> cases;
  for (core::KernelPolicy policy :
       {core::KernelPolicy::Scalar, core::KernelPolicy::SSE2,
        core::KernelPolicy::AVX2, core::KernelPolicy::FMA,
        core::KernelPolicy::GenericSimd, core::KernelPolicy::Auto}) {
    if (policy_runnable(policy))
      cases.push_back({policy, core::StorePolicy::Auto, to_string(policy)});
  }
  // Forced streaming stores on the auto kernel: below the LLC threshold
  // StorePolicy::Auto stays regular, so this row is what tracks the
  // non-temporal path (it degrades to the plain auto kernel on hosts or
  // shapes without the aligned-rows layout).
  if (policy_runnable(core::KernelPolicy::Auto))
    cases.push_back(
        {core::KernelPolicy::Auto, core::StorePolicy::Stream, "auto+stream"});

  std::vector<Measurement> results = measure_all(cases, edge, sweeps, reps);

  double scalar_time = 0.0, generic_time = 0.0, auto_time = 0.0;
  for (const Measurement& m : results) {
    if (m.config.stores != core::StorePolicy::Auto) continue;
    if (m.config.policy == core::KernelPolicy::Scalar)
      scalar_time = m.seconds_per_sweep;
    if (m.config.policy == core::KernelPolicy::GenericSimd)
      generic_time = m.seconds_per_sweep;
    if (m.config.policy == core::KernelPolicy::Auto)
      auto_time = m.seconds_per_sweep;
  }
  for (Measurement& m : results)
    m.speedup_vs_scalar =
        m.seconds_per_sweep > 0 ? scalar_time / m.seconds_per_sweep : 0.0;

  for (const Measurement& m : results)
    std::cout << "  " << m.config.label << " -> " << m.kernel << ": "
              << m.gupdates_per_second << " Gupdates/s, " << m.gbytes_per_second
              << " GB/s, " << m.speedup_vs_scalar << "x scalar\n";

  // Vector efficiency: the best *bit-exact* vector case (FMA reorders the
  // summation, so it may not represent the contract-keeping engine).
  const Measurement* best = nullptr;
  for (const Measurement& m : results) {
    if (m.config.policy == core::KernelPolicy::Scalar ||
        m.config.policy == core::KernelPolicy::FMA)
      continue;
    if (!best || m.seconds_per_sweep < best->seconds_per_sweep) best = &m;
  }
  const double best_speedup = best ? best->speedup_vs_scalar : 0.0;
  const double speedup = auto_time > 0 ? generic_time / auto_time : 0.0;

  const Index exact_edge = std::min<Index>(edge, 32);
  const bool exact =
      bitexact_vs_scalar(core::KernelPolicy::Auto, core::StorePolicy::Auto, exact_edge);
  const bool exact_stream =
      bitexact_vs_scalar(core::KernelPolicy::Auto, core::StorePolicy::Stream, exact_edge);

  // Huge-domain phase: the edge where StorePolicy::Auto engages
  // streaming by itself.  Regular stores are the control; auto stores
  // show the non-temporal payoff (write misses stop costing a read).
  const Index huge_edge = args.get("huge-edge") == "auto"
                              ? auto_huge_edge()
                              : args.get_long("huge-edge");
  std::vector<Measurement> huge;
  bool huge_streamed = false;
  double huge_speedup = 0.0;
  if (huge_edge > 0) {
    const std::vector<Case> huge_cases = {
        {core::KernelPolicy::Auto, core::StorePolicy::Regular, "huge regular"},
        {core::KernelPolicy::Auto, core::StorePolicy::Auto, "huge auto"},
    };
    huge = measure_all(huge_cases, huge_edge, /*sweeps_per_rep=*/2,
                       std::min(reps, 5));
    huge_streamed = huge[1].kernel.find("+nt") != std::string::npos;
    huge_speedup = huge[1].seconds_per_sweep > 0
                       ? huge[0].seconds_per_sweep / huge[1].seconds_per_sweep
                       : 0.0;
    for (const Measurement& m : huge)
      std::cout << "  " << m.config.label << " @ " << huge_edge << "^3 -> "
                << m.kernel << ": " << m.gbytes_per_second << " GB/s\n";
  }

  std::ofstream out(args.get("out"));
  NUSTENCIL_CHECK(out.good(), "cannot open " + args.get("out"));
  out << "{\n"
      << "  \"bench\": \"kernel_report\",\n"
      << "  \"stencil\": \"3d7p_const\",\n"
      << "  \"edge\": " << edge << ",\n"
      << "  \"sweeps_per_rep\": " << sweeps << ",\n"
      << "  \"host\": {\"sse2\": " << (cpu.sse2 ? "true" : "false")
      << ", \"avx2\": " << (cpu.avx2 ? "true" : "false")
      << ", \"fma\": " << (cpu.fma ? "true" : "false") << "},\n"
      << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    out << "    {\"policy\": \"" << to_string(m.config.policy)
        << "\", \"stores\": \"" << to_string(m.config.stores)
        << "\", \"kernel\": \"" << m.kernel
        << "\", \"seconds_per_sweep\": " << m.seconds_per_sweep
        << ", \"gupdates_per_s\": " << m.gupdates_per_second
        << ", \"gbytes_per_s\": " << m.gbytes_per_second
        << ", \"speedup_vs_scalar\": " << m.speedup_vs_scalar << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"huge_domain\": {\n"
      << "    \"edge\": " << huge_edge << ",\n"
      << "    \"stream_threshold_bytes\": " << core::stream_auto_threshold_bytes()
      << ",\n"
      << "    \"results\": [\n";
  for (std::size_t i = 0; i < huge.size(); ++i) {
    const Measurement& m = huge[i];
    out << "      {\"stores\": \"" << to_string(m.config.stores)
        << "\", \"kernel\": \"" << m.kernel
        << "\", \"seconds_per_sweep\": " << m.seconds_per_sweep
        << ", \"gbytes_per_s\": " << m.gbytes_per_second << "}"
        << (i + 1 < huge.size() ? "," : "") << "\n";
  }
  out << "    ],\n"
      << "    \"auto_streams\": " << (huge_streamed ? "true" : "false") << ",\n"
      << "    \"speedup_stream_vs_regular\": " << huge_speedup << "\n"
      << "  },\n"
      << "  \"vector_efficiency\": {\n"
      << "    \"best_kernel\": \"" << (best ? best->kernel : "") << "\",\n"
      << "    \"best_case\": \"" << (best ? best->config.label : "") << "\",\n"
      << "    \"speedup_best_vs_scalar\": " << best_speedup << ",\n"
      << "    \"min_speedup_floor\": " << floor << "\n"
      << "  },\n"
      << "  \"speedup_specialized_vs_generic\": " << speedup << ",\n"
      << "  \"bitexact_auto_vs_scalar\": " << (exact ? "true" : "false") << ",\n"
      << "  \"bitexact_stream_vs_scalar\": " << (exact_stream ? "true" : "false")
      << "\n}\n";
  std::cout << "best vector kernel at " << edge << "^3: "
            << (best ? best->kernel : "none") << " (" << best_speedup
            << "x scalar, floor " << floor << "); specialized-vs-generic "
            << speedup << "x; bit-exact: " << (exact ? "yes" : "NO")
            << "; streaming bit-exact: " << (exact_stream ? "yes" : "NO")
            << "; wrote " << args.get("out") << '\n';
  if (huge_edge > 0)
    std::cout << "huge domain " << huge_edge << "^3: auto stores "
              << (huge_streamed ? "streamed" : "did NOT stream") << ", "
              << huge_speedup << "x vs regular\n";
  const bool floor_ok = floor <= 0.0 || best_speedup >= floor;
  if (!floor_ok)
    std::cout << "FAIL: best vector speedup " << best_speedup
              << "x is below the committed floor " << floor << "x\n";
  return (exact && exact_stream && floor_ok) ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
