// Convenience driver: regenerates every figure (4-22) in one run and,
// with --svg-dir <dir>, writes one SVG per figure.
//
//   ./fig_all [--svg-dir figures] [--csv] [--domain N] [--steps N]
#include <cstring>
#include <iostream>
#include <string>

#include "harness/specs.hpp"

int main(int argc, char** argv) {
  using namespace nustencil::harness;
  std::string svg_dir;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--svg-dir") == 0 && i + 1 < argc) {
      svg_dir = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }

  int failures = 0;
  const auto run_one = [&](const std::string& id, auto&& runner) {
    std::cout << "\n================ " << id << " ================\n";
    std::vector<char*> args = rest;
    std::string svg_flag = "--svg", svg_path;
    if (!svg_dir.empty()) {
      svg_path = svg_dir + "/" + id + ".svg";
      args.push_back(svg_flag.data());
      args.push_back(svg_path.data());
    }
    failures += runner(static_cast<int>(args.size()), args.data());
  };

  const std::pair<std::string, FigureSpec (*)()> figures[] = {
      {"fig04", fig04}, {"fig05", fig05}, {"fig06", fig06}, {"fig07", fig07},
      {"fig08", fig08}, {"fig09", fig09}, {"fig10", fig10}, {"fig11", fig11},
      {"fig12", fig12}, {"fig13", fig13}, {"fig14", fig14}, {"fig15", fig15},
      {"fig20", fig20}, {"fig21", fig21}, {"fig22", fig22}};
  for (const auto& [id, make] : figures)
    run_one(id, [&](int c, char** v) { return figure_main(make(), c, v); });

  const std::pair<std::string, HighOrderSpec (*)()> high_order[] = {
      {"fig16", fig16}, {"fig17", fig17}, {"fig18", fig18}, {"fig19", fig19}};
  for (const auto& [id, make] : high_order)
    run_one(id, [&](int c, char** v) { return high_order_main(make(), c, v); });

  if (failures) std::cerr << "\n" << failures << " figure(s) failed\n";
  return failures == 0 ? 0 : 1;
}
