// Google-benchmark microbenchmarks of the stencil kernels on this host:
// the full kernel-engine matrix — every tap count the engine specializes
// (7/13/19-point, 3D orders 1-3) times constant vs banded coefficients
// times every policy (scalar / SSE2 / AVX2 / FMA / generic baseline /
// auto) — registered programmatically so no combination can silently
// drop out of the sweep.  These measure real wall time (unlike the
// figure benches, which model the paper machines); run with
// --benchmark_format=json for one JSON blob per combination.  For the
// JSON perf trajectory written to BENCH_kernels.json, see
// bench/kernel_report.cpp.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/field.hpp"
#include "core/kernels.hpp"

namespace {

using namespace nustencil;
using core::KernelPolicy;

/// Skips (instead of silently downgrading) when this host can't honour
/// the requested policy, so the reported numbers are what they claim.
bool policy_runnable(KernelPolicy policy) {
  using core::KernelIsa;
  switch (policy) {
    case KernelPolicy::SSE2: return core::kernel_isa_supported(KernelIsa::SSE2);
    case KernelPolicy::AVX2: return core::kernel_isa_supported(KernelIsa::AVX2);
    case KernelPolicy::FMA:
      return core::kernel_isa_supported(KernelIsa::AVX2) &&
             core::CpuFeatures::host().fma;
    default: return true;
  }
}

core::StencilSpec make_stencil(int order, bool banded) {
  if (banded) return core::StencilSpec::banded_star(3, order);
  if (order == 1) return core::StencilSpec::paper_3d7p();
  return core::StencilSpec::stable_star(3, order);
}

void run_sweep(benchmark::State& state, int order, bool banded,
               KernelPolicy policy) {
  if (!policy_runnable(policy)) {
    state.SkipWithError("kernel policy unsupported on this host");
    return;
  }
  const Index edge = state.range(0);
  core::Problem problem(Coord{edge, edge, edge}, make_stencil(order, banded));
  problem.initialize();
  core::Executor exec(problem, {}, policy);
  core::Box domain;
  domain.lo = Coord::filled(3, 0);
  domain.hi = problem.shape();
  long t = 0;
  for (auto _ : state) {
    exec.update_box(domain, t, 0);
    ++t;
  }
  state.SetLabel(exec.kernel().name());
  state.SetItemsProcessed(state.iterations() * problem.volume());
  state.counters["Gupdates/s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * problem.volume()),
                         benchmark::Counter::kIsRate);
}

void register_matrix() {
  const std::vector<std::pair<KernelPolicy, const char*>> policies = {
      {KernelPolicy::Scalar, "Scalar"},   {KernelPolicy::SSE2, "SSE2"},
      {KernelPolicy::AVX2, "AVX2"},       {KernelPolicy::FMA, "FMA"},
      {KernelPolicy::GenericSimd, "GenericSimd"}, {KernelPolicy::Auto, "Auto"}};
  for (const int order : {1, 2, 3}) {
    for (const bool banded : {false, true}) {
      const std::string combo = std::to_string(6 * order + 1) + "pt_" +
                                (banded ? "banded" : "const");
      for (const auto& [policy, policy_name] : policies) {
        const std::string name = "BM_" + combo + "/" + policy_name;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [order, banded, policy](benchmark::State& state) {
              run_sweep(state, order, banded, policy);
            })
            ->Arg(32)
            ->Arg(64);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_matrix();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
