// Google-benchmark microbenchmarks of the stencil kernels on this host:
// a sweep over the kernel engine's policies (scalar vs SSE2 vs AVX2 vs
// FMA, tap-specialized vs the generic runtime-taps baseline), constant
// vs banded, orders 1-3.  These measure real wall time (unlike the
// figure benches, which model the paper machines).  For the JSON perf
// trajectory written to BENCH_kernels.json, see bench/kernel_report.cpp.
#include <benchmark/benchmark.h>

#include "core/executor.hpp"
#include "core/field.hpp"
#include "core/kernels.hpp"

namespace {

using namespace nustencil;

/// Skips (instead of silently downgrading) when this host can't honour
/// the requested policy, so the reported numbers are what they claim.
bool policy_runnable(core::KernelPolicy policy) {
  using core::KernelIsa;
  using core::KernelPolicy;
  switch (policy) {
    case KernelPolicy::SSE2: return core::kernel_isa_supported(KernelIsa::SSE2);
    case KernelPolicy::AVX2: return core::kernel_isa_supported(KernelIsa::AVX2);
    case KernelPolicy::FMA:
      return core::kernel_isa_supported(KernelIsa::AVX2) &&
             core::CpuFeatures::host().fma;
    default: return true;
  }
}

void run_sweep(benchmark::State& state, const core::StencilSpec& stencil,
               core::KernelPolicy policy) {
  if (!policy_runnable(policy)) {
    state.SkipWithError("kernel policy unsupported on this host");
    return;
  }
  const Index edge = state.range(0);
  core::Problem problem(Coord{edge, edge, edge}, stencil);
  problem.initialize();
  core::Executor exec(problem, {}, policy);
  core::Box domain;
  domain.lo = Coord::filled(3, 0);
  domain.hi = problem.shape();
  long t = 0;
  for (auto _ : state) {
    exec.update_box(domain, t, 0);
    ++t;
  }
  state.SetLabel(exec.kernel().name());
  state.SetItemsProcessed(state.iterations() * problem.volume());
  state.counters["Gupdates/s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * problem.volume()),
                         benchmark::Counter::kIsRate);
}

using core::KernelPolicy;

void BM_Const7p_Scalar(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::paper_3d7p(), KernelPolicy::Scalar);
}
void BM_Const7p_SSE2(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::paper_3d7p(), KernelPolicy::SSE2);
}
void BM_Const7p_AVX2(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::paper_3d7p(), KernelPolicy::AVX2);
}
void BM_Const7p_FMA(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::paper_3d7p(), KernelPolicy::FMA);
}
void BM_Const7p_GenericSimd(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::paper_3d7p(), KernelPolicy::GenericSimd);
}
void BM_Const7p_Auto(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::paper_3d7p(), KernelPolicy::Auto);
}
void BM_Banded7_Auto(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::banded_star(3, 1), KernelPolicy::Auto);
}
void BM_Banded7_GenericSimd(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::banded_star(3, 1), KernelPolicy::GenericSimd);
}
void BM_Order2_Auto(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::stable_star(3, 2), KernelPolicy::Auto);
}
void BM_Order2_GenericSimd(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::stable_star(3, 2), KernelPolicy::GenericSimd);
}
void BM_Order3_Auto(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::stable_star(3, 3), KernelPolicy::Auto);
}
void BM_Order3_GenericSimd(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::stable_star(3, 3), KernelPolicy::GenericSimd);
}

}  // namespace

BENCHMARK(BM_Const7p_Scalar)->Arg(32)->Arg(64);
BENCHMARK(BM_Const7p_SSE2)->Arg(32)->Arg(64);
BENCHMARK(BM_Const7p_AVX2)->Arg(32)->Arg(64);
BENCHMARK(BM_Const7p_FMA)->Arg(32)->Arg(64);
BENCHMARK(BM_Const7p_GenericSimd)->Arg(32)->Arg(64);
BENCHMARK(BM_Const7p_Auto)->Arg(32)->Arg(64);
BENCHMARK(BM_Banded7_Auto)->Arg(32)->Arg(64);
BENCHMARK(BM_Banded7_GenericSimd)->Arg(32)->Arg(64);
BENCHMARK(BM_Order2_Auto)->Arg(32);
BENCHMARK(BM_Order2_GenericSimd)->Arg(32);
BENCHMARK(BM_Order3_Auto)->Arg(32);
BENCHMARK(BM_Order3_GenericSimd)->Arg(32);

BENCHMARK_MAIN();
