// Google-benchmark microbenchmarks of the stencil kernels on this host:
// scalar vs SSE2, constant vs banded, orders 1-3, and the reference
// full-domain sweep.  These measure real wall time (unlike the figure
// benches, which model the paper machines).
#include <benchmark/benchmark.h>

#include "core/executor.hpp"
#include "core/field.hpp"

namespace {

using namespace nustencil;

void run_sweep(benchmark::State& state, const core::StencilSpec& stencil, bool simd) {
  const Index edge = state.range(0);
  core::Problem problem(Coord{edge, edge, edge}, stencil);
  problem.initialize();
  core::Executor exec(problem, {}, simd);
  core::Box domain;
  domain.lo = Coord::filled(3, 0);
  domain.hi = problem.shape();
  long t = 0;
  for (auto _ : state) {
    exec.update_box(domain, t, 0);
    ++t;
  }
  state.SetItemsProcessed(state.iterations() * problem.volume());
  state.counters["Gupdates/s"] =
      benchmark::Counter(static_cast<double>(state.iterations() * problem.volume()),
                         benchmark::Counter::kIsRate);
}

void BM_Const7p_SSE2(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::paper_3d7p(), true);
}
void BM_Const7p_Scalar(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::paper_3d7p(), false);
}
void BM_Banded7_SSE2(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::banded_star(3, 1), true);
}
void BM_Order2_SSE2(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::stable_star(3, 2), true);
}
void BM_Order3_SSE2(benchmark::State& state) {
  run_sweep(state, core::StencilSpec::stable_star(3, 3), true);
}

}  // namespace

BENCHMARK(BM_Const7p_SSE2)->Arg(32)->Arg(64);
BENCHMARK(BM_Const7p_Scalar)->Arg(32)->Arg(64);
BENCHMARK(BM_Banded7_SSE2)->Arg(32)->Arg(64);
BENCHMARK(BM_Order2_SSE2)->Arg(32);
BENCHMARK(BM_Order3_SSE2)->Arg(32);

BENCHMARK_MAIN();
