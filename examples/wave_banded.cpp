// Variable-coefficient diffusion in a heterogeneous medium — the paper's
// banded-matrix workload (Section IV-E): the stencil coefficients vary per
// cell, forming a sparse 7-band matrix that must be streamed along with
// the solution vector.
//
// The example runs the banded iteration with nuCORALS and NaiveSSE,
// validates a physical invariant (each update is a convex combination of
// its inputs, so the field's range must contract monotonically),
// and reports the throughput cost of the banded case relative to the
// constant-coefficient stencil.
//
//   ./wave_banded [edge] [steps] [threads]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/reference.hpp"
#include "schemes/scheme.hpp"

namespace {

using namespace nustencil;

struct FieldStats {
  double mean, min, max;
};

FieldStats stats(const core::Field& f) {
  double sum = 0.0, lo = f.data()[0], hi = f.data()[0];
  for (Index i = 0; i < f.volume(); ++i) {
    sum += f.data()[i];
    lo = std::min(lo, f.data()[i]);
    hi = std::max(hi, f.data()[i]);
  }
  return {sum / static_cast<double>(f.volume()), lo, hi};
}

}  // namespace

int main(int argc, char** argv) try {
  const Index edge = argc > 1 ? std::atol(argv[1]) : 48;
  const long steps = argc > 2 ? std::atol(argv[2]) : 20;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;

  Table table("heterogeneous 7-band diffusion, " + std::to_string(edge) + "^3, " +
              std::to_string(steps) + " steps");
  table.set_header({"scheme", "Gupdates/s", "GFLOPS"});

  bool range_contracts = false;
  for (const std::string name : {"NaiveSSE", "nuCORALS"}) {
    for (const bool banded : {false, true}) {
      const core::StencilSpec stencil = banded
                                            ? core::StencilSpec::banded_star(3, 1)
                                            : core::StencilSpec::paper_3d7p();
      const auto scheme = schemes::make_scheme(name);
      schemes::RunConfig config;
      config.num_threads = threads;
      config.timesteps = steps;
      core::Problem problem(Coord{edge, edge, edge}, stencil);
      const auto result = scheme->run(problem, config);
      table.add_row(name + (banded ? " (banded)" : " (const)"),
                    {result.gupdates_per_second(),
                     result.gupdates_per_second() * stencil.flops()});

      if (banded && name == "nuCORALS") {
        // Invariants of the convex-combination weights.
        core::Problem initial(Coord{edge, edge, edge}, stencil);
        initial.initialize();
        const FieldStats before = stats(initial.buffer(0));
        const FieldStats after = stats(problem.buffer(steps));
        range_contracts = after.min >= before.min && after.max <= before.max;
        std::cout << "banded diffusion invariants (nuCORALS):\n"
                  << "  mean     " << before.mean << " -> " << after.mean
                  << "  (approximately conserved)\n"
                  << "  range    [" << before.min << ", " << before.max << "] -> ["
                  << after.min << ", " << after.max << "]  (contracting)\n\n";
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nThe banded iteration streams 7 coefficient bands along with "
               "the vector, so its Gupdates/s drop well below the constant "
               "case — the effect Figs. 10-15 quantify.\n";

  return range_contracts ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
