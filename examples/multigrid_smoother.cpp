// Multigrid smoother acceleration — the use case the paper names for
// temporal blocking with few iterations: "accelerate multiple smoother
// applications on each level of a multigrid solver".
//
// A weighted-Jacobi smoother (our Eq. (1) stencil) is applied in blocks of
// nu sweeps, as a V-cycle would between restrictions.  The example shows
// (a) that temporal blocking pays off even for small nu, and (b) the
// smoothing behaviour itself: the high-frequency error components die
// within a few sweeps while the smooth components survive — exactly what a
// multigrid smoother must do.
//
//   ./multigrid_smoother [edge] [nu] [visits] [threads] [order]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/redblack.hpp"
#include "schemes/redblack_smoother.hpp"
#include "core/reference.hpp"
#include "schemes/scheme.hpp"

namespace {

using namespace nustencil;

/// Root-mean-square of the difference from the field's mean (the error a
/// multigrid smoother is supposed to attack; the stencil's weights sum to
/// 1, so the mean itself is invariant).
double rms_error(const core::Field& f) {
  double mean = 0.0;
  for (Index i = 0; i < f.volume(); ++i) mean += f.data()[i];
  mean /= static_cast<double>(f.volume());
  double sq = 0.0;
  for (Index i = 0; i < f.volume(); ++i) {
    const double d = f.data()[i] - mean;
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(f.volume()));
}

}  // namespace

int main(int argc, char** argv) try {
  const Index edge = argc > 1 ? std::atol(argv[1]) : 48;
  const long nu = argc > 2 ? std::atol(argv[2]) : 4;
  const long visits = argc > 3 ? std::atol(argv[3]) : 8;
  const int threads = argc > 4 ? std::atoi(argv[4]) : 4;
  const int order = argc > 5 ? std::atoi(argv[5]) : 1;

  // Order s uses an (s+1)-colour Gauss-Seidel sweep; the edge must divide
  // by s+1 for the periodic colouring.
  const core::StencilSpec stencil = order == 1
                                        ? core::StencilSpec::paper_3d7p()
                                        : core::StencilSpec::stable_star(3, order);

  Table table("smoother blocks of nu=" + std::to_string(nu) + " sweeps, " +
              std::to_string(visits) + " level visits, " + std::to_string(edge) +
              "^3");
  table.set_header({"scheme", "Gupdates/s", "rms error after"});

  for (const std::string name : {"NaiveSSE", "nuCORALS", "nuCATS"}) {
    const auto scheme = schemes::make_scheme(name);
    schemes::RunConfig config;
    config.num_threads = threads;
    config.timesteps = nu;  // one smoother block per run, like a V-cycle level
    if (name == "nuCATS") config.boundary[2] = core::BoundaryKind::Dirichlet;

    // Each visit runs one smoother block of nu sweeps on a fresh level
    // field, as a V-cycle would between restrictions (the inter-level
    // transfer itself is outside this example's scope).  Only the
    // schemes' compute time is accumulated, not the first-touch setup.
    core::Problem problem(Coord{edge, edge, edge}, stencil);
    Index updates = 0;
    double seconds = 0.0;
    const auto first = scheme->run(problem, config);
    updates += first.updates;
    seconds += first.seconds;
    for (long v = 1; v < visits; ++v) {
      core::Problem level(Coord{edge, edge, edge}, stencil);
      const auto r = scheme->run(level, config);
      seconds += r.seconds;
      updates += r.updates;
    }
    const double rms = rms_error(problem.buffer(nu));
    table.add_row(name,
                  {static_cast<double>(updates) / seconds * 1e-9, rms});
  }
  // The in-place parallel red-black smoother, same block structure.
  {
    Index updates = 0;
    double seconds = 0.0;
    double rms = 0.0;
    for (long v = 0; v < visits; ++v) {
      core::Field level(Coord{edge, edge, edge});
      const auto r = schemes::run_redblack_smoother(
          level, stencil, nu, threads);
      seconds += r.seconds;
      updates += r.updates;
      if (v == 0) rms = rms_error(level);
    }
    table.add_row("RB-GaussSeidel (in place)",
                  {static_cast<double>(updates) / seconds * 1e-9, rms});
  }
  table.print(std::cout);

  // Show the smoothing factor per sweep: weighted Jacobi (the paper's
  // two-copy testbed) against in-place red-black Gauss-Seidel (the "one
  // copy of X" alternative of Section IV-B, and the canonical multigrid
  // smoother).
  core::Problem demo(Coord{edge, edge, edge}, stencil);
  demo.initialize();
  core::Field rb(Coord{edge, edge, edge});
  for (Index i = 0; i < rb.volume(); ++i) rb.data()[i] = demo.buffer(0).data()[i];

  std::cout << "\nrms error by sweep (Jacobi vs red-black Gauss-Seidel):\n";
  std::cout << "  sweep 0: " << rms_error(demo.buffer(0)) << "  /  "
            << rms_error(rb) << '\n';
  for (long t = 0; t < nu * 2; ++t) {
    core::reference_run(demo, 1);
    // reference_run always starts at time 0; emulate by swapping buffers.
    std::swap(demo.buffer(0), demo.buffer(1));
    core::redblack_run(rb, stencil, 1);
    std::cout << "  sweep " << t + 1 << ": " << rms_error(demo.buffer(0))
              << "  /  " << rms_error(rb) << '\n';
  }
  std::cout << "(the in-place Gauss-Seidel sweep damps the error faster per "
               "sweep and needs half the memory)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
