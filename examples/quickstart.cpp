// Quickstart: run 100 steps of a 3D 7-point Jacobi iteration with the
// NUMA-aware cache-oblivious scheme (nuCORALS) and verify the result
// against the plain reference sweep.
//
//   ./quickstart [edge] [steps] [threads]
#include <cstdlib>
#include <iostream>

#include "core/reference.hpp"
#include "schemes/scheme.hpp"

int main(int argc, char** argv) try {
  using namespace nustencil;
  const Index edge = argc > 1 ? std::atol(argv[1]) : 64;
  const long steps = argc > 2 ? std::atol(argv[2]) : 100;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 4;

  // The paper's model problem: Eq. (1), a 7-point constant-coefficient
  // star stencil of order 1 on a cube of doubles, periodic boundaries.
  const core::StencilSpec stencil = core::StencilSpec::paper_3d7p();

  // Every scheme initialises the problem itself (NUMA-aware schemes
  // first-touch their tiles in parallel), so hand it over uninitialised.
  core::Problem problem(Coord{edge, edge, edge}, stencil);

  const auto scheme = schemes::make_scheme("nuCORALS");
  schemes::RunConfig config;
  config.num_threads = threads;
  config.timesteps = steps;

  const schemes::RunResult result = scheme->run(problem, config);
  std::cout << result.scheme << ": " << result.updates << " updates in "
            << result.seconds << " s  ->  " << result.gupdates_per_second()
            << " Gupdates/s (" << result.gupdates_per_second() * stencil.flops()
            << " GFLOPS) with " << threads << " threads\n";
  for (const auto& [key, value] : result.details)
    std::cout << "  " << key << " = " << value << '\n';

  // Cross-check against the reference executor.
  core::Problem expected(Coord{edge, edge, edge}, stencil);
  expected.initialize();
  core::reference_run(expected, steps);
  const double diff =
      core::max_rel_diff(problem.buffer(steps), expected.buffer(steps));
  std::cout << "max relative difference vs reference: " << diff << '\n';
  return diff < 1e-12 ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
