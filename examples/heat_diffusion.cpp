// Heat diffusion: compares all nine schemes on an explicit 3D diffusion
// solve (the motivating workload of the paper's introduction) and prints
// wall-clock throughput plus, when instrumented, the measured
// data-to-core affinity of each scheme.
//
//   ./heat_diffusion [edge] [steps] [threads]
#include <cstdlib>
#include <memory>
#include <iomanip>
#include <iostream>

#include "common/table.hpp"
#include "core/executor.hpp"
#include "core/reference.hpp"
#include "schemes/scheme.hpp"

int main(int argc, char** argv) try {
  using namespace nustencil;
  const Index edge = argc > 1 ? std::atol(argv[1]) : 48;
  const long steps = argc > 2 ? std::atol(argv[2]) : 20;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 16;

  const core::StencilSpec stencil = core::StencilSpec::paper_3d7p();

  // Reference results, each computed once (lazily for the Dirichlet
  // variant that only CATS/nuCATS use).
  core::Problem expected(Coord{edge, edge, edge}, stencil);
  expected.initialize();
  core::reference_run(expected, steps);
  std::unique_ptr<core::Problem> dirichlet_ref;

  Table table("heat diffusion, " + std::to_string(edge) + "^3, " +
              std::to_string(steps) + " steps, " + std::to_string(threads) +
              " threads");
  table.set_header({"scheme", "Gupdates/s", "locality %", "max rel diff"});

  for (const auto& name : schemes::scheme_names()) {
    const auto scheme = schemes::make_scheme(name);
    schemes::RunConfig config;
    config.num_threads = threads;
    config.timesteps = steps;
    config.instrument = true;  // measure NUMA affinity under the Xeon topology
    if (name == "CATS" || name == "nuCATS")
      config.boundary[2] = core::BoundaryKind::Dirichlet;

    core::Problem problem(Coord{edge, edge, edge}, stencil);
    schemes::RunResult result;
    try {
      result = scheme->run(problem, config);
    } catch (const Error& e) {
      // e.g. a scheme whose tiling needs a larger domain for this thread
      // count; report it and keep comparing the others.
      std::cerr << name << " skipped: " << e.what() << '\n';
      continue;
    }

    double diff = -1.0;
    if (config.boundary.all_periodic(3)) {
      diff = core::max_rel_diff(problem.buffer(steps), expected.buffer(steps));
    } else {
      // CATS/nuCATS run with a Dirichlet wavefront dimension; verify
      // against a reference with the same boundary (built once).
      if (!dirichlet_ref) {
        dirichlet_ref =
            std::make_unique<core::Problem>(Coord{edge, edge, edge}, stencil);
        dirichlet_ref->initialize();
        const core::Box interior =
            core::updatable_box(dirichlet_ref->shape(), stencil, config.boundary);
        double* u0 = dirichlet_ref->buffer(0).data();
        double* u1 = dirichlet_ref->buffer(1).data();
        for (Index z = 0; z < edge; ++z)
          for (Index y = 0; y < edge; ++y)
            for (Index x = 0; x < edge; ++x) {
              const Index i = x + edge * (y + edge * z);
              if (z < interior.lo[2] || z >= interior.hi[2]) u1[i] = u0[i];
            }
        core::Executor exec(*dirichlet_ref);
        for (long t = 0; t < steps; ++t) exec.update_box(interior, t, 0);
      }
      diff = core::max_rel_diff(problem.buffer(steps), dirichlet_ref->buffer(steps));
    }
    table.add_row(name, {result.gupdates_per_second(),
                         result.traffic.locality() * 100.0, diff});
  }
  table.print(std::cout);
  std::cout << "\n(NUMA-aware schemes keep most traffic node-local under the "
               "simulated 4-socket Xeon topology; locality is measured, not "
               "modelled.)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
