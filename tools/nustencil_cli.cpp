// nustencil — general-purpose command-line driver.
//
// Runs any scheme on any supported problem, optionally instrumented
// against a paper machine's virtual NUMA topology, optionally verified
// against the reference executor, with CSV output for scripting.
//
//   nustencil --scheme nuCORALS --shape 128x128x128 --steps 100 --threads 8
//   nustencil --scheme nuCATS --banded --order 2 --verify --instrument
//   nustencil --sweep-threads 1,2,4,8 --csv results.csv
//   nustencil --scheme nuCORALS --trace=trace.json --trace-svg=trace.svg \
//             --phase-metrics
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>

#include "common/args.hpp"
#include "common/provenance.hpp"
#include "hwc/backend.hpp"
#include "hwc/events.hpp"
#include "hwc/group.hpp"
#include "prof/flamegraph.hpp"
#include "prof/progress.hpp"
#include "schemes/explain.hpp"
#include "telemetry/sampler.hpp"
#include "topology/machine_file.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "core/reference.hpp"
#include "metrics/run_report.hpp"
#include "metrics/schema.hpp"
#include "perf/model.hpp"
#include "schemes/scheme.hpp"
#include "trace/trace.hpp"
#include "trace/trace_svg.hpp"

namespace {

using namespace nustencil;

Coord parse_shape(const std::string& text) {
  Coord shape;
  std::vector<Index> dims;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, 'x')) dims.push_back(std::atol(part.c_str()));
  NUSTENCIL_CHECK(!dims.empty() && dims.size() <= 3,
                  "--shape expects up to three 'x'-separated extents, e.g. 128x128x128");
  switch (dims.size()) {
    case 1: return Coord{dims[0]};
    case 2: return Coord{dims[0], dims[1]};
    default: return Coord{dims[0], dims[1], dims[2]};
  }
}

std::vector<int> parse_int_list(const std::string& text) {
  std::vector<int> out;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) out.push_back(std::atoi(part.c_str()));
  return out;
}

const topology::MachineSpec* machine_by_name(const std::string& name,
                                             topology::MachineSpec& storage) {
  if (name == "xeon") {
    storage = topology::xeonX7550();
  } else if (name == "opteron") {
    storage = topology::opteron8222();
  } else if (name == "host") {
    storage = topology::host();
  } else {
    // Anything else is a machine description file (see
    // src/topology/machine_file.hpp for the format).
    storage = topology::load_machine(name);
  }
  return &storage;
}

/// Runs the reference on a copy-problem and reports the max deviation.
double verify_against_reference(core::Problem& actual, const Coord& shape,
                                const core::StencilSpec& stencil,
                                const schemes::RunConfig& cfg) {
  core::Problem expected(shape, stencil);
  expected.initialize(cfg.seed);
  if (cfg.boundary.all_periodic(shape.rank())) {
    core::reference_run(expected, cfg.timesteps);
  } else {
    const core::Box interior = core::updatable_box(shape, stencil, cfg.boundary);
    double* u0 = expected.buffer(0).data();
    double* u1 = expected.buffer(1).data();
    Coord pos = Coord::filled(shape.rank(), 0);
    for (Index i = 0; i < expected.volume(); ++i) {
      bool inside = true;
      for (int d = 0; d < shape.rank(); ++d)
        inside = inside && pos[d] >= interior.lo[d] && pos[d] < interior.hi[d];
      if (!inside) u1[i] = u0[i];
      for (int d = 0; d < shape.rank(); ++d) {
        if (++pos[d] < shape[d]) break;
        pos[d] = 0;
      }
    }
    core::Executor exec(expected);
    for (long t = 0; t < cfg.timesteps; ++t) exec.update_box(interior, t, 0);
  }
  return core::max_rel_diff(actual.buffer(cfg.timesteps),
                            expected.buffer(cfg.timesteps));
}

/// "trace.json" -> "trace.t8.json" when a sweep produces one file per
/// thread count; a single run keeps the exact name.
std::string per_run_path(const std::string& path, int threads, bool sweeping) {
  if (!sweeping) return path;
  const std::size_t dot = path.rfind('.');
  const std::string suffix = ".t" + std::to_string(threads);
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos)
    return path + suffix;
  return path.substr(0, dot) + suffix + path.substr(dot);
}

/// Model placement + roofline reference lines for the run report: the
/// measured locality and node demand feed the paper's model exactly as
/// the figure harness does, and the reference lines are tabulated over
/// the power-of-two core counts of the machine (plus the run's own
/// thread count) so the dashboard can draw the full roofline.
metrics::ModelSection build_model_section(const schemes::Scheme& scheme,
                                          const topology::MachineSpec& machine,
                                          const Coord& shape,
                                          const core::StencilSpec& stencil,
                                          const schemes::RunResult& run) {
  perf::ModelInput in;
  in.machine = &machine;
  in.stencil = &stencil;
  in.threads = run.threads;
  in.traffic = scheme.estimate_traffic(machine, shape, stencil, run.threads,
                                       run.timesteps);
  in.locality = run.traffic.locality();
  in.node_demand.assign(run.traffic.bytes_from_node.begin(),
                        run.traffic.bytes_from_node.end());
  const auto [sync_base, sync_socket] = perf::scheme_sync_overhead(run.scheme);
  in.sync_overhead = sync_base;
  in.sync_per_socket = sync_socket;
  const perf::ModelOutput out = perf::model_scheme(in);

  metrics::ModelSection ms;
  ms.gupdates_per_core = out.gupdates_per_core;
  ms.gflops_per_core = out.gflops_per_core;
  ms.t_compute = out.t_compute;
  ms.t_llc = out.t_llc;
  ms.t_mem = out.t_mem;
  for (int c = 1; c <= machine.cores(); c *= 2) ms.cores.push_back(c);
  if (ms.cores.back() != machine.cores()) ms.cores.push_back(machine.cores());
  if (std::find(ms.cores.begin(), ms.cores.end(), run.threads) == ms.cores.end()) {
    ms.cores.push_back(run.threads);
    std::sort(ms.cores.begin(), ms.cores.end());
  }
  for (const int c : ms.cores) {
    ms.peak_dp.push_back(perf::peak_dp_line(machine, stencil, c));
    ms.ll1band0c.push_back(perf::ll1band0c_line(machine, stencil, c));
  }
  return ms;
}

/// Per-thread phase table for --phase-metrics.
void print_phase_metrics(const schemes::RunResult& result, double seconds) {
  Table table("phase metrics: " + result.scheme + ", " +
              std::to_string(result.threads) + " thread(s), wall " +
              std::to_string(seconds) + " s");
  table.set_header({"thread", "init s", "compute s", "barrier-wait s",
                    "spinflag-wait s", "accounted s", "accounted %"});
  for (std::size_t tid = 0; tid < result.phases.threads.size(); ++tid) {
    const auto& t = result.phases.threads[tid];
    table.add_row(std::to_string(tid),
                  {t.init_s(), t.compute_s(), t.barrier_wait_s(), t.spin_wait_s(),
                   t.accounted_s(),
                   seconds > 0 ? 100.0 * t.accounted_s() / seconds : std::nan("")});
  }
  table.print(std::cout);
  std::cout << "load imbalance (max/mean busy): " << result.phases.imbalance()
            << '\n';
}

}  // namespace

int main(int argc, char** argv) try {
  ArgParser args("nustencil", "run iterative stencil schemes (IPDPS'12 reproduction)");
  args.add_option("scheme",
                  "one of NaiveSSE, CATS, nuCATS, CORALS, nuCORALS, Pochoir, "
                  "PLuTo, MWD, nuMWD",
                  "nuCORALS");
  args.add_option("shape", "domain extents, e.g. 128x128x128", "64x64x64");
  args.add_option("steps", "time steps (the paper runs 100)", "100");
  args.add_option("threads", "worker threads", "4");
  args.add_option("schedule",
                  "tile schedule: static (owner-computes), steal "
                  "(NUMA-distance-ordered work stealing), or steal_local "
                  "(steal only within the owner's NUMA node)",
                  "static");
  args.add_option("sweep-threads", "comma-separated thread counts (overrides --threads)",
                  "");
  args.add_option("group-size",
                  "MWD/nuMWD threads per diamond group (must divide --threads); "
                  "auto = cores sharing one LLC",
                  "auto");
  args.add_option("order", "stencil order s", "1");
  args.add_option("machine",
                  "instrumentation topology: xeon, opteron, host, or a machine "
                  "description file",
                  "xeon");
  args.add_option("seed", "deterministic initial-condition seed", "42");
  args.add_option("csv", "append results as CSV to this file", "");
  args.add_option("trace",
                  "write a Chrome trace-event JSON (Perfetto-loadable) of the "
                  "run to this file (one track per thread)",
                  "");
  args.add_option("trace-svg", "render the per-thread span timeline to this SVG file",
                  "");
  args.add_option("trace-buffer", "trace event ring capacity per thread", "65536");
  args.add_option("flamegraph",
                  "write the run's span stacks in collapsed/folded format "
                  "to this file (load with speedscope or flamegraph.pl)",
                  "");
  args.add_option("flamegraph-weight",
                  "flamegraph frame weight: time (self wall time), remote "
                  "(remote traffic bytes) or misses (deepest-level cache "
                  "misses)",
                  "time");
  args.add_option("progress",
                  "print a live heartbeat (layer, updates/s, locality %) to "
                  "stderr every SECONDS seconds",
                  "");
  args.add_option("telemetry",
                  "live telemetry: on samples the run's progress, traffic, "
                  "cache and scheduler shards into in-memory time-series "
                  "rings from a background thread; off (the default) "
                  "constructs nothing",
                  "off");
  args.add_option("telemetry-interval-ms",
                  "sampling interval of the telemetry thread, in milliseconds",
                  "100");
  args.add_option("telemetry-openmetrics",
                  "atomically rewrite an OpenMetrics text file at this path "
                  "on every telemetry sample (node_exporter textfile "
                  "collector compatible; requires --telemetry=on)",
                  "");
  args.add_option("telemetry-log",
                  "append one JSON object per telemetry event (samples, run "
                  "start/end, layer transitions, steal bursts, stalls) to "
                  "this file (requires --telemetry=on)",
                  "");
  args.add_option("watchdog-stall-intervals",
                  "flag a worker as stalled after this many telemetry "
                  "intervals without progress and dump a live diagnosis "
                  "(0 = watchdog off; requires --telemetry=on)",
                  "0");
  args.add_option("watchdog",
                  "stall response: warn (diagnose and keep running) or abort "
                  "(also stop the run with a nonzero exit, for CI)",
                  "warn");
  args.add_option("report",
                  "write a schema-versioned JSON run report to this file "
                  "(enables instrumentation, phase metrics and — unless "
                  "--no-cache-sim — trace-driven cache simulation; render "
                  "with nustencil_report)",
                  "");
  args.add_option("reps",
                  "timing repetitions for a --report run: N-1 lightweight "
                  "runs plus the final instrumented run feed a "
                  "median/MAD/CI stats section, so report diffs judge "
                  "time-derived deltas by interval overlap instead of a "
                  "fixed tolerance",
                  "1");
  args.add_option("hw-counters",
                  "measure real per-thread PMU counters via perf_event_open: "
                  "auto (count what the host offers, record why when it "
                  "offers nothing), on (auto + a loud warning on "
                  "degradation), or off (the default; no syscalls at all)",
                  "off");
  args.add_option("hw-events",
                  "comma-separated events for --hw-counters (default: "
                  "cycles,instructions,cache-references,cache-misses,"
                  "stalled-cycles; the software events task-clock and "
                  "page-faults count even without a PMU)",
                  "");
  args.add_option("kernel",
                  "row-kernel policy: auto, scalar, sse2, avx2, fma (not "
                  "bit-exact), or generic (runtime-taps baseline)",
                  "auto");
  args.add_option("kernel-stores",
                  "write-field store discipline: auto (stream only "
                  "LLC-busting sweeps on 64B-aligned rows), stream (force "
                  "non-temporal stores where the layout allows), or regular",
                  "auto");
  args.add_flag("banded", "variable coefficients (7-band matrix for s=1)");
  args.add_flag("dirichlet", "Dirichlet boundaries in every dimension");
  args.add_flag("instrument", "measure NUMA locality under --machine's topology");
  args.add_flag("check", "validate the space-time dependency order of every update");
  args.add_flag("verify", "compare the result against the reference executor");
  args.add_flag("no-simd", "disable the SSE2/AVX kernels");
  args.add_flag("pin", "pin worker threads to host cores");
  args.add_flag("phase-metrics",
                "print per-thread compute/barrier-wait/spinflag-wait/init wall-time "
                "totals and the load-imbalance ratio");
  args.add_flag("no-cache-sim",
                "skip the cache simulation a --report run would otherwise do");
  args.add_flag("explain", "print the plan the scheme would execute, then exit");
  if (!args.parse(argc, argv)) return 0;

  const Coord shape = parse_shape(args.get("shape"));
  const int order = static_cast<int>(args.get_long("order"));
  const core::StencilSpec stencil =
      args.get_flag("banded") ? core::StencilSpec::banded_star(shape.rank(), order)
      : (shape.rank() == 3 && order == 1) ? core::StencilSpec::paper_3d7p()
                                          : core::StencilSpec::stable_star(shape.rank(), order);

  topology::MachineSpec machine_storage;
  const topology::MachineSpec* machine =
      machine_by_name(args.get("machine"), machine_storage);

  std::vector<int> thread_counts;
  for (const int t : parse_int_list(args.get("sweep-threads")))
    thread_counts.push_back(ArgParser::validate_thread_count(t, machine->cores()));
  if (thread_counts.empty())
    thread_counts.push_back(ArgParser::validate_thread_count(
        args.get_long("threads"), machine->cores()));

  const sched::Schedule schedule = sched::parse_schedule(args.get("schedule"));
  // 0 = auto; explicit values are validated against each run's thread
  // count (a sweep can make the same --group-size legal for 8 threads and
  // illegal for 6).
  const long group_size_raw =
      args.get("group-size") == "auto" ? 0 : args.get_long("group-size");

  const core::KernelPolicy kernel_policy =
      args.get_flag("no-simd") ? core::KernelPolicy::Scalar
                               : core::parse_kernel_policy(args.get("kernel"));
  const core::StorePolicy kernel_stores =
      core::parse_store_policy(args.get("kernel-stores"));

  const hwc::Mode hw_mode = hwc::parse_mode(args.get("hw-counters"));
  std::vector<hwc::Event> hw_events;
  if (!args.get("hw-events").empty()) {
    NUSTENCIL_CHECK(hw_mode != hwc::Mode::Off,
                    "--hw-events requires --hw-counters=auto or on");
    hw_events = hwc::parse_event_list(args.get("hw-events"));
  }
  // Runtime unavailability (paranoid level, missing vPMU, seccomp)
  // degrades gracefully even under `on`; only a build without any
  // counter backend is rejected up front.
  NUSTENCIL_CHECK(hw_mode != hwc::Mode::On || hwc::real_backend().supported(),
                  "--hw-counters=on: this build has no perf_event backend "
                  "(non-Linux); use auto or off");

  // What the executors will ask the kernel engine for (geometry, layout,
  // store policy) — drives --explain and the run report.  The CLI's
  // problems use the dense layout, whose rows are 64B-aligned exactly
  // when the x extent is a multiple of 8 doubles.
  core::KernelRequest kernel_request;
  kernel_request.ntaps = stencil.npoints();
  kernel_request.banded = stencil.banded();
  kernel_request.rank = shape.rank();
  kernel_request.order = stencil.order();
  kernel_request.rows_aligned = shape[0] % 8 == 0;
  kernel_request.stores = kernel_stores;
  kernel_request.bytes_touched =
      (2 + (stencil.banded() ? stencil.npoints() : 0)) * shape.product() *
      static_cast<Index>(sizeof(double));

  const std::string trace_path = args.get("trace");
  const std::string trace_svg_path = args.get("trace-svg");
  const std::string report_path = args.get("report");
  const std::string flame_path = args.get("flamegraph");
  const prof::FlameWeight flame_weight =
      prof::parse_flame_weight(args.get("flamegraph-weight"));
  const bool want_trace =
      !trace_path.empty() || !trace_svg_path.empty() || !flame_path.empty();
  const bool want_report = !report_path.empty();
  const bool want_cache_sim = want_report && !args.get_flag("no-cache-sim");
  const int reps = static_cast<int>(
      ArgParser::validate_positive("--reps", args.get_long("reps")));
  if (reps > 1 && !want_report)
    std::cerr << "warning: --reps only affects --report runs (the stats "
                 "section); ignoring it\n";
  const bool want_phases =
      args.get_flag("phase-metrics") || want_trace || want_report;
  const int trace_buffer = static_cast<int>(
      ArgParser::validate_positive("--trace-buffer", args.get_long("trace-buffer")));
  // --progress takes an interval in seconds; empty (the default) is off.
  const double progress_interval =
      args.get("progress").empty()
          ? 0.0
          : ArgParser::validate_positive_seconds("--progress",
                                                 args.get_double("progress"));

  const bool telemetry_on = telemetry::parse_telemetry_enabled(args.get("telemetry"));
  const double telemetry_interval_s =
      ArgParser::validate_positive_ms("--telemetry-interval-ms",
                                      args.get_double("telemetry-interval-ms")) *
      1e-3;
  const std::string openmetrics_path = args.get("telemetry-openmetrics");
  const std::string telemetry_log_path = args.get("telemetry-log");
  const int watchdog_intervals = static_cast<int>(ArgParser::validate_non_negative(
      "--watchdog-stall-intervals", args.get_long("watchdog-stall-intervals")));
  const telemetry::WatchdogAction watchdog_action =
      telemetry::parse_watchdog_action(args.get("watchdog"));
  if (!telemetry_on) {
    NUSTENCIL_CHECK(openmetrics_path.empty(),
                    "--telemetry-openmetrics requires --telemetry=on");
    NUSTENCIL_CHECK(telemetry_log_path.empty(),
                    "--telemetry-log requires --telemetry=on");
    NUSTENCIL_CHECK(watchdog_intervals == 0,
                    "--watchdog-stall-intervals requires --telemetry=on");
    NUSTENCIL_CHECK(watchdog_action == telemetry::WatchdogAction::Warn,
                    "--watchdog=abort requires --telemetry=on");
  }

  if (args.get_flag("explain")) {
    std::cout << schemes::describe_plan(
                     args.get("scheme"), shape, stencil, *machine,
                     thread_counts.front(), args.get_long("steps"), schedule,
                     group_size_raw == 0
                         ? 0
                         : ArgParser::validate_group_size(group_size_raw,
                                                          thread_counts.front()))
              << core::explain_kernel_choice(kernel_policy, kernel_request)
              << trace::describe_observability(trace_path, trace_svg_path,
                                               args.get_flag("phase-metrics"),
                                               trace_buffer)
              << hwc::describe_hw(hw_mode, hw_events, hwc::real_backend())
              << telemetry::describe_telemetry(telemetry_on, telemetry_interval_s,
                                               openmetrics_path,
                                               telemetry_log_path,
                                               watchdog_intervals,
                                               watchdog_action)
              << metrics::describe_report(report_path, want_cache_sim);
    return 0;
  }

  const bool sweeping = thread_counts.size() > 1;
  std::vector<schemes::RunResult> results;
  std::vector<double> diffs;

  for (const int threads : thread_counts) {
    const auto scheme = schemes::make_scheme(args.get("scheme"));
    schemes::RunConfig cfg;
    cfg.num_threads = threads;
    cfg.timesteps = args.get_long("steps");
    cfg.instrument = args.get_flag("instrument");
    cfg.check_dependencies = args.get_flag("check");
    cfg.use_simd = !args.get_flag("no-simd");
    cfg.kernel = kernel_policy;
    cfg.kernel_stores = kernel_stores;
    cfg.pin_threads = args.get_flag("pin");
    cfg.schedule = schedule;
    cfg.group_size = group_size_raw == 0
                         ? 0
                         : ArgParser::validate_group_size(group_size_raw, threads);
    cfg.machine = machine;
    cfg.hw_mode = hw_mode;
    cfg.hw_events = hw_events;
    cfg.seed = static_cast<unsigned>(args.get_long("seed"));
    if (args.get_flag("dirichlet")) cfg.boundary = core::Boundary::dirichlet();
    if (args.get("scheme") == "CATS" || args.get("scheme") == "nuCATS")
      cfg.boundary[2] = core::BoundaryKind::Dirichlet;

    std::optional<trace::Trace> tr;
    if (want_trace) {
      tr.emplace(trace_buffer);
      cfg.trace = &*tr;
    }
    cfg.collect_phase_metrics = want_phases;
    // Per-span counter attribution rides on any trace; a report-only run
    // still profiles through the metrics-only recorder (no events, but
    // the exact counter totals feed the report's prof section).
    cfg.profile_spans = want_trace || want_report;

    std::optional<metrics::Registry> registry;
    std::optional<cachesim::SharedHierarchy> cache_sim;
    if (want_report) {
      cfg.instrument = true;
      registry.emplace(threads);
      cfg.metrics = &*registry;
      if (want_cache_sim) {
        cache_sim.emplace(*machine, threads);
        cfg.cache_sim = &*cache_sim;
      }
    }

    // --reps: the first reps-1 repetitions run without the trace ring,
    // registry or cache simulator so their wall clock is representative;
    // the final instrumented run below contributes the last repetition
    // (and everything else in the report).
    std::vector<double> rep_seconds, rep_gup, rep_init, rep_compute,
        rep_barrier, rep_spin, rep_imbalance;
    const auto record_rep = [&](const schemes::RunResult& r) {
      rep_seconds.push_back(r.seconds);
      rep_gup.push_back(r.gupdates_per_second());
      rep_init.push_back(r.phases.total_s(trace::Phase::Init));
      rep_compute.push_back(r.phases.total_s(trace::Phase::Tile));
      rep_barrier.push_back(r.phases.total_s(trace::Phase::BarrierWait));
      rep_spin.push_back(r.phases.total_s(trace::Phase::SpinWait));
      rep_imbalance.push_back(r.phases.imbalance());
    };
    if (want_report) {
      for (int rep = 1; rep < reps; ++rep) {
        schemes::RunConfig warm = cfg;
        warm.trace = nullptr;
        warm.metrics = nullptr;
        warm.cache_sim = nullptr;
        warm.progress = nullptr;
        warm.telemetry = nullptr;  // timing reps: no sampler thread either
        warm.profile_spans = false;
        warm.hw_mode = hwc::Mode::Off;  // timing reps: no counter syscalls
        warm.collect_phase_metrics = true;
        core::Problem rep_problem(shape, stencil);
        record_rep(schemes::make_scheme(args.get("scheme"))
                       ->run(rep_problem, warm));
      }
    }

    // One periodic-snapshot path for both features: the telemetry
    // sampler owns the only background thread, and the --progress
    // heartbeat rides it (attach_heartbeat).  --progress without
    // telemetry runs the sampler in heartbeat-only mode — no rings, no
    // exports, the same output as before.  Neither flag: no meter, no
    // sampler, no thread.
    const std::string run_label =
        args.get("scheme") + " t" + std::to_string(threads);
    std::optional<prof::ProgressMeter> progress;
    std::optional<telemetry::Sampler> sampler;
    if (telemetry_on || progress_interval > 0.0) {
      progress.emplace(
          progress_interval > 0.0 ? progress_interval : telemetry_interval_s,
          std::cerr);
      progress->begin_run(run_label, threads,
                          static_cast<std::uint64_t>(shape.product()) *
                              static_cast<std::uint64_t>(cfg.timesteps));
      cfg.progress = &*progress;

      telemetry::Config tcfg;
      tcfg.sampling = telemetry_on;
      tcfg.interval_s = telemetry_interval_s;
      tcfg.label = run_label;
      if (!openmetrics_path.empty())
        tcfg.openmetrics_path = per_run_path(openmetrics_path, threads, sweeping);
      if (!telemetry_log_path.empty())
        tcfg.log_path = per_run_path(telemetry_log_path, threads, sweeping);
      tcfg.watchdog_stall_intervals = watchdog_intervals;
      tcfg.watchdog_action = watchdog_action;
      sampler.emplace(tcfg);
      if (progress_interval > 0.0)
        sampler->attach_heartbeat(&*progress, progress_interval);
      cfg.telemetry = &*sampler;
    }

    core::Problem problem(shape, stencil);
    const schemes::RunResult result = scheme->run(problem, cfg);
    if (telemetry_on && sampler) {
      std::cout << "telemetry: " << sampler->samples_taken() << " sample(s) at "
                << telemetry_interval_s * 1e3 << " ms";
      if (sampler->stall_events() > 0)
        std::cout << ", " << sampler->stall_events() << " stall event(s)";
      if (!sampler->config().openmetrics_path.empty())
        std::cout << " | openmetrics " << sampler->config().openmetrics_path;
      if (!sampler->config().log_path.empty())
        std::cout << " | log " << sampler->config().log_path;
      std::cout << '\n';
    }
    if (result.hw.enabled) {
      if (result.hw.any_available()) {
        std::cout << "hw counters (" << result.hw.backend << "):";
        for (const auto& e : result.hw.events)
          if (e.available)
            std::cout << ' ' << hwc::event_name(e.event) << '='
                      << result.hw.totals[static_cast<std::size_t>(e.event)];
        if (result.hw.max_scaling() > 1.0)
          std::cout << " (multiplexed, scaling up to " << result.hw.max_scaling()
                    << "x — raw counts, not scaled up)";
        std::cout << '\n';
      }
      if (result.hw.status == "degraded") {
        (hw_mode == hwc::Mode::On ? std::cerr : std::cout)
            << (hw_mode == hwc::Mode::On ? "warning: --hw-counters=on degraded — "
                                         : "hw counters degraded — ")
            << result.hw.reason << '\n';
      }
    }
    const double diff = args.get_flag("verify")
                            ? verify_against_reference(problem, shape, stencil, cfg)
                            : std::nan("");

    if (tr && !trace_path.empty()) {
      const std::string path = per_run_path(trace_path, threads, sweeping);
      tr->write_chrome_json_file(path);
      std::cout << "wrote Chrome trace to " << path
                << " (load at https://ui.perfetto.dev or chrome://tracing)\n";
    }
    if (tr && !trace_svg_path.empty()) {
      const std::string path = per_run_path(trace_svg_path, threads, sweeping);
      trace::write_timeline_svg(*tr,
                                result.scheme + ", " + args.get("shape") + ", " +
                                    std::to_string(threads) + " thread(s)",
                                path);
      std::cout << "wrote timeline SVG to " << path << '\n';
    }
    if (tr && !flame_path.empty()) {
      const std::string path = per_run_path(flame_path, threads, sweeping);
      prof::write_flamegraph_file(path, *tr, result.scheme, flame_weight);
      std::cout << "wrote " << prof::flame_weight_name(flame_weight)
                << "-weighted flamegraph to " << path
                << " (load at https://speedscope.app or with flamegraph.pl)\n";
    }
    if (want_report) {
      metrics::RunReport rep;
      rep.scheme = result.scheme;
      rep.shape = args.get("shape");
      rep.timesteps = result.timesteps;
      rep.threads = threads;
      rep.kernel_policy = args.get_flag("no-simd") ? "scalar" : args.get("kernel");
      rep.kernel_variant =
          core::select_kernel(cfg.use_simd ? kernel_policy : core::KernelPolicy::Scalar,
                              kernel_request)
              .name();
      rep.page_bytes = cfg.page_bytes;
      rep.seed = cfg.seed;
      rep.pin_policy =
          cfg.pin_policy == numa::PinPolicy::Compact ? "compact" : "scatter";
      rep.schedule = sched::schedule_name(schedule);
      const BuildInfo& build = build_info();
      rep.git_sha = build.git_sha;
      rep.compiler = build.compiler;
      rep.compiler_flags = build.compiler_flags;
      rep.build_type = build.build_type;
      rep.machine_conf = args.get("machine");
      rep.sched = result.sched;
      rep.prof = &result.prof;
      rep.hw = &result.hw;
      rep.machine = machine;
      rep.seconds = result.seconds;
      rep.updates = result.updates;
      rep.gupdates_per_second = result.gupdates_per_second();
      if (args.get_flag("verify")) rep.max_rel_diff = diff;
      rep.traffic = result.traffic;
      cachesim::HierarchyTraffic cache_traffic;
      if (cache_sim) {
        cache_traffic = cache_sim->traffic();
        rep.cache = &cache_traffic;
        rep.cache_line_bytes = cache_sim->line_bytes();
      }
      rep.phases = result.phases;
      record_rep(result);
      if (reps > 1) {
        metrics::StatsSection stats;
        stats.reps = reps;
        stats.add("result/seconds", rep_seconds);
        stats.add("result/gupdates_per_s", rep_gup);
        stats.add("phase/init_s", rep_init);
        stats.add("phase/compute_s", rep_compute);
        stats.add("phase/barrier_wait_s", rep_barrier);
        stats.add("phase/spinflag_wait_s", rep_spin);
        stats.add("phase/imbalance", rep_imbalance);
        rep.stats = std::move(stats);
      }
      rep.model = build_model_section(*scheme, *machine, shape, stencil, result);
      if (telemetry_on && sampler) rep.timeseries = sampler->report_section();
      metrics::export_run_to_registry(*registry, rep);
      rep.registry = &*registry;
      const std::string path = per_run_path(report_path, threads, sweeping);
      metrics::write_run_report_file(rep, path);
      std::cout << "wrote run report to " << path
                << " (render with nustencil_report)\n";
    }
    if (args.get_flag("phase-metrics")) print_phase_metrics(result, result.seconds);

    results.push_back(result);
    diffs.push_back(diff);
    if (args.get_flag("verify") && !(diff <= 1e-12)) {
      std::cerr << "VERIFICATION FAILED: max relative difference " << diff << '\n';
      return 1;
    }
  }

  // Column set: the fixed summary columns, then every scheme-reported
  // detail as a stable `detail_<key>` column, then the phase breakdown.
  std::set<std::string> detail_keys;
  for (const auto& r : results)
    for (const auto& [key, value] : r.details) {
      (void)value;
      detail_keys.insert(key);
    }
  std::vector<std::string> header = metrics::csv_summary_columns();
  for (const auto& key : detail_keys)
    header.push_back(metrics::csv_detail_column(key));
  if (want_phases)
    for (const std::string& col : metrics::csv_phase_columns())
      header.push_back(col);

  Table table("nustencil: " + args.get("scheme") + " on " + args.get("shape") +
              (args.get_flag("banded") ? " (banded)" : "") + ", s=" +
              std::to_string(order) + ", " + args.get("steps") + " steps");
  table.set_header(header);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const schemes::RunResult& result = results[i];
    std::vector<double> row = {result.seconds, result.gupdates_per_second(),
                               result.gupdates_per_second() * stencil.flops(),
                               args.get_flag("instrument") || want_report
                                   ? result.traffic.locality() * 100.0
                                   : std::nan(""),
                               diffs[i]};
    for (const auto& key : detail_keys) {
      const auto it = result.details.find(key);
      row.push_back(it != result.details.end() ? it->second : std::nan(""));
    }
    if (want_phases) {
      row.push_back(result.phases.total_s(trace::Phase::Init));
      row.push_back(result.phases.total_s(trace::Phase::Tile));
      row.push_back(result.phases.total_s(trace::Phase::BarrierWait));
      row.push_back(result.phases.total_s(trace::Phase::SpinWait));
      row.push_back(result.phases.imbalance());
    }
    table.add_row(std::to_string(result.threads), row);
  }

  table.print(std::cout);
  if (const std::string csv = args.get("csv"); !csv.empty()) {
    std::ofstream out(csv, std::ios::app);
    NUSTENCIL_CHECK(out.good(), "cannot open CSV file " + csv);
    table.print_csv(out);
    std::cout << "appended CSV to " << csv << '\n';
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
