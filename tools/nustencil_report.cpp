// nustencil_report — renders a nustencil JSON run report (written by
// `nustencil --report=out.json`) into a self-contained HTML dashboard:
// the node-to-node traffic heatmap, the locality timeline, per-thread
// phase bars, and the roofline placement against the paper's reference
// lines.  No external assets; every panel is inline SVG.
//
//   nustencil_report run.json              # writes run.html
//   nustencil_report run.json dash.html
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "metrics/json.hpp"
#include "metrics/schema.hpp"
#include "report/svg_chart.hpp"
#include "report/svg_util.hpp"

namespace {

using namespace nustencil;
using metrics::JsonValue;

std::string heatmap_panel(const JsonValue& traffic) {
  const JsonValue& matrix = traffic.at("node_matrix");
  if (!matrix.is_array() || matrix.array.empty())
    return "<p>No traffic matrix (run was not instrumented).</p>\n";

  report::HeatmapSpec hm;
  hm.title = "node-to-node traffic (MiB)";
  hm.x_label = "owner node";
  hm.y_label = "consumer node";
  const std::size_t nodes = matrix.array.size();
  for (std::size_t n = 0; n < nodes; ++n) {
    hm.x_ticks.push_back(std::to_string(n));
    hm.y_ticks.push_back(std::to_string(n));
  }
  for (const JsonValue& row : matrix.array) {
    NUSTENCIL_CHECK(row.is_array() && row.array.size() == nodes,
                    "nustencil_report: ragged node_matrix");
    for (const JsonValue& cell : row.array)
      hm.values.push_back(cell.num() / (1024.0 * 1024.0));
  }
  return report::render_heatmap_svg(hm);
}

std::string locality_panel(const JsonValue& traffic) {
  const JsonValue& series = traffic.at("locality_series");
  if (!series.is_array() || series.array.size() < 2)
    return "<p>No locality time-series (need at least two samples).</p>\n";

  report::ChartSpec c;
  c.title = "NUMA locality over the run";
  c.x_label = "cell updates (millions)";
  c.y_label = "locality %";
  report::Series s;
  s.label = "locality";
  for (const JsonValue& sample : series.array) {
    std::ostringstream tick;
    tick.precision(3);
    tick << sample.at("updates").num() / 1e6;
    c.x_ticks.push_back(tick.str());
    s.values.push_back(sample.at("locality").num() * 100.0);
  }
  c.series.push_back(std::move(s));
  return report::render_svg(c);
}

std::string phases_panel(const JsonValue& phases) {
  const JsonValue* enabled = phases.find("enabled");
  if (!enabled || !enabled->boolean_value())
    return "<p>No phase breakdown (run without phase metrics).</p>\n";

  report::StackedBarSpec sb;
  sb.title = "per-thread phase breakdown";
  sb.x_label = "thread";
  sb.y_label = "seconds";
  sb.segments = {{"init", {}}, {"compute", {}}, {"barrier wait", {}},
                 {"spin-flag wait", {}}};
  const char* keys[] = {"init_s", "compute_s", "barrier_wait_s",
                        "spinflag_wait_s"};
  const JsonValue& threads = phases.at("threads");
  for (std::size_t tid = 0; tid < threads.array.size(); ++tid) {
    sb.x_ticks.push_back(std::to_string(tid));
    for (std::size_t k = 0; k < 4; ++k)
      sb.segments[k].values.push_back(threads.array[tid].at(keys[k]).num());
  }
  return report::render_stacked_bars_svg(sb);
}

std::string roofline_panel(const JsonValue& doc) {
  const JsonValue& model = doc.at("model");
  const JsonValue* lines = model.find("lines");
  if (!lines) return "<p>No model section in this report.</p>\n";

  report::ChartSpec c;
  c.title = "roofline: model placement vs reference lines";
  c.x_label = "cores";
  c.y_label = "Gupdates/s per core";
  const JsonValue& cores = lines->at("cores");
  for (const JsonValue& v : cores.array)
    c.x_ticks.push_back(std::to_string(static_cast<long>(v.num())));

  report::Series peak{"Peak DP", {}}, llc{"LL1Band0C", {}};
  for (const JsonValue& v : lines->at("peak_dp").array) peak.values.push_back(v.num());
  for (const JsonValue& v : lines->at("ll1band0c").array) llc.values.push_back(v.num());

  // The model placement and the wall-clock measurement are single points
  // at the run's core count: a one-point series renders as a marker.
  const double threads = doc.at("config").at("threads").num();
  const double model_point = model.at("gupdates_per_core").num();
  const double measured =
      doc.at("result").at("gupdates_per_s").num() / std::max(1.0, threads);
  report::Series model_s{"model @" + std::to_string(static_cast<long>(threads)),
                         {}};
  report::Series meas_s{"measured (wall clock)", {}};
  for (const JsonValue& v : cores.array) {
    const bool here = static_cast<long>(v.num()) == static_cast<long>(threads);
    model_s.values.push_back(here ? model_point : std::nan(""));
    meas_s.values.push_back(here ? measured : std::nan(""));
  }
  c.series = {peak, llc, model_s, meas_s};
  return report::render_svg(c);
}

std::string summary_table(const JsonValue& doc) {
  const JsonValue& cfg = doc.at("config");
  const JsonValue& res = doc.at("result");
  const JsonValue& traffic = doc.at("traffic");
  std::ostringstream os;
  os << "<table>\n";
  const auto row = [&](const std::string& k, const std::string& v) {
    os << "<tr><th>" << report::svg_escape(k) << "</th><td>"
       << report::svg_escape(v) << "</td></tr>\n";
  };
  row("scheme", cfg.at("scheme").str());
  row("shape", cfg.at("shape").str() + ", " +
                   report::fmt_num(cfg.at("timesteps").num()) + " steps");
  row("threads", report::fmt_num(cfg.at("threads").num()));
  if (const JsonValue* name = doc.at("machine").find("name"))
    row("machine", name->str());
  row("kernel", cfg.at("kernel_variant").str());
  row("wall clock", report::fmt_num(res.at("seconds").num()) + " s");
  row("throughput", report::fmt_num(res.at("gupdates_per_s").num()) +
                        " Gupdates/s");
  row("locality", report::fmt_num(traffic.at("locality").num() * 100.0) + " %");
  const JsonValue& diff = res.at("max_rel_diff");
  if (diff.type == JsonValue::Type::Number)
    row("max rel diff", report::fmt_num(diff.num()));
  os << "</table>\n";
  return os.str();
}

std::string cache_table(const JsonValue& cache) {
  const JsonValue* levels = cache.find("levels");
  if (!levels) return "<p>No cache simulation in this report.</p>\n";
  std::ostringstream os;
  os << "<table>\n<tr><th>level</th><th>hits</th><th>misses</th>"
        "<th>hit rate</th></tr>\n";
  for (const JsonValue& lv : levels->array) {
    os << "<tr><td>L" << report::fmt_num(lv.at("level").num()) << "</td><td>"
       << report::fmt_num(lv.at("hits").num()) << "</td><td>"
       << report::fmt_num(lv.at("misses").num()) << "</td><td>"
       << report::fmt_num(lv.at("hit_rate").num() * 100.0) << " %</td></tr>\n";
  }
  os << "</table>\n";
  return os.str();
}

std::string counters_table(const JsonValue& doc) {
  const JsonValue& counters = doc.at("counters");
  if (counters.object.empty()) return "";
  std::ostringstream os;
  os << "<h2>Counters</h2>\n<table>\n";
  for (const auto& [name, v] : counters.object)
    os << "<tr><th>" << report::svg_escape(name) << "</th><td>"
       << report::fmt_num(v.num()) << "</td></tr>\n";
  os << "</table>\n";
  return os.str();
}

std::string render_dashboard(const JsonValue& doc) {
  const double version = doc.at("schema_version").num();
  NUSTENCIL_CHECK(static_cast<int>(version) == metrics::kRunReportSchemaVersion,
                  "nustencil_report: unsupported schema version " +
                      std::to_string(static_cast<int>(version)));

  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset='utf-8'>\n<title>"
     << report::svg_escape(doc.at("config").at("scheme").str())
     << " run report</title>\n<style>\n"
        "body{font-family:sans-serif;max-width:1080px;margin:24px auto;}\n"
        "table{border-collapse:collapse;margin:12px 0;}\n"
        "th,td{border:1px solid #ccc;padding:4px 10px;text-align:left;"
        "font-size:14px;}\n"
        "svg{display:block;margin:16px 0;}\n"
        "</style>\n</head>\n<body>\n";
  os << "<h1>nustencil run report</h1>\n";
  os << summary_table(doc);
  os << "<h2>NUMA traffic</h2>\n" << heatmap_panel(doc.at("traffic"));
  os << "<h2>Locality timeline</h2>\n" << locality_panel(doc.at("traffic"));
  os << "<h2>Phases</h2>\n" << phases_panel(doc.at("phases"));
  os << "<h2>Roofline</h2>\n" << roofline_panel(doc);
  os << "<h2>Cache hierarchy</h2>\n" << cache_table(doc.at("cache"));
  os << counters_table(doc);
  os << "</body>\n</html>\n";
  return os.str();
}

std::string default_output(const std::string& input) {
  const std::size_t dot = input.rfind('.');
  if (dot == std::string::npos || input.find('/', dot) != std::string::npos)
    return input + ".html";
  return input.substr(0, dot) + ".html";
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2 || argc > 3 || std::string(argv[1]) == "--help") {
    std::cerr << "usage: nustencil_report <report.json> [<out.html>]\n"
                 "renders a nustencil --report JSON file into a "
                 "self-contained HTML dashboard\n";
    return argc >= 2 && std::string(argv[1]) == "--help" ? 0 : 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argc == 3 ? argv[2] : default_output(in_path);

  const JsonValue doc = metrics::parse_json_file(in_path);
  const std::string html = render_dashboard(doc);

  std::ofstream out(out_path);
  NUSTENCIL_CHECK(out.good(), "nustencil_report: cannot open " + out_path);
  out << html;
  NUSTENCIL_CHECK(out.good(), "nustencil_report: write failed for " + out_path);
  std::cout << "wrote dashboard to " << out_path << '\n';
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
