// nustencil_report — renders a nustencil JSON run report (written by
// `nustencil --report=out.json`) into a self-contained HTML dashboard:
// the node-to-node traffic heatmap, the locality timeline, per-thread
// phase bars, and the roofline placement against the paper's reference
// lines.  No external assets; every panel is inline SVG.
//
//   nustencil_report run.json              # writes run.html
//   nustencil_report run.json dash.html
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "metrics/json.hpp"
#include "metrics/schema.hpp"
#include "report/svg_chart.hpp"
#include "report/svg_util.hpp"

namespace {

using namespace nustencil;
using metrics::JsonValue;

std::string heatmap_panel(const JsonValue& traffic) {
  const JsonValue& matrix = traffic.at("node_matrix");
  if (!matrix.is_array() || matrix.array.empty())
    return "<p>No traffic matrix (run was not instrumented).</p>\n";

  report::HeatmapSpec hm;
  hm.title = "node-to-node traffic (MiB)";
  hm.x_label = "owner node";
  hm.y_label = "consumer node";
  const std::size_t nodes = matrix.array.size();
  for (std::size_t n = 0; n < nodes; ++n) {
    hm.x_ticks.push_back(std::to_string(n));
    hm.y_ticks.push_back(std::to_string(n));
  }
  for (const JsonValue& row : matrix.array) {
    NUSTENCIL_CHECK(row.is_array() && row.array.size() == nodes,
                    "nustencil_report: ragged node_matrix");
    for (const JsonValue& cell : row.array)
      hm.values.push_back(cell.num() / (1024.0 * 1024.0));
  }
  return report::render_heatmap_svg(hm);
}

std::string locality_panel(const JsonValue& traffic) {
  const JsonValue& series = traffic.at("locality_series");
  if (!series.is_array() || series.array.size() < 2)
    return "<p>No locality time-series (need at least two samples).</p>\n";

  report::ChartSpec c;
  c.title = "NUMA locality over the run";
  c.x_label = "cell updates (millions)";
  c.y_label = "locality %";
  report::Series s;
  s.label = "locality";
  for (const JsonValue& sample : series.array) {
    std::ostringstream tick;
    tick.precision(3);
    tick << sample.at("updates").num() / 1e6;
    c.x_ticks.push_back(tick.str());
    s.values.push_back(sample.at("locality").num() * 100.0);
  }
  c.series.push_back(std::move(s));
  return report::render_svg(c);
}

std::string phases_panel(const JsonValue& phases) {
  const JsonValue* enabled = phases.find("enabled");
  if (!enabled || !enabled->boolean_value())
    return "<p>No phase breakdown (run without phase metrics).</p>\n";

  report::StackedBarSpec sb;
  sb.title = "per-thread phase breakdown";
  sb.x_label = "thread";
  sb.y_label = "seconds";
  sb.segments = {{"init", {}}, {"compute", {}}, {"barrier wait", {}},
                 {"spin-flag wait", {}}};
  const char* keys[] = {"init_s", "compute_s", "barrier_wait_s",
                        "spinflag_wait_s"};
  const JsonValue& threads = phases.at("threads");
  for (std::size_t tid = 0; tid < threads.array.size(); ++tid) {
    sb.x_ticks.push_back(std::to_string(tid));
    for (std::size_t k = 0; k < 4; ++k)
      sb.segments[k].values.push_back(threads.array[tid].at(keys[k]).num());
  }
  return report::render_stacked_bars_svg(sb);
}

std::string roofline_panel(const JsonValue& doc) {
  const JsonValue& model = doc.at("model");
  const JsonValue* lines = model.find("lines");
  if (!lines) return "<p>No model section in this report.</p>\n";

  report::ChartSpec c;
  c.title = "roofline: model placement vs reference lines";
  c.x_label = "cores";
  c.y_label = "Gupdates/s per core";
  const JsonValue& cores = lines->at("cores");
  for (const JsonValue& v : cores.array)
    c.x_ticks.push_back(std::to_string(static_cast<long>(v.num())));

  report::Series peak{"Peak DP", {}}, llc{"LL1Band0C", {}};
  for (const JsonValue& v : lines->at("peak_dp").array) peak.values.push_back(v.num());
  for (const JsonValue& v : lines->at("ll1band0c").array) llc.values.push_back(v.num());

  // The model placement and the wall-clock measurement are single points
  // at the run's core count: a one-point series renders as a marker.
  const double threads = doc.at("config").at("threads").num();
  const double model_point = model.at("gupdates_per_core").num();
  const double measured =
      doc.at("result").at("gupdates_per_s").num() / std::max(1.0, threads);
  report::Series model_s{"model @" + std::to_string(static_cast<long>(threads)),
                         {}};
  report::Series meas_s{"measured (wall clock)", {}};
  for (const JsonValue& v : cores.array) {
    const bool here = static_cast<long>(v.num()) == static_cast<long>(threads);
    model_s.values.push_back(here ? model_point : std::nan(""));
    meas_s.values.push_back(here ? measured : std::nan(""));
  }
  c.series = {peak, llc, model_s, meas_s};
  return report::render_svg(c);
}

std::string summary_table(const JsonValue& doc) {
  const JsonValue& cfg = doc.at("config");
  const JsonValue& res = doc.at("result");
  const JsonValue& traffic = doc.at("traffic");
  std::ostringstream os;
  os << "<table>\n";
  const auto row = [&](const std::string& k, const std::string& v) {
    os << "<tr><th>" << report::svg_escape(k) << "</th><td>"
       << report::svg_escape(v) << "</td></tr>\n";
  };
  row("scheme", cfg.at("scheme").str());
  row("shape", cfg.at("shape").str() + ", " +
                   report::fmt_num(cfg.at("timesteps").num()) + " steps");
  row("threads", report::fmt_num(cfg.at("threads").num()));
  if (const JsonValue* name = doc.at("machine").find("name"))
    row("machine", name->str());
  row("kernel", cfg.at("kernel_variant").str());
  row("wall clock", report::fmt_num(res.at("seconds").num()) + " s");
  row("throughput", report::fmt_num(res.at("gupdates_per_s").num()) +
                        " Gupdates/s");
  row("locality", report::fmt_num(traffic.at("locality").num() * 100.0) + " %");
  const JsonValue& diff = res.at("max_rel_diff");
  if (diff.type == JsonValue::Type::Number)
    row("max rel diff", report::fmt_num(diff.num()));
  os << "</table>\n";
  return os.str();
}

std::string cache_table(const JsonValue& cache) {
  const JsonValue* levels = cache.find("levels");
  if (!levels) return "<p>No cache simulation in this report.</p>\n";
  std::ostringstream os;
  os << "<table>\n<tr><th>level</th><th>hits</th><th>misses</th>"
        "<th>hit rate</th></tr>\n";
  for (const JsonValue& lv : levels->array) {
    os << "<tr><td>L" << report::fmt_num(lv.at("level").num()) << "</td><td>"
       << report::fmt_num(lv.at("hits").num()) << "</td><td>"
       << report::fmt_num(lv.at("misses").num()) << "</td><td>"
       << report::fmt_num(lv.at("hit_rate").num() * 100.0) << " %</td></tr>\n";
  }
  os << "</table>\n";
  return os.str();
}

// Maps a straggler verdict to a stable palette class so the table badge
// and the span-roofline scatter use the same colours.
int verdict_class(const std::string& verdict) {
  if (verdict == "remote-traffic-bound") return 1;
  if (verdict == "cache-miss-bound") return 2;
  if (verdict == "spin-bound") return 3;
  return 0;  // compute-bound
}

std::string straggler_table(const JsonValue& prof) {
  const JsonValue* stragglers = prof.find("stragglers");
  if (!stragglers || !stragglers->is_array() || stragglers->array.empty())
    return "<p>No stragglers recorded (run without --trace, or no sampled "
           "spans).</p>\n";
  std::ostringstream os;
  os << "<table>\n<tr><th>#</th><th>thread</th><th>phase</th><th>ms</th>"
        "<th>x mean</th><th>verdict</th><th>spin</th><th>remote</th>"
        "<th>miss</th><th>updates</th></tr>\n";
  std::size_t rank = 1;
  for (const JsonValue& s : stragglers->array) {
    const std::string verdict = s.at("verdict").str();
    const double mean = s.at("mean_dur_ms").num();
    const double ratio = mean > 0.0 ? s.at("dur_ms").num() / mean : 0.0;
    os << "<tr><td>" << rank++ << "</td><td>"
       << report::fmt_num(s.at("tid").num()) << "</td><td>"
       << report::svg_escape(s.at("phase").str()) << "</td><td>"
       << report::fmt_num(s.at("dur_ms").num()) << "</td><td>"
       << report::fmt_num(ratio) << "x</td><td><span class='verdict v"
       << verdict_class(verdict) << "'>" << report::svg_escape(verdict)
       << "</span></td><td>"
       << report::fmt_num(s.at("spin_frac").num() * 100.0) << " %</td><td>"
       << report::fmt_num(s.at("remote_frac").num() * 100.0) << " %</td><td>"
       << report::fmt_num(s.at("miss_rate").num() * 100.0) << " %</td><td>"
       << report::fmt_num(s.at("updates").num()) << "</td></tr>\n";
  }
  os << "</table>\n";
  return os.str();
}

std::string span_roofline_panel(const JsonValue& prof) {
  const JsonValue* roofline = prof.find("roofline");
  if (!roofline || !roofline->is_array() || roofline->array.empty())
    return "<p>No per-span samples (run with --trace to collect them).</p>\n";

  report::ScatterSpec sc;
  sc.title = "per-span roofline (one point per sampled tile)";
  sc.x_label = "arithmetic intensity (FLOP/byte)";
  sc.y_label = "GFLOPS";
  sc.class_labels = {"compute-bound", "remote-traffic-bound",
                     "cache-miss-bound", "spin-bound"};
  for (const JsonValue& p : roofline->array) {
    report::ScatterPoint pt;
    pt.x = p.at("ai").num();
    pt.y = p.at("gflops").num();
    pt.cls = verdict_class(p.at("verdict").str());
    sc.points.push_back(pt);
  }
  return report::render_scatter_svg(sc);
}

std::string prof_section(const JsonValue& doc) {
  const JsonValue* prof = doc.find("prof");
  std::ostringstream os;
  os << "<h2>Per-span attribution</h2>\n";
  if (!prof || !prof->at("enabled").boolean_value()) {
    os << "<p>Per-span attribution was disabled for this run.</p>\n";
    return os.str();
  }
  os << "<p>" << report::fmt_num(prof->at("sampled_spans").num())
     << " spans sampled, " << report::fmt_num(prof->at("dropped_events").num())
     << " trace events dropped.</p>\n";
  os << "<h3>Stragglers (slowest spans)</h3>\n" << straggler_table(*prof);
  os << "<h3>Span roofline</h3>\n" << span_roofline_panel(*prof);
  return os.str();
}

std::string provenance_footer(const JsonValue& doc) {
  const JsonValue* prov = doc.find("provenance");
  if (!prov) return "";
  std::ostringstream os;
  os << "<footer><p class='prov'>";
  const auto item = [&](const char* key, const std::string& label) {
    if (const JsonValue* v = prov->find(key); v && !v->str().empty())
      os << label << " " << report::svg_escape(v->str()) << " &middot; ";
  };
  item("git_sha", "commit");
  item("compiler", "compiler");
  item("build_type", "build");
  item("machine_conf", "machine conf");
  if (const JsonValue* flags = prov->find("compiler_flags");
      flags && !flags->str().empty())
    os << "flags <code>" << report::svg_escape(flags->str()) << "</code>";
  os << "</p></footer>\n";
  return os.str();
}

std::string counters_table(const JsonValue& doc) {
  const JsonValue& counters = doc.at("counters");
  if (counters.object.empty()) return "";
  std::ostringstream os;
  os << "<h2>Counters</h2>\n<table>\n";
  for (const auto& [name, v] : counters.object)
    os << "<tr><th>" << report::svg_escape(name) << "</th><td>"
       << report::fmt_num(v.num()) << "</td></tr>\n";
  os << "</table>\n";
  return os.str();
}

std::string render_dashboard(const JsonValue& doc) {
  const double version = doc.at("schema_version").num();
  NUSTENCIL_CHECK(static_cast<int>(version) == metrics::kRunReportSchemaVersion,
                  "nustencil_report: unsupported schema version " +
                      std::to_string(static_cast<int>(version)));

  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset='utf-8'>\n<title>"
     << report::svg_escape(doc.at("config").at("scheme").str())
     << " run report</title>\n<style>\n"
        "body{font-family:sans-serif;max-width:1080px;margin:24px auto;}\n"
        "table{border-collapse:collapse;margin:12px 0;}\n"
        "th,td{border:1px solid #ccc;padding:4px 10px;text-align:left;"
        "font-size:14px;}\n"
        "svg{display:block;margin:16px 0;}\n"
        // Verdict badge colours match palette_color(verdict_class(...)).
        ".verdict{color:white;padding:1px 6px;border-radius:3px;"
        "font-size:12px;}\n"
        ".v0{background:#1f77b4;}.v1{background:#d62728;}\n"
        ".v2{background:#2ca02c;}.v3{background:#ff7f0e;}\n"
        "footer p.prov{color:#777;font-size:12px;border-top:1px solid #ccc;"
        "padding-top:8px;}\n"
        "</style>\n</head>\n<body>\n";
  os << "<h1>nustencil run report</h1>\n";
  os << summary_table(doc);
  os << "<h2>NUMA traffic</h2>\n" << heatmap_panel(doc.at("traffic"));
  os << "<h2>Locality timeline</h2>\n" << locality_panel(doc.at("traffic"));
  os << "<h2>Phases</h2>\n" << phases_panel(doc.at("phases"));
  os << "<h2>Roofline</h2>\n" << roofline_panel(doc);
  os << "<h2>Cache hierarchy</h2>\n" << cache_table(doc.at("cache"));
  os << prof_section(doc);
  os << counters_table(doc);
  os << provenance_footer(doc);
  os << "</body>\n</html>\n";
  return os.str();
}

std::string default_output(const std::string& input) {
  const std::size_t dot = input.rfind('.');
  if (dot == std::string::npos || input.find('/', dot) != std::string::npos)
    return input + ".html";
  return input.substr(0, dot) + ".html";
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2 || argc > 3 || std::string(argv[1]) == "--help") {
    std::cerr << "usage: nustencil_report <report.json> [<out.html>]\n"
                 "renders a nustencil --report JSON file into a "
                 "self-contained HTML dashboard\n";
    return argc >= 2 && std::string(argv[1]) == "--help" ? 0 : 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argc == 3 ? argv[2] : default_output(in_path);

  const JsonValue doc = metrics::parse_json_file(in_path);
  const std::string html = render_dashboard(doc);

  std::ofstream out(out_path);
  NUSTENCIL_CHECK(out.good(), "nustencil_report: cannot open " + out_path);
  out << html;
  NUSTENCIL_CHECK(out.good(), "nustencil_report: write failed for " + out_path);
  std::cout << "wrote dashboard to " << out_path << '\n';
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
