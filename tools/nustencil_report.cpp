// nustencil_report — renders nustencil JSON run reports (written by
// `nustencil --report=out.json`) into self-contained HTML dashboards.
//
// Single-run mode renders the traffic heatmap, locality timeline,
// per-thread phase bars, roofline placement, per-span attribution and —
// when a trajectory database (BENCH_trajectory.json) is present —
// performance-trajectory sparklines.  Diff mode loads two reports,
// classifies every metric delta as significant or noise (CI overlap
// when both runs carry --reps stats), attributes each significant delta
// to a cause with numeric evidence, prints the compact console verdict
// table for CI logs, and renders the diff dashboard: config deltas,
// verdict table, phase-time waterfall, NUMA traffic delta heatmap and
// side-by-side rooflines.  Reports of any schema version >= 1 are
// accepted; absent sections are skipped, not errors.
//
//   nustencil_report run.json                    # writes run.html
//   nustencil_report run.json dash.html
//   nustencil_report --diff A.json B.json [diff.html]
//   nustencil_report --diff A.json B.json --no-html   # console verdicts only
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/error.hpp"
#include "metrics/diff.hpp"
#include "metrics/json.hpp"
#include "metrics/schema.hpp"
#include "metrics/trajectory.hpp"
#include "report/svg_chart.hpp"
#include "report/svg_util.hpp"

namespace {

using namespace nustencil;
using metrics::JsonValue;

// ---------------------------------------------------------------------------
// Shared panel plumbing

/// Renders `panel(doc)`; a missing/short section in an older or
/// truncated report degrades to a note instead of killing the dashboard.
template <typename Fn>
std::string panel_or(const JsonValue& doc, Fn panel, const char* what) {
  try {
    return panel(doc);
  } catch (const std::exception&) {
    return std::string("<p>No ") + what + " section in this report.</p>\n";
  }
}

std::string heatmap_panel(const JsonValue& doc) {
  const JsonValue& traffic = doc.at("traffic");
  const JsonValue& matrix = traffic.at("node_matrix");
  if (!matrix.is_array() || matrix.array.empty())
    return "<p>No traffic matrix (run was not instrumented).</p>\n";

  report::HeatmapSpec hm;
  hm.title = "node-to-node traffic (MiB)";
  hm.x_label = "owner node";
  hm.y_label = "consumer node";
  const std::size_t nodes = matrix.array.size();
  for (std::size_t n = 0; n < nodes; ++n) {
    hm.x_ticks.push_back(std::to_string(n));
    hm.y_ticks.push_back(std::to_string(n));
  }
  for (const JsonValue& row : matrix.array) {
    NUSTENCIL_CHECK(row.is_array() && row.array.size() == nodes,
                    "nustencil_report: ragged node_matrix");
    for (const JsonValue& cell : row.array)
      hm.values.push_back(cell.num() / (1024.0 * 1024.0));
  }
  return report::render_heatmap_svg(hm);
}

std::string locality_panel(const JsonValue& doc) {
  const JsonValue& series = doc.at("traffic").at("locality_series");
  if (!series.is_array() || series.array.size() < 2)
    return "<p>No locality time-series (need at least two samples).</p>\n";

  report::ChartSpec c;
  c.title = "NUMA locality over the run";
  c.x_label = "cell updates (millions)";
  c.y_label = "locality %";
  report::Series s;
  s.label = "locality";
  for (const JsonValue& sample : series.array) {
    std::ostringstream tick;
    tick.precision(3);
    tick << sample.at("updates").num() / 1e6;
    c.x_ticks.push_back(tick.str());
    s.values.push_back(sample.at("locality").num() * 100.0);
  }
  c.series.push_back(std::move(s));
  return report::render_svg(c);
}

std::string timeseries_panel(const JsonValue& doc) {
  const JsonValue& ts = doc.at("timeseries");
  const JsonValue* enabled = ts.find("enabled");
  if (!enabled || !enabled->boolean_value())
    return "<p>No live telemetry (run with <code>--telemetry=on</code>).</p>\n";
  const JsonValue& t_ms = ts.at("t_ms");
  if (!t_ms.is_array() || t_ms.array.size() < 2)
    return "<p>Telemetry rings hold fewer than two samples.</p>\n";

  std::ostringstream os;
  os << "<p>" << report::fmt_num(ts.at("samples").num()) << " sample(s) at "
     << report::fmt_num(ts.at("interval_ms").num()) << " ms";
  if (const double stalls = ts.at("stall_events").num(); stalls > 0)
    os << ", <b>" << report::fmt_num(stalls) << " watchdog stall event(s)</b>";
  os << " (downsampled to " << t_ms.array.size() << " point(s)).</p>\n";

  // One chart per per-thread series family; the run/* aggregates ride
  // the same axis in the JSON but a per-thread fan is the useful view.
  const auto chart = [&](const char* title, const char* y_label,
                         const std::string& suffix) {
    report::ChartSpec c;
    c.title = title;
    c.x_label = "run time (ms)";
    c.y_label = y_label;
    c.height = 300;
    for (const JsonValue& v : t_ms.array) {
      std::ostringstream tick;
      tick.precision(4);
      tick << v.num();
      c.x_ticks.push_back(tick.str());
    }
    for (const JsonValue& s : ts.at("series").array) {
      const std::string name = s.at("name").str();
      if (name.rfind("thread", 0) != 0) continue;
      if (name.size() < suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
        continue;
      report::Series out;
      out.label = name.substr(0, name.size() - suffix.size());
      for (const JsonValue& v : s.at("values").array)
        out.values.push_back(v.num());
      c.series.push_back(std::move(out));
    }
    if (c.series.empty()) return std::string();
    return report::render_svg(c);
  };
  os << chart("per-thread throughput over the run", "M updates/s", "/mups");
  os << chart("per-thread locality over the run", "locality %", "/locality");
  return os.str();
}

std::string phases_panel(const JsonValue& doc) {
  const JsonValue& phases = doc.at("phases");
  const JsonValue* enabled = phases.find("enabled");
  if (!enabled || !enabled->boolean_value())
    return "<p>No phase breakdown (run without phase metrics).</p>\n";

  report::StackedBarSpec sb;
  sb.title = "per-thread phase breakdown";
  sb.x_label = "thread";
  sb.y_label = "seconds";
  sb.segments = {{"init", {}}, {"compute", {}}, {"barrier wait", {}},
                 {"spin-flag wait", {}}};
  const char* keys[] = {"init_s", "compute_s", "barrier_wait_s",
                        "spinflag_wait_s"};
  const JsonValue& threads = phases.at("threads");
  for (std::size_t tid = 0; tid < threads.array.size(); ++tid) {
    sb.x_ticks.push_back(std::to_string(tid));
    for (std::size_t k = 0; k < 4; ++k)
      sb.segments[k].values.push_back(threads.array[tid].at(keys[k]).num());
  }
  return report::render_stacked_bars_svg(sb);
}

std::string roofline_panel(const JsonValue& doc) {
  const JsonValue& model = doc.at("model");
  const JsonValue* lines = model.find("lines");
  if (!lines) return "<p>No model section in this report.</p>\n";

  report::ChartSpec c;
  c.title = "roofline: model placement vs reference lines";
  c.x_label = "cores";
  c.y_label = "Gupdates/s per core";
  const JsonValue& cores = lines->at("cores");
  for (const JsonValue& v : cores.array)
    c.x_ticks.push_back(std::to_string(static_cast<long>(v.num())));

  report::Series peak{"Peak DP", {}}, llc{"LL1Band0C", {}};
  for (const JsonValue& v : lines->at("peak_dp").array) peak.values.push_back(v.num());
  for (const JsonValue& v : lines->at("ll1band0c").array) llc.values.push_back(v.num());

  // The model placement and the wall-clock measurement are single points
  // at the run's core count: a one-point series renders as a marker.
  const double threads = doc.at("config").at("threads").num();
  const double model_point = model.at("gupdates_per_core").num();
  const double measured =
      doc.at("result").at("gupdates_per_s").num() / std::max(1.0, threads);
  report::Series model_s{"model @" + std::to_string(static_cast<long>(threads)),
                         {}};
  report::Series meas_s{"measured (wall clock)", {}};
  for (const JsonValue& v : cores.array) {
    const bool here = static_cast<long>(v.num()) == static_cast<long>(threads);
    model_s.values.push_back(here ? model_point : std::nan(""));
    meas_s.values.push_back(here ? measured : std::nan(""));
  }
  c.series = {peak, llc, model_s, meas_s};
  return report::render_svg(c);
}

std::string summary_table(const JsonValue& doc) {
  const JsonValue& cfg = doc.at("config");
  const JsonValue& res = doc.at("result");
  const JsonValue& traffic = doc.at("traffic");
  std::ostringstream os;
  os << "<table>\n";
  const auto row = [&](const std::string& k, const std::string& v) {
    os << "<tr><th>" << report::svg_escape(k) << "</th><td>"
       << report::svg_escape(v) << "</td></tr>\n";
  };
  row("scheme", cfg.at("scheme").str());
  row("shape", cfg.at("shape").str() + ", " +
                   report::fmt_num(cfg.at("timesteps").num()) + " steps");
  row("threads", report::fmt_num(cfg.at("threads").num()));
  if (const JsonValue* name = doc.at("machine").find("name"))
    row("machine", name->str());
  row("kernel", cfg.at("kernel_variant").str());
  row("wall clock", report::fmt_num(res.at("seconds").num()) + " s");
  row("throughput", report::fmt_num(res.at("gupdates_per_s").num()) +
                        " Gupdates/s");
  row("locality", report::fmt_num(traffic.at("locality").num() * 100.0) + " %");
  const JsonValue& diff = res.at("max_rel_diff");
  if (diff.type == JsonValue::Type::Number)
    row("max rel diff", report::fmt_num(diff.num()));
  os << "</table>\n";
  return os.str();
}

std::string cache_table(const JsonValue& doc) {
  const JsonValue* levels = doc.at("cache").find("levels");
  if (!levels) return "<p>No cache simulation in this report.</p>\n";
  std::ostringstream os;
  os << "<table>\n<tr><th>level</th><th>hits</th><th>misses</th>"
        "<th>hit rate</th></tr>\n";
  for (const JsonValue& lv : levels->array) {
    os << "<tr><td>L" << report::fmt_num(lv.at("level").num()) << "</td><td>"
       << report::fmt_num(lv.at("hits").num()) << "</td><td>"
       << report::fmt_num(lv.at("misses").num()) << "</td><td>"
       << report::fmt_num(lv.at("hit_rate").num() * 100.0) << " %</td></tr>\n";
  }
  os << "</table>\n";
  return os.str();
}

// Maps a straggler verdict to a stable palette class so the table badge
// and the span-roofline scatter use the same colours.
int verdict_class(const std::string& verdict) {
  if (verdict == "remote-traffic-bound") return 1;
  if (verdict == "cache-miss-bound") return 2;
  if (verdict == "spin-bound") return 3;
  return 0;  // compute-bound
}

std::string straggler_table(const JsonValue& prof) {
  const JsonValue* stragglers = prof.find("stragglers");
  if (!stragglers || !stragglers->is_array() || stragglers->array.empty())
    return "<p>No stragglers recorded (run without --trace, or no sampled "
           "spans).</p>\n";
  std::ostringstream os;
  os << "<table>\n<tr><th>#</th><th>thread</th><th>phase</th><th>ms</th>"
        "<th>x mean</th><th>verdict</th><th>spin</th><th>remote</th>"
        "<th>miss</th><th>updates</th></tr>\n";
  std::size_t rank = 1;
  for (const JsonValue& s : stragglers->array) {
    const std::string verdict = s.at("verdict").str();
    const double mean = s.at("mean_dur_ms").num();
    const double ratio = mean > 0.0 ? s.at("dur_ms").num() / mean : 0.0;
    os << "<tr><td>" << rank++ << "</td><td>"
       << report::fmt_num(s.at("tid").num()) << "</td><td>"
       << report::svg_escape(s.at("phase").str()) << "</td><td>"
       << report::fmt_num(s.at("dur_ms").num()) << "</td><td>"
       << report::fmt_num(ratio) << "x</td><td><span class='verdict v"
       << verdict_class(verdict) << "'>" << report::svg_escape(verdict)
       << "</span></td><td>"
       << report::fmt_num(s.at("spin_frac").num() * 100.0) << " %</td><td>"
       << report::fmt_num(s.at("remote_frac").num() * 100.0) << " %</td><td>"
       << report::fmt_num(s.at("miss_rate").num() * 100.0) << " %</td><td>"
       << report::fmt_num(s.at("updates").num()) << "</td></tr>\n";
  }
  os << "</table>\n";
  return os.str();
}

std::string span_roofline_panel(const JsonValue& prof) {
  const JsonValue* roofline = prof.find("roofline");
  if (!roofline || !roofline->is_array() || roofline->array.empty())
    return "<p>No per-span samples (run with --trace to collect them).</p>\n";

  report::ScatterSpec sc;
  sc.title = "per-span roofline (one point per sampled tile)";
  sc.x_label = "arithmetic intensity (FLOP/byte)";
  sc.y_label = "GFLOPS";
  sc.class_labels = {"compute-bound", "remote-traffic-bound",
                     "cache-miss-bound", "spin-bound"};
  for (const JsonValue& p : roofline->array) {
    report::ScatterPoint pt;
    pt.x = p.at("ai").num();
    pt.y = p.at("gflops").num();
    pt.cls = verdict_class(p.at("verdict").str());
    sc.points.push_back(pt);
  }
  return report::render_scatter_svg(sc);
}

std::string prof_section(const JsonValue& doc) {
  const JsonValue* prof = doc.find("prof");
  std::ostringstream os;
  os << "<h2>Per-span attribution</h2>\n";
  if (!prof || !prof->find("enabled") ||
      !prof->at("enabled").boolean_value()) {
    os << "<p>Per-span attribution was disabled for this run.</p>\n";
    return os.str();
  }
  os << "<p>" << report::fmt_num(prof->at("sampled_spans").num())
     << " spans sampled, " << report::fmt_num(prof->at("dropped_events").num())
     << " trace events dropped.</p>\n";
  os << "<h3>Stragglers (slowest spans)</h3>\n" << straggler_table(*prof);
  os << "<h3>Span roofline</h3>\n" << span_roofline_panel(*prof);
  return os.str();
}

std::string hw_events_table(const JsonValue& hw) {
  std::ostringstream os;
  os << "<table>\n<tr><th>event</th><th>available</th><th>total</th>"
        "<th>attributed</th><th>note</th></tr>\n";
  const JsonValue* totals = hw.find("totals");
  const JsonValue* attributed = hw.find("attributed");
  for (const JsonValue& e : hw.at("events").array) {
    const std::string name = e.at("name").str();
    const bool available = e.at("available").boolean_value();
    const JsonValue* tot = available && totals ? totals->find(name) : nullptr;
    const JsonValue* att =
        available && attributed ? attributed->find(name) : nullptr;
    os << "<tr><th>" << report::svg_escape(name) << "</th><td>"
       << (available ? "yes" : "no") << "</td><td>"
       << (tot ? report::fmt_num(tot->num()) : std::string("&mdash;"))
       << "</td><td>"
       << (att ? report::fmt_num(att->num()) : std::string("&mdash;"))
       << "</td><td>";
    if (const JsonValue* why = e.find("reason"))
      os << report::svg_escape(why->str());
    else if (e.at("optional").boolean_value())
      os << "optional";
    os << "</td></tr>\n";
  }
  os << "</table>\n";
  return os.str();
}

std::string hw_threads_note(const JsonValue& hw) {
  const JsonValue* threads = hw.find("threads");
  if (!threads || !threads->is_array() || threads->array.empty()) return "";
  double max_scaling = 1.0;
  bool multiplexed = false;
  for (const JsonValue& t : threads->array) {
    max_scaling = std::max(max_scaling, t.at("scaling").num());
    multiplexed = multiplexed || t.at("multiplexed").boolean_value();
  }
  std::ostringstream os;
  os << "<p>" << threads->array.size() << " thread group(s); ";
  if (multiplexed)
    os << "the PMU time-shared counters (max scaling factor "
       << report::fmt_num(max_scaling)
       << ") &mdash; counts are raw, never scaled up.";
  else
    os << "no multiplexing (every counter ran the whole enabled region).";
  os << "</p>\n";
  return os.str();
}

std::string hw_validation_panel(const JsonValue& hw) {
  const JsonValue* validation = hw.find("validation");
  if (!validation || !validation->find("status"))
    return "<p>No simulated-vs-measured cross-check (needs the cache "
           "simulator, a trace and a measurable cache-misses event).</p>\n";
  if (validation->at("status").str() != "ok")
    return "<p>Cross-check did not run: " +
           report::svg_escape(validation->at("status").str()) + "</p>\n";

  std::ostringstream os;
  os << "<p>Spearman rank correlation <b>"
     << report::fmt_num(validation->at("rank_correlation").num()) << "</b> over "
     << report::fmt_num(validation->at("n").num())
     << " Tile spans (simulated misses vs measured cache-misses; ordering "
        "is the claim &mdash; absolute counts never match).</p>\n";
  report::ScatterSpec sc;
  sc.title = "measured vs simulated (one point per sampled tile)";
  sc.x_label = "simulated cache misses";
  sc.y_label = "measured cache-misses";
  sc.class_labels = {"tile span"};
  for (const JsonValue& p : validation->at("points").array) {
    report::ScatterPoint pt;
    pt.x = p.at("sim_misses").num();
    pt.y = p.at("hw_misses").num();
    pt.cls = 0;
    sc.points.push_back(pt);
  }
  if (sc.points.empty()) return os.str();
  return os.str() + report::render_scatter_svg(sc);
}

std::string hw_section(const JsonValue& doc) {
  const JsonValue* hw = doc.find("hw");
  std::ostringstream os;
  os << "<h2>Hardware counters</h2>\n";
  if (!hw || !hw->find("enabled") || !hw->at("enabled").boolean_value()) {
    os << "<p>Hardware counters were off for this run (enable with "
          "<code>--hw-counters=auto</code>).</p>\n";
    return os.str();
  }
  os << "<p>backend " << report::svg_escape(hw->at("backend").str())
     << ", status <b>" << report::svg_escape(hw->at("status").str()) << "</b>";
  if (const JsonValue* reason = hw->find("reason");
      reason && !reason->str().empty())
    os << " &mdash; " << report::svg_escape(reason->str());
  os << "</p>\n";
  os << panel_or(*hw, hw_events_table, "hw events");
  os << hw_threads_note(*hw);
  os << "<h3>Measured vs simulated</h3>\n" << hw_validation_panel(*hw);
  return os.str();
}

std::string stats_table(const JsonValue& doc) {
  const JsonValue* stats = doc.find("stats");
  if (!stats || !stats->is_object()) return "";
  const JsonValue* metrics_obj = stats->find("metrics");
  if (!metrics_obj || metrics_obj->object.empty()) return "";
  std::ostringstream os;
  os << "<h2>Repetition statistics ("
     << report::fmt_num(stats->at("reps").num()) << " reps)</h2>\n<table>\n"
     << "<tr><th>metric</th><th>median</th><th>MAD</th><th>95% CI</th>"
        "<th>min</th><th>max</th></tr>\n";
  for (const auto& [name, r] : metrics_obj->object) {
    os << "<tr><th>" << report::svg_escape(name) << "</th><td>"
       << report::fmt_num(r.at("median").num()) << "</td><td>"
       << report::fmt_num(r.at("mad").num()) << "</td><td>["
       << report::fmt_num(r.at("ci_lo").num()) << ", "
       << report::fmt_num(r.at("ci_hi").num()) << "]</td><td>"
       << report::fmt_num(r.at("min").num()) << "</td><td>"
       << report::fmt_num(r.at("max").num()) << "</td></tr>\n";
  }
  os << "</table>\n";
  return os.str();
}

std::string provenance_footer(const JsonValue& doc) {
  const JsonValue* prov = doc.find("provenance");
  if (!prov) return "";
  std::ostringstream os;
  os << "<footer><p class='prov'>";
  const auto item = [&](const char* key, const std::string& label) {
    if (const JsonValue* v = prov->find(key); v && !v->str().empty())
      os << label << " " << report::svg_escape(v->str()) << " &middot; ";
  };
  item("git_sha", "commit");
  item("compiler", "compiler");
  item("build_type", "build");
  item("machine_conf", "machine conf");
  if (const JsonValue* flags = prov->find("compiler_flags");
      flags && !flags->str().empty())
    os << "flags <code>" << report::svg_escape(flags->str()) << "</code>";
  os << "</p></footer>\n";
  return os.str();
}

std::string counters_table(const JsonValue& doc) {
  const JsonValue* counters = doc.find("counters");
  if (!counters || counters->object.empty()) return "";
  std::ostringstream os;
  os << "<h2>Counters</h2>\n<table>\n";
  for (const auto& [name, v] : counters->object)
    os << "<tr><th>" << report::svg_escape(name) << "</th><td>"
       << report::fmt_num(v.num()) << "</td></tr>\n";
  os << "</table>\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Trajectory sparklines (single-run dashboard)

/// Short entry label: 7-char git SHA, or the entry index.
std::string entry_tick(const metrics::TrajectoryEntry& e, std::size_t i) {
  if (!e.git_sha.empty()) return e.git_sha.substr(0, 7);
  return "#" + std::to_string(i);
}

std::string trajectory_chart(const metrics::TrajectoryDb& db,
                             const std::string& title,
                             const std::string& y_label,
                             const std::string& prefix,
                             const std::string& suffix) {
  report::ChartSpec c;
  c.title = title;
  c.x_label = "history entry";
  c.y_label = y_label;
  c.height = 300;
  for (std::size_t i = 0; i < db.entries.size(); ++i)
    c.x_ticks.push_back(entry_tick(db.entries[i], i));
  for (const auto& [name, value] : db.entries.back().metrics) {
    (void)value;
    if (name.rfind(prefix, 0) != 0) continue;
    if (!suffix.empty() &&
        (name.size() < suffix.size() ||
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0))
      continue;
    report::Series s;
    s.label = name.substr(prefix.size(),
                          name.size() - prefix.size() - suffix.size());
    for (const metrics::TrajectoryEntry& e : db.entries) {
      const double* v = e.find(name);
      s.values.push_back(v ? *v : std::nan(""));
    }
    c.series.push_back(std::move(s));
  }
  if (c.series.empty()) return "";
  return report::render_svg(c);
}

std::string trajectory_section(const std::string& path) {
  metrics::TrajectoryDb db;
  try {
    db = metrics::load_trajectory(path);
  } catch (const std::exception&) {
    return "";  // unreadable history should not kill a run dashboard
  }
  if (db.entries.empty()) return "";
  std::ostringstream os;
  os << "<h2>Performance trajectory</h2>\n<p>" << db.entries.size()
     << " entries from " << report::svg_escape(path) << "</p>\n";
  const std::string model =
      trajectory_chart(db, "regress model throughput over history",
                       "model Gupdates/s per core", "regress/",
                       "/model_gup_core");
  const std::string kernel = trajectory_chart(
      db, "kernel speedups over history", "speedup vs scalar", "kernel/", "");
  if (model.empty() && kernel.empty()) return "";
  os << model << kernel;
  return os.str();
}

// ---------------------------------------------------------------------------
// Dashboards

const char* kStyle =
    "body{font-family:sans-serif;max-width:1080px;margin:24px auto;}\n"
    "table{border-collapse:collapse;margin:12px 0;}\n"
    "th,td{border:1px solid #ccc;padding:4px 10px;text-align:left;"
    "font-size:14px;}\n"
    "svg{display:block;margin:16px 0;}\n"
    ".cols{display:flex;gap:8px;flex-wrap:wrap;}\n"
    ".cols>div{flex:1;min-width:480px;}\n"
    // Verdict badge colours match palette_color(verdict_class(...)).
    ".verdict{color:white;padding:1px 6px;border-radius:3px;"
    "font-size:12px;}\n"
    ".v0{background:#1f77b4;}.v1{background:#d62728;}\n"
    ".v2{background:#2ca02c;}.v3{background:#ff7f0e;}\n"
    ".sig{background:#d62728;color:white;padding:1px 6px;"
    "border-radius:3px;font-size:12px;}\n"
    ".noise{background:#999;color:white;padding:1px 6px;"
    "border-radius:3px;font-size:12px;}\n"
    "footer p.prov{color:#777;font-size:12px;border-top:1px solid #ccc;"
    "padding-top:8px;}\n";

int check_schema(const JsonValue& doc, const std::string& path) {
  const JsonValue* v = doc.find("schema_version");
  const int version =
      v && v->type == JsonValue::Type::Number ? static_cast<int>(v->num()) : 0;
  NUSTENCIL_CHECK(version >= 1, "nustencil_report: " + path +
                                    " has no schema_version >= 1 (not a "
                                    "nustencil run report)");
  if (version > metrics::kRunReportSchemaVersion)
    std::cerr << "warning: " << path << " is schema v" << version
              << ", newer than this tool (v"
              << metrics::kRunReportSchemaVersion
              << "); unknown sections are ignored\n";
  return version;
}

std::string render_dashboard(const JsonValue& doc,
                             const std::string& trajectory_path) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset='utf-8'>\n<title>"
     << report::svg_escape(doc.at("config").at("scheme").str())
     << " run report</title>\n<style>\n" << kStyle << "</style>\n</head>\n<body>\n";
  os << "<h1>nustencil run report</h1>\n";
  os << panel_or(doc, summary_table, "summary");
  os << "<h2>NUMA traffic</h2>\n" << panel_or(doc, heatmap_panel, "traffic");
  os << "<h2>Locality timeline</h2>\n"
     << panel_or(doc, locality_panel, "locality");
  os << "<h2>Live telemetry</h2>\n"
     << panel_or(doc, timeseries_panel, "timeseries");
  os << "<h2>Phases</h2>\n" << panel_or(doc, phases_panel, "phases");
  os << "<h2>Roofline</h2>\n" << panel_or(doc, roofline_panel, "model");
  os << "<h2>Cache hierarchy</h2>\n" << panel_or(doc, cache_table, "cache");
  os << prof_section(doc);
  os << hw_section(doc);
  os << stats_table(doc);
  os << trajectory_section(trajectory_path);
  os << counters_table(doc);
  os << provenance_footer(doc);
  os << "</body>\n</html>\n";
  return os.str();
}

std::string config_delta_table(const metrics::ReportDiff& diff) {
  if (diff.config.empty())
    return "<p>No config or provenance deltas: the runs are directly "
           "comparable.</p>\n";
  std::ostringstream os;
  os << "<table>\n<tr><th>key</th><th>A</th><th>B</th></tr>\n";
  for (const metrics::ConfigDelta& c : diff.config)
    os << "<tr><th>" << report::svg_escape(c.key) << "</th><td>"
       << report::svg_escape(c.a) << "</td><td>" << report::svg_escape(c.b)
       << "</td></tr>\n";
  os << "</table>\n";
  return os.str();
}

std::string verdict_table(const metrics::ReportDiff& diff) {
  std::ostringstream os;
  os << "<table>\n<tr><th>metric</th><th>A</th><th>B</th><th>&Delta;</th>"
        "<th>rel</th><th>kind</th><th>class</th><th>verdict</th>"
        "<th>evidence</th></tr>\n";
  std::size_t shown = 0;
  for (const metrics::MetricDelta& m : diff.metrics) {
    if (m.cls == metrics::DeltaClass::Equal) continue;
    ++shown;
    std::ostringstream rel;
    rel.precision(1);
    rel << std::fixed << (m.rel() >= 0 ? "+" : "") << m.rel() * 100.0 << "%";
    os << "<tr><th>" << report::svg_escape(m.name) << "</th><td>"
       << report::fmt_num(m.a) << "</td><td>" << report::fmt_num(m.b)
       << "</td><td>" << report::fmt_num(m.delta()) << "</td><td>"
       << rel.str() << "</td><td>" << metrics::metric_kind_name(m.kind)
       << (m.used_stats ? " (CI)" : "") << "</td><td><span class='"
       << (m.cls == metrics::DeltaClass::Significant ? "sig'>significant"
                                                     : "noise'>noise")
       << "</span></td><td>"
       << (m.has_verdict
               ? report::svg_escape(prof::delta_cause_name(m.verdict.cause))
               : std::string("&mdash;"))
       << "</td><td>"
       << (m.has_verdict ? report::svg_escape(m.verdict.evidence)
                         : std::string(""))
       << "</td></tr>\n";
  }
  os << "</table>\n";
  if (shown == 0)
    return "<p>Every compared metric is exactly equal.</p>\n";
  std::ostringstream head;
  head << "<p>" << diff.significant() << " significant, "
       << diff.count(metrics::DeltaClass::Noise) << " noise, "
       << diff.count(metrics::DeltaClass::Equal)
       << " exactly equal metrics.</p>\n";
  return head.str() + os.str();
}

std::string phase_waterfall_panel(const metrics::ReportDiff& diff) {
  report::WaterfallSpec wf;
  wf.title = "phase-time deltas (B - A)";
  wf.x_label = "phase";
  wf.y_label = "seconds";
  for (const metrics::MetricDelta& m : diff.metrics) {
    if (m.name.rfind("phase/", 0) != 0 || m.name == "phase/imbalance") continue;
    if (!m.a_present || !m.b_present) continue;
    wf.labels.push_back(m.name.substr(6));
    wf.deltas.push_back(m.delta());
  }
  if (wf.labels.empty())
    return "<p>No phase breakdown on both sides.</p>\n";
  return report::render_waterfall_svg(wf);
}

std::string matrix_delta_panel(const metrics::ReportDiff& diff) {
  if (diff.nodes == 0)
    return "<p>No comparable NUMA traffic matrices (missing or different "
           "node counts).</p>\n";
  report::HeatmapSpec hm;
  hm.title = "node-to-node traffic delta (B - A, MiB)";
  hm.x_label = "owner node";
  hm.y_label = "consumer node";
  hm.diverging = true;
  for (int n = 0; n < diff.nodes; ++n) {
    hm.x_ticks.push_back(std::to_string(n));
    hm.y_ticks.push_back(std::to_string(n));
  }
  hm.values = diff.matrix_delta_mib;
  return report::render_heatmap_svg(hm);
}

std::string render_diff_dashboard(const JsonValue& a, const JsonValue& b,
                                  const std::string& path_a,
                                  const std::string& path_b,
                                  const metrics::ReportDiff& diff) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset='utf-8'>\n"
        "<title>nustencil run diff</title>\n<style>\n"
     << kStyle << "</style>\n</head>\n<body>\n";
  os << "<h1>nustencil run diff</h1>\n<p>A = "
     << report::svg_escape(path_a) << " (schema v" << diff.schema_a
     << "), B = " << report::svg_escape(path_b) << " (schema v"
     << diff.schema_b << ")</p>\n";
  os << "<h2>Config &amp; provenance deltas</h2>\n" << config_delta_table(diff);
  os << "<h2>Metric verdicts</h2>\n" << verdict_table(diff);
  os << "<h2>Phase-time waterfall</h2>\n" << phase_waterfall_panel(diff);
  os << "<h2>NUMA traffic delta</h2>\n" << matrix_delta_panel(diff);
  os << "<h2>Rooflines side by side</h2>\n<div class='cols'>\n<div>\n<h3>A</h3>\n"
     << panel_or(a, roofline_panel, "model") << "</div>\n<div>\n<h3>B</h3>\n"
     << panel_or(b, roofline_panel, "model") << "</div>\n</div>\n";
  os << "<div class='cols'>\n<div>\n<h3>Summary A</h3>\n"
     << panel_or(a, summary_table, "summary") << "</div>\n<div>\n"
     << "<h3>Summary B</h3>\n" << panel_or(b, summary_table, "summary")
     << "</div>\n</div>\n";
  os << provenance_footer(b);
  os << "</body>\n</html>\n";
  return os.str();
}

std::string default_output(const std::string& input, const char* tag = "") {
  const std::size_t dot = input.rfind('.');
  if (dot == std::string::npos || input.find('/', dot) != std::string::npos)
    return input + tag + ".html";
  return input.substr(0, dot) + tag + ".html";
}

/// Parses a report file; any I/O or syntax problem becomes one clear
/// error line naming the file instead of an unhandled throw.
JsonValue load_report(const std::string& path) {
  try {
    return metrics::parse_json_file(path);
  } catch (const std::exception& e) {
    throw Error("cannot load report '" + path + "': " + e.what());
  }
}

void write_html(const std::string& html, const std::string& path) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "nustencil_report: cannot open " + path);
  out << html;
  NUSTENCIL_CHECK(out.good(), "nustencil_report: write failed for " + path);
}

}  // namespace

int main(int argc, char** argv) try {
  ArgParser args("nustencil_report",
                 "render nustencil --report JSON files into self-contained "
                 "HTML dashboards, or diff two of them");
  args.add_flag("diff",
                "compare two reports: nustencil_report --diff A.json B.json "
                "[out.html]; prints the console verdict table and renders "
                "the diff dashboard");
  args.add_flag("no-html", "console output only (diff mode), skip the HTML");
  args.add_option("trajectory",
                  "trajectory database for the history sparklines in the "
                  "single-run dashboard (skipped when the file is absent)",
                  "BENCH_trajectory.json");
  if (!args.parse(argc, argv)) return 0;
  const std::vector<std::string>& pos = args.positionals();

  if (args.get_flag("diff")) {
    NUSTENCIL_CHECK(pos.size() == 2 || pos.size() == 3,
                    "usage: nustencil_report --diff <A.json> <B.json> "
                    "[<out.html>]");
    const JsonValue a = load_report(pos[0]);
    const JsonValue b = load_report(pos[1]);
    check_schema(a, pos[0]);
    check_schema(b, pos[1]);
    const metrics::ReportDiff diff = metrics::diff_reports(a, b);
    std::cout << metrics::format_diff_console(diff);
    if (!args.get_flag("no-html")) {
      const std::string out =
          pos.size() == 3 ? pos[2] : default_output(pos[1], "_diff");
      write_html(render_diff_dashboard(a, b, pos[0], pos[1], diff), out);
      std::cout << "wrote diff dashboard to " << out << '\n';
    }
    return 0;
  }

  NUSTENCIL_CHECK(pos.size() == 1 || pos.size() == 2,
                  "usage: nustencil_report <report.json> [<out.html>] | "
                  "--diff <A.json> <B.json> [<out.html>]");
  const std::string in_path = pos[0];
  const std::string out_path =
      pos.size() == 2 ? pos[1] : default_output(in_path);

  const JsonValue doc = load_report(in_path);
  check_schema(doc, in_path);
  write_html(render_dashboard(doc, args.get("trajectory")), out_path);
  std::cout << "wrote dashboard to " << out_path << '\n';
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
