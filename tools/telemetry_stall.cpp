// telemetry_stall — deliberately parks one worker so CI can exercise the
// telemetry watchdog's detection path end-to-end on a real thread team.
//
//   telemetry_stall [warn|abort] [jsonl-log-path]
//
// Two workers run a fake compute loop that publishes progress every
// millisecond; worker 1 stops publishing after its first few ticks.  The
// sampler (10 ms interval, 3-interval watchdog) must flag the stall
// within ~30 ms.  Under `warn` the workers run to completion and the
// process exits 0 with the diagnosis on stderr; under `abort` the
// triggered abort token unwinds the still-running workers and the
// process exits nonzero — exactly what a hung production run would do
// in CI.  Exit 3 means the watchdog never fired: a detection bug.
#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>

#include "prof/progress.hpp"
#include "telemetry/sampler.hpp"
#include "thread/abort.hpp"
#include "thread/team.hpp"

using namespace nustencil;

int main(int argc, char** argv) try {
  const telemetry::WatchdogAction action =
      telemetry::parse_watchdog_action(argc > 1 ? argv[1] : "warn");

  prof::ProgressMeter meter(1.0, std::cerr);
  meter.begin_run("stall", /*num_threads=*/2, /*total_updates=*/0);

  telemetry::Config tcfg;
  tcfg.interval_s = 0.01;
  tcfg.label = "telemetry_stall";
  tcfg.watchdog_stall_intervals = 3;
  tcfg.watchdog_action = action;
  if (argc > 2) tcfg.log_path = argv[2];
  telemetry::Sampler sampler(tcfg);

  threading::AbortToken abort;
  telemetry::RunSources src;
  src.num_threads = 2;
  src.timesteps = 1;
  src.progress = &meter;
  src.abort = &abort;
  sampler.begin_run(src);

  threading::Team team(2, /*pin=*/false);
  team.run([&](int tid) {
    std::uint64_t updates = 0;
    for (int i = 0; i < 200; ++i) {  // ~200 ms of "work" in 1 ms ticks
      abort.check();
      if (tid == 0 || i < 5) meter.publish(tid, ++updates, 100, 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  sampler.end_run(/*seconds=*/0.2, /*updates=*/0);

  std::cout << "stall events: " << sampler.stall_events() << '\n';
  return sampler.stall_events() > 0 ? 0 : 3;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
