#include "sched/schedule.hpp"

#include "common/error.hpp"

namespace nustencil::sched {

Schedule parse_schedule(const std::string& name) {
  if (name == "static") return Schedule::Static;
  if (name == "steal") return Schedule::Steal;
  if (name == "steal_local") return Schedule::StealLocal;
  NUSTENCIL_CHECK(false, "unknown schedule '" + name +
                             "' (expected static, steal or steal_local)");
  return Schedule::Static;
}

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::Static: return "static";
    case Schedule::Steal: return "steal";
    case Schedule::StealLocal: return "steal_local";
  }
  return "?";
}

}  // namespace nustencil::sched
