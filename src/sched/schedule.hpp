// Tile-scheduling policy knob plus the per-run scheduling statistics.
//
// `static` keeps every scheme's original owner-computes loop (bit-identical
// to the pre-scheduler code path); `steal` adds NUMA-distance-ordered work
// stealing on top of the owner-first decomposition; `steal_local` restricts
// victims to the thief's own NUMA node.  The heavy machinery lives in
// sched/pool.hpp — this header stays dependency-light so that
// schemes/scheme.hpp can expose the knob and the stats in RunConfig /
// RunResult without pulling the pool in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nustencil::sched {

enum class Schedule {
  Static = 0,  ///< owner computes exactly its own tiles (paper baseline)
  Steal,       ///< owner-first deques + distance-ordered work stealing
  StealLocal,  ///< stealing restricted to victims on the thief's node
};

/// Parses "static" / "steal" / "steal_local"; throws on anything else.
Schedule parse_schedule(const std::string& name);

const char* schedule_name(Schedule s);

/// Per-run scheduling statistics, collected by the TaskPool and surfaced
/// through RunResult / the run report.  `enabled` stays false under the
/// static schedule (no pool exists, nothing can be stolen).
struct SchedStats {
  struct Thread {
    std::uint64_t steal_attempts = 0;  ///< victim-deque probes
    std::uint64_t steals = 0;          ///< successful steals
    std::uint64_t steal_fails = 0;     ///< probes that found the deque empty
    std::uint64_t stolen_tasks = 0;    ///< tasks this thread's deque lost
    std::uint64_t stolen_updates = 0;  ///< cell updates executed on stolen tasks
  };

  bool enabled = false;
  std::string schedule = "static";
  std::vector<Thread> threads;

  std::uint64_t total_attempts() const {
    std::uint64_t n = 0;
    for (const Thread& t : threads) n += t.steal_attempts;
    return n;
  }
  std::uint64_t total_steals() const {
    std::uint64_t n = 0;
    for (const Thread& t : threads) n += t.steals;
    return n;
  }
  std::uint64_t total_fails() const {
    std::uint64_t n = 0;
    for (const Thread& t : threads) n += t.steal_fails;
    return n;
  }
  std::uint64_t total_stolen_updates() const {
    std::uint64_t n = 0;
    for (const Thread& t : threads) n += t.stolen_updates;
    return n;
  }
};

}  // namespace nustencil::sched
