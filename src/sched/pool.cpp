#include "sched/pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"
#include "metrics/registry.hpp"

namespace nustencil::sched {

std::vector<int> thread_nodes(const topology::MachineSpec& machine,
                              numa::PinPolicy policy, int num_threads) {
  // Mirrors numa::VirtualTopology's placement so that scheduling and
  // traffic instrumentation agree on where every worker lives.
  std::vector<int> nodes(static_cast<std::size_t>(num_threads));
  const int num_nodes = std::max(1, machine.numa_nodes());
  for (int tid = 0; tid < num_threads; ++tid) {
    if (policy == numa::PinPolicy::Scatter) {
      nodes[static_cast<std::size_t>(tid)] = tid % num_nodes;
    } else {
      const int core = tid % std::max(1, machine.cores());
      nodes[static_cast<std::size_t>(tid)] = machine.node_of_core(core);
    }
  }
  return nodes;
}

TaskPool::TaskPool(int num_threads, std::vector<int> thread_node, Schedule schedule)
    : num_threads_(num_threads),
      schedule_(schedule),
      node_(std::move(thread_node)),
      deques_(static_cast<std::size_t>(num_threads)),
      counts_(static_cast<std::size_t>(num_threads)) {
  NUSTENCIL_CHECK(num_threads >= 1, "TaskPool: need at least one thread");
  NUSTENCIL_CHECK(static_cast<int>(node_.size()) == num_threads,
                  "TaskPool: one node per thread required");
  NUSTENCIL_CHECK(schedule != Schedule::Static,
                  "TaskPool: the static schedule runs without a pool");

  // Victim ranking per thief: same NUMA node first, then increasing
  // simulated distance |node_v - node_t|; ties broken by ring distance
  // from the thief so contention spreads instead of piling on thread 0.
  victims_.resize(static_cast<std::size_t>(num_threads));
  for (int tid = 0; tid < num_threads; ++tid) {
    std::vector<int>& order = victims_[static_cast<std::size_t>(tid)];
    for (int v = 0; v < num_threads; ++v) {
      if (v == tid) continue;
      const int dist = std::abs(node_[static_cast<std::size_t>(v)] -
                                node_[static_cast<std::size_t>(tid)]);
      if (schedule == Schedule::StealLocal && dist != 0) continue;
      order.push_back(v);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      const int da = std::abs(node_[static_cast<std::size_t>(a)] -
                              node_[static_cast<std::size_t>(tid)]);
      const int db = std::abs(node_[static_cast<std::size_t>(b)] -
                              node_[static_cast<std::size_t>(tid)]);
      if (da != db) return da < db;
      return (a - tid + num_threads_) % num_threads_ <
             (b - tid + num_threads_) % num_threads_;
    });
  }
}

void TaskPool::bind_metrics(metrics::Registry* reg) {
  if (!reg) return;
  m_attempts_ = &reg->counter("sched/steal_attempts");
  m_steals_ = &reg->counter("sched/steal_success");
  m_fails_ = &reg->counter("sched/steal_fail");
  m_stolen_updates_ = &reg->counter("sched/stolen_updates");
}

void TaskPool::reset(int num_tasks, const std::function<int(int)>& owner_of) {
  NUSTENCIL_CHECK(remaining_.load(std::memory_order_acquire) == 0,
                  "TaskPool::reset: previous phase still has live tasks");
  owner_.assign(static_cast<std::size_t>(num_tasks), 0);
  for (auto& d : deques_) d.tasks.clear();
  for (int i = 0; i < num_tasks; ++i) {
    const int owner = owner_of(i);
    NUSTENCIL_CHECK(owner >= 0 && owner < num_threads_,
                    "TaskPool::reset: task owner out of range");
    owner_[static_cast<std::size_t>(i)] = owner;
    deques_[static_cast<std::size_t>(owner)].tasks.push_back(i);
  }
  remaining_.store(num_tasks, std::memory_order_release);
}

int TaskPool::pop_front(int tid) {
  WorkDeque& d = deques_[static_cast<std::size_t>(tid)];
  d.lock();
  int task = -1;
  if (!d.tasks.empty()) {
    task = d.tasks.front();
    d.tasks.pop_front();
  }
  d.unlock();
  return task;
}

int TaskPool::steal_back(int victim) {
  WorkDeque& d = deques_[static_cast<std::size_t>(victim)];
  d.lock();
  int task = -1;
  if (!d.tasks.empty()) {
    task = d.tasks.back();
    d.tasks.pop_back();
  }
  d.unlock();
  return task;
}

void TaskPool::push_back(int tid, int task) {
  WorkDeque& d = deques_[static_cast<std::size_t>(tid)];
  d.lock();
  d.tasks.push_back(task);
  d.unlock();
}

void TaskPool::run(int tid, const Step& step, const threading::AbortToken* abort,
                   trace::ThreadRecorder* rec) {
  SchedStats::Thread& my = counts_[static_cast<std::size_t>(tid)].counts;
  const std::vector<int>& victims = victims_[static_cast<std::size_t>(tid)];
  int backoff = 1;

  const auto execute = [&](int task, bool stolen, int victim) {
    StepResult r;
    if (stolen && rec) {
      const trace::ScopedSpan span(rec, trace::Phase::Steal,
                                   {task, victim, -1, tid});
      r = step(task, tid, stolen);
    } else {
      r = step(task, tid, stolen);
    }
    if (r == StepResult::Done) {
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      // Owner-first invariant: a yielded or blocked task returns to its
      // owner's deque (at the back, so the owner round-robins the rest of
      // its tiles before re-probing this one).
      push_back(owner_[static_cast<std::size_t>(task)], task);
      if (r == StepResult::Blocked) std::this_thread::yield();
    }
  };

  while (remaining_.load(std::memory_order_acquire) > 0) {
    if (abort) abort->check();
    const int own = pop_front(tid);
    if (own >= 0) {
      backoff = 1;
      execute(own, /*stolen=*/false, -1);
      continue;
    }
    bool stole = false;
    for (const int v : victims) {
      ++my.steal_attempts;
      if (m_attempts_) m_attempts_->add(tid);
      const int task = steal_back(v);
      if (task < 0) {
        ++my.steal_fails;
        if (m_fails_) m_fails_->add(tid);
        continue;
      }
      ++my.steals;
      counts_[static_cast<std::size_t>(v)].tasks_lost.fetch_add(
          1, std::memory_order_relaxed);
      if (m_steals_) m_steals_->add(tid);
      backoff = 1;
      execute(task, /*stolen=*/true, v);
      stole = true;
      break;
    }
    if (!stole) {
      // Nothing anywhere: someone is finishing the last tasks.  Back off
      // so the probe counters do not explode while we idle.
      for (int i = 0; i < backoff; ++i) std::this_thread::yield();
      backoff = std::min(backoff * 2, 64);
    }
  }
}

void TaskPool::add_stolen_updates(int tid, std::uint64_t updates) {
  counts_[static_cast<std::size_t>(tid)].counts.stolen_updates += updates;
  if (m_stolen_updates_) m_stolen_updates_->add(tid, updates);
}

SchedStats TaskPool::stats() const {
  SchedStats s;
  s.enabled = true;
  s.schedule = schedule_name(schedule_);
  s.threads.reserve(counts_.size());
  for (const PerThread& t : counts_) {
    SchedStats::Thread out = t.counts;
    out.stolen_tasks = t.tasks_lost.load(std::memory_order_relaxed);
    s.threads.push_back(out);
  }
  return s;
}

}  // namespace nustencil::sched
