// NUMA-affine work-stealing task pool with owner-first deques.
//
// Every worker drains a deque of its *own* subdomain's tiles from the
// front — preserving the owner-computes order the static schedules use —
// and only when that deque is empty steals from victims ordered by
// simulated NUMA distance (same node first, then nearest nodes under the
// machine's |node_a - node_b| metric).  A thief takes from the *far end*
// of the victim's deque: the victim works the front, so the back holds
// the tiles it would reach last — the ones least likely to have warm
// pages in the victim's caches and the cheapest to give away.
//
// Temporal-blocking dependencies are honoured cooperatively: a task's
// step callback checks its predecessors' progress counters
// (thread/spinflag.hpp semantics: non-blocking `current() >= need`
// probes of the same monotone epochs the static paths spin-wait on) and
// returns Blocked instead of spinning.  A blocked task goes back to the
// *owner's* deque, so stalled work never pins a thief, and a task lives
// in exactly one deque (or one executing thread) at a time — which is
// what keeps its progress counter single-writer and monotone.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "numa/traffic.hpp"
#include "sched/schedule.hpp"
#include "thread/abort.hpp"
#include "topology/machine.hpp"
#include "trace/trace.hpp"

namespace nustencil::metrics {
class Registry;
class Counter;
}  // namespace nustencil::metrics

namespace nustencil::sched {

/// Verdict of one task step.  Done retires the task; Yield re-enqueues it
/// on the owner after partial progress (cooperative preemption point);
/// Blocked re-enqueues it because a dependency predecessor has not
/// retired far enough yet (the pool backs off before retrying).
enum class StepResult { Done, Yield, Blocked };

/// NUMA node of each worker under the same virtual placement the traffic
/// instrumentation uses (numa::VirtualTopology), computed directly from
/// the machine so scheduling stays NUMA-aware even when instrumentation
/// is off.  Thread counts beyond the machine's cores wrap around.
std::vector<int> thread_nodes(const topology::MachineSpec& machine,
                              numa::PinPolicy policy, int num_threads);

class TaskPool {
 public:
  /// `thread_node[tid]` places worker tid for the distance-ordered victim
  /// ranking; Schedule::StealLocal drops every victim on a foreign node.
  TaskPool(int num_threads, std::vector<int> thread_node, Schedule schedule);

  /// Resolves the steal counters in `reg` (pass the run's registry once,
  /// before workers start; null keeps metrics off).
  void bind_metrics(metrics::Registry* reg);

  /// Arms the pool with `num_tasks` tasks, task i on owner_of(i)'s deque
  /// in ascending order.  Single-threaded: callers fence with a barrier
  /// (every worker must have left run() of the previous phase).
  void reset(int num_tasks, const std::function<int(int)>& owner_of);

  /// step(task, tid, stolen) advances one task; see StepResult.
  using Step = std::function<StepResult(int task, int tid, bool stolen)>;

  /// Worker loop of thread `tid`: drains the own deque front-first, then
  /// steals along the victim order, until every task of the current phase
  /// has retired.  Re-entrant per phase (reset between phases).
  void run(int tid, const Step& step, const threading::AbortToken* abort,
           trace::ThreadRecorder* rec);

  /// Credit `updates` cell updates to work thread `tid` executed on
  /// stolen tasks (called by the step callback; tid-sharded, no locking).
  void add_stolen_updates(int tid, std::uint64_t updates);

  /// Victim ranking of `tid` (exposed for tests and --explain).
  const std::vector<int>& victim_order(int tid) const {
    return victims_[static_cast<std::size_t>(tid)];
  }

  /// Cumulative statistics over all phases; call after workers joined.
  SchedStats stats() const;

 private:
  /// One spinlocked deque per worker, each on its own cache line.  Tile
  /// granularity is coarse (a task is a whole tile or parallelogram), so
  /// a plain lock costs noise compared to lock-free Chase-Lev while
  /// keeping both ends safely accessible.
  struct alignas(kCacheLineBytes) WorkDeque {
    std::atomic<bool> locked{false};
    std::deque<int> tasks;

    void lock() {
      while (locked.exchange(true, std::memory_order_acquire))
        std::this_thread::yield();
    }
    void unlock() { locked.store(false, std::memory_order_release); }
  };

  struct alignas(kCacheLineBytes) PerThread {
    SchedStats::Thread counts;
    /// Tasks lost to thieves: credited to the *victim's* slot by the
    /// stealing thread, so unlike the other fields it needs to be atomic.
    std::atomic<std::uint64_t> tasks_lost{0};
  };

  int pop_front(int tid);
  int steal_back(int victim);
  void push_back(int tid, int task);

  int num_threads_;
  Schedule schedule_;
  std::vector<int> node_;
  std::vector<std::vector<int>> victims_;
  std::vector<WorkDeque> deques_;
  std::vector<int> owner_;  ///< task -> owning thread (current phase)
  std::vector<PerThread> counts_;
  std::atomic<int> remaining_{0};

  metrics::Counter* m_attempts_ = nullptr;
  metrics::Counter* m_steals_ = nullptr;
  metrics::Counter* m_fails_ = nullptr;
  metrics::Counter* m_stolen_updates_ = nullptr;
};

}  // namespace nustencil::sched
