// Per-thread timeline rendering of a collected Trace, one track per
// worker, coloured by phase — the at-a-glance version of the Chrome
// trace for READMEs and CI artifacts.
#pragma once

#include <string>

#include "report/svg_chart.hpp"
#include "trace/trace.hpp"

namespace nustencil::trace {

/// Converts the trace's surviving events into a timeline spec (tracks =
/// threads, classes = phases; structural spans are emitted first so leaf
/// spans draw on top of them).
report::TimelineSpec timeline_spec(const Trace& trace, const std::string& title);

/// Renders and writes the timeline to `path` (throws Error on failure).
void write_timeline_svg(const Trace& trace, const std::string& title,
                        const std::string& path);

}  // namespace nustencil::trace
