// Space-time execution tracing: per-thread event ring buffers plus exact
// per-phase wall-time totals.
//
// The paper's argument is about *where time goes* — compute inside
// cache-sized tiles vs waiting at global barriers and spin flags — so the
// schemes and executors feed typed spans into one ThreadRecorder per
// worker.  Each recorder is single-producer (only its own thread writes),
// so recording is a plain store into a preallocated ring; collection
// happens after the team has joined.  When no recorder is attached every
// hook is a single null-pointer check, and the phase totals are
// accumulated outside the ring, so they stay exact even when the ring
// overflows and drops old events.
//
// The collector serializes the event stream as Chrome trace-event JSON
// (one track per thread, loadable in Perfetto / chrome://tracing) and
// aggregates the totals into a PhaseBreakdown for RunResult.phases.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nustencil::trace {

/// Span taxonomy.  Leaf phases partition a thread's accounted time and
/// feed the phase totals; structural phases (Layer, Parallelogram) group
/// leaf spans for the timeline and are excluded from the totals so that
/// nested spans are not double-counted.
enum class Phase : std::uint8_t {
  Init = 0,       ///< allocation + first-touch initialisation (leaf)
  Tile,           ///< one Executor::update_box sweep (leaf, compute)
  BarrierWait,    ///< spinning in Barrier::arrive_and_wait (leaf)
  SpinWait,       ///< spinning on a FlagArray / ProgressCounter (leaf)
  Parallelogram,  ///< one base parallelogram, CORALS family (structural)
  Layer,          ///< one temporal layer / chunk between barriers (structural)
  Steal,          ///< a stolen task executing on a thief thread (structural)
  kCount
};

inline constexpr int kNumPhases = static_cast<int>(Phase::kCount);

const char* phase_name(Phase p);

/// Leaf phases are mutually exclusive in time on one thread; only they
/// contribute to the per-phase totals.
constexpr bool phase_is_leaf(Phase p) {
  return p == Phase::Init || p == Phase::Tile || p == Phase::BarrierWait ||
         p == Phase::SpinWait;
}

/// Small fixed argument set carried by every span.  The meaning depends
/// on the phase (see the Chrome JSON writer): Tile uses a/b/c as the box
/// origin and owner as the executing thread; SpinWait uses a as the wait
/// target and owner as the producing tile/thread; Layer uses a as the
/// layer index, b as the absolute start step and c as the layer height.
struct SpanArgs {
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
  std::int32_t owner = -1;
};

/// Fixed slot layout of the per-span counter deltas (the simulated-PMU
/// equivalent of a perf counter group).  The slots are defined here so
/// the serializers can derive byte totals, locality and miss rates
/// without knowing the sampler implementation; the sampler that fills
/// them from the run's instrumentation sources lives in src/prof/.
enum class SpanCounter : std::uint8_t {
  Updates = 0,   ///< cell updates (Executor::updates_done)
  LocalBytes,    ///< node-local owned traffic bytes
  RemoteBytes,   ///< cross-node owned traffic bytes
  UnownedBytes,  ///< traffic against never-touched pages
  L1Hits,
  L1Misses,
  L2Hits,
  L2Misses,
  L3Hits,
  L3Misses,
  // Measured hardware counters (src/hwc/), one slot per hwc::Event in
  // the same order.  Zero when hardware counting is off or the event is
  // unavailable; raw (multiplex-unscaled) counts otherwise.
  HwCycles,
  HwInstructions,
  HwCacheRefs,
  HwCacheMisses,
  HwStalledCycles,
  HwTaskClock,  ///< nanoseconds on-CPU (software event)
  HwPageFaults,
  kCount
};

inline constexpr int kNumSpanCounters = static_cast<int>(SpanCounter::kCount);

const char* span_counter_name(SpanCounter c);

/// One cumulative-or-delta sample of every span counter.
struct CounterSet {
  std::array<std::uint64_t, kNumSpanCounters> v{};

  std::uint64_t& at(SpanCounter c) { return v[static_cast<std::size_t>(c)]; }
  std::uint64_t at(SpanCounter c) const { return v[static_cast<std::size_t>(c)]; }

  /// Element-wise `this - earlier` (counters are monotone; callers pass
  /// the start-of-span sample).
  CounterSet delta_since(const CounterSet& earlier) const {
    CounterSet d;
    for (int i = 0; i < kNumSpanCounters; ++i) d.v[static_cast<std::size_t>(i)] =
        v[static_cast<std::size_t>(i)] - earlier.v[static_cast<std::size_t>(i)];
    return d;
  }

  void accumulate(const CounterSet& d) {
    for (int i = 0; i < kNumSpanCounters; ++i)
      v[static_cast<std::size_t>(i)] += d.v[static_cast<std::size_t>(i)];
  }

  bool any() const {
    for (const std::uint64_t x : v)
      if (x != 0) return true;
    return false;
  }

  std::uint64_t owned_bytes() const {
    return at(SpanCounter::LocalBytes) + at(SpanCounter::RemoteBytes);
  }
  std::uint64_t total_bytes() const {
    return owned_bytes() + at(SpanCounter::UnownedBytes);
  }
  /// Fraction of owned traffic that was node-local (1.0 when none).
  double locality() const {
    const std::uint64_t owned = owned_bytes();
    return owned == 0 ? 1.0
                      : static_cast<double>(at(SpanCounter::LocalBytes)) /
                            static_cast<double>(owned);
  }

  static constexpr int kMaxCacheLevels = 3;
  std::uint64_t level_hits(int level) const {
    return v[static_cast<std::size_t>(SpanCounter::L1Hits) +
             2 * static_cast<std::size_t>(level)];
  }
  std::uint64_t level_misses(int level) const {
    return v[static_cast<std::size_t>(SpanCounter::L1Misses) +
             2 * static_cast<std::size_t>(level)];
  }
  /// Deepest cache level (0-based) with any activity, or -1.
  int deepest_level() const {
    for (int l = kMaxCacheLevels - 1; l >= 0; --l)
      if (level_hits(l) + level_misses(l) != 0) return l;
    return -1;
  }
  /// Miss rate of `level` (0.0 when the level saw no accesses).
  double miss_rate(int level) const {
    const std::uint64_t total = level_hits(level) + level_misses(level);
    return total == 0 ? 0.0
                      : static_cast<double>(level_misses(level)) /
                            static_cast<double>(total);
  }
};

/// Source of cumulative per-thread counter values, sampled at leaf-span
/// boundaries.  Implementations must be safe to call from thread `tid`
/// for that tid's own counters only (single-writer shards).
class CounterSampler {
 public:
  virtual ~CounterSampler() = default;
  virtual void sample(int tid, CounterSet& out) const = 0;
};

/// Only these leaf phases carry counter deltas.  Every instrumented
/// increment (updates, traffic bytes, simulated cache accesses) happens
/// inside Executor::update_box / first_touch_box — i.e. inside a Tile or
/// Init span — and those spans never nest in each other, so restricting
/// sampling to them makes the per-span deltas sum *exactly* to the run
/// totals: wait spans and structural spans contribute nothing and
/// nothing is counted twice.
constexpr bool phase_carries_counters(Phase p) {
  return p == Phase::Tile || p == Phase::Init;
}

struct Event {
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::int64_t exclude_ns = 0;  ///< nested leaf time (kept for attribution)
  std::uint64_t spins = 0;      ///< spin-loop iterations (wait phases only)
  CounterSet counters;          ///< per-span deltas; valid iff has_counters
  SpanArgs args;
  Phase phase = Phase::Tile;
  bool has_counters = false;
};

/// Per-thread recorder: exact phase totals plus a fixed-capacity event
/// ring (oldest events are overwritten on overflow; `dropped()` counts
/// them).  All mutating members must be called from the owning thread
/// only; readers run after the worker has joined.
class ThreadRecorder {
 public:
  /// Nanoseconds since the owning Trace's epoch (monotonic clock).
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// `exclude_ns` is subtracted from the contribution to the phase total
  /// (but not from the stored event): a caller whose span *contains*
  /// other leaf spans — e.g. a tile span covering a spin wait — passes
  /// the nested leaf time here so the totals still partition thread time,
  /// while the timeline keeps the span's full extent for nesting.
  /// `counters`, when non-null, is the span's counter delta; it is stored
  /// on the event and accumulated into the per-phase counter totals,
  /// which — like the time totals — live outside the ring and stay exact
  /// when the ring overflows.
  void record(Phase phase, std::int64_t start_ns, std::int64_t end_ns,
              SpanArgs args = {}, std::uint64_t spins = 0,
              std::int64_t exclude_ns = 0,
              const CounterSet* counters = nullptr) {
    const auto i = static_cast<std::size_t>(phase);
    total_ns_[i] += end_ns - start_ns - exclude_ns;
    span_count_[i] += 1;
    spin_count_[i] += spins;
    if (counters) counter_totals_[i].accumulate(*counters);
    if (capacity_ == 0) return;  // metrics-only mode: no event storage
    Event& e = ring_[next_];
    e.start_ns = start_ns;
    e.end_ns = end_ns;
    e.exclude_ns = exclude_ns;
    e.spins = spins;
    e.args = args;
    e.phase = phase;
    if (counters) {
      e.counters = *counters;
      e.has_counters = true;
    } else {
      e.has_counters = false;
    }
    next_ = (next_ + 1) % capacity_;
    recorded_ += 1;
  }

  /// The attached simulated-PMU sampler; null = per-span counters off
  /// (the ScopedSpan fast path is then one extra null check).
  const CounterSampler* sampler() const { return sampler_; }

  /// Samples the cumulative counters of this recorder's thread.  Call
  /// from the owning thread only, and only when sampler() is non-null.
  void sample(CounterSet& out) const { sampler_->sample(tid_, out); }

  int tid() const { return tid_; }
  std::size_t capacity() const { return capacity_; }

  /// Events still held by the ring, in chronological (insertion) order.
  std::vector<Event> events() const;

  /// Events recorded minus events still in the ring.
  std::uint64_t dropped() const {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }

  std::int64_t total_ns(Phase p) const {
    return total_ns_[static_cast<std::size_t>(p)];
  }
  std::uint64_t span_count(Phase p) const {
    return span_count_[static_cast<std::size_t>(p)];
  }
  std::uint64_t spin_count(Phase p) const {
    return spin_count_[static_cast<std::size_t>(p)];
  }

  /// Exact per-phase sum of every counter delta recorded for `p`
  /// (accumulated outside the ring, unaffected by drops).
  const CounterSet& counter_total(Phase p) const {
    return counter_totals_[static_cast<std::size_t>(p)];
  }

 private:
  friend class Trace;

  std::chrono::steady_clock::time_point epoch_{};
  int tid_ = 0;
  const CounterSampler* sampler_ = nullptr;
  std::vector<Event> ring_;
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
  std::array<std::int64_t, kNumPhases> total_ns_{};
  std::array<std::uint64_t, kNumPhases> span_count_{};
  std::array<std::uint64_t, kNumPhases> spin_count_{};
  std::array<CounterSet, kNumPhases> counter_totals_{};
};

/// RAII span: takes the start timestamp on construction and records on
/// destruction.  A null recorder makes both ends a no-op, so call sites
/// need no branches of their own.  When the recorder carries a counter
/// sampler and the phase is a counter-carrying leaf (Tile/Init), both
/// ends additionally snapshot the thread's cumulative counters and the
/// recorded event carries the delta.
class ScopedSpan {
 public:
  ScopedSpan(ThreadRecorder* rec, Phase phase, SpanArgs args = {})
      : rec_(rec), phase_(phase), args_(args) {
    if (rec_) {
      start_ns_ = rec_->now_ns();
      if (rec_->sampler() && phase_carries_counters(phase_)) {
        sampled_ = true;
        rec_->sample(start_counters_);
      }
    }
  }
  ~ScopedSpan() {
    if (!rec_) return;
    if (sampled_) {
      CounterSet now;
      rec_->sample(now);
      const CounterSet delta = now.delta_since(start_counters_);
      rec_->record(phase_, start_ns_, rec_->now_ns(), args_, 0, 0, &delta);
    } else {
      rec_->record(phase_, start_ns_, rec_->now_ns(), args_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ThreadRecorder* rec_;
  Phase phase_;
  SpanArgs args_;
  std::int64_t start_ns_ = 0;
  bool sampled_ = false;
  CounterSet start_counters_;
};

/// Aggregated per-thread, per-phase totals — the RunResult.phases payload.
struct PhaseBreakdown {
  struct Thread {
    std::array<double, kNumPhases> seconds{};
    std::array<std::uint64_t, kNumPhases> spans{};
    std::uint64_t spins = 0;    ///< spin-loop iterations across wait phases
    std::uint64_t dropped = 0;  ///< events lost to ring overflow

    double init_s() const { return seconds[static_cast<std::size_t>(Phase::Init)]; }
    double compute_s() const { return seconds[static_cast<std::size_t>(Phase::Tile)]; }
    double barrier_wait_s() const {
      return seconds[static_cast<std::size_t>(Phase::BarrierWait)];
    }
    double spin_wait_s() const {
      return seconds[static_cast<std::size_t>(Phase::SpinWait)];
    }
    /// Time the thread was doing useful work (init + compute).
    double busy_s() const { return init_s() + compute_s(); }
    /// Total wall time covered by leaf spans.
    double accounted_s() const {
      return busy_s() + barrier_wait_s() + spin_wait_s();
    }
  };

  bool enabled = false;
  std::vector<Thread> threads;

  /// Sum of one leaf phase over all threads, in seconds.
  double total_s(Phase p) const;

  /// Load imbalance: max over threads of busy time divided by the mean
  /// (1.0 = perfectly balanced; 1.0 when empty or idle).
  double imbalance() const;
};

/// The run-wide collector: one ThreadRecorder per worker, a common epoch,
/// and the serializers.  Reusable across runs — begin_run() resets the
/// recorders and the epoch for a new thread count.
class Trace {
 public:
  static constexpr std::size_t kDefaultEventsPerThread = 1 << 16;

  /// `events_per_thread` is the ring capacity; 0 keeps exact phase totals
  /// but stores no events (metrics-only mode).
  explicit Trace(std::size_t events_per_thread = kDefaultEventsPerThread)
      : events_per_thread_(events_per_thread) {}

  /// Prepares `num_threads` fresh recorders and restarts the clock epoch.
  /// Must not be called while workers hold recorder pointers.
  void begin_run(int num_threads);

  /// Recorder of worker `tid`, or nullptr when tid is out of range (no
  /// run began).  Pointers stay valid until the next begin_run().
  ThreadRecorder* thread(int tid) {
    return tid >= 0 && tid < static_cast<int>(threads_.size())
               ? &threads_[static_cast<std::size_t>(tid)]
               : nullptr;
  }
  const ThreadRecorder* thread(int tid) const {
    return const_cast<Trace*>(this)->thread(tid);
  }

  int num_threads() const { return static_cast<int>(threads_.size()); }
  std::size_t events_per_thread() const { return events_per_thread_; }

  /// Attaches (or detaches, with null) the simulated-PMU sampler to
  /// every recorder, current and future.  Call between runs, never while
  /// workers are recording.
  void set_sampler(const CounterSampler* sampler) {
    sampler_ = sampler;
    for (ThreadRecorder& t : threads_) t.sampler_ = sampler;
  }
  const CounterSampler* sampler() const { return sampler_; }

  /// Arithmetic cost of one cell update, used by the JSON serializer to
  /// derive arithmetic intensity (flops/byte) from the counter deltas.
  /// 0 (the default) omits the derived args.
  void set_flops_per_update(int flops) { flops_per_update_ = flops; }
  int flops_per_update() const { return flops_per_update_; }

  /// Aggregates the recorders' totals (exact, unaffected by ring drops).
  PhaseBreakdown breakdown() const;

  /// Chrome trace-event JSON: one "X" (complete) event per span, one
  /// track per thread, timestamps in microseconds since the run epoch.
  /// Counter-carrying spans get their deltas (bytes, miss rate, M up/s,
  /// arithmetic intensity) as span args plus per-thread "C" counter
  /// tracks (locality %, remote MB/s).  Loadable in Perfetto and
  /// chrome://tracing.
  void write_chrome_json(std::ostream& os) const;
  void write_chrome_json_file(const std::string& path) const;

 private:
  std::size_t events_per_thread_;
  const CounterSampler* sampler_ = nullptr;
  int flops_per_update_ = 0;
  std::vector<ThreadRecorder> threads_;
};

/// Human-readable observability configuration for `nustencil --explain`.
std::string describe_observability(const std::string& trace_path,
                                   const std::string& svg_path,
                                   bool phase_metrics,
                                   std::size_t events_per_thread);

}  // namespace nustencil::trace
