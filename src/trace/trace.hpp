// Space-time execution tracing: per-thread event ring buffers plus exact
// per-phase wall-time totals.
//
// The paper's argument is about *where time goes* — compute inside
// cache-sized tiles vs waiting at global barriers and spin flags — so the
// schemes and executors feed typed spans into one ThreadRecorder per
// worker.  Each recorder is single-producer (only its own thread writes),
// so recording is a plain store into a preallocated ring; collection
// happens after the team has joined.  When no recorder is attached every
// hook is a single null-pointer check, and the phase totals are
// accumulated outside the ring, so they stay exact even when the ring
// overflows and drops old events.
//
// The collector serializes the event stream as Chrome trace-event JSON
// (one track per thread, loadable in Perfetto / chrome://tracing) and
// aggregates the totals into a PhaseBreakdown for RunResult.phases.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nustencil::trace {

/// Span taxonomy.  Leaf phases partition a thread's accounted time and
/// feed the phase totals; structural phases (Layer, Parallelogram) group
/// leaf spans for the timeline and are excluded from the totals so that
/// nested spans are not double-counted.
enum class Phase : std::uint8_t {
  Init = 0,       ///< allocation + first-touch initialisation (leaf)
  Tile,           ///< one Executor::update_box sweep (leaf, compute)
  BarrierWait,    ///< spinning in Barrier::arrive_and_wait (leaf)
  SpinWait,       ///< spinning on a FlagArray / ProgressCounter (leaf)
  Parallelogram,  ///< one base parallelogram, CORALS family (structural)
  Layer,          ///< one temporal layer / chunk between barriers (structural)
  Steal,          ///< a stolen task executing on a thief thread (structural)
  kCount
};

inline constexpr int kNumPhases = static_cast<int>(Phase::kCount);

const char* phase_name(Phase p);

/// Leaf phases are mutually exclusive in time on one thread; only they
/// contribute to the per-phase totals.
constexpr bool phase_is_leaf(Phase p) {
  return p == Phase::Init || p == Phase::Tile || p == Phase::BarrierWait ||
         p == Phase::SpinWait;
}

/// Small fixed argument set carried by every span.  The meaning depends
/// on the phase (see the Chrome JSON writer): Tile uses a/b/c as the box
/// origin and owner as the executing thread; SpinWait uses a as the wait
/// target and owner as the producing tile/thread; Layer uses a as the
/// layer index, b as the absolute start step and c as the layer height.
struct SpanArgs {
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t c = -1;
  std::int32_t owner = -1;
};

struct Event {
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::uint64_t spins = 0;  ///< spin-loop iterations (wait phases only)
  SpanArgs args;
  Phase phase = Phase::Tile;
};

/// Per-thread recorder: exact phase totals plus a fixed-capacity event
/// ring (oldest events are overwritten on overflow; `dropped()` counts
/// them).  All mutating members must be called from the owning thread
/// only; readers run after the worker has joined.
class ThreadRecorder {
 public:
  /// Nanoseconds since the owning Trace's epoch (monotonic clock).
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// `exclude_ns` is subtracted from the contribution to the phase total
  /// (but not from the stored event): a caller whose span *contains*
  /// other leaf spans — e.g. a tile span covering a spin wait — passes
  /// the nested leaf time here so the totals still partition thread time,
  /// while the timeline keeps the span's full extent for nesting.
  void record(Phase phase, std::int64_t start_ns, std::int64_t end_ns,
              SpanArgs args = {}, std::uint64_t spins = 0,
              std::int64_t exclude_ns = 0) {
    const auto i = static_cast<std::size_t>(phase);
    total_ns_[i] += end_ns - start_ns - exclude_ns;
    span_count_[i] += 1;
    spin_count_[i] += spins;
    if (capacity_ == 0) return;  // metrics-only mode: no event storage
    Event& e = ring_[next_];
    e.start_ns = start_ns;
    e.end_ns = end_ns;
    e.spins = spins;
    e.args = args;
    e.phase = phase;
    next_ = (next_ + 1) % capacity_;
    recorded_ += 1;
  }

  int tid() const { return tid_; }
  std::size_t capacity() const { return capacity_; }

  /// Events still held by the ring, in chronological (insertion) order.
  std::vector<Event> events() const;

  /// Events recorded minus events still in the ring.
  std::uint64_t dropped() const {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }

  std::int64_t total_ns(Phase p) const {
    return total_ns_[static_cast<std::size_t>(p)];
  }
  std::uint64_t span_count(Phase p) const {
    return span_count_[static_cast<std::size_t>(p)];
  }
  std::uint64_t spin_count(Phase p) const {
    return spin_count_[static_cast<std::size_t>(p)];
  }

 private:
  friend class Trace;

  std::chrono::steady_clock::time_point epoch_{};
  int tid_ = 0;
  std::vector<Event> ring_;
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
  std::array<std::int64_t, kNumPhases> total_ns_{};
  std::array<std::uint64_t, kNumPhases> span_count_{};
  std::array<std::uint64_t, kNumPhases> spin_count_{};
};

/// RAII span: takes the start timestamp on construction and records on
/// destruction.  A null recorder makes both ends a no-op, so call sites
/// need no branches of their own.
class ScopedSpan {
 public:
  ScopedSpan(ThreadRecorder* rec, Phase phase, SpanArgs args = {})
      : rec_(rec), phase_(phase), args_(args) {
    if (rec_) start_ns_ = rec_->now_ns();
  }
  ~ScopedSpan() {
    if (rec_) rec_->record(phase_, start_ns_, rec_->now_ns(), args_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ThreadRecorder* rec_;
  Phase phase_;
  SpanArgs args_;
  std::int64_t start_ns_ = 0;
};

/// Aggregated per-thread, per-phase totals — the RunResult.phases payload.
struct PhaseBreakdown {
  struct Thread {
    std::array<double, kNumPhases> seconds{};
    std::array<std::uint64_t, kNumPhases> spans{};
    std::uint64_t spins = 0;    ///< spin-loop iterations across wait phases
    std::uint64_t dropped = 0;  ///< events lost to ring overflow

    double init_s() const { return seconds[static_cast<std::size_t>(Phase::Init)]; }
    double compute_s() const { return seconds[static_cast<std::size_t>(Phase::Tile)]; }
    double barrier_wait_s() const {
      return seconds[static_cast<std::size_t>(Phase::BarrierWait)];
    }
    double spin_wait_s() const {
      return seconds[static_cast<std::size_t>(Phase::SpinWait)];
    }
    /// Time the thread was doing useful work (init + compute).
    double busy_s() const { return init_s() + compute_s(); }
    /// Total wall time covered by leaf spans.
    double accounted_s() const {
      return busy_s() + barrier_wait_s() + spin_wait_s();
    }
  };

  bool enabled = false;
  std::vector<Thread> threads;

  /// Sum of one leaf phase over all threads, in seconds.
  double total_s(Phase p) const;

  /// Load imbalance: max over threads of busy time divided by the mean
  /// (1.0 = perfectly balanced; 1.0 when empty or idle).
  double imbalance() const;
};

/// The run-wide collector: one ThreadRecorder per worker, a common epoch,
/// and the serializers.  Reusable across runs — begin_run() resets the
/// recorders and the epoch for a new thread count.
class Trace {
 public:
  static constexpr std::size_t kDefaultEventsPerThread = 1 << 16;

  /// `events_per_thread` is the ring capacity; 0 keeps exact phase totals
  /// but stores no events (metrics-only mode).
  explicit Trace(std::size_t events_per_thread = kDefaultEventsPerThread)
      : events_per_thread_(events_per_thread) {}

  /// Prepares `num_threads` fresh recorders and restarts the clock epoch.
  /// Must not be called while workers hold recorder pointers.
  void begin_run(int num_threads);

  /// Recorder of worker `tid`, or nullptr when tid is out of range (no
  /// run began).  Pointers stay valid until the next begin_run().
  ThreadRecorder* thread(int tid) {
    return tid >= 0 && tid < static_cast<int>(threads_.size())
               ? &threads_[static_cast<std::size_t>(tid)]
               : nullptr;
  }
  const ThreadRecorder* thread(int tid) const {
    return const_cast<Trace*>(this)->thread(tid);
  }

  int num_threads() const { return static_cast<int>(threads_.size()); }
  std::size_t events_per_thread() const { return events_per_thread_; }

  /// Aggregates the recorders' totals (exact, unaffected by ring drops).
  PhaseBreakdown breakdown() const;

  /// Chrome trace-event JSON: one "X" (complete) event per span, one
  /// track per thread, timestamps in microseconds since the run epoch.
  /// Loadable in Perfetto and chrome://tracing.
  void write_chrome_json(std::ostream& os) const;
  void write_chrome_json_file(const std::string& path) const;

 private:
  std::size_t events_per_thread_;
  std::vector<ThreadRecorder> threads_;
};

/// Human-readable observability configuration for `nustencil --explain`.
std::string describe_observability(const std::string& trace_path,
                                   const std::string& svg_path,
                                   bool phase_metrics,
                                   std::size_t events_per_thread);

}  // namespace nustencil::trace
