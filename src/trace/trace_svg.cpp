#include "trace/trace_svg.hpp"

namespace nustencil::trace {

report::TimelineSpec timeline_spec(const Trace& trace, const std::string& title) {
  report::TimelineSpec spec;
  spec.title = title;
  for (int p = 0; p < kNumPhases; ++p)
    spec.class_labels.push_back(phase_name(static_cast<Phase>(p)));
  double t_end = 0.0;
  for (int tid = 0; tid < trace.num_threads(); ++tid) {
    spec.track_labels.push_back("worker " + std::to_string(tid));
    // Two passes: structural spans first so the leaf spans of the same
    // thread are painted over them instead of being hidden.
    for (const bool structural : {true, false}) {
      for (const Event& e : trace.thread(tid)->events()) {
        if (phase_is_leaf(e.phase) == structural) continue;
        report::TimelineSpan span;
        span.t0 = static_cast<double>(e.start_ns) * 1e-9;
        span.t1 = static_cast<double>(e.end_ns) * 1e-9;
        span.track = tid;
        span.cls = static_cast<int>(e.phase);
        spec.spans.push_back(span);
        t_end = std::max(t_end, span.t1);
      }
    }
  }
  spec.t_end = t_end;
  return spec;
}

void write_timeline_svg(const Trace& trace, const std::string& title,
                        const std::string& path) {
  report::write_timeline_svg(timeline_spec(trace, title), path);
}

}  // namespace nustencil::trace
