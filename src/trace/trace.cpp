#include "trace/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace nustencil::trace {

const char* span_counter_name(SpanCounter c) {
  switch (c) {
    case SpanCounter::Updates: return "updates";
    case SpanCounter::LocalBytes: return "local_bytes";
    case SpanCounter::RemoteBytes: return "remote_bytes";
    case SpanCounter::UnownedBytes: return "unowned_bytes";
    case SpanCounter::L1Hits: return "l1_hits";
    case SpanCounter::L1Misses: return "l1_misses";
    case SpanCounter::L2Hits: return "l2_hits";
    case SpanCounter::L2Misses: return "l2_misses";
    case SpanCounter::L3Hits: return "l3_hits";
    case SpanCounter::L3Misses: return "l3_misses";
    case SpanCounter::HwCycles: return "hw_cycles";
    case SpanCounter::HwInstructions: return "hw_instructions";
    case SpanCounter::HwCacheRefs: return "hw_cache_refs";
    case SpanCounter::HwCacheMisses: return "hw_cache_misses";
    case SpanCounter::HwStalledCycles: return "hw_stalled_cycles";
    case SpanCounter::HwTaskClock: return "hw_task_clock_ns";
    case SpanCounter::HwPageFaults: return "hw_page_faults";
    case SpanCounter::kCount: break;
  }
  return "?";
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::Init: return "init";
    case Phase::Tile: return "tile";
    case Phase::BarrierWait: return "barrier-wait";
    case Phase::SpinWait: return "spinflag-wait";
    case Phase::Parallelogram: return "parallelogram";
    case Phase::Layer: return "layer";
    case Phase::Steal: return "steal";
    case Phase::kCount: break;
  }
  return "?";
}

std::vector<Event> ThreadRecorder::events() const {
  std::vector<Event> out;
  if (capacity_ == 0 || recorded_ == 0) return out;
  const std::size_t held = std::min<std::uint64_t>(recorded_, capacity_);
  out.reserve(held);
  // Oldest surviving event sits at next_ once the ring has wrapped.
  const std::size_t first = recorded_ > capacity_ ? next_ : 0;
  for (std::size_t k = 0; k < held; ++k)
    out.push_back(ring_[(first + k) % capacity_]);
  return out;
}

void Trace::begin_run(int num_threads) {
  NUSTENCIL_CHECK(num_threads >= 1, "Trace::begin_run: need at least one thread");
  const auto epoch = std::chrono::steady_clock::now();
  threads_.assign(static_cast<std::size_t>(num_threads), ThreadRecorder{});
  for (int tid = 0; tid < num_threads; ++tid) {
    ThreadRecorder& rec = threads_[static_cast<std::size_t>(tid)];
    rec.epoch_ = epoch;
    rec.tid_ = tid;
    rec.sampler_ = sampler_;
    rec.capacity_ = events_per_thread_;
    rec.ring_.resize(events_per_thread_);
  }
}

double PhaseBreakdown::total_s(Phase p) const {
  double sum = 0.0;
  for (const Thread& t : threads) sum += t.seconds[static_cast<std::size_t>(p)];
  return sum;
}

double PhaseBreakdown::imbalance() const {
  if (threads.empty()) return 1.0;
  double max = 0.0, sum = 0.0;
  for (const Thread& t : threads) {
    max = std::max(max, t.busy_s());
    sum += t.busy_s();
  }
  const double mean = sum / static_cast<double>(threads.size());
  return mean > 0.0 ? max / mean : 1.0;
}

PhaseBreakdown Trace::breakdown() const {
  PhaseBreakdown out;
  out.enabled = !threads_.empty();
  out.threads.resize(threads_.size());
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const ThreadRecorder& rec = threads_[i];
    PhaseBreakdown::Thread& t = out.threads[i];
    for (int p = 0; p < kNumPhases; ++p) {
      const auto phase = static_cast<Phase>(p);
      t.seconds[static_cast<std::size_t>(p)] =
          static_cast<double>(rec.total_ns(phase)) * 1e-9;
      t.spans[static_cast<std::size_t>(p)] = rec.span_count(phase);
      t.spins += rec.spin_count(phase);
    }
    t.dropped = rec.dropped();
  }
  return out;
}

namespace {

const char* phase_category(Phase p) {
  switch (p) {
    case Phase::Init: return "init";
    case Phase::Tile: return "compute";
    case Phase::BarrierWait:
    case Phase::SpinWait: return "wait";
    case Phase::Parallelogram:
    case Phase::Layer: return "structure";
    case Phase::Steal: return "steal";
    case Phase::kCount: break;
  }
  return "?";
}

/// Phase-specific names for the generic a/b/c argument slots; nullptr
/// slots are omitted from the JSON.
struct ArgNames {
  const char* a;
  const char* b;
  const char* c;
};

ArgNames phase_arg_names(Phase p) {
  switch (p) {
    case Phase::Init: return {"x0", "y0", "z0"};
    case Phase::Tile: return {"x0", "y0", "z0"};
    case Phase::BarrierWait: return {nullptr, nullptr, nullptr};
    case Phase::SpinWait: return {"target", nullptr, nullptr};
    case Phase::Parallelogram: return {"base", "layer", nullptr};
    case Phase::Layer: return {"layer", "t0", "height"};
    case Phase::Steal: return {"task", "victim", nullptr};
    case Phase::kCount: break;
  }
  return {nullptr, nullptr, nullptr};
}

void write_event_json(std::ostream& os, int tid, const Event& e,
                      int flops_per_update) {
  // Timestamps in microseconds (the unit the trace-event format expects).
  os << "{\"name\":\"" << phase_name(e.phase) << "\",\"cat\":\""
     << phase_category(e.phase) << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << tid
     << ",\"ts\":" << static_cast<double>(e.start_ns) * 1e-3
     << ",\"dur\":" << static_cast<double>(e.end_ns - e.start_ns) * 1e-3
     << ",\"args\":{";
  bool first = true;
  auto arg = [&](const char* name, long long value) {
    if (!name) return;
    if (!first) os << ',';
    os << '\"' << name << "\":" << value;
    first = false;
  };
  auto argd = [&](const char* name, double value) {
    if (!first) os << ',';
    os << '\"' << name << "\":" << value;
    first = false;
  };
  const ArgNames names = phase_arg_names(e.phase);
  if (e.args.a != -1 || e.phase == Phase::Layer) arg(names.a, e.args.a);
  if (e.args.b != -1 || e.phase == Phase::Layer) arg(names.b, e.args.b);
  if (e.args.c != -1 || e.phase == Phase::Layer) arg(names.c, e.args.c);
  if (e.args.owner != -1) arg("owner", e.args.owner);
  if (e.phase == Phase::BarrierWait || e.phase == Phase::SpinWait)
    arg("spins", static_cast<long long>(e.spins));
  if (e.exclude_ns > 0) argd("excl_us", static_cast<double>(e.exclude_ns) * 1e-3);
  if (e.has_counters) {
    // Raw per-span deltas (zero-valued slots are omitted to keep the
    // document small), then the derived headline metrics.
    const CounterSet& c = e.counters;
    for (int i = 0; i < kNumSpanCounters; ++i) {
      const auto sc = static_cast<SpanCounter>(i);
      if (c.at(sc) != 0)
        arg(span_counter_name(sc), static_cast<long long>(c.at(sc)));
    }
    if (c.total_bytes() > 0) {
      arg("bytes", static_cast<long long>(c.total_bytes()));
      argd("locality_pct", c.locality() * 100.0);
      if (flops_per_update > 0 && c.at(SpanCounter::Updates) > 0)
        argd("ai_flop_per_byte",
             static_cast<double>(c.at(SpanCounter::Updates)) * flops_per_update /
                 static_cast<double>(c.total_bytes()));
    }
    if (const int deep = c.deepest_level(); deep >= 0)
      argd("miss_pct", c.miss_rate(deep) * 100.0);
    const double dur_us = static_cast<double>(e.end_ns - e.start_ns) * 1e-3;
    if (c.at(SpanCounter::Updates) > 0 && dur_us > 0.0)
      argd("mups", static_cast<double>(c.at(SpanCounter::Updates)) / dur_us);
    if (c.at(SpanCounter::HwCycles) > 0 &&
        c.at(SpanCounter::HwInstructions) > 0)
      argd("ipc", static_cast<double>(c.at(SpanCounter::HwInstructions)) /
                      static_cast<double>(c.at(SpanCounter::HwCycles)));
  }
  os << "}}";
}

/// One "C" (counter) sample per counter-carrying span: a per-thread
/// locality-% track and a per-thread remote-byte-rate track, named with
/// the worker id so Perfetto renders one track per thread.
void write_counter_samples_json(std::ostream& os, int tid, const Event& e) {
  const CounterSet& c = e.counters;
  if (c.total_bytes() == 0) return;
  const double ts_us = static_cast<double>(e.start_ns) * 1e-3;
  const double dur_s = static_cast<double>(e.end_ns - e.start_ns) * 1e-9;
  os << ",\n{\"name\":\"locality % w" << tid
     << "\",\"ph\":\"C\",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << ts_us
     << ",\"args\":{\"locality\":" << c.locality() * 100.0 << "}}";
  const double remote_mbs =
      dur_s > 0.0
          ? static_cast<double>(c.at(SpanCounter::RemoteBytes)) / dur_s / 1e6
          : 0.0;
  os << ",\n{\"name\":\"remote MB/s w" << tid
     << "\",\"ph\":\"C\",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << ts_us
     << ",\"args\":{\"rate\":" << remote_mbs << "}}";
}

}  // namespace

void Trace::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"nustencil\"}}";
  for (int tid = 0; tid < num_threads(); ++tid)
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":\"worker " << tid << "\"}}";
  for (int tid = 0; tid < num_threads(); ++tid) {
    std::vector<Event> events = thread(tid)->events();
    // The ring stores spans in completion order; emit them by start time
    // so nested spans appear parent-first.
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& x, const Event& y) {
                       return x.start_ns < y.start_ns;
                     });
    for (const Event& e : events) {
      os << ",\n";
      write_event_json(os, tid, e, flops_per_update_);
    }
    for (const Event& e : events)
      if (e.has_counters) write_counter_samples_json(os, tid, e);
  }
  os << "\n]}\n";
}

void Trace::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "Trace: cannot open " + path);
  write_chrome_json(out);
  NUSTENCIL_CHECK(out.good(), "Trace: write failed for " + path);
}

std::string describe_observability(const std::string& trace_path,
                                   const std::string& svg_path,
                                   bool phase_metrics,
                                   std::size_t events_per_thread) {
  std::ostringstream os;
  os << "observability:\n";
  os << "  chrome trace            : "
     << (trace_path.empty() ? "off" : "on -> " + trace_path) << '\n';
  os << "  timeline svg            : "
     << (svg_path.empty() ? "off" : "on -> " + svg_path) << '\n';
  os << "  event ring              : " << events_per_thread
     << " events/thread";
  if (!trace_path.empty() || !svg_path.empty())
    os << " (" << events_per_thread * sizeof(Event) / 1024 << " KiB/thread)";
  os << '\n';
  os << "  phase metrics           : " << (phase_metrics ? "on" : "off")
     << " (per-thread compute / barrier-wait / spinflag-wait / init totals)"
     << '\n';
  return os.str();
}

}  // namespace nustencil::trace
