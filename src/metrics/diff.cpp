#include "metrics/diff.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace nustencil::metrics {

namespace {

/// Object member at a two-deep path, or nullptr anywhere along the way.
const JsonValue* find_path(const JsonValue& doc, const char* k1,
                           const char* k2 = nullptr,
                           const char* k3 = nullptr) {
  const JsonValue* v = doc.find(k1);
  if (v && k2) v = v->find(k2);
  if (v && k3) v = v->find(k3);
  return v;
}

/// Number at a path; `fallback` when absent or not a number.
double num_or(const JsonValue* v, double fallback) {
  return v && v->type == JsonValue::Type::Number ? v->number : fallback;
}

std::string value_as_string(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::String: return v.string;
    case JsonValue::Type::Bool: return v.boolean ? "true" : "false";
    case JsonValue::Type::Null: return "null";
    case JsonValue::Type::Number: {
      std::ostringstream os;
      os.precision(17);
      os << v.number;
      return os.str();
    }
    default: return "<composite>";
  }
}

bool close_rel(double a, double b, double eps) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) <= eps * scale;
}

/// Parses a report's "stats" section (schema >= 4); absent -> empty.
StatsSection parse_stats(const JsonValue& doc) {
  StatsSection s;
  const JsonValue* stats = doc.find("stats");
  if (!stats || !stats->is_object()) return s;
  s.reps = static_cast<int>(num_or(stats->find("reps"), 0.0));
  if (const JsonValue* metrics = stats->find("metrics")) {
    for (const auto& [name, v] : metrics->object) {
      RepSummary r;
      r.n = static_cast<int>(num_or(v.find("n"), 0.0));
      r.median = num_or(v.find("median"), 0.0);
      r.mad = num_or(v.find("mad"), 0.0);
      r.ci_lo = num_or(v.find("ci_lo"), 0.0);
      r.ci_hi = num_or(v.find("ci_hi"), 0.0);
      r.min = num_or(v.find("min"), 0.0);
      r.max = num_or(v.find("max"), 0.0);
      s.metrics.emplace_back(name, r);
    }
  }
  return s;
}

class DiffBuilder {
 public:
  DiffBuilder(const JsonValue& a, const JsonValue& b, const DiffOptions& opt)
      : a_(a), b_(b), opt_(opt), stats_a_(parse_stats(a)),
        stats_b_(parse_stats(b)) {}

  ReportDiff build();

 private:
  void config_deltas(const char* section);
  void add_metric(const std::string& name, MetricKind kind,
                  const JsonValue* va, const JsonValue* vb);
  void classify(MetricDelta& m);
  void collect_phases();
  void collect_cache();
  void collect_sched();
  void collect_prof_totals();
  void collect_counters();
  void matrix_delta();

  const JsonValue& a_;
  const JsonValue& b_;
  DiffOptions opt_;
  StatsSection stats_a_, stats_b_;
  ReportDiff out_;
};

void DiffBuilder::config_deltas(const char* section) {
  const JsonValue* ca = a_.find(section);
  const JsonValue* cb = b_.find(section);
  std::vector<std::string> keys;
  std::set<std::string> seen;
  for (const JsonValue* c : {ca, cb}) {
    if (!c || !c->is_object()) continue;
    for (const auto& [k, v] : c->object) {
      (void)v;
      if (seen.insert(k).second) keys.push_back(k);
    }
  }
  for (const std::string& k : keys) {
    const JsonValue* va = ca ? ca->find(k) : nullptr;
    const JsonValue* vb = cb ? cb->find(k) : nullptr;
    if (va && va->is_object()) continue;  // machine sub-objects, caches...
    const std::string sa = va ? value_as_string(*va) : "<absent>";
    const std::string sb = vb ? value_as_string(*vb) : "<absent>";
    if (sa != sb)
      out_.config.push_back({std::string(section) + "/" + k, sa, sb});
  }
}

void DiffBuilder::add_metric(const std::string& name, MetricKind kind,
                             const JsonValue* va, const JsonValue* vb) {
  if (!va && !vb) return;
  MetricDelta m;
  m.name = name;
  m.kind = kind;
  m.a_present = va && va->type == JsonValue::Type::Number;
  m.b_present = vb && vb->type == JsonValue::Type::Number;
  m.a = m.a_present ? va->number : 0.0;
  m.b = m.b_present ? vb->number : 0.0;
  classify(m);
  out_.metrics.push_back(std::move(m));
}

void DiffBuilder::classify(MetricDelta& m) {
  if (!m.a_present || !m.b_present) {
    // A section present on one side only is a schema/instrumentation
    // gap, not a performance signal.
    m.cls = DeltaClass::Noise;
    return;
  }
  bool significant = false;
  switch (m.kind) {
    case MetricKind::Exact:
      if (m.a == m.b) {
        m.cls = DeltaClass::Equal;
        return;
      }
      significant = true;
      break;
    case MetricKind::Derived:
      if (close_rel(m.a, m.b, opt_.derived_rel_tol)) {
        m.cls = DeltaClass::Equal;
        return;
      }
      significant = true;
      break;
    case MetricKind::Noisy: {
      if (m.a == m.b) {
        m.cls = DeltaClass::Equal;
        return;
      }
      const RepSummary* ra = stats_a_.find(m.name);
      const RepSummary* rb = stats_b_.find(m.name);
      if (ra && rb && ra->n > 1 && rb->n > 1) {
        m.used_stats = true;
        const double effect = std::fabs(rb->median - ra->median);
        significant = !intervals_overlap(*ra, *rb) &&
                      effect > opt_.min_effect_rel * std::fabs(ra->median);
      } else {
        significant = std::fabs(m.rel()) > opt_.noise_rel_tol;
      }
      break;
    }
  }
  m.cls = significant ? DeltaClass::Significant : DeltaClass::Noise;
  if (significant) {
    m.verdict = prof::attribute_delta(m.name, out_.agg_a, out_.agg_b);
    m.has_verdict = true;
  }
}

void DiffBuilder::collect_phases() {
  const JsonValue* pa = a_.find("phases");
  const JsonValue* pb = b_.find("phases");
  const char* keys[] = {"init_s", "compute_s", "barrier_wait_s",
                        "spinflag_wait_s", "imbalance"};
  for (const char* k : keys) {
    const JsonValue* va = pa ? pa->find(k) : nullptr;
    const JsonValue* vb = pb ? pb->find(k) : nullptr;
    add_metric(std::string("phase/") + k, MetricKind::Noisy, va, vb);
  }
}

void DiffBuilder::collect_cache() {
  const JsonValue* la = find_path(a_, "cache", "levels");
  const JsonValue* lb = find_path(b_, "cache", "levels");
  const std::size_t levels =
      std::max(la && la->is_array() ? la->array.size() : 0,
               lb && lb->is_array() ? lb->array.size() : 0);
  for (std::size_t i = 0; i < levels; ++i) {
    const JsonValue* lva =
        la && la->is_array() && i < la->array.size() ? &la->array[i] : nullptr;
    const JsonValue* lvb =
        lb && lb->is_array() && i < lb->array.size() ? &lb->array[i] : nullptr;
    const std::string prefix = "cache/L" + std::to_string(i + 1) + "_";
    add_metric(prefix + "hits", MetricKind::Exact,
               lva ? lva->find("hits") : nullptr,
               lvb ? lvb->find("hits") : nullptr);
    add_metric(prefix + "misses", MetricKind::Exact,
               lva ? lva->find("misses") : nullptr,
               lvb ? lvb->find("misses") : nullptr);
    add_metric(prefix + "hit_rate", MetricKind::Derived,
               lva ? lva->find("hit_rate") : nullptr,
               lvb ? lvb->find("hit_rate") : nullptr);
  }
  add_metric("cache/memory_bytes", MetricKind::Exact,
             find_path(a_, "cache", "memory_bytes"),
             find_path(b_, "cache", "memory_bytes"));
}

void DiffBuilder::collect_sched() {
  // Steal decisions race against wall-clock timing, so the counts are
  // noisy even on an unchanged tree.
  const char* keys[] = {"steal_attempts", "steals", "steal_fails",
                        "stolen_updates"};
  for (const char* k : keys)
    add_metric(std::string("sched/") + k, MetricKind::Noisy,
               find_path(a_, "sched", k), find_path(b_, "sched", k));
}

void DiffBuilder::collect_prof_totals() {
  const JsonValue* ta = find_path(a_, "prof", "totals");
  const JsonValue* tb = find_path(b_, "prof", "totals");
  if (!ta && !tb) return;
  std::set<std::string> keys;
  for (const JsonValue* t : {ta, tb})
    if (t && t->is_object())
      for (const auto& [k, v] : t->object) {
        (void)v;
        keys.insert(k);
      }
  for (const std::string& k : keys)
    add_metric("prof/totals/" + k, MetricKind::Exact,
               ta ? ta->find(k) : nullptr, tb ? tb->find(k) : nullptr);
}

void DiffBuilder::collect_counters() {
  const JsonValue* ca = a_.find("counters");
  const JsonValue* cb = b_.find("counters");
  if (!ca && !cb) return;
  std::set<std::string> keys;
  for (const JsonValue* c : {ca, cb})
    if (c && c->is_object())
      for (const auto& [k, v] : c->object) {
        (void)v;
        keys.insert(k);
      }
  for (const std::string& k : keys) {
    const MetricKind kind = k.find("steal") != std::string::npos
                                ? MetricKind::Noisy
                                : MetricKind::Exact;
    add_metric("counters/" + k, kind, ca ? ca->find(k) : nullptr,
               cb ? cb->find(k) : nullptr);
  }
}

void DiffBuilder::matrix_delta() {
  const JsonValue* ma = find_path(a_, "traffic", "node_matrix");
  const JsonValue* mb = find_path(b_, "traffic", "node_matrix");
  if (!ma || !mb || !ma->is_array() || !mb->is_array() || ma->array.empty() ||
      ma->array.size() != mb->array.size())
    return;
  const std::size_t nodes = ma->array.size();
  std::vector<double> delta;
  for (std::size_t r = 0; r < nodes; ++r) {
    const JsonValue& ra = ma->array[r];
    const JsonValue& rb = mb->array[r];
    if (!ra.is_array() || !rb.is_array() || ra.array.size() != nodes ||
        rb.array.size() != nodes)
      return;
    for (std::size_t c = 0; c < nodes; ++c)
      delta.push_back((rb.array[c].num() - ra.array[c].num()) /
                      (1024.0 * 1024.0));
  }
  out_.nodes = static_cast<int>(nodes);
  out_.matrix_delta_mib = std::move(delta);
}

ReportDiff DiffBuilder::build() {
  const auto schema_of = [](const JsonValue& doc) {
    const JsonValue* v = doc.find("schema_version");
    const int version = static_cast<int>(num_or(v, 0.0));
    NUSTENCIL_CHECK(version >= 1,
                    "diff_reports: document has no schema_version >= 1 "
                    "(not a nustencil run report)");
    return version;
  };
  out_.schema_a = schema_of(a_);
  out_.schema_b = schema_of(b_);
  out_.agg_a = extract_aggregates(a_);
  out_.agg_b = extract_aggregates(b_);

  config_deltas("config");
  config_deltas("provenance");

  add_metric("result/seconds", MetricKind::Noisy,
             find_path(a_, "result", "seconds"),
             find_path(b_, "result", "seconds"));
  add_metric("result/gupdates_per_s", MetricKind::Noisy,
             find_path(a_, "result", "gupdates_per_s"),
             find_path(b_, "result", "gupdates_per_s"));
  add_metric("result/updates", MetricKind::Exact,
             find_path(a_, "result", "updates"),
             find_path(b_, "result", "updates"));
  for (const char* k : {"local_bytes", "remote_bytes", "unowned_bytes"})
    add_metric(std::string("traffic/") + k, MetricKind::Exact,
               find_path(a_, "traffic", k), find_path(b_, "traffic", k));
  add_metric("traffic/locality", MetricKind::Derived,
             find_path(a_, "traffic", "locality"),
             find_path(b_, "traffic", "locality"));
  collect_phases();
  collect_cache();
  collect_sched();
  collect_prof_totals();
  collect_counters();
  matrix_delta();
  return std::move(out_);
}

}  // namespace

const char* delta_class_name(DeltaClass c) {
  switch (c) {
    case DeltaClass::Equal: return "equal";
    case DeltaClass::Noise: return "noise";
    case DeltaClass::Significant: return "significant";
  }
  return "equal";
}

const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Exact: return "exact";
    case MetricKind::Derived: return "derived";
    case MetricKind::Noisy: return "noisy";
  }
  return "noisy";
}

double MetricDelta::rel() const {
  if (a == 0.0) return 0.0;
  return (b - a) / std::fabs(a);
}

std::size_t ReportDiff::count(DeltaClass c) const {
  std::size_t n = 0;
  for (const MetricDelta& m : metrics)
    if (m.cls == c) ++n;
  return n;
}

prof::RunAggregates extract_aggregates(const JsonValue& doc) {
  prof::RunAggregates agg;
  if (const JsonValue* v = find_path(doc, "config", "scheme"))
    agg.scheme = v->str();
  if (const JsonValue* v = find_path(doc, "config", "kernel_variant"))
    agg.kernel_variant = v->str();
  if (const JsonValue* v = find_path(doc, "config", "schedule"))
    agg.schedule = v->str();
  agg.seconds = num_or(find_path(doc, "result", "seconds"), -1.0);
  agg.gupdates_per_s = num_or(find_path(doc, "result", "gupdates_per_s"), -1.0);
  agg.locality = num_or(find_path(doc, "traffic", "locality"), -1.0);
  const double local = num_or(find_path(doc, "traffic", "local_bytes"), -1.0);
  const double remote = num_or(find_path(doc, "traffic", "remote_bytes"), -1.0);
  if (local >= 0.0 && remote >= 0.0 && local + remote > 0.0)
    agg.remote_frac = remote / (local + remote);
  if (const JsonValue* levels = find_path(doc, "cache", "levels");
      levels && levels->is_array() && !levels->array.empty())
    agg.deep_miss_rate =
        1.0 - num_or(levels->array.back().find("hit_rate"), 1.0);
  agg.imbalance = num_or(find_path(doc, "phases", "imbalance"), -1.0);
  const double init = num_or(find_path(doc, "phases", "init_s"), -1.0);
  const double compute = num_or(find_path(doc, "phases", "compute_s"), -1.0);
  const double barrier =
      num_or(find_path(doc, "phases", "barrier_wait_s"), -1.0);
  const double spin = num_or(find_path(doc, "phases", "spinflag_wait_s"), -1.0);
  if (init >= 0.0 && compute >= 0.0 && barrier >= 0.0 && spin >= 0.0) {
    const double total = init + compute + barrier + spin;
    if (total > 0.0) agg.spin_frac = (barrier + spin) / total;
  }
  return agg;
}

std::string format_diff_console(const ReportDiff& diff) {
  std::ostringstream os;
  os.precision(6);
  for (const ConfigDelta& c : diff.config)
    os << "CONFIG " << c.key << ": '" << c.a << "' -> '" << c.b << "'\n";
  for (const MetricDelta& m : diff.metrics) {
    if (m.cls == DeltaClass::Equal) continue;
    os << "DIFF " << m.name << ": ";
    if (!m.a_present || !m.b_present) {
      os << "only in report " << (m.a_present ? "A" : "B") << " ("
         << (m.a_present ? m.a : m.b) << ") [schema gap]\n";
      continue;
    }
    std::ostringstream rels;
    rels.precision(1);
    rels << std::fixed << (m.rel() >= 0 ? "+" : "") << m.rel() * 100.0 << "%";
    os << m.a << " -> " << m.b << " (" << rels.str() << ", "
       << metric_kind_name(m.kind) << (m.used_stats ? ", CI" : "") << ") "
       << (m.cls == DeltaClass::Significant ? "SIGNIFICANT" : "noise");
    if (m.has_verdict)
      os << " [" << prof::delta_cause_name(m.verdict.cause) << ": "
         << m.verdict.evidence << "]";
    os << '\n';
  }
  os << "SUMMARY: " << diff.significant() << " significant, "
     << diff.count(DeltaClass::Noise) << " noise, "
     << diff.count(DeltaClass::Equal) << " equal ("
     << diff.config.size() << " config delta(s), schema v" << diff.schema_a
     << " vs v" << diff.schema_b << ")\n";
  return os.str();
}

ReportDiff diff_reports(const JsonValue& a, const JsonValue& b,
                        const DiffOptions& options) {
  return DiffBuilder(a, b, options).build();
}

}  // namespace nustencil::metrics
