// Unified metrics registry: named, per-thread-sharded counters, gauges
// and log2 histograms.
//
// The hot-path contract mirrors src/trace: instruments hold plain
// pointers that are null when metrics are off, so a disabled run costs
// one branch per hook and nothing else.  When enabled, Counter::add and
// Histogram::observe are single plain stores into the calling thread's
// cache-line-padded slot (each slot is single-producer, like
// numa::TrafficRecorder's per-thread stats), and aggregation happens only
// on read, after the team has joined.  Handles returned by the registry
// are stable for the registry's lifetime.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.hpp"

namespace nustencil::metrics {

/// Monotonic event count, sharded one slot per thread.
class Counter {
 public:
  explicit Counter(int num_threads)
      : slots_(static_cast<std::size_t>(num_threads)) {}

  /// Hot path: plain increment of the calling thread's slot.  `tid` must
  /// be < the registry's thread count and owned by the calling thread.
  void add(int tid, std::uint64_t v = 1) {
    slots_[static_cast<std::size_t>(tid)].value += v;
  }

  /// Aggregated value over all shards (call after workers joined).
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.value;
    return total;
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::uint64_t value = 0;
  };
  std::vector<Slot> slots_;
};

/// A run-level scalar set from one thread at a time (setup or teardown
/// code, adapters exporting other instruments) — NOT for hot paths.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed histogram of non-negative integer observations, sharded
/// per thread.  Bucket b counts values v with bit_width(v) == b, i.e.
/// bucket 0 holds v == 0 and bucket b >= 1 holds [2^(b-1), 2^b).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  explicit Histogram(int num_threads)
      : slots_(static_cast<std::size_t>(num_threads)) {}

  /// Hot path: plain increment of one bucket of the caller's slot.
  void observe(int tid, std::uint64_t v) {
    int b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    slots_[static_cast<std::size_t>(tid)].buckets[b] += 1;
  }

  /// Aggregated bucket counts over all shards.
  std::vector<std::uint64_t> buckets() const;

  /// Total observations (sum of all buckets).
  std::uint64_t count() const;

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::uint64_t buckets[kBuckets + 1] = {};
  };
  std::vector<Slot> slots_;
};

/// Aggregated, name-sorted view of a registry (for reports and tests).
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::vector<std::uint64_t>> histograms;
};

/// Owner of all named instruments of one run.  Lookup by name happens at
/// setup time only; the returned references stay valid until the registry
/// is destroyed.  Lookup is NOT thread-safe — resolve instruments before
/// the worker team starts (the instruments themselves are then safe to
/// use concurrently, one tid per thread).
class Registry {
 public:
  /// `num_threads` is the shard count every counter/histogram is built
  /// with; tids passed to the hot-path calls must be below it.
  explicit Registry(int num_threads);

  int num_threads() const { return num_threads_; }

  /// Create-or-get by name.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Aggregates every instrument (call after workers joined).
  Snapshot snapshot() const;

 private:
  int num_threads_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace nustencil::metrics
