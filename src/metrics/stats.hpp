// Multi-rep statistical summaries for run reports: when the CLI runs a
// configuration --reps=N times it folds the noisy (time-derived) metrics
// into robust summaries — median, MAD, and a bootstrap-free confidence
// interval — that land in the report's "stats" section.  The diff engine
// (metrics/diff.hpp) then classifies a delta as significant or noise by
// interval overlap instead of gating wall-clock floats exactly.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace nustencil::metrics {

/// Robust summary of one metric over N repetitions.  The confidence
/// interval is the analytic normal approximation of the median's
/// sampling distribution, median +- z * sigma_hat / sqrt(n) with
/// sigma_hat = 1.4826 * MAD — no bootstrap resampling, so repeated
/// identical reps collapse to a zero-width interval.
struct RepSummary {
  int n = 0;
  double median = 0.0;
  double mad = 0.0;  ///< raw median absolute deviation (unscaled)
  double ci_lo = 0.0;
  double ci_hi = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// MAD-to-sigma consistency constant for normal data.
inline constexpr double kMadToSigma = 1.4826;
/// Two-sided ~95% interval.
inline constexpr double kCiZ = 1.96;

/// Summarises `values` (empty input -> all-zero summary with n = 0).
RepSummary summarize_reps(const std::vector<double>& values);

/// True when the two confidence intervals share any point.  Zero-width
/// intervals at the same value overlap; disjoint intervals are the
/// significance signal the diff engine uses.
bool intervals_overlap(const RepSummary& a, const RepSummary& b);

/// The run report's "stats" section: one RepSummary per noisy metric,
/// keyed by the diff engine's metric names ("result/seconds",
/// "phase/compute_s", ...), in emission order.
struct StatsSection {
  int reps = 0;
  std::vector<std::pair<std::string, RepSummary>> metrics;

  void add(const std::string& name, const std::vector<double>& values);

  /// Summary by metric name, or nullptr when absent.
  const RepSummary* find(const std::string& name) const;
};

}  // namespace nustencil::metrics
