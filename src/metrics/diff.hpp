// Run-report differential analysis: load two schema-versioned reports
// (any schema >= 1, forward-tolerant — missing sections are skipped, not
// errors), compute the structural config delta and every per-metric
// delta, classify each delta as equal / noise / significant, and attach
// an evidence-carrying attribution verdict (prof/diff_attribution.hpp)
// to every significant one.
//
// The significance model is per-field-kind:
//   Exact   — integer-deterministic observables (cell updates, the
//             local/remote/unowned traffic split, cache hits/misses,
//             counters).  Any difference is significant: these cannot
//             move without a code or config change.
//   Derived — doubles computed from exact fields (locality, hit rates).
//             Gated at a near-zero relative tolerance that absorbs only
//             JSON round-trip formatting.
//   Noisy   — time-derived metrics (wall clock, throughput, phase
//             seconds, imbalance, steal counters).  With "stats"
//             sections on both sides (--reps=N runs) a delta is
//             significant only when the confidence intervals are
//             disjoint AND the medians moved by min_effect_rel; without
//             stats, a single-rep fallback threshold (noise_rel_tol)
//             applies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/json.hpp"
#include "metrics/stats.hpp"
#include "prof/diff_attribution.hpp"

namespace nustencil::metrics {

enum class DeltaClass : std::uint8_t { Equal, Noise, Significant };

const char* delta_class_name(DeltaClass c);

enum class MetricKind : std::uint8_t { Exact, Derived, Noisy };

const char* metric_kind_name(MetricKind k);

/// One config/provenance key that differs between the two reports.
struct ConfigDelta {
  std::string key;  ///< "config/scheme", "provenance/git_sha", ...
  std::string a;
  std::string b;
};

/// One compared metric.  When a side is missing (older schema, section
/// disabled) the delta is recorded with *_present = false and classified
/// Noise — a schema gap is not a performance signal.
struct MetricDelta {
  std::string name;  ///< "result/seconds", "traffic/remote_bytes", ...
  MetricKind kind = MetricKind::Noisy;
  DeltaClass cls = DeltaClass::Equal;
  double a = 0.0;
  double b = 0.0;
  bool a_present = true;
  bool b_present = true;
  bool used_stats = false;  ///< judged by CI overlap, not the fallback
  bool has_verdict = false;
  prof::DeltaVerdict verdict;  ///< set when cls == Significant

  double delta() const { return b - a; }
  /// Relative change (b - a) / |a|; 0 when a == 0.
  double rel() const;
};

struct DiffOptions {
  /// Single-rep noisy metrics: |rel| at or below this is noise.
  double noise_rel_tol = 0.10;
  /// Stats-backed metrics: disjoint CIs must also move the value by this
  /// relative amount (guards against zero-width intervals flagging dust).
  double min_effect_rel = 0.01;
  /// Derived doubles: tolerance for JSON round-trip formatting only.
  double derived_rel_tol = 1e-9;
};

struct ReportDiff {
  int schema_a = 0;
  int schema_b = 0;
  std::vector<ConfigDelta> config;
  std::vector<MetricDelta> metrics;
  prof::RunAggregates agg_a;
  prof::RunAggregates agg_b;
  /// Node-to-node traffic matrix delta (b - a), row-major in MiB; nodes
  /// is 0 when either side lacks a matrix or the shapes differ.
  int nodes = 0;
  std::vector<double> matrix_delta_mib;

  std::size_t count(DeltaClass c) const;
  std::size_t significant() const { return count(DeltaClass::Significant); }
};

/// Diffs two parsed run-report documents.  Throws Error when either
/// document lacks a schema_version >= 1 (not a run report at all).
ReportDiff diff_reports(const JsonValue& a, const JsonValue& b,
                        const DiffOptions& options = {});

/// Extracts the attribution aggregates from one parsed report (exposed
/// for tests; diff_reports calls it on both sides).
prof::RunAggregates extract_aggregates(const JsonValue& doc);

/// One line per non-equal metric plus a summary line — the compact
/// console verdict table `nustencil_report --diff` prints for CI logs.
std::string format_diff_console(const ReportDiff& diff);

}  // namespace nustencil::metrics
