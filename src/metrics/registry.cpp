#include "metrics/registry.hpp"

#include "common/error.hpp"

namespace nustencil::metrics {

std::vector<std::uint64_t> Histogram::buckets() const {
  std::vector<std::uint64_t> total(kBuckets + 1, 0);
  for (const Slot& s : slots_)
    for (int b = 0; b <= kBuckets; ++b) total[static_cast<std::size_t>(b)] += s.buckets[b];
  // Trim trailing empty buckets so reports stay compact.
  while (total.size() > 1 && total.back() == 0) total.pop_back();
  return total;
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const Slot& s : slots_)
    for (int b = 0; b <= kBuckets; ++b) n += s.buckets[b];
  return n;
}

Registry::Registry(int num_threads) : num_threads_(num_threads) {
  NUSTENCIL_CHECK(num_threads >= 1, "Registry: need at least one thread shard");
}

Counter& Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(num_threads_);
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(num_threads_);
  return *slot;
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->buckets();
  return s;
}

}  // namespace nustencil::metrics
