#include "metrics/trajectory.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "metrics/stats.hpp"

namespace nustencil::metrics {

namespace {

std::string str_or(const JsonValue* v, const char* fallback) {
  return v && v->type == JsonValue::Type::String ? v->string : fallback;
}

}  // namespace

const double* TrajectoryEntry::find(const std::string& name) const {
  for (const auto& [key, value] : metrics)
    if (key == name) return &value;
  return nullptr;
}

TrajectoryDb parse_trajectory(const JsonValue& doc) {
  TrajectoryDb db;
  const JsonValue* entries = doc.find("entries");
  NUSTENCIL_CHECK(entries && entries->is_array(),
                  "trajectory: document has no 'entries' array");
  for (const JsonValue& e : entries->array) {
    TrajectoryEntry entry;
    entry.git_sha = str_or(e.find("git_sha"), "");
    entry.compiler = str_or(e.find("compiler"), "");
    entry.build_type = str_or(e.find("build_type"), "");
    entry.machine_conf = str_or(e.find("machine_conf"), "");
    if (const JsonValue* metrics = e.find("metrics"))
      for (const auto& [name, v] : metrics->object)
        entry.metrics.emplace_back(name, v.num());
    db.entries.push_back(std::move(entry));
  }
  return db;
}

TrajectoryDb load_trajectory(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return TrajectoryDb{};  // day one: no history yet
  std::ostringstream text;
  text << in.rdbuf();
  return parse_trajectory(parse_json(text.str()));
}

std::string trajectory_json(const TrajectoryDb& db) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", kTrajectorySchemaVersion);
  w.kv("generator", "bench/trajectory");
  w.key("entries").begin_array();
  for (const TrajectoryEntry& e : db.entries) {
    w.begin_object();
    w.kv("git_sha", e.git_sha);
    w.kv("compiler", e.compiler);
    w.kv("build_type", e.build_type);
    w.kv("machine_conf", e.machine_conf);
    w.key("metrics").begin_object();
    for (const auto& [name, value] : e.metrics) w.kv(name, value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

void save_trajectory(const TrajectoryDb& db, const std::string& path) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "trajectory: cannot open " + path);
  out << trajectory_json(db);
  NUSTENCIL_CHECK(out.good(), "trajectory: write failed for " + path);
}

TrajectoryEntry entry_from_regress(const JsonValue& regress_doc) {
  TrajectoryEntry entry;
  if (const JsonValue* prov = regress_doc.find("provenance")) {
    entry.git_sha = str_or(prov->find("git_sha"), "");
    entry.compiler = str_or(prov->find("compiler"), "");
    entry.build_type = str_or(prov->find("build_type"), "");
    entry.machine_conf = str_or(prov->find("machine_conf"), "");
  }
  if (entry.machine_conf.empty())
    entry.machine_conf = str_or(regress_doc.find("machine"), "");
  const JsonValue* cases = regress_doc.find("cases");
  NUSTENCIL_CHECK(cases && cases->is_array(),
                  "trajectory: regress document has no 'cases' array");
  for (const JsonValue& c : cases->array) {
    const std::string prefix =
        "regress/" + c.at("scheme").str() + "_e" +
        std::to_string(static_cast<long>(c.at("edge").num()));
    entry.metrics.emplace_back(prefix + "/model_gup_core",
                               c.at("model_gupdates_per_core").num());
    entry.metrics.emplace_back(prefix + "/locality", c.at("locality").num());
    entry.metrics.emplace_back(prefix + "/seconds", c.at("seconds").num());
  }
  return entry;
}

void merge_kernel_report(TrajectoryEntry& entry, const JsonValue& kernel_doc) {
  if (const JsonValue* ve = kernel_doc.find("vector_efficiency"))
    if (const JsonValue* s = ve->find("speedup_best_vs_scalar"))
      entry.metrics.emplace_back("kernel/speedup_best_vs_scalar", s->num());
  if (const JsonValue* s = kernel_doc.find("speedup_specialized_vs_generic"))
    entry.metrics.emplace_back("kernel/speedup_specialized_vs_generic",
                               s->num());
}

bool higher_is_better(const std::string& metric) {
  const std::string suffix = "/seconds";
  return metric.size() < suffix.size() ||
         metric.compare(metric.size() - suffix.size(), suffix.size(), suffix) !=
             0;
}

void merge_validate_model(TrajectoryEntry& entry,
                          const JsonValue& validate_doc) {
  const JsonValue* status = validate_doc.find("status");
  if (!status || status->str() != "ok") return;  // degraded host: nothing
  if (const JsonValue* r = validate_doc.find("rank_correlation"))
    entry.metrics.emplace_back("validate/rank_correlation", r->num());
  if (const JsonValue* n = validate_doc.find("n_spans"))
    entry.metrics.emplace_back("validate/n_spans", n->num());
}

void merge_telemetry_overhead(TrajectoryEntry& entry,
                              const JsonValue& overhead_doc) {
  if (const JsonValue* pct = overhead_doc.find("overhead_pct"))
    entry.metrics.emplace_back("telemetry/overhead_pct", pct->num());
}

bool metric_is_gated(const std::string& metric) {
  // "/seconds" is informational only; "validate/" correlations are
  // host-PMU-dependent (absent entirely on degraded runners) and
  // "telemetry/" overhead is a wall-clock ratio on a shared runner —
  // tracked for trend visibility, never gated.
  if (metric.rfind("validate/", 0) == 0) return false;
  if (metric.rfind("telemetry/", 0) == 0) return false;
  return higher_is_better(metric);
}

double metric_min_effect(const std::string& metric, double base_min_effect) {
  // Kernel speedups are real-host measurements: shared CI runners need a
  // wide band.  Everything else gated here is simulator-deterministic
  // (up to libm), so the caller's band applies.
  if (metric.rfind("kernel/", 0) == 0) return std::max(base_min_effect, 0.25);
  return base_min_effect;
}

GateResult gate_candidate(const TrajectoryDb& db,
                          const TrajectoryEntry& candidate,
                          const GateOptions& options) {
  GateResult result;
  for (const auto& [name, value] : candidate.metrics) {
    std::vector<double> history;
    for (const TrajectoryEntry& e : db.entries)
      if (const double* v = e.find(name)) history.push_back(*v);
    if (history.empty()) continue;  // no history: pass trivially
    if (static_cast<int>(history.size()) > options.window)
      history.erase(history.begin(),
                    history.end() - static_cast<std::ptrdiff_t>(options.window));

    GateFinding f;
    f.metric = name;
    f.candidate = value;
    f.window_n = static_cast<int>(history.size());
    f.window_median = nustencil::median(history);
    std::vector<double> dev;
    dev.reserve(history.size());
    for (double v : history) dev.push_back(std::fabs(v - f.window_median));
    f.window_mad = nustencil::median(std::move(dev));
    f.rel_delta = f.window_median == 0.0
                      ? 0.0
                      : (value - f.window_median) / std::fabs(f.window_median);
    f.gated = metric_is_gated(name);

    const double threshold =
        std::max(metric_min_effect(name, options.min_effect_rel) *
                     std::fabs(f.window_median),
                 options.mad_sigmas * kMadToSigma * f.window_mad);
    const double move = value - f.window_median;
    const bool worse = higher_is_better(name) ? move < 0.0 : move > 0.0;
    f.regression = f.gated && worse && std::fabs(move) > threshold;
    if (f.regression) ++result.regressions;
    result.findings.push_back(std::move(f));
  }
  result.pass = result.regressions == 0;
  return result;
}

std::string format_gate_console(const GateResult& result) {
  std::ostringstream os;
  os.precision(6);
  for (const GateFinding& f : result.findings) {
    std::ostringstream rels;
    rels.precision(1);
    rels << std::fixed << (f.rel_delta >= 0 ? "+" : "") << f.rel_delta * 100.0
         << "%";
    os << (f.regression ? "REGRESSION " : "TRAJECTORY ") << f.metric << ": "
       << f.candidate << " vs window median " << f.window_median << " ("
       << rels.str() << ", n=" << f.window_n << ", mad=" << f.window_mad
       << (f.gated ? "" : ", informational") << ")\n";
  }
  os << (result.pass ? "TRAJECTORY GATE PASS" : "TRAJECTORY GATE FAIL") << ": "
     << result.regressions << " significant regression(s) across "
     << result.findings.size() << " gated metric(s)\n";
  return os.str();
}

}  // namespace nustencil::metrics
