// Stable output schemas: the CLI's CSV column set and the run-report
// JSON's top-level key set live here, in one place, so the writers and
// the golden-field tests agree by construction.  Any change to these
// lists is a schema change: bump kRunReportSchemaVersion and update the
// golden test deliberately.
#pragma once

#include <string>
#include <vector>

namespace nustencil::metrics {

/// Version stamped into every run-report document ("schema_version").
/// v2: added the top-level "sched" section (work-stealing statistics)
/// and config.schedule.
/// v3: added the top-level "provenance" section (git SHA, compiler,
/// flags, build type, machine conf) and the "prof" section (per-span
/// attribution: exact counter totals, stragglers with verdicts,
/// roofline scatter).
/// v4: added the top-level "stats" section (multi-rep robust summaries
/// written when the CLI runs with --reps=N; empty object otherwise).
/// v5: added the top-level "hw" section (measured hardware counters:
/// per-thread raw totals and attributed span sums, multiplexing scaling
/// factors, per-event availability, degradation status + reason, and
/// the simulated-vs-measured validation when both sides ran).
/// v6: added the top-level "timeseries" section (downsampled live
/// telemetry rings: shared sample-time axis, per-thread throughput and
/// locality series, stall-event count; enabled only when the run sampled
/// with --telemetry=on).
/// Readers (nustencil_report, metrics/diff) stay forward-tolerant: any
/// schema >= 1 parses, absent sections are skipped.
inline constexpr int kRunReportSchemaVersion = 6;

/// The fixed leading CSV columns of the nustencil CLI summary table
/// (before the detail_* and phase columns).
const std::vector<std::string>& csv_summary_columns();

/// The phase-breakdown columns appended when phase metrics are on.
const std::vector<std::string>& csv_phase_columns();

/// Column name of a scheme-reported detail value.
std::string csv_detail_column(const std::string& key);

/// Top-level keys of the run-report JSON document, in emission order.
const std::vector<std::string>& run_report_top_level_keys();

}  // namespace nustencil::metrics
