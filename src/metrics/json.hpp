// Minimal dependency-free JSON: a streaming writer for the run-report
// emitter and a strict recursive-descent parser for the dashboard
// renderer and the schema tests.  Numbers round-trip doubles at
// max_digits10; objects preserve insertion order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace nustencil::metrics {

/// Escapes `text` for inclusion inside a JSON string literal (quotes,
/// backslash, control characters).
std::string json_escape(const std::string& text);

/// Streaming JSON writer with context tracking: commas are inserted
/// automatically, keys are only legal inside objects.  Misuse throws.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(&os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next value; must be inside an object.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  void before_value();

  enum class Ctx : std::uint8_t { Top, Object, Array };
  struct Frame {
    Ctx ctx;
    bool first = true;
    bool key_pending = false;
  };

  std::ostream* os_;
  std::vector<Frame> stack_{{Ctx::Top}};
};

/// A parsed JSON document node.
struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }

  /// Object member by key, or nullptr when absent / not an object.
  const JsonValue* find(const std::string& k) const;

  /// Object member by key; throws Error when absent.
  const JsonValue& at(const std::string& k) const;

  /// Typed accessors; throw Error on type mismatch.
  double num() const;
  const std::string& str() const;
  bool boolean_value() const;

  /// Object member keys in document order (empty for non-objects).
  std::vector<std::string> keys() const;
};

/// Parses a complete JSON document (throws Error on any syntax error or
/// trailing garbage).
JsonValue parse_json(const std::string& text);

/// Reads and parses `path` (throws Error on I/O or syntax errors).
JsonValue parse_json_file(const std::string& path);

}  // namespace nustencil::metrics
