#include "metrics/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace nustencil::metrics {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  Frame& f = stack_.back();
  NUSTENCIL_CHECK(f.ctx != Ctx::Object || f.key_pending,
                  "JsonWriter: value inside an object needs a key first");
  if (f.ctx == Ctx::Array || (f.ctx == Ctx::Object && f.key_pending)) {
    // For objects the comma was already written by key().
    if (f.ctx == Ctx::Array && !f.first) *os_ << ',';
  }
  f.first = false;
  f.key_pending = false;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  Frame& f = stack_.back();
  NUSTENCIL_CHECK(f.ctx == Ctx::Object, "JsonWriter: key outside an object");
  NUSTENCIL_CHECK(!f.key_pending, "JsonWriter: two keys in a row");
  if (!f.first) *os_ << ',';
  *os_ << '"' << json_escape(k) << "\":";
  f.key_pending = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  *os_ << '{';
  stack_.push_back({Ctx::Object});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  NUSTENCIL_CHECK(stack_.back().ctx == Ctx::Object && !stack_.back().key_pending,
                  "JsonWriter: mismatched end_object");
  stack_.pop_back();
  *os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  *os_ << '[';
  stack_.push_back({Ctx::Array});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  NUSTENCIL_CHECK(stack_.back().ctx == Ctx::Array, "JsonWriter: mismatched end_array");
  stack_.pop_back();
  *os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  *os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    *os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  *os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  *os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  *os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *os_ << "null";
  return *this;
}

const JsonValue* JsonValue::find(const std::string& k) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [key, val] : object)
    if (key == k) return &val;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& k) const {
  const JsonValue* v = find(k);
  NUSTENCIL_CHECK(v != nullptr, "JsonValue: missing key '" + k + "'");
  return *v;
}

double JsonValue::num() const {
  NUSTENCIL_CHECK(type == Type::Number, "JsonValue: not a number");
  return number;
}

const std::string& JsonValue::str() const {
  NUSTENCIL_CHECK(type == Type::String, "JsonValue: not a string");
  return string;
}

bool JsonValue::boolean_value() const {
  NUSTENCIL_CHECK(type == Type::Bool, "JsonValue: not a bool");
  return boolean;
}

std::vector<std::string> JsonValue::keys() const {
  std::vector<std::string> out;
  for (const auto& [key, val] : object) {
    (void)val;
    out.push_back(key);
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error("parse_json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs not needed
          // for our reports; emitted verbatim as three-byte sequences).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    JsonValue v;
    v.type = JsonValue::Type::Number;
    std::size_t used = 0;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start), &used);
    } catch (const std::exception&) {
      fail("malformed number");
    }
    if (used != pos_ - start) fail("malformed number");
    return v;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      v.type = JsonValue::Type::Object;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type = JsonValue::Type::Array;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type = JsonValue::Type::String;
      v.string = parse_string();
      return v;
    }
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      v.type = JsonValue::Type::Bool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      v.type = JsonValue::Type::Bool;
      v.boolean = false;
      return v;
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return v;
    }
    return parse_number();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse_document(); }

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path);
  NUSTENCIL_CHECK(in.good(), "parse_json_file: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_json(ss.str());
}

}  // namespace nustencil::metrics
