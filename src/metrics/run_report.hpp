// Versioned JSON run report: one schema-stable document per run that
// consolidates the configuration, the machine description, every
// measurement source (NUMA traffic matrix + locality time-series, cache
// simulation hit rates, phase breakdown, registry counters) and the
// performance-model placement.  `nustencil --report=out.json` emits it;
// tools/nustencil_report renders it into an HTML/SVG dashboard; the
// bench/regress gate diffs selected fields against a committed baseline.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "common/types.hpp"
#include "hwc/group.hpp"
#include "metrics/registry.hpp"
#include "metrics/stats.hpp"
#include "numa/traffic.hpp"
#include "prof/attribution.hpp"
#include "sched/schedule.hpp"
#include "topology/machine.hpp"
#include "trace/trace.hpp"

namespace nustencil::metrics {

/// Performance-model placement of the run, plus the reference lines the
/// roofline panel draws it against (values in Gupdates/s per core at
/// each entry of `cores`).  Plain doubles so this header needs neither
/// perf nor schemes.
struct ModelSection {
  double gupdates_per_core = 0.0;
  double gflops_per_core = 0.0;
  double t_compute = 0.0;
  double t_llc = 0.0;
  double t_mem = 0.0;
  std::vector<int> cores;
  std::vector<double> peak_dp;
  std::vector<double> ll1band0c;
};

/// Downsampled live-telemetry rings (schema v6 "timeseries" section).
/// Plain data so metrics stays independent of src/telemetry: the sampler
/// produces this struct, the report writer and dashboard consume it.
/// Every series is aligned with the shared `t_ms` axis (one value per
/// retained sample row, exact decimation — never interpolated).
struct TimeseriesSection {
  bool enabled = false;
  double interval_ms = 0.0;      ///< configured sampling interval
  std::uint64_t samples = 0;     ///< ticks taken over the run (>= t_ms.size())
  std::uint64_t stall_events = 0;
  std::vector<double> t_ms;      ///< sample times, ms since run start

  struct Series {
    std::string name;            ///< e.g. "thread0/mups", "run/locality"
    std::vector<double> values;  ///< aligned with t_ms
  };
  std::vector<Series> series;
};

/// Everything write_run_report serialises.  Pointer members are optional
/// sections (omitted as empty objects when null) and are not owned.
struct RunReport {
  // config
  std::string scheme;
  std::string shape;         ///< "64x64x64"
  long timesteps = 0;
  int threads = 0;
  std::string kernel_policy;
  std::string kernel_variant;
  Index page_bytes = 0;
  unsigned seed = 0;
  std::string pin_policy;    ///< "compact" / "scatter"
  std::string schedule;      ///< "static" / "steal" / "steal_local"

  // build provenance (see common/provenance.hpp); machine_conf names the
  // simulated machine configuration the run was instrumented against
  std::string git_sha;
  std::string compiler;
  std::string compiler_flags;
  std::string build_type;
  std::string machine_conf;

  // machine the run was instrumented against
  const topology::MachineSpec* machine = nullptr;

  // results
  double seconds = 0.0;
  Index updates = 0;
  double gupdates_per_second = 0.0;
  std::optional<double> max_rel_diff;  ///< set when --verify ran

  numa::TrafficStats traffic;                       ///< empty when not instrumented
  const cachesim::HierarchyTraffic* cache = nullptr;  ///< null without cache sim
  Index cache_line_bytes = 0;
  trace::PhaseBreakdown phases;
  sched::SchedStats sched;  ///< enabled only under a stealing schedule
  const prof::ProfSummary* prof = nullptr;  ///< null without --trace/--report profiling
  const hwc::HwRunStats* hw = nullptr;  ///< null / disabled without --hw-counters
  std::optional<ModelSection> model;
  std::optional<StatsSection> stats;  ///< set when the run had --reps > 1
  std::optional<TimeseriesSection> timeseries;  ///< set when telemetry sampled
  const Registry* registry = nullptr;  ///< counters/gauges/histograms
};

/// Serialises the report as a schema-versioned JSON document (top-level
/// keys = schema::run_report_top_level_keys(), in order).
void write_run_report(const RunReport& report, std::ostream& os);

/// Writes to `path` (throws Error on I/O failure).
void write_run_report_file(const RunReport& report, const std::string& path);

/// The document as a string (tests, tools).
std::string run_report_json(const RunReport& report);

/// Folds the run's headline scalars into the registry as gauges
/// ("run/seconds", "run/gupdates_per_s", "traffic/locality",
/// "phase/<name>_s", "cache/L<i>_hit_rate") so every source is also
/// visible through the one registry namespace.
void export_run_to_registry(Registry& reg, const RunReport& report);

/// Human-readable description of the report configuration for
/// `nustencil --explain`.
std::string describe_report(const std::string& report_path, bool cache_sim);

}  // namespace nustencil::metrics
