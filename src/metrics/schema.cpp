#include "metrics/schema.hpp"

namespace nustencil::metrics {

const std::vector<std::string>& csv_summary_columns() {
  static const std::vector<std::string> cols = {
      "threads", "seconds", "Gupdates/s", "GFLOPS", "locality %", "max rel diff"};
  return cols;
}

const std::vector<std::string>& csv_phase_columns() {
  static const std::vector<std::string> cols = {
      "init_s", "compute_s", "barrier_wait_s", "spinflag_wait_s", "imbalance"};
  return cols;
}

std::string csv_detail_column(const std::string& key) { return "detail_" + key; }

const std::vector<std::string>& run_report_top_level_keys() {
  static const std::vector<std::string> keys = {
      "schema_version", "generator", "provenance", "config",     "machine",
      "result",         "traffic",   "cache",      "phases",     "sched",
      "prof",           "hw",        "model",      "stats",      "timeseries",
      "counters",       "gauges",    "histograms"};
  return keys;
}

}  // namespace nustencil::metrics
