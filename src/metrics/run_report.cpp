#include "metrics/run_report.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "metrics/json.hpp"
#include "metrics/schema.hpp"

namespace nustencil::metrics {

namespace {

void write_config(JsonWriter& w, const RunReport& r) {
  w.begin_object();
  w.kv("scheme", r.scheme);
  w.kv("shape", r.shape);
  w.kv("timesteps", r.timesteps);
  w.kv("threads", r.threads);
  w.kv("kernel_policy", r.kernel_policy);
  w.kv("kernel_variant", r.kernel_variant);
  w.kv("page_bytes", static_cast<std::int64_t>(r.page_bytes));
  w.kv("seed", static_cast<std::uint64_t>(r.seed));
  w.kv("pin_policy", r.pin_policy);
  w.kv("schedule", r.schedule.empty() ? "static" : r.schedule);
  w.end_object();
}

void write_machine(JsonWriter& w, const topology::MachineSpec* m) {
  w.begin_object();
  if (m) {
    w.kv("name", m->name);
    w.kv("sockets", m->sockets);
    w.kv("cores_per_socket", m->cores_per_socket);
    w.kv("ghz", m->ghz);
    w.kv("sys_bw_gbs", m->sys_bw_gbs);
    w.kv("peak_dp_gflops", m->peak_dp_gflops);
    w.kv("remote_penalty", m->remote_penalty);
    w.key("caches").begin_array();
    for (const auto& c : m->caches) {
      w.begin_object();
      w.kv("name", c.name);
      w.kv("size_bytes", static_cast<std::int64_t>(c.size_bytes));
      w.kv("shared_by_cores", c.shared_by_cores);
      w.kv("line_bytes", static_cast<std::int64_t>(c.line_bytes));
      w.kv("aggregate_bw_gbs", c.aggregate_bw_gbs);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

void write_result(JsonWriter& w, const RunReport& r) {
  w.begin_object();
  w.kv("seconds", r.seconds);
  w.kv("updates", static_cast<std::int64_t>(r.updates));
  w.kv("gupdates_per_s", r.gupdates_per_second);
  if (r.max_rel_diff)
    w.kv("max_rel_diff", *r.max_rel_diff);
  else
    w.key("max_rel_diff").null();
  w.end_object();
}

void write_traffic(JsonWriter& w, const numa::TrafficStats& t) {
  w.begin_object();
  w.kv("local_bytes", t.local_bytes);
  w.kv("remote_bytes", t.remote_bytes);
  w.kv("unowned_bytes", t.unowned_bytes);
  w.kv("locality", t.locality());
  w.key("bytes_from_node").begin_array();
  for (std::uint64_t b : t.bytes_from_node) w.value(b);
  w.end_array();
  // node_matrix as an array of rows: row = consumer node, col = owner.
  const int nodes = t.num_nodes();
  w.key("node_matrix").begin_array();
  if (!t.node_matrix.empty()) {
    for (int from = 0; from < nodes; ++from) {
      w.begin_array();
      for (int to = 0; to < nodes; ++to) w.value(t.matrix_at(from, to));
      w.end_array();
    }
  }
  w.end_array();
  w.key("locality_series").begin_array();
  for (const auto& s : t.samples) {
    w.begin_object();
    w.kv("updates", s.updates);
    w.kv("local_bytes", s.local_bytes);
    w.kv("remote_bytes", s.remote_bytes);
    w.kv("locality", s.locality());
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_cache(JsonWriter& w, const RunReport& r) {
  w.begin_object();
  if (r.cache) {
    const cachesim::HierarchyTraffic& c = *r.cache;
    w.kv("line_bytes", static_cast<std::int64_t>(r.cache_line_bytes));
    w.key("levels").begin_array();
    for (std::size_t i = 0; i < c.level.size(); ++i) {
      const auto& lv = c.level[i];
      const std::uint64_t total = lv.hits + lv.misses;
      w.begin_object();
      w.kv("level", static_cast<std::int64_t>(i + 1));
      w.kv("hits", lv.hits);
      w.kv("misses", lv.misses);
      w.kv("hit_rate",
           total == 0 ? 1.0 : static_cast<double>(lv.hits) / static_cast<double>(total));
      w.end_object();
    }
    w.end_array();
    w.kv("memory_reads", c.memory_reads);
    w.kv("memory_writes", c.memory_writes);
    w.kv("memory_bytes", c.memory_bytes(r.cache_line_bytes));
  }
  w.end_object();
}

void write_phases(JsonWriter& w, const trace::PhaseBreakdown& p) {
  w.begin_object();
  w.kv("enabled", p.enabled);
  if (p.enabled) {
    w.kv("init_s", p.total_s(trace::Phase::Init));
    w.kv("compute_s", p.total_s(trace::Phase::Tile));
    w.kv("barrier_wait_s", p.total_s(trace::Phase::BarrierWait));
    w.kv("spinflag_wait_s", p.total_s(trace::Phase::SpinWait));
    w.kv("imbalance", p.imbalance());
    w.key("threads").begin_array();
    for (const auto& t : p.threads) {
      w.begin_object();
      w.kv("init_s", t.init_s());
      w.kv("compute_s", t.compute_s());
      w.kv("barrier_wait_s", t.barrier_wait_s());
      w.kv("spinflag_wait_s", t.spin_wait_s());
      w.kv("spins", t.spins);
      w.kv("dropped", t.dropped);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

void write_sched(JsonWriter& w, const sched::SchedStats& s) {
  w.begin_object();
  w.kv("enabled", s.enabled);
  if (s.enabled) {
    w.kv("schedule", s.schedule);
    w.kv("steal_attempts", s.total_attempts());
    w.kv("steals", s.total_steals());
    w.kv("steal_fails", s.total_fails());
    w.kv("stolen_updates", s.total_stolen_updates());
    w.key("threads").begin_array();
    for (const auto& t : s.threads) {
      w.begin_object();
      w.kv("steal_attempts", t.steal_attempts);
      w.kv("steals", t.steals);
      w.kv("steal_fails", t.steal_fails);
      w.kv("stolen_tasks", t.stolen_tasks);
      w.kv("stolen_updates", t.stolen_updates);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

void write_provenance(JsonWriter& w, const RunReport& r) {
  w.begin_object();
  w.kv("git_sha", r.git_sha);
  w.kv("compiler", r.compiler);
  w.kv("compiler_flags", r.compiler_flags);
  w.kv("build_type", r.build_type);
  w.kv("machine_conf", r.machine_conf);
  w.end_object();
}

void write_prof(JsonWriter& w, const prof::ProfSummary* p) {
  w.begin_object();
  w.kv("enabled", p != nullptr && p->enabled);
  if (p && p->enabled) {
    w.kv("flops_per_update", p->flops_per_update);
    w.kv("sampled_spans", p->sampled_spans);
    w.kv("dropped_events", p->dropped_events);
    w.key("totals").begin_object();
    for (int i = 0; i < trace::kNumSpanCounters; ++i) {
      const auto c = static_cast<trace::SpanCounter>(i);
      w.kv(trace::span_counter_name(c), p->totals.at(c));
    }
    w.end_object();
    w.key("stragglers").begin_array();
    for (const prof::Straggler& s : p->stragglers) {
      w.begin_object();
      w.kv("tid", s.span.tid);
      w.kv("phase", trace::phase_name(s.span.phase));
      w.kv("dur_ms", s.dur_ms);
      w.kv("mean_dur_ms", s.mean_dur_ms);
      w.kv("verdict", prof::verdict_name(s.why.verdict));
      w.kv("spin_frac", s.why.spin_frac);
      w.kv("remote_frac", s.why.remote_frac);
      w.kv("miss_rate", s.why.miss_rate);
      w.kv("updates", s.span.counters.at(trace::SpanCounter::Updates));
      w.kv("bytes", s.span.counters.total_bytes());
      w.end_object();
    }
    w.end_array();
    w.key("roofline").begin_array();
    for (const prof::RooflinePoint& pt : p->roofline) {
      w.begin_object();
      w.kv("ai", pt.ai);
      w.kv("gflops", pt.gflops);
      w.kv("tid", pt.tid);
      w.kv("verdict", prof::verdict_name(pt.verdict));
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

void write_hw_event_map(JsonWriter& w, const char* key,
                        const std::array<std::uint64_t, hwc::kNumEvents>& v,
                        const hwc::HwRunStats& h) {
  w.key(key).begin_object();
  for (const auto& e : h.events)
    if (e.available)
      w.kv(hwc::event_name(e.event), v[static_cast<std::size_t>(e.event)]);
  w.end_object();
}

void write_hw(JsonWriter& w, const hwc::HwRunStats* h) {
  w.begin_object();
  w.kv("enabled", h != nullptr && h->enabled);
  if (h && h->enabled) {
    w.kv("mode", hwc::mode_name(h->mode));
    w.kv("backend", h->backend);
    w.kv("status", h->status);
    w.kv("reason", h->reason);
    w.kv("paranoid", h->paranoid);
    w.key("events").begin_array();
    for (const auto& e : h->events) {
      w.begin_object();
      w.kv("name", hwc::event_name(e.event));
      w.kv("available", e.available);
      w.kv("optional", e.optional_event);
      if (!e.available) w.kv("reason", e.reason);
      w.end_object();
    }
    w.end_array();
    // Raw counts only: `total` is the whole enabled-region read,
    // `attributed` the exact sum of Tile/Init span deltas.  The scaling
    // factor is reported next to them, never multiplied in.
    w.key("threads").begin_array();
    for (const auto& t : h->threads) {
      w.begin_object();
      w.kv("scaling", t.scaling);
      w.kv("multiplexed", t.multiplexed);
      write_hw_event_map(w, "total", t.total, *h);
      write_hw_event_map(w, "attributed", t.attributed, *h);
      w.end_object();
    }
    w.end_array();
    write_hw_event_map(w, "totals", h->totals, *h);
    write_hw_event_map(w, "attributed", h->attributed, *h);
    w.key("validation").begin_object();
    if (h->validation) {
      w.kv("status", h->validation->status);
      w.kv("n", h->validation->n);
      w.kv("rank_correlation", h->validation->spearman);
      w.key("points").begin_array();
      for (const auto& p : h->validation->points) {
        w.begin_object();
        w.kv("sim_misses", p[0]);
        w.kv("hw_misses", p[1]);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
}

void write_model(JsonWriter& w, const std::optional<ModelSection>& m) {
  w.begin_object();
  if (m) {
    w.kv("gupdates_per_core", m->gupdates_per_core);
    w.kv("gflops_per_core", m->gflops_per_core);
    w.kv("t_compute", m->t_compute);
    w.kv("t_llc", m->t_llc);
    w.kv("t_mem", m->t_mem);
    w.key("lines").begin_object();
    w.key("cores").begin_array();
    for (int c : m->cores) w.value(c);
    w.end_array();
    w.key("peak_dp").begin_array();
    for (double v : m->peak_dp) w.value(v);
    w.end_array();
    w.key("ll1band0c").begin_array();
    for (double v : m->ll1band0c) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

void write_stats(JsonWriter& w, const std::optional<StatsSection>& s) {
  w.begin_object();
  if (s) {
    w.kv("reps", s->reps);
    w.key("metrics").begin_object();
    for (const auto& [name, r] : s->metrics) {
      w.key(name).begin_object();
      w.kv("n", r.n);
      w.kv("median", r.median);
      w.kv("mad", r.mad);
      w.kv("ci_lo", r.ci_lo);
      w.kv("ci_hi", r.ci_hi);
      w.kv("min", r.min);
      w.kv("max", r.max);
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
}

void write_timeseries(JsonWriter& w, const std::optional<TimeseriesSection>& t) {
  w.begin_object();
  w.kv("enabled", t.has_value() && t->enabled);
  if (t && t->enabled) {
    w.kv("interval_ms", t->interval_ms);
    w.kv("samples", t->samples);
    w.kv("stall_events", t->stall_events);
    w.key("t_ms").begin_array();
    for (double v : t->t_ms) w.value(v);
    w.end_array();
    w.key("series").begin_array();
    for (const TimeseriesSection::Series& s : t->series) {
      w.begin_object();
      w.kv("name", s.name);
      w.key("values").begin_array();
      for (double v : s.values) w.value(v);
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
}

}  // namespace

void write_run_report(const RunReport& report, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", kRunReportSchemaVersion);
  w.kv("generator", "nustencil");
  w.key("provenance");
  write_provenance(w, report);
  w.key("config");
  write_config(w, report);
  w.key("machine");
  write_machine(w, report.machine);
  w.key("result");
  write_result(w, report);
  w.key("traffic");
  write_traffic(w, report.traffic);
  w.key("cache");
  write_cache(w, report);
  w.key("phases");
  write_phases(w, report.phases);
  w.key("sched");
  write_sched(w, report.sched);
  w.key("prof");
  write_prof(w, report.prof);
  w.key("hw");
  write_hw(w, report.hw);
  w.key("model");
  write_model(w, report.model);
  w.key("stats");
  write_stats(w, report.stats);
  w.key("timeseries");
  write_timeseries(w, report.timeseries);

  const Snapshot snap = report.registry ? report.registry->snapshot() : Snapshot{};
  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, buckets] : snap.histograms) {
    w.key(name).begin_array();
    for (std::uint64_t b : buckets) w.value(b);
    w.end_array();
  }
  w.end_object();

  w.end_object();
  os << '\n';
}

void write_run_report_file(const RunReport& report, const std::string& path) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "write_run_report: cannot open " + path);
  write_run_report(report, out);
  NUSTENCIL_CHECK(out.good(), "write_run_report: write failed for " + path);
}

std::string run_report_json(const RunReport& report) {
  std::ostringstream os;
  write_run_report(report, os);
  return os.str();
}

void export_run_to_registry(Registry& reg, const RunReport& report) {
  reg.gauge("run/seconds").set(report.seconds);
  reg.gauge("run/gupdates_per_s").set(report.gupdates_per_second);
  if (!report.traffic.bytes_from_node.empty())
    reg.gauge("traffic/locality").set(report.traffic.locality());
  if (report.phases.enabled) {
    reg.gauge("phase/init_s").set(report.phases.total_s(trace::Phase::Init));
    reg.gauge("phase/compute_s").set(report.phases.total_s(trace::Phase::Tile));
    reg.gauge("phase/barrier_wait_s")
        .set(report.phases.total_s(trace::Phase::BarrierWait));
    reg.gauge("phase/spinflag_wait_s")
        .set(report.phases.total_s(trace::Phase::SpinWait));
    reg.gauge("phase/imbalance").set(report.phases.imbalance());
  }
  if (report.cache) {
    for (std::size_t i = 0; i < report.cache->level.size(); ++i) {
      const auto& lv = report.cache->level[i];
      const std::uint64_t total = lv.hits + lv.misses;
      reg.gauge("cache/L" + std::to_string(i + 1) + "_hit_rate")
          .set(total == 0 ? 1.0
                          : static_cast<double>(lv.hits) / static_cast<double>(total));
    }
  }
  if (report.hw && report.hw->enabled && report.hw->any_available()) {
    for (const auto& e : report.hw->events)
      if (e.available)
        reg.gauge(std::string("hw/") + hwc::event_name(e.event))
            .set(static_cast<double>(
                report.hw->totals[static_cast<std::size_t>(e.event)]));
    reg.gauge("hw/scaling_max").set(report.hw->max_scaling());
    if (report.hw->validation && report.hw->validation->status == "ok")
      reg.gauge("hw/rank_correlation").set(report.hw->validation->spearman);
  }
}

std::string describe_report(const std::string& report_path, bool cache_sim) {
  std::ostringstream os;
  os << "  run report (json)       : "
     << (report_path.empty() ? "off" : "on -> " + report_path);
  if (!report_path.empty())
    os << " (schema v" << kRunReportSchemaVersion
       << "; render with: nustencil_report " << report_path << ")";
  os << '\n';
  os << "  cache simulation        : " << (cache_sim ? "on" : "off")
     << " (per-level hit rates in the report)" << '\n';
  return os.str();
}

}  // namespace nustencil::metrics
