#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace nustencil::metrics {

RepSummary summarize_reps(const std::vector<double>& values) {
  RepSummary s;
  if (values.empty()) return s;
  s.n = static_cast<int>(values.size());
  s.median = nustencil::median(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  std::vector<double> dev;
  dev.reserve(values.size());
  for (double v : values) dev.push_back(std::fabs(v - s.median));
  s.mad = nustencil::median(std::move(dev));
  const double half =
      kCiZ * kMadToSigma * s.mad / std::sqrt(static_cast<double>(s.n));
  s.ci_lo = s.median - half;
  s.ci_hi = s.median + half;
  return s;
}

bool intervals_overlap(const RepSummary& a, const RepSummary& b) {
  return a.ci_lo <= b.ci_hi && b.ci_lo <= a.ci_hi;
}

void StatsSection::add(const std::string& name,
                       const std::vector<double>& values) {
  metrics.emplace_back(name, summarize_reps(values));
}

const RepSummary* StatsSection::find(const std::string& name) const {
  for (const auto& [key, summary] : metrics)
    if (key == name) return &summary;
  return nullptr;
}

}  // namespace nustencil::metrics
