// Performance-trajectory database: an append-only JSON history of the
// headline metrics of bench/regress (and optionally bench/kernel_report)
// runs, keyed by the provenance block (git SHA, compiler, build type,
// machine conf).  bench/trajectory appends entries and runs the
// noise-aware CI gate: a candidate fails only when a gated metric
// regresses beyond both the trailing window's own noise band (MAD-based)
// and a minimum relative effect — never on exact-match float compares.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "metrics/json.hpp"

namespace nustencil::metrics {

inline constexpr int kTrajectorySchemaVersion = 1;

/// One run's headline metrics plus the provenance that produced them.
struct TrajectoryEntry {
  std::string git_sha;
  std::string compiler;
  std::string build_type;
  std::string machine_conf;
  std::vector<std::pair<std::string, double>> metrics;  ///< insertion order

  const double* find(const std::string& name) const;
};

struct TrajectoryDb {
  std::vector<TrajectoryEntry> entries;
};

/// Loads `path`; a missing file is an empty history (day-one friendly),
/// a malformed file throws Error.
TrajectoryDb load_trajectory(const std::string& path);

void save_trajectory(const TrajectoryDb& db, const std::string& path);
std::string trajectory_json(const TrajectoryDb& db);
TrajectoryDb parse_trajectory(const JsonValue& doc);

/// Builds a candidate entry from a bench/regress output document:
/// "regress/<scheme>_e<edge>/{model_gup_core,locality,seconds}" metrics
/// plus the provenance block when present.
TrajectoryEntry entry_from_regress(const JsonValue& regress_doc);

/// Folds a bench/kernel_report document's headline ratios into `entry`
/// ("kernel/speedup_best_vs_scalar", "kernel/speedup_specialized_vs_generic").
void merge_kernel_report(TrajectoryEntry& entry, const JsonValue& kernel_doc);

/// Folds a bench/validate_model document's simulated-vs-measured rank
/// correlation into `entry` ("validate/rank_correlation", plus the span
/// count).  Informational only — never gated: the correlation depends on
/// the host's PMU and is absent entirely on degraded hosts, so gating it
/// would make CI outcomes depend on runner hardware.  A degraded
/// document (no correlation) folds nothing.
void merge_validate_model(TrajectoryEntry& entry, const JsonValue& validate_doc);

/// Folds a bench/telemetry_overhead document's headline ratio into
/// `entry` ("telemetry/overhead_pct").  Informational only — never
/// gated: it is a ratio of wall clocks on a shared runner, so the gate
/// would fire on scheduler noise.  The zero-cost off contract is
/// enforced by the tool itself (nonzero exit), not by the gate.
void merge_telemetry_overhead(TrajectoryEntry& entry,
                              const JsonValue& overhead_doc);

/// True for metrics where larger is better (throughput, locality,
/// speedups); wall-clock "/seconds" metrics are lower-is-better.
bool higher_is_better(const std::string& metric);

/// Per-metric minimum relative effect: deterministic metrics use the
/// caller's min_effect_rel, host-sensitive kernel speedups get a wide
/// band, and wall-clock seconds are informational only (never gated) —
/// cross-machine wall clock is covered by bench/regress --wall-tol.
bool metric_is_gated(const std::string& metric);
double metric_min_effect(const std::string& metric, double base_min_effect);

struct GateOptions {
  int window = 5;            ///< trailing entries per metric
  double min_effect_rel = 0.05;
  double mad_sigmas = 3.0;   ///< noise band half-width in robust sigmas
};

/// One gated metric's comparison against its trailing window.
struct GateFinding {
  std::string metric;
  double candidate = 0.0;
  double window_median = 0.0;
  double window_mad = 0.0;
  int window_n = 0;
  double rel_delta = 0.0;  ///< (candidate - median) / |median|
  bool gated = true;
  bool regression = false;
};

struct GateResult {
  std::vector<GateFinding> findings;
  int regressions = 0;
  bool pass = true;
};

/// Gates `candidate` against the trailing window of `db`: for each
/// candidate metric with history, fail only when the move is in the
/// worse direction AND beyond max(min_effect * |median|,
/// mad_sigmas * 1.4826 * MAD).  Metrics with no history pass trivially.
GateResult gate_candidate(const TrajectoryDb& db,
                          const TrajectoryEntry& candidate,
                          const GateOptions& options = {});

/// One line per finding plus a PASS/FAIL summary for CI logs.
std::string format_gate_console(const GateResult& result);

}  // namespace nustencil::metrics
