// Live progress state for long runs: per-thread publish slots plus the
// heartbeat line renderer ("layer N | X.X M up/s | locality Y.Y%").
//
// Workers publish into cache-line-padded per-thread atomic slots with
// relaxed stores (one branch + three stores per tile when enabled, one
// null check when not), so the heartbeat never perturbs the measured
// run: there is no lock on the publish path and readers tolerate torn
// *sets* of slots — each slot itself is a word-sized atomic.
//
// Since the telemetry sampler landed there is exactly one periodic-
// snapshot thread in the system: the meter no longer owns one.  The
// telemetry::Sampler drives emit_beat()/emit_final() on its own cadence
// (and reads the same slots for its time-series rings); the printed
// output is unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/aligned.hpp"

namespace nustencil::prof {

class ProgressMeter {
 public:
  /// Heartbeats render onto `os` every `interval_s` seconds (the caller
  /// that drives emit_beat honours the interval; the meter validates it).
  ProgressMeter(double interval_s, std::ostream& os);

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Resets the slots for a new run.  `label` prefixes every line;
  /// `total_updates` (0 = unknown) adds a percent-done column.
  void begin_run(const std::string& label, int num_threads,
                 std::uint64_t total_updates);

  /// Publishes thread `tid`'s cumulative progress (executors call this
  /// once per tile).  Relaxed stores; call from thread `tid` only.
  void publish(int tid, std::uint64_t updates, std::uint64_t local_bytes,
               std::uint64_t remote_bytes) {
    Slot& s = slots_[static_cast<std::size_t>(tid)];
    s.updates.store(updates, std::memory_order_relaxed);
    s.local_bytes.store(local_bytes, std::memory_order_relaxed);
    s.remote_bytes.store(remote_bytes, std::memory_order_relaxed);
  }

  /// Advances the layer indicator (monotonic max; any thread may call).
  void set_layer(long layer) {
    long cur = layer_.load(std::memory_order_relaxed);
    while (layer > cur &&
           !layer_.compare_exchange_weak(cur, layer,
                                         std::memory_order_relaxed)) {
    }
  }

  /// One heartbeat line onto the configured stream; emit_final appends
  /// the " (final)" marker so runs shorter than the interval still
  /// report.  Call from one driver thread only (the rate window is
  /// stateful).
  void emit_beat();
  void emit_final();

  /// The current heartbeat line (sampled now); exposed for tests and the
  /// emit_* helpers.
  std::string render_line();

  /// Configured heartbeat cadence.
  double interval_s() const { return interval_s_; }

  // Cross-thread snapshot readers for the telemetry sampler: relaxed
  // atomic loads of single-writer slots — per-thread-coherent, not
  // globally atomic, which is fine for monitoring.
  int num_slots() const { return static_cast<int>(slots_.size()); }
  void read_slot(int tid, std::uint64_t& updates, std::uint64_t& local_bytes,
                 std::uint64_t& remote_bytes) const {
    const Slot& s = slots_[static_cast<std::size_t>(tid)];
    updates = s.updates.load(std::memory_order_relaxed);
    local_bytes = s.local_bytes.load(std::memory_order_relaxed);
    remote_bytes = s.remote_bytes.load(std::memory_order_relaxed);
  }
  long layer() const { return layer_.load(std::memory_order_relaxed); }
  std::uint64_t total_updates() const { return total_updates_; }
  const std::string& label() const { return label_; }

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::uint64_t> updates{0};
    std::atomic<std::uint64_t> local_bytes{0};
    std::atomic<std::uint64_t> remote_bytes{0};
  };

  double interval_s_;
  std::ostream* os_;
  std::string label_;
  std::uint64_t total_updates_ = 0;
  std::vector<Slot> slots_;
  std::atomic<long> layer_{-1};

  // Rate window state (heartbeat driver thread only).
  std::uint64_t last_updates_ = 0;
  std::chrono::steady_clock::time_point last_beat_{};
};

}  // namespace nustencil::prof
