// Live progress heartbeat for long runs: a background thread that
// periodically prints the current temporal layer, the update rate since
// the last beat and the running NUMA locality.
//
// Workers publish into cache-line-padded per-thread atomic slots with
// relaxed stores (one branch + three stores per tile when enabled, one
// null check when not), so the heartbeat never perturbs the measured
// run: there is no lock on the publish path and the reader tolerates
// torn *sets* of slots — each slot itself is a word-sized atomic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/aligned.hpp"

namespace nustencil::prof {

class ProgressMeter {
 public:
  /// Beats every `interval_s` seconds onto `os` (one line per beat).
  ProgressMeter(double interval_s, std::ostream& os);
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Resets the slots for a new run.  `label` prefixes every line;
  /// `total_updates` (0 = unknown) adds a percent-done column.
  void begin_run(const std::string& label, int num_threads,
                 std::uint64_t total_updates);

  /// Publishes thread `tid`'s cumulative progress (executors call this
  /// once per tile).  Relaxed stores; call from thread `tid` only.
  void publish(int tid, std::uint64_t updates, std::uint64_t local_bytes,
               std::uint64_t remote_bytes) {
    Slot& s = slots_[static_cast<std::size_t>(tid)];
    s.updates.store(updates, std::memory_order_relaxed);
    s.local_bytes.store(local_bytes, std::memory_order_relaxed);
    s.remote_bytes.store(remote_bytes, std::memory_order_relaxed);
  }

  /// Advances the layer indicator (monotonic max; any thread may call).
  void set_layer(long layer) {
    long cur = layer_.load(std::memory_order_relaxed);
    while (layer > cur &&
           !layer_.compare_exchange_weak(cur, layer,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Starts / stops the heartbeat thread.  stop() emits one final line
  /// so short runs still report, then joins.
  void start();
  void stop();

  /// The current heartbeat line (sampled now); exposed for tests.
  std::string render_line();

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::atomic<std::uint64_t> updates{0};
    std::atomic<std::uint64_t> local_bytes{0};
    std::atomic<std::uint64_t> remote_bytes{0};
  };

  void beat_loop();

  double interval_s_;
  std::ostream* os_;
  std::string label_;
  std::uint64_t total_updates_ = 0;
  std::vector<Slot> slots_;
  std::atomic<long> layer_{-1};

  // Rate window state (heartbeat thread only).
  std::uint64_t last_updates_ = 0;
  std::chrono::steady_clock::time_point last_beat_{};

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
};

}  // namespace nustencil::prof
