// Differential attribution: explain a changed metric between two run
// reports from report-level aggregates, the same way the straggler
// analyzer (prof/attribution.hpp) explains one slow span from its
// counter deltas.
//
// The cause taxonomy mirrors the span verdicts lifted to whole runs: a
// significant delta is either explained by an explicit configuration
// change (different kernel, scheme, schedule...), or by the dominant
// aggregate shift — locality (remote-traffic), deepest-level cache miss
// rate, load imbalance, or spin/wait share.  Every verdict carries the
// numeric evidence it was judged on so the diff dashboard and the
// console summary can show their work.
#pragma once

#include <cstdint>
#include <string>

namespace nustencil::prof {

enum class DeltaCause : std::uint8_t {
  ConfigChange = 0,  ///< an explicit config delta explains the move
  KernelChange,      ///< the kernel engine selected a different variant
  LocalityShift,     ///< NUMA locality / remote-traffic share moved
  CacheMissShift,    ///< deepest-level miss rate moved
  ImbalanceShift,    ///< busy-time imbalance moved
  SpinShift,         ///< barrier/spin wait share moved
  Unexplained,       ///< no aggregate shift clears its threshold
};

const char* delta_cause_name(DeltaCause c);

/// Report-level aggregates of one run, extracted from a parsed report by
/// the diff engine (metrics/diff.cpp).  Negative values mean "section
/// absent from this report" (older schema or instrumentation off).
struct RunAggregates {
  std::string scheme;
  std::string kernel_variant;
  std::string schedule;
  double seconds = -1.0;
  double gupdates_per_s = -1.0;
  double locality = -1.0;
  double remote_frac = -1.0;    ///< remote / (local + remote) bytes
  double deep_miss_rate = -1.0; ///< miss rate at the deepest cache level
  double imbalance = -1.0;      ///< max/mean busy time
  double spin_frac = -1.0;      ///< wait seconds / accounted seconds
};

/// The verdict plus the evidence it rests on.  `shift` is the winning
/// aggregate's absolute change (b - a); `evidence` is a compact numeric
/// trail ("locality 0.981 -> 0.710, remote_frac 0.019 -> 0.290").
struct DeltaVerdict {
  DeltaCause cause = DeltaCause::Unexplained;
  double shift = 0.0;
  std::string evidence;
};

/// Judges one significant metric delta.  Metric-name categories win
/// first (a traffic/* delta IS a locality shift, a cache/* delta IS a
/// miss shift); headline metrics (result/*) fall through to the
/// dominant-aggregate-shift rule with the thresholds below.
DeltaVerdict attribute_delta(const std::string& metric,
                             const RunAggregates& a, const RunAggregates& b);

// Aggregate-shift thresholds (absolute changes; deliberately coarse —
// the point is to label the dominant term, not to fit a model).
inline constexpr double kDeltaLocalityShift = 0.02;
inline constexpr double kDeltaMissShift = 0.02;
inline constexpr double kDeltaImbalanceShift = 0.05;
inline constexpr double kDeltaSpinShift = 0.05;

}  // namespace nustencil::prof
