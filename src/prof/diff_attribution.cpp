#include "prof/diff_attribution.hpp"

#include <cmath>
#include <sstream>

namespace nustencil::prof {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

/// "name x -> y" when both sides carry the aggregate, else "".
std::string pair_evidence(const char* name, double a, double b) {
  if (a < 0.0 || b < 0.0) return "";
  return std::string(name) + " " + fmt(a) + " -> " + fmt(b);
}

}  // namespace

const char* delta_cause_name(DeltaCause c) {
  switch (c) {
    case DeltaCause::ConfigChange: return "config-change";
    case DeltaCause::KernelChange: return "kernel-change";
    case DeltaCause::LocalityShift: return "locality-shift";
    case DeltaCause::CacheMissShift: return "cache-miss-shift";
    case DeltaCause::ImbalanceShift: return "imbalance-shift";
    case DeltaCause::SpinShift: return "spin-shift";
    case DeltaCause::Unexplained: return "unexplained";
  }
  return "unexplained";
}

DeltaVerdict attribute_delta(const std::string& metric,
                             const RunAggregates& a, const RunAggregates& b) {
  DeltaVerdict v;

  // A traffic/counter metric names its own cause: the delta IS the shift.
  if (starts_with(metric, "traffic/") || contains(metric, "remote") ||
      contains(metric, "local_bytes") || contains(metric, "unowned")) {
    v.cause = DeltaCause::LocalityShift;
    v.shift = (a.locality >= 0.0 && b.locality >= 0.0) ? b.locality - a.locality
                                                       : 0.0;
    v.evidence = pair_evidence("locality", a.locality, b.locality);
    if (const std::string rf =
            pair_evidence("remote_frac", a.remote_frac, b.remote_frac);
        !rf.empty())
      v.evidence += (v.evidence.empty() ? "" : ", ") + rf;
    return v;
  }
  if (starts_with(metric, "cache/")) {
    v.cause = DeltaCause::CacheMissShift;
    v.shift = (a.deep_miss_rate >= 0.0 && b.deep_miss_rate >= 0.0)
                  ? b.deep_miss_rate - a.deep_miss_rate
                  : 0.0;
    v.evidence =
        pair_evidence("deep_miss_rate", a.deep_miss_rate, b.deep_miss_rate);
    return v;
  }
  if (contains(metric, "spinflag_wait") || contains(metric, "barrier_wait") ||
      contains(metric, "spins")) {
    v.cause = DeltaCause::SpinShift;
    v.shift = (a.spin_frac >= 0.0 && b.spin_frac >= 0.0)
                  ? b.spin_frac - a.spin_frac
                  : 0.0;
    v.evidence = pair_evidence("spin_frac", a.spin_frac, b.spin_frac);
    return v;
  }
  if (contains(metric, "imbalance") || starts_with(metric, "sched/")) {
    v.cause = DeltaCause::ImbalanceShift;
    v.shift = (a.imbalance >= 0.0 && b.imbalance >= 0.0)
                  ? b.imbalance - a.imbalance
                  : 0.0;
    v.evidence = pair_evidence("imbalance", a.imbalance, b.imbalance);
    return v;
  }

  // Headline metric (result/seconds, result/gupdates_per_s, kernel
  // counters, phase/compute_s...): explicit config changes win first.
  if (!a.kernel_variant.empty() && !b.kernel_variant.empty() &&
      a.kernel_variant != b.kernel_variant) {
    v.cause = DeltaCause::KernelChange;
    v.evidence = "kernel '" + a.kernel_variant + "' -> '" + b.kernel_variant + "'";
    return v;
  }
  if (!a.scheme.empty() && !b.scheme.empty() && a.scheme != b.scheme) {
    v.cause = DeltaCause::ConfigChange;
    v.evidence = "scheme '" + a.scheme + "' -> '" + b.scheme + "'";
    return v;
  }
  if (!a.schedule.empty() && !b.schedule.empty() && a.schedule != b.schedule) {
    v.cause = DeltaCause::ConfigChange;
    v.evidence = "schedule '" + a.schedule + "' -> '" + b.schedule + "'";
    return v;
  }

  // Dominant aggregate shift: score each candidate by how far past its
  // threshold it moved, pick the largest score >= 1.
  struct Candidate {
    DeltaCause cause;
    double a_val, b_val, threshold;
    const char* name;
  };
  const Candidate candidates[] = {
      {DeltaCause::SpinShift, a.spin_frac, b.spin_frac, kDeltaSpinShift,
       "spin_frac"},
      {DeltaCause::LocalityShift, a.locality, b.locality, kDeltaLocalityShift,
       "locality"},
      {DeltaCause::CacheMissShift, a.deep_miss_rate, b.deep_miss_rate,
       kDeltaMissShift, "deep_miss_rate"},
      {DeltaCause::ImbalanceShift, a.imbalance, b.imbalance,
       kDeltaImbalanceShift, "imbalance"},
  };
  double best_score = 0.0;
  for (const Candidate& c : candidates) {
    if (c.a_val < 0.0 || c.b_val < 0.0) continue;
    const double shift = c.b_val - c.a_val;
    const double score = std::fabs(shift) / c.threshold;
    if (score >= 1.0 && score > best_score) {
      best_score = score;
      v.cause = c.cause;
      v.shift = shift;
      v.evidence = pair_evidence(c.name, c.a_val, c.b_val);
    }
  }
  if (v.cause == DeltaCause::LocalityShift) {
    if (const std::string rf =
            pair_evidence("remote_frac", a.remote_frac, b.remote_frac);
        !rf.empty())
      v.evidence += ", " + rf;
  }
  if (v.cause == DeltaCause::Unexplained) {
    std::string trail;
    for (const Candidate& c : candidates) {
      const std::string e = pair_evidence(c.name, c.a_val, c.b_val);
      if (e.empty()) continue;
      trail += (trail.empty() ? "" : ", ") + e;
    }
    v.evidence = trail.empty() ? "no aggregate shift clears its threshold"
                               : "below thresholds: " + trail;
  }
  return v;
}

}  // namespace nustencil::prof
