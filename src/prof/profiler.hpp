// The simulated-PMU sampler behind per-span performance attribution.
//
// A Profiler aggregates the run's instrumentation sources — the executor's
// update counters, the NUMA traffic recorder's per-thread byte shards and
// the cache simulator's per-core hit/miss mirror — behind the
// trace::CounterSampler interface.  ScopedSpan snapshots it at the two
// ends of every counter-carrying leaf span (Tile, Init) and records the
// delta, which is how a span on the timeline gets "remote bytes", "miss
// rate" and "updates" attached without any per-access bookkeeping of its
// own.
//
// Every source is per-thread single-writer, so sampling from the owning
// thread is a handful of relaxed loads: no locks on the hot path, and a
// run without --trace/--report never constructs a Profiler at all.
#pragma once

#include <cstdint>
#include <functional>

#include "cachesim/shared.hpp"
#include "numa/traffic.hpp"
#include "trace/trace.hpp"

namespace nustencil::prof {

class Profiler : public trace::CounterSampler {
 public:
  /// Cumulative cell updates of thread `tid` (typically bound to the
  /// thread's Executor::updates_done).  A std::function keeps this
  /// library independent of src/core.
  using UpdatesFn = std::function<std::uint64_t(int tid)>;

  /// Measured hardware counters of thread `tid`, written into the
  /// CounterSet's hw slots (src/hwc/ThreadSet::sample wrapped by the run
  /// support).  A std::function keeps this library independent of
  /// src/hwc, same as the updates source.
  using HwFn = std::function<void(int tid, trace::CounterSet& out)>;

  void set_updates_source(UpdatesFn fn) { updates_ = std::move(fn); }
  void set_traffic_source(const numa::TrafficRecorder* traffic) {
    traffic_ = traffic;
  }
  void set_cache_source(const cachesim::SharedHierarchy* cache) {
    cache_ = cache;
  }
  void set_hw_source(HwFn fn) { hw_ = std::move(fn); }

  /// Samples the cumulative counters of thread `tid`.  Sources that are
  /// not attached leave their slots zero, so their per-span deltas are
  /// zero too.  Must be called from thread `tid` (single-writer shards).
  void sample(int tid, trace::CounterSet& out) const override;

 private:
  UpdatesFn updates_;
  HwFn hw_;
  const numa::TrafficRecorder* traffic_ = nullptr;
  const cachesim::SharedHierarchy* cache_ = nullptr;
};

}  // namespace nustencil::prof
