#include "prof/attribution.hpp"

#include <algorithm>
#include <array>

namespace nustencil::prof {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::ComputeBound: return "compute-bound";
    case Verdict::RemoteTrafficBound: return "remote-traffic-bound";
    case Verdict::CacheMissBound: return "cache-miss-bound";
    case Verdict::SpinBound: return "spin-bound";
  }
  return "?";
}

Attribution attribute(const SpanRecord& span) {
  Attribution a;
  if (span.phase == trace::Phase::BarrierWait ||
      span.phase == trace::Phase::SpinWait) {
    a.verdict = Verdict::SpinBound;
    a.spin_frac = 1.0;
    return a;
  }
  const double dur = static_cast<double>(span.dur_ns());
  if (dur > 0.0 && span.exclude_ns > 0)
    a.spin_frac = static_cast<double>(span.exclude_ns) / dur;
  const trace::CounterSet& c = span.counters;
  if (c.owned_bytes() > 0)
    a.remote_frac =
        static_cast<double>(c.at(trace::SpanCounter::RemoteBytes)) /
        static_cast<double>(c.owned_bytes());
  if (const int deep = c.deepest_level(); deep >= 0)
    a.miss_rate = c.miss_rate(deep);
  if (a.spin_frac > kSpinBoundFrac)
    a.verdict = Verdict::SpinBound;
  else if (a.remote_frac > kRemoteBoundFrac)
    a.verdict = Verdict::RemoteTrafficBound;
  else if (a.miss_rate > kMissBoundRate)
    a.verdict = Verdict::CacheMissBound;
  else
    a.verdict = Verdict::ComputeBound;
  return a;
}

ProfSummary summarize(const trace::Trace& trace, int flops_per_update,
                      std::size_t top_k, std::size_t max_roofline) {
  ProfSummary s;
  s.flops_per_update = flops_per_update;
  if (trace.num_threads() == 0) return s;

  // Exact totals from the out-of-ring per-phase accumulators; only the
  // counter-carrying phases can hold anything.
  for (int tid = 0; tid < trace.num_threads(); ++tid) {
    const trace::ThreadRecorder* rec = trace.thread(tid);
    s.dropped_events += rec->dropped();
    for (int p = 0; p < trace::kNumPhases; ++p) {
      const auto phase = static_cast<trace::Phase>(p);
      if (trace::phase_carries_counters(phase))
        s.totals.accumulate(rec->counter_total(phase));
    }
  }

  // Straggler candidates and the roofline scatter come from the rings.
  std::vector<SpanRecord> leaves;
  std::array<double, trace::kNumPhases> phase_dur_sum{};
  std::array<std::uint64_t, trace::kNumPhases> phase_dur_count{};
  for (int tid = 0; tid < trace.num_threads(); ++tid) {
    for (const trace::Event& e : trace.thread(tid)->events()) {
      if (!trace::phase_is_leaf(e.phase)) continue;
      SpanRecord r;
      r.tid = tid;
      r.phase = e.phase;
      r.args = e.args;
      r.start_ns = e.start_ns;
      r.end_ns = e.end_ns;
      r.exclude_ns = e.exclude_ns;
      if (e.has_counters) {
        r.counters = e.counters;
        ++s.sampled_spans;
        if (s.roofline.size() < max_roofline) {
          const std::uint64_t bytes = e.counters.total_bytes();
          const std::uint64_t updates =
              e.counters.at(trace::SpanCounter::Updates);
          const double dur = static_cast<double>(e.end_ns - e.start_ns);
          if (bytes > 0 && updates > 0 && dur > 0.0 && flops_per_update > 0) {
            RooflinePoint p;
            const double flops =
                static_cast<double>(updates) * flops_per_update;
            p.ai = flops / static_cast<double>(bytes);
            p.gflops = flops / dur;  // flop/ns == Gflop/s
            p.tid = tid;
            p.verdict = attribute(r).verdict;
            s.roofline.push_back(p);
          }
        }
      }
      const auto pi = static_cast<std::size_t>(e.phase);
      phase_dur_sum[pi] += static_cast<double>(e.end_ns - e.start_ns);
      phase_dur_count[pi] += 1;
      leaves.push_back(std::move(r));
    }
  }

  const std::size_t k = std::min(top_k, leaves.size());
  // Ties broken by (tid, start) so the table is deterministic.
  std::partial_sort(leaves.begin(), leaves.begin() + static_cast<std::ptrdiff_t>(k),
                    leaves.end(), [](const SpanRecord& x, const SpanRecord& y) {
                      if (x.dur_ns() != y.dur_ns()) return x.dur_ns() > y.dur_ns();
                      if (x.tid != y.tid) return x.tid < y.tid;
                      return x.start_ns < y.start_ns;
                    });
  for (std::size_t i = 0; i < k; ++i) {
    Straggler st;
    st.span = leaves[i];
    st.why = attribute(st.span);
    st.dur_ms = static_cast<double>(st.span.dur_ns()) * 1e-6;
    const auto pi = static_cast<std::size_t>(st.span.phase);
    st.mean_dur_ms = phase_dur_count[pi] > 0
                         ? phase_dur_sum[pi] * 1e-6 /
                               static_cast<double>(phase_dur_count[pi])
                         : 0.0;
    s.stragglers.push_back(std::move(st));
  }
  // "Enabled" means the trace carries (or can still produce) per-span
  // counter data: a live sampler, sampled events in the rings, or
  // non-zero out-of-ring totals — the last two matter because RunSupport
  // detaches the sampler when the run object dies.
  s.enabled = trace.sampler() != nullptr || s.sampled_spans > 0 ||
              s.totals.any();
  return s;
}

}  // namespace nustencil::prof
