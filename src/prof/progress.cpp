#include "prof/progress.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace nustencil::prof {

ProgressMeter::ProgressMeter(double interval_s, std::ostream& os)
    : interval_s_(interval_s), os_(&os) {
  NUSTENCIL_CHECK(interval_s > 0.0, "ProgressMeter: interval must be positive");
}

void ProgressMeter::begin_run(const std::string& label, int num_threads,
                              std::uint64_t total_updates) {
  NUSTENCIL_CHECK(num_threads >= 1, "ProgressMeter: need at least one thread");
  label_ = label;
  total_updates_ = total_updates;
  slots_ = std::vector<Slot>(static_cast<std::size_t>(num_threads));
  layer_.store(-1, std::memory_order_relaxed);
  last_updates_ = 0;
  last_beat_ = std::chrono::steady_clock::now();
}

std::string ProgressMeter::render_line() {
  std::uint64_t updates = 0, local = 0, remote = 0;
  for (const Slot& s : slots_) {
    updates += s.updates.load(std::memory_order_relaxed);
    local += s.local_bytes.load(std::memory_order_relaxed);
    remote += s.remote_bytes.load(std::memory_order_relaxed);
  }
  const auto now = std::chrono::steady_clock::now();
  const double dt = std::chrono::duration<double>(now - last_beat_).count();
  const double mups =
      dt > 0.0 ? static_cast<double>(updates - last_updates_) / dt * 1e-6 : 0.0;
  last_updates_ = updates;
  last_beat_ = now;
  const std::uint64_t owned = local + remote;
  const double locality =
      owned == 0 ? 100.0
                 : static_cast<double>(local) / static_cast<double>(owned) * 100.0;

  std::ostringstream line;
  line << "progress";
  if (!label_.empty()) line << " [" << label_ << ']';
  line << ": ";
  if (const long layer = layer_.load(std::memory_order_relaxed); layer >= 0)
    line << "layer " << layer << " | ";
  line << std::fixed << std::setprecision(1) << mups << " M up/s | locality "
       << std::setprecision(1) << locality << '%';
  if (total_updates_ > 0)
    line << " | " << std::setprecision(1)
         << static_cast<double>(updates) / static_cast<double>(total_updates_) *
                100.0
         << "% done";
  return line.str();
}

void ProgressMeter::emit_beat() { *os_ << render_line() << std::endl; }

void ProgressMeter::emit_final() {
  // One closing beat so runs shorter than the interval still report.
  *os_ << render_line() << " (final)" << std::endl;
}

}  // namespace nustencil::prof
