// Straggler analysis: rank the slowest spans of a traced run and explain
// each one from its own counter deltas.
//
// The verdict taxonomy mirrors the paper's cost model: a span is either
// waiting (spin-bound), dragging cross-socket traffic (remote-traffic-
// bound), thrashing the deepest cache level (cache-miss-bound), or
// genuinely compute-bound.  The thresholds are deliberately coarse — the
// point is to label the dominant term, not to fit a model — and every
// Attribution carries the evidence (fractions/rates) it was judged on so
// the dashboard can show its work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace nustencil::prof {

enum class Verdict : std::uint8_t {
  ComputeBound = 0,
  RemoteTrafficBound,
  CacheMissBound,
  SpinBound,
};

const char* verdict_name(Verdict v);

/// One leaf span lifted out of a thread's event ring, with everything
/// attribution needs.
struct SpanRecord {
  int tid = 0;
  trace::Phase phase = trace::Phase::Tile;
  trace::SpanArgs args;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::int64_t exclude_ns = 0;  ///< nested wait time inside the span
  trace::CounterSet counters;   ///< per-span deltas (zero when not sampled)

  std::int64_t dur_ns() const { return end_ns - start_ns; }
};

/// The verdict plus the evidence it rests on.
struct Attribution {
  Verdict verdict = Verdict::ComputeBound;
  double spin_frac = 0.0;    ///< waiting fraction of the span's extent
  double remote_frac = 0.0;  ///< remote fraction of owned traffic
  double miss_rate = 0.0;    ///< miss rate at the deepest active level
};

/// Judges one span.  Wait-phase spans are spin-bound by definition; for
/// compute spans the dominant counter wins: nested waiting above
/// kSpinBoundFrac, then remote share above kRemoteBoundFrac, then a
/// deepest-level miss rate above kMissBoundRate, else compute-bound.
Attribution attribute(const SpanRecord& span);

inline constexpr double kSpinBoundFrac = 0.4;
inline constexpr double kRemoteBoundFrac = 0.5;
inline constexpr double kMissBoundRate = 0.35;

/// One entry of the top-K slowest-span table.
struct Straggler {
  SpanRecord span;
  Attribution why;
  double dur_ms = 0.0;
  double mean_dur_ms = 0.0;  ///< mean over all leaf spans of the same phase
};

/// One point of the per-span roofline scatter: arithmetic intensity vs
/// achieved compute rate, coloured by verdict.
struct RooflinePoint {
  double ai = 0.0;      ///< flop per byte of simulated traffic
  double gflops = 0.0;  ///< achieved Gflop/s over the span
  int tid = 0;
  Verdict verdict = Verdict::ComputeBound;
};

/// The run report's `prof` payload.
struct ProfSummary {
  bool enabled = false;
  int flops_per_update = 0;
  std::uint64_t sampled_spans = 0;   ///< counter-carrying spans in the rings
  std::uint64_t dropped_events = 0;  ///< ring overflow across all threads
  /// Sum of every per-span counter delta, accumulated outside the rings:
  /// matches the run-wide registry totals exactly (the invariant
  /// prof_test.cpp pins).
  trace::CounterSet totals;
  std::vector<Straggler> stragglers;
  std::vector<RooflinePoint> roofline;
};

/// Builds the summary from a finished trace: exact counter totals from
/// the per-phase accumulators, the top-`top_k` slowest leaf spans with
/// verdicts, and up to `max_roofline` scatter points (counter-carrying
/// spans in thread order — deterministic, and log()-free truncation is
/// visible via sampled_spans).
ProfSummary summarize(const trace::Trace& trace, int flops_per_update,
                      std::size_t top_k = 10, std::size_t max_roofline = 4096);

}  // namespace nustencil::prof
