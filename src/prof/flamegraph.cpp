#include "prof/flamegraph.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace nustencil::prof {

const char* flame_weight_name(FlameWeight w) {
  switch (w) {
    case FlameWeight::Time: return "time";
    case FlameWeight::RemoteBytes: return "remote";
    case FlameWeight::CacheMisses: return "misses";
  }
  return "?";
}

FlameWeight parse_flame_weight(const std::string& s) {
  if (s == "time") return FlameWeight::Time;
  if (s == "remote") return FlameWeight::RemoteBytes;
  if (s == "misses") return FlameWeight::CacheMisses;
  NUSTENCIL_CHECK(false, "unknown flamegraph weight '" + s +
                             "' (expected time, remote or misses)");
  return FlameWeight::Time;
}

namespace {

/// Frame name of one span — no spaces or semicolons (both are structural
/// in the folded format).
std::string frame_name(const trace::Event& e) {
  std::ostringstream os;
  switch (e.phase) {
    case trace::Phase::Init:
      os << "init:" << e.args.a << ',' << e.args.b << ',' << e.args.c;
      break;
    case trace::Phase::Tile:
      os << "tile:" << e.args.a << ',' << e.args.b << ',' << e.args.c;
      break;
    case trace::Phase::BarrierWait:
      os << "barrier-wait";
      break;
    case trace::Phase::SpinWait:
      os << "spinflag-wait";
      if (e.args.owner >= 0) os << ":owner" << e.args.owner;
      break;
    case trace::Phase::Parallelogram:
      os << "parallelogram:" << e.args.a;
      break;
    case trace::Phase::Layer:
      os << "layer:" << e.args.a;
      break;
    case trace::Phase::Steal:
      os << "steal:t" << e.args.a << ":v" << e.args.b;
      break;
    case trace::Phase::kCount:
      os << "?";
      break;
  }
  return os.str();
}

std::uint64_t counter_weight(const trace::Event& e, FlameWeight w) {
  if (!e.has_counters) return 0;
  if (w == FlameWeight::RemoteBytes)
    return e.counters.at(trace::SpanCounter::RemoteBytes);
  const int deep = e.counters.deepest_level();
  return deep >= 0 ? e.counters.level_misses(deep) : 0;
}

}  // namespace

void write_flamegraph(std::ostream& os, const trace::Trace& trace,
                      const std::string& root, FlameWeight weight) {
  // Ordered map -> lexicographic, deterministic output.
  std::map<std::string, std::uint64_t> folded;
  for (int tid = 0; tid < trace.num_threads(); ++tid) {
    std::vector<trace::Event> events = trace.thread(tid)->events();
    // Parent-first order: by start ascending, enclosing span (later end)
    // first on ties, so the nesting stack below reconstructs ancestry.
    std::stable_sort(events.begin(), events.end(),
                     [](const trace::Event& x, const trace::Event& y) {
                       if (x.start_ns != y.start_ns) return x.start_ns < y.start_ns;
                       return x.end_ns > y.end_ns;
                     });
    struct Open {
      std::string stack;        ///< full folded stack including this frame
      std::int64_t end_ns;
      std::int64_t self_ns;     ///< extent minus nested span extents
      std::uint64_t self_counter;
    };
    std::vector<Open> open;
    const std::string base = root + ";worker:" + std::to_string(tid);
    auto close_top = [&] {
      const Open& top = open.back();
      std::uint64_t w = 0;
      if (weight == FlameWeight::Time)
        w = top.self_ns > 0 ? static_cast<std::uint64_t>(top.self_ns) : 0;
      else
        w = top.self_counter;
      if (w > 0) folded[top.stack] += w;
      open.pop_back();
    };
    for (const trace::Event& e : events) {
      while (!open.empty() && open.back().end_ns <= e.start_ns) close_top();
      Open o;
      o.stack = (open.empty() ? base : open.back().stack) + ';' + frame_name(e);
      o.end_ns = e.end_ns;
      o.self_ns = e.end_ns - e.start_ns;
      o.self_counter = counter_weight(e, weight);
      if (!open.empty()) {
        // The enclosed extent belongs to this child, not the parent; a
        // parent that carries counters (CORALS chained tiles) likewise
        // keeps only its own delta because nested wait spans carry none.
        open.back().self_ns -= e.end_ns - e.start_ns;
      }
      open.push_back(std::move(o));
    }
    while (!open.empty()) close_top();
  }
  for (const auto& [stack, w] : folded) os << stack << ' ' << w << '\n';
}

void write_flamegraph_file(const std::string& path, const trace::Trace& trace,
                           const std::string& root, FlameWeight weight) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "flamegraph: cannot open " + path);
  write_flamegraph(out, trace, root, weight);
  NUSTENCIL_CHECK(out.good(), "flamegraph: write failed for " + path);
}

}  // namespace nustencil::prof
