#include "prof/profiler.hpp"

#include <algorithm>

namespace nustencil::prof {

void Profiler::sample(int tid, trace::CounterSet& out) const {
  out = trace::CounterSet{};
  if (updates_) out.at(trace::SpanCounter::Updates) = updates_(tid);
  if (traffic_) {
    traffic_->thread_bytes(tid, out.at(trace::SpanCounter::LocalBytes),
                           out.at(trace::SpanCounter::RemoteBytes),
                           out.at(trace::SpanCounter::UnownedBytes));
  }
  if (cache_) {
    const auto& levels = cache_->core_traffic(tid);
    const int n = std::min<int>(static_cast<int>(levels.size()),
                                trace::CounterSet::kMaxCacheLevels);
    for (int l = 0; l < n; ++l) {
      const auto& lt = levels[static_cast<std::size_t>(l)];
      out.v[static_cast<std::size_t>(trace::SpanCounter::L1Hits) +
            2 * static_cast<std::size_t>(l)] = lt.hits;
      out.v[static_cast<std::size_t>(trace::SpanCounter::L1Misses) +
            2 * static_cast<std::size_t>(l)] = lt.misses;
    }
  }
  if (hw_) hw_(tid, out);
}

}  // namespace nustencil::prof
