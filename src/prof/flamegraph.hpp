// Collapsed-stack flamegraph export of a traced run.
//
// Reconstructs each thread's span nesting (Layer > Parallelogram > Tile >
// SpinWait, etc.) from the event ring and emits one Brendan-Gregg folded
// line per unique stack:
//
//   nuCORALS;worker:3;layer:2;parallelogram:5;tile:0,32,0 184223
//
// loadable by flamegraph.pl and by speedscope.  Three weightings share
// the same stack structure: wall time (self time, nested spans
// subtracted), remote bytes, and deepest-level cache misses — the latter
// two turn the flamegraph into a traffic/miss attribution view where
// only counter-carrying spans have width.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace nustencil::prof {

enum class FlameWeight : std::uint8_t {
  Time = 0,      ///< self wall time, nanoseconds
  RemoteBytes,   ///< per-span remote-traffic delta, bytes
  CacheMisses,   ///< per-span misses at the deepest active cache level
};

const char* flame_weight_name(FlameWeight w);

/// Parses "time" / "remote" / "misses"; throws common::Error otherwise.
FlameWeight parse_flame_weight(const std::string& s);

/// Writes the folded stacks of every thread under a `root` frame
/// (conventionally the scheme name).  Stacks are emitted in
/// lexicographic order and zero-weight lines are skipped, so the output
/// is deterministic given identical traces.
void write_flamegraph(std::ostream& os, const trace::Trace& trace,
                      const std::string& root, FlameWeight weight);
void write_flamegraph_file(const std::string& path, const trace::Trace& trace,
                           const std::string& root, FlameWeight weight);

}  // namespace nustencil::prof
