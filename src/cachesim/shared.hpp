// Thread-safe wrapper around Hierarchy for trace-driven simulation of
// multi-threaded scheme executions.
//
// The executor feeds its (row-granular) access stream here when a run is
// configured with RunConfig::cache_sim.  A single mutex serialises the
// simulated accesses — acceptable because trace-driven runs use small
// domains by design; the interleaving of rows from different threads is
// then a legal (if arbitrary) schedule of the real execution.
#pragma once

#include <mutex>

#include "cachesim/hierarchy.hpp"

namespace nustencil::cachesim {

class SharedHierarchy {
 public:
  SharedHierarchy(const topology::MachineSpec& machine, int num_cores)
      : hierarchy_(machine, num_cores) {}

  void access(int core, Addr addr, Index bytes, bool write) {
    std::lock_guard<std::mutex> lock(mutex_);
    hierarchy_.access(core, addr, bytes, write);
  }

  HierarchyTraffic traffic() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hierarchy_.traffic();
  }

  Index line_bytes() const { return hierarchy_.line_bytes(); }

  /// Per-core attribution counters of `core` (see Hierarchy::core_traffic).
  /// Deliberately lock-free: every access by core c is issued by thread c
  /// (executors pass their own tid as the core), so the row is
  /// single-writer and the owning thread may read it without taking the
  /// mutex — the per-span counter sampler does, at leaf-span boundaries.
  /// Other threads must only call this after the worker team has joined.
  const std::vector<LevelTraffic>& core_traffic(int core) const {
    return hierarchy_.core_traffic(core);
  }

 private:
  mutable std::mutex mutex_;
  Hierarchy hierarchy_;
};

}  // namespace nustencil::cachesim
