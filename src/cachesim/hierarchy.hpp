// Multi-level, multi-core cache hierarchy built from Cache instances.
//
// Level i is private per core when the MachineSpec says shared_by_cores==1,
// otherwise one instance is shared by each group of cores (e.g. the Xeon's
// per-socket L3).  Inclusive fill path: an access walks L1 -> L2 -> ... and
// fills every missed level; dirty evictions from the last level count as
// memory writes.
#pragma once

#include <memory>
#include <vector>

#include "cachesim/cache.hpp"
#include "topology/machine.hpp"

namespace nustencil::cachesim {

struct LevelTraffic {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct HierarchyTraffic {
  std::vector<LevelTraffic> level;   ///< one entry per cache level
  std::uint64_t memory_reads = 0;    ///< line fills from memory
  std::uint64_t memory_writes = 0;   ///< dirty writebacks to memory

  std::uint64_t memory_bytes(Index line_bytes) const {
    return (memory_reads + memory_writes) * static_cast<std::uint64_t>(line_bytes);
  }
};

class Hierarchy {
 public:
  Hierarchy(const topology::MachineSpec& machine, int num_cores);

  /// Simulates an access of [addr, addr+bytes) by `core`; each covered
  /// cache line is accessed once.
  void access(int core, Addr addr, Index bytes, bool write);

  /// Writes back and invalidates all caches.
  void flush();

  HierarchyTraffic traffic() const;
  Index line_bytes() const { return line_bytes_; }

  /// Per-level hit/miss counters attributed to the accessing core (one
  /// entry per cache level).  The global per-Cache counters cannot be
  /// attributed back to a thread once levels are shared; this mirror is
  /// incremented on the same walk, so summed over all cores it equals
  /// traffic().level exactly.
  const std::vector<LevelTraffic>& core_traffic(int core) const {
    return core_level_[static_cast<std::size_t>(core)];
  }

 private:
  Cache& cache_at(std::size_t level, int core);
  void access_line(int core, Addr line_addr_bytes, bool write);

  const topology::MachineSpec* machine_;
  int num_cores_;
  Index line_bytes_;
  /// caches_[level][group]
  std::vector<std::vector<std::unique_ptr<Cache>>> caches_;
  std::vector<int> group_divisor_;  ///< cores per sharing group at each level
  /// core_level_[core][level]: the per-core attribution mirror.
  std::vector<std::vector<LevelTraffic>> core_level_;
  std::uint64_t memory_reads_ = 0;
  std::uint64_t memory_writes_ = 0;
};

}  // namespace nustencil::cachesim
