// Set-associative LRU cache simulator (line granularity).
//
// Used at small scale to validate the analytic working-set traffic model
// that drives the figure-scale performance model, and by tests/ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace nustencil::cachesim {

using Addr = std::uint64_t;

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;  ///< dirty lines evicted

  std::uint64_t accesses() const { return hits + misses; }
  double miss_rate() const {
    return accesses() == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses());
  }
};

/// One set-associative write-back, write-allocate cache with true LRU.
class Cache {
 public:
  /// `associativity` 0 means fully associative.
  Cache(Index size_bytes, Index line_bytes, int associativity);

  /// Accesses one line-aligned address; returns true on hit. On a miss the
  /// line is filled; `evicted_dirty` (when non-null) receives whether a
  /// dirty victim was written back and `victim` its address.
  bool access(Addr addr, bool write, bool* evicted_dirty = nullptr, Addr* victim = nullptr);

  /// True when the line containing addr is currently resident.
  bool contains(Addr addr) const;

  void flush();  ///< invalidate everything (writebacks counted)

  const CacheCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = CacheCounters{}; }

  Index line_bytes() const { return line_bytes_; }
  Index size_bytes() const { return size_bytes_; }
  int ways() const { return ways_; }
  Index sets() const { return num_sets_; }

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< last-use timestamp
  };

  Index set_of(Addr line_addr) const { return static_cast<Index>(line_addr % static_cast<Addr>(num_sets_)); }

  Index size_bytes_;
  Index line_bytes_;
  int ways_;
  Index num_sets_;
  std::vector<Line> lines_;  // num_sets_ * ways_, set-major
  std::uint64_t clock_ = 0;
  CacheCounters counters_;
};

}  // namespace nustencil::cachesim
