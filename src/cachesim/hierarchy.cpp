#include "cachesim/hierarchy.hpp"

namespace nustencil::cachesim {

Hierarchy::Hierarchy(const topology::MachineSpec& machine, int num_cores)
    : machine_(&machine), num_cores_(num_cores) {
  NUSTENCIL_CHECK(num_cores >= 1 && num_cores <= machine.cores(),
                  "Hierarchy: bad core count");
  NUSTENCIL_CHECK(!machine.caches.empty(), "Hierarchy: machine has no caches");
  line_bytes_ = machine.caches.front().line_bytes;
  for (const auto& lvl : machine.caches) {
    NUSTENCIL_CHECK(lvl.line_bytes == line_bytes_,
                    "Hierarchy: mixed line sizes unsupported");
    const int divisor = lvl.shared_by_cores;
    group_divisor_.push_back(divisor);
    const int groups = (num_cores + divisor - 1) / divisor;
    std::vector<std::unique_ptr<Cache>> level;
    level.reserve(static_cast<std::size_t>(groups));
    for (int g = 0; g < groups; ++g)
      level.push_back(std::make_unique<Cache>(lvl.size_bytes, lvl.line_bytes, lvl.associativity));
    caches_.push_back(std::move(level));
  }
  core_level_.assign(static_cast<std::size_t>(num_cores),
                     std::vector<LevelTraffic>(caches_.size()));
}

Cache& Hierarchy::cache_at(std::size_t level, int core) {
  const int group = core / group_divisor_[level];
  return *caches_[level][static_cast<std::size_t>(group)];
}

void Hierarchy::access_line(int core, Addr line_addr_bytes, bool write) {
  auto& mine = core_level_[static_cast<std::size_t>(core)];
  for (std::size_t level = 0; level < caches_.size(); ++level) {
    bool evicted_dirty = false;
    const bool hit = cache_at(level, core).access(line_addr_bytes, write, &evicted_dirty);
    if (level + 1 == caches_.size() && evicted_dirty) ++memory_writes_;
    if (hit) {
      ++mine[level].hits;
      return;  // served by this level
    }
    ++mine[level].misses;
  }
  ++memory_reads_;
}

void Hierarchy::access(int core, Addr addr, Index bytes, bool write) {
  NUSTENCIL_DCHECK(core >= 0 && core < num_cores_, "Hierarchy::access: bad core");
  if (bytes <= 0) return;
  const Addr first = addr / static_cast<Addr>(line_bytes_);
  const Addr last = (addr + static_cast<Addr>(bytes) - 1) / static_cast<Addr>(line_bytes_);
  for (Addr line = first; line <= last; ++line)
    access_line(core, line * static_cast<Addr>(line_bytes_), write);
}

void Hierarchy::flush() {
  for (std::size_t level = 0; level < caches_.size(); ++level) {
    for (auto& c : caches_[level]) {
      if (level + 1 == caches_.size()) {
        const std::uint64_t before = c->counters().writebacks;
        c->flush();
        memory_writes_ += c->counters().writebacks - before;
      } else {
        c->flush();
      }
    }
  }
}

HierarchyTraffic Hierarchy::traffic() const {
  HierarchyTraffic t;
  for (const auto& level : caches_) {
    LevelTraffic lt;
    for (const auto& c : level) {
      lt.hits += c->counters().hits;
      lt.misses += c->counters().misses;
    }
    t.level.push_back(lt);
  }
  t.memory_reads = memory_reads_;
  t.memory_writes = memory_writes_;
  return t;
}

}  // namespace nustencil::cachesim
