#include "cachesim/cache.hpp"

namespace nustencil::cachesim {

Cache::Cache(Index size_bytes, Index line_bytes, int associativity)
    : size_bytes_(size_bytes), line_bytes_(line_bytes) {
  NUSTENCIL_CHECK(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
                  "Cache: line size must be a power of two");
  NUSTENCIL_CHECK(size_bytes >= line_bytes && size_bytes % line_bytes == 0,
                  "Cache: size must be a multiple of the line size");
  const Index total_lines = size_bytes / line_bytes;
  ways_ = associativity == 0 ? static_cast<int>(total_lines) : associativity;
  NUSTENCIL_CHECK(total_lines % ways_ == 0, "Cache: lines not divisible by ways");
  num_sets_ = total_lines / ways_;
  lines_.assign(static_cast<std::size_t>(total_lines), Line{});
}

bool Cache::access(Addr addr, bool write, bool* evicted_dirty, Addr* victim) {
  ++clock_;
  const Addr line_addr = addr / static_cast<Addr>(line_bytes_);
  const Index set = set_of(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * static_cast<std::size_t>(ways_)];
  if (evicted_dirty) *evicted_dirty = false;

  Line* lru_line = base;
  for (int w = 0; w < ways_; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == line_addr) {
      l.lru = clock_;
      l.dirty = l.dirty || write;
      ++counters_.hits;
      return true;
    }
    if (!l.valid) {
      lru_line = &l;  // prefer an invalid slot
    } else if (lru_line->valid && l.lru < lru_line->lru) {
      lru_line = &l;
    }
  }

  ++counters_.misses;
  if (lru_line->valid && lru_line->dirty) {
    ++counters_.writebacks;
    if (evicted_dirty) *evicted_dirty = true;
    if (victim) *victim = lru_line->tag * static_cast<Addr>(line_bytes_);
  }
  lru_line->valid = true;
  lru_line->tag = line_addr;
  lru_line->dirty = write;
  lru_line->lru = clock_;
  return false;
}

bool Cache::contains(Addr addr) const {
  const Addr line_addr = addr / static_cast<Addr>(line_bytes_);
  const Index set = set_of(line_addr);
  const Line* base = &lines_[static_cast<std::size_t>(set) * static_cast<std::size_t>(ways_)];
  for (int w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].tag == line_addr) return true;
  return false;
}

void Cache::flush() {
  for (Line& l : lines_) {
    if (l.valid && l.dirty) ++counters_.writebacks;
    l = Line{};
  }
}

}  // namespace nustencil::cachesim
