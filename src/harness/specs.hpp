// One FigureSpec per evaluation figure of the paper (Figs. 4-22), with
// the caption's "GFLOPS achieved with max cores" numbers for the
// paper-vs-model comparison that EXPERIMENTS.md records.
#pragma once

#include "harness/figure.hpp"

namespace nustencil::harness {

FigureSpec fig04();  ///< weak, constant 7-pt, 200^3/core, Opteron
FigureSpec fig05();  ///< weak, constant 7-pt, 200^3/core, Xeon
FigureSpec fig06();  ///< strong, constant 7-pt, 160^3, Opteron
FigureSpec fig07();  ///< strong, constant 7-pt, 160^3, Xeon
FigureSpec fig08();  ///< strong, constant 7-pt, 500^3, Opteron
FigureSpec fig09();  ///< strong, constant 7-pt, 500^3, Xeon
FigureSpec fig10();  ///< weak, banded 7-pt, 200^3/core, Opteron
FigureSpec fig11();  ///< weak, banded 7-pt, 200^3/core, Xeon
FigureSpec fig12();  ///< strong, banded, 160^3, Opteron
FigureSpec fig13();  ///< strong, banded, 160^3, Xeon
FigureSpec fig14();  ///< strong, banded, 500^3, Opteron
FigureSpec fig15();  ///< strong, banded, 500^3, Xeon
FigureSpec fig20();  ///< scheme comparison, weak 200^3/core, Xeon
FigureSpec fig21();  ///< scheme comparison, strong 500^3, Xeon
FigureSpec fig22();  ///< scheme comparison, strong 160^3, Xeon

/// Figs. 16-19 sweep the stencil order: run the spec at s = 1, 2, 3 and
/// merge the nuCORALS/nuCATS columns (labelled "name s=k").
struct HighOrderSpec {
  std::string id;
  std::string title;
  topology::MachineSpec machine;
  Index domain;
  std::vector<int> cores;
  /// Caption GFLOPS at max cores: key "<scheme> s=<k>".
  std::map<std::string, double> paper_gflops_at_max;
};

HighOrderSpec fig16();  ///< orders 1-3, 160^3, Opteron
HighOrderSpec fig17();  ///< orders 1-3, 160^3, Xeon
HighOrderSpec fig18();  ///< orders 1-3, 500^3, Opteron
HighOrderSpec fig19();  ///< orders 1-3, 500^3, Xeon

/// Runs a high-order figure (three per-order sub-runs, merged table).
int high_order_main(const HighOrderSpec& spec, int argc, char** argv);

}  // namespace nustencil::harness
