// Figure harness: regenerates the paper's evaluation figures.
//
// For every (scheme, core count) point the harness
//   1. really executes the scheme, instrumented, on a scaled-down domain
//      to *measure* its NUMA behaviour (locality, per-node demand) under
//      the virtual topology of the target machine,
//   2. queries the scheme's analytic per-update traffic for the *paper's*
//      domain size, and
//   3. evaluates the calibrated roofline model (perf/model.hpp).
// Reference lines (PeakDP, LL1Band0C, SysBandIC, SysBand0C) come directly
// from the machine description.  Results print as one table per figure —
// Gupdates/s per core, rows = core counts — the same series the paper
// plots, plus a paper-vs-model footer of the caption's GFLOPS numbers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/stencil.hpp"
#include "topology/machine.hpp"

namespace nustencil::harness {

struct FigureSpec {
  std::string id;     ///< "fig04"
  std::string title;  ///< the paper's caption summary
  topology::MachineSpec machine;
  bool banded = false;
  int order = 1;

  bool weak = false;   ///< weak scaling: `domain` is the per-core cube edge
  Index domain = 160;  ///< cube edge (paper scale)
  std::vector<int> cores;
  std::vector<std::string> series;  ///< reference lines + scheme names, in
                                    ///< the paper's legend order

  /// Caption's "GFLOPS achieved with max cores" per series (total GFLOPS).
  std::map<std::string, double> paper_gflops_at_max;
};

struct FigureOptions {
  Index sim_domain = 40;  ///< scaled-down cube edge for measurement runs
  long sim_steps = 6;     ///< scaled-down time steps for measurement runs
  long paper_steps = 100;
  bool csv = false;       ///< additionally emit CSV
  bool quick = true;      ///< false (--full): measure at paper scale
  int reps = 1;           ///< measurement repetitions per point; the
                          ///< median-locality repetition feeds the model
  std::string svg;        ///< non-empty: write the chart to this file
};

/// Parses common bench options (--csv, --full, --domain N, --steps N,
/// --reps N).
FigureOptions parse_options(int argc, char** argv);

struct FigureResult {
  Table table;                                      ///< pretty-printable
  std::vector<int> cores;                           ///< row keys
  std::map<std::string, std::vector<double>> values;  ///< per-series Gup/s/core
};

/// Runs one figure end to end (Gupdates/s per core, one column per series).
FigureResult run_figure(const FigureSpec& spec, const FigureOptions& options);

/// Prints the table, the paper-vs-model footer, and (with options.csv)
/// the CSV block. Convenience main body for the fig* bench binaries.
int figure_main(const FigureSpec& spec, int argc, char** argv);

/// The paper's standard series list for the constant-stencil figures.
std::vector<std::string> constant_series();

/// ... for the banded-matrix figures (PeakDP omitted, as in the paper).
std::vector<std::string> banded_series();

/// ... for the scheme-comparison figures 20-22.
std::vector<std::string> comparison_series();

/// Core-count sweeps of the two machines.
std::vector<int> opteron_cores();
std::vector<int> xeon_cores();

}  // namespace nustencil::harness
