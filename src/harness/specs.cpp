#include "harness/specs.hpp"
#include <limits>

#include <iostream>

#include "report/svg_chart.hpp"

namespace nustencil::harness {

namespace {

FigureSpec constant_figure(std::string id, std::string title, topology::MachineSpec m,
                           bool weak, Index domain,
                           std::map<std::string, double> paper) {
  FigureSpec s;
  s.id = std::move(id);
  s.title = std::move(title);
  s.machine = std::move(m);
  s.weak = weak;
  s.domain = domain;
  s.cores = s.machine.cores() == 16 ? opteron_cores() : xeon_cores();
  s.series = constant_series();
  s.paper_gflops_at_max = std::move(paper);
  return s;
}

FigureSpec banded_figure(std::string id, std::string title, topology::MachineSpec m,
                         bool weak, Index domain, std::map<std::string, double> paper) {
  FigureSpec s = constant_figure(std::move(id), std::move(title), std::move(m), weak,
                                 domain, std::move(paper));
  s.banded = true;
  s.series = banded_series();
  return s;
}

}  // namespace

FigureSpec fig04() {
  return constant_figure("fig04", "weak scaling, constant 7-point, 200^3/core",
                         topology::opteron8222(), /*weak=*/true, 200,
                         {{"PeakDP", 95.3},
                          {"LL1B0C", 37.7},
                          {"nuCORALS", 22.4},
                          {"nuCATS", 26.8},
                          {"SysBIC", 13.2},
                          {"NaiveSSE", 4.6},
                          {"SysB0C", 3.3}});
}

FigureSpec fig05() {
  return constant_figure("fig05", "weak scaling, constant 7-point, 200^3/core",
                         topology::xeonX7550(), /*weak=*/true, 200,
                         {{"PeakDP", 202.5},
                          {"LL1B0C", 119.6},
                          {"nuCORALS", 83.4},
                          {"nuCATS", 92.7},
                          {"SysBIC", 51.2},
                          {"NaiveSSE", 22.9},
                          {"SysB0C", 12.7}});
}

FigureSpec fig06() {
  return constant_figure("fig06", "strong scaling, constant 7-point, 160^3",
                         topology::opteron8222(), /*weak=*/false, 160,
                         {{"PeakDP", 95.3},
                          {"LL1B0C", 37.7},
                          {"nuCORALS", 24.9},
                          {"nuCATS", 22.5},
                          {"SysBIC", 13.2},
                          {"NaiveSSE", 6.9},
                          {"SysB0C", 3.3}});
}

FigureSpec fig07() {
  return constant_figure("fig07", "strong scaling, constant 7-point, 160^3",
                         topology::xeonX7550(), /*weak=*/false, 160,
                         {{"PeakDP", 202.5},
                          {"LL1B0C", 119.6},
                          {"nuCORALS", 104.8},
                          {"nuCATS", 84.5},
                          {"SysBIC", 51.2},
                          {"NaiveSSE", 44.7},
                          {"SysB0C", 12.7}});
}

FigureSpec fig08() {
  return constant_figure("fig08", "strong scaling, constant 7-point, 500^3",
                         topology::opteron8222(), /*weak=*/false, 500,
                         {{"PeakDP", 95.3},
                          {"LL1B0C", 37.7},
                          {"nuCORALS", 22.4},
                          {"nuCATS", 26.8},
                          {"SysBIC", 13.2},
                          {"NaiveSSE", 4.6},
                          {"SysB0C", 3.3}});
}

FigureSpec fig09() {
  return constant_figure("fig09", "strong scaling, constant 7-point, 500^3",
                         topology::xeonX7550(), /*weak=*/false, 500,
                         {{"PeakDP", 202.5},
                          {"LL1B0C", 119.6},
                          {"nuCORALS", 85.9},
                          {"nuCATS", 107.6},
                          {"SysBIC", 51.2},
                          {"NaiveSSE", 22.9},
                          {"SysB0C", 12.7}});
}

FigureSpec fig10() {
  return banded_figure("fig10", "weak scaling, 7-band matrix, 200^3/core",
                       topology::opteron8222(), /*weak=*/true, 200,
                       {{"LL1B0C", 20.1},
                        {"nuCORALS", 3.4},
                        {"nuCATS", 3.6},
                        {"SysBIC", 2.9},
                        {"NaiveSSE", 1.7},
                        {"SysB0C", 1.8}});
}

FigureSpec fig11() {
  return banded_figure("fig11", "weak scaling, 7-band matrix, 200^3/core",
                       topology::xeonX7550(), /*weak=*/true, 200,
                       {{"LL1B0C", 63.8},
                        {"nuCORALS", 33.6},
                        {"nuCATS", 17.7},
                        {"SysBIC", 11.3},
                        {"NaiveSSE", 8.9},
                        {"SysB0C", 6.8}});
}

FigureSpec fig12() {
  return banded_figure("fig12", "strong scaling, 7-band matrix, 160^3",
                       topology::opteron8222(), /*weak=*/false, 160,
                       {{"LL1B0C", 20.1},
                        {"nuCORALS", 5.6},
                        {"nuCATS", 6.0},
                        {"SysBIC", 2.9},
                        {"NaiveSSE", 1.7},
                        {"SysB0C", 1.8}});
}

FigureSpec fig13() {
  return banded_figure("fig13", "strong scaling, 7-band matrix, 160^3",
                       topology::xeonX7550(), /*weak=*/false, 160,
                       {{"LL1B0C", 63.8},
                        {"nuCORALS", 29.4},
                        {"nuCATS", 20.4},
                        {"SysBIC", 11.3},
                        {"NaiveSSE", 8.6},
                        {"SysB0C", 6.8}});
}

FigureSpec fig14() {
  return banded_figure("fig14", "strong scaling, 7-band matrix, 500^3",
                       topology::opteron8222(), /*weak=*/false, 500,
                       {{"LL1B0C", 20.1},
                        {"nuCORALS", 3.4},
                        {"nuCATS", 3.5},
                        {"SysBIC", 2.9},
                        {"NaiveSSE", 1.7},
                        {"SysB0C", 1.8}});
}

FigureSpec fig15() {
  return banded_figure("fig15", "strong scaling, 7-band matrix, 500^3",
                       topology::xeonX7550(), /*weak=*/false, 500,
                       {{"LL1B0C", 63.8},
                        {"nuCORALS", 33.8},
                        {"nuCATS", 21.6},
                        {"SysBIC", 11.3},
                        {"NaiveSSE", 8.9},
                        {"SysB0C", 6.8}});
}

FigureSpec fig20() {
  FigureSpec s = constant_figure("fig20", "scheme comparison, weak 200^3/core",
                                 topology::xeonX7550(), /*weak=*/true, 200,
                                 {{"nuCORALS", 83.4},
                                  {"nuCATS", 92.7},
                                  {"CATS", 52.0},
                                  {"CORALS", 16.7},
                                  {"Pochoir", 29.9},
                                  {"PLuTo", 21.3},
                                  {"NaiveSSE", 22.9}});
  s.series = comparison_series();
  return s;
}

FigureSpec fig21() {
  FigureSpec s = constant_figure("fig21", "scheme comparison, strong 500^3",
                                 topology::xeonX7550(), /*weak=*/false, 500,
                                 {{"nuCORALS", 85.9},
                                  {"nuCATS", 107.6},
                                  {"CATS", 42.9},
                                  {"CORALS", 15.3},
                                  {"Pochoir", 27.3},
                                  {"PLuTo", 22.1},
                                  {"NaiveSSE", 22.9}});
  s.series = comparison_series();
  return s;
}

FigureSpec fig22() {
  FigureSpec s = constant_figure("fig22", "scheme comparison, strong 160^3",
                                 topology::xeonX7550(), /*weak=*/false, 160,
                                 {{"nuCORALS", 104.8},
                                  {"nuCATS", 84.5},
                                  {"CATS", 40.3},
                                  {"CORALS", 7.2},
                                  {"Pochoir", 16.9},
                                  {"PLuTo", 13.0},
                                  {"NaiveSSE", 44.7}});
  s.series = comparison_series();
  return s;
}

HighOrderSpec fig16() {
  return {"fig16",
          "high order stencils (s=1,2,3), 160^3",
          topology::opteron8222(),
          160,
          opteron_cores(),
          {{"nuCORALS s=1", 24.9},
           {"nuCATS s=1", 22.5},
           {"nuCORALS s=2", 28.9},
           {"nuCATS s=2", 23.2},
           {"nuCORALS s=3", 29.6},
           {"nuCATS s=3", 22.8}}};
}

HighOrderSpec fig17() {
  return {"fig17",
          "high order stencils (s=1,2,3), 160^3",
          topology::xeonX7550(),
          160,
          xeon_cores(),
          {{"nuCORALS s=1", 104.8},
           {"nuCATS s=1", 84.5},
           {"nuCORALS s=2", 121.0},
           {"nuCATS s=2", 94.2},
           {"nuCORALS s=3", 127.0},
           {"nuCATS s=3", 100.3}}};
}

HighOrderSpec fig18() {
  return {"fig18",
          "high order stencils (s=1,2,3), 500^3",
          topology::opteron8222(),
          500,
          opteron_cores(),
          {{"nuCORALS s=1", 22.4},
           {"nuCATS s=1", 26.8},
           {"nuCORALS s=2", 19.4},
           {"nuCATS s=2", 25.9},
           {"nuCORALS s=3", 18.9},
           {"nuCATS s=3", 23.5}}};
}

HighOrderSpec fig19() {
  return {"fig19",
          "high order stencils (s=1,2,3), 500^3",
          topology::xeonX7550(),
          500,
          xeon_cores(),
          {{"nuCORALS s=1", 85.9},
           {"nuCATS s=1", 107.6},
           {"nuCORALS s=2", 105.4},
           {"nuCATS s=2", 100.9},
           {"nuCORALS s=3", 107.7},
           {"nuCATS s=3", 91.5}}};
}

int high_order_main(const HighOrderSpec& spec, int argc, char** argv) {
  try {
    const FigureOptions options = parse_options(argc, argv);
    Table table(spec.id + ": " + spec.title + " [" + spec.machine.name +
                "] (Gupdates/s per core)");
    std::vector<std::string> header = {"cores"};
    std::map<std::string, std::vector<double>> merged;
    std::map<std::string, int> flops_of;
    for (int order = 1; order <= 3; ++order) {
      FigureSpec sub;
      sub.id = spec.id;
      sub.title = spec.title;
      sub.machine = spec.machine;
      sub.order = order;
      sub.weak = false;
      sub.domain = spec.domain;
      sub.cores = spec.cores;
      sub.series = {"nuCORALS", "nuCATS"};
      const FigureResult r = run_figure(sub, options);
      for (const auto& name : sub.series) {
        const std::string label = name + " s=" + std::to_string(order);
        header.push_back(label);
        merged[label] = r.values.at(name);
        flops_of[label] = core::StencilSpec::stable_star(3, order).flops();
      }
    }
    table.set_header(header);
    for (std::size_t i = 0; i < spec.cores.size(); ++i) {
      std::vector<double> row;
      for (std::size_t c = 1; c < header.size(); ++c) row.push_back(merged[header[c]][i]);
      table.add_row(std::to_string(spec.cores[i]), std::move(row));
    }
    table.print(std::cout);
    if (options.csv) table.print_csv(std::cout);
    if (!options.svg.empty()) {
      report::ChartSpec chart;
      chart.title = spec.id + ": " + spec.title + " [" + spec.machine.name + "]";
      chart.x_label = "number of cores";
      chart.y_label = "Gupdates/s per core";
      for (int n : spec.cores) chart.x_ticks.push_back(std::to_string(n));
      for (std::size_t c = 1; c < header.size(); ++c)
        chart.series.push_back({header[c], merged[header[c]]});
      report::write_svg(chart, options.svg);
      std::cout << "wrote " << options.svg << '\n';
    }

    Table cmp("paper vs model: total GFLOPS at " + std::to_string(spec.cores.back()) +
              " cores");
    cmp.set_header({"series", "paper", "model", "model/paper"});
    for (const auto& [label, paper] : spec.paper_gflops_at_max) {
      const auto it = merged.find(label);
      double model = std::numeric_limits<double>::quiet_NaN();
      if (it != merged.end() && !it->second.empty())
        model = it->second.back() * flops_of[label] * spec.cores.back();
      cmp.add_row(label, {paper, model, model / paper});
    }
    std::cout << '\n';
    cmp.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace nustencil::harness
