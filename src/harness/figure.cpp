#include "harness/figure.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>

#include "common/error.hpp"
#include "perf/model.hpp"
#include "report/svg_chart.hpp"
#include "schemes/scheme.hpp"

namespace nustencil::harness {

namespace {

const std::vector<std::string> kReferenceLines = {"PeakDP", "LL1B0C", "SysBIC", "SysB0C"};

bool is_reference(const std::string& name) {
  for (const auto& r : kReferenceLines)
    if (r == name) return true;
  return false;
}

core::StencilSpec figure_stencil(const FigureSpec& spec) {
  if (spec.banded) return core::StencilSpec::banded_star(3, spec.order);
  if (spec.order == 1) return core::StencilSpec::paper_3d7p();
  return core::StencilSpec::stable_star(3, spec.order);
}

/// Cube edge for `threads` cores: weak scaling grows the volume linearly
/// with the core count (one cube, not an agglomeration — Section IV-B).
Index edge_for(const FigureSpec& spec, Index base, int threads) {
  if (!spec.weak) return base;
  const double edge = static_cast<double>(base) * std::cbrt(static_cast<double>(threads));
  return static_cast<Index>(std::lround(edge));
}

double reference_line(const std::string& name, const topology::MachineSpec& m,
                      const core::StencilSpec& st, int threads) {
  if (name == "PeakDP") return perf::peak_dp_line(m, st, threads);
  if (name == "LL1B0C") return perf::ll1band0c_line(m, st, threads);
  if (name == "SysBIC") return perf::sysbandic_line(m, st, threads);
  if (name == "SysB0C") return perf::sysband0c_line(m, st, threads);
  throw Error("unknown reference line: " + name);
}

}  // namespace

FigureOptions parse_options(int argc, char** argv) {
  FigureOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) opt.csv = true;
    if (std::strcmp(argv[i], "--full") == 0) opt.quick = false;
    if (std::strcmp(argv[i], "--domain") == 0 && i + 1 < argc)
      opt.sim_domain = std::atol(argv[++i]);
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc)
      opt.sim_steps = std::atol(argv[++i]);
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      opt.reps = std::max(1, std::atoi(argv[++i]));
    if (std::strcmp(argv[i], "--svg") == 0 && i + 1 < argc) opt.svg = argv[++i];
  }
  return opt;
}

FigureResult run_figure(const FigureSpec& spec, const FigureOptions& options) {
  const core::StencilSpec stencil = figure_stencil(spec);
  FigureResult result{Table(spec.id + ": " + spec.title + " [" + spec.machine.name +
                            "] (Gupdates/s per core)"),
                      spec.cores,
                      {}};
  Table& table = result.table;
  std::vector<std::string> header = {"cores"};
  for (const auto& s : spec.series) header.push_back(s);
  table.set_header(header);

  for (int n : spec.cores) {
    std::vector<double> row;
    for (const auto& name : spec.series) {
      if (is_reference(name)) {
        row.push_back(reference_line(name, spec.machine, stencil, n));
        result.values[name].push_back(row.back());
        continue;
      }
      const auto scheme = schemes::make_scheme(name);

      // Measurement run (scaled down unless --full): real execution under
      // the virtual topology to measure locality and per-node demand.
      const Index sim_base = options.quick ? options.sim_domain : spec.domain;
      // Floor: every scheme needs tiles of at least 2s cells per thread.
      const Index sim_edge =
          std::max<Index>(edge_for(spec, sim_base, n), 2 * spec.order * n);
      schemes::RunConfig cfg;
      cfg.num_threads = n;
      cfg.timesteps = options.quick ? options.sim_steps : options.paper_steps;
      cfg.instrument = true;
      cfg.machine = &spec.machine;
      if (name == "CATS" || name == "nuCATS")
        cfg.boundary[2] = core::BoundaryKind::Dirichlet;
      // Match the page-to-domain granularity of the paper-scale runs.
      const Index paper_edge_now = edge_for(spec, spec.domain, n);
      Index page = 4096 * sim_edge / std::max<Index>(1, paper_edge_now);
      Index rounded = 64;
      while (rounded * 2 <= page && rounded < 4096) rounded *= 2;
      cfg.page_bytes = rounded;
      // --reps: repeat the measurement and feed the model the repetition
      // with the median locality — the measured quantity it consumes.
      std::vector<schemes::RunResult> runs;
      runs.reserve(static_cast<std::size_t>(options.reps));
      for (int rep = 0; rep < options.reps; ++rep) {
        core::Problem problem(Coord{sim_edge, sim_edge, sim_edge}, stencil);
        runs.push_back(schemes::make_scheme(name)->run(problem, cfg));
      }
      std::vector<std::size_t> order(runs.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::nth_element(order.begin(), order.begin() + order.size() / 2,
                       order.end(), [&](std::size_t x, std::size_t y) {
                         return runs[x].traffic.locality() <
                                runs[y].traffic.locality();
                       });
      const schemes::RunResult& run = runs[order[order.size() / 2]];

      // Analytic traffic at the paper's scale, model evaluation.
      const Index paper_edge = edge_for(spec, spec.domain, n);
      perf::ModelInput in;
      in.machine = &spec.machine;
      in.stencil = &stencil;
      in.threads = n;
      in.traffic = scheme->estimate_traffic(spec.machine,
                                            Coord{paper_edge, paper_edge, paper_edge},
                                            stencil, n, options.paper_steps);
      in.locality = run.traffic.locality();
      in.node_demand.assign(run.traffic.bytes_from_node.begin(),
                            run.traffic.bytes_from_node.end());
      const auto [sync_base, sync_socket] = perf::scheme_sync_overhead(name);
      in.sync_overhead = sync_base;
      in.sync_per_socket = sync_socket;
      row.push_back(perf::model_scheme(in).gupdates_per_core);
      result.values[name].push_back(row.back());
    }
    table.add_row(std::to_string(n), std::move(row));
  }
  return result;
}

int figure_main(const FigureSpec& spec, int argc, char** argv) {
  try {
    const FigureOptions options = parse_options(argc, argv);
    const FigureResult result = run_figure(spec, options);
    result.table.print(std::cout);
    if (options.csv) result.table.print_csv(std::cout);
    if (!options.svg.empty()) {
      report::ChartSpec chart;
      chart.title = spec.id + ": " + spec.title + " [" + spec.machine.name + "]";
      chart.x_label = "number of cores";
      chart.y_label = "Gupdates/s per core";
      for (int n : result.cores) chart.x_ticks.push_back(std::to_string(n));
      for (const auto& name : spec.series)
        chart.series.push_back({name, result.values.at(name)});
      report::write_svg(chart, options.svg);
      std::cout << "\nwrote " << options.svg << '\n';
    }

    if (!spec.paper_gflops_at_max.empty()) {
      const core::StencilSpec stencil = figure_stencil(spec);
      const int max_cores = spec.cores.back();
      Table cmp("paper vs model: total GFLOPS at " + std::to_string(max_cores) + " cores");
      cmp.set_header({"series", "paper", "model", "model/paper"});
      for (const auto& [series, paper_gflops] : spec.paper_gflops_at_max) {
        const auto it = result.values.find(series);
        double model_gflops = std::nan("");
        if (it != result.values.end() && !it->second.empty()) {
          model_gflops = it->second.back() * static_cast<double>(stencil.flops()) *
                         static_cast<double>(max_cores);
        }
        cmp.add_row(series, {paper_gflops, model_gflops, model_gflops / paper_gflops});
      }
      std::cout << '\n';
      cmp.print(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

std::vector<std::string> constant_series() {
  return {"PeakDP", "LL1B0C", "nuCORALS", "nuCATS", "SysBIC", "NaiveSSE", "SysB0C"};
}

std::vector<std::string> banded_series() {
  return {"LL1B0C", "nuCORALS", "nuCATS", "SysBIC", "NaiveSSE", "SysB0C"};
}

std::vector<std::string> comparison_series() {
  return {"nuCORALS", "nuCATS", "CATS", "CORALS", "Pochoir", "PLuTo", "NaiveSSE"};
}

std::vector<int> opteron_cores() { return {1, 2, 4, 8, 16}; }

std::vector<int> xeon_cores() { return {1, 2, 4, 8, 16, 32}; }

}  // namespace nustencil::harness
