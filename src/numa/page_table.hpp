// First-touch page ownership tracking — the heart of the simulated ccNUMA
// substrate.
//
// On the paper's machines the Linux kernel places each page on the NUMA
// node of the core that first touches it.  We reproduce that policy in
// software: allocations register a region, the schemes' initialisation
// passes claim page ranges for the (virtual) node of the touching thread,
// and during execution the traffic counters classify every access range as
// local or remote.  Which thread first-touches which page, and which
// thread later reads or writes it, is a property of the *algorithm*, so
// this measurement is exact even though the host has no NUMA hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace nustencil::numa {

inline constexpr std::int8_t kUnowned = -1;

using RegionId = std::size_t;

class PageTable {
 public:
  explicit PageTable(Index page_bytes = kPageBytes);

  /// Registers a contiguous allocation of `bytes` bytes; all pages start
  /// unowned. Returns a handle used by all later calls.
  RegionId register_region(std::string name, Index bytes);

  /// First-touch: assigns every still-unowned page overlapping
  /// [byte_begin, byte_end) to `node`.
  void first_touch(RegionId region, Index byte_begin, Index byte_end, int node);

  /// Deterministic first-touch: assigns every still-unowned page whose
  /// *first byte* lies in [byte_begin, byte_end) to `node`.  When the
  /// touch ranges of concurrent initialisers tile the region disjointly
  /// (as the schemes' per-tile init passes do), each page start falls in
  /// exactly one range, so a page straddling two ranges always goes to
  /// the owner of its first byte — independent of thread timing, unlike
  /// the overlap rule above where the race winner keeps the page.
  void first_touch_page_start(RegionId region, Index byte_begin, Index byte_end,
                              int node);

  /// Forces ownership of the overlapping pages to `node` regardless of any
  /// previous owner (models numa_move_pages / interleaved allocation).
  void place(RegionId region, Index byte_begin, Index byte_end, int node);

  /// Owner of the page containing `byte_offset` (kUnowned if untouched).
  int owner(RegionId region, Index byte_offset) const;

  /// Splits [byte_begin, byte_end) into per-node byte counts (index = node;
  /// the last slot of the result counts unowned bytes).
  void count_bytes_by_node(RegionId region, Index byte_begin, Index byte_end,
                           int num_nodes, std::vector<std::uint64_t>& out) const;

  /// Fraction of pages of `region` owned by `node` (0 when empty).
  double owned_fraction(RegionId region, int node) const;

  Index page_bytes() const { return page_bytes_; }
  Index region_bytes(RegionId region) const;
  const std::string& region_name(RegionId region) const;
  std::size_t num_regions() const { return regions_.size(); }

 private:
  struct Region {
    std::string name;
    Index bytes = 0;
    std::vector<std::int8_t> page_owner;
  };

  const Region& get(RegionId id) const {
    NUSTENCIL_CHECK(id < regions_.size(), "PageTable: bad region id");
    return regions_[id];
  }
  Region& get(RegionId id) {
    NUSTENCIL_CHECK(id < regions_.size(), "PageTable: bad region id");
    return regions_[id];
  }

  Index page_bytes_;
  std::vector<Region> regions_;
};

}  // namespace nustencil::numa
