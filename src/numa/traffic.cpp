#include "numa/traffic.hpp"

namespace nustencil::numa {

void TrafficStats::merge(const TrafficStats& o) {
  local_bytes += o.local_bytes;
  remote_bytes += o.remote_bytes;
  unowned_bytes += o.unowned_bytes;
  if (bytes_from_node.size() < o.bytes_from_node.size())
    bytes_from_node.resize(o.bytes_from_node.size(), 0);
  for (std::size_t i = 0; i < o.bytes_from_node.size(); ++i)
    bytes_from_node[i] += o.bytes_from_node[i];
}

TrafficRecorder::TrafficRecorder(const PageTable& pages, const VirtualTopology& topo,
                                 int num_threads)
    : pages_(&pages), topo_(&topo), per_thread_(static_cast<std::size_t>(num_threads)),
      scratch_(static_cast<std::size_t>(num_threads)) {
  for (auto& p : per_thread_)
    p.stats.bytes_from_node.assign(static_cast<std::size_t>(topo.num_nodes()), 0);
}

void TrafficRecorder::account(int tid, RegionId region, Index byte_begin, Index byte_end) {
  NUSTENCIL_DCHECK(tid >= 0 && tid < static_cast<int>(per_thread_.size()),
                   "TrafficRecorder: bad tid");
  auto& stats = per_thread_[static_cast<std::size_t>(tid)].stats;
  auto& by_node = scratch_[static_cast<std::size_t>(tid)];
  const int nodes = topo_->num_nodes();
  pages_->count_bytes_by_node(region, byte_begin, byte_end, nodes, by_node);
  const int my_node = topo_->node_of_thread(tid);
  for (int n = 0; n < nodes; ++n) {
    const std::uint64_t b = by_node[static_cast<std::size_t>(n)];
    if (b == 0) continue;
    stats.bytes_from_node[static_cast<std::size_t>(n)] += b;
    if (n == my_node)
      stats.local_bytes += b;
    else
      stats.remote_bytes += b;
  }
  stats.unowned_bytes += by_node[static_cast<std::size_t>(nodes)];
}

TrafficStats TrafficRecorder::collect() const {
  TrafficStats total;
  total.bytes_from_node.assign(static_cast<std::size_t>(topo_->num_nodes()), 0);
  for (const auto& p : per_thread_) total.merge(p.stats);
  return total;
}

}  // namespace nustencil::numa
