#include "numa/traffic.hpp"

#include <algorithm>

namespace nustencil::numa {

void TrafficStats::merge(const TrafficStats& o) {
  local_bytes += o.local_bytes;
  remote_bytes += o.remote_bytes;
  unowned_bytes += o.unowned_bytes;
  if (bytes_from_node.size() < o.bytes_from_node.size())
    bytes_from_node.resize(o.bytes_from_node.size(), 0);
  for (std::size_t i = 0; i < o.bytes_from_node.size(); ++i)
    bytes_from_node[i] += o.bytes_from_node[i];
  if (node_matrix.size() < o.node_matrix.size())
    node_matrix.resize(o.node_matrix.size(), 0);
  for (std::size_t i = 0; i < o.node_matrix.size(); ++i)
    node_matrix[i] += o.node_matrix[i];
  // Window i of each side aggregates into window i of the result; the
  // cumulative update counts add because they are per-thread progress.
  if (samples.size() < o.samples.size()) samples.resize(o.samples.size());
  for (std::size_t i = 0; i < o.samples.size(); ++i) {
    samples[i].updates += o.samples[i].updates;
    samples[i].local_bytes += o.samples[i].local_bytes;
    samples[i].remote_bytes += o.samples[i].remote_bytes;
  }
}

TrafficRecorder::TrafficRecorder(const PageTable& pages, const VirtualTopology& topo,
                                 int num_threads)
    : pages_(&pages), topo_(&topo), per_thread_(static_cast<std::size_t>(num_threads)),
      scratch_(static_cast<std::size_t>(num_threads)) {
  const std::size_t nodes = static_cast<std::size_t>(topo.num_nodes());
  for (int tid = 0; tid < num_threads; ++tid) {
    PerThread& p = per_thread_[static_cast<std::size_t>(tid)];
    p.stats.bytes_from_node.assign(nodes, 0);
    p.stats.node_matrix.assign(nodes * nodes, 0);
    p.node = topo.node_of_thread(tid);
  }
}

void TrafficRecorder::account(int tid, RegionId region, Index byte_begin, Index byte_end) {
  NUSTENCIL_DCHECK(tid >= 0 && tid < static_cast<int>(per_thread_.size()),
                   "TrafficRecorder: bad tid");
  PerThread& p = per_thread_[static_cast<std::size_t>(tid)];
  TrafficStats& stats = p.stats;
  auto& by_node = scratch_[static_cast<std::size_t>(tid)];
  const int nodes = topo_->num_nodes();
  pages_->count_bytes_by_node(region, byte_begin, byte_end, nodes, by_node);
  const int my_node = p.node;
  std::uint64_t* matrix_row =
      stats.node_matrix.data() +
      static_cast<std::size_t>(my_node) * static_cast<std::size_t>(nodes);
  std::uint64_t attributed = 0;
  for (int n = 0; n < nodes; ++n) {
    const std::uint64_t b = by_node[static_cast<std::size_t>(n)];
    if (b == 0) continue;
    attributed += b;
    stats.bytes_from_node[static_cast<std::size_t>(n)] += b;
    matrix_row[n] += b;
    if (n == my_node)
      stats.local_bytes += b;
    else
      stats.remote_bytes += b;
  }
  stats.unowned_bytes += by_node[static_cast<std::size_t>(nodes)];
  // Exactly-once attribution: the per-node split (plus the unowned
  // bucket) must cover the range — no byte counted twice when the range
  // straddles differently-owned pages, none dropped.
  attributed += by_node[static_cast<std::size_t>(nodes)];
  NUSTENCIL_DCHECK(attributed == static_cast<std::uint64_t>(byte_end - byte_begin),
                   "TrafficRecorder: page-straddling range not attributed exactly once");
}

void TrafficRecorder::close_window(PerThread& p) {
  LocalitySample s;
  s.updates = p.cum_updates;
  s.local_bytes = p.stats.local_bytes - p.sampled_local;
  s.remote_bytes = p.stats.remote_bytes - p.sampled_remote;
  p.samples.push_back(s);
  p.sampled_local = p.stats.local_bytes;
  p.sampled_remote = p.stats.remote_bytes;
  p.window_updates = 0;
}

TrafficStats TrafficRecorder::collect() const {
  const std::size_t nodes = static_cast<std::size_t>(topo_->num_nodes());
  TrafficStats total;
  total.bytes_from_node.assign(nodes, 0);
  total.node_matrix.assign(nodes * nodes, 0);
  for (const auto& p : per_thread_) {
    TrafficStats stats = p.stats;
    stats.samples = p.samples;
    // A partially filled trailing window still carries signal; flush it
    // so short runs (and the run tail) appear in the series.
    if (p.window_updates > 0 &&
        (p.stats.local_bytes > p.sampled_local ||
         p.stats.remote_bytes > p.sampled_remote)) {
      LocalitySample tail;
      tail.updates = p.cum_updates;
      tail.local_bytes = p.stats.local_bytes - p.sampled_local;
      tail.remote_bytes = p.stats.remote_bytes - p.sampled_remote;
      stats.samples.push_back(tail);
    }
    total.merge(stats);
  }
  return total;
}

}  // namespace nustencil::numa
