// Per-thread NUMA traffic accounting.
//
// Schemes call account_read/account_write at tile granularity with the
// byte ranges they touch; the counters classify each range against the
// first-touch page table as local (page owned by the accessing thread's
// node) or remote, and record the per-node demand distribution the
// performance model needs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "numa/page_table.hpp"
#include "topology/machine.hpp"

namespace nustencil::numa {

/// Thread-to-core placement policies.  The paper pins compactly — "we pin
/// the thread contexts to cores on one socket, before occupying a new
/// socket" (Section IV-B) — so that scaling studies do not exploit another
/// socket's bandwidth early.  Scatter (round-robin across sockets) is the
/// opposite policy, provided for the pinning ablation.
enum class PinPolicy { Compact, Scatter };

/// Placement of logical threads onto the simulated machine.
class VirtualTopology {
 public:
  explicit VirtualTopology(const topology::MachineSpec& machine,
                           PinPolicy policy = PinPolicy::Compact)
      : machine_(&machine), policy_(policy) {}

  int node_of_thread(int tid) const {
    if (policy_ == PinPolicy::Scatter) return tid % machine_->numa_nodes();
    return machine_->node_of_core(tid);
  }
  int num_nodes() const { return machine_->numa_nodes(); }
  const topology::MachineSpec& machine() const { return *machine_; }
  PinPolicy policy() const { return policy_; }

 private:
  const topology::MachineSpec* machine_;
  PinPolicy policy_ = PinPolicy::Compact;
};

/// One window of the locality time-series: the owned traffic a window of
/// `updates` cell updates demanded, split local/remote.  Samples make the
/// first-touch warm-up and the steady-state affinity separately visible
/// instead of folding the whole run into one scalar.
struct LocalitySample {
  std::uint64_t updates = 0;      ///< cumulative cell updates at sample time
  std::uint64_t local_bytes = 0;  ///< owned node-local bytes in this window
  std::uint64_t remote_bytes = 0; ///< owned cross-node bytes in this window

  double locality() const {
    const std::uint64_t owned = local_bytes + remote_bytes;
    return owned == 0 ? 1.0 : static_cast<double>(local_bytes) / static_cast<double>(owned);
  }
};

/// Aggregated traffic of one run.
struct TrafficStats {
  std::uint64_t local_bytes = 0;
  std::uint64_t remote_bytes = 0;
  std::uint64_t unowned_bytes = 0;
  /// Bytes demanded from each NUMA node's memory (by any thread).
  std::vector<std::uint64_t> bytes_from_node;

  /// Full node-to-node demand matrix, row-major `nodes x nodes`:
  /// entry [consumer * nodes + owner] counts the owned bytes threads on
  /// `consumer` demanded from pages owned by `owner`.  The diagonal sums
  /// to local_bytes, the off-diagonal to remote_bytes.
  std::vector<std::uint64_t> node_matrix;

  /// Windowed locality time-series (empty unless sampling was enabled);
  /// window i aggregates window i of every thread.
  std::vector<LocalitySample> samples;

  int num_nodes() const { return static_cast<int>(bytes_from_node.size()); }

  std::uint64_t matrix_at(int consumer, int owner) const {
    return node_matrix[static_cast<std::size_t>(consumer) *
                           static_cast<std::size_t>(num_nodes()) +
                       static_cast<std::size_t>(owner)];
  }

  std::uint64_t total_bytes() const { return local_bytes + remote_bytes + unowned_bytes; }

  /// Fraction of owned traffic that was node-local (1.0 when no traffic).
  double locality() const {
    const std::uint64_t owned = local_bytes + remote_bytes;
    return owned == 0 ? 1.0 : static_cast<double>(local_bytes) / static_cast<double>(owned);
  }

  void merge(const TrafficStats& o);
};

/// One counter per thread; cache-line padded, merged after the run.
class TrafficRecorder {
 public:
  TrafficRecorder(const PageTable& pages, const VirtualTopology& topo, int num_threads);

  /// Enables the windowed locality time-series: every thread closes a
  /// window (pushing one LocalitySample) each time it has performed
  /// another `updates` cell updates, as reported through tick_updates().
  /// 0 (the default) disables sampling.
  void set_sample_window(std::uint64_t updates) { sample_window_ = updates; }
  std::uint64_t sample_window() const { return sample_window_; }

  /// Accounts `bytes(range)` of traffic by thread `tid` against the page
  /// ownership of [byte_begin, byte_end) in `region`.  Every byte of the
  /// range is attributed to exactly one node (or the unowned bucket),
  /// even when the range straddles differently-owned pages.
  void account(int tid, RegionId region, Index byte_begin, Index byte_end);

  /// Progress hook (executors call this once per tile): thread `tid` has
  /// performed another `updates` cell updates.  Closes the thread's
  /// sample window when it crosses the configured size; costs one branch
  /// when sampling is disabled.
  void tick_updates(int tid, std::uint64_t updates) {
    if (sample_window_ == 0) return;
    PerThread& p = per_thread_[static_cast<std::size_t>(tid)];
    p.window_updates += updates;
    p.cum_updates += updates;
    if (p.window_updates >= sample_window_) close_window(p);
  }

  /// Merged statistics over all threads.
  TrafficStats collect() const;

  /// Cumulative byte counters of thread `tid`'s private shard.  The
  /// shard is single-writer (only thread `tid` mutates it), so the
  /// owning thread may read its own values without synchronisation —
  /// the per-span counter sampler does, at leaf-span boundaries.  Other
  /// threads must only call this after the worker team has joined.
  void thread_bytes(int tid, std::uint64_t& local, std::uint64_t& remote,
                    std::uint64_t& unowned) const {
    const PerThread& p = per_thread_[static_cast<std::size_t>(tid)];
    local = p.stats.local_bytes;
    remote = p.stats.remote_bytes;
    unowned = p.stats.unowned_bytes;
  }

  const VirtualTopology& topology() const { return *topo_; }

 private:
  struct alignas(kCacheLineBytes) PerThread {
    TrafficStats stats;
    int node = 0;  ///< the thread's NUMA node (fixed by the topology)
    // Locality time-series state.
    std::uint64_t cum_updates = 0;
    std::uint64_t window_updates = 0;
    std::uint64_t sampled_local = 0;   ///< local_bytes at last window close
    std::uint64_t sampled_remote = 0;  ///< remote_bytes at last window close
    std::vector<LocalitySample> samples;
  };

  void close_window(PerThread& p);

  const PageTable* pages_;
  const VirtualTopology* topo_;
  std::uint64_t sample_window_ = 0;
  std::vector<PerThread> per_thread_;
  mutable std::vector<std::vector<std::uint64_t>> scratch_;  // per-thread scratch
};

}  // namespace nustencil::numa
