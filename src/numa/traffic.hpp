// Per-thread NUMA traffic accounting.
//
// Schemes call account_read/account_write at tile granularity with the
// byte ranges they touch; the counters classify each range against the
// first-touch page table as local (page owned by the accessing thread's
// node) or remote, and record the per-node demand distribution the
// performance model needs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "numa/page_table.hpp"
#include "topology/machine.hpp"

namespace nustencil::numa {

/// Thread-to-core placement policies.  The paper pins compactly — "we pin
/// the thread contexts to cores on one socket, before occupying a new
/// socket" (Section IV-B) — so that scaling studies do not exploit another
/// socket's bandwidth early.  Scatter (round-robin across sockets) is the
/// opposite policy, provided for the pinning ablation.
enum class PinPolicy { Compact, Scatter };

/// Placement of logical threads onto the simulated machine.
class VirtualTopology {
 public:
  explicit VirtualTopology(const topology::MachineSpec& machine,
                           PinPolicy policy = PinPolicy::Compact)
      : machine_(&machine), policy_(policy) {}

  int node_of_thread(int tid) const {
    if (policy_ == PinPolicy::Scatter) return tid % machine_->numa_nodes();
    return machine_->node_of_core(tid);
  }
  int num_nodes() const { return machine_->numa_nodes(); }
  const topology::MachineSpec& machine() const { return *machine_; }
  PinPolicy policy() const { return policy_; }

 private:
  const topology::MachineSpec* machine_;
  PinPolicy policy_ = PinPolicy::Compact;
};

/// Aggregated traffic of one run.
struct TrafficStats {
  std::uint64_t local_bytes = 0;
  std::uint64_t remote_bytes = 0;
  std::uint64_t unowned_bytes = 0;
  /// Bytes demanded from each NUMA node's memory (by any thread).
  std::vector<std::uint64_t> bytes_from_node;

  std::uint64_t total_bytes() const { return local_bytes + remote_bytes + unowned_bytes; }

  /// Fraction of owned traffic that was node-local (1.0 when no traffic).
  double locality() const {
    const std::uint64_t owned = local_bytes + remote_bytes;
    return owned == 0 ? 1.0 : static_cast<double>(local_bytes) / static_cast<double>(owned);
  }

  void merge(const TrafficStats& o);
};

/// One counter per thread; cache-line padded, merged after the run.
class TrafficRecorder {
 public:
  TrafficRecorder(const PageTable& pages, const VirtualTopology& topo, int num_threads);

  /// Accounts `bytes(range)` of traffic by thread `tid` against the page
  /// ownership of [byte_begin, byte_end) in `region`.
  void account(int tid, RegionId region, Index byte_begin, Index byte_end);

  /// Merged statistics over all threads.
  TrafficStats collect() const;

  const VirtualTopology& topology() const { return *topo_; }

 private:
  struct alignas(kCacheLineBytes) PerThread {
    TrafficStats stats;
  };

  const PageTable* pages_;
  const VirtualTopology* topo_;
  std::vector<PerThread> per_thread_;
  mutable std::vector<std::vector<std::uint64_t>> scratch_;  // per-thread scratch
};

}  // namespace nustencil::numa
