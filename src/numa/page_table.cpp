#include "numa/page_table.hpp"

#include <algorithm>

namespace nustencil::numa {

PageTable::PageTable(Index page_bytes) : page_bytes_(page_bytes) {
  NUSTENCIL_CHECK(page_bytes > 0, "PageTable: page size must be positive");
}

RegionId PageTable::register_region(std::string name, Index bytes) {
  NUSTENCIL_CHECK(bytes >= 0, "PageTable: negative region size");
  Region r;
  r.name = std::move(name);
  r.bytes = bytes;
  r.page_owner.assign(static_cast<std::size_t>(ceil_div(bytes, page_bytes_)), kUnowned);
  regions_.push_back(std::move(r));
  return regions_.size() - 1;
}

void PageTable::first_touch(RegionId region, Index byte_begin, Index byte_end, int node) {
  Region& r = get(region);
  NUSTENCIL_CHECK(byte_begin >= 0 && byte_end <= r.bytes && byte_begin <= byte_end,
                  "PageTable::first_touch: range out of region");
  NUSTENCIL_CHECK(node >= 0 && node < 127, "PageTable::first_touch: bad node");
  if (byte_begin == byte_end) return;
  const Index p0 = byte_begin / page_bytes_;
  const Index p1 = (byte_end - 1) / page_bytes_;
  for (Index p = p0; p <= p1; ++p) {
    auto& owner = r.page_owner[static_cast<std::size_t>(p)];
    if (owner == kUnowned) owner = static_cast<std::int8_t>(node);
  }
}

void PageTable::first_touch_page_start(RegionId region, Index byte_begin,
                                       Index byte_end, int node) {
  Region& r = get(region);
  NUSTENCIL_CHECK(byte_begin >= 0 && byte_end <= r.bytes && byte_begin <= byte_end,
                  "PageTable::first_touch_page_start: range out of region");
  NUSTENCIL_CHECK(node >= 0 && node < 127, "PageTable::first_touch_page_start: bad node");
  if (byte_begin == byte_end) return;
  // First page whose start byte is >= byte_begin; last page start < byte_end.
  const Index p0 = ceil_div(byte_begin, page_bytes_);
  const Index p1 = (byte_end - 1) / page_bytes_;
  for (Index p = p0; p <= p1; ++p) {
    auto& owner = r.page_owner[static_cast<std::size_t>(p)];
    if (owner == kUnowned) owner = static_cast<std::int8_t>(node);
  }
}

void PageTable::place(RegionId region, Index byte_begin, Index byte_end, int node) {
  Region& r = get(region);
  NUSTENCIL_CHECK(byte_begin >= 0 && byte_end <= r.bytes && byte_begin <= byte_end,
                  "PageTable::place: range out of region");
  if (byte_begin == byte_end) return;
  const Index p0 = byte_begin / page_bytes_;
  const Index p1 = (byte_end - 1) / page_bytes_;
  for (Index p = p0; p <= p1; ++p)
    r.page_owner[static_cast<std::size_t>(p)] = static_cast<std::int8_t>(node);
}

int PageTable::owner(RegionId region, Index byte_offset) const {
  const Region& r = get(region);
  NUSTENCIL_CHECK(byte_offset >= 0 && byte_offset < r.bytes,
                  "PageTable::owner: offset out of region");
  return r.page_owner[static_cast<std::size_t>(byte_offset / page_bytes_)];
}

void PageTable::count_bytes_by_node(RegionId region, Index byte_begin, Index byte_end,
                                    int num_nodes, std::vector<std::uint64_t>& out) const {
  const Region& r = get(region);
  NUSTENCIL_CHECK(byte_begin >= 0 && byte_end <= r.bytes && byte_begin <= byte_end,
                  "PageTable::count_bytes_by_node: range out of region");
  out.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  Index pos = byte_begin;
  while (pos < byte_end) {
    const Index page = pos / page_bytes_;
    const Index page_end = std::min(byte_end, (page + 1) * page_bytes_);
    const int node = r.page_owner[static_cast<std::size_t>(page)];
    const std::size_t slot =
        node == kUnowned ? static_cast<std::size_t>(num_nodes) : static_cast<std::size_t>(node);
    NUSTENCIL_CHECK(node == kUnowned || node < num_nodes,
                    "PageTable::count_bytes_by_node: owner beyond num_nodes");
    out[slot] += static_cast<std::uint64_t>(page_end - pos);
    pos = page_end;
  }
}

double PageTable::owned_fraction(RegionId region, int node) const {
  const Region& r = get(region);
  if (r.page_owner.empty()) return 0.0;
  std::size_t n = 0;
  for (std::int8_t o : r.page_owner)
    if (o == node) ++n;
  return static_cast<double>(n) / static_cast<double>(r.page_owner.size());
}

Index PageTable::region_bytes(RegionId region) const { return get(region).bytes; }

const std::string& PageTable::region_name(RegionId region) const { return get(region).name; }

}  // namespace nustencil::numa
