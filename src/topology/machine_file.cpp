#include "topology/machine_file.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace nustencil::topology {

namespace {

[[noreturn]] void fail(const std::string& origin, int line, const std::string& what) {
  throw Error(origin + ":" + std::to_string(line) + ": " + what);
}

std::string trim(const std::string& s) {
  const auto a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  const auto b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

}  // namespace

MachineSpec parse_machine(std::istream& in, const std::string& origin) {
  MachineSpec m;
  m.name.clear();
  m.caches.clear();
  m.sys_bw_scaling.anchors.clear();
  bool has_sys_bw = false, has_peak = false;

  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(origin, lineno, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) fail(origin, lineno, "empty value for '" + key + "'");

    std::istringstream vs(value);
    if (key == "name") {
      m.name = value;
    } else if (key == "sockets") {
      vs >> m.sockets;
    } else if (key == "cores_per_socket") {
      vs >> m.cores_per_socket;
    } else if (key == "ghz") {
      vs >> m.ghz;
    } else if (key == "sys_bw_gbs") {
      vs >> m.sys_bw_gbs;
      has_sys_bw = true;
    } else if (key == "peak_dp_gflops") {
      vs >> m.peak_dp_gflops;
      has_peak = true;
    } else if (key == "remote_penalty") {
      vs >> m.remote_penalty;
    } else if (key == "cache") {
      CacheLevel c;
      vs >> c.name >> c.size_bytes >> c.shared_by_cores >> c.line_bytes >>
          c.associativity >> c.aggregate_bw_gbs;
      if (vs.fail()) {
        fail(origin, lineno,
             "cache expects: <name> <size_bytes> <shared_by> <line> <assoc> <bw_gbs>");
      }
      m.caches.push_back(c);
    } else if (key == "scaling") {
      std::string pair;
      while (vs >> pair) {
        const auto colon = pair.find(':');
        if (colon == std::string::npos)
          fail(origin, lineno, "scaling expects <cores>:<factor> pairs");
        const int cores = std::atoi(pair.substr(0, colon).c_str());
        const double factor = std::atof(pair.substr(colon + 1).c_str());
        if (cores < 1 || factor <= 0.0)
          fail(origin, lineno, "scaling pair '" + pair +
                                   "' must have cores >= 1 and factor > 0");
        m.sys_bw_scaling.anchors.emplace_back(cores, factor);
      }
    } else {
      fail(origin, lineno, "unknown key '" + key + "'");
    }
    if (key != "cache" && key != "scaling" && key != "name" && vs.fail())
      fail(origin, lineno, "malformed value for '" + key + "'");
  }

  if (m.name.empty()) fail(origin, lineno, "missing required key 'name'");
  if (m.caches.empty()) fail(origin, lineno, "need at least one 'cache' line");
  if (!has_sys_bw) fail(origin, lineno, "missing required key 'sys_bw_gbs'");
  if (!has_peak) fail(origin, lineno, "missing required key 'peak_dp_gflops'");
  NUSTENCIL_CHECK(m.sockets >= 1 && m.cores_per_socket >= 1,
                  origin + ": sockets and cores_per_socket must be >= 1");
  if (m.sys_bw_scaling.anchors.empty())
    m.sys_bw_scaling.anchors = {{1, 1.0},
                                {m.cores(), static_cast<double>(m.cores()) * 0.5}};
  for (std::size_t i = 1; i < m.sys_bw_scaling.anchors.size(); ++i)
    NUSTENCIL_CHECK(m.sys_bw_scaling.anchors[i].first >
                        m.sys_bw_scaling.anchors[i - 1].first,
                    origin + ": scaling anchors must have increasing core counts");
  return m;
}

MachineSpec load_machine(const std::string& path) {
  std::ifstream in(path);
  NUSTENCIL_CHECK(in.good(), "load_machine: cannot open " + path);
  return parse_machine(in, path);
}

}  // namespace nustencil::topology
