// Machine descriptions for the performance model.
//
// The paper evaluates on two real ccNUMA machines (Table I):
//   * AMD Opteron 8222 "Santa Rosa": 8 sockets x 2 cores, 3.0 GHz,
//     L1 64 KiB + L2 1 MiB per core (L2 is the last level),
//     measured L1 675.3 GB/s, L2 185.7 GB/s, system 11.9 GB/s,
//     peak DP 95.3 GFLOPS.
//   * Intel Xeon X7550 "Beckton": 4 sockets x 8 cores, 2.0 GHz,
//     L1 32 KiB + L2 256 KiB per core, L3 2.25 MiB/core (18 MiB shared
//     per socket), measured L1 819.1 GB/s, L2 642.8 GB/s, L3 588.6 GB/s,
//     system 63.0 GB/s, peak DP 202.5 GFLOPS.
//
// MachineSpec encodes everything the model needs.  Aggregate numbers are
// for the fully populated machine; scaling with the number of active cores
// is described by BandwidthCurve (bandwidth.hpp).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace nustencil::topology {

/// One level of the cache hierarchy.
struct CacheLevel {
  std::string name;          ///< "L1", "L2", "L3"
  Index size_bytes;          ///< capacity per sharing group
  int shared_by_cores;       ///< 1 = private per core, >1 = shared
  Index line_bytes;          ///< cache line size
  int associativity;         ///< ways (0 = fully associative)
  double aggregate_bw_gbs;   ///< measured bandwidth, all cores active
};

/// Anchor points (cores -> bandwidth factor relative to 1 core) of the
/// measured STREAM COPY scaling curve; geometric interpolation in between.
struct BandwidthCurve {
  std::vector<std::pair<int, double>> anchors;

  /// Scaling factor at `cores` active cores (>= 1).
  double factor(int cores) const;
};

struct MachineSpec {
  std::string name;
  int sockets = 1;
  int cores_per_socket = 1;
  double ghz = 1.0;

  /// L1 first; the last entry is the last-level cache (LL1 in the paper).
  std::vector<CacheLevel> caches;

  double sys_bw_gbs = 0.0;        ///< aggregate system bandwidth, all cores
  double peak_dp_gflops = 0.0;    ///< aggregate measured DP peak, all cores
  BandwidthCurve sys_bw_scaling;  ///< STREAM COPY scaling (Fig. 3)

  /// Local-to-remote bandwidth penalty for one NUMA hop (typ. ~2).
  double remote_penalty = 2.0;

  int cores() const { return sockets * cores_per_socket; }
  int numa_nodes() const { return sockets; }

  const CacheLevel& last_level_cache() const { return caches.back(); }

  /// Sockets in use when `n` threads are pinned fill-socket-first.
  int active_sockets(int n) const;

  /// Aggregate system bandwidth (GB/s) with `n` active cores.
  double sys_bw_at(int n) const;

  /// Bandwidth (GB/s) a single memory controller (NUMA node) can deliver,
  /// i.e. the system bandwidth of a one-socket configuration.
  double node_controller_bw() const;

  /// Per-core bandwidth of cache level `level` (caches scale linearly with
  /// cores since each core has its own path, Fig. 3).
  double cache_bw_per_core(std::size_t level) const;

  /// NUMA node that owns core `core` under fill-socket-first pinning.
  int node_of_core(int core) const { return core / cores_per_socket; }
};

/// The 8-socket dual-core AMD Opteron 8222 testbed of the paper.
MachineSpec opteron8222();

/// The 4-socket oct-core Intel Xeon X7550 testbed of the paper.
MachineSpec xeonX7550();

/// Best-effort description of the host this process runs on (used only by
/// wall-clock benches; figures use the two paper machines above).
MachineSpec host();

}  // namespace nustencil::topology
