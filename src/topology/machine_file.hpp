// Loading MachineSpec descriptions from plain-text config files, so users
// can model their own ccNUMA machines without recompiling.
//
// Format: one `key = value` per line, `#` comments.  Keys:
//   name, sockets, cores_per_socket, ghz, sys_bw_gbs, peak_dp_gflops,
//   remote_penalty
//   cache   = <name> <size_bytes> <shared_by_cores> <line> <assoc> <bw_gbs>
//             (repeatable; order L1 first, last entry = last-level cache)
//   scaling = <cores>:<factor> [<cores>:<factor> ...]
//
// Example:
//   name = EPYC 7551 2S
//   sockets = 2
//   cores_per_socket = 32
//   ghz = 2.0
//   cache = L1 32768 1 64 8 2000
//   cache = L2 524288 1 64 8 1200
//   cache = L3 67108864 8 64 16 900
//   sys_bw_gbs = 290
//   peak_dp_gflops = 1024
//   scaling = 1:1 2:1.9 8:6.5 32:18 64:29
#pragma once

#include <iosfwd>
#include <string>

#include "topology/machine.hpp"

namespace nustencil::topology {

/// Parses a machine description; throws Error with a line-numbered message
/// on malformed input or missing required keys.
MachineSpec parse_machine(std::istream& in, const std::string& origin = "<stream>");

/// Loads a machine description from `path`.
MachineSpec load_machine(const std::string& path);

}  // namespace nustencil::topology
