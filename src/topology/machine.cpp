#include "topology/machine.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/error.hpp"

namespace nustencil::topology {

double BandwidthCurve::factor(int cores) const {
  NUSTENCIL_CHECK(cores >= 1, "BandwidthCurve::factor: cores must be >= 1");
  NUSTENCIL_CHECK(!anchors.empty(), "BandwidthCurve: no anchors");
  if (cores <= anchors.front().first) return anchors.front().second;
  for (std::size_t i = 1; i < anchors.size(); ++i) {
    const auto [c0, f0] = anchors[i - 1];
    const auto [c1, f1] = anchors[i];
    if (cores == c1) return f1;
    if (cores < c1) {
      // Geometric interpolation in log(cores): bandwidth scaling between
      // anchor core counts behaves multiplicatively.
      const double t = (std::log2(static_cast<double>(cores)) - std::log2(static_cast<double>(c0))) /
                       (std::log2(static_cast<double>(c1)) - std::log2(static_cast<double>(c0)));
      return f0 * std::pow(f1 / f0, t);
    }
  }
  return anchors.back().second;  // saturate beyond the last anchor
}

int MachineSpec::active_sockets(int n) const {
  NUSTENCIL_CHECK(n >= 1 && n <= cores(), "active_sockets: bad thread count");
  return (n + cores_per_socket - 1) / cores_per_socket;
}

double MachineSpec::sys_bw_at(int n) const {
  const double full_factor = sys_bw_scaling.factor(cores());
  return sys_bw_gbs * sys_bw_scaling.factor(n) / full_factor;
}

double MachineSpec::node_controller_bw() const {
  return sys_bw_at(cores_per_socket);
}

double MachineSpec::cache_bw_per_core(std::size_t level) const {
  NUSTENCIL_CHECK(level < caches.size(), "cache_bw_per_core: bad level");
  return caches[level].aggregate_bw_gbs / cores();
}

MachineSpec opteron8222() {
  MachineSpec m;
  m.name = "Opteron 8222";
  m.sockets = 8;
  m.cores_per_socket = 2;
  m.ghz = 3.0;
  m.caches = {
      {"L1", 64 * 1024, 1, 64, 2, 675.3},
      {"L2", 1024 * 1024, 1, 64, 16, 185.7},  // last-level (LL1) cache
  };
  m.sys_bw_gbs = 11.9;
  m.peak_dp_gflops = 95.3;
  // Section IV-C: 1 -> 2 cores x1.6 (socket filled); overall x6.5 with all
  // 16 cores.  Socket transitions interpolated geometrically.
  m.sys_bw_scaling.anchors = {{1, 1.0}, {2, 1.6}, {4, 2.55}, {8, 4.08}, {16, 6.5}};
  m.remote_penalty = 2.0;  // HyperTransport hop, typical measured factor
  return m;
}

MachineSpec xeonX7550() {
  MachineSpec m;
  m.name = "Xeon X7550";
  m.sockets = 4;
  m.cores_per_socket = 8;
  m.ghz = 2.0;
  m.caches = {
      {"L1", 32 * 1024, 1, 64, 8, 819.1},
      {"L2", 256 * 1024, 1, 64, 8, 642.8},
      {"L3", 18 * 1024 * 1024, 8, 64, 16, 588.6},  // 2.25 MiB/core shared per socket
  };
  m.sys_bw_gbs = 63.0;
  m.peak_dp_gflops = 202.5;
  // Section IV-C / IV-D: 1 -> 2 nearly linear, 2 -> 4 x1.7, 4 -> 8 x1.5
  // (socket saturated), 38.7 GB/s at 16 cores and 63.0 GB/s at 32 cores
  // give the socket-level anchors.
  m.sys_bw_scaling.anchors = {{1, 1.0}, {2, 2.0},  {4, 3.4},
                              {8, 5.1}, {16, 8.41}, {32, 13.7}};
  m.remote_penalty = 2.0;  // QPI hop
  return m;
}

MachineSpec host() {
  MachineSpec m;
  m.name = "host";
  m.sockets = 1;
  const unsigned hw = std::thread::hardware_concurrency();
  m.cores_per_socket = hw == 0 ? 1 : static_cast<int>(hw);
  m.ghz = 2.0;
  m.caches = {
      {"L1", 32 * 1024, 1, 64, 8, 100.0 * m.cores()},
      {"L2", 1024 * 1024, 1, 64, 16, 50.0 * m.cores()},
      {"L3", 32 * 1024 * 1024, m.cores_per_socket, 64, 16, 30.0 * m.cores()},
  };
  m.sys_bw_gbs = 10.0 * m.cores();
  m.peak_dp_gflops = 8.0 * m.ghz * m.cores();
  m.sys_bw_scaling.anchors = {{1, 1.0}, {std::max(2, m.cores()), static_cast<double>(std::max(2, m.cores())) * 0.6}};
  if (m.cores() == 1) m.sys_bw_scaling.anchors = {{1, 1.0}};
  m.remote_penalty = 1.0;
  return m;
}

}  // namespace nustencil::topology
