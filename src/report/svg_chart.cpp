#include "report/svg_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "report/svg_util.hpp"

namespace nustencil::report {

std::string render_svg(const ChartSpec& spec) {
  NUSTENCIL_CHECK(!spec.x_ticks.empty(), "render_svg: need at least one x tick");
  NUSTENCIL_CHECK(!spec.series.empty(), "render_svg: need at least one series");
  for (const auto& s : spec.series)
    NUSTENCIL_CHECK(s.values.size() == spec.x_ticks.size(),
                    "render_svg: series '" + s.label + "' length mismatch");

  const double w = spec.width, h = spec.height;
  const double ml = 70, mr = 180, mt = 50, mb = 55;  // margins (legend right)
  const double pw = w - ml - mr, ph = h - mt - mb;

  double ymax = 0.0;
  for (const auto& s : spec.series)
    for (double v : s.values)
      if (std::isfinite(v)) ymax = std::max(ymax, v);
  if (ymax <= 0.0) ymax = 1.0;
  const double ystep = nice_step(ymax, 6);
  ymax = std::ceil(ymax / ystep) * ystep;

  const auto xpos = [&](std::size_t i) {
    return spec.x_ticks.size() == 1
               ? ml + pw / 2
               : ml + pw * static_cast<double>(i) /
                          static_cast<double>(spec.x_ticks.size() - 1);
  };
  const auto ypos = [&](double v) { return mt + ph * (1.0 - v / ymax); };

  std::ostringstream os;
  svg_begin(os, w, h);
  svg_title(os, ml + pw / 2, spec.title);

  // Grid + y axis.
  for (double v = 0.0; v <= ymax + 1e-9; v += ystep) {
    const double y = ypos(v);
    svg_line(os, ml, y, ml + pw, y, "#dddddd");
    svg_text(os, ml - 8, y + 4, "end", 11, fmt_num(v));
  }
  // X ticks.
  for (std::size_t i = 0; i < spec.x_ticks.size(); ++i) {
    const double x = xpos(i);
    svg_line(os, x, mt + ph, x, mt + ph + 5, "black");
    svg_text(os, x, mt + ph + 20, "middle", 11, spec.x_ticks[i]);
  }
  // Axes.
  svg_line(os, ml, mt, ml, mt + ph, "black");
  svg_line(os, ml, mt + ph, ml + pw, mt + ph, "black");
  axis_labels(os, ml, pw, h, mt, ph, spec.x_label, spec.y_label);

  // Series.
  for (std::size_t k = 0; k < spec.series.size(); ++k) {
    const auto& s = spec.series[k];
    const char* color = palette_color(k);
    std::ostringstream points;
    bool first = true;
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      if (!std::isfinite(s.values[i])) continue;
      points << (first ? "" : " ") << xpos(i) << ',' << ypos(s.values[i]);
      first = false;
    }
    os << "<polyline fill='none' stroke='" << color << "' stroke-width='2' points='"
       << points.str() << "'/>\n";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      if (!std::isfinite(s.values[i])) continue;
      os << "<circle cx='" << xpos(i) << "' cy='" << ypos(s.values[i])
         << "' r='3.2' fill='" << color << "'/>\n";
    }
    legend_entry(os, ml + pw + 14, mt + 14 + static_cast<double>(k) * 18, color,
                 s.label, /*line=*/true);
  }
  svg_end(os);
  return os.str();
}

void write_svg(const ChartSpec& spec, const std::string& path) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "write_svg: cannot open " + path);
  out << render_svg(spec);
  NUSTENCIL_CHECK(out.good(), "write_svg: write failed for " + path);
}

std::string render_timeline_svg(const TimelineSpec& spec) {
  NUSTENCIL_CHECK(!spec.track_labels.empty(),
                  "render_timeline_svg: need at least one track");
  for (const TimelineSpan& s : spec.spans) {
    NUSTENCIL_CHECK(s.track >= 0 &&
                        s.track < static_cast<int>(spec.track_labels.size()),
                    "render_timeline_svg: span track out of range");
    NUSTENCIL_CHECK(s.cls >= 0 &&
                        s.cls < static_cast<int>(spec.class_labels.size()),
                    "render_timeline_svg: span class out of range");
  }

  double t_end = spec.t_end;
  for (const TimelineSpan& s : spec.spans) t_end = std::max(t_end, s.t1);
  if (t_end <= 0.0) t_end = 1.0;

  const int ntracks = static_cast<int>(spec.track_labels.size());
  const double ml = 90, mr = 170, mt = 46, mb = 50;
  const double th = spec.track_height;
  const double w = spec.width;
  const double pw = w - ml - mr;
  const double ph = th * ntracks;
  const double h = mt + ph + mb;

  const auto xpos = [&](double t) { return ml + pw * t / t_end; };

  std::ostringstream os;
  svg_begin(os, w, h);
  svg_title(os, ml + pw / 2, spec.title);

  // Track lanes + labels.
  for (int k = 0; k < ntracks; ++k) {
    const double y = mt + th * k;
    svg_rect(os, ml, y, pw, th, k % 2 ? "#f6f6f6" : "#fdfdfd");
    svg_text(os, ml - 8, y + th / 2 + 4, "end", 11,
             spec.track_labels[static_cast<std::size_t>(k)]);
  }

  // Spans (in input order: structural spans first draw underneath).
  for (const TimelineSpan& s : spec.spans) {
    const double x0 = xpos(std::max(0.0, s.t0));
    const double x1 = xpos(std::min(t_end, s.t1));
    // Keep even sub-pixel spans visible: Perfetto does the same.
    const double wpx = std::max(0.4, x1 - x0);
    const double y = mt + th * s.track + 3;
    svg_rect(os, x0, y, wpx, th - 6,
             palette_color(static_cast<std::size_t>(s.cls)));
  }

  // Time axis.
  const double step = nice_step(t_end, 8);
  for (double t = 0.0; t <= t_end + 1e-12; t += step) {
    const double x = xpos(t);
    svg_line(os, x, mt + ph, x, mt + ph + 5, "black");
    svg_text(os, x, mt + ph + 20, "middle", 11, fmt_num(t));
  }
  svg_line(os, ml, mt + ph, ml + pw, mt + ph, "black");
  axis_labels(os, ml, pw, h, mt, ph, spec.x_label, "");

  // Legend.
  for (std::size_t k = 0; k < spec.class_labels.size(); ++k) {
    legend_entry(os, ml + pw + 14, mt + 10 + static_cast<double>(k) * 18,
                 palette_color(k), spec.class_labels[k], /*line=*/false);
  }
  svg_end(os);
  return os.str();
}

void write_timeline_svg(const TimelineSpec& spec, const std::string& path) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "write_timeline_svg: cannot open " + path);
  out << render_timeline_svg(spec);
  NUSTENCIL_CHECK(out.good(), "write_timeline_svg: write failed for " + path);
}

std::string render_heatmap_svg(const HeatmapSpec& spec) {
  const std::size_t cols = spec.x_ticks.size();
  const std::size_t rows = spec.y_ticks.size();
  NUSTENCIL_CHECK(rows > 0 && cols > 0,
                  "render_heatmap_svg: need at least one row and column");
  NUSTENCIL_CHECK(spec.values.size() == rows * cols,
                  "render_heatmap_svg: values size != rows x cols");

  const double cs = spec.cell_size;
  const double ml = 90, mt = 50, mr = 30, mb = 60;
  const double pw = cs * static_cast<double>(cols);
  const double ph = cs * static_cast<double>(rows);
  const double w = ml + pw + mr, h = mt + ph + mb;

  double vmax = 0.0;
  for (double v : spec.values)
    if (std::isfinite(v))
      vmax = std::max(vmax, spec.diverging ? std::fabs(v) : v);

  std::ostringstream os;
  svg_begin(os, w, h);
  svg_title(os, ml + pw / 2, spec.title);

  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = spec.values[r * cols + c];
      // Default: white-to-blue ramp.  Diverging: white at zero, red for
      // positive, blue for negative.  NaN cells stay light grey.
      std::string fill = "#eeeeee";
      if (std::isfinite(v) && vmax > 0.0) {
        char buf[8];
        if (spec.diverging) {
          const double t = std::min(1.0, std::fabs(v) / vmax);
          const int fade = static_cast<int>(std::lround(255 - 200 * t));
          if (v >= 0.0)
            std::snprintf(buf, sizeof buf, "#ff%02x%02x", fade, fade);
          else
            std::snprintf(buf, sizeof buf, "#%02x%02xff", fade, fade);
        } else {
          const double t = v / vmax;
          const int red = static_cast<int>(std::lround(255 - 224 * t));
          const int green = static_cast<int>(std::lround(255 - 136 * t));
          std::snprintf(buf, sizeof buf, "#%02x%02xff", red, green);
        }
        fill = buf;
      }
      const double x = ml + cs * static_cast<double>(c);
      const double y = mt + cs * static_cast<double>(r);
      svg_rect(os, x, y, cs - 1, cs - 1, fill);
      if (std::isfinite(v)) {
        const bool dark =
            vmax > 0.0 &&
            (spec.diverging ? std::fabs(v) : v) / vmax > 0.6;
        os << "<text x='" << x + cs / 2 << "' y='" << y + cs / 2 + 4
           << "' text-anchor='middle' font-family='sans-serif' font-size='11'"
           << (dark ? " fill='white'" : "") << '>'
           << svg_escape(fmt_num(v) + spec.unit) << "</text>\n";
      }
    }
  }
  for (std::size_t c = 0; c < cols; ++c)
    svg_text(os, ml + cs * (static_cast<double>(c) + 0.5), mt + ph + 18,
             "middle", 11, spec.x_ticks[c]);
  for (std::size_t r = 0; r < rows; ++r)
    svg_text(os, ml - 8, mt + cs * (static_cast<double>(r) + 0.5) + 4, "end",
             11, spec.y_ticks[r]);
  axis_labels(os, ml, pw, h, mt, ph, spec.x_label, spec.y_label);
  svg_end(os);
  return os.str();
}

std::string render_stacked_bars_svg(const StackedBarSpec& spec) {
  NUSTENCIL_CHECK(!spec.x_ticks.empty(),
                  "render_stacked_bars_svg: need at least one x tick");
  NUSTENCIL_CHECK(!spec.segments.empty(),
                  "render_stacked_bars_svg: need at least one segment");
  for (const auto& s : spec.segments)
    NUSTENCIL_CHECK(s.values.size() == spec.x_ticks.size(),
                    "render_stacked_bars_svg: segment '" + s.label +
                        "' length mismatch");

  const double w = spec.width, h = spec.height;
  const double ml = 70, mr = 180, mt = 50, mb = 55;
  const double pw = w - ml - mr, ph = h - mt - mb;
  const std::size_t n = spec.x_ticks.size();

  const auto seg_value = [&](std::size_t k, std::size_t i) {
    const double v = spec.segments[k].values[i];
    return std::isfinite(v) && v > 0.0 ? v : 0.0;
  };

  double ymax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t k = 0; k < spec.segments.size(); ++k)
      total += seg_value(k, i);
    ymax = std::max(ymax, total);
  }
  if (ymax <= 0.0) ymax = 1.0;
  const double ystep = nice_step(ymax, 6);
  ymax = std::ceil(ymax / ystep) * ystep;
  const auto ypos = [&](double v) { return mt + ph * (1.0 - v / ymax); };

  std::ostringstream os;
  svg_begin(os, w, h);
  svg_title(os, ml + pw / 2, spec.title);

  for (double v = 0.0; v <= ymax + 1e-9; v += ystep) {
    const double y = ypos(v);
    svg_line(os, ml, y, ml + pw, y, "#dddddd");
    svg_text(os, ml - 8, y + 4, "end", 11, fmt_num(v));
  }

  const double slot = pw / static_cast<double>(n);
  const double bar = slot * 0.64;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = ml + slot * (static_cast<double>(i) + 0.5);
    double base = 0.0;
    for (std::size_t k = 0; k < spec.segments.size(); ++k) {
      const double v = seg_value(k, i);
      if (v <= 0.0) continue;
      svg_rect(os, x - bar / 2, ypos(base + v), bar, ypos(base) - ypos(base + v),
               palette_color(k));
      base += v;
    }
    svg_text(os, x, mt + ph + 20, "middle", 11, spec.x_ticks[i]);
  }

  svg_line(os, ml, mt, ml, mt + ph, "black");
  svg_line(os, ml, mt + ph, ml + pw, mt + ph, "black");
  axis_labels(os, ml, pw, h, mt, ph, spec.x_label, spec.y_label);

  for (std::size_t k = 0; k < spec.segments.size(); ++k)
    legend_entry(os, ml + pw + 14, mt + 14 + static_cast<double>(k) * 18,
                 palette_color(k), spec.segments[k].label, /*line=*/false);
  svg_end(os);
  return os.str();
}

std::string render_scatter_svg(const ScatterSpec& spec) {
  NUSTENCIL_CHECK(!spec.class_labels.empty(),
                  "render_scatter_svg: need at least one class label");
  for (const ScatterPoint& p : spec.points)
    NUSTENCIL_CHECK(p.cls >= 0 &&
                        p.cls < static_cast<int>(spec.class_labels.size()),
                    "render_scatter_svg: point class out of range");

  const double w = spec.width, h = spec.height;
  const double ml = 70, mr = 180, mt = 50, mb = 55;
  const double pw = w - ml - mr, ph = h - mt - mb;

  double xmax = 0.0, ymax = 0.0;
  for (const ScatterPoint& p : spec.points) {
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) continue;
    xmax = std::max(xmax, p.x);
    ymax = std::max(ymax, p.y);
  }
  if (xmax <= 0.0) xmax = 1.0;
  if (ymax <= 0.0) ymax = 1.0;
  const double xstep = nice_step(xmax, 8);
  const double ystep = nice_step(ymax, 6);
  xmax = std::ceil(xmax / xstep) * xstep;
  ymax = std::ceil(ymax / ystep) * ystep;

  const auto xpos = [&](double v) { return ml + pw * v / xmax; };
  const auto ypos = [&](double v) { return mt + ph * (1.0 - v / ymax); };

  std::ostringstream os;
  svg_begin(os, w, h);
  svg_title(os, ml + pw / 2, spec.title);

  // Grid + y axis.
  for (double v = 0.0; v <= ymax + 1e-9; v += ystep) {
    const double y = ypos(v);
    svg_line(os, ml, y, ml + pw, y, "#dddddd");
    svg_text(os, ml - 8, y + 4, "end", 11, fmt_num(v));
  }
  // X ticks.
  for (double v = 0.0; v <= xmax + 1e-9; v += xstep) {
    const double x = xpos(v);
    svg_line(os, x, mt + ph, x, mt + ph + 5, "black");
    svg_text(os, x, mt + ph + 20, "middle", 11, fmt_num(v));
  }
  // Axes.
  svg_line(os, ml, mt, ml, mt + ph, "black");
  svg_line(os, ml, mt + ph, ml + pw, mt + ph, "black");
  axis_labels(os, ml, pw, h, mt, ph, spec.x_label, spec.y_label);

  for (const ScatterPoint& p : spec.points) {
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) continue;
    os << "<circle cx='" << xpos(p.x) << "' cy='" << ypos(p.y)
       << "' r='3.2' fill='" << palette_color(static_cast<std::size_t>(p.cls))
       << "' fill-opacity='0.7'/>\n";
  }

  for (std::size_t k = 0; k < spec.class_labels.size(); ++k)
    legend_entry(os, ml + pw + 14, mt + 14 + static_cast<double>(k) * 18,
                 palette_color(k), spec.class_labels[k], /*line=*/false);
  svg_end(os);
  return os.str();
}

std::string render_waterfall_svg(const WaterfallSpec& spec) {
  NUSTENCIL_CHECK(!spec.labels.empty(),
                  "render_waterfall_svg: need at least one delta");
  NUSTENCIL_CHECK(spec.labels.size() == spec.deltas.size(),
                  "render_waterfall_svg: labels/deltas length mismatch");

  const auto delta_of = [&](std::size_t i) {
    const double v = spec.deltas[i];
    return std::isfinite(v) ? v : 0.0;
  };

  // Cumulative range, zero included; the total bar spans [0, net].
  double cum = 0.0, ymin = 0.0, ymax = 0.0;
  for (std::size_t i = 0; i < spec.deltas.size(); ++i) {
    cum += delta_of(i);
    ymin = std::min(ymin, cum);
    ymax = std::max(ymax, cum);
  }
  const double net = cum;
  if (ymax - ymin <= 0.0) ymax = ymin + 1.0;
  const double ystep = nice_step(ymax - ymin, 6);
  ymax = std::ceil(ymax / ystep) * ystep;
  ymin = std::floor(ymin / ystep) * ystep;

  const double w = spec.width, h = spec.height;
  const double ml = 70, mr = 180, mt = 50, mb = 55;
  const double pw = w - ml - mr, ph = h - mt - mb;
  const std::size_t n = spec.labels.size() + 1;  // + total bar
  const auto ypos = [&](double v) {
    return mt + ph * (1.0 - (v - ymin) / (ymax - ymin));
  };

  const char* kUp = "#d62728";     // increases (slower)
  const char* kDown = "#2ca02c";   // decreases (faster)
  const char* kTotal = "#1f77b4";  // net

  std::ostringstream os;
  svg_begin(os, w, h);
  svg_title(os, ml + pw / 2, spec.title);

  for (double v = ymin; v <= ymax + 1e-9; v += ystep) {
    const double y = ypos(v);
    svg_line(os, ml, y, ml + pw, y, "#dddddd");
    svg_text(os, ml - 8, y + 4, "end", 11, fmt_num(v));
  }
  svg_line(os, ml, ypos(0.0), ml + pw, ypos(0.0), "#888888");

  const double slot = pw / static_cast<double>(n);
  const double bar = slot * 0.64;
  double base = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool total = i == spec.labels.size();
    const double v = total ? net : delta_of(i);
    const double lo = total ? std::min(0.0, net) : std::min(base, base + v);
    const double hi = total ? std::max(0.0, net) : std::max(base, base + v);
    const double x = ml + slot * (static_cast<double>(i) + 0.5);
    // Keep zero-delta bars visible as a hairline.
    const double hpx = std::max(1.0, ypos(lo) - ypos(hi));
    svg_rect(os, x - bar / 2, ypos(hi), bar, hpx,
             total ? kTotal : (v >= 0.0 ? kUp : kDown));
    svg_text(os, x, ypos(hi) - 5, "middle", 10,
             (v >= 0.0 ? "+" : "") + fmt_num(v));
    svg_text(os, x, mt + ph + 20, "middle", 11,
             total ? spec.total_label : spec.labels[i]);
    if (!total) base += v;
  }

  svg_line(os, ml, mt, ml, mt + ph, "black");
  svg_line(os, ml, mt + ph, ml + pw, mt + ph, "black");
  axis_labels(os, ml, pw, h, mt, ph, spec.x_label, spec.y_label);

  legend_entry(os, ml + pw + 14, mt + 14, kUp, "increase", /*line=*/false);
  legend_entry(os, ml + pw + 14, mt + 32, kDown, "decrease", /*line=*/false);
  legend_entry(os, ml + pw + 14, mt + 50, kTotal, spec.total_label,
               /*line=*/false);
  svg_end(os);
  return os.str();
}

}  // namespace nustencil::report
