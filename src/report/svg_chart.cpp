#include "report/svg_chart.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace nustencil::report {

namespace {

const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
                          "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf"};
constexpr int kPaletteSize = 10;

/// A "nice" tick step covering `span` with ~n ticks.
double nice_step(double span, int n) {
  const double raw = span / std::max(1, n);
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  double step = 10.0;
  if (norm <= 1.0) step = 1.0;
  else if (norm <= 2.0) step = 2.0;
  else if (norm <= 5.0) step = 5.0;
  return step * mag;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

std::string escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_svg(const ChartSpec& spec) {
  NUSTENCIL_CHECK(!spec.x_ticks.empty(), "render_svg: need at least one x tick");
  NUSTENCIL_CHECK(!spec.series.empty(), "render_svg: need at least one series");
  for (const auto& s : spec.series)
    NUSTENCIL_CHECK(s.values.size() == spec.x_ticks.size(),
                    "render_svg: series '" + s.label + "' length mismatch");

  const double w = spec.width, h = spec.height;
  const double ml = 70, mr = 180, mt = 50, mb = 55;  // margins (legend right)
  const double pw = w - ml - mr, ph = h - mt - mb;

  double ymax = 0.0;
  for (const auto& s : spec.series)
    for (double v : s.values)
      if (std::isfinite(v)) ymax = std::max(ymax, v);
  if (ymax <= 0.0) ymax = 1.0;
  const double ystep = nice_step(ymax, 6);
  ymax = std::ceil(ymax / ystep) * ystep;

  const auto xpos = [&](std::size_t i) {
    return spec.x_ticks.size() == 1
               ? ml + pw / 2
               : ml + pw * static_cast<double>(i) /
                          static_cast<double>(spec.x_ticks.size() - 1);
  };
  const auto ypos = [&](double v) { return mt + ph * (1.0 - v / ymax); };

  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w << "' height='" << h
     << "' viewBox='0 0 " << w << ' ' << h << "'>\n";
  os << "<rect width='100%' height='100%' fill='white'/>\n";
  os << "<text x='" << ml + pw / 2 << "' y='24' text-anchor='middle' "
        "font-family='sans-serif' font-size='15'>"
     << escape(spec.title) << "</text>\n";

  // Grid + y axis.
  for (double v = 0.0; v <= ymax + 1e-9; v += ystep) {
    const double y = ypos(v);
    os << "<line x1='" << ml << "' y1='" << y << "' x2='" << ml + pw << "' y2='" << y
       << "' stroke='#dddddd'/>\n";
    os << "<text x='" << ml - 8 << "' y='" << y + 4
       << "' text-anchor='end' font-family='sans-serif' font-size='11'>" << fmt(v)
       << "</text>\n";
  }
  // X ticks.
  for (std::size_t i = 0; i < spec.x_ticks.size(); ++i) {
    const double x = xpos(i);
    os << "<line x1='" << x << "' y1='" << mt + ph << "' x2='" << x << "' y2='"
       << mt + ph + 5 << "' stroke='black'/>\n";
    os << "<text x='" << x << "' y='" << mt + ph + 20
       << "' text-anchor='middle' font-family='sans-serif' font-size='11'>"
       << escape(spec.x_ticks[i]) << "</text>\n";
  }
  // Axes.
  os << "<line x1='" << ml << "' y1='" << mt << "' x2='" << ml << "' y2='" << mt + ph
     << "' stroke='black'/>\n";
  os << "<line x1='" << ml << "' y1='" << mt + ph << "' x2='" << ml + pw << "' y2='"
     << mt + ph << "' stroke='black'/>\n";
  os << "<text x='" << ml + pw / 2 << "' y='" << h - 12
     << "' text-anchor='middle' font-family='sans-serif' font-size='12'>"
     << escape(spec.x_label) << "</text>\n";
  os << "<text x='18' y='" << mt + ph / 2
     << "' text-anchor='middle' font-family='sans-serif' font-size='12' "
        "transform='rotate(-90 18 "
     << mt + ph / 2 << ")'>" << escape(spec.y_label) << "</text>\n";

  // Series.
  for (std::size_t k = 0; k < spec.series.size(); ++k) {
    const auto& s = spec.series[k];
    const char* color = kPalette[k % kPaletteSize];
    std::ostringstream points;
    bool first = true;
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      if (!std::isfinite(s.values[i])) continue;
      points << (first ? "" : " ") << xpos(i) << ',' << ypos(s.values[i]);
      first = false;
    }
    os << "<polyline fill='none' stroke='" << color << "' stroke-width='2' points='"
       << points.str() << "'/>\n";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      if (!std::isfinite(s.values[i])) continue;
      os << "<circle cx='" << xpos(i) << "' cy='" << ypos(s.values[i])
         << "' r='3.2' fill='" << color << "'/>\n";
    }
    // Legend entry.
    const double ly = mt + 14 + static_cast<double>(k) * 18;
    os << "<line x1='" << ml + pw + 14 << "' y1='" << ly << "' x2='" << ml + pw + 38
       << "' y2='" << ly << "' stroke='" << color << "' stroke-width='2'/>\n";
    os << "<text x='" << ml + pw + 44 << "' y='" << ly + 4
       << "' font-family='sans-serif' font-size='12'>" << escape(s.label)
       << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

void write_svg(const ChartSpec& spec, const std::string& path) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "write_svg: cannot open " + path);
  out << render_svg(spec);
  NUSTENCIL_CHECK(out.good(), "write_svg: write failed for " + path);
}

std::string render_timeline_svg(const TimelineSpec& spec) {
  NUSTENCIL_CHECK(!spec.track_labels.empty(),
                  "render_timeline_svg: need at least one track");
  for (const TimelineSpan& s : spec.spans) {
    NUSTENCIL_CHECK(s.track >= 0 &&
                        s.track < static_cast<int>(spec.track_labels.size()),
                    "render_timeline_svg: span track out of range");
    NUSTENCIL_CHECK(s.cls >= 0 &&
                        s.cls < static_cast<int>(spec.class_labels.size()),
                    "render_timeline_svg: span class out of range");
  }

  double t_end = spec.t_end;
  for (const TimelineSpan& s : spec.spans) t_end = std::max(t_end, s.t1);
  if (t_end <= 0.0) t_end = 1.0;

  const int ntracks = static_cast<int>(spec.track_labels.size());
  const double ml = 90, mr = 170, mt = 46, mb = 50;
  const double th = spec.track_height;
  const double w = spec.width;
  const double pw = w - ml - mr;
  const double ph = th * ntracks;
  const double h = mt + ph + mb;

  const auto xpos = [&](double t) { return ml + pw * t / t_end; };

  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w << "' height='" << h
     << "' viewBox='0 0 " << w << ' ' << h << "'>\n";
  os << "<rect width='100%' height='100%' fill='white'/>\n";
  os << "<text x='" << ml + pw / 2 << "' y='24' text-anchor='middle' "
        "font-family='sans-serif' font-size='15'>"
     << escape(spec.title) << "</text>\n";

  // Track lanes + labels.
  for (int k = 0; k < ntracks; ++k) {
    const double y = mt + th * k;
    os << "<rect x='" << ml << "' y='" << y << "' width='" << pw << "' height='"
       << th << "' fill='" << (k % 2 ? "#f6f6f6" : "#fdfdfd") << "'/>\n";
    os << "<text x='" << ml - 8 << "' y='" << y + th / 2 + 4
       << "' text-anchor='end' font-family='sans-serif' font-size='11'>"
       << escape(spec.track_labels[static_cast<std::size_t>(k)]) << "</text>\n";
  }

  // Spans (in input order: structural spans first draw underneath).
  for (const TimelineSpan& s : spec.spans) {
    const double x0 = xpos(std::max(0.0, s.t0));
    const double x1 = xpos(std::min(t_end, s.t1));
    // Keep even sub-pixel spans visible: Perfetto does the same.
    const double wpx = std::max(0.4, x1 - x0);
    const double y = mt + th * s.track + 3;
    os << "<rect x='" << x0 << "' y='" << y << "' width='" << wpx
       << "' height='" << th - 6 << "' fill='"
       << kPalette[static_cast<std::size_t>(s.cls) % kPaletteSize] << "'/>\n";
  }

  // Time axis.
  const double step = nice_step(t_end, 8);
  for (double t = 0.0; t <= t_end + 1e-12; t += step) {
    const double x = xpos(t);
    os << "<line x1='" << x << "' y1='" << mt + ph << "' x2='" << x << "' y2='"
       << mt + ph + 5 << "' stroke='black'/>\n";
    os << "<text x='" << x << "' y='" << mt + ph + 20
       << "' text-anchor='middle' font-family='sans-serif' font-size='11'>"
       << fmt(t) << "</text>\n";
  }
  os << "<line x1='" << ml << "' y1='" << mt + ph << "' x2='" << ml + pw
     << "' y2='" << mt + ph << "' stroke='black'/>\n";
  os << "<text x='" << ml + pw / 2 << "' y='" << h - 10
     << "' text-anchor='middle' font-family='sans-serif' font-size='12'>"
     << escape(spec.x_label) << "</text>\n";

  // Legend.
  for (std::size_t k = 0; k < spec.class_labels.size(); ++k) {
    const double ly = mt + 10 + static_cast<double>(k) * 18;
    os << "<rect x='" << ml + pw + 14 << "' y='" << ly - 9
       << "' width='24' height='12' fill='" << kPalette[k % kPaletteSize]
       << "'/>\n";
    os << "<text x='" << ml + pw + 44 << "' y='" << ly + 2
       << "' font-family='sans-serif' font-size='12'>"
       << escape(spec.class_labels[k]) << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

void write_timeline_svg(const TimelineSpec& spec, const std::string& path) {
  std::ofstream out(path);
  NUSTENCIL_CHECK(out.good(), "write_timeline_svg: cannot open " + path);
  out << render_timeline_svg(spec);
  NUSTENCIL_CHECK(out.good(), "write_timeline_svg: write failed for " + path);
}

}  // namespace nustencil::report
