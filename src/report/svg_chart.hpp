// Dependency-free SVG line charts for the figure benches.
//
// Renders the paper's figure style: categorical x axis (core counts),
// Gupdates/s-per-core y axis starting at zero, one polyline + marker set
// per series, and a legend.  Output is a standalone .svg file.
#pragma once

#include <string>
#include <vector>

namespace nustencil::report {

struct Series {
  std::string label;
  std::vector<double> values;  ///< one per x tick; NaN = gap
};

struct ChartSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> x_ticks;
  std::vector<Series> series;
  int width = 760;
  int height = 480;
};

/// Renders the chart as a standalone SVG document.
std::string render_svg(const ChartSpec& spec);

/// Renders and writes to `path` (throws Error on I/O failure).
void write_svg(const ChartSpec& spec, const std::string& path);

/// One horizontal bar on a timeline: [t0, t1) seconds on track `track`,
/// coloured by `cls` (an index into TimelineSpec::class_labels).
struct TimelineSpan {
  double t0 = 0.0;
  double t1 = 0.0;
  int track = 0;
  int cls = 0;
};

/// A Gantt-style timeline: one horizontal track per label (e.g. per
/// thread), spans coloured by class, a seconds axis, and a legend.
/// Spans may nest; later spans draw on top of earlier ones within a
/// track, so emit structural (enclosing) spans first.
struct TimelineSpec {
  std::string title;
  std::string x_label = "seconds";
  std::vector<std::string> track_labels;
  std::vector<std::string> class_labels;  ///< legend; colour = palette[cls]
  std::vector<TimelineSpan> spans;
  double t_end = 0.0;  ///< axis end; 0 = max span end
  int width = 960;
  int track_height = 26;
};

/// Renders the timeline as a standalone SVG document.
std::string render_timeline_svg(const TimelineSpec& spec);

/// Renders and writes to `path` (throws Error on I/O failure).
void write_timeline_svg(const TimelineSpec& spec, const std::string& path);

/// A matrix heatmap (e.g. the node-to-node traffic matrix): one coloured
/// cell per (row, column) with the value printed inside, a white-to-blue
/// ramp scaled to the maximum, row/column tick labels and axis titles.
struct HeatmapSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> x_ticks;  ///< one per column
  std::vector<std::string> y_ticks;  ///< one per row
  std::vector<double> values;        ///< row-major, y_ticks.size() x x_ticks.size()
  std::string unit;                  ///< printed after the in-cell value
  int cell_size = 64;
  /// Diverging mode (delta matrices): white at zero, red ramp for
  /// positive cells, blue ramp for negative, scaled to max |value|.
  bool diverging = false;
};

/// Renders the heatmap as a standalone SVG document.
std::string render_heatmap_svg(const HeatmapSpec& spec);

/// Stacked vertical bars (e.g. per-thread phase seconds): one bar per x
/// tick, segments stacked bottom-to-top in `segments` order, a legend.
/// Segment k contributes segments[k].values[i] to bar i (NaN = 0).
struct StackedBarSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> x_ticks;
  std::vector<Series> segments;
  int width = 760;
  int height = 480;
};

/// Renders the stacked bars as a standalone SVG document.
std::string render_stacked_bars_svg(const StackedBarSpec& spec);

/// One point on a scatter plot, coloured by `cls` (an index into
/// ScatterSpec::class_labels).
struct ScatterPoint {
  double x = 0.0;
  double y = 0.0;
  int cls = 0;
};

/// A classed scatter plot (e.g. the per-span roofline: arithmetic
/// intensity vs achieved GFLOPS, coloured by straggler verdict).  Both
/// axes are linear and start at zero; non-finite points are skipped.
struct ScatterSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> class_labels;  ///< legend; colour = palette[cls]
  std::vector<ScatterPoint> points;
  int width = 760;
  int height = 480;
};

/// Renders the scatter plot as a standalone SVG document.
std::string render_scatter_svg(const ScatterSpec& spec);

/// A waterfall of signed deltas (e.g. per-phase time changes between two
/// runs): each bar floats from the running total of the bars before it,
/// increases red, decreases green, plus a final net-total bar.  The y
/// axis spans the cumulative range including zero.
struct WaterfallSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> labels;  ///< one per delta
  std::vector<double> deltas;       ///< signed; NaN = 0
  std::string total_label = "total";
  int width = 760;
  int height = 480;
};

/// Renders the waterfall as a standalone SVG document.
std::string render_waterfall_svg(const WaterfallSpec& spec);

}  // namespace nustencil::report
