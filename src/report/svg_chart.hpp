// Dependency-free SVG line charts for the figure benches.
//
// Renders the paper's figure style: categorical x axis (core counts),
// Gupdates/s-per-core y axis starting at zero, one polyline + marker set
// per series, and a legend.  Output is a standalone .svg file.
#pragma once

#include <string>
#include <vector>

namespace nustencil::report {

struct Series {
  std::string label;
  std::vector<double> values;  ///< one per x tick; NaN = gap
};

struct ChartSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> x_ticks;
  std::vector<Series> series;
  int width = 760;
  int height = 480;
};

/// Renders the chart as a standalone SVG document.
std::string render_svg(const ChartSpec& spec);

/// Renders and writes to `path` (throws Error on I/O failure).
void write_svg(const ChartSpec& spec, const std::string& path);

}  // namespace nustencil::report
