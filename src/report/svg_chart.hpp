// Dependency-free SVG line charts for the figure benches.
//
// Renders the paper's figure style: categorical x axis (core counts),
// Gupdates/s-per-core y axis starting at zero, one polyline + marker set
// per series, and a legend.  Output is a standalone .svg file.
#pragma once

#include <string>
#include <vector>

namespace nustencil::report {

struct Series {
  std::string label;
  std::vector<double> values;  ///< one per x tick; NaN = gap
};

struct ChartSpec {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> x_ticks;
  std::vector<Series> series;
  int width = 760;
  int height = 480;
};

/// Renders the chart as a standalone SVG document.
std::string render_svg(const ChartSpec& spec);

/// Renders and writes to `path` (throws Error on I/O failure).
void write_svg(const ChartSpec& spec, const std::string& path);

/// One horizontal bar on a timeline: [t0, t1) seconds on track `track`,
/// coloured by `cls` (an index into TimelineSpec::class_labels).
struct TimelineSpan {
  double t0 = 0.0;
  double t1 = 0.0;
  int track = 0;
  int cls = 0;
};

/// A Gantt-style timeline: one horizontal track per label (e.g. per
/// thread), spans coloured by class, a seconds axis, and a legend.
/// Spans may nest; later spans draw on top of earlier ones within a
/// track, so emit structural (enclosing) spans first.
struct TimelineSpec {
  std::string title;
  std::string x_label = "seconds";
  std::vector<std::string> track_labels;
  std::vector<std::string> class_labels;  ///< legend; colour = palette[cls]
  std::vector<TimelineSpan> spans;
  double t_end = 0.0;  ///< axis end; 0 = max span end
  int width = 960;
  int track_height = 26;
};

/// Renders the timeline as a standalone SVG document.
std::string render_timeline_svg(const TimelineSpec& spec);

/// Renders and writes to `path` (throws Error on I/O failure).
void write_timeline_svg(const TimelineSpec& spec, const std::string& path);

}  // namespace nustencil::report
