#include "report/svg_util.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace nustencil::report {

namespace {

const char* kPalette[kPaletteSize] = {"#1f77b4", "#d62728", "#2ca02c",
                                      "#ff7f0e", "#9467bd", "#8c564b",
                                      "#e377c2", "#7f7f7f", "#bcbd22",
                                      "#17becf"};

}  // namespace

std::string svg_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

double nice_step(double span, int n) {
  const double raw = span / std::max(1, n);
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  double step = 10.0;
  if (norm <= 1.0) step = 1.0;
  else if (norm <= 2.0) step = 2.0;
  else if (norm <= 5.0) step = 5.0;
  return step * mag;
}

std::string fmt_num(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

const char* palette_color(std::size_t i) { return kPalette[i % kPaletteSize]; }

void svg_begin(std::ostream& os, double width, double height) {
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width
     << "' height='" << height << "' viewBox='0 0 " << width << ' ' << height
     << "'>\n";
  os << "<rect width='100%' height='100%' fill='white'/>\n";
}

void svg_end(std::ostream& os) { os << "</svg>\n"; }

void svg_title(std::ostream& os, double cx, const std::string& title) {
  os << "<text x='" << cx << "' y='24' text-anchor='middle' "
        "font-family='sans-serif' font-size='15'>"
     << svg_escape(title) << "</text>\n";
}

void svg_text(std::ostream& os, double x, double y, const char* anchor,
              int font_size, const std::string& text,
              const std::string& transform) {
  os << "<text x='" << x << "' y='" << y << "' text-anchor='" << anchor
     << "' font-family='sans-serif' font-size='" << font_size << '\'';
  if (!transform.empty()) os << " transform='" << transform << '\'';
  os << '>' << svg_escape(text) << "</text>\n";
}

void svg_line(std::ostream& os, double x1, double y1, double x2, double y2,
              const std::string& stroke, double stroke_width) {
  os << "<line x1='" << x1 << "' y1='" << y1 << "' x2='" << x2 << "' y2='"
     << y2 << "' stroke='" << stroke << '\'';
  if (stroke_width != 1.0) os << " stroke-width='" << stroke_width << '\'';
  os << "/>\n";
}

void svg_rect(std::ostream& os, double x, double y, double w, double h,
              const std::string& fill) {
  os << "<rect x='" << x << "' y='" << y << "' width='" << w << "' height='"
     << h << "' fill='" << fill << "'/>\n";
}

void legend_entry(std::ostream& os, double x, double y, const char* color,
                  const std::string& label, bool line) {
  if (line) {
    svg_line(os, x, y, x + 24, y, color, 2.0);
  } else {
    svg_rect(os, x, y - 9, 24, 12, color);
  }
  svg_text(os, x + 30, y + (line ? 4 : 2), "start", 12, label);
}

void axis_labels(std::ostream& os, double ml, double pw, double h_total,
                 double mt, double ph, const std::string& x_label,
                 const std::string& y_label) {
  svg_text(os, ml + pw / 2, h_total - 12, "middle", 12, x_label);
  if (!y_label.empty()) {
    std::ostringstream rot;
    rot << "rotate(-90 18 " << mt + ph / 2 << ')';
    svg_text(os, 18, mt + ph / 2, "middle", 12, y_label, rot.str());
  }
}

}  // namespace nustencil::report
