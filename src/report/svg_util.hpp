// Shared SVG building blocks for the chart, timeline and dashboard
// renderers: escaping, number formatting, the categorical palette,
// tick-step selection, and the header/axis/legend fragments every chart
// emits.  Kept in one place so the figure charts, the trace timeline and
// the run-report panels agree on style.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>

namespace nustencil::report {

/// Escapes `text` for SVG/XML text content and single-quoted attributes.
std::string svg_escape(const std::string& text);

/// A "nice" tick step (1/2/5 x 10^k) covering `span` with ~n ticks.
double nice_step(double span, int n);

/// Short numeric label (4 significant digits).
std::string fmt_num(double v);

inline constexpr std::size_t kPaletteSize = 10;

/// The categorical colour of series/class `i` (wraps past kPaletteSize).
const char* palette_color(std::size_t i);

/// `<svg ...>` opener with viewBox plus a white background rect.
void svg_begin(std::ostream& os, double width, double height);
void svg_end(std::ostream& os);

/// Centred 15px chart title near the top edge.
void svg_title(std::ostream& os, double cx, const std::string& title);

/// Sans-serif text at (x, y); `anchor` is "start", "middle" or "end".
/// A non-empty `transform` is passed through verbatim.
void svg_text(std::ostream& os, double x, double y, const char* anchor,
              int font_size, const std::string& text,
              const std::string& transform = "");

void svg_line(std::ostream& os, double x1, double y1, double x2, double y2,
              const std::string& stroke, double stroke_width = 1.0);

void svg_rect(std::ostream& os, double x, double y, double w, double h,
              const std::string& fill);

/// One legend entry at (x, y): a line sample when `line`, else a colour
/// swatch, followed by the label.
void legend_entry(std::ostream& os, double x, double y, const char* color,
                  const std::string& label, bool line);

/// The x-axis label centred under a plot of width `pw` starting at `ml`,
/// and (when non-empty) the y-axis label rotated at the left edge beside
/// a plot of height `ph` starting at `mt`.  `h_total` is the full
/// document height.
void axis_labels(std::ostream& os, double ml, double pw, double h_total,
                 double mt, double ph, const std::string& x_label,
                 const std::string& y_label);

}  // namespace nustencil::report
