// Spin-wait synchronisation flags ("local synchronisation" in the paper).
//
// nuCORALS attaches a structure of flags to each thread: one flag per base
// parallelogram index within the root parallelogram.  A consumer thread
// spin-waits on the flag of a base parallelogram that intersects its
// boundary; the producing neighbour sets it after computing the lower part.
// CATS/nuCATS use the same mechanism for tile-boundary pipelining, with one
// monotone counter per tile boundary.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "thread/abort.hpp"
#include "trace/trace.hpp"

namespace nustencil::threading {

/// A fixed-size array of one-shot flags, each on its own cache line.
class FlagArray {
 public:
  explicit FlagArray(std::size_t n) : flags_(n) {}

  void reset() {
    for (auto& f : flags_) f.value.store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }

  void set(std::size_t i) {
    NUSTENCIL_DCHECK(i < flags_.size(), "FlagArray::set out of range");
    flags_[i].value.store(1, std::memory_order_release);
  }

  bool test(std::size_t i) const {
    NUSTENCIL_DCHECK(i < flags_.size(), "FlagArray::test out of range");
    return flags_[i].value.load(std::memory_order_acquire) != 0;
  }

  /// Spin (with yield) until flag `i` is set; throws on abort.  A
  /// recorder, when given, receives a spinflag-wait span (flag index as
  /// the target, `owner` = producing thread/tile) only when the flag was
  /// not already set — the satisfied fast path stays clock-free.
  void wait(std::size_t i, const AbortToken* abort = nullptr,
            trace::ThreadRecorder* rec = nullptr, std::int32_t owner = -1) const {
    if (test(i)) return;
    const std::int64_t start = rec ? rec->now_ns() : 0;
    std::uint64_t spins = 0;
    while (!test(i)) {
      ++spins;
      if (abort) abort->check();
      std::this_thread::yield();
    }
    if (rec)
      rec->record(trace::Phase::SpinWait, start, rec->now_ns(),
                  {static_cast<std::int32_t>(i), -1, -1, owner}, spins);
  }

  std::size_t size() const { return flags_.size(); }

 private:
  struct alignas(kCacheLineBytes) PaddedFlag {
    std::atomic<int> value{0};
  };
  std::vector<PaddedFlag> flags_;
};

/// A monotonically increasing progress counter (one per pipeline stage),
/// padded to its own cache line.
class ProgressCounter {
 public:
  void reset() { value_.store(0, std::memory_order_relaxed); }

  /// Publish that progress has reached at least `v`.
  void advance_to(long v) {
    NUSTENCIL_DCHECK(v >= value_.load(std::memory_order_relaxed),
                     "ProgressCounter must be monotone");
    value_.store(v, std::memory_order_release);
  }

  long current() const { return value_.load(std::memory_order_acquire); }

  /// Spin (with yield) until the counter reaches at least `v`; throws on
  /// abort.  A recorder, when given, receives a spinflag-wait span (wait
  /// target `v`, `owner` = producing thread/tile) only when the counter
  /// was not already there — the satisfied fast path stays clock-free.
  void wait_for(long v, const AbortToken* abort = nullptr,
                trace::ThreadRecorder* rec = nullptr,
                std::int32_t owner = -1) const {
    if (current() >= v) return;
    const std::int64_t start = rec ? rec->now_ns() : 0;
    std::uint64_t spins = 0;
    while (current() < v) {
      ++spins;
      if (abort) abort->check();
      std::this_thread::yield();
    }
    if (rec)
      rec->record(trace::Phase::SpinWait, start, rec->now_ns(),
                  {static_cast<std::int32_t>(v), -1, -1, owner}, spins);
  }

 private:
  alignas(kCacheLineBytes) std::atomic<long> value_{0};
};

}  // namespace nustencil::threading
