// A team of pinned worker threads executing fork-join parallel regions.
//
// All schemes in the paper are parallelised with pthreads: a fixed team is
// created once, each member is pinned to a core (fill-socket-first, Section
// IV-B), and the team then executes the scheme's phases.  Team mirrors that
// structure: run(f) invokes f(tid) on every member and joins.
#pragma once

#include <functional>
#include <vector>

namespace nustencil::threading {

/// Pins the calling thread to hardware core `core % hardware_cores`.
/// Returns false when pinning is unsupported or fails (the virtual
/// topology in numa/ still records the *logical* placement, which is what
/// the simulation uses).
bool pin_self_to_core(int core);

class Team {
 public:
  /// Creates `size` workers. When `pin` is true each worker tid pins itself
  /// to hardware core tid (modulo available cores) before accepting work.
  explicit Team(int size, bool pin = true);
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  int size() const { return size_; }

  /// Executes body(tid) for tid in [0, size) and waits for completion.
  /// Exceptions thrown by members are captured; the first one is rethrown
  /// on the caller after all members finished.
  void run(const std::function<void(int)>& body);

 private:
  struct Impl;
  Impl* impl_;
  int size_;
};

}  // namespace nustencil::threading
