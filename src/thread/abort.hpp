// Cooperative abort for spin-synchronised worker teams.
//
// When one worker throws (e.g. a dependency-checker violation), the others
// would spin forever on barriers or progress counters.  Every blocking
// primitive therefore polls an AbortToken and converts a triggered abort
// into an exception, so the whole team unwinds and the first error
// propagates to the caller.
#pragma once

#include <atomic>

#include "common/error.hpp"

namespace nustencil::threading {

class AbortToken {
 public:
  void trigger() { triggered_.store(true, std::memory_order_release); }

  bool triggered() const { return triggered_.load(std::memory_order_acquire); }

  /// Throws when the token has been triggered by another worker.
  void check() const {
    if (triggered()) throw Error("worker aborted: another worker failed first");
  }

 private:
  std::atomic<bool> triggered_{false};
};

}  // namespace nustencil::threading
