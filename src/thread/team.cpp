#include "thread/team.hpp"

#include <pthread.h>
#include <sched.h>

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace nustencil::threading {

bool pin_self_to_core(int core) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core) % hw, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

struct Team::Impl {
  std::vector<std::thread> workers;
  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  const std::function<void(int)>* body = nullptr;
  std::uint64_t generation = 0;
  int remaining = 0;
  bool stop = false;
  std::exception_ptr first_error;

  void worker_loop(int tid, bool pin) {
    if (pin) pin_self_to_core(tid);
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv_work.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
        job = body;
      }
      try {
        (*job)(tid);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--remaining == 0) cv_done.notify_all();
      }
    }
  }
};

Team::Team(int size, bool pin) : impl_(new Impl), size_(size) {
  NUSTENCIL_CHECK(size >= 1, "Team size must be >= 1");
  impl_->workers.reserve(static_cast<std::size_t>(size));
  for (int tid = 0; tid < size; ++tid) {
    impl_->workers.emplace_back([this, tid, pin] { impl_->worker_loop(tid, pin); });
  }
}

Team::~Team() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void Team::run(const std::function<void(int)>& body) {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->body = &body;
    impl_->remaining = size_;
    impl_->first_error = nullptr;
    ++impl_->generation;
    impl_->cv_work.notify_all();
    impl_->cv_done.wait(lock, [&] { return impl_->remaining == 0; });
    error = impl_->first_error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace nustencil::threading
