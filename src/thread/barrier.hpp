// Sense-reversing centralized barrier.
//
// The paper synchronises all threads with pthread barriers at the boundary
// of each layer of space-time slices ("global synchronisation").  We use a
// sense-reversing barrier that spins with a yield so that oversubscribed
// runs (more threads than hardware cores, the normal case on the 1-core CI
// host) make progress instead of livelocking.
#pragma once

#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "thread/abort.hpp"
#include "trace/trace.hpp"

namespace nustencil::threading {

class Barrier {
 public:
  explicit Barrier(int participants) : participants_(participants) {
    NUSTENCIL_CHECK(participants >= 1, "Barrier: participants must be >= 1");
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all participants have arrived.  When `abort` is given
  /// and triggers, throws instead of spinning forever (the barrier is then
  /// in teardown and must not be reused).  When `rec` is given, every
  /// participant that actually waits records a barrier-wait span with its
  /// spin-iteration count (the releasing arrival records nothing); a null
  /// recorder costs one branch.
  void arrive_and_wait(const AbortToken* abort = nullptr,
                       trace::ThreadRecorder* rec = nullptr) {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      const std::int64_t start = rec ? rec->now_ns() : 0;
      std::uint64_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        ++spins;
        if (abort) abort->check();
        std::this_thread::yield();
      }
      if (rec)
        rec->record(trace::Phase::BarrierWait, start, rec->now_ns(), {}, spins);
    }
  }

  int participants() const { return participants_; }

 private:
  const int participants_;
  std::atomic<int> arrived_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace nustencil::threading
