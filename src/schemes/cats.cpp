#include "schemes/cats.hpp"

#include "schemes/cats_common.hpp"

namespace nustencil::schemes {

RunResult CatsScheme::run(core::Problem& problem, const RunConfig& config) const {
  return run_cats_like(name(), /*numa_aware=*/false, problem, config);
}

TrafficEstimate CatsScheme::estimate_traffic(const topology::MachineSpec& machine,
                                             const Coord& shape,
                                             const core::StencilSpec& stencil, int threads,
                                             long timesteps) const {
  return estimate_cats_traffic(machine, shape, stencil, threads, timesteps);
}

}  // namespace nustencil::schemes
