#include "schemes/cats_common.hpp"

#include <algorithm>

#include "schemes/run_support.hpp"
#include "thread/barrier.hpp"
#include "thread/spinflag.hpp"

namespace nustencil::schemes {

namespace {

/// Bytes one cell occupies in the moving wavefront: both value buffers
/// plus, for banded stencils, every coefficient band.
double wavefront_doubles_per_cell(const core::StencilSpec& st) {
  return 2.0 + (st.banded() ? static_cast<double>(st.npoints()) : 0.0);
}

/// Tile width along y whose wavefront fits the per-core last-level cache
/// share for chunk depth Tc (>=1; may exceed Ny, callers clamp).
Index fitting_width(const core::Box& updatable, const core::StencilSpec& st,
                    const topology::MachineSpec& machine, long tc) {
  const auto& llc = machine.last_level_cache();
  const double share = static_cast<double>(llc.size_bytes) /
                       static_cast<double>(llc.shared_by_cores);
  const double usable = 0.5 * share;  // safety factor against conflict misses
  const double nx = static_cast<double>(updatable.extent(0));
  const double s = st.order();
  const double planes = static_cast<double>(tc) * s + 2.0 * s + 2.0;
  const double bytes_per_y =
      nx * planes * 8.0 * wavefront_doubles_per_cell(st) / 2.0;
  return std::max<Index>(1, static_cast<Index>(usable / bytes_per_y));
}

}  // namespace

CatsPlan plan_cats(const core::Box& updatable, const core::StencilSpec& stencil,
                   const topology::MachineSpec& machine, int threads, long timesteps,
                   bool numa_aware, int tiles_per_thread) {
  NUSTENCIL_CHECK(updatable.rank() == 3, "CATS/nuCATS support 3D domains");
  const Index ny = updatable.extent(1);
  const Index min_wy = std::max<Index>(2 * stencil.order(), 2);

  // Deepest chunk whose wavefront cross-section is still at least min_wy
  // wide (the paper runs the full 100 steps in one pass when it fits).
  CatsPlan plan;
  plan.chunk = std::max<long>(1, timesteps);
  while (plan.chunk > 1 && fitting_width(updatable, stencil, machine, plan.chunk) < min_wy)
    plan.chunk = plan.chunk / 2;
  plan.wy = std::min<Index>(ny, fitting_width(updatable, stencil, machine, plan.chunk));
  plan.wy = std::max(plan.wy, min_wy);

  const int max_tiles = std::max(1, static_cast<int>(ny / min_wy));
  int tiles = static_cast<int>(ceil_div(ny, plan.wy));
  tiles = std::clamp(tiles, 1, max_tiles);
  // Parallelisation requirement: at least one tile per thread when the
  // domain allows it (CATS round-robins them, nuCATS adjusts below).
  if (tiles < threads) tiles = std::min(max_tiles, threads);

  if (numa_aware) {
    // Section II: make the tile count a multiple of (or equal to) the
    // thread count so that the subdomain <-> tile matching is regular.
    if (tiles >= threads) {
      while (tiles % threads != 0 && tiles < max_tiles) ++tiles;
      if (tiles % threads != 0)
        tiles = std::max(threads, max_tiles / threads * threads);
      if (tiles > max_tiles) tiles = std::min(max_tiles, threads);
    }
    if (tiles < threads) {
      if (max_tiles >= threads) {
        tiles = threads;  // reduce the wavefront until one tile per thread
      } else if (threads % 2 == 0 && max_tiles >= threads / 2) {
        // Reducing the wavefront further than the cache heuristic allows:
        // stop at nthreads/2 tiles and double the tile count by cutting
        // the wavefront-traversal dimension in half instead.
        tiles = threads / 2;
        plan.z_segments = 2;
      } else {
        tiles = max_tiles;  // more threads than usable tiles; oversubscribe
      }
    }
  }
  if (tiles_per_thread > 1 && plan.z_segments == 1) {
    // Refine by an integer multiplier: tile boundaries at ny*t/tiles scale
    // exactly (ny * (m*t) / (m*tiles) == ny*t/tiles), so every thread's
    // owned y-range stays identical to the unrefined plan and only the
    // granularity available to thieves changes.
    int m = tiles_per_thread;
    while (m > 1 && tiles * m > max_tiles) --m;
    tiles *= m;
  }
  plan.tiles_y = tiles;
  plan.wy = ceil_div(ny, tiles);

  for (int zs = 0; zs < plan.z_segments; ++zs) {
    for (int ty = 0; ty < plan.tiles_y; ++ty) {
      core::Box b = updatable;
      b.lo[1] = updatable.lo[1] + ny * ty / tiles;
      b.hi[1] = updatable.lo[1] + ny * (ty + 1) / tiles;
      const Index nz = updatable.extent(2);
      b.lo[2] = updatable.lo[2] + nz * zs / plan.z_segments;
      b.hi[2] = updatable.lo[2] + nz * (zs + 1) / plan.z_segments;
      plan.tiles.push_back(b);
    }
  }

  plan.owner.resize(static_cast<std::size_t>(plan.num_tiles()));
  for (int i = 0; i < plan.num_tiles(); ++i) {
    if (!numa_aware) {
      plan.owner[static_cast<std::size_t>(i)] = i % threads;  // CATS round-robin
    } else if (plan.z_segments == 2) {
      plan.owner[static_cast<std::size_t>(i)] = i;  // one tile per thread
    } else {
      // Contiguous blocks of tiles per thread: the thread whose subdomain
      // contains (most of) the tile owns it.
      const int ty = i % plan.tiles_y;
      plan.owner[static_cast<std::size_t>(i)] =
          static_cast<int>(static_cast<long>(ty) * threads / plan.tiles_y);
    }
  }
  return plan;
}

RunResult run_cats_like(const std::string& scheme_name, bool numa_aware,
                        core::Problem& problem, const RunConfig& config) {
  NUSTENCIL_CHECK(problem.shape().rank() == 3, "CATS/nuCATS support 3D domains");
  NUSTENCIL_CHECK(config.boundary[2] == core::BoundaryKind::Dirichlet,
                  "CATS/nuCATS require a Dirichlet boundary in the wavefront "
                  "traversal dimension (z); time skewing along a periodic axis "
                  "has a cyclic dependence seam");
  RunSupport sup(problem, config);
  const int n = config.num_threads;
  const core::Box updatable =
      core::updatable_box(problem.shape(), problem.stencil(), config.boundary);
  const bool stealing = config.schedule != sched::Schedule::Static;
  // Stealing wants more tiles than threads so a lagging owner has
  // something to give away; 4x is enough granularity without shrinking
  // the wavefront below its cache-fitting width.
  const CatsPlan plan = plan_cats(updatable, problem.stencil(), sup.machine(), n,
                                  config.timesteps, numa_aware,
                                  /*tiles_per_thread=*/stealing ? 4 : 1);
  const int ntiles = plan.num_tiles();
  const int s = problem.stencil().order();

  // Initialisation: nuCATS threads first-touch their own tiles (plus any
  // left-over rows outside the updatable box go to their nearest owner);
  // CATS initialises serially on node 0.
  if (numa_aware) {
    sup.run_workers([&](int tid) {
      for (int i = 0; i < ntiles; ++i) {
        if (plan.owner[static_cast<std::size_t>(i)] != tid) continue;
        core::Box mine = plan.tiles[static_cast<std::size_t>(i)];
        // Extend boundary tiles to cover the frozen Dirichlet rim so that
        // every page is touched by its nearest owner.
        for (int d = 0; d < 3; ++d) {
          if (mine.lo[d] == updatable.lo[d]) mine.lo[d] = 0;
          if (mine.hi[d] == updatable.hi[d]) mine.hi[d] = problem.shape()[d];
        }
        sup.executor(tid).first_touch_box(mine, sup.node_of_thread(tid), config.seed);
      }
    });
  } else {
    sup.serial_init();
  }
  sup.finalize_boundary();

  // One progress counter per tile: code = p_rel * Tc_max + k + 1 after
  // plane (position p, chunk-relative time k) is done.
  std::vector<threading::ProgressCounter> progress(static_cast<std::size_t>(ntiles));
  threading::Barrier barrier(n);
  const Index zlo = updatable.lo[2], zhi = updatable.hi[2];
  const long tc_max = plan.chunk;

  // Stealing state: one (position, chunk-step) cursor per tile.  A task
  // advances its tile while every pipeline input is ready (non-blocking
  // probes of the same progress counters the static path spin-waits on)
  // and re-enqueues itself otherwise, so a thief can never wedge inside
  // a spin-wait for work that sits in its own deque.
  struct TileCursor {
    Index p = 0;
    long k = 0;
  };
  std::vector<TileCursor> cursors(static_cast<std::size_t>(ntiles));
  sched::TaskPool* pool = stealing ? sup.pool() : nullptr;

  Timer timer;
  if (stealing) {
    sup.run_workers([&](int tid) {
      trace::ThreadRecorder* rec = sup.recorder(tid);
      for (long tb = 0; tb < config.timesteps; tb += tc_max) {
        const long tc = std::min<long>(tc_max, config.timesteps - tb);
        if (config.progress) config.progress->set_layer(tb / tc_max);
        const trace::ScopedSpan layer_span(
            rec, trace::Phase::Layer,
            {static_cast<std::int32_t>(tb / tc_max), static_cast<std::int32_t>(tb),
             static_cast<std::int32_t>(tc)});
        const Index p_end = zhi + (tc - 1) * s;  // exclusive
        if (tid == 0) {
          for (auto& c : cursors) c = TileCursor{zlo, 0};
          pool->reset(ntiles, [&](int i) {
            return plan.owner[static_cast<std::size_t>(i)];
          });
        }
        barrier.arrive_and_wait(&sup.abort(), rec);

        // Readiness of plane (p, k) of tile i: the static path's waits,
        // as non-blocking probes — including same-owner neighbours, which
        // the static loop order satisfies implicitly but greedy per-tile
        // cursors do not.
        const auto ready = [&](int i, Index p, long k) {
          const int ty = i % plan.tiles_y;
          const int zs = i / plan.tiles_y;
          if (p - s >= zlo && plan.tiles_y > 1) {
            const long need = (p - s - zlo + 1) * tc_max;
            const int left =
                zs * plan.tiles_y + (ty + plan.tiles_y - 1) % plan.tiles_y;
            const int right = zs * plan.tiles_y + (ty + 1) % plan.tiles_y;
            if (left != i &&
                progress[static_cast<std::size_t>(left)].current() < need)
              return false;
            if (right != i &&
                progress[static_cast<std::size_t>(right)].current() < need)
              return false;
          }
          if (plan.z_segments == 2) {
            const int other = (1 - zs) * plan.tiles_y + ty;
            if (other != i) {
              if (zs == 1 && p - s - 1 >= zlo &&
                  progress[static_cast<std::size_t>(other)].current() <
                      (p - s - zlo) * tc_max)
                return false;
              if (zs == 0 && k > 0 &&
                  progress[static_cast<std::size_t>(other)].current() <
                      (p - zlo) * tc_max + k)
                return false;
            }
          }
          return true;
        };

        pool->run(
            tid,
            [&](int i, int wtid, bool stolen) {
              TileCursor& cur = cursors[static_cast<std::size_t>(i)];
              const core::Box& tile = plan.tiles[static_cast<std::size_t>(i)];
              core::Executor& ex = sup.executor(wtid);
              bool advanced = false;
              while (cur.p < p_end) {
                if (!ready(i, cur.p, cur.k))
                  return advanced ? sched::StepResult::Yield
                                  : sched::StepResult::Blocked;
                const long code_base = (cur.p - zlo) * tc_max;
                const Index z = cur.p - cur.k * s;
                if (z >= tile.lo[2] && z < tile.hi[2]) {
                  core::Box box = tile;
                  box.lo[2] = z;
                  box.hi[2] = z + 1;
                  const Index before = ex.updates_done();
                  ex.update_box(box, tb + cur.k, wtid);
                  if (stolen)
                    pool->add_stolen_updates(wtid, ex.updates_done() - before);
                }
                progress[static_cast<std::size_t>(i)].advance_to(code_base +
                                                                 cur.k + 1);
                advanced = true;
                if (++cur.k >= tc) {
                  progress[static_cast<std::size_t>(i)].advance_to(code_base +
                                                                   tc_max);
                  cur.k = 0;
                  ++cur.p;
                }
              }
              return sched::StepResult::Done;
            },
            &sup.abort(), rec);
        barrier.arrive_and_wait(&sup.abort(), rec);
        if (tb + tc < config.timesteps) {
          if (tid == 0)
            for (auto& c : progress) c.reset();
          barrier.arrive_and_wait(&sup.abort(), rec);
        }
      }
    });
    const double seconds_steal = timer.seconds();
    RunResult r = sup.finish(scheme_name, seconds_steal);
    r.details["chunk"] = static_cast<double>(plan.chunk);
    r.details["tile_width_y"] = static_cast<double>(plan.wy);
    r.details["tiles"] = static_cast<double>(ntiles);
    r.details["z_segments"] = static_cast<double>(plan.z_segments);
    return r;
  }

  sup.run_workers([&](int tid) {
    core::Executor& exec = sup.executor(tid);
    trace::ThreadRecorder* rec = sup.recorder(tid);
    const auto owner_tid = [&](int tile) {
      return plan.owner[static_cast<std::size_t>(tile)];
    };
    std::vector<int> mine;
    for (int i = 0; i < ntiles; ++i)
      if (owner_tid(i) == tid) mine.push_back(i);

    for (long tb = 0; tb < config.timesteps; tb += tc_max) {
      const long tc = std::min<long>(tc_max, config.timesteps - tb);
      if (config.progress) config.progress->set_layer(tb / tc_max);
      const trace::ScopedSpan layer_span(
          rec, trace::Phase::Layer,
          {static_cast<std::int32_t>(tb / tc_max), static_cast<std::int32_t>(tb),
           static_cast<std::int32_t>(tc)});
      const Index p_end = zhi + (tc - 1) * s;  // exclusive
      for (Index p = zlo; p < p_end; ++p) {
        const long code_base = (p - zlo) * tc_max;
        for (long k = 0; k < tc; ++k) {
          for (int i : mine) {
            const core::Box& tile = plan.tiles[static_cast<std::size_t>(i)];
            const int ty = i % plan.tiles_y;
            const int zs = i / plan.tiles_y;
            // Wait for the y-neighbours (periodic ring) to pass p-s.
            if (p - s >= zlo && plan.tiles_y > 1) {
              const long need = (p - s - zlo + 1) * tc_max;
              const int left = zs * plan.tiles_y + (ty + plan.tiles_y - 1) % plan.tiles_y;
              const int right = zs * plan.tiles_y + (ty + 1) % plan.tiles_y;
              if (owner_tid(left) != tid)
                progress[static_cast<std::size_t>(left)].wait_for(
                    need, &sup.abort(), rec, owner_tid(left));
              if (owner_tid(right) != tid)
                progress[static_cast<std::size_t>(right)].wait_for(
                    need, &sup.abort(), rec, owner_tid(right));
            }
            if (plan.z_segments == 2) {
              const int other = (1 - zs) * plan.tiles_y + ty;
              if (owner_tid(other) != tid) {
                if (zs == 1 && p - s - 1 >= zlo) {
                  // The upper segment's plane at (p, k) reads the lower
                  // segment's planes z-j (j = 1..s) of step k-1, which were
                  // updated at positions p-s-j — so the lower segment must
                  // have completed every position through p-s-1.  (For
                  // s = 1 this is the familiar p-2s bound; for higher
                  // orders p-2s alone is insufficient.)
                  progress[static_cast<std::size_t>(other)].wait_for(
                      (p - s - zlo) * tc_max, &sup.abort(), rec, owner_tid(other));
                }
                if (zs == 0 && k > 0) {
                  // Lower segment's top planes read the upper segment's
                  // previous time level at the same position.
                  progress[static_cast<std::size_t>(other)].wait_for(
                      code_base + k, &sup.abort(), rec, owner_tid(other));
                }
              }
            }
            const Index z = p - k * s;
            if (z >= tile.lo[2] && z < tile.hi[2]) {
              core::Box box = tile;
              box.lo[2] = z;
              box.hi[2] = z + 1;
              exec.update_box(box, tb + k, tid);
            }
            progress[static_cast<std::size_t>(i)].advance_to(code_base + k + 1);
          }
        }
        // Publish full-position completion even when the final chunk is
        // shorter than tc_max (the position-level waits above target
        // (p' + 1) * tc_max and would otherwise never be satisfied).
        for (int i : mine)
          progress[static_cast<std::size_t>(i)].advance_to(code_base + tc_max);
      }
      // Chunk boundary: everyone synchronises, then tid 0 resets counters.
      barrier.arrive_and_wait(&sup.abort(), rec);
      if (tb + tc < config.timesteps) {
        if (tid == 0)
          for (auto& c : progress) c.reset();
        barrier.arrive_and_wait(&sup.abort(), rec);
      }
    }
  });
  const double seconds = timer.seconds();

  RunResult r = sup.finish(scheme_name, seconds);
  r.details["chunk"] = static_cast<double>(plan.chunk);
  r.details["tile_width_y"] = static_cast<double>(plan.wy);
  r.details["tiles"] = static_cast<double>(ntiles);
  r.details["z_segments"] = static_cast<double>(plan.z_segments);
  return r;
}

TrafficEstimate estimate_cats_traffic(const topology::MachineSpec& machine,
                                      const Coord& shape, const core::StencilSpec& stencil,
                                      int threads, long timesteps) {
  core::Box updatable;
  updatable.lo = Coord::filled(3, 0);
  updatable.hi = shape;
  updatable.lo[2] += stencil.order();
  updatable.hi[2] -= stencil.order();
  const CatsPlan plan =
      plan_cats(updatable, stencil, machine, threads, timesteps, /*numa_aware=*/true);

  const double s = stencil.order();
  const double tc = static_cast<double>(plan.chunk);
  const double nband = stencil.banded() ? static_cast<double>(stencil.npoints()) : 0.0;
  // Per chunk pass every cell is read and written once from memory, and
  // the bands are streamed once; tile boundaries reload a halo of width s
  // from each y-neighbour per position.
  const double halo = 2.0 * s / static_cast<double>(plan.wy);
  TrafficEstimate e;
  e.mem_doubles_per_update = (2.0 + nband) / tc * (1.0 + halo) + 2.0 * halo / tc;
  // Associativity conflict leak: the wavefront interleaves 2 + nband
  // streaming arrays, and cross-interference grows roughly quadratically
  // with the stream count.  This is what pulls the banded nuCATS down
  // towards SysBandIC (Section IV-E) while leaving the constant case
  // cache-bound.
  e.mem_doubles_per_update += 0.05 * (2.0 + nband) * (2.0 + nband);
  // The moving wavefront spans ~Tc*s planes; as that approaches the depth
  // of the traversal dimension, ramp-up/drain and conflict pressure reduce
  // the effective cache bandwidth (calibrated against Figs. 6-9: nuCATS
  // tracks LL1Band0C on deep domains and falls off on shallow ones).
  const double depth = static_cast<double>(shape[2]);
  const double skew = 1.0 + 0.5 * tc * s / depth;
  e.llc_doubles_per_update =
      (static_cast<double>(stencil.reads_per_update()) + 1.0) * skew;
  (void)machine;
  return e;
}

}  // namespace nustencil::schemes
