#include "schemes/corals.hpp"

#include "schemes/corals_common.hpp"

namespace nustencil::schemes {

RunResult CoralsScheme::run(core::Problem& problem, const RunConfig& config) const {
  CoralsParams params;
  params.name = name();
  params.numa_init = false;
  params.owner_shift = config.num_threads > 1 ? config.num_threads / 2 : 0;
  return run_corals_like(problem, config, params);
}

TrafficEstimate CoralsScheme::estimate_traffic(const topology::MachineSpec& machine,
                                               const Coord& shape,
                                               const core::StencilSpec& stencil, int threads,
                                               long timesteps) const {
  return estimate_corals_traffic(machine, shape, stencil, threads, timesteps);
}

}  // namespace nustencil::schemes
