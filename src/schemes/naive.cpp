#include "schemes/naive.hpp"

#include <algorithm>

#include "schemes/decompose.hpp"
#include "schemes/run_support.hpp"
#include "thread/barrier.hpp"

namespace nustencil::schemes {

namespace {

/// Splits `box` into up to `parts` slabs along its longest dimension
/// other than the unit-stride one (splitting x would change the row
/// segmentation the kernels see; y/z splits only re-order whole rows, so
/// results stay bit-identical to the unsplit sweep).  Rank-1 boxes are
/// returned whole for the same reason.
std::vector<core::Box> split_for_stealing(const core::Box& box, int parts) {
  std::vector<core::Box> out;
  if (box.empty()) return out;
  const int rank = box.rank();
  int d = -1;
  for (int e = 1; e < rank; ++e)
    if (d < 0 || box.extent(e) > box.extent(d)) d = e;
  if (d < 0 || box.extent(d) < 2) {
    out.push_back(box);
    return out;
  }
  const Index extent = box.extent(d);
  const Index k = std::min<Index>(extent, parts);
  for (Index i = 0; i < k; ++i) {
    core::Box b = box;
    b.lo[d] = box.lo[d] + extent * i / k;
    b.hi[d] = box.lo[d] + extent * (i + 1) / k;
    if (!b.empty()) out.push_back(b);
  }
  return out;
}

}  // namespace

RunResult NaiveScheme::run(core::Problem& problem, const RunConfig& config) const {
  RunSupport sup(problem, config);
  const int n = config.num_threads;

  core::Box domain;
  domain.lo = Coord::filled(problem.shape().rank(), 0);
  domain.hi = problem.shape();
  const Coord counts = decompose_counts(problem.shape(), n);
  const std::vector<core::Box> tiles = decompose_domain(domain, counts);

  // NUMA-aware allocation: each thread first-touches its own tile.
  sup.run_workers([&](int tid) {
    sup.executor(tid).first_touch_box(tiles[static_cast<std::size_t>(tid)],
                                      sup.node_of_thread(tid), config.seed);
  });
  sup.finalize_boundary();

  const core::Box updatable =
      core::updatable_box(problem.shape(), problem.stencil(), config.boundary);

  threading::Barrier barrier(n);

  if (config.schedule == sched::Schedule::Static) {
    Timer timer;
    sup.run_workers([&](int tid) {
      const core::Box mine = intersect(tiles[static_cast<std::size_t>(tid)], updatable);
      core::Executor& exec = sup.executor(tid);
      trace::ThreadRecorder* rec = sup.recorder(tid);
      for (long t = 0; t < config.timesteps; ++t) {
        if (config.progress) config.progress->set_layer(t);
        exec.update_box(mine, t, tid);
        barrier.arrive_and_wait(&sup.abort(), rec);
      }
    });
    const double seconds = timer.seconds();

    RunResult r = sup.finish(name(), seconds);
    r.details["tiles"] = static_cast<double>(n);
    return r;
  }

  // Work-stealing schedule: refine every thread's slab into subtiles so
  // thieves can pick up fractions of an oversized slab, keeping the
  // owner on its own pages for the un-stolen majority.
  sched::TaskPool& pool = *sup.pool();
  std::vector<core::Box> tasks;
  std::vector<int> task_owner;
  for (int tid = 0; tid < n; ++tid) {
    const core::Box mine = intersect(tiles[static_cast<std::size_t>(tid)], updatable);
    for (const core::Box& b : split_for_stealing(mine, 8)) {
      tasks.push_back(b);
      task_owner.push_back(tid);
    }
  }
  const int ntasks = static_cast<int>(tasks.size());
  const auto owner_of = [&](int i) {
    return task_owner[static_cast<std::size_t>(i)];
  };

  Timer timer;
  sup.run_workers([&](int tid) {
    trace::ThreadRecorder* rec = sup.recorder(tid);
    for (long t = 0; t < config.timesteps; ++t) {
      if (config.progress) config.progress->set_layer(t);
      if (tid == 0) pool.reset(ntasks, owner_of);
      barrier.arrive_and_wait(&sup.abort(), rec);
      pool.run(
          tid,
          [&](int task, int wtid, bool stolen) {
            core::Executor& exec = sup.executor(wtid);
            const Index before = exec.updates_done();
            exec.update_box(tasks[static_cast<std::size_t>(task)], t, wtid);
            if (stolen) pool.add_stolen_updates(wtid, exec.updates_done() - before);
            return sched::StepResult::Done;
          },
          &sup.abort(), rec);
      // Fences the reset of the next step: every worker must have left
      // run() before tid 0 rebuilds the deques.
      barrier.arrive_and_wait(&sup.abort(), rec);
    }
  });
  const double seconds = timer.seconds();

  RunResult r = sup.finish(name(), seconds);
  r.details["tiles"] = static_cast<double>(ntasks);
  return r;
}

TrafficEstimate NaiveScheme::estimate_traffic(const topology::MachineSpec& machine,
                                              const Coord& shape,
                                              const core::StencilSpec& stencil, int threads,
                                              long /*timesteps*/) const {
  // Per update: 1 compulsory write; reads depend on how many of the 2s+1
  // source slices the last-level cache can hold per thread.  When they all
  // fit, only the leading slice misses (SysBandIC-like: 1 read); when none
  // fit, every tap misses (SysBand0C-like).
  const int s = stencil.order();
  const int rank = stencil.rank();
  double slice_doubles = 1.0;
  for (int d = 0; d + 1 < rank; ++d) slice_doubles *= static_cast<double>(shape[d]);
  const double working_set =
      (2.0 * s + 2.0) * slice_doubles * 8.0;  // source slices + the write slice
  const auto& llc = machine.last_level_cache();
  const Index instances = ceil_div(threads, llc.shared_by_cores);
  const double llc_share = static_cast<double>(llc.size_bytes) *
                           static_cast<double>(instances) / static_cast<double>(threads);
  // Fit factor in [0,1]: 1 = ideal caching of the moving slices.
  const double fit = std::clamp(llc_share / working_set, 0.0, 1.0);
  const double reads_ic = 1.0, reads_0c = static_cast<double>(stencil.npoints());
  double reads = reads_0c + (reads_ic - reads_0c) * fit;
  double writes = 1.0;
  double bands = stencil.banded() ? static_cast<double>(stencil.npoints()) : 0.0;

  TrafficEstimate e;
  e.mem_doubles_per_update = reads + writes + bands;
  e.llc_doubles_per_update = static_cast<double>(stencil.reads_per_update()) + 1.0;
  return e;
}

}  // namespace nustencil::schemes
