// Shared scaffolding for scheme implementations: instrumentation setup,
// the worker team, per-thread executors, boundary initialisation, and
// result assembly.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/timer.hpp"
#include "core/executor.hpp"
#include "hwc/group.hpp"
#include "core/reference.hpp"
#include "numa/page_table.hpp"
#include "numa/traffic.hpp"
#include "prof/profiler.hpp"
#include "sched/pool.hpp"
#include "schemes/scheme.hpp"
#include "thread/abort.hpp"
#include "thread/team.hpp"

namespace nustencil::schemes {

/// The machine used for instrumentation when RunConfig::machine is null.
const topology::MachineSpec& default_machine();

class RunSupport {
 public:
  RunSupport(core::Problem& problem, const RunConfig& config);

  /// Detaches the per-span counter sampler from the (caller-owned) trace
  /// so a reused Trace never dereferences a dead Profiler.
  ~RunSupport();

  core::Problem& problem() { return *problem_; }
  const RunConfig& config() const { return *config_; }
  const topology::MachineSpec& machine() const { return *machine_; }
  threading::Team& team() { return *team_; }

  /// Abort token shared by all spin-waits/barriers of this run.
  const threading::AbortToken& abort() const { return abort_; }

  /// Runs body(tid) on the team; a throwing worker triggers the abort
  /// token so every other worker unwinds from its spin-waits, then the
  /// first exception is rethrown here.
  void run_workers(const std::function<void(int)>& body);

  /// Per-thread executor (one per worker; never shared between threads).
  core::Executor& executor(int tid) { return *executors_[static_cast<std::size_t>(tid)]; }

  /// Span recorder of worker `tid`; nullptr when neither RunConfig::trace
  /// nor collect_phase_metrics is set (every hook then costs one branch).
  trace::ThreadRecorder* recorder(int tid) {
    return trace_ ? trace_->thread(tid) : nullptr;
  }

  /// NUMA node of worker `tid` under the virtual (fill-socket-first)
  /// placement of the instrumented machine; 0 when not instrumenting.
  int node_of_thread(int tid) const;

  /// Work-stealing task pool of this run, or nullptr under the static
  /// schedule.  Created on first call (call before workers start: the
  /// pool resolves metrics counters, which is not thread-safe) and
  /// placed with the same machine/pin-policy node map the traffic
  /// instrumentation uses, so victim ordering is NUMA-aware even when
  /// instrumentation is off.  finish() folds its stats into the result.
  sched::TaskPool* pool();

  /// Serial allocation/initialisation by "thread 0": fills the whole
  /// problem and first-touches every page on node 0 — exactly what a
  /// NUMA-ignorant scheme gets from the kernel.
  void serial_init();

  /// Freezes Dirichlet boundary cells (copies them into the second buffer
  /// and marks them in the dependency checker).  Call after the data has
  /// been initialised.
  void finalize_boundary();

  /// Total cell updates performed by all executors so far.
  Index total_updates() const;

  /// Assembles the RunResult (collects traffic, verifies the dependency
  /// checker reached `timesteps` everywhere).
  RunResult finish(const std::string& scheme_name, double seconds);

 private:
  core::Problem* problem_;
  const RunConfig* config_;
  const topology::MachineSpec* machine_;
  std::optional<trace::Trace> own_trace_;  ///< metrics-only fallback recorder
  trace::Trace* trace_ = nullptr;
  std::optional<numa::PageTable> pages_;
  std::optional<numa::VirtualTopology> topo_;
  std::optional<numa::TrafficRecorder> recorder_;
  std::optional<prof::Profiler> profiler_;  ///< per-span counter sampler
  std::optional<hwc::ThreadSet> hw_;        ///< per-thread perf counter groups
  std::optional<core::DependencyChecker> checker_;
  std::vector<std::unique_ptr<core::Executor>> executors_;
  std::unique_ptr<threading::Team> team_;
  std::unique_ptr<sched::TaskPool> pool_;
  threading::AbortToken abort_;
};

}  // namespace nustencil::schemes
