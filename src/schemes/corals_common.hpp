// Shared engine of CORALS and nuCORALS (paper Section III).
//
// Bidirectional tiling in virtual (unwrapped-periodic) coordinates:
//
//  Phase I   The spatial dimensions (all but unit-stride) are decomposed
//            into exactly one tile per thread; each thread first-touches
//            its tile (nuCORALS) or thread 0 initialises everything
//            (CORALS, NUMA-ignorant).
//
//  Phase II  Time is tiled into layers of height tau = b/(2s) where b is
//            the smallest decomposed extent of a thread tile.  Within a
//            layer, each tile owns a *thread parallelogram*: its spatial
//            window skewed RIGHT with slope s in every dimension (the
//            window of an undecomposed dimension is the whole ring,
//            skewed the same way).  Right-skewing makes the window match
//            the stencil's dependence cone: a thread never reads anything
//            left of its own window, so dependencies flow exclusively
//            from the right neighbour to the left one.
//
//  Phase III Each thread covers its thread parallelogram with a *root
//            parallelogram* skewed LEFT (slope -s), recursively bisected
//            along the relatively longest dimension into *base
//            parallelograms* (core::decompose_parallelogram).  Bases are
//            executed in recursion order — which provably respects every
//            intra-thread dependency for left-skewed cuts — and clipped
//            against the thread parallelogram.  A base whose footprint
//            reaches within 2s of the right window boundary first waits,
//            for every right-neighbour base overlapping the needed input
//            region, on that neighbour's completion flag (the paper's
//            "local synchronisation"); each thread sets its own flag
//            after finishing the local part of a base.  A global barrier
//            separates layers.
#pragma once

#include <string>

#include "common/types.hpp"

#include "schemes/scheme.hpp"

namespace nustencil::schemes {

struct CoralsParams {
  std::string name;
  /// Parallel first-touch by owners (nuCORALS) vs serial init (CORALS).
  bool numa_init = true;
  /// Tile -> thread: owner = (tile + owner_shift) % threads.  nuCORALS
  /// uses 0 (the allocating thread processes its own tile); CORALS'
  /// affinity-blind task assignment is modelled with a shifted map.
  int owner_shift = 0;
  /// Override tau (0 = the paper's default b/(2s)).
  long tau_override = 0;
  /// Override base parallelogram sizes (0 = defaults).
  Index base_space = 0;
  long base_time = 0;

  /// Override the spatial decomposition (rank-matching Coord whose product
  /// equals the thread count); rank 0 = the paper's default (never cut the
  /// unit-stride dimension).  Used by the unit-stride ablation bench.
  Coord force_counts;
};

RunResult run_corals_like(core::Problem& problem, const RunConfig& config,
                          const CoralsParams& params);

/// Shared analytic traffic estimate for the CORALS family.
TrafficEstimate estimate_corals_traffic(const topology::MachineSpec& machine,
                                        const Coord& shape,
                                        const core::StencilSpec& stencil, int threads,
                                        long timesteps);

}  // namespace nustencil::schemes
