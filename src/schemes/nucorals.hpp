// nuCORALS — the paper's NUMA-aware, cache-oblivious scheme (Section III).
//
// Three phases per run: (I) NUMA-aware spatial decomposition with
// first-touch affinity, (II) temporal tiling into layers of height
// tau = b/(2s) of right-skewed thread parallelograms, (III) cache-
// oblivious recursive subdivision of a left-skewed root parallelogram per
// thread, with spin-flag local synchronisation at thread boundaries and a
// global barrier between layers.  See schemes/corals_common.hpp.
#pragma once

#include "schemes/corals_common.hpp"
#include "schemes/scheme.hpp"

namespace nustencil::schemes {

class NuCoralsScheme : public Scheme {
 public:
  /// `tau_override` != 0 replaces the paper's default tau = b/(2s)
  /// (used by the ablation bench exploring the affinity/locality trade).
  explicit NuCoralsScheme(long tau_override = 0) : tau_override_(tau_override) {}

  std::string name() const override { return "nuCORALS"; }
  bool numa_aware() const override { return true; }
  RunResult run(core::Problem& problem, const RunConfig& config) const override;
  TrafficEstimate estimate_traffic(const topology::MachineSpec& machine, const Coord& shape,
                                   const core::StencilSpec& stencil, int threads,
                                   long timesteps) const override;

 private:
  long tau_override_;
};

}  // namespace nustencil::schemes
