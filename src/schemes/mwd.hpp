// MWD — multicore wavefront diamond blocking (Malas et al.,
// arXiv:1410.3060): diamond tiles in the (z,t) plane sized for the
// *shared* last-level cache, each executed cooperatively by a thread
// group that splits the y/x cross-section per member and synchronises
// per time level (multi-dimensional intra-tile parallelization,
// arXiv:1510.04995), with groups pipelining across diamonds through
// progress counters.  NUMA-ignorant: serial initialisation, round-robin
// column ownership.  See schemes/mwd_common.hpp.
#pragma once

#include "schemes/mwd_common.hpp"
#include "schemes/scheme.hpp"

namespace nustencil::schemes {

class MwdScheme : public Scheme {
 public:
  /// `tau_override` != 0 replaces the cache-derived diamond half-height
  /// (used by bench/ablation_group_size).
  explicit MwdScheme(long tau_override = 0) : tau_override_(tau_override) {}

  std::string name() const override { return "MWD"; }
  bool numa_aware() const override { return false; }
  RunResult run(core::Problem& problem, const RunConfig& config) const override;
  TrafficEstimate estimate_traffic(const topology::MachineSpec& machine, const Coord& shape,
                                   const core::StencilSpec& stencil, int threads,
                                   long timesteps) const override;

 private:
  long tau_override_;
};

}  // namespace nustencil::schemes
