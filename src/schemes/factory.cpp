#include <vector>

#include "schemes/cats.hpp"
#include "schemes/corals.hpp"
#include "schemes/diamond.hpp"
#include "schemes/naive.hpp"
#include "schemes/nucats.hpp"
#include "schemes/nucorals.hpp"
#include "schemes/scheme.hpp"
#include "schemes/trapezoid.hpp"

namespace nustencil::schemes {

std::unique_ptr<Scheme> make_scheme(const std::string& name) {
  if (name == "NaiveSSE") return std::make_unique<NaiveScheme>();
  if (name == "CATS") return std::make_unique<CatsScheme>();
  if (name == "nuCATS") return std::make_unique<NuCatsScheme>();
  if (name == "CORALS") return std::make_unique<CoralsScheme>();
  if (name == "nuCORALS") return std::make_unique<NuCoralsScheme>();
  if (name == "Pochoir") return std::make_unique<TrapezoidScheme>();
  if (name == "PLuTo") return std::make_unique<DiamondScheme>();
  throw Error("make_scheme: unknown scheme '" + name + "'");
}

const std::vector<std::string>& scheme_names() {
  static const std::vector<std::string> names = {
      "NaiveSSE", "CATS", "nuCATS", "CORALS", "nuCORALS", "Pochoir", "PLuTo"};
  return names;
}

}  // namespace nustencil::schemes
