#include <algorithm>
#include <cctype>
#include <vector>

#include "schemes/cats.hpp"
#include "schemes/corals.hpp"
#include "schemes/diamond.hpp"
#include "schemes/mwd.hpp"
#include "schemes/naive.hpp"
#include "schemes/nucats.hpp"
#include "schemes/nucorals.hpp"
#include "schemes/numwd.hpp"
#include "schemes/scheme.hpp"
#include "schemes/trapezoid.hpp"

namespace nustencil::schemes {

std::unique_ptr<Scheme> make_scheme(const std::string& name) {
  // Legend names are matched case-insensitively so command lines may say
  // e.g. --scheme=nucorals; the canonical spellings stay in scheme_names().
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "naivesse") return std::make_unique<NaiveScheme>();
  if (lower == "cats") return std::make_unique<CatsScheme>();
  if (lower == "nucats") return std::make_unique<NuCatsScheme>();
  if (lower == "corals") return std::make_unique<CoralsScheme>();
  if (lower == "nucorals") return std::make_unique<NuCoralsScheme>();
  if (lower == "pochoir") return std::make_unique<TrapezoidScheme>();
  if (lower == "pluto") return std::make_unique<DiamondScheme>();
  if (lower == "mwd") return std::make_unique<MwdScheme>();
  if (lower == "numwd") return std::make_unique<NuMwdScheme>();
  throw Error("make_scheme: unknown scheme '" + name + "'");
}

const std::vector<std::string>& scheme_names() {
  static const std::vector<std::string> names = {
      "NaiveSSE", "CATS",  "nuCATS", "CORALS", "nuCORALS",
      "Pochoir",  "PLuTo", "MWD",    "nuMWD"};
  return names;
}

}  // namespace nustencil::schemes
