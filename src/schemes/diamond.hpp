// Diamond — stand-in for PLuTo [Bondhugula et al., PLDI'08].
//
// PLuTo's polyhedral transformation of a Jacobi loop nest produces static,
// fixed-size time-skewed tiles executed as parallel wavefronts with
// frequent synchronisation, and performs no NUMA-aware allocation.  This
// scheme reproduces those properties: the highest-stride dimension is cut
// into one left-skewed parallelogram per thread (a static tile ring), and
// the ring is executed as a per-time-step pipeline — tile i may compute
// step t only once tile i-1 has finished step t-1 (a progress-counter
// wavefront, the moral equivalent of PLuTo's per-diagonal barriers).
// Serial initialisation leaves every page on node 0.
#pragma once

#include "schemes/scheme.hpp"

namespace nustencil::schemes {

/// Time-block height the diamond pipeline would use for this
/// configuration (exposed for --explain).
long diamond_block_height(const Coord& shape, const core::StencilSpec& stencil,
                          int threads, long timesteps);

class DiamondScheme : public Scheme {
 public:
  /// `block_override` != 0 fixes the time-block height (the "tuned tile
  /// size" knob of the original).
  explicit DiamondScheme(long block_override = 0) : block_override_(block_override) {}

  std::string name() const override { return "PLuTo"; }
  bool numa_aware() const override { return false; }
  RunResult run(core::Problem& problem, const RunConfig& config) const override;
  TrafficEstimate estimate_traffic(const topology::MachineSpec& machine, const Coord& shape,
                                   const core::StencilSpec& stencil, int threads,
                                   long timesteps) const override;

 private:
  long block_override_;
};

}  // namespace nustencil::schemes
