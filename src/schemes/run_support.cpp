#include "schemes/run_support.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "hwc/validate.hpp"
#include "telemetry/sampler.hpp"

namespace nustencil::schemes {

const topology::MachineSpec& default_machine() {
  static const topology::MachineSpec machine = topology::xeonX7550();
  return machine;
}

RunSupport::RunSupport(core::Problem& problem, const RunConfig& config)
    : problem_(&problem), config_(&config) {
  machine_ = config.machine ? config.machine : &default_machine();
  NUSTENCIL_CHECK(config.num_threads >= 1, "RunConfig: need at least one thread");
  NUSTENCIL_CHECK(config.timesteps >= 1, "RunConfig: need at least one time step");
  if (config.instrument) {
    NUSTENCIL_CHECK(config.num_threads <= machine_->cores(),
                    "RunConfig: more threads than cores on the instrumented machine");
    pages_.emplace(config.page_bytes);
    topo_.emplace(*machine_, config.pin_policy);
    recorder_.emplace(*pages_, *topo_, config.num_threads);
    problem.attach(*pages_);
    if (config.locality_sample_updates >= 0) {
      Index window = config.locality_sample_updates;
      if (window == 0) {
        // Auto: ~32 samples per thread over the whole run.
        const Index per_thread = problem.volume() * config.timesteps /
                                 std::max(1, config.num_threads);
        window = std::max<Index>(1, per_thread / 32);
      }
      recorder_->set_sample_window(window);
    }
  }
  if (config.check_dependencies) {
    // The executors commit *storage* indices, so the shadow grid covers
    // the storage layout; padding cells (padded layouts only) are never
    // updated and are frozen so check_all_at ignores them.
    checker_.emplace(problem.storage_volume());
    const Index xs = problem.buffer(0).xstride();
    const Index nx = problem.shape()[0];
    if (xs != nx)
      for (Index row = 0; row < problem.storage_volume(); row += xs)
        for (Index x = nx; x < xs; ++x) checker_->freeze(row + x);
  }

  if (config.trace) {
    trace_ = config.trace;
  } else if (config.collect_phase_metrics) {
    own_trace_.emplace(/*events_per_thread=*/0);  // totals only, no events
    trace_ = &*own_trace_;
  }
  if (trace_) trace_->begin_run(config.num_threads);

  core::Instrumentation instr;
  instr.pages = pages_ ? &*pages_ : nullptr;
  instr.traffic = recorder_ ? &*recorder_ : nullptr;
  instr.checker = checker_ ? &*checker_ : nullptr;
  instr.cache_sim = config.cache_sim;
  instr.metrics = config.metrics;
  instr.progress = config.progress;
  const core::KernelPolicy policy =
      config.use_simd ? config.kernel : core::KernelPolicy::Scalar;
  for (int tid = 0; tid < config.num_threads; ++tid) {
    executors_.push_back(std::make_unique<core::Executor>(
        problem, instr, policy, config.kernel_stores));
    executors_.back()->set_trace(recorder(tid));
  }

  if (config.hw_mode != hwc::Mode::Off) {
    hwc::SyscallBackend& backend =
        config.hw_backend ? *config.hw_backend : hwc::real_backend();
    hw_.emplace(backend, config.hw_mode, config.hw_events, config.num_threads);
  }

  // The per-span sampler is wanted for explicit profiling and whenever
  // hardware counters measure into a trace (measured deltas ride the
  // same sampler path as the simulated ones).
  const bool hw_sampling = hw_ && hw_->active();
  if ((config.profile_spans || hw_sampling) && trace_) {
    profiler_.emplace();
    profiler_->set_updates_source([this](int tid) {
      return static_cast<std::uint64_t>(
          executors_[static_cast<std::size_t>(tid)]->updates_done());
    });
    if (recorder_) profiler_->set_traffic_source(&*recorder_);
    if (config.cache_sim) profiler_->set_cache_source(config.cache_sim);
    if (hw_sampling)
      profiler_->set_hw_source(
          [this](int tid, trace::CounterSet& out) { hw_->sample(tid, out); });
    trace_->set_sampler(&*profiler_);
    trace_->set_flops_per_update(problem.stencil().flops());
  }

  team_ = std::make_unique<threading::Team>(config.num_threads, config.pin_threads);

  // Bind the live telemetry sampler last, when every shard it snapshots
  // exists.  All sources are single-writer stores the sampler only
  // reads, so the hot path gains no new writes.
  if (config.telemetry) {
    telemetry::RunSources sources;
    sources.num_threads = config.num_threads;
    sources.timesteps = config.timesteps;
    sources.progress = config.progress;
    sources.traffic = recorder_ ? &*recorder_ : nullptr;
    sources.cache = config.cache_sim;
    sources.registry = config.metrics;
    sources.trace = trace_;
    sources.abort = &abort_;
    if (hw_ && hw_->active()) {
      sources.hw = [this](int tid, trace::CounterSet& out) {
        hw_->sample(tid, out);
      };
      const hwc::HwRunStats hw_stats = hw_->stats();
      sources.hw_status = hw_stats.status;
      sources.hw_reason = hw_stats.reason;
    }
    config.telemetry->begin_run(sources);
  }
}

RunSupport::~RunSupport() {
  // The sampler must stop reading before the shards it points into die.
  if (config_->telemetry) config_->telemetry->detach_run();
  if (profiler_ && trace_) trace_->set_sampler(nullptr);
}

void RunSupport::run_workers(const std::function<void(int)>& body) {
  team_->run([&](int tid) {
    // Counters stay enabled for the whole parallel region (one ioctl
    // pair per region, not per span); the profiler samples cumulative
    // values at span boundaries in between.
    if (hw_) hw_->attach(tid);
    try {
      body(tid);
    } catch (...) {
      abort_.trigger();
      if (hw_) hw_->detach(tid);
      throw;
    }
    if (hw_) hw_->detach(tid);
  });
}

int RunSupport::node_of_thread(int tid) const {
  return topo_ ? topo_->node_of_thread(tid) : 0;
}

sched::TaskPool* RunSupport::pool() {
  if (config_->schedule == sched::Schedule::Static) return nullptr;
  if (!pool_) {
    pool_ = std::make_unique<sched::TaskPool>(
        config_->num_threads,
        sched::thread_nodes(*machine_, config_->pin_policy, config_->num_threads),
        config_->schedule);
    pool_->bind_metrics(config_->metrics);
  }
  return pool_.get();
}

void RunSupport::serial_init() {
  core::Box whole;
  whole.lo = Coord::filled(problem_->shape().rank(), 0);
  whole.hi = problem_->shape();
  executors_[0]->first_touch_box(whole, /*node=*/0, config_->seed);
}

void RunSupport::finalize_boundary() {
  const core::Boundary& bc = config_->boundary;
  const Coord& shape = problem_->shape();
  const int rank = shape.rank();
  if (bc.all_periodic(rank)) return;

  const core::Box interior = core::updatable_box(shape, problem_->stencil(), bc);
  const Coord& strides = problem_->buffer(0).strides();
  double* u0 = problem_->buffer(0).data();
  double* u1 = problem_->buffer(1).data();

  Coord pos = Coord::filled(rank, 0);
  const Index volume = problem_->volume();
  for (Index c = 0; c < volume; ++c) {
    bool inside = true;
    for (int d = 0; d < rank; ++d)
      inside = inside && pos[d] >= interior.lo[d] && pos[d] < interior.hi[d];
    if (!inside) {
      // Storage index of the logical cell (== c for dense layouts).
      const Index i = linear_index(pos, strides);
      u1[i] = u0[i];
      if (checker_) checker_->freeze(i);
    }
    // Advance the odometer.
    for (int d = 0; d < rank; ++d) {
      if (++pos[d] < shape[d]) break;
      pos[d] = 0;
    }
  }
}

Index RunSupport::total_updates() const {
  Index total = 0;
  for (const auto& e : executors_) total += e->updates_done();
  return total;
}

RunResult RunSupport::finish(const std::string& scheme_name, double seconds) {
  RunResult r;
  r.scheme = scheme_name;
  r.threads = config_->num_threads;
  r.timesteps = config_->timesteps;
  r.seconds = seconds;
  r.updates = total_updates();
  // Stop live telemetry first: the sampler takes its closing sample and
  // emits the run_end event while every shard is still warm.
  if (config_->telemetry)
    config_->telemetry->end_run(seconds, static_cast<std::uint64_t>(r.updates));
  if (recorder_) r.traffic = recorder_->collect();
  if (trace_) r.phases = trace_->breakdown();
  if (profiler_ && trace_ && config_->profile_spans)
    r.prof = prof::summarize(*trace_, trace_->flops_per_update());
  if (hw_) {
    r.hw = hw_->stats();
    if (trace_) {
      // Attributed totals: the exact out-of-ring sums of every Tile and
      // Init span delta — the same invariant the simulated counters
      // carry.  The remainder against `total` is real unattributed time
      // (barriers, spin-waits, scheduling) and stays visible as such.
      for (int tid = 0; tid < config_->num_threads &&
                        tid < static_cast<int>(r.hw.threads.size());
           ++tid) {
        const trace::ThreadRecorder* rec = trace_->thread(tid);
        const trace::CounterSet& tile = rec->counter_total(trace::Phase::Tile);
        const trace::CounterSet& init = rec->counter_total(trace::Phase::Init);
        for (int ev = 0; ev < hwc::kNumEvents; ++ev) {
          const trace::SpanCounter slot =
              hwc::event_slot(static_cast<hwc::Event>(ev));
          const std::uint64_t sum = tile.at(slot) + init.at(slot);
          r.hw.threads[static_cast<std::size_t>(tid)]
              .attributed[static_cast<std::size_t>(ev)] = sum;
          r.hw.attributed[static_cast<std::size_t>(ev)] += sum;
        }
      }
      if (config_->cache_sim && trace_->events_per_thread() > 0 &&
          r.hw.available(hwc::Event::CacheMisses))
        r.hw.validation = hwc::validate_against_simulation(*trace_);
    }
  }
  if (checker_) checker_->check_all_at(config_->timesteps);
  if (pool_) {
    r.sched = pool_->stats();
    r.details["steal_attempts"] = static_cast<double>(r.sched.total_attempts());
    r.details["steals"] = static_cast<double>(r.sched.total_steals());
    r.details["steal_fails"] = static_cast<double>(r.sched.total_fails());
    r.details["stolen_updates"] =
        static_cast<double>(r.sched.total_stolen_updates());
  }
  return r;
}

}  // namespace nustencil::schemes
