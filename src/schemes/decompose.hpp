// Spatial domain decomposition (paper Section III-D).
//
// n tiles are created by dividing all dimensions except the unit-stride
// one (cutting unit-stride rows reduces bandwidth utilisation).  Each
// dimension is subdivided into ~n^(1/(m-2)) tiles; when that is not an
// integer, dimensions with a higher stride receive more cuts.  For 1D
// domains there is no choice but to cut the unit-stride dimension.
#pragma once

#include <vector>

#include "core/box.hpp"

namespace nustencil::schemes {

/// Per-dimension tile counts whose product is exactly n (counts[0] == 1
/// for rank >= 2).
Coord decompose_counts(const Coord& shape, int n);

/// Splits `domain` into the grid of tiles given by `counts`, highest
/// stride slowest (tile index = z_tile * (ny*nx) + y_tile * nx + x_tile).
std::vector<core::Box> decompose_domain(const core::Box& domain, const Coord& counts);

/// Tile coordinates of linear tile `idx` in the `counts` grid.
Coord tile_coord(const Coord& counts, int idx);

/// Linear tile index of tile coordinate `tc` (inverse of tile_coord).
int tile_index(const Coord& counts, const Coord& tc);

}  // namespace nustencil::schemes
