#include "schemes/mwd.hpp"

namespace nustencil::schemes {

RunResult MwdScheme::run(core::Problem& problem, const RunConfig& config) const {
  MwdParams params;
  params.name = name();
  params.numa_init = false;
  params.tau_override = tau_override_;
  return run_mwd_like(problem, config, params);
}

TrafficEstimate MwdScheme::estimate_traffic(const topology::MachineSpec& machine,
                                            const Coord& shape,
                                            const core::StencilSpec& stencil,
                                            int threads, long timesteps) const {
  return estimate_mwd_traffic(machine, shape, stencil, threads, timesteps);
}

}  // namespace nustencil::schemes
