// Shared machinery of CATS and nuCATS (paper Section II).
//
// Both schemes divide the domain into tiles along the y dimension (and,
// when nuCATS needs to double the tile count, additionally halve the
// wavefront-traversal dimension z).  Every tile is traversed by a
// time-skewed wavefront along z: at sweep position p, the plane
// z = p - k*s is updated from time tb+k to tb+k+1 for every k in the
// temporal chunk [tb, tb+Tc).  The moving wavefront spans ~Tc*s planes of
// one tile cross-section (Nx x Wy) and is sized to fit the last-level
// cache — that is CATS' "carefully chosen cross-section".
//
// Tiles advance through (p, k) in lockstep, synchronised by per-tile
// progress counters:
//   * y-neighbours must have finished position p-s entirely,
//   * the z-lower neighbour must have finished position p-2s,
//   * the z-upper neighbour must have finished (p, k-1).
// All waits target lexicographically earlier (p, k) states, so the
// pipeline is deadlock-free.
//
// CATS assigns tiles to threads round-robin and initialises data serially
// (NUMA-ignorant); nuCATS decomposes the domain into per-thread subdomains
// (parallel first touch) and assigns each tile to the thread owning it,
// adjusting the tile count to divide the thread count (Section II).
#pragma once

#include <vector>

#include "schemes/scheme.hpp"

namespace nustencil::schemes {

struct CatsPlan {
  long chunk = 1;       ///< temporal chunk depth Tc
  Index wy = 1;         ///< tile width along y
  int tiles_y = 1;      ///< tiles along y
  int z_segments = 1;   ///< 1 or 2 segments along the traversal dimension
  std::vector<core::Box> tiles;  ///< index = zseg * tiles_y + ty
  std::vector<int> owner;        ///< tile -> thread

  int num_tiles() const { return tiles_y * z_segments; }
};

/// Computes the tiling for either scheme. `numa_aware` selects the nuCATS
/// tile-count adjustment + ownership assignment versus CATS round-robin.
/// `tiles_per_thread` > 1 (used by the stealing schedules) refines the
/// y-tiling by an integer multiplier so thieves can take fractions of a
/// subdomain; the multiplier keeps every thread's owned y-range — and
/// hence the nuCATS first-touch placement — identical to the unrefined
/// plan, and is reduced (down to 1) when the minimum tile width or a
/// z-segmented plan forbids refining.
CatsPlan plan_cats(const core::Box& updatable, const core::StencilSpec& stencil,
                   const topology::MachineSpec& machine, int threads, long timesteps,
                   bool numa_aware, int tiles_per_thread = 1);

/// Shared run implementation; `numa_aware` controls init and assignment.
RunResult run_cats_like(const std::string& scheme_name, bool numa_aware,
                        core::Problem& problem, const RunConfig& config);

/// Shared analytic traffic estimate for the CATS family.
TrafficEstimate estimate_cats_traffic(const topology::MachineSpec& machine,
                                      const Coord& shape, const core::StencilSpec& stencil,
                                      int threads, long timesteps);

}  // namespace nustencil::schemes
