#include "schemes/mwd_common.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "schemes/run_support.hpp"
#include "thread/barrier.hpp"
#include "thread/spinflag.hpp"

namespace nustencil::schemes {

namespace {

/// Command slot of one thread group under the stealing schedules: the
/// leader writes (column, step), then publishes via the seq counter; the
/// per-step group barrier keeps the slot single-writer (members must have
/// read command k before the leader can finish step k and issue k+1).
struct alignas(kCacheLineBytes) GroupCtrl {
  threading::ProgressCounter seq;
  std::atomic<int> col{0};
  std::atomic<long> t{0};
  long issued = 0;  ///< leader-local publication count
};

}  // namespace

MwdPlan plan_mwd(const Coord& shape, const core::StencilSpec& stencil,
                 const topology::MachineSpec& machine, int threads, long timesteps,
                 bool numa_aware, int group_size, long tau_override) {
  const int rank = shape.rank();
  const int s = stencil.order();
  const Index nz = shape[rank - 1];
  NUSTENCIL_CHECK(threads >= 1, "MWD: thread count must be >= 1");
  NUSTENCIL_CHECK(nz >= 2 * s,
                  "MWD: the traversal dimension must be at least 2s cells");

  MwdPlan plan;

  // Thread groups: auto picks the largest divisor of the thread count
  // that fits inside one LLC's sharer set, so a group really can share
  // its diamond's working set.
  if (group_size > 0) {
    NUSTENCIL_CHECK(threads % group_size == 0,
                    "MWD: group size must divide the thread count");
    plan.group_size = group_size;
  } else {
    const int cap = std::min(threads, machine.last_level_cache().shared_by_cores);
    int g = 1;
    for (int c = cap; c > 1; --c)
      if (threads % c == 0) {
        g = c;
        break;
      }
    plan.group_size = g;
  }
  plan.groups = threads / plan.group_size;

  // Cross-section split of one group: prefer cutting y (dimension
  // rank-2 keeps unit-stride rows whole), spill the rest onto x.
  plan.dim_y = rank == 3 ? 1 : (rank == 2 ? 0 : -1);
  plan.dim_x = rank == 3 ? 0 : -1;
  if (plan.dim_y >= 0) {
    const Index ny = shape[plan.dim_y];
    for (int c = plan.group_size; c >= 1; --c)
      if (plan.group_size % c == 0 && (c <= ny || c == 1)) {
        plan.gy = c;
        break;
      }
    plan.gx = plan.group_size / plan.gy;
  }

  // Diamond half-height tau: the largest value whose full-width diamond
  // (2*s*tau + 2s planes of every array) still fits half the *whole*
  // shared LLC — the group cooperates inside one diamond, so unlike the
  // CATS/CORALS sizing the budget is not divided per thread.
  const double nband =
      stencil.banded() ? static_cast<double>(stencil.npoints()) : 0.0;
  const double cell_bytes = (2.0 + nband) * 8.0;
  const double cross =
      static_cast<double>(shape.product()) / static_cast<double>(nz);
  const auto diamond_bytes = [&](long t) {
    return (2.0 * s * static_cast<double>(t) + 2.0 * s) * cross * cell_bytes;
  };
  const long tau_max = std::max<long>(1, nz / (2 * s));
  long tau;
  if (tau_override > 0) {
    tau = std::min(tau_override, tau_max);
  } else {
    const double budget = 0.5 * static_cast<double>(
                                    machine.last_level_cache().size_bytes);
    tau = 1;
    while (tau < tau_max && tau < std::max<long>(1, timesteps) &&
           diamond_bytes(tau + 1) <= budget)
      ++tau;
  }

  // Cut the ring into nd >= 1 gaps of at least 2*s*tau cells (the
  // feasibility bound of the dependency rule); when that leaves fewer
  // column pairs than groups, trade diamond height for parallelism.
  int nd = std::max<int>(1, static_cast<int>(nz / (2 * s * tau)));
  while (nd < plan.groups && tau > 1) {
    --tau;
    nd = std::max<int>(1, static_cast<int>(nz / (2 * s * tau)));
  }
  plan.tau = tau;
  plan.columns = nd;
  plan.diamond_bytes = diamond_bytes(tau);
  plan.cuts.resize(static_cast<std::size_t>(nd) + 1);
  for (int j = 0; j <= nd; ++j)
    plan.cuts[static_cast<std::size_t>(j)] = nz * j / nd;

  // Column-pair ownership: nuMWD keeps contiguous ring ranges (so a
  // group's first-touched home pages stay local); MWD deals round-robin.
  plan.owner_group.resize(static_cast<std::size_t>(nd));
  if (numa_aware) {
    for (int k = 0; k < plan.groups; ++k)
      for (int j = nd * k / plan.groups; j < nd * (k + 1) / plan.groups; ++j)
        plan.owner_group[static_cast<std::size_t>(j)] = k;
  } else {
    for (int j = 0; j < nd; ++j)
      plan.owner_group[static_cast<std::size_t>(j)] = j % plan.groups;
  }
  return plan;
}

RunResult run_mwd_like(core::Problem& problem, const RunConfig& config,
                       const MwdParams& params) {
  const int rank = problem.shape().rank();
  NUSTENCIL_CHECK(config.boundary.all_periodic(rank),
                  "MWD/nuMWD require periodic boundaries (diamond columns "
                  "wrap around the traversal ring)");
  RunSupport sup(problem, config);
  const int n = config.num_threads;
  const int s = problem.stencil().order();
  const Coord& shape = problem.shape();
  const int zd = rank - 1;
  const Index nz = shape[zd];

  const MwdPlan plan =
      plan_mwd(shape, problem.stencil(), sup.machine(), n, config.timesteps,
               params.numa_init, config.group_size, params.tau_override);
  const long tau = plan.tau;
  const int nd = plan.columns;
  const int g = plan.group_size;
  const long T = config.timesteps;
  const long cycle = 2 * tau;

  // --- diamond geometry -------------------------------------------------
  const auto breadth = [&](long t) {  // g(t): column half-width in units of s
    const long m = t % cycle;
    return std::min(m, cycle - m);
  };
  const auto v_growing = [&](long t) {
    const long m = t % cycle;
    return m >= 1 && m <= tau;
  };
  // Column index c: even = V_{c/2} (diamond around cut c/2), odd =
  // I_{c/2} (the gap after it).  The z range may be virtual (negative)
  // for V_0 — the executor wraps periodic coordinates.
  const auto col_range = [&](int c, long t, Index& zlo, Index& zhi) {
    const int j = c >> 1;
    const Index w = static_cast<Index>(s) * breadth(t);
    if ((c & 1) == 0) {
      zlo = plan.cuts[static_cast<std::size_t>(j)] - w;
      zhi = plan.cuts[static_cast<std::size_t>(j)] + w;
    } else {
      zlo = plan.cuts[static_cast<std::size_t>(j)] + w;
      zhi = plan.cuts[static_cast<std::size_t>(j) + 1] - w;
    }
  };
  const auto col_growing = [&](int c, long t) {
    return (c & 1) == 0 ? v_growing(t) : !v_growing(t);
  };
  // The two z-neighbour columns whose step-(t-1) completion a growing
  // step waits on; always the opposite family (bipartite wait graph).
  const auto neighbor = [&](int c, int side) {
    const int j = c >> 1;
    if ((c & 1) == 0) return side == 0 ? 2 * ((j + nd - 1) % nd) + 1 : 2 * j + 1;
    return side == 0 ? 2 * j : 2 * ((j + 1) % nd);
  };

  // Member chunk of a column box: split y among gy members, x among gx
  // (multi-dimensional intra-tile parallelization).  For rank 1 there is
  // no cross-section; surplus members idle (empty box) but still barrier.
  const auto member_box = [&](Index zlo, Index zhi, int mem) {
    core::Box b;
    b.lo = Coord::filled(rank, 0);
    b.hi = shape;
    b.lo[zd] = zlo;
    b.hi[zd] = zhi;
    if (plan.dim_y >= 0) {
      const Index ny = shape[plan.dim_y];
      const int my = mem % plan.gy;
      b.lo[plan.dim_y] = ny * my / plan.gy;
      b.hi[plan.dim_y] = ny * (my + 1) / plan.gy;
      if (plan.dim_x >= 0) {
        const Index nx = shape[plan.dim_x];
        const int mx = mem / plan.gy;
        b.lo[plan.dim_x] = nx * mx / plan.gx;
        b.hi[plan.dim_x] = nx * (mx + 1) / plan.gx;
      }
    } else if (mem > 0) {
      b.hi[zd] = b.lo[zd];
    }
    return b;
  };

  // --- shared state -----------------------------------------------------
  // One monotone counter per column (value = completed steps), one
  // barrier + command slot per group.
  const auto progress =
      std::make_unique<threading::ProgressCounter[]>(static_cast<std::size_t>(2 * nd));
  std::vector<std::unique_ptr<threading::Barrier>> gbar;
  std::vector<GroupCtrl> ctrl(static_cast<std::size_t>(plan.groups));
  for (int k = 0; k < plan.groups; ++k)
    gbar.push_back(std::make_unique<threading::Barrier>(g));

  // --- initialisation ---------------------------------------------------
  if (params.numa_init) {
    // Parallel first touch: every member touches its cross-section chunk
    // of the group's contiguous home range of the ring, so the pages a
    // group's diamonds breathe over live on its own node.  The group
    // ranges partition [0, Nz) even when some groups own no columns.
    sup.run_workers([&](int tid) {
      const int grp = tid / g;
      int jlo = nd, jhi = 0;
      for (int j = 0; j < nd; ++j)
        if (plan.owner_group[static_cast<std::size_t>(j)] == grp) {
          jlo = std::min(jlo, j);
          jhi = std::max(jhi, j + 1);
        }
      if (jlo >= jhi) return;
      const core::Box b = member_box(plan.cuts[static_cast<std::size_t>(jlo)],
                                     plan.cuts[static_cast<std::size_t>(jhi)], tid % g);
      if (!b.empty())
        sup.executor(tid).first_touch_box(b, sup.node_of_thread(tid), config.seed);
    });
  } else {
    sup.serial_init();
  }

  const bool stealing = config.schedule != sched::Schedule::Static;
  // Stealing state: one cursor (next step) per column; a column lives in
  // exactly one deque / executing leader at a time, so the cursor and its
  // progress counter stay single-writer.  Tasks are whole columns, owned
  // by the leader thread of the owning group.
  std::vector<long> cursors(static_cast<std::size_t>(2 * nd), 0);
  const auto owner_of = [&](int c) {
    return plan.owner_group[static_cast<std::size_t>(c >> 1)] * g;
  };
  sched::TaskPool* pool = stealing ? sup.pool() : nullptr;
  threading::Barrier start_barrier(n);

  Timer timer;
  sup.run_workers([&](int tid) {
    core::Executor& exec = sup.executor(tid);
    trace::ThreadRecorder* rec = sup.recorder(tid);
    const int grp = tid / g;
    const int mem = tid % g;

    // One step of column c by one group member: growing steps first wait
    // for both neighbour counters (shrinking steps read only their own
    // previous box), then the member computes its chunk, the group
    // barriers per time level, and the first member publishes completion.
    // `sync` false skips wait+publish (the stealing leader probed the
    // counters already and publishes after crediting).
    const auto column_step = [&](int c, long t, int member, bool sync) {
      if (sync && col_growing(c, t)) {
        const int nl = neighbor(c, 0);
        const int nr = neighbor(c, 1);
        progress[static_cast<std::size_t>(nl)].wait_for(t, &sup.abort(), rec, nl);
        progress[static_cast<std::size_t>(nr)].wait_for(t, &sup.abort(), rec, nr);
      }
      Index zlo = 0, zhi = 0;
      col_range(c, t, zlo, zhi);
      if (zhi > zlo) {
        const core::Box b = member_box(zlo, zhi, member);
        if (!b.empty()) exec.update_box(b, t, tid);
      }
      if (g > 1) gbar[static_cast<std::size_t>(grp)]->arrive_and_wait(&sup.abort(), rec);
      if (sync && member == 0)
        progress[static_cast<std::size_t>(c)].advance_to(t + 1);
    };

    if (!stealing) {
      std::vector<int> mine;
      for (int j = 0; j < nd; ++j)
        if (plan.owner_group[static_cast<std::size_t>(j)] == grp) mine.push_back(j);
      if (mine.empty() || T <= 0) return;

      // A column's window of consecutive steps, wrapped in a
      // parallelogram span (the executor records the counter-carrying
      // tile leaves itself).
      const auto run_column = [&](int c, long t0, long t1, long window) {
        const trace::ScopedSpan col_span(
            rec, trace::Phase::Parallelogram,
            {c, static_cast<std::int32_t>(window), -1, grp});
        for (long t = t0; t <= t1; ++t) column_step(c, t, mem, true);
      };

      // Step 0: the I columns sweep their full gaps, the V columns are
      // empty no-ops that still publish (wait_for(0) is trivially
      // satisfied, so no step-0 special casing exists elsewhere).
      if (config.progress) config.progress->set_layer(0);
      {
        const trace::ScopedSpan layer_span(rec, trace::Phase::Layer, {0, 0, 1, grp});
        for (const int j : mine) {
          run_column(2 * j, 0, 0, 0);
          run_column(2 * j + 1, 0, 0, 0);
        }
      }
      // Windows of tau steps: one family grows (diamonds opening) while
      // the other shrinks.  Shrinking columns run first — they never
      // wait, so every group always has a full window of immediately
      // runnable work before it starts waiting on neighbours.
      for (long w = 0;; ++w) {
        const long t0 = w * tau + 1;
        if (t0 >= T) break;
        const long t1 = std::min((w + 1) * tau, T - 1);
        if (config.progress) config.progress->set_layer(w + 1);
        const trace::ScopedSpan layer_span(
            rec, trace::Phase::Layer,
            {static_cast<std::int32_t>(w + 1), static_cast<std::int32_t>(t0),
             static_cast<std::int32_t>(t1 - t0 + 1), grp});
        const bool vgrow = w % 2 == 0;
        for (const int j : mine) run_column(vgrow ? 2 * j + 1 : 2 * j, t0, t1, w + 1);
        for (const int j : mine) run_column(vgrow ? 2 * j : 2 * j + 1, t0, t1, w + 1);
      }
      return;
    }

    // Stealing schedules: group leaders drain whole columns from the
    // pool and broadcast (column, step) to their members; a column whose
    // growing step finds a neighbour behind goes back to its owner's
    // deque instead of wedging the thief.
    if (tid == 0) pool->reset(2 * nd, owner_of);
    start_barrier.arrive_and_wait(&sup.abort(), rec);
    GroupCtrl& my_ctrl = ctrl[static_cast<std::size_t>(grp)];

    if (mem != 0) {
      // Member service loop: execute the leader's commands until the
      // done sentinel.  The per-step barrier keeps the slot in lockstep.
      long seen = 0;
      for (;;) {
        my_ctrl.seq.wait_for(seen + 1, &sup.abort(), rec, grp);
        ++seen;
        const int c = my_ctrl.col.load(std::memory_order_relaxed);
        if (c < 0) break;
        column_step(c, my_ctrl.t.load(std::memory_order_relaxed), mem, false);
      }
      return;
    }

    pool->run(
        tid,
        [&](int c, int wtid, bool stolen) {
          long& t = cursors[static_cast<std::size_t>(c)];
          bool advanced = false;
          while (t < T) {
            if (col_growing(c, t) &&
                (progress[static_cast<std::size_t>(neighbor(c, 0))].current() < t ||
                 progress[static_cast<std::size_t>(neighbor(c, 1))].current() < t))
              return advanced ? sched::StepResult::Yield : sched::StepResult::Blocked;
            if (g > 1) {
              my_ctrl.col.store(c, std::memory_order_relaxed);
              my_ctrl.t.store(t, std::memory_order_relaxed);
              my_ctrl.seq.advance_to(++my_ctrl.issued);
            }
            column_step(c, t, 0, false);
            if (stolen) {
              // The whole group computed the column's cross-section this
              // step; credit the analytic volume (member executors are
              // not safely readable from here).
              Index zlo = 0, zhi = 0;
              col_range(c, t, zlo, zhi);
              if (zhi > zlo)
                pool->add_stolen_updates(
                    wtid, static_cast<std::uint64_t>((zhi - zlo) *
                                                     (shape.product() / nz)));
            }
            progress[static_cast<std::size_t>(c)].advance_to(t + 1);
            ++t;
            advanced = true;
          }
          return sched::StepResult::Done;
        },
        &sup.abort(), rec);
    if (g > 1) {
      my_ctrl.col.store(-1, std::memory_order_relaxed);
      my_ctrl.seq.advance_to(++my_ctrl.issued);
    }
  });
  const double seconds = timer.seconds();

  RunResult r = sup.finish(params.name, seconds);
  r.details["tau"] = static_cast<double>(tau);
  r.details["columns"] = static_cast<double>(nd);
  r.details["group_size"] = static_cast<double>(g);
  r.details["groups"] = static_cast<double>(plan.groups);
  r.details["diamond_bytes"] = plan.diamond_bytes;
  return r;
}

TrafficEstimate estimate_mwd_traffic(const topology::MachineSpec& machine,
                                     const Coord& shape, const core::StencilSpec& stencil,
                                     int threads, long timesteps) {
  const int s = stencil.order();
  const MwdPlan plan = plan_mwd(shape, stencil, machine, threads, timesteps,
                                /*numa_aware=*/true, /*group_size=*/0);
  const double nband =
      stencil.banded() ? static_cast<double>(stencil.npoints()) : 0.0;
  const double tau = static_cast<double>(plan.tau);
  const double gap = static_cast<double>(shape[shape.rank() - 1]) / plan.columns;

  // Memory traffic: each window of tau steps streams a column's cells
  // once (the diamond's working set lives in the group's shared LLC, the
  // whole cache, not a per-thread share) plus a 2s-plane halo at each
  // ring cut.  Small associativity leak of the 2+nband streams, as for
  // the CORALS estimate.
  TrafficEstimate e;
  e.mem_doubles_per_update =
      (2.0 + nband) / tau * (1.0 + 2.0 * s / gap);
  e.mem_doubles_per_update +=
      0.01 * (2.0 + nband) *
      (static_cast<double>(stencil.reads_per_update()) + 1.0);

  // LLC traffic: every time level of the diamond is re-read from the
  // shared cache (that is the point — the group's members hit the LLC,
  // not memory); the caches above it shield a fraction of those reads
  // when they can hold a few planes of the cross-section.
  const double plane_bytes = static_cast<double>(shape.product()) /
                             static_cast<double>(shape[shape.rank() - 1]) *
                             (2.0 + nband) * 8.0;
  double above_bytes = 0.0;
  for (std::size_t lvl = 0; lvl + 1 < machine.caches.size(); ++lvl)
    above_bytes += static_cast<double>(machine.caches[lvl].size_bytes);
  const double shield =
      std::clamp(above_bytes / (4.0 * (2.0 * s + 1.0) * plane_bytes), 0.0, 1.0);
  e.llc_doubles_per_update =
      (static_cast<double>(stencil.reads_per_update()) + 1.0) * (1.0 - 0.45 * shield);
  return e;
}

}  // namespace nustencil::schemes
