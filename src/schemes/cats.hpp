// CATS — cache accurate time skewing [Strzodka, Shaheen, Pajak, Seidel,
// ICPP'11]: the cache-aware predecessor of nuCATS.  Large space-time tiles
// with a cache-sized wavefront cross-section, tiles assigned to threads
// round-robin, data initialised serially — i.e. NUMA-ignorant.
#pragma once

#include "schemes/scheme.hpp"

namespace nustencil::schemes {

class CatsScheme : public Scheme {
 public:
  std::string name() const override { return "CATS"; }
  bool numa_aware() const override { return false; }
  RunResult run(core::Problem& problem, const RunConfig& config) const override;
  TrafficEstimate estimate_traffic(const topology::MachineSpec& machine, const Coord& shape,
                                   const core::StencilSpec& stencil, int threads,
                                   long timesteps) const override;
};

}  // namespace nustencil::schemes
