#include "schemes/trapezoid.hpp"

#include <algorithm>

#include "schemes/run_support.hpp"
#include "thread/barrier.hpp"

namespace nustencil::schemes {

namespace {

/// The decomposed (highest-stride) dimension.
int cut_dim(int rank) { return rank - 1; }

/// Time-block height: the expanding phase-B trapezoids over tiles of
/// width W must neither collide nor outrun the shrinking phase-A flanks,
/// which bounds the height by W/(2s).
long block_height(Index width, int s, long timesteps) {
  return std::clamp<long>(width / (2 * s), 1, timesteps);
}

}  // namespace

int trapezoid_tiles(const Coord& shape, const core::StencilSpec& stencil, int threads) {
  const int d = cut_dim(shape.rank());
  return std::max(1, std::min<int>(threads,
                                   static_cast<int>(shape[d] / (4 * stencil.order()))));
}

long trapezoid_block_height(const Coord& shape, const core::StencilSpec& stencil,
                            int threads, long timesteps) {
  const int d = cut_dim(shape.rank());
  const int k = trapezoid_tiles(shape, stencil, threads);
  return block_height(shape[d] / k, stencil.order(), timesteps);
}

RunResult TrapezoidScheme::run(core::Problem& problem, const RunConfig& config) const {
  const int rank = problem.shape().rank();
  NUSTENCIL_CHECK(config.boundary.all_periodic(rank),
                  "Trapezoid scheme requires periodic boundaries");
  RunSupport sup(problem, config);
  const int n = config.num_threads;
  const int s = problem.stencil().order();
  const int d = cut_dim(rank);
  const Index nd = problem.shape()[d];

  // K tiles along the cut dimension; every thread gets one trapezoid per
  // phase (more tiles would only add sync).
  const int k = trapezoid_tiles(problem.shape(), problem.stencil(), n);
  const long h = trapezoid_block_height(problem.shape(), problem.stencil(), n,
                                        config.timesteps);

  sup.serial_init();  // NUMA-ignorant: all pages first-touched by thread 0

  core::Box domain;
  domain.lo = Coord::filled(rank, 0);
  domain.hi = problem.shape();

  // Under a stealing schedule each trapezoid becomes one task; the
  // owner map keeps the static round-robin (task i on thread i % n), so
  // an un-stolen run executes the same trapezoids on the same threads.
  // Phase A trapezoids are mutually independent, as are phase B ones
  // (they only read phase A results, fenced by the barrier), so tasks
  // never block.
  sched::TaskPool* pool = sup.pool();
  const auto round_robin = [n](int i) { return i % n; };

  threading::Barrier barrier(n);
  Timer timer;
  sup.run_workers([&](int tid) {
    core::Executor& exec = sup.executor(tid);
    trace::ThreadRecorder* rec = sup.recorder(tid);
    for (long tb = 0; tb < config.timesteps; tb += h) {
      const long hb = std::min<long>(h, config.timesteps - tb);
      if (config.progress) config.progress->set_layer(tb / h);
      const trace::ScopedSpan layer_span(
          rec, trace::Phase::Layer,
          {static_cast<std::int32_t>(tb / h), static_cast<std::int32_t>(tb),
           static_cast<std::int32_t>(hb)});
      if (!pool) {
        // Phase A: shrinking trapezoids [zi + s*dt, zi+1 - s*dt).
        for (int i = tid; i < k; i += n) {
          const Index lo = nd * i / k, hi = nd * (i + 1) / k;
          for (long dt = 0; dt < hb; ++dt) {
            core::Box box = domain;
            box.lo[d] = lo + s * dt;
            box.hi[d] = hi - s * dt;
            if (!box.empty()) exec.update_box(box, tb + dt, tid);
          }
        }
        barrier.arrive_and_wait(&sup.abort(), rec);
        // Phase B: expanding trapezoids [bi - s*dt, bi + s*dt) around each
        // tile boundary bi (the ring boundary included).
        for (int i = tid; i < k; i += n) {
          const Index b = nd * (i + 1) / k;  // boundary between tile i and i+1
          for (long dt = 1; dt < hb; ++dt) {
            core::Box box = domain;
            box.lo[d] = b - s * dt;
            box.hi[d] = b + s * dt;
            exec.update_box(box, tb + dt, tid);
          }
        }
        barrier.arrive_and_wait(&sup.abort(), rec);
        continue;
      }
      // Stealing: reset -> barrier -> drain, once per phase; the barrier
      // after each drain fences the next reset.
      if (tid == 0) pool->reset(k, round_robin);
      barrier.arrive_and_wait(&sup.abort(), rec);
      pool->run(
          tid,
          [&](int i, int wtid, bool stolen) {
            core::Executor& ex = sup.executor(wtid);
            const Index before = ex.updates_done();
            const Index lo = nd * i / k, hi = nd * (i + 1) / k;
            for (long dt = 0; dt < hb; ++dt) {
              core::Box box = domain;
              box.lo[d] = lo + s * dt;
              box.hi[d] = hi - s * dt;
              if (!box.empty()) ex.update_box(box, tb + dt, wtid);
            }
            if (stolen) pool->add_stolen_updates(wtid, ex.updates_done() - before);
            return sched::StepResult::Done;
          },
          &sup.abort(), rec);
      barrier.arrive_and_wait(&sup.abort(), rec);
      if (tid == 0) pool->reset(k, round_robin);
      barrier.arrive_and_wait(&sup.abort(), rec);
      pool->run(
          tid,
          [&](int i, int wtid, bool stolen) {
            core::Executor& ex = sup.executor(wtid);
            const Index before = ex.updates_done();
            const Index b = nd * (i + 1) / k;  // boundary between tile i and i+1
            for (long dt = 1; dt < hb; ++dt) {
              core::Box box = domain;
              box.lo[d] = b - s * dt;
              box.hi[d] = b + s * dt;
              ex.update_box(box, tb + dt, wtid);
            }
            if (stolen) pool->add_stolen_updates(wtid, ex.updates_done() - before);
            return sched::StepResult::Done;
          },
          &sup.abort(), rec);
      barrier.arrive_and_wait(&sup.abort(), rec);
    }
  });
  const double seconds = timer.seconds();

  RunResult r = sup.finish(name(), seconds);
  r.details["block_height"] = static_cast<double>(h);
  r.details["tiles"] = static_cast<double>(k);
  return r;
}

TrafficEstimate TrapezoidScheme::estimate_traffic(const topology::MachineSpec& machine,
                                                  const Coord& shape,
                                                  const core::StencilSpec& stencil,
                                                  int threads, long timesteps) const {
  const int s = stencil.order();
  const int d = cut_dim(shape.rank());
  const int k = trapezoid_tiles(shape, stencil, threads);
  const Index width = shape[d] / k;
  const double h =
      static_cast<double>(trapezoid_block_height(shape, stencil, threads, timesteps));
  const double nband = stencil.banded() ? static_cast<double>(stencil.npoints()) : 0.0;
  TrafficEstimate e;
  // Each time block streams every cell once; phase B re-reads the phase-A
  // flanks (a fraction ~2sH/W of the cells).
  const double reload = 2.0 * s * h / static_cast<double>(width);
  e.mem_doubles_per_update = (2.0 + nband) / h * (1.0 + reload);
  e.llc_doubles_per_update =
      (static_cast<double>(stencil.reads_per_update()) + 1.0) * 0.65;
  (void)machine;
  return e;
}

}  // namespace nustencil::schemes
