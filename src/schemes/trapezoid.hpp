// Trapezoid — stand-in for Pochoir [Tang et al., SPAA'11].
//
// Pochoir's runtime executes the Frigo-Strumpen cache-oblivious trapezoidal
// decomposition with fork-join parallelism and no data-to-core affinity.
// This scheme reproduces exactly those properties with a two-phase
// trapezoid schedule over time blocks of height H along the highest-stride
// dimension:
//   Phase A: K shrinking trapezoids (slopes +s/-s) — mutually independent,
//            executed in parallel;
//   Phase B: K expanding trapezoids filling the gaps between them —
//            independent of each other once phase A finished (barrier).
// Data is initialised serially (all pages on node 0) and trapezoids are
// assigned round-robin — NUMA-ignorant by construction, which is the
// property Figs. 20-22 compare against.
#pragma once

#include "schemes/scheme.hpp"

namespace nustencil::schemes {

/// Tile count and time-block height the trapezoid schedule would use
/// (exposed for --explain so the description can never drift from the
/// execution).
int trapezoid_tiles(const Coord& shape, const core::StencilSpec& stencil, int threads);
long trapezoid_block_height(const Coord& shape, const core::StencilSpec& stencil,
                            int threads, long timesteps);

class TrapezoidScheme : public Scheme {
 public:
  std::string name() const override { return "Pochoir"; }
  bool numa_aware() const override { return false; }
  RunResult run(core::Problem& problem, const RunConfig& config) const override;
  TrafficEstimate estimate_traffic(const topology::MachineSpec& machine, const Coord& shape,
                                   const core::StencilSpec& stencil, int threads,
                                   long timesteps) const override;
};

}  // namespace nustencil::schemes
