#include "schemes/redblack_smoother.hpp"

#include "common/timer.hpp"
#include "numa/page_table.hpp"
#include "numa/traffic.hpp"
#include "schemes/decompose.hpp"
#include "thread/barrier.hpp"
#include "thread/team.hpp"

namespace nustencil::schemes {

namespace {

/// Fills [begin, end) with the same deterministic values Problem uses, so
/// red-black results can be compared against Jacobi experiments.
void fill_range(core::Field& field, Index begin, Index end, unsigned seed) {
  for (Index i = begin; i < end; ++i) field.data()[i] = core::initial_value(i, seed);
}

}  // namespace

RedBlackResult run_redblack_smoother(core::Field& field,
                                     const core::StencilSpec& stencil,
                                     long iterations, int threads,
                                     const topology::MachineSpec* machine,
                                     unsigned seed, trace::Trace* trace) {
  NUSTENCIL_CHECK(threads >= 1, "run_redblack_smoother: need at least one thread");
  const Coord& shape = field.shape();
  core::Box domain;
  domain.lo = Coord::filled(shape.rank(), 0);
  domain.hi = shape;
  const Coord counts = decompose_counts(shape, threads);
  const auto tiles = decompose_domain(domain, counts);
  const Coord strides = strides_for(shape);

  std::optional<numa::PageTable> pages;
  std::optional<numa::VirtualTopology> topo;
  std::optional<numa::TrafficRecorder> recorder;
  if (machine) {
    pages.emplace();
    topo.emplace(*machine);
    recorder.emplace(*pages, *topo, threads);
    field.attach(*pages, "rb");
  }

  threading::Team team(threads, /*pin=*/false);
  threading::Barrier barrier(threads);
  core::RedBlackExecutor exec(field, stencil);

  if (trace) trace->begin_run(threads);
  const auto rec_of = [&](int tid) {
    return trace ? trace->thread(tid) : nullptr;
  };

  // Phase I: parallel first touch, row by row within each tile.
  team.run([&](int tid) {
    const trace::ScopedSpan init_span(rec_of(tid), trace::Phase::Init,
                                      {-1, -1, -1, tid});
    const core::Box& tile = tiles[static_cast<std::size_t>(tid)];
    const int rank = shape.rank();
    const Index lo1 = rank >= 2 ? tile.lo[1] : 0, hi1 = rank >= 2 ? tile.hi[1] : 1;
    const Index lo2 = rank >= 3 ? tile.lo[2] : 0, hi2 = rank >= 3 ? tile.hi[2] : 1;
    for (Index z = lo2; z < hi2; ++z)
      for (Index y = lo1; y < hi1; ++y) {
        const Index row = y * (rank >= 2 ? strides[1] : 0) +
                          z * (rank >= 3 ? strides[2] : 0);
        fill_range(field, row + tile.lo[0], row + tile.hi[0], seed);
        if (pages)
          pages->first_touch(field.region(), core::Field::byte_of(row + tile.lo[0]),
                             core::Field::byte_of(row + tile.hi[0]),
                             topo->node_of_thread(tid));
      }
  });

  std::vector<Index> per_thread(static_cast<std::size_t>(threads), 0);
  Timer timer;
  team.run([&](int tid) {
    trace::ThreadRecorder* rec = rec_of(tid);
    const core::Box& tile = tiles[static_cast<std::size_t>(tid)];
    for (long t = 0; t < iterations; ++t) {
      for (int color = 0; color < exec.num_colors(); ++color) {
        {
          // One half-sweep = one tile span (colour in the first arg slot).
          const trace::ScopedSpan sweep(rec, trace::Phase::Tile,
                                        {color, static_cast<std::int32_t>(t), -1, tid});
          per_thread[static_cast<std::size_t>(tid)] += exec.update_color(tile, color);
        }
        barrier.arrive_and_wait(nullptr, rec);
      }
      if (recorder) {
        // Account one tile-worth of touched bytes per iteration (both
        // colours stream the same rows).
        const int rank = shape.rank();
        const Index lo1 = rank >= 2 ? tile.lo[1] : 0,
                    hi1 = rank >= 2 ? tile.hi[1] : 1;
        const Index lo2 = rank >= 3 ? tile.lo[2] : 0,
                    hi2 = rank >= 3 ? tile.hi[2] : 1;
        for (Index z = lo2; z < hi2; ++z)
          for (Index y = lo1; y < hi1; ++y) {
            const Index row = y * (rank >= 2 ? strides[1] : 0) +
                              z * (rank >= 3 ? strides[2] : 0);
            recorder->account(tid, field.region(),
                              core::Field::byte_of(row + tile.lo[0]),
                              core::Field::byte_of(row + tile.hi[0]));
          }
      }
    }
  });

  RedBlackResult result;
  result.seconds = timer.seconds();
  for (Index u : per_thread) result.updates += u;
  if (recorder) result.locality = recorder->collect().locality();
  if (trace) result.phases = trace->breakdown();
  return result;
}

}  // namespace nustencil::schemes
