// CORALS — cache oblivious parallelograms [Strzodka, Shaheen, Pajak,
// Seidel, ICS'10]: the cache-oblivious predecessor of nuCORALS.
//
// Rendition used here: the same parallelogram engine as nuCORALS but
// NUMA-ignorant — the data is initialised serially (every page lands on
// node 0, as the kernel's first-touch policy would place it for a serial
// allocator), and tiles are assigned to threads without regard for who
// allocated them (shifted map, modelling CORALS' affinity-blind task
// parallelism over the recursion).  This preserves exactly the properties
// Figs. 20-22 compare: identical cache-oblivious locality, no
// data-to-core affinity.
#pragma once

#include "schemes/scheme.hpp"

namespace nustencil::schemes {

class CoralsScheme : public Scheme {
 public:
  std::string name() const override { return "CORALS"; }
  bool numa_aware() const override { return false; }
  RunResult run(core::Problem& problem, const RunConfig& config) const override;
  TrafficEstimate estimate_traffic(const topology::MachineSpec& machine, const Coord& shape,
                                   const core::StencilSpec& stencil, int threads,
                                   long timesteps) const override;
};

}  // namespace nustencil::schemes
