// The common interface of all iterative stencil schemes.
//
// A Scheme executes `timesteps` Jacobi updates of a Problem with a given
// thread count, really — threads, barriers and spin-flags all run — and
// optionally instrumented: a first-touch page table plus traffic recorder
// measure the data-to-core affinity the performance model needs, and a
// dependency checker validates the tiling order.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "cachesim/shared.hpp"
#include "core/boundary.hpp"
#include "hwc/group.hpp"
#include "core/field.hpp"
#include "core/kernels.hpp"
#include "metrics/registry.hpp"
#include "numa/traffic.hpp"
#include "prof/attribution.hpp"
#include "prof/progress.hpp"
#include "sched/schedule.hpp"
#include "topology/machine.hpp"
#include "trace/trace.hpp"

namespace nustencil::telemetry {
class Sampler;
}

namespace nustencil::schemes {

struct RunConfig {
  int num_threads = 1;
  long timesteps = 1;
  core::Boundary boundary = core::Boundary::periodic();

  /// Measure first-touch placement and local/remote traffic against the
  /// virtual topology of `machine`.
  bool instrument = false;

  /// Validate the dependency order of every single cell update (slow).
  bool check_dependencies = false;

  bool use_simd = true;

  /// Row-kernel variant selection (see core/kernels.hpp).  Auto picks
  /// the widest ISA the host supports with a tap-specialized kernel;
  /// `use_simd = false` forces Scalar regardless of this policy.
  core::KernelPolicy kernel = core::KernelPolicy::Auto;

  /// Write-field store discipline of the vector kernels (see
  /// core/kernels.hpp): Auto streams only LLC-busting sweeps on aligned
  /// rows, Stream forces non-temporal stores where the layout allows,
  /// Regular always writes through the cache.
  core::StorePolicy kernel_stores = core::StorePolicy::Auto;

  /// Pin worker threads to host cores (harmless no-op on small hosts).
  bool pin_threads = false;

  /// Tile scheduling policy.  Static keeps the owner-computes loops of
  /// the paper bit-identical to the pre-scheduler code path; Steal adds
  /// NUMA-distance-ordered work stealing over owner-first deques;
  /// StealLocal restricts victims to the thief's own node (sched/).
  sched::Schedule schedule = sched::Schedule::Static;

  /// Thread-group size of the MWD/nuMWD diamond family: how many threads
  /// cooperate inside one diamond, splitting its cross-section per member
  /// (multi-dimensional intra-tile parallelization).  0 = auto (largest
  /// divisor of num_threads within one LLC's sharer count); explicit
  /// values must divide num_threads.  Ignored by the other schemes.
  int group_size = 0;

  /// Optional trace-driven cache simulation: when set, the executors feed
  /// their (row-granular) access stream into this hierarchy with real
  /// data addresses; thread tid maps to simulated core tid.  Use small
  /// domains — every access is simulated per cache line.
  cachesim::SharedHierarchy* cache_sim = nullptr;

  /// Machine whose topology drives thread->node placement when
  /// instrumenting; defaults to xeonX7550() when null.
  const topology::MachineSpec* machine = nullptr;

  /// Thread-to-node placement policy for instrumentation (the paper pins
  /// compactly; scatter is for the pinning ablation).
  numa::PinPolicy pin_policy = numa::PinPolicy::Compact;

  /// Page size of the instrumented first-touch page table.  Measurement
  /// runs on scaled-down domains shrink this proportionally so that the
  /// page-to-row ratio (and hence the measured locality) matches the
  /// paper-scale domain under real 4 KiB pages.
  Index page_bytes = 4096;

  /// Optional space-time execution trace: when set, the run begins a new
  /// recording on it (begin_run) and every executor sweep, barrier wait,
  /// spin-flag wait, first touch and layer boundary feeds it typed spans.
  /// Null (the default) compiles every hook down to one branch.
  trace::Trace* trace = nullptr;

  /// Aggregate per-thread, per-phase wall-time totals into
  /// RunResult.phases even without a full event trace (uses an internal
  /// metrics-only recorder when `trace` is null).
  bool collect_phase_metrics = false;

  /// Optional metrics registry: when set, the executors publish kernel
  /// dispatch counters (tiles, fast rows per variant, slow boundary
  /// cells, tile-size histogram) into it.  The registry must have at
  /// least `num_threads` shards.  Null disables every hook at the cost
  /// of one branch.
  metrics::Registry* metrics = nullptr;

  /// Per-span performance attribution: attach counter deltas (updates,
  /// traffic bytes, simulated cache hits/misses) to every Tile/Init span
  /// of the trace and summarise them into RunResult.prof.  Requires
  /// `trace`; the counters available depend on which instrumentation
  /// sources (`instrument`, `cache_sim`) the run enables.
  bool profile_spans = false;

  /// Hardware performance counters (src/hwc/): Off (the default) costs
  /// nothing — no syscalls, no probe; Auto measures what the host's PMU
  /// offers and records the degradation reason when it offers nothing;
  /// On is Auto with a loud warning expected from the caller when the
  /// probe degrades.  Measured per-span deltas additionally require a
  /// trace (they ride the profiler's sampler).
  hwc::Mode hw_mode = hwc::Mode::Off;

  /// Events to count; empty = hwc::default_events() (cycles,
  /// instructions, cache-references, cache-misses, stalled-cycles).
  std::vector<hwc::Event> hw_events;

  /// Counter syscall backend override (tests inject a FakeBackend);
  /// null uses hwc::real_backend().
  hwc::SyscallBackend* hw_backend = nullptr;

  /// Optional live progress heartbeat (layer, updates/s, locality %).
  /// The caller owns the meter and its interval; the run wires it to the
  /// executors and the schemes' layer loops.  Null disables the hook at
  /// the cost of one branch per tile.
  prof::ProgressMeter* progress = nullptr;

  /// Locality time-series sampling window, in cell updates per thread
  /// (requires `instrument`).  0 picks an automatic window of roughly 32
  /// samples per thread over the run; negative disables sampling.
  Index locality_sample_updates = 0;

  /// Optional live telemetry sampler (src/telemetry/): when set, the run
  /// binds the sampler to its instrumentation shards (progress slots,
  /// traffic recorder, cache sim, registry, trace, abort token) at
  /// construction and releases it when the run finishes.  The caller owns
  /// the sampler; null (the default) constructs nothing and costs
  /// nothing — telemetry adds no writes to the hot path either way.
  telemetry::Sampler* telemetry = nullptr;

  unsigned seed = 42;
};

struct RunResult {
  std::string scheme;
  int threads = 0;
  long timesteps = 0;
  double seconds = 0.0;
  Index updates = 0;
  numa::TrafficStats traffic;           ///< empty unless instrumented
  std::map<std::string, double> details;  ///< scheme-specific parameters

  /// Work-stealing statistics; `sched.enabled` stays false under the
  /// static schedule (nothing can be stolen without a pool).
  sched::SchedStats sched;

  /// Per-thread, per-phase wall-time totals (compute, barrier wait, spin
  /// wait, init) plus the load-imbalance ratio; `phases.enabled` is false
  /// unless RunConfig::trace or collect_phase_metrics was set.
  trace::PhaseBreakdown phases;

  /// Per-span attribution summary (exact counter totals, top-K
  /// stragglers with verdicts, roofline scatter); `prof.enabled` is false
  /// unless RunConfig::profile_spans was set with a trace.
  prof::ProfSummary prof;

  /// Hardware counter measurements (per-thread raw totals, attributed
  /// span sums, scaling factors, availability and degradation status);
  /// `hw.enabled` stays false when RunConfig::hw_mode is Off.
  hwc::HwRunStats hw;

  double gupdates_per_second() const {
    return seconds > 0 ? static_cast<double>(updates) / seconds * 1e-9 : 0.0;
  }
};

/// Analytic estimate of main-memory traffic, in doubles per cell update,
/// used by the performance model (the shapes of Figs. 4-22 follow from
/// this together with the measured locality).
struct TrafficEstimate {
  double mem_doubles_per_update = 0.0;  ///< to/from main memory
  double llc_doubles_per_update = 0.0;  ///< served by the last-level cache
};

class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual std::string name() const = 0;

  /// True when the scheme observes the data-to-core affinity requirement.
  virtual bool numa_aware() const = 0;

  /// Executes the scheme.  The problem must be freshly constructed and NOT
  /// initialised: every scheme performs its own allocation/initialisation
  /// phase (serial for NUMA-ignorant schemes, parallel first-touch for
  /// NUMA-aware ones).  After the call, problem.buffer(timesteps) holds
  /// the values of time step `timesteps`.
  virtual RunResult run(core::Problem& problem, const RunConfig& config) const = 0;

  /// Analytic memory traffic for the performance model.
  virtual TrafficEstimate estimate_traffic(const topology::MachineSpec& machine,
                                           const Coord& shape,
                                           const core::StencilSpec& stencil,
                                           int threads, long timesteps) const = 0;
};

/// All schemes of the paper's evaluation, by figure legend name.
std::unique_ptr<Scheme> make_scheme(const std::string& name);

/// Legend names accepted by make_scheme.
const std::vector<std::string>& scheme_names();

}  // namespace nustencil::schemes
