#include "schemes/decompose.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace nustencil::schemes {

namespace {

/// Smallest prime factor of n (n itself when prime).
int smallest_factor(int n) {
  for (int p = 2; p * p <= n; ++p)
    if (n % p == 0) return p;
  return n;
}

}  // namespace

Coord decompose_counts(const Coord& shape, int n) {
  NUSTENCIL_CHECK(n >= 1, "decompose_counts: need n >= 1");
  const int rank = shape.rank();
  Coord counts = Coord::filled(rank, 1);
  if (rank == 1) {
    counts[0] = n;
    return counts;
  }
  int remaining = n;
  while (remaining > 1) {
    const int p = smallest_factor(remaining);
    remaining /= p;
    // Give the factor to the cuttable dimension (1..rank-1) with the
    // smallest resulting tile count; ties favour the higher stride.
    int best = rank - 1;
    for (int d = rank - 1; d >= 1; --d) {
      if (counts[d] < counts[best]) best = d;
    }
    counts[best] *= p;
  }
  return counts;
}

std::vector<core::Box> decompose_domain(const core::Box& domain, const Coord& counts) {
  const int rank = domain.rank();
  NUSTENCIL_CHECK(counts.rank() == rank, "decompose_domain: rank mismatch");
  for (int d = 0; d < rank; ++d)
    NUSTENCIL_CHECK(counts[d] <= domain.extent(d),
                    "decompose_domain: more tiles than elements");

  const Index total = counts.product();
  std::vector<core::Box> tiles;
  tiles.reserve(static_cast<std::size_t>(total));
  for (int idx = 0; idx < total; ++idx) {
    const Coord tc = tile_coord(counts, idx);
    core::Box b;
    b.lo = Coord::filled(rank, 0);
    b.hi = Coord::filled(rank, 0);
    for (int d = 0; d < rank; ++d) {
      const Index extent = domain.extent(d);
      b.lo[d] = domain.lo[d] + extent * tc[d] / counts[d];
      b.hi[d] = domain.lo[d] + extent * (tc[d] + 1) / counts[d];
    }
    tiles.push_back(b);
  }
  return tiles;
}

Coord tile_coord(const Coord& counts, int idx) {
  Coord tc = Coord::filled(counts.rank(), 0);
  Index rest = idx;
  for (int d = 0; d < counts.rank(); ++d) {
    tc[d] = rest % counts[d];
    rest /= counts[d];
  }
  NUSTENCIL_DCHECK(rest == 0, "tile_coord: index out of range");
  return tc;
}

int tile_index(const Coord& counts, const Coord& tc) {
  Index idx = 0;
  Index stride = 1;
  for (int d = 0; d < counts.rank(); ++d) {
    idx += tc[d] * stride;
    stride *= counts[d];
  }
  return static_cast<int>(idx);
}

}  // namespace nustencil::schemes
