// nuCATS — the paper's NUMA-aware, cache-aware scheme (Section II).
//
// The in-tile wavefront traversal is inherited from CATS; what changes is
// the tiling and scheduling: the domain is decomposed into per-thread
// subdomains (parallel first-touch allocation), the tile count is adjusted
// to equal or divide into the thread count, and every tile is assigned to
// the thread whose subdomain contains it.  When the thread count exceeds
// the number of cache-sized tiles, the tile count stops shrinking at
// nthreads/2 and the wavefront-traversal dimension is halved instead.
#pragma once

#include "schemes/scheme.hpp"

namespace nustencil::schemes {

class NuCatsScheme : public Scheme {
 public:
  std::string name() const override { return "nuCATS"; }
  bool numa_aware() const override { return true; }
  RunResult run(core::Problem& problem, const RunConfig& config) const override;
  TrafficEstimate estimate_traffic(const topology::MachineSpec& machine, const Coord& shape,
                                   const core::StencilSpec& stencil, int threads,
                                   long timesteps) const override;
};

}  // namespace nustencil::schemes
