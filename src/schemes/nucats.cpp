#include "schemes/nucats.hpp"

#include "schemes/cats_common.hpp"

namespace nustencil::schemes {

RunResult NuCatsScheme::run(core::Problem& problem, const RunConfig& config) const {
  return run_cats_like(name(), /*numa_aware=*/true, problem, config);
}

TrafficEstimate NuCatsScheme::estimate_traffic(const topology::MachineSpec& machine,
                                               const Coord& shape,
                                               const core::StencilSpec& stencil, int threads,
                                               long timesteps) const {
  return estimate_cats_traffic(machine, shape, stencil, threads, timesteps);
}

}  // namespace nustencil::schemes
