#include "schemes/nucorals.hpp"

namespace nustencil::schemes {

RunResult NuCoralsScheme::run(core::Problem& problem, const RunConfig& config) const {
  CoralsParams params;
  params.name = name();
  params.numa_init = true;
  params.owner_shift = 0;
  params.tau_override = tau_override_;
  return run_corals_like(problem, config, params);
}

TrafficEstimate NuCoralsScheme::estimate_traffic(const topology::MachineSpec& machine,
                                                 const Coord& shape,
                                                 const core::StencilSpec& stencil,
                                                 int threads, long timesteps) const {
  return estimate_corals_traffic(machine, shape, stencil, threads, timesteps);
}

}  // namespace nustencil::schemes
