// NaiveSSE (paper Section IV-A): a naive scheme with all the cheap
// optimisations — pthread parallelisation over a NUMA-aware domain
// decomposition, SSE2-vectorised kernels, and first-touch data allocation.
// No temporal blocking: every time step sweeps the whole domain with a
// barrier in between, so performance sits between SysBand0C and SysBandIC.
#pragma once

#include "schemes/scheme.hpp"

namespace nustencil::schemes {

class NaiveScheme : public Scheme {
 public:
  std::string name() const override { return "NaiveSSE"; }
  bool numa_aware() const override { return true; }
  RunResult run(core::Problem& problem, const RunConfig& config) const override;
  TrafficEstimate estimate_traffic(const topology::MachineSpec& machine, const Coord& shape,
                                   const core::StencilSpec& stencil, int threads,
                                   long timesteps) const override;
};

}  // namespace nustencil::schemes
