#include "schemes/corals_common.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/spacetime.hpp"
#include "schemes/decompose.hpp"
#include "schemes/run_support.hpp"
#include "thread/barrier.hpp"
#include "thread/spinflag.hpp"

namespace nustencil::schemes {

namespace {

using core::SkewedInterval;
using core::SpaceTimeTile;

/// Everything one thread tile needs within a layer.  Built by the owning
/// thread in the layer's build phase, read by neighbours during execution
/// (a barrier separates the phases).
///
/// Synchronisation granularity is (base, time step): progress[k] holds
/// 1 + the last layer-relative time step whose local part of base k is
/// complete.  Whole-base flags would deadlock for narrow thread tiles
/// (a single base can span the entire tile width, closing a wait cycle
/// around the periodic ring); per-time-step progress always waits on a
/// strictly earlier time, so waits ground out at the layer start — this is
/// the paper's "the lower part of each intersecting base parallelogram
/// must be computed first" at its natural granularity.
struct TileState {
  std::array<SkewedInterval, 3> clip{};  ///< thread parallelogram, slope +s
  std::vector<SpaceTimeTile> bases;      ///< execution order
  std::unique_ptr<threading::ProgressCounter[]> progress;
  std::size_t progress_size = 0;
};

/// Interval of the thread parallelogram of `tile` in dimension `d` at
/// layer-relative time dt.
Index clip_lo(const TileState& ts, int d, Index dt) {
  return ts.clip[static_cast<std::size_t>(d)].lo_at(dt);
}
Index clip_hi(const TileState& ts, int d, Index dt) {
  return ts.clip[static_cast<std::size_t>(d)].hi_at(dt);
}

/// Spatial box of the thread parallelogram at layer-relative time dt.
core::Box clip_box(const TileState& ts, int rank, Index dt) {
  core::Box b;
  b.lo = Coord::filled(rank, 0);
  b.hi = Coord::filled(rank, 0);
  for (int d = 0; d < rank; ++d) {
    b.lo[d] = clip_lo(ts, d, dt);
    b.hi[d] = clip_hi(ts, d, dt);
  }
  return b;
}

/// Waits until the tile `nb` has completed, through time u, every base
/// whose local part overlaps the producer region R (given per dimension in
/// `nb`'s own virtual frame — the caller applies periodic wrap shifts).
/// `nb_tile` only labels the recorded spin-wait spans with the producer.
void wait_on_region(const core::Box& region, Index u, int rank, const TileState& nb,
                    const threading::AbortToken& abort,
                    trace::ThreadRecorder* rec, int nb_tile) {
  for (std::size_t k = 0; k < nb.bases.size(); ++k) {
    const SpaceTimeTile& nbase = nb.bases[k];
    if (u < nbase.t0 || u >= nbase.t1) continue;
    if (nb.progress[k].current() >= u + 1) continue;  // already far enough
    const core::Box nbox = nbase.box_at(u);
    bool overlap = true;
    for (int e = 0; e < rank && overlap; ++e) {
      const Index lo = std::max({nbox.lo[e], clip_lo(nb, e, u), region.lo[e]});
      const Index hi = std::min({nbox.hi[e], clip_hi(nb, e, u), region.hi[e]});
      overlap = lo < hi;
    }
    if (overlap) nb.progress[k].wait_for(u + 1, &abort, rec, nb_tile);
  }
}

/// Non-blocking variant of wait_on_region: true when tile `nb` has
/// already completed, through time u, every base whose local part
/// overlaps the producer region.  Probes the same progress counters the
/// blocking wait spins on, so a stealing scheduler can test readiness
/// without wedging a thief.
bool region_ready(const core::Box& region, Index u, int rank, const TileState& nb) {
  for (std::size_t k = 0; k < nb.bases.size(); ++k) {
    const SpaceTimeTile& nbase = nb.bases[k];
    if (u < nbase.t0 || u >= nbase.t1) continue;
    if (nb.progress[k].current() >= u + 1) continue;  // already far enough
    const core::Box nbox = nbase.box_at(u);
    bool overlap = true;
    for (int e = 0; e < rank && overlap; ++e) {
      const Index lo = std::max({nbox.lo[e], clip_lo(nb, e, u), region.lo[e]});
      const Index hi = std::min({nbox.hi[e], clip_hi(nb, e, u), region.hi[e]});
      overlap = lo < hi;
    }
    if (overlap) return false;
  }
  return true;
}

/// Enumerates the producer regions of `base` of tile `my_tc` at time
/// step t and invokes fn(shifted_region, u, nb, nb_tile) for each; fn
/// returning false stops the enumeration (and makes this return false).
///
/// Inputs that cross the right window boundary in a decomposed dimension d
/// form the producer region
///   R_d = [clip_hi(u), cell_hi - 1 + s],  R_e = consumer cells at t,
/// at time u = t-1.  Because every window skews right by s per step, R may
/// extend past the d-neighbour's window in any other decomposed dimension
/// e (the top-s "overhang") — those points belong to the *diagonal*
/// neighbour, so all offset combinations {d:+1} x {e: 0 or +1} must be
/// visited, each with its periodic wrap shift.
template <typename Fn>
bool for_each_right_producer(const std::vector<TileState>& states, const TileState& mine,
                             const Coord& my_tc, const Coord& counts, const Coord& shape,
                             const SpaceTimeTile& base, Index t, int rank, int s,
                             Fn&& fn) {
  if (t < 1) return true;  // time-0 inputs come from the previous layer
  const Index u = t - 1;
  const core::Box bb = base.box_at(t);

  // Consumer cells this thread computes from `base` at time t.
  core::Box cells;
  cells.lo = Coord::filled(rank, 0);
  cells.hi = Coord::filled(rank, 0);
  for (int e = 0; e < rank; ++e) {
    cells.lo[e] = std::max(bb.lo[e], clip_lo(mine, e, t));
    cells.hi[e] = std::min(bb.hi[e], clip_hi(mine, e, t));
    if (cells.lo[e] >= cells.hi[e]) return true;
  }

  for (int d = 0; d < rank; ++d) {
    if (counts[d] <= 1) continue;
    const Index in_lo = clip_hi(mine, d, u);
    const Index in_hi = cells.hi[d] + s;  // reads reach s beyond the cells
    if (in_hi <= in_lo) continue;         // nothing crosses this boundary

    // Producer region in my frame.
    core::Box region = cells;
    region.lo[d] = in_lo;
    region.hi[d] = in_hi;

    // Enumerate neighbour offsets: +1 in d, and 0/+1 in every other
    // decomposed dimension (the diagonal overhang).
    std::array<int, 3> other{};
    int num_other = 0;
    for (int e = 0; e < rank; ++e)
      if (e != d && counts[e] > 1) other[static_cast<std::size_t>(num_other++)] = e;

    for (int mask = 0; mask < (1 << num_other); ++mask) {
      Coord nb_tc = my_tc;
      nb_tc[d] = (my_tc[d] + 1) % counts[d];
      core::Box shifted = region;
      if (nb_tc[d] == 0) {  // periodic wrap in d
        shifted.lo[d] -= shape[d];
        shifted.hi[d] -= shape[d];
      }
      for (int bit = 0; bit < num_other; ++bit) {
        if (!(mask & (1 << bit))) continue;
        const int e = other[static_cast<std::size_t>(bit)];
        nb_tc[e] = (my_tc[e] + 1) % counts[e];
        if (nb_tc[e] == 0) {
          shifted.lo[e] -= shape[e];
          shifted.hi[e] -= shape[e];
        }
      }
      const int nb_tile = tile_index(counts, nb_tc);
      const TileState& nb = states[static_cast<std::size_t>(nb_tile)];
      if (&nb == &mine) continue;
      if (!fn(shifted, u, nb, nb_tile)) return false;
    }
  }
  return true;
}

/// Local synchronisation for `base` of tile `my_tc` at time step t (see
/// for_each_right_producer for the geometry).
void wait_on_right_neighbors(const std::vector<TileState>& states, const TileState& mine,
                             const Coord& my_tc, const Coord& counts, const Coord& shape,
                             const SpaceTimeTile& base, Index t, int rank, int s,
                             const threading::AbortToken& abort,
                             trace::ThreadRecorder* rec) {
  for_each_right_producer(states, mine, my_tc, counts, shape, base, t, rank, s,
                          [&](const core::Box& region, Index u, const TileState& nb,
                              int nb_tile) {
                            wait_on_region(region, u, rank, nb, abort, rec, nb_tile);
                            return true;
                          });
}

/// True when every producer of `base` at time t has progressed far
/// enough that the local part can be computed without waiting.
bool right_neighbors_ready(const std::vector<TileState>& states, const TileState& mine,
                           const Coord& my_tc, const Coord& counts, const Coord& shape,
                           const SpaceTimeTile& base, Index t, int rank, int s) {
  return for_each_right_producer(
      states, mine, my_tc, counts, shape, base, t, rank, s,
      [&](const core::Box& region, Index u, const TileState& nb, int /*nb_tile*/) {
        return region_ready(region, u, rank, nb);
      });
}

}  // namespace

RunResult run_corals_like(core::Problem& problem, const RunConfig& config,
                          const CoralsParams& params) {
  const int rank = problem.shape().rank();
  NUSTENCIL_CHECK(config.boundary.all_periodic(rank),
                  "CORALS/nuCORALS require periodic boundaries (thread "
                  "parallelograms wrap around, Section III-A)");
  RunSupport sup(problem, config);
  const int n = config.num_threads;
  const int s = problem.stencil().order();
  const Coord& shape = problem.shape();

  // Phase I: spatial decomposition into one tile per thread.
  core::Box domain;
  domain.lo = Coord::filled(rank, 0);
  domain.hi = shape;
  Coord counts = decompose_counts(shape, n);
  if (params.force_counts.rank() == rank) {
    NUSTENCIL_CHECK(params.force_counts.product() == n,
                    "CoralsParams::force_counts must multiply to the thread count");
    counts = params.force_counts;
  }
  const std::vector<core::Box> tiles = decompose_domain(domain, counts);

  // The owner map: tile -> thread.  nuCORALS keeps the allocating thread
  // (owner_shift 0); the CORALS rendition shifts it to model affinity-blind
  // assignment.
  auto owner_of = [&](int tile) { return (tile + params.owner_shift) % n; };
  // allocator_of: the thread that first-touches tile `i` is always thread
  // i, so the data-to-core affinity holds only when owner_shift == 0.

  if (params.numa_init) {
    sup.run_workers([&](int tid) {
      sup.executor(tid).first_touch_box(tiles[static_cast<std::size_t>(tid)],
                                        sup.node_of_thread(tid), config.seed);
    });
  } else {
    sup.serial_init();
  }

  // Phase II: temporal tiling.  b = smallest decomposed tile extent.
  Index b = 0;
  for (int d = 0; d < rank; ++d) {
    if (counts[d] <= 1) continue;
    for (const auto& tile : tiles)
      b = b == 0 ? tile.extent(d) : std::min(b, tile.extent(d));
  }
  if (b == 0) b = tiles[0].hi.min();  // single tile: smallest extent
  NUSTENCIL_CHECK(b >= 2 * s, "CORALS: thread tiles must be at least 2s wide");
  long tau = params.tau_override > 0 ? params.tau_override
                                     : std::max<long>(1, b / (2 * s));

  core::BaseSizes base_sizes;
  if (params.base_space > 0)
    base_sizes.space = {params.base_space * 4, params.base_space, params.base_space};
  if (params.base_time > 0) base_sizes.time = params.base_time;

  std::vector<TileState> states(static_cast<std::size_t>(n));
  threading::Barrier barrier(n);

  // Stealing state: a (base, time) cursor per tile plus each tile's
  // coordinate for the producer enumeration.  A task advances through its
  // bases in the same order the static path uses, probing the neighbour
  // progress counters non-blockingly and re-enqueueing itself when a
  // producer is behind.
  const bool stealing = config.schedule != sched::Schedule::Static;
  struct TileCursor {
    std::size_t j = 0;
    Index t = 0;
  };
  std::vector<TileCursor> cursors(static_cast<std::size_t>(n));
  std::vector<Coord> tile_coords;
  for (int i = 0; i < n; ++i) tile_coords.push_back(tile_coord(counts, i));
  sched::TaskPool* pool = stealing ? sup.pool() : nullptr;

  Timer timer;
  sup.run_workers([&](int tid) {
    core::Executor& exec = sup.executor(tid);
    trace::ThreadRecorder* rec = sup.recorder(tid);
    // The static path records its own per-step tile spans below (they
    // include the box/clip geometry between kernel calls, which is
    // significant for cache-sized bases); suppress the executor's inner
    // span so the time is not counted twice.  The stealing path executes
    // through the pool and keeps the executor's spans instead.
    if (!stealing) exec.set_trace(nullptr);
    const int my_tile = [&] {
      for (int i = 0; i < n; ++i)
        if (owner_of(i) == tid) return i;
      return tid;
    }();
    TileState& mine = states[static_cast<std::size_t>(my_tile)];
    const core::Box& tile = tiles[static_cast<std::size_t>(my_tile)];

    for (long tb = 0; tb < config.timesteps; tb += tau) {
      const long tau_act = std::min<long>(tau, config.timesteps - tb);
      if (config.progress) config.progress->set_layer(tb / tau);
      const trace::ScopedSpan layer_span(
          rec, trace::Phase::Layer,
          {static_cast<std::int32_t>(tb / tau), static_cast<std::int32_t>(tb),
           static_cast<std::int32_t>(tau_act), my_tile});

      {
        // Build phase: thread parallelogram (clip) + root + bases + flags.
        // Recorded as an init leaf — for deep layers the recursive base
        // decomposition and flag allocation are a visible setup cost.
        const trace::ScopedSpan build_span(
            rec, trace::Phase::Init,
            {static_cast<std::int32_t>(tb / tau), -1, -1, my_tile});
        SpaceTimeTile root;
        root.t0 = 0;
        root.t1 = tau_act;
        root.rank = rank;
        for (int d = 0; d < rank; ++d) {
          const bool decomposed = counts[d] > 1;
          const Index lo = decomposed ? tile.lo[d] : 0;
          const Index hi = decomposed ? tile.hi[d] : shape[d];
          mine.clip[static_cast<std::size_t>(d)] = SkewedInterval{lo, hi, s, s};
          root.dims[static_cast<std::size_t>(d)] =
              SkewedInterval{lo, hi + 2 * s * (tau_act - 1), -s, -s};
        }
        mine.bases.clear();
        core::decompose_parallelogram(root, base_sizes, mine.bases);
        if (mine.progress_size < mine.bases.size()) {
          mine.progress =
              std::make_unique<threading::ProgressCounter[]>(mine.bases.size());
          mine.progress_size = mine.bases.size();
        }
        for (std::size_t k = 0; k < mine.progress_size; ++k) mine.progress[k].reset();
      }
      if (stealing && tid == 0) {
        for (auto& c : cursors) c = TileCursor{};
        pool->reset(n, owner_of);
      }
      barrier.arrive_and_wait(&sup.abort(), rec);

      if (stealing) {
        pool->run(
            tid,
            [&](int i, int wtid, bool stolen) {
              TileState& ts = states[static_cast<std::size_t>(i)];
              TileCursor& cur = cursors[static_cast<std::size_t>(i)];
              core::Executor& ex = sup.executor(wtid);
              bool advanced = false;
              while (cur.j < ts.bases.size()) {
                const SpaceTimeTile& base = ts.bases[cur.j];
                if (cur.t < base.t0) cur.t = base.t0;
                while (cur.t < base.t1) {
                  if (!right_neighbors_ready(states, ts,
                                             tile_coords[static_cast<std::size_t>(i)],
                                             counts, shape, base, cur.t, rank, s))
                    return advanced ? sched::StepResult::Yield
                                    : sched::StepResult::Blocked;
                  const core::Box box =
                      intersect(base.box_at(cur.t), clip_box(ts, rank, cur.t));
                  if (!box.empty()) {
                    const Index before = ex.updates_done();
                    ex.update_box(box, tb + cur.t, wtid);
                    if (stolen)
                      pool->add_stolen_updates(wtid, ex.updates_done() - before);
                  }
                  ts.progress[cur.j].advance_to(cur.t + 1);
                  ++cur.t;
                  advanced = true;
                }
                ++cur.j;
                cur.t = 0;
              }
              return sched::StepResult::Done;
            },
            &sup.abort(), rec);
        barrier.arrive_and_wait(&sup.abort(), rec);
        continue;
      }

      // Execution phase.  Tile spans chain end-to-start (one clock read
      // per step) so the inter-step bookkeeping — neighbour progress scan,
      // box/clip geometry, flag advance — is accounted as compute; spin
      // waits nest inside the step span and their time is excluded from
      // the tile total so the leaf phases still partition thread time.
      const Coord my_tc = tile_coord(counts, my_tile);
      std::int64_t t_prev = rec ? rec->now_ns() : 0;
      // Chained spans bypass ScopedSpan, so they sample the per-span
      // counters by hand: a snapshot at every chain point turns the
      // cumulative counters into per-step deltas, preserving the
      // deltas-sum-to-totals invariant on this path too.
      const bool sampling = rec && rec->sampler();
      trace::CounterSet prev_counters;
      if (sampling) rec->sample(prev_counters);
      for (std::size_t j = 0; j < mine.bases.size(); ++j) {
        const SpaceTimeTile& base = mine.bases[j];
        const trace::ScopedSpan base_span(
            rec, trace::Phase::Parallelogram,
            {static_cast<std::int32_t>(j), static_cast<std::int32_t>(tb / tau),
             -1, my_tile});
        // Compute the local clip of the base one time step at a time,
        // synchronising with the right neighbours (local synchronisation)
        // at every step whose inputs cross a thread boundary.
        for (Index t = base.t0; t < base.t1; ++t) {
          const std::int64_t spin_before =
              rec ? rec->total_ns(trace::Phase::SpinWait) : 0;
          wait_on_right_neighbors(states, mine, my_tc, counts, shape, base, t, rank, s,
                                  sup.abort(), rec);
          const core::Box box = intersect(base.box_at(t), clip_box(mine, rank, t));
          if (!box.empty()) exec.update_box(box, tb + t, tid);
          mine.progress[j].advance_to(t + 1);
          if (rec) {
            const std::int64_t end = rec->now_ns();
            const trace::SpanArgs args{
                static_cast<std::int32_t>(box.lo[0]),
                rank >= 2 ? static_cast<std::int32_t>(box.lo[1]) : -1,
                rank >= 3 ? static_cast<std::int32_t>(box.lo[2]) : -1, tid};
            const std::int64_t spun =
                rec->total_ns(trace::Phase::SpinWait) - spin_before;
            if (sampling) {
              trace::CounterSet now;
              rec->sample(now);
              const trace::CounterSet delta = now.delta_since(prev_counters);
              rec->record(trace::Phase::Tile, t_prev, end, args, 0, spun, &delta);
              prev_counters = now;
            } else {
              rec->record(trace::Phase::Tile, t_prev, end, args, 0, spun);
            }
            t_prev = end;
          }
        }
      }
      barrier.arrive_and_wait(&sup.abort(), rec);
    }
  });
  const double seconds = timer.seconds();

  RunResult r = sup.finish(params.name, seconds);
  r.details["tau"] = static_cast<double>(tau);
  r.details["b"] = static_cast<double>(b);
  r.details["bases_per_layer"] =
      states.empty() ? 0.0 : static_cast<double>(states[0].bases.size());
  return r;
}

TrafficEstimate estimate_corals_traffic(const topology::MachineSpec& machine,
                                        const Coord& shape,
                                        const core::StencilSpec& stencil, int threads,
                                        long timesteps) {
  const int s = stencil.order();
  const Coord counts = decompose_counts(shape, threads);
  Index b = 0;
  for (int d = 0; d < shape.rank(); ++d) {
    if (counts[d] <= 1) continue;
    const Index extent = shape[d] / counts[d];
    b = b == 0 ? extent : std::min(b, extent);
  }
  if (b == 0) b = shape.min();
  const double tau = std::min<double>(std::max<long>(1, b / (2 * s)),
                                      static_cast<double>(timesteps));
  const double nband = stencil.banded() ? static_cast<double>(stencil.npoints()) : 0.0;
  const double cell_bytes = (2.0 + nband) * 8.0;

  // Per-thread working set vs the last-level cache share of one thread.
  // With few threads a thread enjoys (up to) a whole shared LLC instance.
  const auto& llc = machine.last_level_cache();
  const int sharers =
      std::min(std::min(threads, machine.cores_per_socket), llc.shared_by_cores);
  const double llc_share =
      static_cast<double>(llc.size_bytes) / static_cast<double>(std::max(1, sharers));
  const double tile_bytes =
      static_cast<double>(shape.product()) / threads * cell_bytes;

  // Temporal reuse depth from memory: the whole layer when the thread tile
  // is LLC-resident, otherwise each band of the (time-cut-first) recursion
  // re-streams the tile, limiting reuse to the band height.
  const double band_height = 8.0;  // BaseSizes default time
  const double tau_eff =
      tile_bytes <= 0.5 * llc_share ? tau : std::min(tau, band_height);

  double surface = 0.0;
  for (int d = 0; d < shape.rank(); ++d)
    if (counts[d] > 1)
      surface += static_cast<double>(s) * tau /
                 (2.0 * static_cast<double>(shape[d] / counts[d]));
  // Working set of one base parallelogram (~32x8x8 cells, all arrays) vs
  // the capacity of the cache levels above the LLC.
  const double base_ws = 32.0 * 8.0 * 8.0 * cell_bytes;
  double above_bytes = 0.0;
  for (std::size_t lvl = 0; lvl + 1 < machine.caches.size(); ++lvl)
    above_bytes += static_cast<double>(machine.caches[lvl].size_bytes);
  const double shield = std::clamp(above_bytes / (4.0 * base_ws), 0.0, 1.0);

  TrafficEstimate e;
  e.mem_doubles_per_update = (2.0 + nband) / tau_eff * (1.0 + surface);
  // Associativity conflict leak of the 2 + nband streaming arrays.  The
  // recursive blocking shields the streams only when the caches above the
  // LLC can hold a base parallelogram several times over: on the Xeon
  // (256 KiB L2) nuCORALS leaks a third of the wavefront's rate and wins
  // the banded case clearly; on the Opteron (64 KiB L1 only) both schemes
  // leak alike and end up tied (Section IV-E).
  const double leak = std::max(0.005, 0.03 - 0.04 * shield);
  e.mem_doubles_per_update +=
      leak * (2.0 + nband) * (static_cast<double>(stencil.reads_per_update()) + 1.0);

  // LLC traffic: base parallelograms (~32x8x8) are served largely from the
  // caches *above* the LLC when those are big enough; on huge per-thread
  // tiles the recursion's surface re-reads push the LLC traffic beyond the
  // zero-caching minimum.  Both effects calibrated against Figs. 6-9.
  const double reuse_above = 0.45 * shield;
  const double growth =
      std::clamp(1.4 * std::log(std::max(1.0, tile_bytes / (8.0 * llc_share))) /
                     std::log(8.0),
                 0.0, 0.85);  // saturates: 500^3/32 and weak 635^3/32 perform alike
  const double beta = (1.0 - reuse_above) + growth;
  e.llc_doubles_per_update =
      (static_cast<double>(stencil.reads_per_update()) + 1.0) * beta;
  return e;
}

}  // namespace nustencil::schemes
