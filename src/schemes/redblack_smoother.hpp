// Parallel NUMA-aware red-black Gauss-Seidel smoother.
//
// The in-place counterpart of NaiveSSE: the domain is decomposed across
// the non-unit-stride dimensions, each thread first-touches its own tile,
// and every iteration runs a red half-sweep, a barrier, a black
// half-sweep, a barrier.  Within a half-sweep same-coloured cells are
// independent, so no finer synchronisation is needed.
#pragma once

#include "core/redblack.hpp"
#include "schemes/scheme.hpp"

namespace nustencil::schemes {

struct RedBlackResult {
  double seconds = 0.0;
  Index updates = 0;
  double locality = 1.0;  ///< measured when machine != nullptr
  trace::PhaseBreakdown phases;  ///< filled when a trace is attached
};

/// Runs `iterations` red-black sweeps in place over `field` (which must be
/// uninitialised; each thread fills its own tile with Problem-compatible
/// values for `seed`).  When `machine` is given, first-touch placement and
/// traffic are measured against its virtual topology.  When `trace` is
/// given, half-sweeps, barrier waits and the first-touch fill feed it
/// typed spans and the result carries the phase breakdown.
RedBlackResult run_redblack_smoother(core::Field& field,
                                     const core::StencilSpec& stencil,
                                     long iterations, int threads,
                                     const topology::MachineSpec* machine = nullptr,
                                     unsigned seed = 42,
                                     trace::Trace* trace = nullptr);

}  // namespace nustencil::schemes
