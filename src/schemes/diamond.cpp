#include "schemes/diamond.hpp"

#include <algorithm>
#include <vector>

#include "schemes/run_support.hpp"
#include "thread/barrier.hpp"
#include "thread/spinflag.hpp"

namespace nustencil::schemes {

namespace {

long default_block(Index width, int s, long timesteps) {
  // A static "tuned" temporal tile: deep enough for reuse, bounded by the
  // tile width so the skew stays within one neighbour.
  return std::clamp<long>(width / (2 * s), 1, std::min<long>(32, timesteps));
}

}  // namespace

long diamond_block_height(const Coord& shape, const core::StencilSpec& stencil,
                          int threads, long timesteps) {
  const Index width = shape[shape.rank() - 1] / std::max(1, threads);
  return default_block(width, stencil.order(), timesteps);
}

RunResult DiamondScheme::run(core::Problem& problem, const RunConfig& config) const {
  const int rank = problem.shape().rank();
  NUSTENCIL_CHECK(config.boundary.all_periodic(rank),
                  "Diamond scheme requires periodic boundaries");
  NUSTENCIL_CHECK(config.schedule == sched::Schedule::Static,
                  "PLuTo diamond supports only --schedule=static (its "
                  "wavefront phases have no owner-first decomposition to "
                  "steal from)");
  RunSupport sup(problem, config);
  const int n = config.num_threads;
  const int s = problem.stencil().order();
  const int d = rank - 1;  // highest-stride dimension
  const Index nd = problem.shape()[d];
  NUSTENCIL_CHECK(nd >= 2 * s * n || n == 1,
                  "Diamond scheme: domain too small for this thread count");

  const Index width = nd / n;
  const long h = block_override_ > 0 ? block_override_
                                     : default_block(width, s, config.timesteps);

  sup.serial_init();  // NUMA-ignorant

  core::Box domain;
  domain.lo = Coord::filled(rank, 0);
  domain.hi = problem.shape();

  // One left-skewed parallelogram tile per thread; counter = completed
  // layer-relative steps of that tile.
  std::vector<threading::ProgressCounter> progress(static_cast<std::size_t>(n));
  threading::Barrier barrier(n);

  Timer timer;
  sup.run_workers([&](int tid) {
    core::Executor& exec = sup.executor(tid);
    trace::ThreadRecorder* rec = sup.recorder(tid);
    const Index lo = nd * tid / n, hi = nd * (tid + 1) / n;
    const int left = (tid + n - 1) % n;
    for (long tb = 0; tb < config.timesteps; tb += h) {
      const long hb = std::min<long>(h, config.timesteps - tb);
      if (config.progress) config.progress->set_layer(tb / h);
      const trace::ScopedSpan layer_span(
          rec, trace::Phase::Layer,
          {static_cast<std::int32_t>(tb / h), static_cast<std::int32_t>(tb),
           static_cast<std::int32_t>(hb)});
      for (long dt = 0; dt < hb; ++dt) {
        // Left-skewed tile: cells near the left edge read up to 2s into
        // the left neighbour's results of step dt-1.
        if (dt > 0 && n > 1)
          progress[static_cast<std::size_t>(left)].wait_for(dt, &sup.abort(), rec, left);
        core::Box box = domain;
        box.lo[d] = lo - s * dt;
        box.hi[d] = hi - s * dt;
        exec.update_box(box, tb + dt, tid);
        progress[static_cast<std::size_t>(tid)].advance_to(dt + 1);
      }
      barrier.arrive_and_wait(&sup.abort(), rec);
      if (tid == 0)
        for (auto& c : progress) c.reset();
      barrier.arrive_and_wait(&sup.abort(), rec);
    }
  });
  const double seconds = timer.seconds();

  RunResult r = sup.finish(name(), seconds);
  r.details["block_height"] = static_cast<double>(h);
  return r;
}

TrafficEstimate DiamondScheme::estimate_traffic(const topology::MachineSpec& machine,
                                                const Coord& shape,
                                                const core::StencilSpec& stencil, int threads,
                                                long timesteps) const {
  const int s = stencil.order();
  const Index width = shape[shape.rank() - 1] / std::max(1, threads);
  const double h = static_cast<double>(
      block_override_ > 0 ? block_override_ : default_block(width, s, timesteps));
  const double nband = stencil.banded() ? static_cast<double>(stencil.npoints()) : 0.0;
  TrafficEstimate e;
  const double reload = 2.0 * s * h / static_cast<double>(std::max<Index>(1, width));
  e.mem_doubles_per_update = (2.0 + nband) / h * (1.0 + reload);
  // Static rectangular sweeps reuse higher cache levels less than the
  // cache-oblivious recursion.
  e.llc_doubles_per_update =
      (static_cast<double>(stencil.reads_per_update()) + 1.0) * 0.85;
  (void)machine;
  return e;
}

}  // namespace nustencil::schemes
