// Shared machinery of MWD and nuMWD — multicore wavefront diamond
// blocking (Malas et al., arXiv:1410.3060) with multi-dimensional
// intra-tile parallelization (arXiv:1510.04995).
//
// The periodic traversal dimension z is cut at nd evenly spaced points
// c_j.  Around each cut lives a *diamond column* V_j, between the cuts an
// *interstitial column* I_j; at time step t (computing level t+1 from t)
// the columns partition the ring exactly:
//
//   V_j(t) = [c_j - s*g(t), c_j + s*g(t))        g(t) = min(t mod 2tau,
//   I_j(t) = [c_j + s*g(t), c_{j+1} - s*g(t))              2tau - t mod 2tau)
//
// so V columns breathe open into diamonds of half-height tau while the I
// columns shrink, and vice versa — the classic diamond tiling of the
// (z,t) plane, degenerate to pure diamonds when the cut gap is exactly
// 2*s*tau.  A column's 2*tau consecutive steps touch only ~(2*s*tau+2*s)
// planes, so tau is sized to keep that working set inside the *shared*
// last-level cache of one thread group.
//
// Dependencies reduce to one monotone progress counter per column
// (counter = completed steps; no global barriers): a *growing* step t
// (the column's box widened since t-1) waits until both z-neighbour
// columns have completed step t-1; a *shrinking* step reads only its own
// previous box and proceeds unconditionally.  V and I columns alternate
// growing/shrinking in windows of tau steps, and a growing column only
// ever waits on the opposite family, so the wait graph is bipartite and
// the window pipeline is deadlock-free.  The same half-open geometry
// makes the scheme write-after-read safe under double buffering: a
// shrinking writer's box edge-touches (never overlaps) the cells its
// neighbours read one step earlier, and a growing writer waits on exactly
// the columns whose reads it could clobber.
//
// Thread groups: `RunConfig::group_size` threads (auto: the largest
// divisor of the thread count no bigger than the cores sharing one LLC)
// cooperate inside each column, splitting the y/x cross-section per
// member and synchronising per time level with a group barrier —
// multi-dimensional intra-tile parallelization.  Groups pipeline across
// columns through the progress counters; under the stealing schedules the
// group *leaders* draw whole columns from the NUMA-aware task pool and
// broadcast (column, step) commands to their members.
//
// MWD assigns column pairs to groups round-robin over a serial (node-0)
// initialisation; nuMWD assigns contiguous ranges of the ring and
// first-touches each group's home range in parallel, so a group's
// diamonds live on pages its node owns.
#pragma once

#include <string>
#include <vector>

#include "schemes/scheme.hpp"

namespace nustencil::schemes {

struct MwdPlan {
  long tau = 1;        ///< diamond half-height (steps per window)
  int columns = 1;     ///< nd cut points / V-I column pairs around the ring
  std::vector<Index> cuts;  ///< nd+1 cut positions, cuts[0]=0 .. cuts[nd]=Nz
  int group_size = 1;  ///< threads cooperating inside one column
  int groups = 1;      ///< thread count / group_size
  int gy = 1, gx = 1;  ///< cross-section split of one group (gy*gx = group_size)
  int dim_y = -1, dim_x = -1;     ///< split dimensions (-1: not split)
  std::vector<int> owner_group;   ///< column pair -> owning group
  double diamond_bytes = 0.0;     ///< working set of one full-width diamond
};

/// Computes the diamond tiling for either scheme.  `group_size` 0 picks
/// the auto rule (largest divisor of `threads` within one LLC's sharer
/// count); explicit values must divide the thread count.  `numa_aware`
/// selects contiguous (nuMWD) versus round-robin (MWD) column ownership.
/// `tau_override` != 0 replaces the cache-derived half-height (clamped to
/// the feasible Nz/(2s)).
MwdPlan plan_mwd(const Coord& shape, const core::StencilSpec& stencil,
                 const topology::MachineSpec& machine, int threads, long timesteps,
                 bool numa_aware, int group_size, long tau_override = 0);

struct MwdParams {
  std::string name = "MWD";
  bool numa_init = false;  ///< parallel first touch of group home ranges
  long tau_override = 0;   ///< ablation hook (bench/ablation_group_size)
};

/// Shared run implementation; `params.numa_init` controls init and the
/// column-ownership layout.
RunResult run_mwd_like(core::Problem& problem, const RunConfig& config,
                       const MwdParams& params);

/// Shared analytic traffic estimate for the diamond family.
TrafficEstimate estimate_mwd_traffic(const topology::MachineSpec& machine,
                                     const Coord& shape, const core::StencilSpec& stencil,
                                     int threads, long timesteps);

}  // namespace nustencil::schemes
