#include "schemes/explain.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "core/spacetime.hpp"
#include "numa/traffic.hpp"
#include "sched/pool.hpp"
#include "schemes/cats_common.hpp"
#include "schemes/decompose.hpp"
#include "schemes/diamond.hpp"
#include "schemes/mwd_common.hpp"
#include "schemes/scheme.hpp"
#include "schemes/trapezoid.hpp"

namespace nustencil::schemes {

namespace {

std::string bytes_human(double b) {
  std::ostringstream os;
  os.precision(3);
  if (b >= 1 << 20)
    os << b / (1 << 20) << " MiB";
  else if (b >= 1 << 10)
    os << b / (1 << 10) << " KiB";
  else
    os << b << " B";
  return os.str();
}

void describe_cats(std::ostringstream& os, const Coord& shape,
                   const core::StencilSpec& st, const topology::MachineSpec& m,
                   int threads, long timesteps, bool numa_aware) {
  core::Box updatable;
  updatable.lo = Coord::filled(3, 0);
  updatable.hi = shape;
  updatable.lo[2] += st.order();
  updatable.hi[2] -= st.order();
  const CatsPlan plan = plan_cats(updatable, st, m, threads, timesteps, numa_aware);
  const double wavefront = static_cast<double>(shape[0]) *
                           static_cast<double>(plan.wy) *
                           (static_cast<double>(plan.chunk) * st.order() + 2.0 * st.order() + 2.0) *
                           8.0 * (st.banded() ? (2.0 + st.npoints()) / 2.0 : 1.0);
  const auto& llc = m.last_level_cache();
  os << "time-skewed wavefront (CATS family)\n"
     << "  temporal chunk Tc       : " << plan.chunk << " of " << timesteps
     << " steps (" << ceil_div(timesteps, plan.chunk) << " pass(es))\n"
     << "  tile width along y      : " << plan.wy << " cells\n"
     << "  tiles                   : " << plan.tiles_y << " x " << plan.z_segments
     << " z-segment(s) = " << plan.num_tiles() << " (threads: " << threads << ")\n"
     << "  moving wavefront        : ~" << bytes_human(wavefront)
     << " per tile vs LLC share "
     << bytes_human(static_cast<double>(llc.size_bytes) / llc.shared_by_cores) << "\n"
     << "  tile assignment         : "
     << (numa_aware ? "owner-matched (subdomain decomposition, parallel first touch)"
                    : "round-robin (serial first touch, all pages on node 0)")
     << '\n';
}

void describe_corals(std::ostringstream& os, const Coord& shape,
                     const core::StencilSpec& st, const topology::MachineSpec& m,
                     int threads, long timesteps, bool numa_aware) {
  const int rank = shape.rank();
  const int s = st.order();
  const Coord counts = decompose_counts(shape, threads);
  core::Box domain;
  domain.lo = Coord::filled(rank, 0);
  domain.hi = shape;
  const auto tiles = decompose_domain(domain, counts);
  Index b = 0;
  for (int d = 0; d < rank; ++d) {
    if (counts[d] <= 1) continue;
    for (const auto& tile : tiles)
      b = b == 0 ? tile.extent(d) : std::min(b, tile.extent(d));
  }
  if (b == 0) b = tiles[0].hi.min();
  const long tau = std::max<long>(1, b / (2 * s));
  const long tau_act = std::min<long>(tau, timesteps);

  core::SpaceTimeTile root;
  root.t0 = 0;
  root.t1 = tau_act;
  root.rank = rank;
  for (int d = 0; d < rank; ++d) {
    const bool decomposed = counts[d] > 1;
    const Index lo = decomposed ? tiles[0].lo[d] : 0;
    const Index hi = decomposed ? tiles[0].hi[d] : shape[d];
    root.dims[static_cast<std::size_t>(d)] =
        core::SkewedInterval{lo, hi + 2 * s * (tau_act - 1), -s, -s};
  }
  std::vector<core::SpaceTimeTile> bases;
  core::decompose_parallelogram(root, core::BaseSizes{}, bases);

  os << "bidirectional parallelogram tiling (CORALS family)\n"
     << "  spatial decomposition   : " << counts << " tiles (unit-stride never cut)\n"
     << "  smallest tile extent b  : " << b << " cells\n"
     << "  layer height tau        : " << tau << " = b/(2s); "
     << ceil_div(timesteps, tau) << " layer(s) with global barriers\n"
     << "  thread parallelograms   : skewed right, slope +" << s
     << ", wrap at the domain edge\n"
     << "  root parallelogram      : skewed left, covers tile + 2s(tau-1) = "
     << 2 * s * (tau_act - 1) << " cells of right overhang\n"
     << "  base parallelograms     : " << bases.size()
     << " per thread per layer (default sizes 32x8x8 cells x 8 steps)\n"
     << "  expected local fraction : ~" << 100 - 100 * tau / (2 * b)
     << "% (paper Section III-C: 1 - tau/2b per decomposed dimension)\n"
     << "  initialisation          : "
     << (numa_aware ? "parallel first touch by owners" : "serial (all pages on node 0)")
     << '\n';
  (void)m;
}

void describe_mwd(std::ostringstream& os, const Coord& shape,
                  const core::StencilSpec& st, const topology::MachineSpec& m,
                  int threads, long timesteps, bool numa_aware, int group_size) {
  const MwdPlan plan =
      plan_mwd(shape, st, m, threads, timesteps, numa_aware, group_size);
  const int s = st.order();
  const auto& llc = m.last_level_cache();
  const Index nz = shape[shape.rank() - 1];
  os << "wavefront diamond blocking (MWD family)\n"
     << "  diamond half-height tau : " << plan.tau << " steps (width "
     << 2 * s * plan.tau << " of " << nz << " cells along z)\n"
     << "  ring columns            : " << plan.columns
     << " V/I pair(s), cut gap " << nz / plan.columns << " cells\n"
     << "  thread groups           : " << plan.groups << " x " << plan.group_size
     << " threads (" << (group_size > 0 ? "explicit" : "auto = LLC sharers") << "); "
     << "cross-section split " << plan.gy << "y x " << plan.gx << "x\n"
     << "  diamond working set     : " << bytes_human(plan.diamond_bytes)
     << " vs shared LLC " << bytes_human(static_cast<double>(llc.size_bytes))
     << " (" << llc.name << ", " << llc.shared_by_cores
     << " cores) — one group shares the whole cache, not a per-thread slice\n"
     << "  synchronisation         : group barrier per time level; one "
        "progress counter per column, growing steps wait on both ring "
        "neighbours (no global barriers)\n"
     << "  column ownership        : "
     << (numa_aware ? "contiguous ring ranges (parallel first touch by group)"
                    : "round-robin (serial first touch, all pages on node 0)")
     << '\n';
}

}  // namespace

std::string describe_plan(const std::string& requested, const Coord& shape,
                          const core::StencilSpec& stencil,
                          const topology::MachineSpec& machine, int threads,
                          long timesteps, sched::Schedule schedule,
                          int group_size) {
  // Canonicalise through the factory so --explain accepts the same
  // case-insensitive spellings as a real run (throws on unknown names).
  const std::string name = make_scheme(requested)->name();
  std::ostringstream os;
  os << name << " on " << shape << ", s=" << stencil.order()
     << (stencil.banded() ? " (banded)" : "") << ", " << timesteps << " steps, "
     << threads << " thread(s), machine " << machine.name << ":\n";

  if (name == "CATS" || name == "nuCATS") {
    NUSTENCIL_CHECK(shape.rank() == 3, "describe_plan: CATS family is 3D-only");
    describe_cats(os, shape, stencil, machine, threads, timesteps, name == "nuCATS");
  } else if (name == "CORALS" || name == "nuCORALS") {
    describe_corals(os, shape, stencil, machine, threads, timesteps,
                    name == "nuCORALS");
  } else if (name == "NaiveSSE") {
    const Coord counts = decompose_counts(shape, threads);
    os << "parallel sweep, no temporal blocking\n"
       << "  spatial decomposition   : " << counts
       << " tiles, parallel first touch, barrier per step\n";
  } else if (name == "Pochoir") {
    const int d = shape.rank() - 1;
    const int k = trapezoid_tiles(shape, stencil, threads);
    os << "two-phase trapezoids (Pochoir stand-in)\n"
       << "  tiles along dim " << d << "      : " << k << " of width " << shape[d] / k
       << '\n'
       << "  time block height       : "
       << trapezoid_block_height(shape, stencil, threads, timesteps)
       << " (bounded by W/2s)\n"
       << "  initialisation          : serial (NUMA-ignorant)\n";
  } else if (name == "MWD" || name == "nuMWD") {
    describe_mwd(os, shape, stencil, machine, threads, timesteps, name == "nuMWD",
                 group_size);
  } else if (name == "PLuTo") {
    os << "static skewed tile pipeline (PLuTo stand-in)\n"
       << "  tiles along highest dim : " << threads << " of width "
       << shape[shape.rank() - 1] / std::max(1, threads) << '\n'
       << "  time block height       : "
       << diamond_block_height(shape, stencil, threads, timesteps)
       << " (per-step neighbour pipeline)\n"
       << "  initialisation          : serial (NUMA-ignorant)\n";
  } else {
    throw Error("describe_plan: unknown scheme '" + name + "'");
  }

  os << "scheduling: " << sched::schedule_name(schedule);
  if (schedule == sched::Schedule::Static) {
    os << " (owner-computes; every tile runs on the thread whose node "
          "first-touched it)\n";
  } else {
    os << " (owner-first deques; an idle thread steals from the far end of "
          "the nearest busy victim"
       << (schedule == sched::Schedule::StealLocal ? ", same NUMA node only)\n"
                                                   : ")\n");
    const sched::TaskPool pool(
        threads, sched::thread_nodes(machine, numa::PinPolicy::Compact, threads),
        schedule);
    for (int tid = 0; tid < threads; ++tid) {
      os << "  victim order thread " << tid << " : ";
      const auto& order = pool.victim_order(tid);
      if (order.empty()) os << "(none)";
      for (std::size_t i = 0; i < order.size(); ++i)
        os << (i ? ", " : "") << order[i];
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace nustencil::schemes
