// Human-readable description of the plan a scheme would execute for a
// given configuration — tile geometry, temporal depth, working sets vs
// cache capacities — without running anything.  Exposed through the CLI's
// --explain flag; the single most useful debugging aid when a scheme's
// performance surprises.
#pragma once

#include <string>

#include "core/boundary.hpp"
#include "core/stencil.hpp"
#include "sched/schedule.hpp"
#include "topology/machine.hpp"

namespace nustencil::schemes {

/// `group_size` parameterises the MWD/nuMWD thread groups (0 = auto) and
/// is ignored by every other scheme.
std::string describe_plan(const std::string& scheme_name, const Coord& shape,
                          const core::StencilSpec& stencil,
                          const topology::MachineSpec& machine, int threads,
                          long timesteps,
                          sched::Schedule schedule = sched::Schedule::Static,
                          int group_size = 0);

}  // namespace nustencil::schemes
