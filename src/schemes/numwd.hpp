// nuMWD — NUMA-affine multicore wavefront diamond blocking: MWD's
// shared-cache thread groups and intra-tile parallelization fused with
// this repo's data-to-core affinity.  Each group owns a contiguous range
// of the diamond ring and first-touches it in parallel (member
// cross-section chunk x group home range), so the pages a group's
// diamonds breathe over stay on its node; the stealing schedules then
// trade diamonds between groups NUMA-distance-first.  See
// schemes/mwd_common.hpp.
#pragma once

#include "schemes/mwd_common.hpp"
#include "schemes/scheme.hpp"

namespace nustencil::schemes {

class NuMwdScheme : public Scheme {
 public:
  /// `tau_override` != 0 replaces the cache-derived diamond half-height
  /// (used by bench/ablation_group_size).
  explicit NuMwdScheme(long tau_override = 0) : tau_override_(tau_override) {}

  std::string name() const override { return "nuMWD"; }
  bool numa_aware() const override { return true; }
  RunResult run(core::Problem& problem, const RunConfig& config) const override;
  TrafficEstimate estimate_traffic(const topology::MachineSpec& machine, const Coord& shape,
                                   const core::StencilSpec& stencil, int threads,
                                   long timesteps) const override;

 private:
  long tau_override_;
};

}  // namespace nustencil::schemes
