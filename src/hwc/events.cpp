#include "hwc/events.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace nustencil::hwc {
namespace {

// Canonical spelling uses '-', matching perf(1); parsing folds case and
// treats '_' as '-' so --hw-events=Cache_Misses works too.
std::string canonical(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return c == '_' ? '-' : static_cast<char>(std::tolower(c));
  });
  return out;
}

constexpr const char* kEventNames[kNumEvents] = {
    "cycles",        "instructions", "cache-references", "cache-misses",
    "stalled-cycles", "task-clock",  "page-faults"};

std::string all_event_names() {
  std::string out;
  for (int i = 0; i < kNumEvents; ++i) {
    if (i) out += i + 1 == kNumEvents ? " or " : ", ";
    out += kEventNames[i];
  }
  return out;
}

}  // namespace

const char* event_name(Event e) {
  return kEventNames[static_cast<int>(e)];
}

bool event_is_software(Event e) {
  return e == Event::TaskClock || e == Event::PageFaults;
}

bool event_is_optional(Event e) { return e == Event::StalledCycles; }

Event parse_event(const std::string& name) {
  const std::string c = canonical(name);
  for (int i = 0; i < kNumEvents; ++i)
    if (c == kEventNames[i]) return static_cast<Event>(i);
  NUSTENCIL_CHECK(false, "unknown hardware event '" + name + "' (expected " +
                             all_event_names() + ")");
  return Event::Cycles;  // unreachable
}

std::vector<Event> parse_event_list(const std::string& csv) {
  NUSTENCIL_CHECK(!csv.empty(),
                  "--hw-events: empty event list (expected a comma-separated "
                  "subset of " + all_event_names() + ")");
  std::vector<Event> events;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    NUSTENCIL_CHECK(!item.empty(),
                    "--hw-events: empty entry in '" + csv + "'");
    const Event e = parse_event(item);
    NUSTENCIL_CHECK(std::find(events.begin(), events.end(), e) == events.end(),
                    "--hw-events: duplicate event '" + item + "'");
    events.push_back(e);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return events;
}

const std::vector<Event>& default_events() {
  static const std::vector<Event> events = {
      Event::Cycles, Event::Instructions, Event::CacheReferences,
      Event::CacheMisses, Event::StalledCycles};
  return events;
}

trace::SpanCounter event_slot(Event e) {
  static_assert(static_cast<int>(trace::SpanCounter::HwPageFaults) -
                        static_cast<int>(trace::SpanCounter::HwCycles) + 1 ==
                    kNumEvents,
                "one SpanCounter slot per hwc::Event, in the same order");
  return static_cast<trace::SpanCounter>(
      static_cast<int>(trace::SpanCounter::HwCycles) + static_cast<int>(e));
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Off: return "off";
    case Mode::Auto: return "auto";
    case Mode::On: return "on";
  }
  return "off";
}

Mode parse_mode(const std::string& name) {
  std::string c = name;
  std::transform(c.begin(), c.end(), c.begin(), [](unsigned char ch) {
    return static_cast<char>(std::tolower(ch));
  });
  if (c == "off") return Mode::Off;
  if (c == "auto") return Mode::Auto;
  if (c == "on") return Mode::On;
  NUSTENCIL_CHECK(false, "unknown --hw-counters mode '" + name +
                             "' (expected auto, on or off)");
  return Mode::Off;  // unreachable
}

}  // namespace nustencil::hwc
