// Per-thread hardware counter groups and the run-level hw statistics.
//
// A ThreadSet owns one counter group per worker thread.  The fds are
// opened lazily from each worker itself — perf_event_open with pid=0
// binds the counter to the *calling* thread — and stay open for the
// whole run because the team's workers are persistent.  attach()/
// detach() bracket each parallel region with one enable/disable ioctl
// per group (not per span); inside the region the profiler samples the
// cumulative values at leaf-span boundaries, so measured deltas ride
// the exact out-of-ring accumulation the simulated counters use.
//
// Two totals come out of that split:
//   attributed — the sum of every Tile/Init span delta (equals the
//                trace's counter totals exactly, by construction), and
//   total      — the full enabled-region counts from the final read.
// Their difference is real and reported: cycles spent in barriers,
// spin-waits and scheduling are measured but belong to no compute span.
//
// Multiplexing is surfaced, never hidden: when the kernel time-shares
// the PMU, time_running < time_enabled and the per-thread scaling
// factor (enabled/running) is reported alongside the *raw* counts.  No
// value is silently multiplied up.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hwc/backend.hpp"
#include "hwc/events.hpp"

namespace nustencil::hwc {

/// Everything the run report's "hw" section serialises.
struct HwRunStats {
  bool enabled = false;  ///< mode != off
  Mode mode = Mode::Off;
  std::string backend;        ///< backend name ("perf_event_open", "fake")
  std::string status = "off";  ///< "off" | "ok" | "degraded"
  std::string reason;          ///< why, when degraded
  int paranoid = -1;           ///< /proc/sys/kernel/perf_event_paranoid

  struct EventStatus {
    Event event = Event::Cycles;
    bool available = false;
    bool optional_event = false;  ///< absence does not degrade the run
    std::string reason;           ///< open failure explanation
  };
  std::vector<EventStatus> events;  ///< the requested set, in order

  struct Thread {
    double scaling = 1.0;      ///< time_enabled / time_running (>= 1)
    bool multiplexed = false;  ///< scaling > 1 on the final read
    std::array<std::uint64_t, kNumEvents> total{};       ///< enabled-region counts
    std::array<std::uint64_t, kNumEvents> attributed{};  ///< sum of span deltas
  };
  std::vector<Thread> threads;

  std::array<std::uint64_t, kNumEvents> totals{};      ///< sum of threads' total
  std::array<std::uint64_t, kNumEvents> attributed{};  ///< sum of threads' attributed

  /// Simulated-vs-measured cross-check: per-span cachesim misses against
  /// the measured cache-misses delta of the same span, with the Spearman
  /// rank correlation as the headline.
  struct Validation {
    std::string status;  ///< "ok" or why the check could not run
    int n = 0;           ///< spans with both values
    double spearman = 0.0;
    std::vector<std::array<double, 2>> points;  ///< {sim, measured}, capped
  };
  std::optional<Validation> validation;

  bool available(Event e) const {
    for (const EventStatus& s : events)
      if (s.event == e) return s.available;
    return false;
  }
  /// True when the run measured anything at all.
  bool any_available() const {
    for (const EventStatus& s : events)
      if (s.available) return true;
    return false;
  }
  double max_scaling() const {
    double m = 1.0;
    for (const Thread& t : threads) m = t.scaling > m ? t.scaling : m;
    return m;
  }
};

/// The per-thread counter groups of one run.
class ThreadSet {
 public:
  /// Probes each requested event once (open+close on the calling
  /// thread), fixes the per-run event set and the degradation status.
  /// No syscalls happen at all when `mode` is Off.
  ThreadSet(SyscallBackend& backend, Mode mode, std::vector<Event> requested,
            int num_threads);

  /// Closes every fd (safe from any thread once workers have joined).
  ~ThreadSet();

  ThreadSet(const ThreadSet&) = delete;
  ThreadSet& operator=(const ThreadSet&) = delete;

  /// True when at least one event survived the probe (sampling and
  /// attach are no-ops otherwise).
  bool active() const { return active_; }

  /// Call from worker `tid` at the start of a parallel region: opens the
  /// thread's group on first use, then enables it (one ioctl).
  void attach(int tid);

  /// Call from worker `tid` (or after joining) at the end of a region:
  /// disables the group.  The fds stay open for the next region.
  void detach(int tid);

  /// Cumulative counter read into the hw slots of `out` (other slots
  /// untouched).  Called by the profiler from the owning thread at
  /// leaf-span boundaries.
  void sample(int tid, trace::CounterSet& out) const;

  /// Final per-thread reads folded into the run stats (attributed totals
  /// are filled in by the caller from the trace).  Call after workers
  /// have joined.
  HwRunStats stats() const;

  /// The probe outcome without the per-thread totals (for --explain).
  const HwRunStats& probe() const { return probe_; }

 private:
  struct SubGroup {
    int leader_fd = -1;
    std::vector<Event> members;  ///< open order == read order
    std::vector<int> fds;        ///< parallel to members; fds[0] == leader_fd
  };
  struct PerThread {
    bool opened = false;
    bool enabled = false;
    std::vector<SubGroup> groups;
  };

  SyscallBackend* backend_;
  Mode mode_;
  std::vector<Event> events_;  ///< probe-approved, open order
  bool active_ = false;
  HwRunStats probe_;           ///< status/reason/events, no thread data
  std::vector<PerThread> threads_;

  void open_thread(PerThread& t);
};

/// Human-readable "hardware counters" block for `nustencil --explain`.
std::string describe_hw(Mode mode, const std::vector<Event>& requested,
                        SyscallBackend& backend);

}  // namespace nustencil::hwc
