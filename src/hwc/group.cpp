#include "hwc/group.hpp"

#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace nustencil::hwc {
namespace {

/// Scaling factor of one reading: time_enabled / time_running.  A group
/// that never ran (tr == 0) reports 1.0 — there is nothing to scale.
double scaling_of(const GroupReading& r) {
  return r.time_running > 0
             ? static_cast<double>(r.time_enabled) /
                   static_cast<double>(r.time_running)
             : 1.0;
}

}  // namespace

ThreadSet::ThreadSet(SyscallBackend& backend, Mode mode,
                     std::vector<Event> requested, int num_threads)
    : backend_(&backend), mode_(mode) {
  probe_.mode = mode;
  probe_.backend = backend.name();
  if (mode == Mode::Off) return;  // zero syscalls in Off mode
  probe_.enabled = true;
  probe_.paranoid = backend.paranoid_level();
  if (requested.empty()) requested = default_events();

  // Probe each event once on the calling thread.  The probe fd is
  // closed immediately; its only job is to learn whether open succeeds
  // and, if not, why — before any worker commits to a group layout.
  std::vector<std::pair<std::string, std::string>> misses;  // names, reason
  for (const Event e : requested) {
    HwRunStats::EventStatus s;
    s.event = e;
    s.optional_event = event_is_optional(e);
    const int fd = backend.open(e, -1);
    if (fd >= 0) {
      backend.close(fd);
      s.available = true;
      events_.push_back(e);
    } else {
      s.reason = errno_reason(fd, probe_.paranoid);
      if (!s.optional_event) {
        // Group missing events that share a cause into one clause, so
        // "no vPMU" reads once, not once per event.
        bool merged = false;
        for (auto& [names, reason] : misses)
          if (reason == s.reason) {
            names += ", " + std::string(event_name(e));
            merged = true;
            break;
          }
        if (!merged) misses.emplace_back(event_name(e), s.reason);
      }
    }
    probe_.events.push_back(s);
  }
  std::string missing;
  for (const auto& [names, reason] : misses) {
    if (!missing.empty()) missing += "; ";
    missing += names + ": " + reason;
  }
  active_ = !events_.empty();

  if (!backend.supported()) {
    probe_.status = "degraded";
    probe_.reason = "no counter backend in this build";
  } else if (!active_) {
    probe_.status = "degraded";
    probe_.reason = missing.empty() ? "no requested event is measurable"
                                    : missing;
  } else if (!missing.empty()) {
    probe_.status = "degraded";
    probe_.reason = "unavailable events — " + missing;
  } else {
    probe_.status = "ok";
  }

  threads_.resize(static_cast<std::size_t>(num_threads));
}

ThreadSet::~ThreadSet() {
  for (PerThread& t : threads_)
    for (const SubGroup& g : t.groups) {
      // Close siblings before the leader; the backend holds the group
      // together via the leader fd.
      for (std::size_t i = g.members.size(); i-- > 1;) backend_->close(g.fds[i]);
      backend_->close(g.leader_fd);
    }
}

void ThreadSet::open_thread(PerThread& t) {
  t.opened = true;
  for (const Event e : events_) {
    int fd = -1;
    if (!t.groups.empty()) {
      // Preferred: one group, one grouped read for every event.
      fd = backend_->open(e, t.groups.front().leader_fd);
      if (fd >= 0) {
        t.groups.front().members.push_back(e);
        t.groups.front().fds.push_back(fd);
        continue;
      }
    }
    // First event, or the PMU cannot co-schedule this one (ENOSPC,
    // mixed-type restrictions): give it a group of its own.
    fd = backend_->open(e, -1);
    if (fd < 0) continue;  // probed fine but lost at run time; slot stays 0
    SubGroup g;
    g.leader_fd = fd;
    g.members.push_back(e);
    g.fds.push_back(fd);
    t.groups.push_back(std::move(g));
  }
}

void ThreadSet::attach(int tid) {
  if (!active_) return;
  PerThread& t = threads_[static_cast<std::size_t>(tid)];
  if (!t.opened) open_thread(t);
  if (t.enabled) return;
  for (const SubGroup& g : t.groups) backend_->enable(g.leader_fd);
  t.enabled = true;
}

void ThreadSet::detach(int tid) {
  if (!active_) return;
  PerThread& t = threads_[static_cast<std::size_t>(tid)];
  if (!t.enabled) return;
  for (const SubGroup& g : t.groups) backend_->disable(g.leader_fd);
  t.enabled = false;
}

void ThreadSet::sample(int tid, trace::CounterSet& out) const {
  if (!active_) return;
  const PerThread& t = threads_[static_cast<std::size_t>(tid)];
  if (!t.opened) return;  // e.g. serial init on the main thread
  GroupReading r;
  for (const SubGroup& g : t.groups) {
    if (backend_->read_group(g.leader_fd, static_cast<int>(g.members.size()),
                             r) != 0)
      continue;
    for (std::size_t i = 0; i < g.members.size(); ++i)
      out.at(event_slot(g.members[i])) = r.values[i];
  }
}

HwRunStats ThreadSet::stats() const {
  HwRunStats s = probe_;
  if (mode_ == Mode::Off) return s;
  s.threads.resize(threads_.size());
  for (std::size_t tid = 0; tid < threads_.size(); ++tid) {
    const PerThread& t = threads_[tid];
    HwRunStats::Thread& out = s.threads[tid];
    if (!t.opened) continue;
    GroupReading r;
    for (const SubGroup& g : t.groups) {
      if (backend_->read_group(g.leader_fd, static_cast<int>(g.members.size()),
                               r) != 0)
        continue;
      for (std::size_t i = 0; i < g.members.size(); ++i)
        out.total[static_cast<std::size_t>(g.members[i])] = r.values[i];
      const double scale = scaling_of(r);
      if (scale > out.scaling) out.scaling = scale;
      if (r.time_running < r.time_enabled) out.multiplexed = true;
    }
    for (int ev = 0; ev < kNumEvents; ++ev)
      s.totals[static_cast<std::size_t>(ev)] +=
          out.total[static_cast<std::size_t>(ev)];
  }
  return s;
}

std::string describe_hw(Mode mode, const std::vector<Event>& requested,
                        SyscallBackend& backend) {
  std::ostringstream os;
  auto label = [&](const std::string& name) -> std::ostream& {
    os << "  " << std::left << std::setw(24) << name << ": ";
    return os;
  };
  os << "hardware counters:\n";
  if (mode == Mode::Off) {
    label("mode") << "off (no syscalls; enable with --hw-counters=auto)\n";
    return os.str();
  }
  // Probe without threads: opens and closes one fd per event.
  ThreadSet probe(backend, mode, requested, /*num_threads=*/0);
  const HwRunStats& p = probe.probe();
  label("mode") << mode_name(mode) << '\n';
  label("backend") << p.backend << '\n';
  label("perf_event_paranoid")
      << (p.paranoid >= 0 ? std::to_string(p.paranoid) : "unknown") << '\n';
  std::string names;
  for (const auto& e : p.events) {
    if (!names.empty()) names += ", ";
    names += event_name(e.event);
    if (e.optional_event) names += " (optional)";
  }
  label("events") << names << '\n';
  for (const auto& e : p.events)
    if (!e.available)
      label(std::string("  ") + event_name(e.event))
          << "unavailable — " << e.reason << '\n';
  label("status") << p.status
                  << (p.reason.empty() ? "" : " — " + p.reason) << '\n';
  if (p.status != "ok")
    os << "  (degradation is graceful: the run still succeeds and the "
          "report records hw.status)\n";
  return os.str();
}

}  // namespace nustencil::hwc
