// Pluggable perf_event_open syscall surface.
//
// Everything the counter groups need from the kernel goes through this
// interface: open a counter on the calling thread, enable/disable a
// group, do one grouped read, close.  The real implementation wraps
// syscall(SYS_perf_event_open, ...) and is compiled on Linux only; a
// programmable fake (fake_backend.hpp) implements the same surface so
// the group logic, the scaling math and the degraded paths are unit
// tested on machines where perf itself is forbidden.
//
// Error reporting convention: calls that can fail return 0/fd on success
// and -errno on failure, never throw — counter unavailability is an
// expected state (containers, perf_event_paranoid, missing vPMU), not an
// exception.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hwc/events.hpp"

namespace nustencil::hwc {

/// One grouped read: the group's enable/run times (for the multiplexing
/// scaling factor) plus the member values in open order.
struct GroupReading {
  std::uint64_t time_enabled = 0;
  std::uint64_t time_running = 0;
  std::vector<std::uint64_t> values;
};

class SyscallBackend {
 public:
  virtual ~SyscallBackend() = default;

  /// Short name stamped into the report ("perf_event_open", "fake").
  virtual const char* name() const = 0;

  /// False when this build has no counter syscall at all (non-Linux
  /// stub).  --hw-counters=on refuses to run against such a backend;
  /// runtime failures on a supported backend degrade instead.
  virtual bool supported() const = 0;

  /// Opens a counter for `event` bound to the *calling thread* (pid=0,
  /// cpu=-1 semantics).  group_fd = -1 starts a new group whose leader
  /// the returned fd becomes; otherwise the fd joins that group.  Every
  /// fd uses the grouped read format with total time enabled/running.
  /// Returns the fd (>= 0) or -errno.
  virtual int open(Event event, int group_fd) = 0;

  /// Enables / disables `leader_fd` and its whole group.  Returns 0 or
  /// -errno.
  virtual int enable(int leader_fd) = 0;
  virtual int disable(int leader_fd) = 0;

  /// Reads `leader_fd`'s group (`n_members` counters, leader included).
  /// Returns 0 or -errno.
  virtual int read_group(int leader_fd, int n_members, GroupReading& out) = 0;

  virtual void close(int fd) = 0;

  /// Value of /proc/sys/kernel/perf_event_paranoid, or -1 when
  /// unreadable (non-Linux, masked /proc).
  virtual int paranoid_level() const = 0;
};

/// The process-wide real backend (perf_event_open on Linux, an
/// unsupported stub elsewhere).
SyscallBackend& real_backend();

/// Human explanation of an -errno open failure, folding in the paranoid
/// level where it is the likely cause ("perf_event_paranoid=2 forbids
/// unprivileged access", "event not supported by this PMU — VM without a
/// vPMU?", "perf_event_open not available — ENOSYS/seccomp").
std::string errno_reason(int err, int paranoid);

}  // namespace nustencil::hwc
