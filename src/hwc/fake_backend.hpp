// Programmable in-memory SyscallBackend for tests.
//
// The fake advances each counter by a per-event increment on every
// grouped read while the group is enabled, so a span that samples at
// both ends sees a deterministic delta and the sum-to-totals invariant
// can be asserted exactly.  Failure injection (per-event or global
// -errno on open), multiplexing (independent time_enabled /
// time_running advances) and wrap-around (arbitrary initial values near
// UINT64_MAX) cover the degraded paths without any perf permissions.
//
// All entry points are mutex-protected: the worker team opens, reads
// and closes counters concurrently from its own threads, exactly like
// the real backend.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "hwc/backend.hpp"

namespace nustencil::hwc {

class FakeBackend final : public SyscallBackend {
 public:
  // -- test configuration (set up before the run) --

  /// open() of `event` fails with -err (0 restores availability).
  void set_unavailable(Event event, int err);

  /// Every open() fails with -err (a fully degraded host).
  void fail_all(int err);

  /// Counter advance per enabled grouped read (default: distinct
  /// per-event primes so slot mixups show up as wrong totals).
  void set_increment(Event event, std::uint64_t per_read);

  /// Initial value future opens of `event` start from (wrap tests pass
  /// values near UINT64_MAX).
  void set_initial_value(Event event, std::uint64_t value);

  /// time_enabled / time_running advance per enabled read.  Equal values
  /// (the default 1000/1000) mean no multiplexing; running < enabled
  /// yields a scaling factor > 1.
  void set_time_advance(std::uint64_t enabled_per_read,
                        std::uint64_t running_per_read);

  void set_paranoid(int level) { paranoid_ = level; }

  // -- introspection --
  int total_opens() const;  ///< successful open() calls so far
  int open_fds() const;     ///< currently open counters
  int total_reads() const;  ///< read_group() calls so far

  // -- SyscallBackend --
  const char* name() const override { return "fake"; }
  bool supported() const override { return true; }
  int open(Event event, int group_fd) override;
  int enable(int leader_fd) override;
  int disable(int leader_fd) override;
  int read_group(int leader_fd, int n_members, GroupReading& out) override;
  void close(int fd) override;
  int paranoid_level() const override { return paranoid_; }

 private:
  struct Counter {
    Event event = Event::Cycles;
    std::uint64_t value = 0;
  };
  struct Group {
    std::vector<int> member_fds;  ///< leader first, open order
    bool enabled = false;
    std::uint64_t time_enabled = 0;
    std::uint64_t time_running = 0;
  };

  mutable std::mutex mu_;
  std::map<int, Counter> counters_;
  std::map<int, Group> groups_;  ///< keyed by leader fd
  std::map<Event, int> fail_open_;
  std::map<Event, std::uint64_t> increment_;
  std::map<Event, std::uint64_t> initial_value_;
  std::uint64_t enabled_per_read_ = 1000;
  std::uint64_t running_per_read_ = 1000;
  int paranoid_ = 2;
  int next_fd_ = 100;
  int total_opens_ = 0;
  int total_reads_ = 0;

  std::uint64_t increment_of(Event e) const;
};

}  // namespace nustencil::hwc
