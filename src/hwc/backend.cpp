#include "hwc/backend.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace nustencil::hwc {

#if defined(__linux__)
namespace {

/// type/config pair of the perf_event_attr for one Event.
struct PerfId {
  std::uint32_t type;
  std::uint64_t config;
};

PerfId perf_id(Event e) {
  switch (e) {
    case Event::Cycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
    case Event::Instructions:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS};
    case Event::CacheReferences:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES};
    case Event::CacheMisses:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES};
    case Event::StalledCycles:
      return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND};
    case Event::TaskClock:
      return {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK};
    case Event::PageFaults:
      return {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS};
    case Event::kCount: break;
  }
  return {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES};
}

class RealBackend final : public SyscallBackend {
 public:
  const char* name() const override { return "perf_event_open"; }
  bool supported() const override { return true; }

  int open(Event event, int group_fd) override {
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    const PerfId id = perf_id(event);
    attr.type = id.type;
    attr.config = id.config;
    // Counting mode, user space only (paranoid=2 still allows that),
    // grouped read format with the enable/run times the multiplexing
    // scaling factor is derived from.  Only the leader starts disabled:
    // siblings inherit the leader's enable state, so one ioctl per
    // group starts and stops everything atomically.
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    attr.disabled = group_fd < 0 ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    const long fd = ::syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                              /*cpu=*/-1, group_fd, /*flags=*/0UL);
    return fd >= 0 ? static_cast<int>(fd) : -errno;
  }

  int enable(int leader_fd) override {
    return ::ioctl(leader_fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) == 0
               ? 0
               : -errno;
  }

  int disable(int leader_fd) override {
    return ::ioctl(leader_fd, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP) == 0
               ? 0
               : -errno;
  }

  int read_group(int leader_fd, int n_members, GroupReading& out) override {
    // Layout under PERF_FORMAT_GROUP|TOTAL_TIME_{ENABLED,RUNNING}:
    // { nr, time_enabled, time_running, value[nr] }.
    std::vector<std::uint64_t> buf(3 + static_cast<std::size_t>(n_members));
    const ssize_t want =
        static_cast<ssize_t>(buf.size() * sizeof(std::uint64_t));
    const ssize_t got = ::read(leader_fd, buf.data(), buf.size() * sizeof(std::uint64_t));
    if (got < 0) return -errno;
    if (got != want || buf[0] != static_cast<std::uint64_t>(n_members))
      return -EIO;
    out.time_enabled = buf[1];
    out.time_running = buf[2];
    out.values.assign(buf.begin() + 3, buf.end());
    return 0;
  }

  void close(int fd) override { ::close(fd); }

  int paranoid_level() const override {
    std::ifstream in("/proc/sys/kernel/perf_event_paranoid");
    int level = -1;
    if (in >> level) return level;
    return -1;
  }
};

}  // namespace

SyscallBackend& real_backend() {
  static RealBackend backend;
  return backend;
}

#else  // !__linux__

namespace {

/// Non-Linux stub: reports itself unsupported so Mode::On refuses up
/// front and Mode::Auto records a clean "no backend" degradation.
class StubBackend final : public SyscallBackend {
 public:
  const char* name() const override { return "none"; }
  bool supported() const override { return false; }
  int open(Event, int) override { return -ENOSYS; }
  int enable(int) override { return -ENOSYS; }
  int disable(int) override { return -ENOSYS; }
  int read_group(int, int, GroupReading&) override { return -ENOSYS; }
  void close(int) override {}
  int paranoid_level() const override { return -1; }
};

}  // namespace

SyscallBackend& real_backend() {
  static StubBackend backend;
  return backend;
}

#endif

std::string errno_reason(int err, int paranoid) {
  const int e = err < 0 ? -err : err;
  switch (e) {
    case EACCES:
    case EPERM:
      if (paranoid >= 0)
        return "permission denied (perf_event_paranoid=" +
               std::to_string(paranoid) +
               " forbids unprivileged counters; lower it or grant "
               "CAP_PERFMON)";
      return "permission denied (insufficient privileges for "
             "perf_event_open)";
    case ENOSYS:
      return "perf_event_open not available (kernel without perf support "
             "or a seccomp filter — common inside containers)";
    case ENOENT:
    case ENODEV:
    case EOPNOTSUPP:
      return "event not supported on this CPU/PMU (virtual machines "
             "usually expose no vPMU)";
    case ENOSPC:
      return "out of hardware counter slots on this PMU";
    default:
      return std::string("perf_event_open failed: ") + std::strerror(e);
  }
}

}  // namespace nustencil::hwc
