// Simulated-vs-measured cross-validation.
//
// The cache simulator and the PMU count different universes (simulated
// row-granular accesses vs real LLC transactions, prefetchers included),
// so absolute counts never match.  What *should* survive the modelling
// gap is the ordering: a span the simulator calls miss-heavy should
// measure miss-heavy too.  Spearman rank correlation captures exactly
// that, which is why it — not a ratio — is the headline of
// bench/validate_model and the dashboard's measured-vs-simulated panel.
#pragma once

#include <cstddef>
#include <vector>

#include "hwc/group.hpp"
#include "trace/trace.hpp"

namespace nustencil::hwc {

/// Spearman rank correlation (average ranks on ties).  Returns 0.0 when
/// fewer than two points or either side is constant — callers gate on
/// Validation::n before reading meaning into it.
double spearman(const std::vector<double>& x, const std::vector<double>& y);

/// Pairs every Tile span's simulated misses (deepest cache level with
/// activity anywhere in the trace) with its measured cache-misses delta
/// and computes the rank correlation.  The stored scatter is downsampled
/// to at most `max_points`; the correlation uses every span.  Call only
/// when the trace carries events and the cache-misses event measured.
HwRunStats::Validation validate_against_simulation(const trace::Trace& trace,
                                                   std::size_t max_points = 256);

}  // namespace nustencil::hwc
