#include "hwc/fake_backend.hpp"

#include <cerrno>

namespace nustencil::hwc {

void FakeBackend::set_unavailable(Event event, int err) {
  std::lock_guard<std::mutex> lock(mu_);
  if (err == 0)
    fail_open_.erase(event);
  else
    fail_open_[event] = err;
}

void FakeBackend::fail_all(int err) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < kNumEvents; ++i)
    fail_open_[static_cast<Event>(i)] = err;
}

void FakeBackend::set_increment(Event event, std::uint64_t per_read) {
  std::lock_guard<std::mutex> lock(mu_);
  increment_[event] = per_read;
}

void FakeBackend::set_initial_value(Event event, std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  initial_value_[event] = value;
}

void FakeBackend::set_time_advance(std::uint64_t enabled_per_read,
                                   std::uint64_t running_per_read) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_per_read_ = enabled_per_read;
  running_per_read_ = running_per_read;
}

int FakeBackend::total_opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_opens_;
}

int FakeBackend::open_fds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(counters_.size());
}

int FakeBackend::total_reads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_reads_;
}

std::uint64_t FakeBackend::increment_of(Event e) const {
  const auto it = increment_.find(e);
  if (it != increment_.end()) return it->second;
  // Distinct per-event primes, so a slot mixup changes some total.
  static constexpr std::uint64_t kDefaults[kNumEvents] = {101, 103, 107, 109,
                                                          113, 127, 131};
  return kDefaults[static_cast<int>(e)];
}

int FakeBackend::open(Event event, int group_fd) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto fail = fail_open_.find(event);
  if (fail != fail_open_.end()) return -fail->second;
  if (group_fd >= 0 && groups_.find(group_fd) == groups_.end()) return -EBADF;
  const int fd = next_fd_++;
  Counter c;
  c.event = event;
  const auto init = initial_value_.find(event);
  if (init != initial_value_.end()) c.value = init->second;
  counters_[fd] = c;
  if (group_fd < 0) {
    groups_[fd].member_fds.push_back(fd);
  } else {
    groups_[group_fd].member_fds.push_back(fd);
  }
  ++total_opens_;
  return fd;
}

int FakeBackend::enable(int leader_fd) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = groups_.find(leader_fd);
  if (it == groups_.end()) return -EBADF;
  it->second.enabled = true;
  return 0;
}

int FakeBackend::disable(int leader_fd) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = groups_.find(leader_fd);
  if (it == groups_.end()) return -EBADF;
  it->second.enabled = false;
  return 0;
}

int FakeBackend::read_group(int leader_fd, int n_members, GroupReading& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = groups_.find(leader_fd);
  if (it == groups_.end()) return -EBADF;
  Group& g = it->second;
  if (static_cast<int>(g.member_fds.size()) != n_members) return -EIO;
  ++total_reads_;
  if (g.enabled) {
    // Work "happens" between reads: every enabled read ticks the
    // counters and the clock, unsigned arithmetic so values wrap like
    // the kernel's do.
    g.time_enabled += enabled_per_read_;
    g.time_running += running_per_read_;
    for (const int fd : g.member_fds)
      counters_[fd].value += increment_of(counters_[fd].event);
  }
  out.time_enabled = g.time_enabled;
  out.time_running = g.time_running;
  out.values.clear();
  for (const int fd : g.member_fds) out.values.push_back(counters_[fd].value);
  return 0;
}

void FakeBackend::close(int fd) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.erase(fd);
  const auto leader = groups_.find(fd);
  if (leader != groups_.end()) {
    groups_.erase(leader);
    return;
  }
  for (auto& [lead, g] : groups_)
    for (auto it = g.member_fds.begin(); it != g.member_fds.end(); ++it)
      if (*it == fd) {
        g.member_fds.erase(it);
        return;
      }
}

}  // namespace nustencil::hwc
