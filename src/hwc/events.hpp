// The hardware counter event vocabulary and the --hw-counters mode.
//
// Every event this subsystem can measure is named here, in one fixed
// enum, so the CLI parser, the perf_event_open backend, the fake test
// backend and the run-report serializer agree on the set by
// construction.  Each event also maps onto a dedicated trace::SpanCounter
// slot, which is how measured deltas ride the same per-span attribution
// path (and the same sum-exactly-to-totals guarantee) as the simulated
// counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace nustencil::hwc {

/// The measurable events, in slot order.  The first five are the classic
/// PMU group of the stencil literature (cycles/instructions/cache
/// refs+misses/stalls); the last two are kernel software events, which
/// remain countable on VMs and containers without a virtualised PMU —
/// they are what keeps the real-backend path testable on CI runners.
enum class Event : std::uint8_t {
  Cycles = 0,       ///< PERF_COUNT_HW_CPU_CYCLES
  Instructions,     ///< PERF_COUNT_HW_INSTRUCTIONS
  CacheReferences,  ///< PERF_COUNT_HW_CACHE_REFERENCES (LLC-ish accesses)
  CacheMisses,      ///< PERF_COUNT_HW_CACHE_MISSES (LLC-ish misses)
  StalledCycles,    ///< PERF_COUNT_HW_STALLED_CYCLES_BACKEND (often absent)
  TaskClock,        ///< PERF_COUNT_SW_TASK_CLOCK (ns on-CPU, software)
  PageFaults,       ///< PERF_COUNT_SW_PAGE_FAULTS (software)
  kCount
};

inline constexpr int kNumEvents = static_cast<int>(Event::kCount);

/// Canonical CLI/report spelling, e.g. "cache-misses".
const char* event_name(Event e);

/// True for software events (countable without a PMU).
bool event_is_software(Event e);

/// True for events whose absence should not degrade the run status:
/// stalled-cycles is missing from many PMUs, so the default set requests
/// it opportunistically.
bool event_is_optional(Event e);

/// Case-insensitive parse; '-' and '_' are interchangeable.  Throws
/// Error naming the offending value and the accepted spellings.
Event parse_event(const std::string& name);

/// Parses a comma-separated event list ("cycles,cache-misses").  Throws
/// on unknown names and on duplicates; an empty string is an error (use
/// default_events() for the default set).
std::vector<Event> parse_event_list(const std::string& csv);

/// The default measurement set: cycles, instructions, cache-references,
/// cache-misses, plus stalled-cycles opportunistically.
const std::vector<Event>& default_events();

/// The trace::SpanCounter slot that carries this event's per-span delta.
trace::SpanCounter event_slot(Event e);

/// --hw-counters mode.  Off is the default and must cost nothing: no
/// syscalls, no probe, no sampler slot writes.  Auto measures what the
/// host offers and records why when it offers nothing; On is Auto plus a
/// loud warning on degradation (and a hard error when the build has no
/// backend at all).
enum class Mode : std::uint8_t { Off = 0, Auto, On };

const char* mode_name(Mode m);

/// Case-insensitive parse of "auto|on|off"; throws Error listing the
/// accepted values otherwise.
Mode parse_mode(const std::string& name);

}  // namespace nustencil::hwc
