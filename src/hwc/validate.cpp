#include "hwc/validate.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace nustencil::hwc {
namespace {

/// Ranks with average ranks for ties (1-based; the base cancels in the
/// correlation).
std::vector<double> ranks(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> r(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return pearson(ranks(x), ranks(y));
}

HwRunStats::Validation validate_against_simulation(const trace::Trace& trace,
                                                   std::size_t max_points) {
  HwRunStats::Validation v;
  // The simulated side of each pair is read at one fixed level — the
  // deepest with any activity in the whole trace — so every span is
  // ranked against the same counter.
  int deepest = -1;
  std::vector<double> sim, hw;
  for (int tid = 0; tid < trace.num_threads(); ++tid)
    for (const trace::Event& e : trace.thread(tid)->events())
      if (e.phase == trace::Phase::Tile && e.has_counters)
        deepest = std::max(deepest, e.counters.deepest_level());
  if (deepest < 0) {
    v.status = "no simulated cache activity on any span";
    return v;
  }
  for (int tid = 0; tid < trace.num_threads(); ++tid)
    for (const trace::Event& e : trace.thread(tid)->events()) {
      if (e.phase != trace::Phase::Tile || !e.has_counters) continue;
      sim.push_back(static_cast<double>(e.counters.level_misses(deepest)));
      hw.push_back(static_cast<double>(
          e.counters.at(trace::SpanCounter::HwCacheMisses)));
    }
  v.n = static_cast<int>(sim.size());
  if (v.n < 2) {
    v.status = "fewer than two attributed spans";
    return v;
  }
  v.spearman = spearman(sim, hw);
  v.status = "ok";
  const std::size_t stride =
      sim.size() <= max_points ? 1 : (sim.size() + max_points - 1) / max_points;
  for (std::size_t i = 0; i < sim.size(); i += stride)
    v.points.push_back({sim[i], hw[i]});
  return v;
}

}  // namespace nustencil::hwc
