#include "perf/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace nustencil::perf {

namespace {

/// Doubles to/from main memory per update for the ideal-caching bound
/// (SysBandIC): 1 read + 1 write, plus one read per coefficient band.
double ic_doubles(const core::StencilSpec& st) {
  return st.banded() ? static_cast<double>(st.npoints()) + 2.0 : 2.0;
}

/// Doubles per update with zero caching (SysBand0C / LL1Band0C): every
/// tap re-read, plus the bands, plus the write.
double zc_doubles(const core::StencilSpec& st) {
  return static_cast<double>(st.reads_per_update()) + 1.0;
}

/// Remote-access bandwidth penalty factor applied to the remote share.
double remote_factor(const topology::MachineSpec& m, double locality) {
  return locality + m.remote_penalty * (1.0 - locality);
}

}  // namespace

ModelOutput model_scheme(const ModelInput& in) {
  NUSTENCIL_CHECK(in.machine && in.stencil, "model_scheme: missing machine/stencil");
  const topology::MachineSpec& m = *in.machine;
  const core::StencilSpec& st = *in.stencil;
  const int n = in.threads;
  NUSTENCIL_CHECK(n >= 1 && n <= m.cores(), "model_scheme: bad thread count");

  ModelOutput out;

  // Compute bound: measured DP peak scales linearly with cores.  The
  // dependent add-chains of a stencil kernel cannot reach the independent
  // mul-add register peak; 0.55 is the vectorised-kernel efficiency the
  // paper's best points imply (nuCORALS reaches 52% of PeakDP, Sec. IV-D).
  const double peak_flops = m.peak_dp_gflops * 1e9 * n / m.cores() * 0.55;
  out.t_compute = static_cast<double>(st.flops()) / peak_flops;

  // Last-level cache bound: each core has its own path into the LLC
  // (Fig. 3: cache bandwidth scales linearly with cores).  Data owned by a
  // remote node fills the local cache across the interconnect, so the
  // remote share of the traffic pays the NUMA penalty here too — this is
  // what makes serial-first-touch schemes collapse beyond one socket even
  // when they are cache-bound.
  const double llc_bw = m.cache_bw_per_core(m.caches.size() - 1) * 1e9 * n;
  out.t_llc = in.traffic.llc_doubles_per_update * 8.0 * remote_factor(m, in.locality) /
              llc_bw;

  // Memory bound: the total system bandwidth S(n) is shared by the a(n)
  // active memory controllers; each node serves its measured share of the
  // demand, the busiest one binds.  Remote accesses additionally pay the
  // interconnect penalty on their share.
  const double mem_bytes = in.traffic.mem_doubles_per_update * 8.0;
  const int active = m.active_sockets(n);
  const double node_bw = m.sys_bw_at(n) / static_cast<double>(active) * 1e9;
  double busiest_share = 1.0 / static_cast<double>(active);
  if (!in.node_demand.empty()) {
    double total = 0.0, peak = 0.0;
    for (double d : in.node_demand) total += d;
    for (double d : in.node_demand) peak = std::max(peak, d);
    if (total > 0) busiest_share = peak / total;
  }
  out.t_mem = mem_bytes * busiest_share * remote_factor(m, in.locality) / node_bw;

  const double overhead =
      in.sync_overhead + in.sync_per_socket * static_cast<double>(active - 1);
  const double t = std::max({out.t_compute, out.t_llc, out.t_mem}) * (1.0 + overhead);
  out.gupdates_per_core = 1e-9 / (t * static_cast<double>(n));
  out.gflops_per_core = out.gupdates_per_core * static_cast<double>(st.flops());
  return out;
}

double peak_dp_line(const topology::MachineSpec& m, const core::StencilSpec& st,
                    int /*threads*/) {
  const double per_core = m.peak_dp_gflops / m.cores();
  return per_core / static_cast<double>(st.flops());
}

double ll1band0c_line(const topology::MachineSpec& m, const core::StencilSpec& st,
                      int /*threads*/) {
  const double bw = m.cache_bw_per_core(m.caches.size() - 1);  // GB/s per core
  return bw / (zc_doubles(st) * 8.0);
}

double sysbandic_line(const topology::MachineSpec& m, const core::StencilSpec& st,
                      int threads) {
  const double bw_per_core = m.sys_bw_at(threads) / threads;
  return bw_per_core / (ic_doubles(st) * 8.0);
}

double sysband0c_line(const topology::MachineSpec& m, const core::StencilSpec& st,
                      int threads) {
  const double bw_per_core = m.sys_bw_at(threads) / threads;
  return bw_per_core / (zc_doubles(st) * 8.0);
}

std::pair<double, double> scheme_sync_overhead(const std::string& scheme_name) {
  // Calibrated against the relative gaps of Figs. 20-22: CORALS pays for
  // fine-grained synchronisation without affinity (its spin flags cross
  // the interconnect on every boundary base); PLuTo for per-step wavefront
  // pipelining; the affinity-aware schemes synchronise mostly on-socket.
  if (scheme_name == "NaiveSSE") return {0.05, 0.0};
  if (scheme_name == "CATS") return {0.12, 0.15};
  if (scheme_name == "nuCATS") return {0.12, 0.0};
  if (scheme_name == "CORALS") return {0.45, 0.5};
  if (scheme_name == "nuCORALS") return {0.18, 0.0};
  if (scheme_name == "Pochoir") return {0.25, 0.1};
  if (scheme_name == "PLuTo") return {0.30, 0.15};
  // The diamond family synchronises per time level inside a group (cheap,
  // one shared LLC) and per window across groups; MWD's round-robin
  // column ownership sends the cross-group counter traffic over the
  // interconnect, nuMWD keeps it between ring neighbours.
  if (scheme_name == "MWD") return {0.22, 0.35};
  if (scheme_name == "nuMWD") return {0.15, 0.0};
  return {0.1, 0.0};
}

}  // namespace nustencil::perf
