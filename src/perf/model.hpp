// Roofline-style performance model for the figure reproduction.
//
// The paper's machines are unavailable here, so the figures are
// regenerated from first principles: every scheme really executes (and is
// verified), its *measured* NUMA behaviour (locality, per-node demand) and
// its *analytic* per-level traffic feed this model, which is calibrated
// with the measured bandwidths and peaks of Table I.  The model computes,
// per update, the time each resource would need — compute, last-level
// cache, memory controllers with remote-access penalty — and takes the
// binding one.  This reproduces the paper's shapes: the NUMA cliff beyond
// one socket for NUMA-ignorant schemes, nuCATS tracking LL1Band0C, the
// nuCATS/nuCORALS crossover with domain size, and the banded-matrix drop.
#pragma once

#include <vector>

#include "core/stencil.hpp"
#include "schemes/scheme.hpp"
#include "topology/machine.hpp"

namespace nustencil::perf {

/// Inputs per (scheme, machine, core count) evaluation point.
struct ModelInput {
  const topology::MachineSpec* machine = nullptr;
  const core::StencilSpec* stencil = nullptr;
  int threads = 1;
  schemes::TrafficEstimate traffic;  ///< analytic per-update traffic

  /// Fraction of owned traffic that was node-local (measured from the
  /// instrumented run; 1.0 for a perfectly affine scheme).
  double locality = 1.0;

  /// Fraction of all memory demand served by each NUMA node (measured).
  /// Empty = balanced across active nodes.
  std::vector<double> node_demand;

  /// Scheme-specific control/synchronisation overhead (fraction of time).
  double sync_overhead = 0.1;

  /// Additional overhead per active socket beyond the first: spin-flag /
  /// pipeline synchronisation across the interconnect costs latency that
  /// grows with the number of NUMA hops involved.
  double sync_per_socket = 0.0;
};

struct ModelOutput {
  double gupdates_per_core = 0.0;
  double gflops_per_core = 0.0;
  double t_compute = 0.0;  ///< aggregate seconds per update, compute bound
  double t_llc = 0.0;      ///< last-level cache bound
  double t_mem = 0.0;      ///< memory/NUMA bound
};

ModelOutput model_scheme(const ModelInput& in);

/// The paper's reference lines (Section IV-A), in Gupdates/s per core at
/// `threads` active cores.
double peak_dp_line(const topology::MachineSpec& m, const core::StencilSpec& st, int threads);
double ll1band0c_line(const topology::MachineSpec& m, const core::StencilSpec& st, int threads);
double sysbandic_line(const topology::MachineSpec& m, const core::StencilSpec& st, int threads);
double sysband0c_line(const topology::MachineSpec& m, const core::StencilSpec& st, int threads);

/// Per-scheme sync/control overhead constants used by the figure harness:
/// {base fraction, extra fraction per active socket beyond the first}.
std::pair<double, double> scheme_sync_overhead(const std::string& scheme_name);

}  // namespace nustencil::perf
