// Host microbenchmarks: the measured quantities of Table I, reproduced on
// whatever machine this runs on.  PeakDP issues independent SSE2 multiply-
// add chains on registers (the paper's method); the bandwidth benchmarks
// run STREAM-COPY-style sweeps over working sets sized for each level.
#pragma once

#include <cstddef>

namespace nustencil::perf {

/// Measured double-precision peak of one core, in GFLOPS.
double measure_peak_dp_gflops(double seconds_budget = 0.1);

/// STREAM COPY bandwidth over a working set of `bytes`, in GB/s
/// (read + write counted, as STREAM does).
double measure_copy_bandwidth_gbs(std::size_t bytes, double seconds_budget = 0.1);

/// Convenience: copy bandwidth with a memory-sized working set.
double measure_memory_bandwidth_gbs(double seconds_budget = 0.2);

/// Convenience: copy bandwidth with an L1-sized working set.
double measure_l1_bandwidth_gbs(double seconds_budget = 0.1);

}  // namespace nustencil::perf
