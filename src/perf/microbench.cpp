#include "perf/microbench.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include <vector>

#include "common/aligned.hpp"
#include "common/timer.hpp"

namespace nustencil::perf {

namespace {

/// One round of independent multiply-adds on 8 SSE2 register accumulators;
/// returns the flop count.  The accumulators are returned through a sink
/// so the optimiser cannot remove the work.
double fma_round(std::size_t iters, double* sink) {
#if defined(__SSE2__)
  __m128d a0 = _mm_set1_pd(1.000001), a1 = _mm_set1_pd(1.000002);
  __m128d a2 = _mm_set1_pd(1.000003), a3 = _mm_set1_pd(1.000004);
  __m128d a4 = _mm_set1_pd(0.999999), a5 = _mm_set1_pd(0.999998);
  __m128d a6 = _mm_set1_pd(0.999997), a7 = _mm_set1_pd(0.999996);
  const __m128d m = _mm_set1_pd(0.9999999);
  const __m128d c = _mm_set1_pd(1e-9);
  for (std::size_t i = 0; i < iters; ++i) {
    a0 = _mm_add_pd(_mm_mul_pd(a0, m), c);
    a1 = _mm_add_pd(_mm_mul_pd(a1, m), c);
    a2 = _mm_add_pd(_mm_mul_pd(a2, m), c);
    a3 = _mm_add_pd(_mm_mul_pd(a3, m), c);
    a4 = _mm_add_pd(_mm_mul_pd(a4, m), c);
    a5 = _mm_add_pd(_mm_mul_pd(a5, m), c);
    a6 = _mm_add_pd(_mm_mul_pd(a6, m), c);
    a7 = _mm_add_pd(_mm_mul_pd(a7, m), c);
  }
  alignas(16) double out[2];
  __m128d total = _mm_add_pd(_mm_add_pd(a0, a1), _mm_add_pd(a2, a3));
  total = _mm_add_pd(total, _mm_add_pd(_mm_add_pd(a4, a5), _mm_add_pd(a6, a7)));
  _mm_store_pd(out, total);
  *sink += out[0] + out[1];
  // 8 accumulators x 2 lanes x 2 flops per iteration.
  return static_cast<double>(iters) * 32.0;
#else
  double a0 = 1.0, a1 = 1.1, a2 = 1.2, a3 = 1.3;
  for (std::size_t i = 0; i < iters; ++i) {
    a0 = a0 * 0.9999999 + 1e-9;
    a1 = a1 * 0.9999999 + 1e-9;
    a2 = a2 * 0.9999999 + 1e-9;
    a3 = a3 * 0.9999999 + 1e-9;
  }
  *sink += a0 + a1 + a2 + a3;
  return static_cast<double>(iters) * 8.0;
#endif
}

}  // namespace

double measure_peak_dp_gflops(double seconds_budget) {
  double sink = 0.0;
  std::size_t iters = 1 << 16;
  double flops = 0.0, seconds = 0.0;
  Timer timer;
  while (seconds < seconds_budget) {
    flops += fma_round(iters, &sink);
    seconds = timer.seconds();
    iters *= 2;
  }
  volatile double keep = sink;
  (void)keep;
  return flops / seconds * 1e-9;
}

double measure_copy_bandwidth_gbs(std::size_t bytes, double seconds_budget) {
  const std::size_t doubles = bytes / sizeof(double) / 2;
  AlignedBuffer src_buf(doubles * sizeof(double)), dst_buf(doubles * sizeof(double));
  double* src = reinterpret_cast<double*>(src_buf.data());
  double* dst = reinterpret_cast<double*>(dst_buf.data());
  for (std::size_t i = 0; i < doubles; ++i) src[i] = static_cast<double>(i);

  double moved = 0.0, seconds = 0.0;
  Timer timer;
  while (seconds < seconds_budget) {
    for (std::size_t i = 0; i < doubles; ++i) dst[i] = src[i];
    volatile double keep = dst[doubles / 2];
    (void)keep;
    moved += static_cast<double>(doubles) * 2.0 * sizeof(double);
    seconds = timer.seconds();
  }
  return moved / seconds * 1e-9;
}

double measure_memory_bandwidth_gbs(double seconds_budget) {
  return measure_copy_bandwidth_gbs(128u << 20, seconds_budget);
}

double measure_l1_bandwidth_gbs(double seconds_budget) {
  return measure_copy_bandwidth_gbs(16u << 10, seconds_budget);
}

}  // namespace nustencil::perf
