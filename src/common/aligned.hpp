// Cache-line and page aligned array allocation.
//
// Stencil grids must be page-aligned so that first-touch page ownership
// (numa::PageTable) is well defined, and SSE2 kernels want 16-byte aligned
// rows.  AlignedBuffer owns raw bytes; Grid (core/grid.hpp) layers typed,
// padded views on top.
#pragma once

#include <cstddef>
#include <memory>

namespace nustencil {

inline constexpr std::size_t kCacheLineBytes = 64;
inline constexpr std::size_t kPageBytes = 4096;

/// Page-aligned, zero-initialised byte buffer with RAII ownership.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t bytes, std::size_t alignment = kPageBytes);

  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  std::byte* data() { return data_.get(); }
  const std::byte* data() const { return data_.get(); }
  std::size_t size() const { return bytes_; }

 private:
  struct FreeDeleter {
    void operator()(std::byte* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<std::byte, FreeDeleter> data_;
  std::size_t bytes_ = 0;
};

}  // namespace nustencil
