// Plain-text table printer used by the figure benches to emit the same
// rows/series the paper reports, plus CSV export for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nustencil {

/// A column-oriented table: one label column plus numeric data columns.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. The first entry labels the row-key column.
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends one row: a key plus values, one per data column; NaN prints "-".
  void add_row(std::string key, std::vector<double> values);

  const std::string& title() const { return title_; }

  /// Pretty-print with aligned columns.
  void print(std::ostream& os) const;

  /// Comma-separated export (same layout as print).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  struct Row {
    std::string key;
    std::vector<double> values;
  };
  std::vector<Row> rows_;
};

}  // namespace nustencil
