// Small statistics helpers used by microbenchmarks and the figure harness.
#pragma once

#include <cstddef>
#include <vector>

namespace nustencil {

/// Online accumulator for mean / min / max / standard deviation.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a copy of `v` (empty vector -> 0).
double median(std::vector<double> v);

}  // namespace nustencil
