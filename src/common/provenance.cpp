#include "common/provenance.hpp"

// The build system stamps these onto this translation unit only; the
// fallbacks keep non-CMake builds (and IDE indexers) compiling.
#ifndef NUSTENCIL_GIT_SHA
#define NUSTENCIL_GIT_SHA "unknown"
#endif
#ifndef NUSTENCIL_BUILD_FLAGS
#define NUSTENCIL_BUILD_FLAGS ""
#endif
#ifndef NUSTENCIL_BUILD_TYPE
#define NUSTENCIL_BUILD_TYPE "unknown"
#endif

namespace nustencil {

namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info{NUSTENCIL_GIT_SHA, compiler_id(),
                              NUSTENCIL_BUILD_FLAGS, NUSTENCIL_BUILD_TYPE};
  return info;
}

}  // namespace nustencil
