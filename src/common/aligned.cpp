#include "common/aligned.hpp"

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/types.hpp"

namespace nustencil {

AlignedBuffer::AlignedBuffer(std::size_t bytes, std::size_t alignment) {
  NUSTENCIL_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0,
                  "alignment must be a power of two");
  const std::size_t padded = round_up(static_cast<Index>(bytes == 0 ? 1 : bytes),
                                      static_cast<Index>(alignment));
  void* p = std::aligned_alloc(alignment, padded);
  NUSTENCIL_CHECK(p != nullptr, "aligned_alloc failed");
  std::memset(p, 0, padded);
  data_.reset(static_cast<std::byte*>(p));
  bytes_ = bytes;
}

}  // namespace nustencil
