// Fundamental index and shape types shared by every module.
//
// Grids are N-dimensional with a runtime rank of at most kMaxRank spatial
// dimensions.  Dimension 0 is always the unit-stride dimension (x); higher
// indices have higher strides.  Space-time adds one extra "time" axis that
// is handled separately by the tiling code (core/spacetime.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <ostream>

#include "common/error.hpp"

namespace nustencil {

using Index = std::int64_t;

inline constexpr int kMaxRank = 4;

/// A runtime-rank vector of indices; used for shapes, coordinates, strides.
class Coord {
 public:
  Coord() = default;

  Coord(std::initializer_list<Index> values) : rank_(static_cast<int>(values.size())) {
    NUSTENCIL_CHECK(values.size() <= static_cast<std::size_t>(kMaxRank),
                    "Coord: too many dimensions");
    int i = 0;
    for (Index v : values) v_[i++] = v;
  }

  static Coord filled(int rank, Index value) {
    Coord c;
    c.rank_ = rank;
    for (int i = 0; i < rank; ++i) c.v_[i] = value;
    return c;
  }

  int rank() const { return rank_; }

  Index& operator[](int i) {
    NUSTENCIL_DCHECK(i >= 0 && i < rank_, "Coord index out of range");
    return v_[static_cast<std::size_t>(i)];
  }
  Index operator[](int i) const {
    NUSTENCIL_DCHECK(i >= 0 && i < rank_, "Coord index out of range");
    return v_[static_cast<std::size_t>(i)];
  }

  bool operator==(const Coord& o) const {
    if (rank_ != o.rank_) return false;
    for (int i = 0; i < rank_; ++i)
      if (v_[static_cast<std::size_t>(i)] != o.v_[static_cast<std::size_t>(i)]) return false;
    return true;
  }
  bool operator!=(const Coord& o) const { return !(*this == o); }

  /// Product of all entries (volume of a shape).
  Index product() const {
    Index p = 1;
    for (int i = 0; i < rank_; ++i) p *= v_[static_cast<std::size_t>(i)];
    return p;
  }

  Index min() const {
    NUSTENCIL_CHECK(rank_ > 0, "Coord::min on empty coord");
    Index m = v_[0];
    for (int i = 1; i < rank_; ++i) m = v_[static_cast<std::size_t>(i)] < m ? v_[static_cast<std::size_t>(i)] : m;
    return m;
  }

 private:
  int rank_ = 0;
  std::array<Index, kMaxRank> v_{};
};

inline std::ostream& operator<<(std::ostream& os, const Coord& c) {
  os << '[';
  for (int i = 0; i < c.rank(); ++i) {
    if (i) os << ',';
    os << c[i];
  }
  return os << ']';
}

/// Row-major-from-the-top strides: dim 0 is unit stride.
inline Coord strides_for(const Coord& shape) {
  Coord s = Coord::filled(shape.rank(), 1);
  for (int i = 1; i < shape.rank(); ++i) s[i] = s[i - 1] * shape[i - 1];
  return s;
}

inline Index linear_index(const Coord& pos, const Coord& strides) {
  Index idx = 0;
  for (int i = 0; i < pos.rank(); ++i) idx += pos[i] * strides[i];
  return idx;
}

/// Integer ceiling division for non-negative values.
constexpr Index ceil_div(Index a, Index b) { return (a + b - 1) / b; }

/// Round `a` up to a multiple of `b`.
constexpr Index round_up(Index a, Index b) { return ceil_div(a, b) * b; }

/// Positive modulo (result in [0, m) even for negative a).
constexpr Index pmod(Index a, Index m) {
  Index r = a % m;
  return r < 0 ? r + m : r;
}

}  // namespace nustencil
