// Minimal command-line argument parser for the tools and benches.
//
// Supports `--name value`, `--name=value` and boolean `--flag` options,
// collects positional arguments, and generates a --help text.  Unknown
// options are errors (typos should not be silently ignored).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace nustencil {

class ArgParser {
 public:
  explicit ArgParser(std::string program, std::string description);

  /// Registers a value option; `fallback` is returned when absent.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& fallback);

  /// Registers a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false when --help was requested (help text is
  /// written to stdout); throws Error on unknown options or missing
  /// values.
  bool parse(int argc, char** argv);

  std::string get(const std::string& name) const;
  long get_long(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Validates a worker-thread count against the target machine: throws
  /// Error (with the offending value in the message) unless
  /// 1 <= threads <= machine_cores.  Returns the count as an int so CLI
  /// code can validate and narrow in one step.
  static int validate_thread_count(long threads, int machine_cores);

  /// Validates a count-valued option (e.g. --trace-buffer): throws Error
  /// (with the flag and the offending value in the message) unless
  /// value >= 1.
  static long validate_positive(const char* flag, long value);

  /// Validates a positive-seconds option (e.g. --progress): throws Error
  /// (with the flag and the offending value) unless seconds > 0 and
  /// finite.
  static double validate_positive_seconds(const char* flag, double seconds);

  /// Validates a positive-milliseconds option (e.g.
  /// --telemetry-interval-ms): throws Error (with the flag and the
  /// offending value) unless ms > 0 and finite.
  static double validate_positive_ms(const char* flag, double ms);

  /// Validates a non-negative count option (e.g.
  /// --watchdog-stall-intervals, where 0 means off): throws Error (with
  /// the flag and the offending value) unless value >= 0.
  static long validate_non_negative(const char* flag, long value);

  /// Validates a --group-size value against the worker-thread count:
  /// throws Error (with the offending values in the message) unless
  /// 1 <= group <= num_threads and group divides num_threads.  Returns
  /// the size as an int so CLI code can validate and narrow in one step.
  static int validate_group_size(long group, int num_threads);

  /// The full --help text.
  std::string help() const;

 private:
  struct Option {
    std::string help;
    std::string fallback;
    bool is_flag = false;
    std::optional<std::string> value;
  };

  const Option& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<std::string> order_;  // help output order
  std::map<std::string, Option> options_;
  std::vector<std::string> positionals_;
};

}  // namespace nustencil
