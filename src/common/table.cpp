#include "common/table.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace nustencil {

namespace {

std::string format_value(double v) {
  if (std::isnan(v)) return "-";
  std::ostringstream os;
  double mag = std::fabs(v);
  if (mag != 0.0 && (mag >= 1e6 || mag < 1e-3)) {
    os << std::scientific << std::setprecision(3) << v;
  } else {
    os << std::fixed << std::setprecision(4) << v;
  }
  return os.str();
}

}  // namespace

void Table::add_row(std::string key, std::vector<double> values) {
  rows_.push_back(Row{std::move(key), std::move(values)});
}

void Table::print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  // Compute column widths.
  std::size_t ncols = header_.size();
  for (const Row& r : rows_) ncols = std::max(ncols, r.values.size() + 1);
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = std::max(width[c], header_[c].size());
  for (const Row& r : rows_) {
    width[0] = std::max(width[0], r.key.size());
    for (std::size_t c = 0; c < r.values.size(); ++c)
      width[c + 1] = std::max(width[c + 1], format_value(r.values[c]).size());
  }
  auto emit = [&](std::size_t c, const std::string& s) {
    os << std::setw(static_cast<int>(width[c]) + 2) << s;
  };
  if (!header_.empty()) {
    for (std::size_t c = 0; c < header_.size(); ++c) emit(c, header_[c]);
    os << '\n';
  }
  for (const Row& r : rows_) {
    emit(0, r.key);
    for (std::size_t c = 0; c < r.values.size(); ++c) emit(c + 1, format_value(r.values[c]));
    os << '\n';
  }
}

void Table::print_csv(std::ostream& os) const {
  os << "# " << title_ << '\n';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << ',';
    os << header_[c];
  }
  if (!header_.empty()) os << '\n';
  for (const Row& r : rows_) {
    os << r.key;
    for (double v : r.values) os << ',' << format_value(v);
    os << '\n';
  }
}

}  // namespace nustencil
