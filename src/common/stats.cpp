#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace nustencil {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1, v.end());
  return 0.5 * (hi + v[mid - 1]);
}

}  // namespace nustencil
