#include "common/args.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace nustencil {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& fallback) {
  NUSTENCIL_CHECK(!options_.count(name), "ArgParser: duplicate option " + name);
  options_[name] = Option{help, fallback, false, std::nullopt};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  NUSTENCIL_CHECK(!options_.count(name), "ArgParser: duplicate flag " + name);
  options_[name] = Option{help, "false", true, std::nullopt};
  order_.push_back(name);
}

int ArgParser::validate_thread_count(long threads, int machine_cores) {
  NUSTENCIL_CHECK(threads >= 1, "--threads must be at least 1, got " +
                                    std::to_string(threads));
  NUSTENCIL_CHECK(threads <= machine_cores,
                  "--threads " + std::to_string(threads) + " exceeds the " +
                      std::to_string(machine_cores) +
                      " cores of the selected --machine");
  return static_cast<int>(threads);
}

long ArgParser::validate_positive(const char* flag, long value) {
  NUSTENCIL_CHECK(value >= 1, std::string(flag) + " must be at least 1, got " +
                                  std::to_string(value));
  return value;
}

int ArgParser::validate_group_size(long group, int num_threads) {
  NUSTENCIL_CHECK(group >= 1, "--group-size must be at least 1, got " +
                                  std::to_string(group));
  NUSTENCIL_CHECK(group <= num_threads && num_threads % group == 0,
                  "--group-size " + std::to_string(group) +
                      " must divide the thread count " +
                      std::to_string(num_threads));
  return static_cast<int>(group);
}

double ArgParser::validate_positive_seconds(const char* flag, double seconds) {
  NUSTENCIL_CHECK(std::isfinite(seconds) && seconds > 0.0,
                  std::string(flag) + " must be a positive number of seconds, got " +
                      std::to_string(seconds));
  return seconds;
}

double ArgParser::validate_positive_ms(const char* flag, double ms) {
  NUSTENCIL_CHECK(std::isfinite(ms) && ms > 0.0,
                  std::string(flag) +
                      " must be a positive number of milliseconds, got " +
                      std::to_string(ms));
  return ms;
}

long ArgParser::validate_non_negative(const char* flag, long value) {
  NUSTENCIL_CHECK(value >= 0, std::string(flag) + " must be >= 0, got " +
                                  std::to_string(value));
  return value;
}

bool ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = options_.find(name);
    NUSTENCIL_CHECK(it != options_.end(), "unknown option --" + name + " (see --help)");
    Option& opt = it->second;
    if (opt.is_flag) {
      NUSTENCIL_CHECK(!inline_value, "flag --" + name + " takes no value");
      opt.value = "true";
    } else if (inline_value) {
      opt.value = *inline_value;
    } else {
      NUSTENCIL_CHECK(i + 1 < argc, "option --" + name + " requires a value");
      opt.value = argv[++i];
    }
  }
  return true;
}

const ArgParser::Option& ArgParser::find(const std::string& name) const {
  const auto it = options_.find(name);
  NUSTENCIL_CHECK(it != options_.end(), "ArgParser: unregistered option " + name);
  return it->second;
}

std::string ArgParser::get(const std::string& name) const {
  const Option& opt = find(name);
  return opt.value.value_or(opt.fallback);
}

long ArgParser::get_long(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const long out = std::strtol(v.c_str(), &end, 10);
  NUSTENCIL_CHECK(end && *end == '\0' && !v.empty(),
                  "option --" + name + " expects an integer, got '" + v + "'");
  return out;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  NUSTENCIL_CHECK(end && *end == '\0' && !v.empty(),
                  "option --" + name + " expects a number, got '" + v + "'");
  return out;
}

bool ArgParser::get_flag(const std::string& name) const {
  const Option& opt = find(name);
  NUSTENCIL_CHECK(opt.is_flag, "ArgParser: --" + name + " is not a flag");
  return opt.value.has_value();
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) os << " <value>";
    os << "\n        " << opt.help;
    if (!opt.is_flag && !opt.fallback.empty()) os << " [default: " << opt.fallback << "]";
    os << '\n';
  }
  os << "  --help\n        show this text\n";
  return os.str();
}

}  // namespace nustencil
