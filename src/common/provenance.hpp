// Build provenance: which source revision, compiler and flags produced
// this binary.  Stamped into every run report (and the dashboard footer)
// so a saved JSON document stays interpretable after the working tree
// has moved on.
#pragma once

#include <string>

namespace nustencil {

struct BuildInfo {
  std::string git_sha;         ///< short commit hash, "unknown" outside git
  std::string compiler;        ///< compiler id + version, e.g. "gcc 13.2.0"
  std::string compiler_flags;  ///< the flags the build was configured with
  std::string build_type;      ///< CMake build type, e.g. "RelWithDebInfo"
};

/// The provenance of this binary (values baked in at compile time).
const BuildInfo& build_info();

}  // namespace nustencil
