#include "common/error.hpp"

#include <sstream>

namespace nustencil {

void throw_error(const char* cond, const char* file, int line,
                 const std::string& message) {
  std::ostringstream os;
  os << message << " (failed: " << cond << " at " << file << ':' << line << ')';
  throw Error(os.str());
}

}  // namespace nustencil
