// Error handling: a library exception type plus lightweight check macros.
//
// NUSTENCIL_CHECK is always on (argument validation at API boundaries);
// NUSTENCIL_DCHECK compiles out in release builds (hot-path invariants).
#pragma once

#include <stdexcept>
#include <string>

namespace nustencil {

/// Exception thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void throw_error(const char* cond, const char* file, int line,
                              const std::string& message);

}  // namespace nustencil

#define NUSTENCIL_CHECK(cond, msg)                                       \
  do {                                                                   \
    if (!(cond)) ::nustencil::throw_error(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define NUSTENCIL_DCHECK(cond, msg) \
  do {                              \
  } while (0)
#else
#define NUSTENCIL_DCHECK(cond, msg) NUSTENCIL_CHECK(cond, msg)
#endif
