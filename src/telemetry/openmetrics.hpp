// OpenMetrics / Prometheus text exposition for live telemetry.
//
// The sampler renders its current snapshot as one self-contained text
// document (# TYPE/# HELP metadata, `name{labels} value` samples, a
// terminating "# EOF") and atomically replaces the target file by
// writing `path + ".tmp"` and renaming it over the destination, so a
// Prometheus node_exporter textfile collector — or anyone running
// `watch cat` — never observes a torn document.
#pragma once

#include <string>
#include <vector>

namespace nustencil::telemetry {

/// One sample line.  `labels` is the rendered label body without braces
/// (e.g. `thread="3"`); empty means an unlabelled sample.
struct MetricPoint {
  std::string labels;
  double value = 0.0;
};

/// One metric family: a # TYPE/# HELP header plus its samples.
struct MetricFamily {
  std::string name;  ///< e.g. "nustencil_updates_total"
  std::string type;  ///< "counter" or "gauge"
  std::string help;
  std::vector<MetricPoint> points;
};

/// The full exposition text, "# EOF"-terminated.
std::string render_openmetrics(const std::vector<MetricFamily>& families);

/// Atomic rewrite: write `path + ".tmp"`, rename over `path`.  Returns
/// false on I/O failure (the sampler thread must not throw mid-run).
bool write_openmetrics_file(const std::vector<MetricFamily>& families,
                            const std::string& path);

/// True when `name` is a legal Prometheus metric name
/// ([a-zA-Z_:][a-zA-Z0-9_:]*) — the format check tests and CI use this.
bool valid_metric_name(const std::string& name);

}  // namespace nustencil::telemetry
