#include "telemetry/openmetrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace nustencil::telemetry {

namespace {

/// Prometheus sample values are plain decimals; emit integers without a
/// fractional part so counters read naturally.
void append_value(std::ostringstream& os, double v) {
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) < 9.007199254740992e15) {  // 2^53: exactly representable
    os << static_cast<long long>(v);
  } else {
    os.precision(std::numeric_limits<double>::max_digits10);
    os << v;
  }
}

}  // namespace

std::string render_openmetrics(const std::vector<MetricFamily>& families) {
  std::ostringstream os;
  for (const MetricFamily& f : families) {
    if (!f.help.empty()) os << "# HELP " << f.name << ' ' << f.help << '\n';
    os << "# TYPE " << f.name << ' ' << f.type << '\n';
    for (const MetricPoint& p : f.points) {
      os << f.name;
      if (!p.labels.empty()) os << '{' << p.labels << '}';
      os << ' ';
      append_value(os, p.value);
      os << '\n';
    }
  }
  os << "# EOF\n";
  return os.str();
}

bool write_openmetrics_file(const std::vector<MetricFamily>& families,
                            const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) return false;
    out << render_openmetrics(families);
    if (!out.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (std::size_t i = 1; i < name.size(); ++i)
    if (!head(name[i]) && !(name[i] >= '0' && name[i] <= '9')) return false;
  return true;
}

}  // namespace nustencil::telemetry
