#include "telemetry/events.hpp"

#include <sstream>

#include "common/error.hpp"

namespace nustencil::telemetry {

EventLog::EventLog(const std::string& path) : path_(path), out_(path) {
  NUSTENCIL_CHECK(out_.good(), "telemetry: cannot open event log " + path);
}

void EventLog::event(const std::string& type, double t_ms,
                     const std::function<void(metrics::JsonWriter&)>& body) {
  std::ostringstream line;
  metrics::JsonWriter w(line);
  w.begin_object();
  w.kv("type", type);
  w.kv("t_ms", t_ms);
  if (body) body(w);
  w.end_object();

  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line.str() << '\n';
  out_.flush();
}

}  // namespace nustencil::telemetry
