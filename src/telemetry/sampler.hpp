// Live telemetry: a background sampler thread that snapshots the run's
// single-writer shards into fixed-capacity time-series rings while the
// workers execute.
//
// Every source is one the post-mortem profiler already reads —
// ProgressMeter slots (relaxed atomics), TrafficRecorder::thread_bytes,
// SharedHierarchy::core_traffic, ThreadRecorder phase totals, resolved
// Registry counters, hwc::ThreadSet::sample — so the hot path gains no
// new writes: telemetry is a pure read-side observer.  Samples are
// per-thread-coherent but not globally atomic (see DESIGN.md), which is
// fine for monitoring.
//
// On top of the rings ride: an OpenMetrics textfile rewritten atomically
// each tick, an append-only JSONL event log (samples plus run start/end,
// layer transitions, steal bursts, hw degradation, stalls), the stall
// watchdog, and the schema-v6 "timeseries" report section.  The sampler
// also drives the --progress heartbeat, so there is exactly one periodic
// snapshot path in the system.
//
// The disabled path costs literally zero: RunConfig::telemetry is null,
// no Sampler is constructed, and every hook is an existing null check.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "metrics/run_report.hpp"
#include "prof/progress.hpp"
#include "telemetry/events.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/watchdog.hpp"
#include "trace/trace.hpp"

namespace nustencil::numa {
class TrafficRecorder;
}
namespace nustencil::cachesim {
class SharedHierarchy;
}
namespace nustencil::metrics {
class Registry;
class Counter;
}
namespace nustencil::threading {
class AbortToken;
}

namespace nustencil::telemetry {

/// Case-insensitive "on" / "off"; throws a one-line Error otherwise.
bool parse_telemetry_enabled(const std::string& text);

struct Config {
  bool sampling = true;    ///< false = heartbeat-only mode (no rings/export)
  double interval_s = 0.1; ///< sampling cadence
  std::size_t ring_capacity = 4096;  ///< rows retained per run
  std::string label;                 ///< run label for log events
  std::string openmetrics_path;      ///< empty = no OpenMetrics export
  std::string log_path;              ///< empty = no JSONL event log
  int watchdog_stall_intervals = 0;  ///< 0 = watchdog off
  WatchdogAction watchdog_action = WatchdogAction::Warn;
  /// Tests: no background thread; the caller drives sample_once() with a
  /// fake clock for deterministic rings.
  bool manual = false;
};

/// The run's snapshot sources, bound by RunSupport when the run starts.
/// All pointers are single-writer shards the sampler only reads.
struct RunSources {
  int num_threads = 0;
  long timesteps = 0;
  const prof::ProgressMeter* progress = nullptr;    ///< updates/bytes slots
  const numa::TrafficRecorder* traffic = nullptr;   ///< unowned bytes
  const cachesim::SharedHierarchy* cache = nullptr; ///< per-core hit/miss
  metrics::Registry* registry = nullptr;            ///< steal counters
  const trace::Trace* trace = nullptr;              ///< wait totals, spans
  threading::AbortToken* abort = nullptr;           ///< watchdog abort target
  std::function<void(int, trace::CounterSet&)> hw;  ///< measured counters
  std::string hw_status;  ///< "", "ok" or "degraded" (for the event log)
  std::string hw_reason;
};

class Sampler {
 public:
  /// `diag` receives watchdog stall dumps (std::cerr in production).
  explicit Sampler(const Config& cfg, std::ostream& diag = default_diag());
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  const Config& config() const { return cfg_; }

  /// Unifies the --progress heartbeat onto this sampler: every
  /// `interval_s` the meter's line is rendered to its own stream, and
  /// end_run emits the " (final)" line — byte-for-byte the output the
  /// meter's own thread used to produce.
  void attach_heartbeat(prof::ProgressMeter* meter, double interval_s);

  /// Binds the run's sources, resets the rings and watchdog, logs the
  /// run_start event and starts the background thread (unless manual).
  /// Called by RunSupport when RunConfig::telemetry is set.
  void begin_run(const RunSources& sources);

  /// Takes one sample at `t_ns` (nanoseconds since begin_run).  Public
  /// so tests can drive a fake clock; the background thread calls it on
  /// the real one.  Never call concurrently with the thread running.
  void sample_once(std::int64_t t_ns);

  /// Stops the thread, takes a closing sample, emits the heartbeat's
  /// final line and the run_end event.  The rings stay readable until
  /// the next begin_run.
  void end_run(double seconds, std::uint64_t updates);

  /// Joins the thread and forgets the sources (idempotent; also called
  /// by end_run and the destructor).  RunSupport calls this from its
  /// destructor so the sampler never dereferences dead instrumentation.
  void detach_run();

  std::uint64_t samples_taken() const;
  int stall_events() const;
  bool watchdog_aborted() const { return watchdog_aborted_; }
  const TimeSeriesStore* store() const { return store_ ? &*store_ : nullptr; }

  /// The schema-v6 report section: rings decimated to `max_points`.
  metrics::TimeseriesSection report_section(std::size_t max_points = 160) const;

  /// Background sampler threads ever spawned, process-wide.  The
  /// zero-cost-off test asserts this stays put across untelemetered runs.
  static std::uint64_t threads_started();

 private:
  static std::ostream& default_diag();

  void loop();
  void start_thread();
  void stop_thread();
  std::int64_t now_ns() const;
  void collect(std::vector<ThreadCumulative>& out);
  void export_openmetrics(std::int64_t t_ns,
                          const std::vector<ThreadCumulative>& cum,
                          const std::vector<double>& row);
  void handle_stalls(std::int64_t t_ns,
                     const std::vector<StallDiagnosis>& stalls);

  Config cfg_;
  std::ostream* diag_;

  // Heartbeat attachment (satellite: one periodic-snapshot path).
  prof::ProgressMeter* heartbeat_ = nullptr;
  double heartbeat_interval_s_ = 0.0;

  // Run binding.
  RunSources src_;
  bool bound_ = false;
  std::chrono::steady_clock::time_point t0_{};
  std::optional<TimeSeriesStore> store_;
  std::optional<Watchdog> watchdog_;
  std::unique_ptr<EventLog> log_;
  const metrics::Counter* steals_ = nullptr;
  const metrics::Counter* steal_attempts_ = nullptr;

  // Sampler-thread-only tick state.
  std::uint64_t seq_ = 0;
  long last_layer_ = -1;
  std::uint64_t last_steals_ = 0;
  std::int64_t last_t_ns_ = 0;
  std::vector<ThreadCumulative> prev_;
  std::vector<std::array<std::uint64_t, trace::kNumPhases>> prev_spans_;
  bool openmetrics_failed_ = false;
  bool watchdog_aborted_ = false;
  bool suppress_watchdog_ = false;  ///< the closing sample skips the watchdog

  // Thread lifecycle.
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stopping_ = false;
};

/// Human-readable telemetry configuration for `nustencil --explain`.
std::string describe_telemetry(bool enabled, double interval_s,
                               const std::string& openmetrics_path,
                               const std::string& log_path,
                               int watchdog_stall_intervals,
                               WatchdogAction action);

}  // namespace nustencil::telemetry
