// Stall watchdog: flags workers whose progress slot stops advancing.
//
// The sampler feeds one cumulative per-thread snapshot per tick.  A
// thread whose update count is unchanged for `stall_intervals`
// consecutive ticks is declared stalled; the watchdog then synthesises
// one prof::SpanRecord covering the stalled window from the counter
// deltas since the thread last advanced and reuses prof::attribute() —
// the same compute/remote/miss/spin thresholds the straggler table is
// judged by — so the live diagnosis and the post-mortem one agree by
// construction.  Each stall episode fires exactly once; a thread that
// resumes re-arms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prof/attribution.hpp"

namespace nustencil::telemetry {

enum class WatchdogAction : std::uint8_t {
  Warn,   ///< diagnose to stderr + event log, keep running
  Abort,  ///< also trigger the run's abort token (nonzero exit for CI)
};

/// Case-insensitive "warn" / "abort"; throws a one-line Error otherwise.
WatchdogAction parse_watchdog_action(const std::string& text);
const char* watchdog_action_name(WatchdogAction a);

/// One thread's cumulative state at a sampler tick (all monotone).
struct ThreadCumulative {
  std::uint64_t updates = 0;
  std::uint64_t local_bytes = 0;
  std::uint64_t remote_bytes = 0;
  std::uint64_t unowned_bytes = 0;
  std::uint64_t llc_hits = 0;     ///< deepest simulated cache level
  std::uint64_t llc_misses = 0;
  std::int64_t wait_ns = 0;       ///< barrier-wait + spinflag-wait total
  std::uint64_t wait_spans = 0;   ///< wait spans completed
  std::uint64_t spins = 0;        ///< spin-loop iterations
  std::uint64_t leaf_spans = 0;   ///< leaf spans completed (any phase)
  std::string last_phase;         ///< most recently active leaf phase
};

/// The live dump of one stalled worker.
struct StallDiagnosis {
  int tid = 0;
  int stalled_intervals = 0;
  double window_s = 0.0;          ///< wall time since the thread last advanced
  std::uint64_t updates = 0;      ///< cumulative updates, frozen at the stall
  prof::Attribution why;          ///< verdict + evidence over the window
  std::uint64_t window_wait_spans = 0;
  std::uint64_t window_spins = 0;
  std::uint64_t window_remote_bytes = 0;
  std::uint64_t window_misses = 0;
  bool no_spans_completed = false;  ///< stuck inside one span (e.g. a wait)
  std::string last_phase;

  /// One-paragraph stderr dump ("action" names the configured response).
  std::string render(const std::string& action) const;
};

class Watchdog {
 public:
  /// Fires when a thread's updates are unchanged for `stall_intervals`
  /// consecutive ticks (>= 1).
  Watchdog(int stall_intervals, WatchdogAction action);

  WatchdogAction action() const { return action_; }
  int stall_intervals() const { return stall_intervals_; }
  int stall_events() const { return events_; }

  void begin_run(int num_threads, std::int64_t t0_ns);

  /// One sampler tick.  Returns the diagnoses of threads that crossed
  /// the stall threshold on this tick (at most one per episode).
  std::vector<StallDiagnosis> tick(std::int64_t t_ns,
                                   const std::vector<ThreadCumulative>& cum);

 private:
  struct PerThread {
    ThreadCumulative at_advance;   ///< snapshot when updates last moved
    std::int64_t advance_t_ns = 0;
    int stuck_ticks = 0;
    bool fired = false;
  };

  StallDiagnosis diagnose(int tid, std::int64_t t_ns,
                          const ThreadCumulative& now,
                          const PerThread& state) const;

  int stall_intervals_;
  WatchdogAction action_;
  int events_ = 0;
  std::vector<PerThread> threads_;
};

}  // namespace nustencil::telemetry
