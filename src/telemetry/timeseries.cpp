#include "telemetry/timeseries.hpp"

#include "common/error.hpp"

namespace nustencil::telemetry {

TimeSeriesStore::TimeSeriesStore(std::size_t capacity) : capacity_(capacity) {
  NUSTENCIL_CHECK(capacity >= 1, "TimeSeriesStore: capacity must be >= 1");
  times_.assign(capacity_, 0);
}

int TimeSeriesStore::add_series(const std::string& name) {
  NUSTENCIL_CHECK(count_ == 0,
                  "TimeSeriesStore: add every series before the first append");
  names_.push_back(name);
  values_.emplace_back(capacity_, 0.0);
  return static_cast<int>(names_.size()) - 1;
}

void TimeSeriesStore::append(std::int64_t t_ns, const std::vector<double>& values) {
  NUSTENCIL_CHECK(values.size() == names_.size(),
                  "TimeSeriesStore: append expects one value per series");
  const std::size_t at = count_ % capacity_;
  times_[at] = t_ns;
  for (std::size_t s = 0; s < values.size(); ++s) values_[s][at] = values[s];
  count_ += 1;
}

std::vector<std::size_t> TimeSeriesStore::downsample_indices(
    std::size_t n, std::size_t max_points) {
  std::vector<std::size_t> idx;
  if (n == 0) return idx;
  if (max_points == 0 || n <= max_points) {
    idx.reserve(n);
    for (std::size_t i = 0; i < n; ++i) idx.push_back(i);
    return idx;
  }
  const std::size_t stride = (n + max_points - 1) / max_points;
  for (std::size_t i = 0; i < n; i += stride) idx.push_back(i);
  // The last row is the freshest sample; never decimate it away.  When
  // the strided walk already filled the budget, trade the final kept
  // index for it instead of exceeding max_points.
  if (idx.back() != n - 1) {
    if (idx.size() < max_points)
      idx.push_back(n - 1);
    else
      idx.back() = n - 1;
  }
  return idx;
}

}  // namespace nustencil::telemetry
