// Append-only JSONL structured event log for live telemetry.
//
// One JSON object per line, flushed per event so `tail -f` follows a run
// in real time.  Every event carries "type" and "t_ms" (milliseconds
// since run start); the caller serialises type-specific fields through
// the JsonWriter callback.  Writes are serialised by a mutex: the
// sampler thread emits sample/stall events while the main thread emits
// run start/end, and interleaved partial lines would corrupt the log.
#pragma once

#include <fstream>
#include <functional>
#include <mutex>
#include <string>

#include "metrics/json.hpp"

namespace nustencil::telemetry {

class EventLog {
 public:
  /// Truncates/creates `path` (throws Error when it cannot be opened).
  explicit EventLog(const std::string& path);

  const std::string& path() const { return path_; }

  /// Appends {"type": type, "t_ms": t_ms, ...} + '\n' and flushes.
  /// `body`, when given, writes the remaining fields of the event object.
  void event(const std::string& type, double t_ms,
             const std::function<void(metrics::JsonWriter&)>& body = {});

 private:
  std::string path_;
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace nustencil::telemetry
