// Fixed-capacity time-series storage for the live telemetry sampler.
//
// One TimeSeriesStore holds every series of a run in parallel rings that
// share a single time axis: each sampler tick appends one timestamp plus
// one value per series, so a chronological index addresses a globally
// consistent sample row.  When the ring is full the oldest row is
// overwritten in every series at once — the time axis never diverges
// from the values.  Appends are sampler-thread-only; readers run after
// the sampler has stopped (report assembly, tests).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nustencil::telemetry {

class TimeSeriesStore {
 public:
  /// `capacity` rows are retained; older rows are overwritten (throws on
  /// capacity == 0).
  explicit TimeSeriesStore(std::size_t capacity);

  /// Registers a series before the first append; returns its index.
  int add_series(const std::string& name);

  int num_series() const { return static_cast<int>(names_.size()); }
  const std::string& series_name(int s) const {
    return names_[static_cast<std::size_t>(s)];
  }

  /// Appends one sample row; `values` must carry one value per series.
  void append(std::int64_t t_ns, const std::vector<double>& values);

  /// Rows currently retained (<= capacity).
  std::size_t size() const { return count_ < capacity_ ? count_ : capacity_; }
  std::size_t capacity() const { return capacity_; }

  /// Rows ever appended (>= size(); the difference was overwritten).
  std::uint64_t total_appended() const { return count_; }

  /// Chronological access: i == 0 is the oldest retained row.
  std::int64_t time_ns_at(std::size_t i) const { return times_[slot(i)]; }
  double value_at(int series, std::size_t i) const {
    return values_[static_cast<std::size_t>(series)][slot(i)];
  }

  /// Exact-decimation downsampling: the chronological indices to keep
  /// when at most `max_points` of `n` rows may survive.  Stride
  /// ceil(n / max_points); the first and last rows are always included
  /// and every returned index addresses an original row unchanged.
  /// `max_points` == 0 (no limit) or n <= max_points keeps everything.
  static std::vector<std::size_t> downsample_indices(std::size_t n,
                                                     std::size_t max_points);

 private:
  std::size_t slot(std::size_t i) const {
    const std::size_t start = count_ < capacity_ ? 0 : count_ % capacity_;
    return (start + i) % capacity_;
  }

  std::size_t capacity_;
  std::uint64_t count_ = 0;
  std::vector<std::string> names_;
  std::vector<std::int64_t> times_;
  std::vector<std::vector<double>> values_;  ///< [series][ring slot]
};

}  // namespace nustencil::telemetry
