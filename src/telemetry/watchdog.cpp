#include "telemetry/watchdog.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace nustencil::telemetry {

WatchdogAction parse_watchdog_action(const std::string& text) {
  std::string t = text;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (t == "warn") return WatchdogAction::Warn;
  if (t == "abort") return WatchdogAction::Abort;
  throw Error("--watchdog: expected warn or abort, got '" + text + "'");
}

const char* watchdog_action_name(WatchdogAction a) {
  return a == WatchdogAction::Abort ? "abort" : "warn";
}

Watchdog::Watchdog(int stall_intervals, WatchdogAction action)
    : stall_intervals_(stall_intervals), action_(action) {
  NUSTENCIL_CHECK(stall_intervals >= 1,
                  "Watchdog: stall_intervals must be >= 1");
}

void Watchdog::begin_run(int num_threads, std::int64_t t0_ns) {
  threads_.assign(static_cast<std::size_t>(num_threads), PerThread{});
  for (PerThread& t : threads_) t.advance_t_ns = t0_ns;
  events_ = 0;
}

StallDiagnosis Watchdog::diagnose(int tid, std::int64_t t_ns,
                                  const ThreadCumulative& now,
                                  const PerThread& state) const {
  StallDiagnosis d;
  d.tid = tid;
  d.stalled_intervals = state.stuck_ticks;
  d.window_s = static_cast<double>(t_ns - state.advance_t_ns) * 1e-9;
  d.updates = now.updates;
  d.window_wait_spans = now.wait_spans - state.at_advance.wait_spans;
  d.window_spins = now.spins - state.at_advance.spins;
  d.window_remote_bytes = now.remote_bytes - state.at_advance.remote_bytes;
  d.window_misses = now.llc_misses - state.at_advance.llc_misses;
  d.no_spans_completed = now.leaf_spans == state.at_advance.leaf_spans;
  d.last_phase = now.last_phase;

  // Synthesize one span over the stalled window and reuse the straggler
  // thresholds.  A thread that completed no span at all is stuck inside
  // a single one — with zero updates that is a wait by any other name,
  // so the whole window counts as excluded (waiting) time and the
  // spin-frac threshold classifies it.
  prof::SpanRecord span;
  span.tid = tid;
  span.phase = trace::Phase::Tile;
  span.start_ns = state.advance_t_ns;
  span.end_ns = t_ns;
  span.exclude_ns = d.no_spans_completed
                        ? t_ns - state.advance_t_ns
                        : now.wait_ns - state.at_advance.wait_ns;
  span.counters.at(trace::SpanCounter::Updates) = 0;
  span.counters.at(trace::SpanCounter::LocalBytes) =
      now.local_bytes - state.at_advance.local_bytes;
  span.counters.at(trace::SpanCounter::RemoteBytes) = d.window_remote_bytes;
  span.counters.at(trace::SpanCounter::UnownedBytes) =
      now.unowned_bytes - state.at_advance.unowned_bytes;
  span.counters.at(trace::SpanCounter::L3Hits) =
      now.llc_hits - state.at_advance.llc_hits;
  span.counters.at(trace::SpanCounter::L3Misses) = d.window_misses;
  d.why = prof::attribute(span);
  return d;
}

std::vector<StallDiagnosis> Watchdog::tick(
    std::int64_t t_ns, const std::vector<ThreadCumulative>& cum) {
  std::vector<StallDiagnosis> fired;
  for (std::size_t i = 0; i < threads_.size() && i < cum.size(); ++i) {
    PerThread& t = threads_[i];
    if (cum[i].updates != t.at_advance.updates) {
      t.at_advance = cum[i];
      t.advance_t_ns = t_ns;
      t.stuck_ticks = 0;
      t.fired = false;
      continue;
    }
    t.stuck_ticks += 1;
    if (t.stuck_ticks >= stall_intervals_ && !t.fired) {
      t.fired = true;
      events_ += 1;
      fired.push_back(diagnose(static_cast<int>(i), t_ns, cum[i], t));
    }
  }
  return fired;
}

std::string StallDiagnosis::render(const std::string& action) const {
  std::ostringstream os;
  os << "telemetry watchdog: thread " << tid << " stalled — no progress for "
     << std::fixed << std::setprecision(1) << window_s * 1e3 << " ms ("
     << stalled_intervals << " intervals), " << updates
     << " updates published\n";
  os << "  verdict: " << prof::verdict_name(why.verdict) << " (spin_frac "
     << std::setprecision(2) << why.spin_frac << ", remote_frac "
     << why.remote_frac << ", miss_rate " << why.miss_rate << ")\n";
  os << "  window: " << window_wait_spans << " wait span(s), " << window_spins
     << " spin iteration(s), " << window_remote_bytes << " remote byte(s), "
     << window_misses << " deepest-level miss(es)";
  if (!last_phase.empty()) os << "; last phase " << last_phase;
  if (no_spans_completed)
    os << "; no span completed in the window (stuck inside one)";
  os << "\n  action: " << action << '\n';
  return os.str();
}

}  // namespace nustencil::telemetry
