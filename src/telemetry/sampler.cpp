#include "telemetry/sampler.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <iostream>
#include <sstream>

#include "cachesim/shared.hpp"
#include "common/error.hpp"
#include "metrics/registry.hpp"
#include "numa/traffic.hpp"
#include "telemetry/openmetrics.hpp"
#include "thread/abort.hpp"

namespace nustencil::telemetry {
namespace {

std::atomic<std::uint64_t> g_threads_started{0};

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

// Wait phases observed by the watchdog and the per-thread snapshots.
constexpr trace::Phase kWaitPhases[] = {trace::Phase::BarrierWait,
                                        trace::Phase::SpinWait};
constexpr trace::Phase kLeafPhases[] = {trace::Phase::Init, trace::Phase::Tile,
                                        trace::Phase::BarrierWait,
                                        trace::Phase::SpinWait};

}  // namespace

bool parse_telemetry_enabled(const std::string& text) {
  const std::string t = lower(text);
  if (t == "on") return true;
  if (t == "off") return false;
  throw Error("--telemetry: expected on or off, got '" + text + "'");
}

std::ostream& Sampler::default_diag() { return std::cerr; }

Sampler::Sampler(const Config& cfg, std::ostream& diag)
    : cfg_(cfg), diag_(&diag) {
  NUSTENCIL_CHECK(cfg_.interval_s > 0.0, "Sampler: interval must be positive");
  NUSTENCIL_CHECK(cfg_.ring_capacity > 0, "Sampler: ring capacity must be > 0");
  if (cfg_.watchdog_stall_intervals < 0)
    throw Error("Sampler: watchdog stall intervals must be >= 0");
  // One log per process, shared by every rep of the run: created (and
  // truncated) here so reps append to a single chronological stream.
  if (cfg_.sampling && !cfg_.log_path.empty())
    log_ = std::make_unique<EventLog>(cfg_.log_path);
}

Sampler::~Sampler() { detach_run(); }

void Sampler::attach_heartbeat(prof::ProgressMeter* meter, double interval_s) {
  NUSTENCIL_CHECK(interval_s > 0.0,
                  "Sampler: heartbeat interval must be positive");
  heartbeat_ = meter;
  heartbeat_interval_s_ = interval_s;
}

void Sampler::begin_run(const RunSources& sources) {
  detach_run();
  NUSTENCIL_CHECK(sources.num_threads >= 1, "Sampler: need at least one thread");
  src_ = sources;
  bound_ = true;
  seq_ = 0;
  last_layer_ = -1;
  last_steals_ = 0;
  last_t_ns_ = 0;
  openmetrics_failed_ = false;
  watchdog_aborted_ = false;
  suppress_watchdog_ = false;
  steals_ = nullptr;
  steal_attempts_ = nullptr;
  prev_.assign(static_cast<std::size_t>(src_.num_threads), {});
  prev_spans_.assign(static_cast<std::size_t>(src_.num_threads), {});

  if (cfg_.sampling) {
    store_.emplace(cfg_.ring_capacity);
    const int n = src_.num_threads;
    for (int t = 0; t < n; ++t) {
      store_->add_series("thread" + std::to_string(t) + "/mups");
      store_->add_series("thread" + std::to_string(t) + "/locality");
    }
    store_->add_series("run/mups");
    store_->add_series("run/locality");
    store_->add_series("run/layer");

    // Resolve counter handles on the main thread, before workers start:
    // Registry lookup is not thread-safe, but the handles are stable for
    // the registry's lifetime, so the sampler thread only dereferences.
    if (src_.registry) {
      steals_ = &src_.registry->counter("sched/steal_success");
      steal_attempts_ = &src_.registry->counter("sched/steal_attempts");
    }

    // The watchdog observes the progress slots; without a meter there is
    // nothing to watch.
    if (cfg_.watchdog_stall_intervals > 0 && src_.progress) {
      watchdog_.emplace(cfg_.watchdog_stall_intervals, cfg_.watchdog_action);
      watchdog_->begin_run(src_.num_threads, 0);
    } else {
      watchdog_.reset();
    }

    if (log_) {
      log_->event("run_start", 0.0, [&](metrics::JsonWriter& w) {
        w.kv("label", cfg_.label);
        w.kv("threads", src_.num_threads);
        w.kv("timesteps", static_cast<std::int64_t>(src_.timesteps));
        w.kv("interval_ms", cfg_.interval_s * 1e3);
      });
      if (src_.hw_status == "degraded")
        log_->event("hw_degraded", 0.0, [&](metrics::JsonWriter& w) {
          w.kv("reason", src_.hw_reason);
        });
    }
  } else {
    store_.reset();
    watchdog_.reset();
  }

  t0_ = std::chrono::steady_clock::now();
  if (!cfg_.manual && (cfg_.sampling || heartbeat_)) start_thread();
}

std::int64_t Sampler::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void Sampler::collect(std::vector<ThreadCumulative>& out) {
  const int n = src_.num_threads;
  out.assign(static_cast<std::size_t>(n), {});
  for (int t = 0; t < n; ++t) {
    ThreadCumulative& c = out[static_cast<std::size_t>(t)];
    // Progress slots are the primary updates/bytes source: relaxed atomic
    // loads of single-writer slots, published once per tile.
    if (src_.progress && t < src_.progress->num_slots())
      src_.progress->read_slot(t, c.updates, c.local_bytes, c.remote_bytes);
    if (src_.traffic) {
      std::uint64_t local = 0, remote = 0, unowned = 0;
      src_.traffic->thread_bytes(t, local, remote, unowned);
      c.unowned_bytes = unowned;
      if (!src_.progress) {
        c.local_bytes = local;
        c.remote_bytes = remote;
      }
    }
    if (src_.cache) {
      const auto& levels = src_.cache->core_traffic(t);
      if (!levels.empty()) {
        c.llc_hits = levels.back().hits;
        c.llc_misses = levels.back().misses;
      }
    }
    if (src_.trace) {
      if (const trace::ThreadRecorder* rec = src_.trace->thread(t)) {
        for (const trace::Phase p : kWaitPhases) {
          c.wait_ns += rec->total_ns(p);
          c.wait_spans += rec->span_count(p);
          c.spins += rec->spin_count(p);
        }
        // The leaf phase that completed the most spans since the last
        // tick is "where the thread has been"; a tick with no completed
        // spans keeps the previous answer (the thread is stuck inside
        // one span, which the watchdog reports separately).
        auto& prev_spans = prev_spans_[static_cast<std::size_t>(t)];
        std::uint64_t best_delta = 0;
        const char* best_phase = nullptr;
        for (const trace::Phase p : kLeafPhases) {
          const std::uint64_t count = rec->span_count(p);
          c.leaf_spans += count;
          const std::size_t i = static_cast<std::size_t>(p);
          const std::uint64_t delta = count - prev_spans[i];
          if (delta > best_delta) {
            best_delta = delta;
            best_phase = trace::phase_name(p);
          }
          prev_spans[i] = count;
        }
        c.last_phase = best_phase
                           ? best_phase
                           : prev_[static_cast<std::size_t>(t)].last_phase;
      }
    }
  }
}

void Sampler::sample_once(std::int64_t t_ns) {
  if (!bound_ || !cfg_.sampling || !store_) return;
  const int n = src_.num_threads;
  std::vector<ThreadCumulative> cum;
  collect(cum);

  const double dt_s = static_cast<double>(t_ns - last_t_ns_) * 1e-9;
  std::vector<double> row(2 * static_cast<std::size_t>(n) + 3, 0.0);
  std::uint64_t up_delta = 0, local_delta = 0, remote_delta = 0;
  for (int t = 0; t < n; ++t) {
    const ThreadCumulative& now = cum[static_cast<std::size_t>(t)];
    const ThreadCumulative& was = prev_[static_cast<std::size_t>(t)];
    const std::uint64_t du = now.updates - was.updates;
    const std::uint64_t dl = now.local_bytes - was.local_bytes;
    const std::uint64_t dr = now.remote_bytes - was.remote_bytes;
    up_delta += du;
    local_delta += dl;
    remote_delta += dr;
    const std::uint64_t owned = dl + dr;
    row[2 * static_cast<std::size_t>(t)] =
        dt_s > 0.0 ? static_cast<double>(du) / dt_s * 1e-6 : 0.0;
    row[2 * static_cast<std::size_t>(t) + 1] =
        owned == 0 ? 100.0
                   : static_cast<double>(dl) / static_cast<double>(owned) * 100.0;
  }
  const std::uint64_t owned = local_delta + remote_delta;
  const double run_mups =
      dt_s > 0.0 ? static_cast<double>(up_delta) / dt_s * 1e-6 : 0.0;
  const double run_locality =
      owned == 0 ? 100.0
                 : static_cast<double>(local_delta) /
                       static_cast<double>(owned) * 100.0;
  const long layer = src_.progress ? src_.progress->layer() : -1;
  row[2 * static_cast<std::size_t>(n)] = run_mups;
  row[2 * static_cast<std::size_t>(n) + 1] = run_locality;
  row[2 * static_cast<std::size_t>(n) + 2] = static_cast<double>(layer);
  store_->append(t_ns, row);

  if (!cfg_.openmetrics_path.empty()) export_openmetrics(t_ns, cum, row);

  const double t_ms = static_cast<double>(t_ns) * 1e-6;
  if (log_) {
    log_->event("sample", t_ms, [&](metrics::JsonWriter& w) {
      w.kv("seq", seq_);
      w.kv("mups", run_mups);
      w.kv("locality_pct", run_locality);
      if (layer >= 0) w.kv("layer", static_cast<std::int64_t>(layer));
      w.key("threads");
      w.begin_array();
      for (int t = 0; t < n; ++t) {
        w.begin_object();
        w.kv("tid", t);
        w.kv("mups", row[2 * static_cast<std::size_t>(t)]);
        w.kv("locality_pct", row[2 * static_cast<std::size_t>(t) + 1]);
        w.kv("updates", cum[static_cast<std::size_t>(t)].updates);
        w.end_object();
      }
      w.end_array();
    });
    if (layer >= 0 && layer != last_layer_) {
      log_->event("layer", t_ms, [&](metrics::JsonWriter& w) {
        w.kv("layer", static_cast<std::int64_t>(layer));
      });
    }
    if (steals_) {
      const std::uint64_t steals = steals_->value();
      if (steals > last_steals_) {
        log_->event("steal_burst", t_ms, [&](metrics::JsonWriter& w) {
          w.kv("steals", steals - last_steals_);
          w.kv("total", steals);
        });
        last_steals_ = steals;
      }
    }
  }
  last_layer_ = layer >= 0 ? layer : last_layer_;

  if (watchdog_ && !suppress_watchdog_) {
    const std::vector<StallDiagnosis> stalls = watchdog_->tick(t_ns, cum);
    if (!stalls.empty()) handle_stalls(t_ns, stalls);
  }

  prev_ = std::move(cum);
  last_t_ns_ = t_ns;
  ++seq_;
}

void Sampler::export_openmetrics(std::int64_t t_ns,
                                 const std::vector<ThreadCumulative>& cum,
                                 const std::vector<double>& row) {
  const int n = src_.num_threads;
  std::vector<MetricFamily> families;
  const auto label = [](int t) { return "thread=\"" + std::to_string(t) + "\""; };

  MetricFamily updates{"nustencil_updates_total", "counter",
                       "Cumulative cell updates per worker thread", {}};
  MetricFamily local{"nustencil_local_bytes_total", "counter",
                     "Cumulative node-local owned traffic bytes", {}};
  MetricFamily remote{"nustencil_remote_bytes_total", "counter",
                      "Cumulative cross-node owned traffic bytes", {}};
  MetricFamily mups{"nustencil_mups", "gauge",
                    "Per-thread update rate over the last sample window "
                    "(million updates/s)", {}};
  MetricFamily locality{"nustencil_locality_percent", "gauge",
                        "Per-thread locality over the last sample window", {}};
  for (int t = 0; t < n; ++t) {
    const ThreadCumulative& c = cum[static_cast<std::size_t>(t)];
    updates.points.push_back({label(t), static_cast<double>(c.updates)});
    local.points.push_back({label(t), static_cast<double>(c.local_bytes)});
    remote.points.push_back({label(t), static_cast<double>(c.remote_bytes)});
    mups.points.push_back({label(t), row[2 * static_cast<std::size_t>(t)]});
    locality.points.push_back(
        {label(t), row[2 * static_cast<std::size_t>(t) + 1]});
  }
  families.push_back(std::move(updates));
  families.push_back(std::move(local));
  families.push_back(std::move(remote));
  families.push_back(std::move(mups));
  families.push_back(std::move(locality));

  families.push_back({"nustencil_run_mups", "gauge",
                      "Run-wide update rate over the last sample window",
                      {{"", row[2 * static_cast<std::size_t>(n)]}}});
  families.push_back({"nustencil_run_locality_percent", "gauge",
                      "Run-wide locality over the last sample window",
                      {{"", row[2 * static_cast<std::size_t>(n) + 1]}}});
  const double layer = row[2 * static_cast<std::size_t>(n) + 2];
  if (layer >= 0.0)
    families.push_back(
        {"nustencil_layer", "gauge", "Current temporal layer", {{"", layer}}});
  families.push_back({"nustencil_samples_total", "counter",
                      "Telemetry samples taken this run",
                      {{"", static_cast<double>(seq_ + 1)}}});
  families.push_back(
      {"nustencil_stalls_total", "counter", "Watchdog stall events this run",
       {{"", static_cast<double>(watchdog_ ? watchdog_->stall_events() : 0)}}});
  if (steals_)
    families.push_back({"nustencil_steals_total", "counter",
                        "Successful task steals",
                        {{"", static_cast<double>(steals_->value())}}});
  if (src_.cache) {
    std::uint64_t hits = 0, misses = 0;
    for (const ThreadCumulative& c : cum) {
      hits += c.llc_hits;
      misses += c.llc_misses;
    }
    const std::uint64_t total = hits + misses;
    families.push_back({"nustencil_llc_miss_rate", "gauge",
                        "Cumulative simulated deepest-level miss rate",
                        {{"", total == 0 ? 0.0
                                         : static_cast<double>(misses) /
                                               static_cast<double>(total)}}});
  }
  if (src_.hw) {
    MetricFamily cycles{"nustencil_hw_cycles_total", "counter",
                        "Measured CPU cycles per worker thread (raw)", {}};
    MetricFamily instrs{"nustencil_hw_instructions_total", "counter",
                        "Measured instructions per worker thread (raw)", {}};
    for (int t = 0; t < n; ++t) {
      trace::CounterSet hw;
      src_.hw(t, hw);
      cycles.points.push_back(
          {label(t),
           static_cast<double>(hw.at(trace::SpanCounter::HwCycles))});
      instrs.points.push_back(
          {label(t),
           static_cast<double>(hw.at(trace::SpanCounter::HwInstructions))});
    }
    families.push_back(std::move(cycles));
    families.push_back(std::move(instrs));
  }

  if (!write_openmetrics_file(families, cfg_.openmetrics_path) &&
      !openmetrics_failed_) {
    openmetrics_failed_ = true;  // warn once, keep sampling
    *diag_ << "telemetry: cannot write OpenMetrics file "
           << cfg_.openmetrics_path << " (t=" << t_ns * 1e-6 << " ms)\n";
  }
  (void)t_ns;
}

void Sampler::handle_stalls(std::int64_t t_ns,
                            const std::vector<StallDiagnosis>& stalls) {
  const char* action = watchdog_action_name(cfg_.watchdog_action);
  for (const StallDiagnosis& d : stalls) {
    *diag_ << d.render(action);
    if (log_) {
      log_->event("stall", static_cast<double>(t_ns) * 1e-6,
                  [&](metrics::JsonWriter& w) {
                    w.kv("tid", d.tid);
                    w.kv("stalled_intervals", d.stalled_intervals);
                    w.kv("window_s", d.window_s);
                    w.kv("updates", d.updates);
                    w.kv("verdict", prof::verdict_name(d.why.verdict));
                    w.kv("spin_frac", d.why.spin_frac);
                    w.kv("remote_frac", d.why.remote_frac);
                    w.kv("miss_rate", d.why.miss_rate);
                    w.kv("wait_spans", d.window_wait_spans);
                    w.kv("spins", d.window_spins);
                    w.kv("remote_bytes", d.window_remote_bytes);
                    w.kv("llc_misses", d.window_misses);
                    w.kv("last_phase", d.last_phase);
                    w.kv("no_spans_completed", d.no_spans_completed);
                    w.kv("action", action);
                  });
    }
  }
  if (cfg_.watchdog_action == WatchdogAction::Abort && src_.abort &&
      !watchdog_aborted_) {
    watchdog_aborted_ = true;
    src_.abort->trigger();
  }
}

void Sampler::start_thread() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = false;
    running_ = true;
  }
  g_threads_started.fetch_add(1, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
}

void Sampler::loop() {
  using clock = std::chrono::steady_clock;
  const auto sample_every = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(cfg_.interval_s));
  const auto beat_every = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(
          heartbeat_interval_s_ > 0.0 ? heartbeat_interval_s_ : 1.0));
  auto next_sample = t0_ + sample_every;
  auto next_beat = t0_ + beat_every;
  const bool sampling = cfg_.sampling;
  const bool beating = heartbeat_ != nullptr && heartbeat_interval_s_ > 0.0;

  std::unique_lock<std::mutex> lk(mutex_);
  while (!stopping_) {
    clock::time_point deadline;
    if (sampling && beating)
      deadline = std::min(next_sample, next_beat);
    else if (sampling)
      deadline = next_sample;
    else
      deadline = next_beat;
    cv_.wait_until(lk, deadline, [this] { return stopping_; });
    if (stopping_) break;
    const auto now = clock::now();
    if (sampling && now >= next_sample) {
      lk.unlock();
      sample_once(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      now - t0_)
                      .count());
      lk.lock();
      do next_sample += sample_every;
      while (next_sample <= now);
    }
    if (beating && now >= next_beat) {
      lk.unlock();
      heartbeat_->emit_beat();
      lk.lock();
      do next_beat += beat_every;
      while (next_beat <= now);
    }
  }
  running_ = false;
}

void Sampler::stop_thread() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Sampler::end_run(double seconds, std::uint64_t updates) {
  if (!bound_) return;
  stop_thread();
  if (cfg_.sampling && !cfg_.manual) {
    // One closing sample so runs shorter than the interval still chart.
    // The watchdog sits this one out: the workers have already finished,
    // so "no progress since the last tick" is the expected end state.
    suppress_watchdog_ = true;
    sample_once(now_ns());
    suppress_watchdog_ = false;
  }
  if (heartbeat_) heartbeat_->emit_final();
  if (log_) {
    // Stamped on the sampler's clock so the log stays chronological —
    // `seconds` measures the run region only, which starts after t0_.
    const double end_ms =
        std::max(static_cast<double>(now_ns()), static_cast<double>(last_t_ns_)) *
        1e-6;
    log_->event("run_end", end_ms, [&](metrics::JsonWriter& w) {
      w.kv("seconds", seconds);
      w.kv("updates", updates);
      w.kv("samples", seq_);
      w.kv("stalls", watchdog_ ? watchdog_->stall_events() : 0);
    });
  }
  bound_ = false;
  src_ = RunSources{};
}

void Sampler::detach_run() {
  stop_thread();
  bound_ = false;
  src_ = RunSources{};
}

std::uint64_t Sampler::samples_taken() const { return seq_; }

int Sampler::stall_events() const {
  return watchdog_ ? watchdog_->stall_events() : 0;
}

metrics::TimeseriesSection Sampler::report_section(
    std::size_t max_points) const {
  metrics::TimeseriesSection ts;
  if (!cfg_.sampling || !store_) return ts;
  ts.enabled = true;
  ts.interval_ms = cfg_.interval_s * 1e3;
  ts.samples = store_->total_appended();
  ts.stall_events = static_cast<std::uint64_t>(stall_events());
  const std::size_t n = store_->size();
  const std::vector<std::size_t> keep =
      TimeSeriesStore::downsample_indices(n, max_points);
  ts.t_ms.reserve(keep.size());
  for (const std::size_t i : keep)
    ts.t_ms.push_back(static_cast<double>(store_->time_ns_at(i)) * 1e-6);
  ts.series.reserve(static_cast<std::size_t>(store_->num_series()));
  for (int s = 0; s < store_->num_series(); ++s) {
    metrics::TimeseriesSection::Series out;
    out.name = store_->series_name(s);
    out.values.reserve(keep.size());
    for (const std::size_t i : keep) out.values.push_back(store_->value_at(s, i));
    ts.series.push_back(std::move(out));
  }
  return ts;
}

std::uint64_t Sampler::threads_started() {
  return g_threads_started.load(std::memory_order_relaxed);
}

std::string describe_telemetry(bool enabled, double interval_s,
                               const std::string& openmetrics_path,
                               const std::string& log_path,
                               int watchdog_stall_intervals,
                               WatchdogAction action) {
  std::ostringstream os;
  os << "telemetry:\n";
  if (!enabled) {
    os << "  off (no sampler thread, no rings; every hook is a null check)\n";
    return os.str();
  }
  os << "  sampling every " << interval_s * 1e3
     << " ms into per-series rings (lock-free reads of single-writer "
        "shards)\n";
  os << "  openmetrics: "
     << (openmetrics_path.empty() ? "off"
                                  : openmetrics_path + " (atomic rewrite)")
     << '\n';
  os << "  event log: "
     << (log_path.empty() ? "off" : log_path + " (append-only JSONL)") << '\n';
  if (watchdog_stall_intervals > 0)
    os << "  watchdog: fire after " << watchdog_stall_intervals
       << " stalled interval(s), action " << watchdog_action_name(action)
       << '\n';
  else
    os << "  watchdog: off\n";
  return os.str();
}

}  // namespace nustencil::telemetry
