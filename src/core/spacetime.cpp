#include "core/spacetime.hpp"

#include "common/error.hpp"

namespace nustencil::core {

Box SpaceTimeTile::box_at(Index t) const {
  NUSTENCIL_DCHECK(t >= t0 && t < t1, "box_at: time outside tile");
  const Index dt = t - t0;
  Box b;
  b.lo = Coord::filled(rank, 0);
  b.hi = Coord::filled(rank, 0);
  for (int d = 0; d < rank; ++d) {
    b.lo[d] = dims[static_cast<std::size_t>(d)].lo_at(dt);
    b.hi[d] = dims[static_cast<std::size_t>(d)].hi_at(dt);
  }
  return b;
}

Index SpaceTimeTile::volume() const {
  Index v = 0;
  for (Index t = t0; t < t1; ++t) {
    Index prod = 1;
    for (int d = 0; d < rank; ++d) {
      const Index w = dims[static_cast<std::size_t>(d)].width_at(t - t0);
      prod *= w > 0 ? w : 0;
    }
    v += prod;
  }
  return v;
}

std::pair<SpaceTimeTile, SpaceTimeTile> SpaceTimeTile::time_cut(Index tm) const {
  NUSTENCIL_CHECK(tm > t0 && tm < t1, "time_cut: cut outside tile");
  SpaceTimeTile lower = *this;
  lower.t1 = tm;
  SpaceTimeTile upper = *this;
  upper.t0 = tm;
  const Index dt = tm - t0;
  for (int d = 0; d < rank; ++d) {
    auto& iv = upper.dims[static_cast<std::size_t>(d)];
    iv.lo = iv.lo_at(dt);
    iv.hi = iv.hi_at(dt);
  }
  return {lower, upper};
}

std::pair<SpaceTimeTile, SpaceTimeTile> SpaceTimeTile::space_cut(int d, Index c) const {
  const auto& iv = dims[static_cast<std::size_t>(d)];
  NUSTENCIL_CHECK(iv.parallel(), "space_cut: dimension must have parallel slopes");
  NUSTENCIL_CHECK(c > iv.lo && c < iv.hi, "space_cut: cut outside interval");
  SpaceTimeTile left = *this;
  left.dims[static_cast<std::size_t>(d)].hi = c;
  SpaceTimeTile right = *this;
  right.dims[static_cast<std::size_t>(d)].lo = c;
  return {left, right};
}

namespace {

void decompose_impl(const SpaceTimeTile& tile, const BaseSizes& base,
                    std::vector<SpaceTimeTile>& out) {
  // Time is always cut first (down to the base height) so that the time
  // bands of the base parallelograms align globally across congruent and
  // non-congruent thread tiles alike.  That alignment makes the
  // inter-thread spin-flag protocol of nuCORALS deadlock-free: a base
  // waiting across a thread boundary only ever targets neighbour bases in
  // the same or an earlier time band, and within a band the left-skewed
  // space-cut order guarantees the producing (left-edge) bases carry no
  // cross-boundary waits of their own.
  if (tile.timesteps() > base.time) {
    const auto [lower, upper] = tile.time_cut(tile.t0 + tile.timesteps() / 2);
    decompose_impl(lower, base, out);  // time cut: lower half first
    decompose_impl(upper, base, out);
    return;
  }

  // Within a band: cut the relatively longest spatial dimension.
  int cut_dim = -2;
  double best = 1.0;
  for (int d = 0; d < tile.rank; ++d) {
    const Index w = tile.dims[static_cast<std::size_t>(d)].hi -
                    tile.dims[static_cast<std::size_t>(d)].lo;
    const double ratio = static_cast<double>(w) / static_cast<double>(base.space[static_cast<std::size_t>(d)]);
    if (w > base.space[static_cast<std::size_t>(d)] && ratio > best) {
      best = ratio;
      cut_dim = d;
    }
  }

  if (cut_dim == -2) {
    out.push_back(tile);  // base parallelogram reached
    return;
  }

  const auto& iv = tile.dims[static_cast<std::size_t>(cut_dim)];
  const auto [left, right] = tile.space_cut(cut_dim, iv.lo + (iv.hi - iv.lo) / 2);
  if (iv.slope_lo <= 0) {
    // Left skew (or unskewed): the right child reads the left child's
    // results, so the left child must execute first.
    decompose_impl(left, base, out);
    decompose_impl(right, base, out);
  } else {
    decompose_impl(right, base, out);
    decompose_impl(left, base, out);
  }
}

}  // namespace

void decompose_parallelogram(const SpaceTimeTile& root, const BaseSizes& base,
                             std::vector<SpaceTimeTile>& out) {
  NUSTENCIL_CHECK(root.timesteps() > 0, "decompose: empty time range");
  decompose_impl(root, base, out);
}

}  // namespace nustencil::core
