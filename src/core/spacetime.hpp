// Space-time tile geometry: skewed parallelotopes and their cuts.
//
// A SpaceTimeTile covers time steps [t0, t1); in each spatial dimension it
// covers, at time t, the half-open interval
//     [lo + slope_lo * (t - t0),  hi + slope_hi * (t - t0)).
// Uniform slopes (slope_lo == slope_hi) give parallelograms (CORALS,
// nuCORALS thread/root/base parallelograms, CATS wavefront tiles);
// differing slopes give trapezoids (the Frigo-Strumpen decomposition used
// by the Pochoir stand-in).  Coordinates are *virtual*: they may leave the
// domain and wrap periodically when executed.
#pragma once

#include <array>
#include <vector>

#include "core/box.hpp"

namespace nustencil::core {

struct SkewedInterval {
  Index lo = 0;
  Index hi = 0;
  int slope_lo = 0;
  int slope_hi = 0;

  Index lo_at(Index dt) const { return lo + static_cast<Index>(slope_lo) * dt; }
  Index hi_at(Index dt) const { return hi + static_cast<Index>(slope_hi) * dt; }
  Index width_at(Index dt) const { return hi_at(dt) - lo_at(dt); }
  bool parallel() const { return slope_lo == slope_hi; }
};

struct SpaceTimeTile {
  Index t0 = 0;
  Index t1 = 0;
  int rank = 0;
  std::array<SkewedInterval, 3> dims{};

  Index timesteps() const { return t1 - t0; }

  /// Spatial box covered at absolute time step t (t in [t0, t1)).
  Box box_at(Index t) const;

  /// Number of space-time points (sum of box volumes over all steps).
  Index volume() const;

  /// Cuts the time range at absolute step tm (t0 < tm < t1) into
  /// {[t0,tm), [tm,t1)}; the upper tile's intervals are re-based at tm.
  std::pair<SpaceTimeTile, SpaceTimeTile> time_cut(Index tm) const;

  /// Cuts spatial dimension d (which must have parallel slopes) at
  /// position c measured at t0 (lo < c < hi).  Returns {left, right}.
  std::pair<SpaceTimeTile, SpaceTimeTile> space_cut(int d, Index c) const;
};

/// Recursive CORALS-style decomposition of a parallelogram `root` into base
/// parallelograms, appended to `out` in a dependency-respecting sequential
/// order for slope `-s` (left skew): time cuts emit lower before upper,
/// space cuts emit left before right.  For slope `+s` tiles the space-cut
/// order flips automatically based on the sign of the slope.
struct BaseSizes {
  Index time = 8;                       ///< stop when timesteps <= time
  std::array<Index, 3> space{32, 8, 8}; ///< per-dim spatial stop size
};

void decompose_parallelogram(const SpaceTimeTile& root, const BaseSizes& base,
                             std::vector<SpaceTimeTile>& out);

}  // namespace nustencil::core
