// Region executor: applies one Jacobi time step to a spatial box.
//
// All tiling schemes reduce to sequences of box updates at given time
// steps; the executor owns the per-row kernel dispatch (a tap-specialized
// SIMD kernel from core/kernels.hpp for interior segments, selected once
// at construction via runtime CPUID; a scalar wrap path at periodic
// boundaries), the traffic instrumentation, and the dependency checker
// hooks.  Boxes are given in *virtual* coordinates: they may extend
// beyond the domain in any dimension (skewed parallelograms do), and
// wrap around periodically.
#pragma once

#include <array>

#include "cachesim/shared.hpp"
#include "core/box.hpp"
#include "core/depcheck.hpp"
#include "core/field.hpp"
#include "core/kernels.hpp"
#include "metrics/registry.hpp"
#include "numa/traffic.hpp"
#include "prof/progress.hpp"
#include "trace/trace.hpp"

namespace nustencil::core {

/// Optional per-run instrumentation shared by all threads.  `pages` must
/// be the table the problem's fields were attached to; it is required
/// whenever `traffic` is set.  `cache_sim`, when set, receives the
/// row-granular access stream of the execution (real data addresses) for
/// trace-driven cache simulation; thread `tid` maps to simulated core
/// `tid`.
struct Instrumentation {
  numa::PageTable* pages = nullptr;
  numa::TrafficRecorder* traffic = nullptr;
  DependencyChecker* checker = nullptr;
  cachesim::SharedHierarchy* cache_sim = nullptr;
  /// Kernel-dispatch counters land here (tiles, fast rows per kernel
  /// variant, slow boundary cells, tile-size histogram).  Null disables
  /// every metrics hook at the cost of one branch.
  metrics::Registry* metrics = nullptr;
  /// Live heartbeat target: update_box publishes the thread's cumulative
  /// updates and traffic bytes after every tile.  Null (the default)
  /// disables the hook at the cost of one branch.
  prof::ProgressMeter* progress = nullptr;
};

/// How one physical row segment [a, b) splits into wrap-checked slow
/// cells at the periodic boundary and the interior kernel fast path.
/// The three ranges are disjoint, ordered, and cover [a, b) exactly —
/// including tiny domains with nx < 2*order, where the boundary regions
/// meet in the middle and the fast range is empty.
struct RowSplit {
  Index lo0, lo1;      ///< leading slow range [lo0, lo1)
  Index fast0, fast1;  ///< interior fast range [fast0, fast1)
  Index hi0, hi1;      ///< trailing slow range [hi0, hi1)
};
RowSplit compute_row_split(Index a, Index b, Index nx, int order);

class Executor {
 public:
  /// `instr` may outlive-or-null; the executor never owns it.  The row
  /// kernel is selected once here, from `policy`, `stores`, the host CPU
  /// and the problem's geometry/layout (rotated v2 kernels for canonical
  /// rank-3 stars; streaming stores only on 64B-aligned rows).
  Executor(Problem& problem, Instrumentation instr = {},
           KernelPolicy policy = KernelPolicy::Auto,
           StorePolicy stores = StorePolicy::Auto);

  /// Updates every cell of `box` (virtual coordinates, wrapped into the
  /// periodic domain) from time `t` to `t+1` on behalf of thread `tid`.
  /// Returns the number of cell updates performed.
  Index update_box(const Box& box, long t, int tid);

  /// First-touch claim: marks the pages of `box` (physical coordinates)
  /// in both value buffers and all bands as owned by `node`, and performs
  /// the actual initialising write of buffer 0.  Mirrors the paper's
  /// Phase I: "each thread allocates and initialises one spatial tile".
  void first_touch_box(const Box& box, int node, unsigned seed);

  const Problem& problem() const { return *problem_; }
  Index updates_done() const { return updates_; }

  /// Attaches the owning thread's span recorder: update_box then records
  /// a `tile` span (box origin + executing thread in the args) and
  /// first_touch_box an `init` span.  Null (the default) disables both at
  /// the cost of a single branch per call.
  void set_trace(trace::ThreadRecorder* rec) { trace_ = rec; }
  trace::ThreadRecorder* trace() const { return trace_; }

  /// The kernel variant this executor dispatches interior rows to.
  const KernelChoice& kernel() const { return kernel_; }

 private:
  struct RowPlan;
  void update_row(const RowPlan& plan, const KernelArgs& ka, long t, int tid);
  void account_row(const RowPlan& plan, long t, int tid);

  Problem* problem_;
  Instrumentation instr_;
  KernelChoice kernel_;
  trace::ThreadRecorder* trace_ = nullptr;
  Index updates_ = 0;

  // Metrics instruments, resolved once at construction (null when
  // Instrumentation::metrics is null; each hook is then one branch).
  metrics::Counter* m_tiles_ = nullptr;
  metrics::Counter* m_fast_rows_ = nullptr;   ///< "kernel/rows/<variant>"
  metrics::Counter* m_slow_cells_ = nullptr;
  metrics::Histogram* m_tile_hist_ = nullptr;

  // Per-problem invariants hoisted out of the row path.
  std::array<const double*, kMaxTaps> band_ptrs_{};

  // Cached geometry (normalised to 3D: missing dims have extent 1).
  // Strides come from the fields, so padded layouts (xstride > nx) work
  // transparently; xstride_ feeds KernelArgs::xcap.
  Index nx_, ny_, nz_;
  Index sy_, sz_;  // storage strides of dims 1 and 2
  Index xstride_;  // storage extent of the unit-stride dim
};

}  // namespace nustencil::core
