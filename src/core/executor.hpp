// Region executor: applies one Jacobi time step to a spatial box.
//
// All tiling schemes reduce to sequences of box updates at given time
// steps; the executor owns the per-row kernel dispatch (SSE2 fast path for
// interior segments, scalar wrap path at periodic boundaries), the traffic
// instrumentation, and the dependency checker hooks.  Boxes are given in
// *virtual* coordinates: they may extend beyond the domain in any
// dimension (skewed parallelograms do), and wrap around periodically.
#pragma once

#include "cachesim/shared.hpp"
#include "core/box.hpp"
#include "core/depcheck.hpp"
#include "core/field.hpp"
#include "numa/traffic.hpp"

namespace nustencil::core {

inline constexpr int kMaxOrder = 8;
inline constexpr int kMaxTaps = 2 * kMaxOrder * 3 + 1;

/// Optional per-run instrumentation shared by all threads.  `pages` must
/// be the table the problem's fields were attached to; it is required
/// whenever `traffic` is set.  `cache_sim`, when set, receives the
/// row-granular access stream of the execution (real data addresses) for
/// trace-driven cache simulation; thread `tid` maps to simulated core
/// `tid`.
struct Instrumentation {
  numa::PageTable* pages = nullptr;
  numa::TrafficRecorder* traffic = nullptr;
  DependencyChecker* checker = nullptr;
  cachesim::SharedHierarchy* cache_sim = nullptr;
};

class Executor {
 public:
  /// `instr` may outlive-or-null; the executor never owns it.
  Executor(Problem& problem, Instrumentation instr = {}, bool use_simd = true);

  /// Updates every cell of `box` (virtual coordinates, wrapped into the
  /// periodic domain) from time `t` to `t+1` on behalf of thread `tid`.
  /// Returns the number of cell updates performed.
  Index update_box(const Box& box, long t, int tid);

  /// First-touch claim: marks the pages of `box` (physical coordinates)
  /// in both value buffers and all bands as owned by `node`, and performs
  /// the actual initialising write of buffer 0.  Mirrors the paper's
  /// Phase I: "each thread allocates and initialises one spatial tile".
  void first_touch_box(const Box& box, int node, unsigned seed);

  const Problem& problem() const { return *problem_; }
  Index updates_done() const { return updates_; }

 private:
  struct RowPlan;
  void update_row(const RowPlan& plan, long t, int tid);
  void account_row(const RowPlan& plan, long t, int tid);

  Problem* problem_;
  Instrumentation instr_;
  bool use_simd_;
  Index updates_ = 0;

  // Cached geometry (normalised to 3D: missing dims have extent 1).
  Index nx_, ny_, nz_;
  Index sy_, sz_;  // strides of dims 1 and 2
};

}  // namespace nustencil::core
