// Deterministic dependency-order checker for the tiling schemes.
//
// A shadow grid records, per cell, how many updates have been applied.
// With double buffering, the value of time t lives in buffer t%2, so an
// update of a cell from t to t+1 is legal iff
//   * the cell itself has level exactly t (its t-value is in buffer t%2,
//     and buffer (t+1)%2 holds only its stale t-1 value), and
//   * every stencil input has level t or t+1 (its t-value is still live in
//     buffer t%2; level >= t+2 would have overwritten it).
// Any tiling or synchronisation bug — wrong cut order, missing spin-flag,
// wrong skew — trips the checker deterministically, which racy wall-clock
// testing cannot guarantee.  Dirichlet boundary cells are frozen: they are
// never updated and are valid inputs at any time.
#pragma once

#include <atomic>
#include <memory>

#include "common/error.hpp"
#include "common/types.hpp"

namespace nustencil::core {

class DependencyChecker {
 public:
  explicit DependencyChecker(Index volume)
      : volume_(volume),
        level_(std::make_unique<std::atomic<long>[]>(static_cast<std::size_t>(volume))) {
    for (Index i = 0; i < volume; ++i) level_[i].store(0, std::memory_order_relaxed);
  }

  /// Marks `cell` as a frozen (Dirichlet) boundary value.
  void freeze(Index cell) { level_[cell].store(kFrozen, std::memory_order_relaxed); }

  /// Validates that reading cell `input` while computing time t+1 is legal.
  void check_input(Index input, long t) const {
    const long lvl = level_[input].load(std::memory_order_acquire);
    if (lvl == kFrozen) return;
    NUSTENCIL_CHECK(lvl >= t && lvl <= t + 1,
                    "dependency violation: input cell not at time t");
  }

  /// Validates and records the update of `cell` from time t to t+1.
  void commit_update(Index cell, long t) {
    const long lvl = level_[cell].load(std::memory_order_acquire);
    NUSTENCIL_CHECK(lvl != kFrozen, "dependency violation: frozen cell updated");
    NUSTENCIL_CHECK(lvl == t, "dependency violation: cell updated out of order");
    level_[cell].store(t + 1, std::memory_order_release);
  }

  /// Verifies that every non-frozen cell reached exactly time `t`.
  void check_all_at(long t) const {
    for (Index i = 0; i < volume_; ++i) {
      const long lvl = level_[i].load(std::memory_order_relaxed);
      if (lvl == kFrozen) continue;
      NUSTENCIL_CHECK(lvl == t, "dependency checker: cell did not reach the final time");
    }
  }

  long level(Index cell) const { return level_[cell].load(std::memory_order_relaxed); }

 private:
  static constexpr long kFrozen = -1;
  Index volume_;
  std::unique_ptr<std::atomic<long>[]> level_;
};

}  // namespace nustencil::core
