// Axis-aligned boxes in (possibly virtual, i.e. unwrapped-periodic) grid
// coordinates.
#pragma once

#include <algorithm>
#include <ostream>

#include "common/types.hpp"

namespace nustencil::core {

/// Half-open box [lo, hi) per dimension.
struct Box {
  Coord lo;
  Coord hi;

  int rank() const { return lo.rank(); }

  bool empty() const {
    for (int d = 0; d < rank(); ++d)
      if (lo[d] >= hi[d]) return true;
    return false;
  }

  Index volume() const {
    Index v = 1;
    for (int d = 0; d < rank(); ++d) v *= std::max<Index>(0, hi[d] - lo[d]);
    return v;
  }

  Index extent(int d) const { return hi[d] - lo[d]; }

  friend bool operator==(const Box& a, const Box& b) { return a.lo == b.lo && a.hi == b.hi; }
};

inline Box intersect(const Box& a, const Box& b) {
  Box r = a;
  for (int d = 0; d < a.rank(); ++d) {
    r.lo[d] = std::max(a.lo[d], b.lo[d]);
    r.hi[d] = std::min(a.hi[d], b.hi[d]);
  }
  return r;
}

inline std::ostream& operator<<(std::ostream& os, const Box& b) {
  return os << b.lo << ".." << b.hi;
}

}  // namespace nustencil::core
