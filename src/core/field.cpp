#include "core/field.hpp"

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace nustencil::core {

namespace {

/// Storage strides for `shape` with the unit-stride dimension padded to
/// `xstride` elements (== shape[0] for dense layouts).
Coord padded_strides(const Coord& shape, Index xstride) {
  Coord s = Coord::filled(shape.rank(), 1);
  if (shape.rank() >= 2) s[1] = xstride;
  for (int d = 2; d < shape.rank(); ++d) s[d] = s[d - 1] * shape[d - 1];
  return s;
}

Index pick_xstride(const Coord& shape, FieldPad pad) {
  constexpr Index kRowAlignDoubles =
      static_cast<Index>(kCacheLineBytes / sizeof(double));
  return pad == FieldPad::Rows64 ? round_up(shape[0], kRowAlignDoubles)
                                 : shape[0];
}

}  // namespace

Field::Field(Coord shape, FieldPad pad)
    : shape_(shape), strides_(padded_strides(shape, pick_xstride(shape, pad))),
      volume_(shape.product()), xstride_(pick_xstride(shape, pad)),
      storage_volume_(volume_ / shape[0] * xstride_),
      buffer_(static_cast<std::size_t>(storage_volume_) * sizeof(double)),
      data_(reinterpret_cast<double*>(buffer_.data())) {
  NUSTENCIL_CHECK(shape.rank() >= 1, "Field: shape must have rank >= 1");
  for (int d = 0; d < shape.rank(); ++d)
    NUSTENCIL_CHECK(shape[d] >= 1, "Field: extents must be positive");
}

bool Field::rows_aligned() const {
  constexpr Index kRowAlignDoubles =
      static_cast<Index>(kCacheLineBytes / sizeof(double));
  return xstride_ % kRowAlignDoubles == 0 &&
         reinterpret_cast<std::uintptr_t>(data_) % kCacheLineBytes == 0;
}

void Field::attach(numa::PageTable& pages, const std::string& name) {
  region_ = pages.register_region(
      name, storage_volume_ * static_cast<Index>(sizeof(double)));
}

numa::RegionId Field::region() const {
  NUSTENCIL_CHECK(region_.has_value(), "Field::region: field not attached");
  return *region_;
}

Problem::Problem(Coord shape, StencilSpec stencil, FieldPad pad)
    : shape_(shape), stencil_(std::move(stencil)) {
  NUSTENCIL_CHECK(shape.rank() == stencil_.rank(),
                  "Problem: shape rank must match stencil rank");
  for (int d = 0; d < shape.rank(); ++d)
    NUSTENCIL_CHECK(shape[d] > 2 * stencil_.order(),
                    "Problem: extents must exceed the stencil diameter");
  u_.emplace_back(shape, pad);
  u_.emplace_back(shape, pad);
  if (stencil_.banded()) {
    for (int p = 0; p < stencil_.npoints(); ++p) bands_.emplace_back(shape, pad);
  }
}

Field& Problem::band(int p) {
  NUSTENCIL_CHECK(has_bands(), "Problem::band: constant-coefficient problem");
  NUSTENCIL_CHECK(p >= 0 && p < static_cast<int>(bands_.size()), "Problem::band: bad tap");
  return bands_[static_cast<std::size_t>(p)];
}

const Field& Problem::band(int p) const {
  return const_cast<Problem*>(this)->band(p);
}

// Deterministic hash-based value in [0, 1), independent of traversal order.
double initial_value(Index cell, unsigned seed) {
  std::uint64_t x = static_cast<std::uint64_t>(cell) * 2654435761u + seed + 1;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<double>(x % 10000) / 10000.0;
}

void Problem::fill_row(Index begin, Index end, unsigned seed) {
  NUSTENCIL_CHECK(begin >= 0 && end <= storage_volume() && begin <= end,
                  "Problem::fill_row: range out of bounds");
  Field& u0 = u_[0];
  const int taps = stencil_.npoints();
  // Walk storage indices but key the hash on the logical cell id, so a
  // padded problem gets the exact per-cell data of its dense twin (for
  // dense layouts cell == i and this is byte-for-byte the old loop).
  const Index xs = u0.xstride();
  const Index nx = shape_[0];
  Index x = begin % xs;
  Index cell_row = begin / xs * nx;
  for (Index i = begin; i < end; ++i) {
    if (x < nx) {
      const Index cell = cell_row + x;
      u0.data()[i] = initial_value(cell, seed);
      if (!bands_.empty()) {
        // Per-cell positive weights summing to 1: centre 0.5, the rest
        // share 0.5 with a cell-dependent perturbation (keeps iteration
        // stable).
        double sum = 0.0;
        for (int p = 1; p < taps; ++p) {
          const double w = 1.0 + 0.5 * initial_value(cell * taps + p, seed);
          bands_[static_cast<std::size_t>(p)].data()[i] = w;
          sum += w;
        }
        for (int p = 1; p < taps; ++p)
          bands_[static_cast<std::size_t>(p)].data()[i] *= 0.5 / sum;
        bands_[0].data()[i] = 0.5;
      }
    } else {
      u0.data()[i] = 0.0;
      for (std::size_t p = 0; p < bands_.size(); ++p) bands_[p].data()[i] = 0.0;
    }
    if (++x == xs) {
      x = 0;
      cell_row += nx;
    }
  }
}

void Problem::initialize(unsigned seed) { fill_row(0, storage_volume(), seed); }

void Problem::attach(numa::PageTable& pages) {
  u_[0].attach(pages, "u0");
  u_[1].attach(pages, "u1");
  for (std::size_t p = 0; p < bands_.size(); ++p)
    bands_[p].attach(pages, "band" + std::to_string(p));
}

}  // namespace nustencil::core
