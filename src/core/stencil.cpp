#include "core/stencil.hpp"

#include "common/error.hpp"

namespace nustencil::core {

StencilSpec::StencilSpec(int rank, int order, bool banded, std::vector<double> coeffs)
    : rank_(rank), order_(order), banded_(banded), coeffs_(std::move(coeffs)) {
  NUSTENCIL_CHECK(rank >= 1 && rank <= 3, "StencilSpec: rank must be 1..3");
  NUSTENCIL_CHECK(order >= 1, "StencilSpec: order must be >= 1");
  points_.push_back({-1, 0});
  for (int d = 0; d < rank; ++d) {
    for (int k = -order; k <= order; ++k) {
      if (k == 0) continue;
      points_.push_back({d, k});
    }
  }
  if (!banded_) {
    NUSTENCIL_CHECK(coeffs_.size() == points_.size(),
                    "StencilSpec: need one coefficient per tap");
  } else {
    NUSTENCIL_CHECK(coeffs_.empty(), "StencilSpec: banded stencil takes no constants");
  }
}

StencilSpec StencilSpec::constant_star(int rank, int order, std::vector<double> coeffs) {
  return StencilSpec(rank, order, /*banded=*/false, std::move(coeffs));
}

StencilSpec StencilSpec::paper_3d7p() {
  // c0 * centre + c1..c6 * the six face neighbours; weights sum to 1.
  return constant_star(3, 1, {0.4, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1});
}

StencilSpec StencilSpec::stable_star(int rank, int order) {
  const int taps = 2 * order * rank + 1;
  std::vector<double> c(static_cast<std::size_t>(taps));
  // Distinct positive weights summing to 1: centre gets 1/2, the rest share
  // the other half proportional to 1/(tap index + 1).
  double denom = 0.0;
  for (int i = 1; i < taps; ++i) denom += 1.0 / static_cast<double>(i + 1);
  c[0] = 0.5;
  for (int i = 1; i < taps; ++i)
    c[static_cast<std::size_t>(i)] = 0.5 * (1.0 / static_cast<double>(i + 1)) / denom;
  return constant_star(rank, order, std::move(c));
}

StencilSpec StencilSpec::banded_star(int rank, int order) {
  return StencilSpec(rank, order, /*banded=*/true, {});
}

}  // namespace nustencil::core
