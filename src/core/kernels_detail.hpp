// Internal cross-TU hooks of the kernel engine: each ISA translation
// unit exports exactly one factory (plus a "was this ISA compiled in"
// probe).  On targets where the compiler cannot produce the ISA the
// factory returns nullptr and the dispatcher falls back.
#pragma once

#include "core/kernels.hpp"

namespace nustencil::core::detail {

KernelFn sse2_kernel(int ntaps, bool banded, KernelVariant variant);
bool sse2_compiled();

/// `fma == true` selects the fused-multiply-add variants (not bit-exact
/// against the scalar kernels); requires host AVX2 *and* FMA.
KernelFn avx2_kernel(int ntaps, bool banded, KernelVariant variant, bool fma);

/// Kernel engine v2: in-register rotation over the unit-stride taps of
/// the canonical rank-3 star of `order` (1..3), optionally with
/// non-temporal streaming stores (`stream`; requires 64B-aligned row
/// bases and a valid KernelArgs::xcap from the caller) and, for the FMA
/// tier, semi-stencil-style update splitting.  Returns nullptr for
/// unsupported orders or when the ISA is not compiled in.
KernelFn avx2_kernel_v2(int order, bool banded, bool stream, bool fma);

bool avx2_compiled();
bool avx2_fma_compiled();

}  // namespace nustencil::core::detail
