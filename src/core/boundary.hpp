// Boundary conditions.
//
// The paper's schemes use periodic boundaries (thread parallelograms wrap
// around, Section III-A).  The library additionally supports Dirichlet
// boundaries per dimension (frozen cells of width `order` at both ends),
// which the wavefront-traversal dimension of CATS/nuCATS requires: time
// skewing along a periodic axis has a cyclic dependence seam, so that axis
// is pinned instead.
#pragma once

#include <array>

#include "core/box.hpp"
#include "core/stencil.hpp"

namespace nustencil::core {

enum class BoundaryKind { Periodic, Dirichlet };

struct Boundary {
  std::array<BoundaryKind, 3> dims{BoundaryKind::Periodic, BoundaryKind::Periodic,
                                   BoundaryKind::Periodic};

  static Boundary periodic() { return Boundary{}; }

  static Boundary dirichlet() {
    return Boundary{{BoundaryKind::Dirichlet, BoundaryKind::Dirichlet,
                     BoundaryKind::Dirichlet}};
  }

  BoundaryKind operator[](int d) const { return dims[static_cast<std::size_t>(d)]; }
  BoundaryKind& operator[](int d) { return dims[static_cast<std::size_t>(d)]; }

  bool all_periodic(int rank) const {
    for (int d = 0; d < rank; ++d)
      if (dims[static_cast<std::size_t>(d)] != BoundaryKind::Periodic) return false;
    return true;
  }
};

/// The updatable region: the full domain, shrunk by `order` at both ends of
/// every Dirichlet dimension.
inline Box updatable_box(const Coord& shape, const StencilSpec& stencil,
                         const Boundary& bc) {
  Box b;
  b.lo = Coord::filled(shape.rank(), 0);
  b.hi = shape;
  for (int d = 0; d < shape.rank(); ++d) {
    if (bc[d] == BoundaryKind::Dirichlet) {
      b.lo[d] += stencil.order();
      b.hi[d] -= stencil.order();
    }
  }
  return b;
}

}  // namespace nustencil::core
