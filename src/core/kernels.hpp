// Tap-specialized stencil kernel engine with runtime SIMD dispatch.
//
// Every scheme funnels its cell updates through one inner-row kernel, so
// this is the hottest code in the repo.  The engine provides that kernel
// in three ISA flavours (scalar / SSE2 / AVX2, plus an opt-in AVX2+FMA
// variant) times two coefficient layouts (constant star, banded matrix),
// each fully unrolled for the paper's hot tap counts (7/13/19-point —
// 3D orders 1..3, but keyed on the tap count alone, so e.g. the 2D
// order-3 13-point star hits the same specialization) with a
// runtime-`ntaps` generic fallback for everything else.
//
// The SIMD flavours live in their own translation units compiled with
// just the ISA flags they need (not -march=native), so a baseline x86-64
// build still contains the AVX2 kernels and picks them at *runtime* via
// CPUID.  Selection happens once per Executor, not per row.
//
// Bit-exactness contract: all non-FMA variants produce bitwise-identical
// results to the scalar kernel (same per-cell tap summation order, no FP
// contraction — the kernel TUs are compiled with -ffp-contract=off), so
// scheme-vs-reference comparisons stay exact no matter which variant the
// dispatcher picks.  The FMA variant trades that for throughput and is
// off by default.
#pragma once

#include <string>

#include "common/types.hpp"

namespace nustencil::core {

inline constexpr int kMaxOrder = 8;
inline constexpr int kMaxTaps = 2 * kMaxOrder * 3 + 1;

/// User-facing kernel selection policy.
///   Auto        — best ISA the host supports, tap-specialized when possible
///   Scalar/SSE2/AVX2 — force one ISA (downgraded if unsupported)
///   FMA         — AVX2 with fused multiply-add (NOT bit-exact vs scalar)
///   GenericSimd — best ISA but the legacy kernel: a faithful
///                 reproduction of the pre-engine SIMD path (runtime tap
///                 loop, one vector and one accumulator per iteration),
///                 kept as the benchmarking baseline
enum class KernelPolicy { Auto, Scalar, SSE2, AVX2, FMA, GenericSimd };

/// Which body a kernel uses for a given tap count.
///   Specialized — fully unrolled tap chain; falls back to Generic when
///                 no unrolled variant exists for the tap count
///   Generic     — runtime tap loop, but register-blocked with hoisted
///                 coefficients like the specialized bodies
///   Legacy      — the pre-engine path, byte-for-byte behaviourally: one
///                 vector per iteration, a single accumulator chain,
///                 coefficients re-broadcast from memory every iteration
enum class KernelVariant { Specialized, Generic, Legacy };

/// Parses "auto|scalar|sse2|avx2|fma|generic" (case-insensitive); throws
/// Error listing the valid names otherwise.
KernelPolicy parse_kernel_policy(const std::string& name);
std::string to_string(KernelPolicy policy);

/// Write-field store discipline of the vector kernels.
///   Auto    — stream when the sweep's working set is at least LLC-sized
///             and the layout allows it (64B-aligned rows)
///   Stream  — force non-temporal stores whenever the layout allows
///   Regular — always write through the cache hierarchy
enum class StorePolicy { Auto, Stream, Regular };

/// Parses "auto|stream|regular" (case-insensitive); throws Error listing
/// the valid names otherwise.
StorePolicy parse_store_policy(const std::string& name);
std::string to_string(StorePolicy policy);

/// Sweep working-set threshold for StorePolicy::Auto: the host LLC
/// capacity when the C library reports it, else 16 MiB.  Streaming below
/// this size would evict the write field from a cache it fits in.
Index stream_auto_threshold_bytes();

enum class KernelIsa { Scalar, SSE2, AVX2 };
std::string to_string(KernelIsa isa);

/// Host CPU features, probed once via CPUID (works regardless of the
/// flags this binary was compiled with).
struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
  bool fma = false;
  static const CpuFeatures& host();
};

/// Per-sweep kernel context: everything that is loop-invariant across the
/// rows of one update_box call, hoisted out of the per-row path.
struct KernelArgs {
  double* dst = nullptr;                 ///< destination buffer (t+1)
  const double* src = nullptr;           ///< source buffer (t)
  const double* coeffs = nullptr;        ///< constant case: one per tap
  const double* const* bands = nullptr;  ///< banded case: one array per tap
  int ntaps = 0;                         ///< used by the generic kernels
  /// Row storage capacity in elements past the row base (the field's
  /// xstride).  The rotated kernels may read the centre source row
  /// anywhere in [row, row + xcap) while computing [x0, x1); 0 (the
  /// default) means "unknown" and confines every read to the v1 contract
  /// ([x0 - order, x1 + order) around each tap base).
  Index xcap = 0;
};

/// One row update: dst[db+x] = sum_p coeff_p(db+x) * src[bases[p]+x] for
/// x in [x0, x1).  `bases` holds per-tap source row bases with the x
/// offset folded in; wrap columns are the caller's job.
using KernelFn = void (*)(const KernelArgs& args, const Index* bases, Index db,
                          Index x0, Index x1);

/// The outcome of kernel selection, fixed once per Executor.
struct KernelChoice {
  KernelFn fn = nullptr;
  KernelIsa isa = KernelIsa::Scalar;
  KernelVariant variant = KernelVariant::Generic;  ///< what actually runs
  bool fma = false;
  bool banded = false;
  /// Kernel engine v2: the unit-stride taps come from in-register
  /// rotation over one aligned load per cache line instead of 2*order+1
  /// overlapping unaligned loads per vector.
  bool rotated = false;
  /// Kernel engine v2: the write field uses non-temporal streaming
  /// stores (requires 64B-aligned rows; the caller must pass the row
  /// bases and KernelArgs::xcap of an aligned layout).
  bool stream = false;
  int ntaps = 0;
  /// Tap count fully unrolled?
  bool specialized() const { return variant == KernelVariant::Specialized; }
  /// e.g. "avx2+rot/7pt/const" or "sse2+generic/9pt/banded"; streaming
  /// stores append "+nt".
  std::string name() const;
};

/// Everything kernel selection wants to know about the sweep, beyond the
/// policy: the stencil geometry (rotation is keyed on the canonical
/// rank-3 star layout), the storage alignment, and the store policy with
/// the working-set size its Auto heuristic needs.
struct KernelRequest {
  int ntaps = 0;
  bool banded = false;
  int rank = 0;   ///< 0 = unknown (disables rotation/streaming)
  int order = 0;
  bool rows_aligned = false;  ///< 64B row bases and xstride % 8 == 0
  StorePolicy stores = StorePolicy::Auto;
  Index bytes_touched = 0;  ///< bytes one sweep reads + writes (Auto heuristic)
};

/// True when a fully unrolled variant exists for this tap count.
bool kernel_has_specialization(int ntaps);

/// True when the ISA's kernels were compiled into this binary.
bool kernel_isa_compiled(KernelIsa isa);

/// Compiled AND supported by the host CPU.
bool kernel_isa_supported(KernelIsa isa);

/// Low-level selection at a fixed ISA (no host checks — the caller must
/// only run the result on a machine that supports `isa`).
KernelChoice select_kernel_isa(KernelIsa isa, bool fma, int ntaps, bool banded,
                               KernelVariant variant = KernelVariant::Specialized);

/// Policy-level selection against the host CPU: resolves Auto, downgrades
/// unsupported requests (FMA -> AVX2 -> SSE2 -> Scalar).
KernelChoice select_kernel(KernelPolicy policy, int ntaps, bool banded);

/// Full selection: additionally considers the v2 rotated kernels (AVX2,
/// canonical rank-3 stars of order 1..3) and the store policy (streaming
/// only on aligned rows).  The 3-argument overload above is the subset
/// with rank unknown, which can never rotate or stream.
KernelChoice select_kernel(KernelPolicy policy, const KernelRequest& request);

/// Human-readable report for `nustencil --explain`: detected CPU
/// features, the policy, the chosen variant and why.
std::string explain_kernel_choice(KernelPolicy policy, int ntaps, bool banded);
std::string explain_kernel_choice(KernelPolicy policy, const KernelRequest& request);

}  // namespace nustencil::core
