// Typed grid storage.
//
// A Field is a dense, page-aligned array of doubles over an N-D shape
// (dimension 0 = unit stride).  A Problem bundles everything one iterative
// stencil run needs: the double-buffered value field (the paper runs "two
// copies of X"), the stencil, and — for the banded-matrix case — one band
// field per stencil tap.  Fields register with a numa::PageTable when the
// run is instrumented, so first-touch ownership and traffic can be tracked.
#pragma once

#include <optional>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "core/stencil.hpp"
#include "numa/page_table.hpp"

namespace nustencil::core {

/// The deterministic hash-based initial condition shared by
/// Problem::initialize/fill_row and the red-black smoother, so in-place
/// and double-buffered experiments start from identical data.
double initial_value(Index cell, unsigned seed);

/// Row padding policy for Field storage.
///   None   — dense layout, xstride == shape[0] (bitwise status quo; every
///            pre-existing dense-layout consumer keeps working unchanged)
///   Rows64 — pad the unit-stride dimension to a multiple of 8 doubles so
///            every row starts on a 64-byte cache-line boundary and the
///            vector kernels can issue aligned loads and non-temporal
///            stores on rows of any logical extent
enum class FieldPad { None, Rows64 };

class Field {
 public:
  explicit Field(Coord shape, FieldPad pad = FieldPad::None);

  const Coord& shape() const { return shape_; }
  const Coord& strides() const { return strides_; }
  Index volume() const { return volume_; }

  /// Storage extent of the unit-stride dimension (== shape[0] when dense;
  /// round_up(shape[0], 8) under FieldPad::Rows64).
  Index xstride() const { return xstride_; }
  /// Allocated elements, padding included (== volume() when dense).
  Index storage_volume() const { return storage_volume_; }
  /// Every row base 64-byte aligned (always true for Rows64 padding and
  /// for dense layouts whose x extent is a multiple of 8).
  bool rows_aligned() const;

  double* data() { return data_; }
  const double* data() const { return data_; }

  double& at(const Coord& pos) { return data_[linear_index(pos, strides_)]; }
  double at(const Coord& pos) const { return data_[linear_index(pos, strides_)]; }

  /// Registers this field's storage in `pages` (idempotent per table).
  void attach(numa::PageTable& pages, const std::string& name);
  bool attached() const { return region_.has_value(); }
  numa::RegionId region() const;

  /// Byte offset of element `elem` within the region (elements are doubles).
  static Index byte_of(Index elem) { return elem * static_cast<Index>(sizeof(double)); }

 private:
  Coord shape_;
  Coord strides_;
  Index volume_;
  Index xstride_;
  Index storage_volume_;
  AlignedBuffer buffer_;
  double* data_;
  std::optional<numa::RegionId> region_;
};

/// The complete state of one iterative stencil problem.
class Problem {
 public:
  /// Constant-coefficient problem on `shape` with double buffering.  All
  /// fields (both value buffers and every band) share one layout given by
  /// `pad`; the default dense layout is byte-for-byte the historical one.
  Problem(Coord shape, StencilSpec stencil, FieldPad pad = FieldPad::None);

  const Coord& shape() const { return shape_; }
  const StencilSpec& stencil() const { return stencil_; }

  /// Buffer holding the values of time step `t` (two-copy Jacobi layout).
  Field& buffer(long t) { return u_[static_cast<std::size_t>(t & 1)]; }
  const Field& buffer(long t) const { return u_[static_cast<std::size_t>(t & 1)]; }

  /// Band field for tap `p` (banded stencils only).
  Field& band(int p);
  const Field& band(int p) const;
  bool has_bands() const { return !bands_.empty(); }

  /// Fills buffer 0 with a deterministic pseudo-random initial condition
  /// and, for banded stencils, fills the bands with stable per-cell
  /// coefficients (positive, rows summing to 1).
  void initialize(unsigned seed = 42);

  /// Fills cells [begin, end) (linear *storage* indices) of buffer 0 and
  /// the bands — the same values initialize() would write, so NUMA-aware
  /// schemes can first-touch their tiles in parallel without changing the
  /// data.  Values are keyed on the *logical* cell id (identical to the
  /// storage index for dense layouts), so padded and dense problems start
  /// from identical per-cell data; padding cells are written as zero.
  void fill_row(Index begin, Index end, unsigned seed = 42);

  /// Registers all fields with `pages`.
  void attach(numa::PageTable& pages);

  Index volume() const { return u_[0].volume(); }
  Index storage_volume() const { return u_[0].storage_volume(); }
  bool rows_aligned() const { return u_[0].rows_aligned(); }

  /// Bytes one full-domain sweep reads + writes (both value buffers plus
  /// every band, storage layout included) — the working-set estimate the
  /// StorePolicy::Auto streaming heuristic compares against the LLC.
  Index sweep_bytes() const {
    return (2 + static_cast<Index>(bands_.size())) * storage_volume() *
           static_cast<Index>(sizeof(double));
  }

 private:
  Coord shape_;
  StencilSpec stencil_;
  std::vector<Field> u_;      // exactly 2 entries
  std::vector<Field> bands_;  // npoints entries for banded stencils
};

}  // namespace nustencil::core
