#include "core/reference.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/executor.hpp"

namespace nustencil::core {

void reference_run(Problem& problem, long timesteps) {
  Executor exec(problem);
  Box domain;
  domain.lo = Coord::filled(problem.shape().rank(), 0);
  domain.hi = problem.shape();
  for (long t = 0; t < timesteps; ++t) exec.update_box(domain, t, /*tid=*/0);
}

double max_rel_diff(const Field& a, const Field& b) {
  NUSTENCIL_CHECK(a.volume() == b.volume(), "max_rel_diff: shape mismatch");
  double worst = 0.0;
  for (Index i = 0; i < a.volume(); ++i) {
    const double x = a.data()[i], y = b.data()[i];
    const double denom = std::max({1.0, std::fabs(x), std::fabs(y)});
    worst = std::max(worst, std::fabs(x - y) / denom);
  }
  return worst;
}

}  // namespace nustencil::core
