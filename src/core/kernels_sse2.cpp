// SSE2 kernel flavours.  Compiled with -msse2 (baseline on x86-64) and
// -ffp-contract=off; on targets without SSE2 the factory compiles to a
// stub and the dispatcher never offers this ISA.
#include "core/kernels_detail.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include "core/kernels_impl.hpp"

namespace {

struct VecSse2 {
  using reg = __m128d;
  static constexpr int width = 2;
  static reg load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, reg v) { _mm_storeu_pd(p, v); }
  static reg broadcast(double c) { return _mm_set1_pd(c); }
  static reg mul(reg a, reg b) { return _mm_mul_pd(a, b); }
  static reg fmadd(reg a, reg b, reg acc) {
    return _mm_add_pd(_mm_mul_pd(a, b), acc);
  }
};

}  // namespace

namespace nustencil::core::detail {

KernelFn sse2_kernel(int ntaps, bool banded, KernelVariant variant) {
  return kernel_impl::pick_kernel<VecSse2>(ntaps, banded, variant);
}

bool sse2_compiled() { return true; }

}  // namespace nustencil::core::detail

#else  // !__SSE2__

namespace nustencil::core::detail {

KernelFn sse2_kernel(int, bool, KernelVariant) { return nullptr; }
bool sse2_compiled() { return false; }

}  // namespace nustencil::core::detail

#endif
