// SSE2 kernel flavours.  Like kernels_avx2.cpp, the vector code sits in
// a `#pragma GCC target("sse2")` region instead of a per-file -msse2 flag
// (a no-op on x86-64 where SSE2 is baseline, but it keeps the i386 build
// honest); -ffp-contract=off comes from the TU's compile options.  On
// targets without a GNU-flavoured x86 compiler the factory compiles to a
// stub and the dispatcher never offers this ISA.
#include "core/kernels_detail.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))

// Shared headers before the pragma so their inline definitions keep
// baseline codegen (see kernels_avx2.cpp).
#include <emmintrin.h>

#include <utility>

#include "core/kernels.hpp"

#if defined(__clang__)
#pragma clang attribute push(__attribute__((target("sse2"))), \
                             apply_to = function)
#else
#pragma GCC push_options
#pragma GCC target("sse2")
#endif

#include "core/kernels_impl.hpp"

namespace {

using nustencil::core::KernelFn;
using nustencil::core::KernelVariant;

struct VecSse2 {
  using reg = __m128d;
  static constexpr int width = 2;
  static reg load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, reg v) { _mm_storeu_pd(p, v); }
  static reg broadcast(double c) { return _mm_set1_pd(c); }
  static reg mul(reg a, reg b) { return _mm_mul_pd(a, b); }
  static reg fmadd(reg a, reg b, reg acc) {
    return _mm_add_pd(_mm_mul_pd(a, b), acc);
  }
};

// In-region wrapper so every template instantiation happens inside the
// target region.
KernelFn pick_sse2(int ntaps, bool banded, KernelVariant variant) {
  return nustencil::core::kernel_impl::pick_kernel<VecSse2>(ntaps, banded,
                                                            variant);
}

}  // namespace

#if defined(__clang__)
#pragma clang attribute pop
#else
#pragma GCC pop_options
#endif

namespace nustencil::core::detail {

KernelFn sse2_kernel(int ntaps, bool banded, KernelVariant variant) {
  return pick_sse2(ntaps, banded, variant);
}

bool sse2_compiled() { return true; }

}  // namespace nustencil::core::detail

#else  // not x86 with a GNU-flavoured compiler

namespace nustencil::core::detail {

KernelFn sse2_kernel(int, bool, KernelVariant) { return nullptr; }
bool sse2_compiled() { return false; }

}  // namespace nustencil::core::detail

#endif
