#include "core/redblack.hpp"

#include "common/error.hpp"

namespace nustencil::core {

RedBlackExecutor::RedBlackExecutor(Field& field, const StencilSpec& stencil)
    : field_(&field), stencil_(&stencil) {
  NUSTENCIL_CHECK(!stencil.banded(), "RedBlackExecutor: constant coefficients only");
  NUSTENCIL_CHECK(stencil.rank() == field.shape().rank(),
                  "RedBlackExecutor: rank mismatch");
  const int colors = stencil.order() + 1;
  const Coord& shape = field.shape();
  for (int d = 0; d < shape.rank(); ++d)
    NUSTENCIL_CHECK(shape[d] % colors == 0,
                    "RedBlackExecutor: periodic multi-colouring of an order-s "
                    "stencil needs extents divisible by s+1");
  nx_ = shape[0];
  ny_ = shape.rank() >= 2 ? shape[1] : 1;
  nz_ = shape.rank() >= 3 ? shape[2] : 1;
}

Index RedBlackExecutor::update_color(const Box& box, int color) {
  NUSTENCIL_CHECK(color >= 0 && color < num_colors(),
                  "RedBlackExecutor: colour out of range");
  if (box.empty()) return 0;
  const int rank = field_->shape().rank();
  const Index lo0 = box.lo[0], hi0 = box.hi[0];
  const Index lo1 = rank >= 2 ? box.lo[1] : 0, hi1 = rank >= 2 ? box.hi[1] : 1;
  const Index lo2 = rank >= 3 ? box.lo[2] : 0, hi2 = rank >= 3 ? box.hi[2] : 1;
  NUSTENCIL_CHECK(lo0 >= 0 && hi0 <= nx_ && lo1 >= 0 && hi1 <= ny_ && lo2 >= 0 &&
                      hi2 <= nz_,
                  "RedBlackExecutor: physical coordinates required");

  double* u = field_->data();
  const auto& c = stencil_->coeffs();
  const auto& points = stencil_->points();
  const Index colors = num_colors();
  const Index sy = nx_, sz = nx_ * ny_;
  Index done = 0;
  for (Index z = lo2; z < hi2; ++z) {
    for (Index y = lo1; y < hi1; ++y) {
      const Index row = y * sy + z * sz;
      // Cells with (x + y + z) % colors == color.
      const Index x_start = lo0 + pmod(color - lo0 - y - z, colors);
      for (Index x = x_start; x < hi0; x += colors) {
        const Index i = row + x;
        double acc = c[0] * u[i];
        for (std::size_t k = 1; k < points.size(); ++k) {
          const StencilPoint& pt = points[k];
          Index j;
          if (pt.dim == 0)
            j = row + pmod(x + pt.offset, nx_);
          else if (pt.dim == 1)
            j = pmod(y + pt.offset, ny_) * sy + z * sz + x;
          else
            j = y * sy + pmod(z + pt.offset, nz_) * sz + x;
          acc += c[k] * u[j];
        }
        u[i] = acc;
        ++done;
      }
    }
  }
  return done;
}

Index RedBlackExecutor::iterate(const Box& box) {
  Index done = 0;
  for (int color = 0; color < num_colors(); ++color) done += update_color(box, color);
  return done;
}

void redblack_run(Field& field, const StencilSpec& stencil, long iterations) {
  RedBlackExecutor exec(field, stencil);
  Box whole;
  whole.lo = Coord::filled(field.shape().rank(), 0);
  whole.hi = field.shape();
  for (long t = 0; t < iterations; ++t) exec.iterate(whole);
}

}  // namespace nustencil::core
