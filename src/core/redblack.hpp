// In-place multi-colour Gauss-Seidel iteration — the "one copy of X"
// update style the paper contrasts with its two-copy Jacobi testbed
// (Section IV-B).  Lexicographic Gauss-Seidel is inherently sequential;
// colouring is its standard parallel form: cells of one colour never read
// each other, so each colour sweeps in parallel.  For a star stencil of
// order s, colouring by (x + y + z) mod (s+1) suffices: every tap
// displaces along exactly one axis by 1..s, changing the colour by a
// nonzero amount mod (s+1).  s = 1 gives the classic red-black ordering.
//
// This module is deliberately independent of the double-buffered Problem:
// it owns a single Field and exposes the same box-level interface the
// schemes use, so NUMA-aware first-touch decompositions apply unchanged.
#pragma once

#include "core/box.hpp"
#include "core/field.hpp"

namespace nustencil::core {

enum class Color { Red, Black };

/// In-place multi-colour Gauss-Seidel executor over one field.
class RedBlackExecutor {
 public:
  /// `stencil` must be a constant star stencil; order s uses s+1 colours
  /// ((x+y+z) mod (s+1)), so every periodic extent must be divisible by
  /// s+1 for the colouring to wrap consistently.
  RedBlackExecutor(Field& field, const StencilSpec& stencil);

  /// Number of colours (stencil order + 1; 2 = classic red-black).
  int num_colors() const { return stencil_->order() + 1; }

  /// Updates all cells of colour `color` (0..num_colors()-1) inside `box`
  /// (physical coordinates) in place; such cells never read each other.
  /// Returns the number of cell updates performed.
  Index update_color(const Box& box, int color);

  /// Red-black convenience for order-1 stencils.
  Index update_box(const Box& box, Color color) {
    return update_color(box, color == Color::Red ? 0 : 1);
  }

  /// One full iteration over `box`: all colours in ascending order.
  Index iterate(const Box& box);

  const Field& field() const { return *field_; }

 private:
  Field* field_;
  const StencilSpec* stencil_;
  Index nx_, ny_, nz_;
};

/// Convenience: `iterations` full red-black sweeps over the whole field.
void redblack_run(Field& field, const StencilSpec& stencil, long iterations);

}  // namespace nustencil::core
