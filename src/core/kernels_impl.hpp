// Kernel bodies, templated over a per-ISA vector traits class.
//
// Each ISA translation unit (kernels.cpp, kernels_sse2.cpp,
// kernels_avx2.cpp) defines its traits struct inside an anonymous
// namespace and includes this header, so every instantiation has
// internal linkage and is compiled with exactly that TU's ISA flags —
// the linker can never merge an AVX2-compiled instantiation into a
// baseline build's scalar path.
//
// A traits class V provides:
//   using reg = <vector register type>;
//   static constexpr int width;                 // doubles per register
//   static reg  load(const double* p);          // unaligned
//   static void store(double* p, reg v);
//   static reg  broadcast(double c);
//   static reg  mul(reg a, reg b);
//   static reg  fmadd(reg a, reg b, reg acc);   // a*b + acc; the non-FMA
//                                               // traits expand to
//                                               // add(mul(a, b), acc)
//
// Bit-exactness: per cell the taps are summed strictly in spec order
// (acc = c0*s0; acc += c1*s1; ...), identically in every lane, in the
// vector remainder and in the scalar tail, so all non-FMA variants agree
// bitwise with the scalar kernel.
#pragma once

#include <utility>

#include "core/kernels.hpp"

namespace nustencil::core::kernel_impl {

/// NTAPS > 0: fully unrolled specialization; NTAPS == 0: runtime ntaps.
template <class V, int NTAPS, bool BANDED>
void kernel_row(const KernelArgs& k, const Index* bases, Index db, Index x0,
                Index x1) {
  using reg = typename V::reg;
  constexpr int W = V::width;
  const int nt = NTAPS > 0 ? NTAPS : k.ntaps;
  double* __restrict dst = k.dst;
  const double* __restrict src = k.src;
  const double* __restrict coeffs = k.coeffs;

  // Hoist the per-row invariants into locals once: per-tap source row
  // bases, broadcast coefficient registers (constant case) or band row
  // pointers (banded case).  The pre-engine kernels re-broadcast
  // coefficients every x iteration because the compiler could not prove
  // the store to dst does not alias them.
  constexpr int kCap = NTAPS > 0 ? NTAPS : kMaxTaps;
  Index base[static_cast<std::size_t>(kCap)];
  [[maybe_unused]] reg creg[static_cast<std::size_t>(kCap)];
  [[maybe_unused]] const double* bp[static_cast<std::size_t>(kCap)];
  for (int p = 0; p < nt; ++p) base[p] = bases[p];
  if constexpr (BANDED) {
    for (int p = 0; p < nt; ++p) bp[p] = k.bands[p] + db;
  } else {
    for (int p = 0; p < nt; ++p) creg[p] = V::broadcast(coeffs[p]);
  }

  // Applies body(p) for taps p = 1..nt-1.  Expanded as a compile-time
  // fold when NTAPS is a constant: a plain `for (p < NTAPS)` loop stays
  // rolled at -O2, which spills creg[] to the stack and re-reads every
  // tap base per iteration — the unroll is the whole point of the
  // specialization.
  const auto for_each_tap = [&](auto&& body) {
    if constexpr (NTAPS > 0) {
      [&]<std::size_t... P>(std::index_sequence<P...>) {
        (body(static_cast<int>(P) + 1), ...);
      }(std::make_index_sequence<static_cast<std::size_t>(NTAPS > 0 ? NTAPS - 1 : 0)>{});
    } else {
      for (int p = 1; p < nt; ++p) body(p);
    }
  };

  Index x = x0;
  // Register-blocked main loop: four vectors in flight along x.  The
  // per-lane tap chain is serial (required for bit-exactness), so the
  // independent accumulator chains are what hides the add latency.
  for (; x + 4 * W <= x1; x += 4 * W) {
    reg a0, a1, a2, a3;
    if constexpr (BANDED) {
      a0 = V::mul(V::load(bp[0] + x), V::load(src + base[0] + x));
      a1 = V::mul(V::load(bp[0] + x + W), V::load(src + base[0] + x + W));
      a2 = V::mul(V::load(bp[0] + x + 2 * W), V::load(src + base[0] + x + 2 * W));
      a3 = V::mul(V::load(bp[0] + x + 3 * W), V::load(src + base[0] + x + 3 * W));
      for_each_tap([&](int p) {
        a0 = V::fmadd(V::load(bp[p] + x), V::load(src + base[p] + x), a0);
        a1 = V::fmadd(V::load(bp[p] + x + W), V::load(src + base[p] + x + W), a1);
        a2 = V::fmadd(V::load(bp[p] + x + 2 * W), V::load(src + base[p] + x + 2 * W), a2);
        a3 = V::fmadd(V::load(bp[p] + x + 3 * W), V::load(src + base[p] + x + 3 * W), a3);
      });
    } else {
      a0 = V::mul(creg[0], V::load(src + base[0] + x));
      a1 = V::mul(creg[0], V::load(src + base[0] + x + W));
      a2 = V::mul(creg[0], V::load(src + base[0] + x + 2 * W));
      a3 = V::mul(creg[0], V::load(src + base[0] + x + 3 * W));
      for_each_tap([&](int p) {
        a0 = V::fmadd(creg[p], V::load(src + base[p] + x), a0);
        a1 = V::fmadd(creg[p], V::load(src + base[p] + x + W), a1);
        a2 = V::fmadd(creg[p], V::load(src + base[p] + x + 2 * W), a2);
        a3 = V::fmadd(creg[p], V::load(src + base[p] + x + 3 * W), a3);
      });
    }
    V::store(dst + db + x, a0);
    V::store(dst + db + x + W, a1);
    V::store(dst + db + x + 2 * W, a2);
    V::store(dst + db + x + 3 * W, a3);
  }
  // Two-vector remainder.
  for (; x + 2 * W <= x1; x += 2 * W) {
    reg a0, a1;
    if constexpr (BANDED) {
      a0 = V::mul(V::load(bp[0] + x), V::load(src + base[0] + x));
      a1 = V::mul(V::load(bp[0] + x + W), V::load(src + base[0] + x + W));
      for_each_tap([&](int p) {
        a0 = V::fmadd(V::load(bp[p] + x), V::load(src + base[p] + x), a0);
        a1 = V::fmadd(V::load(bp[p] + x + W), V::load(src + base[p] + x + W), a1);
      });
    } else {
      a0 = V::mul(creg[0], V::load(src + base[0] + x));
      a1 = V::mul(creg[0], V::load(src + base[0] + x + W));
      for_each_tap([&](int p) {
        a0 = V::fmadd(creg[p], V::load(src + base[p] + x), a0);
        a1 = V::fmadd(creg[p], V::load(src + base[p] + x + W), a1);
      });
    }
    V::store(dst + db + x, a0);
    V::store(dst + db + x + W, a1);
  }
  // Single-vector remainder.
  for (; x + W <= x1; x += W) {
    reg a0;
    if constexpr (BANDED) {
      a0 = V::mul(V::load(bp[0] + x), V::load(src + base[0] + x));
      for_each_tap([&](int p) {
        a0 = V::fmadd(V::load(bp[p] + x), V::load(src + base[p] + x), a0);
      });
    } else {
      a0 = V::mul(creg[0], V::load(src + base[0] + x));
      for_each_tap([&](int p) {
        a0 = V::fmadd(creg[p], V::load(src + base[p] + x), a0);
      });
    }
    V::store(dst + db + x, a0);
  }
  // Scalar tail, same tap order.
  for (; x < x1; ++x) {
    double acc;
    if constexpr (BANDED) {
      acc = bp[0][x] * src[base[0] + x];
      for (int p = 1; p < nt; ++p) acc += bp[p][x] * src[base[p] + x];
    } else {
      acc = coeffs[0] * src[base[0] + x];
      for (int p = 1; p < nt; ++p) acc += coeffs[p] * src[base[p] + x];
    }
    dst[db + x] = acc;
  }
}

/// Faithful reproduction of the pre-engine SIMD path, kept as the
/// benchmarking baseline (KernelPolicy::GenericSimd): one vector per x
/// iteration, a single serial accumulator chain, runtime tap count, and
/// coefficients re-broadcast from memory every iteration (no __restrict,
/// so the compiler must assume the dst store may alias them — exactly
/// the codegen the engine replaced).  Same per-cell tap order as
/// kernel_row, so it stays inside the bit-exactness contract.
template <class V, bool BANDED>
void kernel_row_legacy(const KernelArgs& k, const Index* bases, Index db,
                       Index x0, Index x1) {
  using reg = typename V::reg;
  constexpr int W = V::width;
  const int nt = k.ntaps;
  double* dst = k.dst;
  const double* src = k.src;

  Index x = x0;
  for (; x + W <= x1; x += W) {
    reg acc;
    if constexpr (BANDED) {
      acc = V::mul(V::load(k.bands[0] + db + x), V::load(src + bases[0] + x));
      for (int p = 1; p < nt; ++p)
        acc = V::fmadd(V::load(k.bands[p] + db + x),
                       V::load(src + bases[p] + x), acc);
    } else {
      acc = V::mul(V::broadcast(k.coeffs[0]), V::load(src + bases[0] + x));
      for (int p = 1; p < nt; ++p)
        acc = V::fmadd(V::broadcast(k.coeffs[p]),
                       V::load(src + bases[p] + x), acc);
    }
    V::store(dst + db + x, acc);
  }
  for (; x < x1; ++x) {
    double acc;
    if constexpr (BANDED) {
      acc = k.bands[0][db + x] * src[bases[0] + x];
      for (int p = 1; p < nt; ++p) acc += k.bands[p][db + x] * src[bases[p] + x];
    } else {
      acc = k.coeffs[0] * src[bases[0] + x];
      for (int p = 1; p < nt; ++p) acc += k.coeffs[p] * src[bases[p] + x];
    }
    dst[db + x] = acc;
  }
}

/// The variant table of one traits class: specialized for the hot tap
/// counts (3D 7/13/19-point stars and tap-count twins), generic otherwise,
/// with the legacy baseline available on request.
template <class V>
KernelFn pick_kernel(int ntaps, bool banded, KernelVariant variant) {
  if (variant == KernelVariant::Legacy)
    return banded ? &kernel_row_legacy<V, true> : &kernel_row_legacy<V, false>;
  if (variant == KernelVariant::Specialized) {
    switch (ntaps) {
      case 7:
        return banded ? &kernel_row<V, 7, true> : &kernel_row<V, 7, false>;
      case 13:
        return banded ? &kernel_row<V, 13, true> : &kernel_row<V, 13, false>;
      case 19:
        return banded ? &kernel_row<V, 19, true> : &kernel_row<V, 19, false>;
      default:
        break;
    }
  }
  return banded ? &kernel_row<V, 0, true> : &kernel_row<V, 0, false>;
}

}  // namespace nustencil::core::kernel_impl
