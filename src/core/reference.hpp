// Reference executor and result comparison.
//
// The reference is a plain double-buffered Jacobi sweep: every scheme must
// produce the same values (Jacobi updates are order-independent, so the
// match is exact up to identical FP operations).
#pragma once

#include "core/field.hpp"

namespace nustencil::core {

/// Runs `timesteps` full-domain Jacobi updates single-threaded.  The result
/// of time step `timesteps` is in problem.buffer(timesteps).
void reference_run(Problem& problem, long timesteps);

/// Maximum |a-b| / max(1, |a|, |b|) over both fields.
double max_rel_diff(const Field& a, const Field& b);

}  // namespace nustencil::core
