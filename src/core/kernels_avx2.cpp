// AVX2 (and AVX2+FMA) kernel flavours.  Compiled with -mavx2 -mfma
// -ffp-contract=off even in baseline builds, so a generic x86-64 binary
// carries these kernels and enables them at runtime via CPUID.  The
// plain AVX2 variants use separate mul + add and stay bit-identical to
// the scalar kernels; only the explicit-intrinsic FMA variants contract.
#include "core/kernels_detail.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "core/kernels_impl.hpp"

namespace {

struct VecAvx2 {
  using reg = __m256d;
  static constexpr int width = 4;
  static reg load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg broadcast(double c) { return _mm256_set1_pd(c); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  static reg fmadd(reg a, reg b, reg acc) {
    return _mm256_add_pd(_mm256_mul_pd(a, b), acc);
  }
};

#if defined(__FMA__)
struct VecAvx2Fma : VecAvx2 {
  static reg fmadd(reg a, reg b, reg acc) {
    return _mm256_fmadd_pd(a, b, acc);
  }
};
#endif

}  // namespace

namespace nustencil::core::detail {

KernelFn avx2_kernel(int ntaps, bool banded, KernelVariant variant, bool fma) {
#if defined(__FMA__)
  if (fma)
    return kernel_impl::pick_kernel<VecAvx2Fma>(ntaps, banded, variant);
#else
  if (fma) return nullptr;
#endif
  return kernel_impl::pick_kernel<VecAvx2>(ntaps, banded, variant);
}

bool avx2_compiled() { return true; }

bool avx2_fma_compiled() {
#if defined(__FMA__)
  return true;
#else
  return false;
#endif
}

}  // namespace nustencil::core::detail

#else  // !__AVX2__

namespace nustencil::core::detail {

KernelFn avx2_kernel(int, bool, KernelVariant, bool) { return nullptr; }
bool avx2_compiled() { return false; }
bool avx2_fma_compiled() { return false; }

}  // namespace nustencil::core::detail

#endif
