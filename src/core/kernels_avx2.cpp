// AVX2 (and AVX2+FMA) kernel flavours.
//
// This TU is compiled with the *baseline* flags; the AVX2 code below sits
// inside a `#pragma GCC target("avx2,fma")` region instead of a per-file
// -mavx2 flag, so a generic x86-64 build still carries these kernels and
// enables them at runtime via CPUID, while everything the region does NOT
// cover (notably shared inline helpers from common headers, which are
// included *before* the pragma) keeps baseline codegen — the linker can
// never pick an AVX2-compiled copy of a shared comdat symbol for the
// scalar path.
//
// Two engines live here:
//   v1 — the traits-instantiated kernel_row bodies (kernels_impl.hpp):
//        per-tap unaligned vector loads, register-blocked along x.
//   v2 — rotated kernels for the canonical rank-3 stars (order 1..3):
//        the 2*order+1 unit-stride taps are produced by in-register
//        rotation of one aligned centre-row load per cache line, with
//        optional non-temporal streaming stores and, in the FMA tier,
//        semi-stencil-style update splitting.
//
// The plain AVX2 variants (v1 and v2) use separate mul + add and keep the
// strict spec-order tap chain, so they stay bit-identical to the scalar
// kernels; only the explicit-intrinsic FMA variants contract.
#include "core/kernels_detail.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))

// Everything shared with other TUs is included before the target pragma
// so its inline definitions are compiled for the baseline ISA.
#include <immintrin.h>

#include <algorithm>
#include <type_traits>
#include <utility>

#include "core/kernels.hpp"

#if defined(__clang__)
#pragma clang attribute push(__attribute__((target("avx2,fma"))), \
                             apply_to = function)
#else
#pragma GCC push_options
#pragma GCC target("avx2,fma")
#endif

// The v1 template bodies are included *inside* the region: they are only
// ever instantiated with the anonymous-namespace traits below, so every
// instantiation has internal linkage and AVX2 codegen, and none of it can
// leak into another TU.
#include "core/kernels_impl.hpp"

namespace {

using nustencil::Index;
using nustencil::round_up;
using nustencil::core::KernelArgs;
using nustencil::core::KernelFn;
using nustencil::core::KernelVariant;

struct VecAvx2 {
  using reg = __m256d;
  static constexpr int width = 4;
  static reg load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg broadcast(double c) { return _mm256_set1_pd(c); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  static reg fmadd(reg a, reg b, reg acc) {
    return _mm256_add_pd(_mm256_mul_pd(a, b), acc);
  }
};

struct VecAvx2Fma : VecAvx2 {
  static reg fmadd(reg a, reg b, reg acc) {
    return _mm256_fmadd_pd(a, b, acc);
  }
};

template <int N>
using IC = std::integral_constant<int, N>;

/// Lanes K..K+3 of the 8-double concatenation [a0..a3 b0..b3] — the
/// in-register rotation primitive.  vpermpd/valignr have no 256-bit
/// double forms, so K = 1..3 are built from one cross-lane permute
/// (latency 3) plus at most one in-lane shuffle (latency 1); every K
/// reuses the same permute result, so a full tap fan-out from (prev,
/// cur, next) costs two permutes total.
template <int K>
inline __m256d shift(__m256d a, __m256d b) {
  static_assert(K >= 0 && K <= 4);
  if constexpr (K == 0) {
    return a;
  } else if constexpr (K == 4) {
    return b;
  } else if constexpr (K == 2) {
    return _mm256_permute2f128_pd(a, b, 0x21);  // [a2 a3 b0 b1]
  } else if constexpr (K == 1) {
    const __m256d t = _mm256_permute2f128_pd(a, b, 0x21);
    return _mm256_shuffle_pd(a, t, 0b0101);  // [a1 a2 a3 b0]
  } else {  // K == 3
    const __m256d t = _mm256_permute2f128_pd(a, b, 0x21);
    return _mm256_shuffle_pd(t, b, 0b0101);  // [a3 b0 b1 b2]
  }
}

/// Kernel engine v2 row body for the canonical rank-3 star of ORDER
/// (taps in spec order: centre, x -ORDER..-1 then +1..+ORDER, then the
/// y/z taps).  The unit-stride taps are rotated out of a rolling window
/// of aligned centre-row loads: one new 32B load per output vector
/// instead of 2*ORDER+1 overlapping unaligned loads.  STREAM selects
/// non-temporal stores (the caller must pass 64B-aligned row bases and a
/// valid KernelArgs::xcap); FMA additionally splits the update
/// semi-stencil-style into independent axis/off-axis chains (NOT
/// bit-exact — FMA-tier only).
template <int ORDER, bool BANDED, bool STREAM, bool FMA>
void kernel_row_v2(const KernelArgs& k, const Index* bases, Index db,
                   Index x0, Index x1) {
  constexpr int W = 4;
  constexpr int NT = 6 * ORDER + 1;
  double* __restrict dst = k.dst;
  const double* __restrict src = k.src;
  const double* __restrict coeffs = k.coeffs;

  const Index row = bases[0];
  const Index xcap = k.xcap;

  Index base[NT];
  [[maybe_unused]] __m256d creg[NT];
  [[maybe_unused]] const double* bp[NT];
  for (int p = 0; p < NT; ++p) base[p] = bases[p];
  if constexpr (BANDED) {
    for (int p = 0; p < NT; ++p) bp[p] = k.bands[p] + db;
  } else {
    for (int p = 0; p < NT; ++p) creg[p] = _mm256_set1_pd(coeffs[p]);
  }

  // Scalar cell update, identical tap order to the scalar kernel's tail.
  const auto scalar_cell = [&](Index x) {
    double acc;
    if constexpr (BANDED) {
      acc = bp[0][x] * src[base[0] + x];
      for (int p = 1; p < NT; ++p) acc += bp[p][x] * src[base[p] + x];
    } else {
      acc = coeffs[0] * src[base[0] + x];
      for (int p = 1; p < NT; ++p) acc += coeffs[p] * src[base[p] + x];
    }
    dst[db + x] = acc;
  };

  // One output vector at x, taps supplied by `tap(IC<p>{})`.  Non-FMA:
  // one serial chain in strict spec order (bit-exact vs scalar).  FMA,
  // order >= 2: the unit-stride half and the off-axis half accumulate in
  // independent chains — half the serial fmadd latency of the 13/19-point
  // updates — and combine at the end.  Only the FMA tier may reorder the
  // summation like that; the bit-exactness contract forbids it elsewhere.
  const auto accumulate = [&](Index x, auto&& tap) -> __m256d {
    const auto coeff = [&](auto pc) -> __m256d {
      constexpr int P = decltype(pc)::value;
      if constexpr (BANDED)
        return _mm256_loadu_pd(bp[P] + x);
      else
        return creg[P];
    };
    const auto step = [&](auto pc, __m256d acc) -> __m256d {
      if constexpr (FMA)
        return _mm256_fmadd_pd(coeff(pc), tap(pc), acc);
      else
        return _mm256_add_pd(_mm256_mul_pd(coeff(pc), tap(pc)), acc);
    };
    const auto chain = [&]<int FIRST, int COUNT>(IC<FIRST>, IC<COUNT>) {
      __m256d acc = _mm256_mul_pd(coeff(IC<FIRST>{}), tap(IC<FIRST>{}));
      [&]<std::size_t... P>(std::index_sequence<P...>) {
        ((acc = step(IC<FIRST + 1 + static_cast<int>(P)>{}, acc)), ...);
      }(std::make_index_sequence<COUNT - 1>{});
      return acc;
    };
    if constexpr (FMA && ORDER >= 2) {
      const __m256d axis = chain(IC<0>{}, IC<2 * ORDER + 1>{});
      const __m256d rest = chain(IC<2 * ORDER + 1>{}, IC<NT - 2 * ORDER - 1>{});
      return _mm256_add_pd(axis, rest);
    } else {
      return chain(IC<0>{}, IC<NT>{});
    }
  };

  // Rotated update: the x-dimension taps come from shifting the rolling
  // (prev, cur, next) window of the centre row; y/z taps load from their
  // own rows as usual.
  const auto update_rotated = [&](Index x, __m256d prev, __m256d cur,
                                  __m256d next) -> __m256d {
    const auto tap = [&](auto pc) -> __m256d {
      constexpr int P = decltype(pc)::value;
      if constexpr (P == 0) {
        return cur;
      } else if constexpr (P <= 2 * ORDER) {
        // Spec x-tap order: p = 1..ORDER are offsets -ORDER..-1,
        // p = ORDER+1..2*ORDER are offsets +1..+ORDER.
        constexpr int off = P <= ORDER ? P - 1 - ORDER : P - ORDER;
        if constexpr (off < 0)
          return shift<W + off>(prev, cur);
        else
          return shift<off>(cur, next);
      } else {
        return _mm256_loadu_pd(src + base[P] + x);
      }
    };
    return accumulate(x, tap);
  };

  // Per-tap-load update, the v1 read pattern: used near the row end when
  // the rolling next-block read would cross xcap, and for callers that
  // did not provide xcap.  Reads stay within the v1 contract
  // ([x0 - ORDER, x1 + ORDER) around each tap base).
  const auto update_per_tap = [&](Index x) -> __m256d {
    const auto tap = [&](auto pc) -> __m256d {
      constexpr int P = decltype(pc)::value;
      return _mm256_loadu_pd(src + base[P] + x);
    };
    return accumulate(x, tap);
  };

  Index x = x0;
  if (xcap > 0) {
    // Aligned-rows path.  Peel scalar cells up to the next W-aligned
    // block (and always past the first W cells, so the rolling window's
    // prev load at row + x - W stays inside the row's storage).
    const Index xa = std::min(x1, round_up(std::max<Index>(x0, W), W));
    for (; x < xa; ++x) scalar_cell(x);
    // From here x stays a multiple of W, so streaming stores (which
    // require 32B alignment) are legal whenever the caller honoured the
    // aligned-rows contract.
    const auto store = [&](Index xs, __m256d v) {
      if constexpr (STREAM)
        _mm256_stream_pd(dst + db + xs, v);
      else
        _mm256_storeu_pd(dst + db + xs, v);
    };
    if (x + W <= x1 && x + 2 * W <= xcap) {
      __m256d prev = _mm256_loadu_pd(src + row + x - W);
      __m256d cur = _mm256_loadu_pd(src + row + x);
      // Four output vectors per iteration: four new aligned loads feed
      // four rotated updates, so the shuffle results are all reused and
      // the independent accumulator chains hide the add latency.
      for (; x + 4 * W <= x1 && x + 5 * W <= xcap; x += 4 * W) {
        const __m256d r1 = _mm256_loadu_pd(src + row + x + W);
        const __m256d r2 = _mm256_loadu_pd(src + row + x + 2 * W);
        const __m256d r3 = _mm256_loadu_pd(src + row + x + 3 * W);
        const __m256d r4 = _mm256_loadu_pd(src + row + x + 4 * W);
        store(x, update_rotated(x, prev, cur, r1));
        store(x + W, update_rotated(x + W, cur, r1, r2));
        store(x + 2 * W, update_rotated(x + 2 * W, r1, r2, r3));
        store(x + 3 * W, update_rotated(x + 3 * W, r2, r3, r4));
        prev = r3;
        cur = r4;
      }
      for (; x + W <= x1 && x + 2 * W <= xcap; x += W) {
        const __m256d next = _mm256_loadu_pd(src + row + x + W);
        store(x, update_rotated(x, prev, cur, next));
        prev = cur;
        cur = next;
      }
    }
    for (; x + W <= x1; x += W) store(x, update_per_tap(x));
    // Make the non-temporal stores globally visible before the kernel
    // returns (the executor's inter-sweep handoff assumes completed rows
    // are readable).
    if constexpr (STREAM) _mm_sfence();
  } else {
    // No xcap: rotation and streaming are off the table (both need the
    // aligned-rows contract); per-tap loads with regular stores match v1.
    for (; x + W <= x1; x += W) _mm256_storeu_pd(dst + db + x, update_per_tap(x));
  }
  for (; x < x1; ++x) scalar_cell(x);
}

// In-region selection wrappers: taking the template addresses *here*
// forces every instantiation to happen inside the target region.
KernelFn pick_v1_avx2(int ntaps, bool banded, KernelVariant variant,
                      bool fma) {
  using namespace nustencil::core;
  if (fma) return kernel_impl::pick_kernel<VecAvx2Fma>(ntaps, banded, variant);
  return kernel_impl::pick_kernel<VecAvx2>(ntaps, banded, variant);
}

template <int ORDER>
KernelFn pick_v2_order(bool banded, bool stream, bool fma) {
  if (banded) {
    if (stream)
      return fma ? &kernel_row_v2<ORDER, true, true, true>
                 : &kernel_row_v2<ORDER, true, true, false>;
    return fma ? &kernel_row_v2<ORDER, true, false, true>
               : &kernel_row_v2<ORDER, true, false, false>;
  }
  if (stream)
    return fma ? &kernel_row_v2<ORDER, false, true, true>
               : &kernel_row_v2<ORDER, false, true, false>;
  return fma ? &kernel_row_v2<ORDER, false, false, true>
             : &kernel_row_v2<ORDER, false, false, false>;
}

KernelFn pick_v2_avx2(int order, bool banded, bool stream, bool fma) {
  switch (order) {
    case 1:
      return pick_v2_order<1>(banded, stream, fma);
    case 2:
      return pick_v2_order<2>(banded, stream, fma);
    case 3:
      return pick_v2_order<3>(banded, stream, fma);
    default:
      return nullptr;
  }
}

}  // namespace

#if defined(__clang__)
#pragma clang attribute pop
#else
#pragma GCC pop_options
#endif

namespace nustencil::core::detail {

KernelFn avx2_kernel(int ntaps, bool banded, KernelVariant variant, bool fma) {
  return pick_v1_avx2(ntaps, banded, variant, fma);
}

KernelFn avx2_kernel_v2(int order, bool banded, bool stream, bool fma) {
  return pick_v2_avx2(order, banded, stream, fma);
}

bool avx2_compiled() { return true; }
bool avx2_fma_compiled() { return true; }

}  // namespace nustencil::core::detail

#else  // not x86 with a GNU-flavoured compiler

namespace nustencil::core::detail {

KernelFn avx2_kernel(int, bool, KernelVariant, bool) { return nullptr; }
KernelFn avx2_kernel_v2(int, bool, bool, bool) { return nullptr; }
bool avx2_compiled() { return false; }
bool avx2_fma_compiled() { return false; }

}  // namespace nustencil::core::detail

#endif
