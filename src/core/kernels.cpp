// Kernel engine: scalar flavours, CPUID feature probe, policy parsing
// and the one-time dispatch that replaces the old per-row branch chains.
#include "core/kernels.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/error.hpp"
#include "core/kernels_detail.hpp"
#include "core/kernels_impl.hpp"

namespace {

std::string lowercase(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return lower;
}

struct VecScalar {
  using reg = double;
  static constexpr int width = 1;
  static reg load(const double* p) { return *p; }
  static void store(double* p, reg v) { *p = v; }
  static reg broadcast(double c) { return c; }
  static reg mul(reg a, reg b) { return a * b; }
  static reg fmadd(reg a, reg b, reg acc) { return a * b + acc; }
};

}  // namespace

namespace nustencil::core {

KernelPolicy parse_kernel_policy(const std::string& name) {
  // Case-insensitive, like scheme names: --kernel=AVX2 and --kernel=avx2
  // are the same request; the canonical lowercase spellings stay in
  // to_string().
  const std::string lower = lowercase(name);
  if (lower == "auto") return KernelPolicy::Auto;
  if (lower == "scalar") return KernelPolicy::Scalar;
  if (lower == "sse2") return KernelPolicy::SSE2;
  if (lower == "avx2") return KernelPolicy::AVX2;
  if (lower == "fma") return KernelPolicy::FMA;
  if (lower == "generic") return KernelPolicy::GenericSimd;
  throw Error("unknown kernel policy '" + name +
              "' (expected auto, scalar, sse2, avx2, fma or generic)");
}

std::string to_string(KernelPolicy policy) {
  switch (policy) {
    case KernelPolicy::Auto: return "auto";
    case KernelPolicy::Scalar: return "scalar";
    case KernelPolicy::SSE2: return "sse2";
    case KernelPolicy::AVX2: return "avx2";
    case KernelPolicy::FMA: return "fma";
    case KernelPolicy::GenericSimd: return "generic";
  }
  return "?";
}

StorePolicy parse_store_policy(const std::string& name) {
  const std::string lower = lowercase(name);
  if (lower == "auto") return StorePolicy::Auto;
  if (lower == "stream") return StorePolicy::Stream;
  if (lower == "regular") return StorePolicy::Regular;
  throw Error("unknown store policy '" + name +
              "' (expected auto, stream or regular)");
}

std::string to_string(StorePolicy policy) {
  switch (policy) {
    case StorePolicy::Auto: return "auto";
    case StorePolicy::Stream: return "stream";
    case StorePolicy::Regular: return "regular";
  }
  return "?";
}

Index stream_auto_threshold_bytes() {
  static const Index threshold = [] {
    Index llc = 0;
#if defined(_SC_LEVEL3_CACHE_SIZE)
    if (llc <= 0) llc = static_cast<Index>(sysconf(_SC_LEVEL3_CACHE_SIZE));
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
    if (llc <= 0) llc = static_cast<Index>(sysconf(_SC_LEVEL2_CACHE_SIZE));
#endif
    return llc > 0 ? llc : Index(16) << 20;
  }();
  return threshold;
}

std::string to_string(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::Scalar: return "scalar";
    case KernelIsa::SSE2: return "sse2";
    case KernelIsa::AVX2: return "avx2";
  }
  return "?";
}

const CpuFeatures& CpuFeatures::host() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    __builtin_cpu_init();
    f.sse2 = __builtin_cpu_supports("sse2") != 0;
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.fma = __builtin_cpu_supports("fma") != 0;
#endif
    return f;
  }();
  return features;
}

std::string KernelChoice::name() const {
  std::ostringstream os;
  os << to_string(isa);
  if (fma) os << "+fma";
  if (variant == KernelVariant::Generic) os << "+generic";
  if (variant == KernelVariant::Legacy) os << "+legacy";
  if (rotated) os << "+rot";
  if (stream) os << "+nt";
  os << '/' << ntaps << "pt/" << (banded ? "banded" : "const");
  return os.str();
}

bool kernel_has_specialization(int ntaps) {
  return ntaps == 7 || ntaps == 13 || ntaps == 19;
}

bool kernel_isa_compiled(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::Scalar: return true;
    case KernelIsa::SSE2: return detail::sse2_compiled();
    case KernelIsa::AVX2: return detail::avx2_compiled();
  }
  return false;
}

bool kernel_isa_supported(KernelIsa isa) {
  if (!kernel_isa_compiled(isa)) return false;
  const CpuFeatures& cpu = CpuFeatures::host();
  switch (isa) {
    case KernelIsa::Scalar: return true;
    case KernelIsa::SSE2: return cpu.sse2;
    case KernelIsa::AVX2: return cpu.avx2;
  }
  return false;
}

KernelChoice select_kernel_isa(KernelIsa isa, bool fma, int ntaps, bool banded,
                               KernelVariant variant) {
  NUSTENCIL_CHECK(ntaps >= 1 && ntaps <= kMaxTaps,
                  "select_kernel_isa: tap count out of range");
  KernelChoice choice;
  choice.isa = isa;
  choice.fma = fma && isa == KernelIsa::AVX2;
  choice.banded = banded;
  choice.ntaps = ntaps;
  // Specialized silently degrades to Generic for tap counts without an
  // unrolled body; Legacy is always honoured.
  choice.variant =
      variant == KernelVariant::Specialized && !kernel_has_specialization(ntaps)
          ? KernelVariant::Generic
          : variant;
  switch (isa) {
    case KernelIsa::Scalar:
      choice.fn = kernel_impl::pick_kernel<VecScalar>(ntaps, banded, choice.variant);
      break;
    case KernelIsa::SSE2:
      choice.fn = detail::sse2_kernel(ntaps, banded, choice.variant);
      break;
    case KernelIsa::AVX2:
      choice.fn = detail::avx2_kernel(ntaps, banded, choice.variant, choice.fma);
      break;
  }
  NUSTENCIL_CHECK(choice.fn != nullptr,
                  "kernel ISA " + to_string(isa) + (choice.fma ? "+fma" : "") +
                      " is not compiled into this binary");
  return choice;
}

namespace {

KernelIsa best_supported_isa() {
  if (kernel_isa_supported(KernelIsa::AVX2)) return KernelIsa::AVX2;
  if (kernel_isa_supported(KernelIsa::SSE2)) return KernelIsa::SSE2;
  return KernelIsa::Scalar;
}

/// Resolves a policy to (isa, fma, variant) against the host.
struct Resolution {
  KernelIsa isa = KernelIsa::Scalar;
  bool fma = false;
  KernelVariant variant = KernelVariant::Specialized;
  bool downgraded = false;  ///< the policy asked for more than the host has
};

Resolution resolve_policy(KernelPolicy policy) {
  Resolution r;
  switch (policy) {
    case KernelPolicy::Scalar:
      break;
    case KernelPolicy::SSE2:
      r.isa = kernel_isa_supported(KernelIsa::SSE2) ? KernelIsa::SSE2
                                                    : KernelIsa::Scalar;
      r.downgraded = r.isa != KernelIsa::SSE2;
      break;
    case KernelPolicy::AVX2:
      r.isa = kernel_isa_supported(KernelIsa::AVX2) ? KernelIsa::AVX2
                                                    : best_supported_isa();
      r.downgraded = r.isa != KernelIsa::AVX2;
      break;
    case KernelPolicy::FMA:
      if (kernel_isa_supported(KernelIsa::AVX2) && CpuFeatures::host().fma &&
          detail::avx2_fma_compiled()) {
        r.isa = KernelIsa::AVX2;
        r.fma = true;
      } else {
        r.isa = best_supported_isa();
        r.downgraded = true;
      }
      break;
    case KernelPolicy::GenericSimd:
      r.variant = KernelVariant::Legacy;
      r.isa = best_supported_isa();
      break;
    case KernelPolicy::Auto:
      r.isa = best_supported_isa();
      break;
  }
  return r;
}

/// The v2 rotated kernels exist for the canonical rank-3 stars whose
/// unit-stride taps are offsets -order..-1, +1..+order (stencil.hpp tap
/// order): 3D orders 1..3, i.e. the 7/13/19-point specializations.
bool rotation_eligible(const Resolution& r, const KernelRequest& q) {
  return r.isa == KernelIsa::AVX2 && r.variant == KernelVariant::Specialized &&
         q.rank == 3 && q.order >= 1 && q.order <= 3 &&
         q.ntaps == 6 * q.order + 1;
}

/// Streaming needs the rotated kernels (their aligned store path) plus an
/// aligned layout; Auto additionally wants an LLC-busting working set —
/// streaming a cache-resident sweep would only evict the write field.
bool stream_wanted(const KernelRequest& q) {
  if (!q.rows_aligned || q.stores == StorePolicy::Regular) return false;
  return q.stores == StorePolicy::Stream ||
         q.bytes_touched >= stream_auto_threshold_bytes();
}

}  // namespace

KernelChoice select_kernel(KernelPolicy policy, int ntaps, bool banded) {
  const Resolution r = resolve_policy(policy);
  return select_kernel_isa(r.isa, r.fma, ntaps, banded, r.variant);
}

KernelChoice select_kernel(KernelPolicy policy, const KernelRequest& request) {
  const Resolution r = resolve_policy(policy);
  if (rotation_eligible(r, request)) {
    const bool stream = stream_wanted(request);
    const KernelFn fn =
        detail::avx2_kernel_v2(request.order, request.banded, stream, r.fma);
    if (fn) {
      KernelChoice choice;
      choice.fn = fn;
      choice.isa = KernelIsa::AVX2;
      choice.variant = KernelVariant::Specialized;
      choice.fma = r.fma;
      choice.banded = request.banded;
      choice.rotated = true;
      choice.stream = stream;
      choice.ntaps = request.ntaps;
      return choice;
    }
  }
  return select_kernel_isa(r.isa, r.fma, request.ntaps, request.banded,
                           r.variant);
}

std::string explain_kernel_choice(KernelPolicy policy, int ntaps, bool banded) {
  KernelRequest request;
  request.ntaps = ntaps;
  request.banded = banded;
  return explain_kernel_choice(policy, request);
}

std::string explain_kernel_choice(KernelPolicy policy,
                                  const KernelRequest& request) {
  const int ntaps = request.ntaps;
  const bool banded = request.banded;
  const CpuFeatures& cpu = CpuFeatures::host();
  const Resolution r = resolve_policy(policy);
  const KernelChoice choice = select_kernel(policy, request);
  auto yn = [](bool b) { return b ? "yes" : "no"; };

  std::ostringstream os;
  os << "kernel engine:\n"
     << "  CPU features (cpuid)    : sse2=" << yn(cpu.sse2)
     << " avx2=" << yn(cpu.avx2) << " fma=" << yn(cpu.fma) << '\n'
     << "  compiled ISAs           : scalar"
     << (kernel_isa_compiled(KernelIsa::SSE2) ? " sse2" : "")
     << (kernel_isa_compiled(KernelIsa::AVX2) ? " avx2" : "") << '\n'
     << "  policy                  : " << to_string(policy) << '\n'
     << "  tap count               : " << ntaps << " ("
     << (banded ? "banded" : "constant") << " coefficients, "
     << (choice.variant == KernelVariant::Specialized
             ? "fully unrolled specialization"
             : choice.variant == KernelVariant::Legacy
                   ? "legacy pre-engine kernel"
                   : "generic runtime-taps kernel")
     << ")\n"
     << "  selected kernel         : " << choice.name() << '\n'
     << "  why                     : ";
  if (r.downgraded)
    os << "policy '" << to_string(policy)
       << "' exceeds what this host supports; downgraded to the widest "
          "available ISA";
  else if (policy == KernelPolicy::Auto)
    os << "auto picks the widest ISA the host supports";
  else if (policy == KernelPolicy::GenericSimd)
    os << "generic keeps the pre-engine legacy kernel as a benchmarking "
          "baseline";
  else
    os << "policy forced";
  os << '\n'
     << "  row loads               : "
     << (choice.rotated
             ? "in-register rotation (one aligned load per cache line)"
             : "per-tap vector loads")
     << '\n'
     << "  write-field stores      : " << to_string(request.stores) << " -> "
     << (choice.stream ? "streaming (non-temporal)" : "regular");
  if (!choice.stream) {
    if (request.stores == StorePolicy::Regular)
      os << " (forced)";
    else if (!request.rows_aligned)
      os << " (rows not 64B-aligned)";
    else if (!choice.rotated)
      os << " (no rotated kernel for this stencil/policy)";
    else
      os << " (sweep " << request.bytes_touched << " B < LLC threshold "
         << stream_auto_threshold_bytes() << " B)";
  }
  os << '\n'
     << "  bit-exact vs scalar     : " << yn(!choice.fma)
     << (choice.fma ? " (FMA contracts mul+add; use for wall-clock runs only)"
                    : "")
     << '\n';
  return os.str();
}
}  // namespace nustencil::core
