#include "core/executor.hpp"

#include <algorithm>
#include <array>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/error.hpp"

namespace nustencil::core {

namespace {

/// Constant-coefficient fast path: dst[db+x] = sum_p c[p] * src[base[p]+x].
void kernel_const_scalar(double* dst, const double* src, const double* coeffs,
                         const Index* bases, int ntaps, Index db, Index x0, Index x1) {
  for (Index x = x0; x < x1; ++x) {
    double acc = coeffs[0] * src[bases[0] + x];
    for (int p = 1; p < ntaps; ++p) acc += coeffs[p] * src[bases[p] + x];
    dst[db + x] = acc;
  }
}

/// Banded fast path: dst[db+x] = sum_p band[p][db+x] * src[base[p]+x].
void kernel_banded_scalar(double* dst, const double* src, const double* const* bandp,
                          const Index* bases, int ntaps, Index db, Index x0, Index x1) {
  for (Index x = x0; x < x1; ++x) {
    double acc = bandp[0][db + x] * src[bases[0] + x];
    for (int p = 1; p < ntaps; ++p) acc += bandp[p][db + x] * src[bases[p] + x];
    dst[db + x] = acc;
  }
}

#if defined(__SSE2__)
void kernel_const_sse2(double* dst, const double* src, const double* coeffs,
                       const Index* bases, int ntaps, Index db, Index x0, Index x1) {
  Index x = x0;
  for (; x + 2 <= x1; x += 2) {
    __m128d acc = _mm_mul_pd(_mm_set1_pd(coeffs[0]), _mm_loadu_pd(src + bases[0] + x));
    for (int p = 1; p < ntaps; ++p) {
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_set1_pd(coeffs[p]),
                                       _mm_loadu_pd(src + bases[p] + x)));
    }
    _mm_storeu_pd(dst + db + x, acc);
  }
  if (x < x1) kernel_const_scalar(dst, src, coeffs, bases, ntaps, db, x, x1);
}

void kernel_banded_sse2(double* dst, const double* src, const double* const* bandp,
                        const Index* bases, int ntaps, Index db, Index x0, Index x1) {
  Index x = x0;
  for (; x + 2 <= x1; x += 2) {
    __m128d acc = _mm_mul_pd(_mm_loadu_pd(bandp[0] + db + x), _mm_loadu_pd(src + bases[0] + x));
    for (int p = 1; p < ntaps; ++p) {
      acc = _mm_add_pd(acc, _mm_mul_pd(_mm_loadu_pd(bandp[p] + db + x),
                                       _mm_loadu_pd(src + bases[p] + x)));
    }
    _mm_storeu_pd(dst + db + x, acc);
  }
  if (x < x1) kernel_banded_scalar(dst, src, bandp, bases, ntaps, db, x, x1);
}
#endif  // __SSE2__

#if defined(__AVX2__)
// AVX2 paths process 4 doubles per iteration.  Separate mul + add (no FMA
// contraction) keeps the results bit-identical to the scalar and SSE2
// kernels, so every scheme/reference comparison stays exact.
void kernel_const_avx2(double* dst, const double* src, const double* coeffs,
                       const Index* bases, int ntaps, Index db, Index x0, Index x1) {
  Index x = x0;
  for (; x + 4 <= x1; x += 4) {
    __m256d acc = _mm256_mul_pd(_mm256_set1_pd(coeffs[0]),
                                _mm256_loadu_pd(src + bases[0] + x));
    for (int p = 1; p < ntaps; ++p) {
      acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(coeffs[p]),
                                             _mm256_loadu_pd(src + bases[p] + x)));
    }
    _mm256_storeu_pd(dst + db + x, acc);
  }
  if (x < x1) kernel_const_sse2(dst, src, coeffs, bases, ntaps, db, x, x1);
}

void kernel_banded_avx2(double* dst, const double* src, const double* const* bandp,
                        const Index* bases, int ntaps, Index db, Index x0, Index x1) {
  Index x = x0;
  for (; x + 4 <= x1; x += 4) {
    __m256d acc = _mm256_mul_pd(_mm256_loadu_pd(bandp[0] + db + x),
                                _mm256_loadu_pd(src + bases[0] + x));
    for (int p = 1; p < ntaps; ++p) {
      acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(bandp[p] + db + x),
                                             _mm256_loadu_pd(src + bases[p] + x)));
    }
    _mm256_storeu_pd(dst + db + x, acc);
  }
  if (x < x1) kernel_banded_sse2(dst, src, bandp, bases, ntaps, db, x, x1);
}
#endif  // __AVX2__

}  // namespace

struct Executor::RowPlan {
  Index x0v = 0, x1v = 0;       ///< virtual x range
  Index src_row = 0;            ///< physical base of the centre source row
  Index dst_row = 0;            ///< physical base of the destination row
  std::array<Index, kMaxTaps> base{};  ///< per-tap src row base, x-offset folded
};

Executor::Executor(Problem& problem, Instrumentation instr, bool use_simd)
    : problem_(&problem), instr_(instr), use_simd_(use_simd) {
  const Coord& shape = problem.shape();
  NUSTENCIL_CHECK(problem.stencil().order() <= kMaxOrder, "Executor: order too large");
  nx_ = shape[0];
  ny_ = shape.rank() >= 2 ? shape[1] : 1;
  nz_ = shape.rank() >= 3 ? shape[2] : 1;
  sy_ = nx_;
  sz_ = nx_ * ny_;
}

Index Executor::update_box(const Box& box, long t, int tid) {
  if (box.empty()) return 0;
  const int rank = problem_->shape().rank();
  NUSTENCIL_DCHECK(box.rank() == rank, "update_box: rank mismatch");

  const Index lo0 = box.lo[0], hi0 = box.hi[0];
  const Index lo1 = rank >= 2 ? box.lo[1] : 0, hi1 = rank >= 2 ? box.hi[1] : 1;
  const Index lo2 = rank >= 3 ? box.lo[2] : 0, hi2 = rank >= 3 ? box.hi[2] : 1;
  NUSTENCIL_DCHECK(hi0 - lo0 <= nx_ && hi1 - lo1 <= ny_ && hi2 - lo2 <= nz_,
                   "update_box: box wider than the periodic domain");

  const StencilSpec& st = problem_->stencil();
  const auto& points = st.points();
  const int ntaps = st.npoints();

  RowPlan plan;
  plan.x0v = lo0;
  plan.x1v = hi0;
  Index done = 0;
  for (Index vz = lo2; vz < hi2; ++vz) {
    const Index pz = pmod(vz, nz_);
    for (Index vy = lo1; vy < hi1; ++vy) {
      const Index py = pmod(vy, ny_);
      const Index row = py * sy_ + pz * sz_;
      plan.src_row = row;
      plan.dst_row = row;
      for (int p = 0; p < ntaps; ++p) {
        const StencilPoint& pt = points[static_cast<std::size_t>(p)];
        Index base = row;
        if (pt.dim == 0) {
          base += pt.offset;  // folded x offset; wrap handled per segment
        } else if (pt.dim == 1) {
          base = pmod(py + pt.offset, ny_) * sy_ + pz * sz_;
        } else if (pt.dim == 2) {
          base = py * sy_ + pmod(pz + pt.offset, nz_) * sz_;
        }
        plan.base[static_cast<std::size_t>(p)] = base;
      }
      update_row(plan, t, tid);
      if (instr_.traffic || instr_.cache_sim) account_row(plan, t, tid);
      done += hi0 - lo0;
    }
  }
  updates_ += done;
  return done;
}

void Executor::update_row(const RowPlan& plan, long t, int tid) {
  (void)tid;
  const StencilSpec& st = problem_->stencil();
  const auto& points = st.points();
  const int ntaps = st.npoints();
  const int s = st.order();
  double* dst = problem_->buffer(t + 1).data();
  const double* src = problem_->buffer(t).data();

  std::array<const double*, kMaxTaps> bandp{};
  if (st.banded()) {
    for (int p = 0; p < ntaps; ++p) bandp[static_cast<std::size_t>(p)] = problem_->band(p).data();
  }

  // Fully checked + wrapped scalar loop, used for boundary cells and for
  // every cell when the dependency checker is active.
  auto slow_cells = [&](Index a, Index b) {
    for (Index x = a; x < b; ++x) {
      const Index cell = plan.dst_row + x;
      double acc = 0.0;
      for (int p = 0; p < ntaps; ++p) {
        const StencilPoint& pt = points[static_cast<std::size_t>(p)];
        Index idx;
        if (pt.dim == 0) {
          idx = plan.src_row + pmod(x + pt.offset, nx_);
        } else {
          idx = plan.base[static_cast<std::size_t>(p)] + x;
        }
        if (instr_.checker) instr_.checker->check_input(idx, t);
        const double c = st.banded() ? bandp[static_cast<std::size_t>(p)][cell]
                                     : st.coeffs()[static_cast<std::size_t>(p)];
        acc += c * src[idx];
      }
      if (instr_.checker) instr_.checker->commit_update(cell, t);
      dst[cell] = acc;
    }
  };

  auto fast_cells = [&](Index a, Index b) {
    if (a >= b) return;
    if (st.banded()) {
#if defined(__AVX2__)
      if (use_simd_) {
        kernel_banded_avx2(dst, src, bandp.data(), plan.base.data(), ntaps, plan.dst_row, a, b);
        return;
      }
#elif defined(__SSE2__)
      if (use_simd_) {
        kernel_banded_sse2(dst, src, bandp.data(), plan.base.data(), ntaps, plan.dst_row, a, b);
        return;
      }
#endif
      kernel_banded_scalar(dst, src, bandp.data(), plan.base.data(), ntaps, plan.dst_row, a, b);
    } else {
#if defined(__AVX2__)
      if (use_simd_) {
        kernel_const_avx2(dst, src, st.coeffs().data(), plan.base.data(), ntaps, plan.dst_row, a, b);
        return;
      }
#elif defined(__SSE2__)
      if (use_simd_) {
        kernel_const_sse2(dst, src, st.coeffs().data(), plan.base.data(), ntaps, plan.dst_row, a, b);
        return;
      }
#endif
      kernel_const_scalar(dst, src, st.coeffs().data(), plan.base.data(), ntaps, plan.dst_row, a, b);
    }
  };

  // Walk the virtual x range in physical segments.
  Index vx = plan.x0v;
  while (vx < plan.x1v) {
    const Index px = pmod(vx, nx_);
    const Index len = std::min(plan.x1v - vx, nx_ - px);
    const Index a = px, b = px + len;
    if (instr_.checker) {
      slow_cells(a, b);
    } else {
      const Index fast_a = std::max<Index>(a, s);
      const Index fast_b = std::min<Index>(b, nx_ - s);
      slow_cells(a, std::min<Index>(b, s));
      if (fast_a < fast_b) fast_cells(fast_a, fast_b);
      slow_cells(std::max<Index>(a, nx_ - s), b);
    }
    vx += len;
  }
}

void Executor::account_row(const RowPlan& plan, long t, int tid) {
  const StencilSpec& st = problem_->stencil();
  const auto& points = st.points();
  const int ntaps = st.npoints();
  const int s = st.order();

  const Field& srcf = problem_->buffer(t);
  const Field& dstf = problem_->buffer(t + 1);
  const bool record = instr_.traffic && srcf.attached();

  // One sink for both consumers: the NUMA traffic recorder (classifies
  // the range against first-touch page ownership) and the trace-driven
  // cache simulator (fed the real data addresses).
  auto sink = [&](const Field& field, Index e0, Index e1, bool write) {
    if (e0 >= e1) return;
    if (record)
      instr_.traffic->account(tid, field.region(), Field::byte_of(e0), Field::byte_of(e1));
    if (instr_.cache_sim)
      instr_.cache_sim->access(
          tid, reinterpret_cast<cachesim::Addr>(field.data() + e0), (e1 - e0) * 8, write);
  };

  Index vx = plan.x0v;
  while (vx < plan.x1v) {
    const Index px = pmod(vx, nx_);
    const Index len = std::min(plan.x1v - vx, nx_ - px);
    const Index a = px, b = px + len;
    // Destination row bytes.
    sink(dstf, plan.dst_row + a, plan.dst_row + b, true);
    // Centre source row, extended by the x taps (clamped at the domain edge;
    // the wrapped spill is at most `s` elements and negligible).
    sink(srcf, plan.src_row + std::max<Index>(0, a - s),
         plan.src_row + std::min<Index>(nx_, b + s), false);
    // Each distinct off-axis neighbour row.
    for (int p = 0; p < ntaps; ++p) {
      const StencilPoint& pt = points[static_cast<std::size_t>(p)];
      if (pt.dim <= 0) continue;
      const Index base = plan.base[static_cast<std::size_t>(p)];
      sink(srcf, base + a, base + b, false);
    }
    // Coefficient bands at the destination cells.
    if (st.banded()) {
      for (int p = 0; p < ntaps; ++p)
        sink(problem_->band(p), plan.dst_row + a, plan.dst_row + b, false);
    }
    vx += len;
  }
}

void Executor::first_touch_box(const Box& box, int node, unsigned seed) {
  if (box.empty()) return;
  const int rank = problem_->shape().rank();
  const Index lo0 = box.lo[0], hi0 = box.hi[0];
  const Index lo1 = rank >= 2 ? box.lo[1] : 0, hi1 = rank >= 2 ? box.hi[1] : 1;
  const Index lo2 = rank >= 3 ? box.lo[2] : 0, hi2 = rank >= 3 ? box.hi[2] : 1;
  NUSTENCIL_CHECK(lo0 >= 0 && hi0 <= nx_ && lo1 >= 0 && hi1 <= ny_ && lo2 >= 0 && hi2 <= nz_,
                  "first_touch_box: physical coordinates required");

  for (Index z = lo2; z < hi2; ++z) {
    for (Index y = lo1; y < hi1; ++y) {
      const Index row = y * sy_ + z * sz_;
      problem_->fill_row(row + lo0, row + hi0, seed);
      if (instr_.pages && problem_->buffer(0).attached()) {
        numa::PageTable& table = *instr_.pages;
        const Index b0 = Field::byte_of(row + lo0);
        const Index b1 = Field::byte_of(row + hi0);
        table.first_touch(problem_->buffer(0).region(), b0, b1, node);
        table.first_touch(problem_->buffer(1).region(), b0, b1, node);
        if (problem_->has_bands()) {
          for (int p = 0; p < problem_->stencil().npoints(); ++p)
            table.first_touch(problem_->band(p).region(), b0, b1, node);
        }
      }
    }
  }
}

}  // namespace nustencil::core
