#include "core/executor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace nustencil::core {

RowSplit compute_row_split(Index a, Index b, Index nx, int order) {
  const Index s = order;
  RowSplit r{};
  r.lo0 = a;
  // Clamp against `a` (segments can start past the boundary region) and
  // against `b` (tiny domains with nx < 2s, where the two boundary
  // regions meet — without the clamp they would overlap and every cell
  // in the overlap would be updated twice).
  r.lo1 = std::min(b, std::max(a, s));
  r.fast0 = std::max(a, s);
  r.fast1 = std::min(b, nx - s);
  if (r.fast1 < r.fast0) r.fast0 = r.fast1 = r.lo1;
  r.hi0 = std::min(b, std::max(nx - s, r.lo1));
  r.hi1 = b;
  return r;
}

struct Executor::RowPlan {
  Index x0v = 0, x1v = 0;       ///< virtual x range
  Index src_row = 0;            ///< physical base of the centre source row
  Index dst_row = 0;            ///< physical base of the destination row
  std::array<Index, kMaxTaps> base{};  ///< per-tap src row base, x-offset folded
};

Executor::Executor(Problem& problem, Instrumentation instr, KernelPolicy policy,
                   StorePolicy stores)
    : problem_(&problem), instr_(instr) {
  const Coord& shape = problem.shape();
  const StencilSpec& st = problem.stencil();
  NUSTENCIL_CHECK(st.order() <= kMaxOrder, "Executor: order too large");
  nx_ = shape[0];
  ny_ = shape.rank() >= 2 ? shape[1] : 1;
  nz_ = shape.rank() >= 3 ? shape[2] : 1;
  // Storage strides, not logical ones: under FieldPad::Rows64 a row
  // occupies xstride >= nx elements (identical for dense layouts).
  const Field& f0 = problem.buffer(0);
  xstride_ = f0.xstride();
  sy_ = shape.rank() >= 2 ? f0.strides()[1] : xstride_;
  sz_ = shape.rank() >= 3 ? f0.strides()[2] : sy_ * ny_;
  KernelRequest req;
  req.ntaps = st.npoints();
  req.banded = st.banded();
  req.rank = shape.rank();
  req.order = st.order();
  req.rows_aligned = problem.rows_aligned();
  req.stores = stores;
  req.bytes_touched = problem.sweep_bytes();
  kernel_ = select_kernel(policy, req);
  if (st.banded())
    for (int p = 0; p < st.npoints(); ++p)
      band_ptrs_[static_cast<std::size_t>(p)] = problem.band(p).data();
  if (instr_.metrics) {
    metrics::Registry& reg = *instr_.metrics;
    m_tiles_ = &reg.counter("kernel/tiles");
    m_fast_rows_ = &reg.counter("kernel/rows/" + kernel_.name());
    m_slow_cells_ = &reg.counter("kernel/slow_cells");
    m_tile_hist_ = &reg.histogram("kernel/tile_updates");
  }
}

Index Executor::update_box(const Box& box, long t, int tid) {
  if (box.empty()) return 0;
  const int rank = problem_->shape().rank();
  NUSTENCIL_DCHECK(box.rank() == rank, "update_box: rank mismatch");
  const trace::ScopedSpan span(
      trace_, trace::Phase::Tile,
      {static_cast<std::int32_t>(box.lo[0]),
       static_cast<std::int32_t>(rank >= 2 ? box.lo[1] : -1),
       static_cast<std::int32_t>(rank >= 3 ? box.lo[2] : -1), tid});

  const Index lo0 = box.lo[0], hi0 = box.hi[0];
  const Index lo1 = rank >= 2 ? box.lo[1] : 0, hi1 = rank >= 2 ? box.hi[1] : 1;
  const Index lo2 = rank >= 3 ? box.lo[2] : 0, hi2 = rank >= 3 ? box.hi[2] : 1;
  NUSTENCIL_DCHECK(hi0 - lo0 <= nx_ && hi1 - lo1 <= ny_ && hi2 - lo2 <= nz_,
                   "update_box: box wider than the periodic domain");

  const StencilSpec& st = problem_->stencil();
  const auto& points = st.points();
  const int ntaps = st.npoints();

  // Per-sweep kernel context: buffer pointers, coefficients and band
  // pointers hoisted out of the row loop once per update_box call.
  KernelArgs ka;
  ka.dst = problem_->buffer(t + 1).data();
  ka.src = problem_->buffer(t).data();
  ka.coeffs = st.coeffs().data();
  ka.bands = band_ptrs_.data();
  ka.ntaps = ntaps;
  // Row storage capacity: lets the rotated v2 kernels read the centre
  // row ahead of x1 (v1 kernels ignore it).
  ka.xcap = xstride_;

  RowPlan plan;
  plan.x0v = lo0;
  plan.x1v = hi0;
  Index done = 0;

  // The legacy baseline (KernelPolicy::GenericSimd) reproduces the
  // pre-engine update path end to end — a pmod (integer division) per
  // off-axis tap per row here, plus the per-row context rebuild in
  // update_row — so the benchmarked speedup tracks the whole engine, not
  // just the inner loop.
  const bool legacy = kernel_.variant == KernelVariant::Legacy;

  // Incremental periodic row indices: `pmod` runs once per z-plane and
  // per tap at loop entry; inside the y loop every index steps by +1
  // with a wrap compare instead.
  std::array<Index, kMaxTaps> ybase{};  // dim-1 taps: pmod(py + off, ny)
  std::array<Index, kMaxTaps> zbase{};  // dim-2 taps: pmod(pz + off, nz) * sz

  for (Index vz = lo2; vz < hi2; ++vz) {
    const Index pz = pmod(vz, nz_);
    const Index zrow = pz * sz_;
    Index py = pmod(lo1, ny_);
    for (int p = 0; p < ntaps; ++p) {
      const StencilPoint& pt = points[static_cast<std::size_t>(p)];
      if (pt.dim == 1)
        ybase[static_cast<std::size_t>(p)] = pmod(py + pt.offset, ny_);
      else if (pt.dim == 2)
        zbase[static_cast<std::size_t>(p)] = pmod(pz + pt.offset, nz_) * sz_;
    }
    for (Index vy = lo1; vy < hi1; ++vy) {
      const Index row = py * sy_ + zrow;
      plan.src_row = row;
      plan.dst_row = row;
      if (legacy) {
        const Index pyl = pmod(vy, ny_);
        for (int p = 0; p < ntaps; ++p) {
          const StencilPoint& pt = points[static_cast<std::size_t>(p)];
          Index base = row;
          if (pt.dim == 1)
            base = pmod(pyl + pt.offset, ny_) * sy_ + zrow;
          else if (pt.dim == 2)
            base = pyl * sy_ + pmod(pz + pt.offset, nz_) * sz_;
          else
            base = row + pt.offset;
          plan.base[static_cast<std::size_t>(p)] = base;
        }
      } else {
        for (int p = 0; p < ntaps; ++p) {
          const StencilPoint& pt = points[static_cast<std::size_t>(p)];
          Index base;
          if (pt.dim == 1) {
            base = ybase[static_cast<std::size_t>(p)] * sy_ + zrow;
          } else if (pt.dim == 2) {
            base = py * sy_ + zbase[static_cast<std::size_t>(p)];
          } else {
            base = row + pt.offset;  // centre and folded x taps
          }
          plan.base[static_cast<std::size_t>(p)] = base;
        }
      }
      update_row(plan, ka, t, tid);
      if (instr_.traffic || instr_.cache_sim) account_row(plan, t, tid);
      done += hi0 - lo0;
      if (++py == ny_) py = 0;
      for (int p = 0; p < ntaps; ++p) {
        if (points[static_cast<std::size_t>(p)].dim != 1) continue;
        if (++ybase[static_cast<std::size_t>(p)] == ny_)
          ybase[static_cast<std::size_t>(p)] = 0;
      }
    }
  }
  updates_ += done;
  if (m_tiles_) {
    m_tiles_->add(tid);
    m_tile_hist_->observe(tid, static_cast<std::uint64_t>(done));
  }
  if (instr_.traffic) instr_.traffic->tick_updates(tid, static_cast<std::uint64_t>(done));
  if (instr_.progress) {
    std::uint64_t local = 0, remote = 0, unowned = 0;
    if (instr_.traffic) instr_.traffic->thread_bytes(tid, local, remote, unowned);
    instr_.progress->publish(tid, static_cast<std::uint64_t>(updates_), local,
                             remote);
  }
  return done;
}

void Executor::update_row(const RowPlan& plan, const KernelArgs& ka0, long t,
                          int tid) {
  const StencilSpec& st = problem_->stencil();
  const auto& points = st.points();
  const int ntaps = ka0.ntaps;
  const int s = st.order();

  // Legacy baseline: re-derive the kernel context per row (buffer
  // pointers, coefficients, band pointer table — including the old
  // code's unconditional zero-init of the full-size table), as the
  // pre-engine update_row did.
  KernelArgs legacy_ka;
  std::array<const double*, kMaxTaps> legacy_bands;
  if (kernel_.variant == KernelVariant::Legacy) {
    legacy_bands.fill(nullptr);
    legacy_ka.dst = problem_->buffer(t + 1).data();
    legacy_ka.src = problem_->buffer(t).data();
    legacy_ka.coeffs = st.coeffs().data();
    legacy_ka.ntaps = ntaps;
    if (st.banded()) {
      for (int p = 0; p < ntaps; ++p)
        legacy_bands[static_cast<std::size_t>(p)] = problem_->band(p).data();
      legacy_ka.bands = legacy_bands.data();
    }
  }
  const KernelArgs& ka =
      kernel_.variant == KernelVariant::Legacy ? legacy_ka : ka0;
  double* dst = ka.dst;
  const double* src = ka.src;

  // Fully checked + wrapped scalar loop, used for boundary cells and for
  // every cell when the dependency checker is active.
  auto slow_cells = [&](Index a, Index b) {
    if (m_slow_cells_ && b > a)
      m_slow_cells_->add(tid, static_cast<std::uint64_t>(b - a));
    for (Index x = a; x < b; ++x) {
      const Index cell = plan.dst_row + x;
      double acc = 0.0;
      for (int p = 0; p < ntaps; ++p) {
        const StencilPoint& pt = points[static_cast<std::size_t>(p)];
        Index idx;
        if (pt.dim == 0) {
          idx = plan.src_row + pmod(x + pt.offset, nx_);
        } else {
          idx = plan.base[static_cast<std::size_t>(p)] + x;
        }
        if (instr_.checker) instr_.checker->check_input(idx, t);
        const double c = st.banded()
                             ? band_ptrs_[static_cast<std::size_t>(p)][cell]
                             : ka.coeffs[static_cast<std::size_t>(p)];
        acc += c * src[idx];
      }
      if (instr_.checker) instr_.checker->commit_update(cell, t);
      dst[cell] = acc;
    }
  };

  // Walk the virtual x range in physical segments.
  Index vx = plan.x0v;
  while (vx < plan.x1v) {
    const Index px = pmod(vx, nx_);
    const Index len = std::min(plan.x1v - vx, nx_ - px);
    const Index a = px, b = px + len;
    if (instr_.checker) {
      slow_cells(a, b);
    } else {
      const RowSplit sp = compute_row_split(a, b, nx_, s);
      slow_cells(sp.lo0, sp.lo1);
      if (sp.fast0 < sp.fast1) {
        kernel_.fn(ka, plan.base.data(), plan.dst_row, sp.fast0, sp.fast1);
        if (m_fast_rows_) m_fast_rows_->add(tid);
      }
      slow_cells(sp.hi0, sp.hi1);
    }
    vx += len;
  }
}

void Executor::account_row(const RowPlan& plan, long t, int tid) {
  const StencilSpec& st = problem_->stencil();
  const auto& points = st.points();
  const int ntaps = st.npoints();
  const int s = st.order();

  const Field& srcf = problem_->buffer(t);
  const Field& dstf = problem_->buffer(t + 1);
  const bool record = instr_.traffic && srcf.attached();

  // One sink for both consumers: the NUMA traffic recorder (classifies
  // the range against first-touch page ownership) and the trace-driven
  // cache simulator (fed the real data addresses).
  auto sink = [&](const Field& field, Index e0, Index e1, bool write) {
    if (e0 >= e1) return;
    if (record)
      instr_.traffic->account(tid, field.region(), Field::byte_of(e0), Field::byte_of(e1));
    if (instr_.cache_sim)
      instr_.cache_sim->access(
          tid, reinterpret_cast<cachesim::Addr>(field.data() + e0), (e1 - e0) * 8, write);
  };

  Index vx = plan.x0v;
  while (vx < plan.x1v) {
    const Index px = pmod(vx, nx_);
    const Index len = std::min(plan.x1v - vx, nx_ - px);
    const Index a = px, b = px + len;
    // Destination row bytes.
    sink(dstf, plan.dst_row + a, plan.dst_row + b, true);
    // Centre source row, extended by the x taps (clamped at the domain edge;
    // the wrapped spill is at most `s` elements and negligible).
    sink(srcf, plan.src_row + std::max<Index>(0, a - s),
         plan.src_row + std::min<Index>(nx_, b + s), false);
    // Each distinct off-axis neighbour row.
    for (int p = 0; p < ntaps; ++p) {
      const StencilPoint& pt = points[static_cast<std::size_t>(p)];
      if (pt.dim <= 0) continue;
      const Index base = plan.base[static_cast<std::size_t>(p)];
      sink(srcf, base + a, base + b, false);
    }
    // Coefficient bands at the destination cells.
    if (st.banded()) {
      for (int p = 0; p < ntaps; ++p)
        sink(problem_->band(p), plan.dst_row + a, plan.dst_row + b, false);
    }
    vx += len;
  }
}

void Executor::first_touch_box(const Box& box, int node, unsigned seed) {
  if (box.empty()) return;
  const trace::ScopedSpan span(trace_, trace::Phase::Init,
                               {static_cast<std::int32_t>(box.lo[0]),
                                static_cast<std::int32_t>(box.rank() >= 2 ? box.lo[1] : -1),
                                static_cast<std::int32_t>(box.rank() >= 3 ? box.lo[2] : -1),
                                node});
  const int rank = problem_->shape().rank();
  const Index lo0 = box.lo[0], hi0 = box.hi[0];
  const Index lo1 = rank >= 2 ? box.lo[1] : 0, hi1 = rank >= 2 ? box.hi[1] : 1;
  const Index lo2 = rank >= 3 ? box.lo[2] : 0, hi2 = rank >= 3 ? box.hi[2] : 1;
  NUSTENCIL_CHECK(lo0 >= 0 && hi0 <= nx_ && lo1 >= 0 && hi1 <= ny_ && lo2 >= 0 && hi2 <= nz_,
                  "first_touch_box: physical coordinates required");

  for (Index z = lo2; z < hi2; ++z) {
    for (Index y = lo1; y < hi1; ++y) {
      const Index row = y * sy_ + z * sz_;
      problem_->fill_row(row + lo0, row + hi0, seed);
      if (instr_.pages && problem_->buffer(0).attached()) {
        // Page-start rule: a page straddling two init tiles goes to the
        // owner of its first byte, deterministically, because the tiles'
        // row ranges are disjoint and cover the region (the overlap rule
        // would hand straddling pages to whichever thread touched first).
        numa::PageTable& table = *instr_.pages;
        const Index b0 = Field::byte_of(row + lo0);
        const Index b1 = Field::byte_of(row + hi0);
        table.first_touch_page_start(problem_->buffer(0).region(), b0, b1, node);
        table.first_touch_page_start(problem_->buffer(1).region(), b0, b1, node);
        if (problem_->has_bands()) {
          for (int p = 0; p < problem_->stencil().npoints(); ++p)
            table.first_touch_page_start(problem_->band(p).region(), b0, b1, node);
        }
      }
    }
  }
}

}  // namespace nustencil::core
