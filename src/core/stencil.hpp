// Stencil specifications.
//
// The testbed stencil of the paper (Eq. 1) is the 3D 7-point star of order
// s = 1; Section IV-F evaluates orders s = 2, 3 and Section IV-E the
// variable-coefficient case where the per-cell coefficients form a sparse
// banded matrix.  StencilSpec covers all of these: a star stencil of
// arbitrary order on a 1D/2D/3D array, with either one shared coefficient
// vector (constant case) or per-cell bands in band-major storage (DIA-like
// format, "7 matrix coefficients" per cell for the 3D s=1 case).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace nustencil::core {

/// One stencil tap: displacement along one axis (or the centre).
struct StencilPoint {
  int dim;     ///< axis of the displacement; -1 for the centre point
  int offset;  ///< signed displacement in elements (0 for the centre)
};

class StencilSpec {
 public:
  /// Constant star stencil: `coeffs` holds the centre coefficient followed
  /// by one coefficient per (dim, offset) tap in point_order() order.
  static StencilSpec constant_star(int rank, int order, std::vector<double> coeffs);

  /// The paper's Eq. (1): 3D 7-point, order 1, coefficients c0..c6 chosen
  /// to sum to 1 (a weighted Jacobi/diffusion step, numerically stable).
  static StencilSpec paper_3d7p();

  /// A stable constant star stencil of the given rank/order with distinct
  /// per-tap coefficients summing to 1.
  static StencilSpec stable_star(int rank, int order);

  /// Variable-coefficient (banded-matrix) star stencil: the coefficients
  /// live in a band-major array owned by the Problem, one band per tap.
  static StencilSpec banded_star(int rank, int order);

  int rank() const { return rank_; }
  int order() const { return order_; }
  bool banded() const { return banded_; }

  /// Number of taps: 2 * order * rank + 1 (7, 13, 19 for 3D s=1,2,3).
  int npoints() const { return 2 * order_ * rank_ + 1; }

  /// Multiplications + additions per update (13, 25, 37 for 3D s=1,2,3).
  int flops() const { return 2 * npoints() - 1; }

  /// Canonical tap ordering: centre first, then for each dim ascending,
  /// offsets -order..-1 then +1..+order.
  const std::vector<StencilPoint>& points() const { return points_; }

  /// Constant coefficients aligned with points(); empty for banded().
  const std::vector<double>& coeffs() const { return coeffs_; }

  /// Doubles read from the value array per update (npoints) plus, for the
  /// banded case, coefficient doubles (npoints again): paper Section IV-A.
  int reads_per_update() const { return banded_ ? 2 * npoints() : npoints(); }

 private:
  StencilSpec(int rank, int order, bool banded, std::vector<double> coeffs);

  int rank_;
  int order_;
  bool banded_;
  std::vector<StencilPoint> points_;
  std::vector<double> coeffs_;
};

}  // namespace nustencil::core
