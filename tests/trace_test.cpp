// Space-time tracing: recorder semantics, ring overflow, phase totals,
// span nesting/ordering invariants on a real traced run, Chrome JSON
// validity (parsed back with a minimal JSON reader), structural
// determinism across runs, and the timeline SVG.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "schemes/nucorals.hpp"
#include "schemes/scheme.hpp"
#include "trace/trace.hpp"
#include "trace/trace_svg.hpp"

namespace nustencil::trace {
namespace {

// ---------------------------------------------------------------------
// A minimal JSON reader, just enough to validate the Chrome trace output
// and walk its traceEvents.  Numbers are doubles; no \u escapes.
// ---------------------------------------------------------------------
struct Json {
  enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  bool has(const std::string& key) const { return fields.count(key) > 0; }
  const Json& at(const std::string& key) const { return fields.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& src) : src_(src) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != src_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= src_.size()) throw std::runtime_error("unexpected end");
    return src_[pos_];
  }
  void expect(char c) {
    if (peek() != c) throw std::runtime_error(std::string("expected ") + c);
    ++pos_;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", Json{Json::Bool, true});
      case 'f': return keyword("false", Json{Json::Bool, false});
      case 'n': return keyword("null", Json{});
      default: return number();
    }
  }

  Json keyword(const std::string& word, Json result) {
    if (src_.compare(pos_, word.size(), word) != 0)
      throw std::runtime_error("bad keyword");
    pos_ += word.size();
    return result;
  }

  Json object() {
    expect('{');
    Json v;
    v.kind = Json::Object;
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      const std::string key = raw_string();
      skip_ws();
      expect(':');
      v.fields[key] = value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  Json array() {
    expect('[');
    Json v;
    v.kind = Json::Array;
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    Json v;
    v.kind = Json::String;
    v.text = raw_string();
    return v;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = src_[pos_++];
      if (c == '\\') {
        c = src_[pos_++];
        if (c == 'n') c = '\n';
      }
      out += c;
    }
    ++pos_;
    return out;
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '-' || src_[pos_] == '+' || src_[pos_] == '.' ||
            src_[pos_] == 'e' || src_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("bad number");
    Json v;
    v.kind = Json::Number;
    v.number = std::atof(src_.substr(start, pos_ - start).c_str());
    return v;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Recorder semantics.
// ---------------------------------------------------------------------

TEST(ThreadRecorder, TotalsAndRing) {
  Trace trace(8);
  trace.begin_run(1);
  ThreadRecorder* rec = trace.thread(0);
  ASSERT_NE(rec, nullptr);
  rec->record(Phase::Tile, 100, 400);
  rec->record(Phase::BarrierWait, 400, 1000, {}, 7);
  EXPECT_EQ(rec->total_ns(Phase::Tile), 300);
  EXPECT_EQ(rec->total_ns(Phase::BarrierWait), 600);
  EXPECT_EQ(rec->span_count(Phase::Tile), 1u);
  EXPECT_EQ(rec->spin_count(Phase::BarrierWait), 7u);
  EXPECT_EQ(rec->events().size(), 2u);
  EXPECT_EQ(rec->dropped(), 0u);
}

TEST(ThreadRecorder, ExcludeSubtractsFromTotalsNotEvents) {
  Trace trace(8);
  trace.begin_run(1);
  ThreadRecorder* rec = trace.thread(0);
  // A 900ns tile span containing 600ns of nested spin wait.
  rec->record(Phase::SpinWait, 200, 800, {}, 3);
  rec->record(Phase::Tile, 100, 1000, {}, 0, /*exclude_ns=*/600);
  EXPECT_EQ(rec->total_ns(Phase::Tile), 300);
  EXPECT_EQ(rec->total_ns(Phase::SpinWait), 600);
  const std::vector<Event> events = rec->events();
  ASSERT_EQ(events.size(), 2u);
  // The stored event keeps its full extent for the timeline.
  EXPECT_EQ(events[1].end_ns - events[1].start_ns, 900);
}

TEST(ThreadRecorder, RingOverflowKeepsNewestAndExactTotals) {
  Trace trace(4);
  trace.begin_run(1);
  ThreadRecorder* rec = trace.thread(0);
  for (int i = 0; i < 10; ++i)
    rec->record(Phase::Tile, i * 100, i * 100 + 10);
  EXPECT_EQ(rec->dropped(), 6u);
  EXPECT_EQ(rec->span_count(Phase::Tile), 10u);   // totals unaffected
  EXPECT_EQ(rec->total_ns(Phase::Tile), 100);
  const std::vector<Event> events = rec->events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first chronological order of the survivors (events 6..9).
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].start_ns, (6 + i) * 100);
}

TEST(ThreadRecorder, MetricsOnlyModeStoresNoEvents) {
  Trace trace(0);  // metrics-only
  trace.begin_run(2);
  ThreadRecorder* rec = trace.thread(1);
  for (int i = 0; i < 100; ++i) rec->record(Phase::Tile, i, i + 5);
  EXPECT_EQ(rec->events().size(), 0u);
  EXPECT_EQ(rec->dropped(), 0u);
  EXPECT_EQ(rec->total_ns(Phase::Tile), 500);
  EXPECT_EQ(rec->span_count(Phase::Tile), 100u);
}

TEST(ScopedSpan, NullRecorderIsNoOp) {
  { const ScopedSpan span(nullptr, Phase::Tile); }  // must not crash
  Trace trace(8);
  trace.begin_run(1);
  { const ScopedSpan span(trace.thread(0), Phase::Layer, {3, 0, 5, 1}); }
  const std::vector<Event> events = trace.thread(0)->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, Phase::Layer);
  EXPECT_EQ(events[0].args.a, 3);
  EXPECT_GE(events[0].end_ns, events[0].start_ns);
}

TEST(Trace, ThreadOutOfRangeIsNull) {
  Trace trace;
  EXPECT_EQ(trace.thread(0), nullptr);  // before begin_run
  trace.begin_run(2);
  EXPECT_NE(trace.thread(1), nullptr);
  EXPECT_EQ(trace.thread(2), nullptr);
  EXPECT_EQ(trace.thread(-1), nullptr);
}

TEST(Trace, BeginRunResetsRecorders) {
  Trace trace(8);
  trace.begin_run(1);
  trace.thread(0)->record(Phase::Tile, 0, 100);
  trace.begin_run(3);
  EXPECT_EQ(trace.num_threads(), 3);
  EXPECT_EQ(trace.thread(0)->span_count(Phase::Tile), 0u);
  EXPECT_EQ(trace.thread(0)->events().size(), 0u);
}

TEST(PhaseBreakdown, ImbalanceIsMaxOverMeanBusy) {
  PhaseBreakdown b;
  b.threads.resize(2);
  b.threads[0].seconds[static_cast<std::size_t>(Phase::Tile)] = 3.0;
  b.threads[1].seconds[static_cast<std::size_t>(Phase::Tile)] = 1.0;
  EXPECT_DOUBLE_EQ(b.imbalance(), 1.5);
  EXPECT_DOUBLE_EQ(b.total_s(Phase::Tile), 4.0);
  EXPECT_DOUBLE_EQ(b.imbalance(), 1.5);  // pure accessor, no state
  PhaseBreakdown empty;
  EXPECT_DOUBLE_EQ(empty.imbalance(), 1.0);
}

// ---------------------------------------------------------------------
// A real traced run.
// ---------------------------------------------------------------------

schemes::RunResult traced_run(Trace* trace, bool metrics_only = false) {
  schemes::NuCoralsScheme scheme;
  schemes::RunConfig cfg;
  cfg.num_threads = 2;
  cfg.timesteps = 6;
  cfg.trace = trace;
  cfg.collect_phase_metrics = metrics_only;
  core::Problem problem(Coord{16, 14, 12}, core::StencilSpec::paper_3d7p());
  return scheme.run(problem, cfg);
}

TEST(TracedRun, ProducesExpectedSpanKinds) {
  Trace trace;
  const schemes::RunResult result = traced_run(&trace);
  ASSERT_EQ(trace.num_threads(), 2);
  for (int tid = 0; tid < 2; ++tid) {
    const ThreadRecorder* rec = trace.thread(tid);
    EXPECT_GT(rec->span_count(Phase::Tile), 0u) << "tid " << tid;
    EXPECT_GT(rec->span_count(Phase::Init), 0u) << "tid " << tid;
    EXPECT_GT(rec->span_count(Phase::Layer), 0u) << "tid " << tid;
    EXPECT_GT(rec->span_count(Phase::Parallelogram), 0u) << "tid " << tid;
  }
  // The last barrier arrival releases the rest without waiting, so every
  // barrier round records exactly participants-1 wait spans in total:
  // with 2 threads and 2 rounds per layer the total is even and positive.
  const std::uint64_t barrier_spans =
      trace.thread(0)->span_count(Phase::BarrierWait) +
      trace.thread(1)->span_count(Phase::BarrierWait);
  EXPECT_GT(barrier_spans, 0u);
  EXPECT_EQ(barrier_spans % 2u, 0u);
  EXPECT_TRUE(result.phases.enabled);
  EXPECT_GT(result.phases.total_s(Phase::Tile), 0.0);
}

TEST(TracedRun, SpanInvariants) {
  Trace trace;
  traced_run(&trace);
  for (int tid = 0; tid < trace.num_threads(); ++tid) {
    const std::vector<Event> events = trace.thread(tid)->events();
    std::vector<Event> layers, barriers;
    for (const Event& e : events) {
      EXPECT_GE(e.start_ns, 0) << "span before the run epoch";
      EXPECT_GE(e.end_ns, e.start_ns) << "negative span duration";
      if (e.phase == Phase::Layer) layers.push_back(e);
      if (e.phase == Phase::BarrierWait) barriers.push_back(e);
    }
    // Layers are disjoint and ordered on each thread.
    for (std::size_t i = 1; i < layers.size(); ++i)
      EXPECT_GE(layers[i].start_ns, layers[i - 1].end_ns);
    // Barrier waits never overlap each other on one thread.
    for (std::size_t i = 1; i < barriers.size(); ++i)
      EXPECT_GE(barriers[i].start_ns, barriers[i - 1].end_ns);
    // Every parallelogram span nests inside some layer span.
    for (const Event& e : events) {
      if (e.phase != Phase::Parallelogram) continue;
      bool nested = false;
      for (const Event& layer : layers)
        nested = nested ||
                 (e.start_ns >= layer.start_ns && e.end_ns <= layer.end_ns);
      EXPECT_TRUE(nested) << "orphan parallelogram on tid " << tid;
    }
  }
}

TEST(TracedRun, PhaseTotalsCoverWallTime) {
  Trace trace;
  const schemes::RunResult result = traced_run(&trace);
  // Leaf totals must roughly cover each thread's share of the run; on an
  // oversubscribed CI host a thread can be descheduled between spans, so
  // only require a loose lower bound and no overshoot beyond wall time
  // plus the untimed init phase.
  for (const auto& t : result.phases.threads) {
    EXPECT_GT(t.accounted_s(), 0.0);
    EXPECT_LE(t.busy_s(), t.accounted_s());
    EXPECT_LE(t.accounted_s(),
              result.seconds + result.phases.total_s(Phase::Init) + 0.05);
  }
}

TEST(TracedRun, ChromeJsonParsesBack) {
  Trace trace;
  traced_run(&trace);
  std::ostringstream os;
  trace.write_chrome_json(os);
  const std::string text = os.str();

  Json root;
  ASSERT_NO_THROW(root = JsonParser(text).parse()) << "invalid JSON";
  ASSERT_EQ(root.kind, Json::Object);
  ASSERT_TRUE(root.has("traceEvents"));
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Array);
  ASSERT_GT(events.items.size(), 3u);

  std::map<std::string, int> by_name;
  int metadata = 0;
  for (const Json& e : events.items) {
    ASSERT_EQ(e.kind, Json::Object);
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    const std::string ph = e.at("ph").text;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ASSERT_TRUE(e.has("ts"));
    ASSERT_TRUE(e.has("dur"));
    EXPECT_GE(e.at("dur").number, 0.0);
    by_name[e.at("name").text]++;
    const int tid = static_cast<int>(e.at("tid").number);
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, 2);
  }
  // process_name + one thread_name per worker.
  EXPECT_EQ(metadata, 3);
  EXPECT_GT(by_name["tile"], 0);
  EXPECT_GT(by_name["layer"], 0);
  EXPECT_GT(by_name["parallelogram"], 0);
}

TEST(TracedRun, StructureIsDeterministic) {
  // Span *counts* of the deterministic phases must not depend on timing:
  // tiles, layers, parallelograms and init spans are fixed by the plan
  // (wait spans are inherently timing-dependent and excluded here).
  Trace a, b;
  traced_run(&a);
  traced_run(&b);
  ASSERT_EQ(a.num_threads(), b.num_threads());
  for (int tid = 0; tid < a.num_threads(); ++tid) {
    for (const Phase p : {Phase::Init, Phase::Tile, Phase::Layer, Phase::Parallelogram})
      EXPECT_EQ(a.thread(tid)->span_count(p), b.thread(tid)->span_count(p))
          << "phase " << phase_name(p) << " tid " << tid;
  }
}

TEST(TracedRun, DisabledTraceLeavesResultEmpty) {
  schemes::NuCoralsScheme scheme;
  schemes::RunConfig cfg;
  cfg.num_threads = 2;
  cfg.timesteps = 4;
  core::Problem problem(Coord{14, 12, 12}, core::StencilSpec::paper_3d7p());
  const schemes::RunResult result = scheme.run(problem, cfg);
  EXPECT_FALSE(result.phases.enabled);
  EXPECT_TRUE(result.phases.threads.empty());
}

TEST(TracedRun, MetricsOnlyModeFillsPhasesWithoutTrace) {
  const schemes::RunResult result = traced_run(nullptr, /*metrics_only=*/true);
  EXPECT_TRUE(result.phases.enabled);
  ASSERT_EQ(result.phases.threads.size(), 2u);
  EXPECT_GT(result.phases.total_s(Phase::Tile), 0.0);
  for (const auto& t : result.phases.threads) EXPECT_EQ(t.dropped, 0u);
}

// ---------------------------------------------------------------------
// Timeline SVG.
// ---------------------------------------------------------------------

TEST(TimelineSvg, RendersOneTrackPerThread) {
  Trace trace;
  traced_run(&trace);
  const report::TimelineSpec spec = timeline_spec(trace, "test run");
  EXPECT_EQ(spec.track_labels.size(), 2u);
  EXPECT_EQ(spec.class_labels.size(), static_cast<std::size_t>(kNumPhases));
  EXPECT_GT(spec.spans.size(), 0u);
  const std::string svg = report::render_timeline_svg(spec);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("test run"), std::string::npos);
  EXPECT_NE(svg.find("worker 0"), std::string::npos);
  EXPECT_NE(svg.find("worker 1"), std::string::npos);
}

TEST(DescribeObservability, MentionsEveryChannel) {
  const std::string text = describe_observability("t.json", "t.svg", true, 1024);
  EXPECT_NE(text.find("t.json"), std::string::npos);
  EXPECT_NE(text.find("t.svg"), std::string::npos);
  EXPECT_NE(text.find("1024"), std::string::npos);
  const std::string off = describe_observability("", "", false, 1024);
  EXPECT_NE(off.find("off"), std::string::npos);
}

}  // namespace
}  // namespace nustencil::trace
