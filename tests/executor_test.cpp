// Region executor: kernels (scalar vs SSE2), periodic wrap in virtual
// coordinates, stencil/field plumbing, and the reference runner.
#include <gtest/gtest.h>

#include <set>

#include "core/executor.hpp"
#include "core/reference.hpp"

namespace nustencil::core {
namespace {

Box whole(const Coord& shape) {
  Box b;
  b.lo = Coord::filled(shape.rank(), 0);
  b.hi = shape;
  return b;
}

TEST(StencilSpec, TapCountsAndFlops) {
  EXPECT_EQ(StencilSpec::paper_3d7p().npoints(), 7);
  EXPECT_EQ(StencilSpec::paper_3d7p().flops(), 13);   // Section IV-B
  EXPECT_EQ(StencilSpec::stable_star(3, 2).npoints(), 13);
  EXPECT_EQ(StencilSpec::stable_star(3, 2).flops(), 25);   // Section IV-F
  EXPECT_EQ(StencilSpec::stable_star(3, 3).npoints(), 19);
  EXPECT_EQ(StencilSpec::stable_star(3, 3).flops(), 37);
  EXPECT_EQ(StencilSpec::banded_star(3, 1).reads_per_update(), 14);  // 7 + 7
}

TEST(StencilSpec, CoefficientsSumToOne) {
  for (int rank = 1; rank <= 3; ++rank)
    for (int order = 1; order <= 3; ++order) {
      const StencilSpec st = StencilSpec::stable_star(rank, order);
      double sum = 0.0;
      for (double c : st.coeffs()) sum += c;
      EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(Problem, BandRowsSumToOne) {
  Problem p(Coord{8, 6, 5}, StencilSpec::banded_star(3, 1));
  p.initialize();
  for (Index i = 0; i < p.volume(); ++i) {
    double sum = 0.0;
    for (int tap = 0; tap < 7; ++tap) sum += p.band(tap).data()[i];
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Problem, FillRowMatchesInitialize) {
  Problem a(Coord{16, 4, 3}, StencilSpec::paper_3d7p());
  Problem b(Coord{16, 4, 3}, StencilSpec::paper_3d7p());
  a.initialize(7);
  for (Index i = 0; i < b.volume(); i += 16) b.fill_row(i, i + 16, 7);
  EXPECT_DOUBLE_EQ(max_rel_diff(a.buffer(0), b.buffer(0)), 0.0);
}

TEST(Executor, SimdMatchesScalarExactly) {
  for (const bool banded : {false, true}) {
    const StencilSpec st =
        banded ? StencilSpec::banded_star(3, 1) : StencilSpec::paper_3d7p();
    Problem a(Coord{33, 7, 5}, st);  // odd extent exercises the SSE2 tail
    Problem b(Coord{33, 7, 5}, st);
    a.initialize();
    b.initialize();
    Executor ea(a, {}, KernelPolicy::Auto);
    Executor eb(b, {}, KernelPolicy::Scalar);
    for (long t = 0; t < 3; ++t) {
      ea.update_box(whole(a.shape()), t, 0);
      eb.update_box(whole(b.shape()), t, 0);
    }
    EXPECT_LE(max_rel_diff(a.buffer(3), b.buffer(3)), 1e-15) << "banded=" << banded;
  }
}

TEST(RowSplit, DisjointAndCoversEverySegment) {
  // Every (a, b) segment of every domain width, stencil orders 1..4:
  // the three ranges must be ordered, disjoint, and cover [a, b) exactly
  // once — including tiny domains with nx < 2*order, where the old split
  // double-computed the overlap of the two boundary ranges.
  for (Index nx = 1; nx <= 12; ++nx)
    for (int s = 1; s <= 4; ++s)
      for (Index a = 0; a < nx; ++a)
        for (Index b = a; b <= nx; ++b) {
          const RowSplit r = compute_row_split(a, b, nx, s);
          ASSERT_LE(r.lo0, r.lo1);
          ASSERT_LE(r.lo1, r.fast0);
          ASSERT_LE(r.fast0, r.fast1);
          ASSERT_LE(r.fast1, r.hi0);
          ASSERT_LE(r.hi0, r.hi1);
          const Index covered =
              (r.lo1 - r.lo0) + (r.fast1 - r.fast0) + (r.hi1 - r.hi0);
          ASSERT_EQ(covered, b - a) << "a=" << a << " b=" << b << " nx=" << nx
                                    << " s=" << s;
          ASSERT_EQ(r.lo0, a);
          ASSERT_EQ(r.hi1, b);
          // Fast cells must be at least `s` away from both edges.
          if (r.fast0 < r.fast1) {
            ASSERT_GE(r.fast0, s);
            ASSERT_LE(r.fast1, nx - s);
          }
        }
}

TEST(Executor, TinyDomainMatchesBruteForce) {
  // Smallest legal domain (nx = 2*order + 1, Problem forbids anything
  // smaller): the boundary ranges leave a single interior column; every
  // cell must match a hand-rolled pmod sweep.  Domains below 2*order —
  // where the old split double-computed the overlap — are covered by the
  // exhaustive RowSplit test above.
  const StencilSpec st = StencilSpec::stable_star(3, 2);
  Problem p(Coord{5, 5, 5}, st);
  p.initialize();
  const std::vector<double> before(p.buffer(0).data(),
                                   p.buffer(0).data() + p.volume());
  Executor e(p);
  EXPECT_EQ(e.update_box(whole(p.shape()), 0, 0), 125);
  auto at = [&](Index x, Index y, Index z) {
    return before[static_cast<std::size_t>(pmod(x, 5) + 5 * (pmod(y, 5) + 5 * pmod(z, 5)))];
  };
  const auto& pts = st.points();
  const auto& cs = st.coeffs();
  for (Index z = 0; z < 5; ++z)
    for (Index y = 0; y < 5; ++y)
      for (Index x = 0; x < 5; ++x) {
        double acc = 0.0;
        for (std::size_t k = 0; k < pts.size(); ++k) {
          Index xx = x, yy = y, zz = z;
          if (pts[k].dim == 0) xx += pts[k].offset;
          if (pts[k].dim == 1) yy += pts[k].offset;
          if (pts[k].dim == 2) zz += pts[k].offset;
          acc += cs[k] * at(xx, yy, zz);
        }
        EXPECT_NEAR(p.buffer(1).at(Coord{x, y, z}), acc, 1e-15);
      }
}

TEST(Executor, PeriodicWrapIsExact) {
  // One step on a tiny domain, checked against a hand-rolled pmod sweep.
  Problem p(Coord{4, 3, 3}, StencilSpec::paper_3d7p());
  p.initialize();
  const std::vector<double> before(p.buffer(0).data(),
                                   p.buffer(0).data() + p.volume());
  Executor e(p);
  e.update_box(whole(p.shape()), 0, 0);
  const auto& c = p.stencil().coeffs();
  auto at = [&](Index x, Index y, Index z) {
    return before[static_cast<std::size_t>(pmod(x, 4) + 4 * (pmod(y, 3) + 3 * pmod(z, 3)))];
  };
  for (Index z = 0; z < 3; ++z)
    for (Index y = 0; y < 3; ++y)
      for (Index x = 0; x < 4; ++x) {
        const double expect = c[0] * at(x, y, z) + c[1] * at(x - 1, y, z) +
                              c[2] * at(x + 1, y, z) + c[3] * at(x, y - 1, z) +
                              c[4] * at(x, y + 1, z) + c[5] * at(x, y, z - 1) +
                              c[6] * at(x, y, z + 1);
        EXPECT_NEAR(p.buffer(1).at(Coord{x, y, z}), expect, 1e-15);
      }
}

TEST(Executor, VirtualBoxWrapsToSameResult) {
  // Updating [0,N) and updating the shifted virtual window [k, N+k) must
  // produce identical physical results.
  Problem a(Coord{12, 6, 5}, StencilSpec::paper_3d7p());
  Problem b(Coord{12, 6, 5}, StencilSpec::paper_3d7p());
  a.initialize();
  b.initialize();
  Executor ea(a), eb(b);
  ea.update_box(whole(a.shape()), 0, 0);
  Box shifted = whole(b.shape());
  for (int d = 0; d < 3; ++d) {
    shifted.lo[d] += 5 + d;
    shifted.hi[d] += 5 + d;
  }
  eb.update_box(shifted, 0, 0);
  EXPECT_DOUBLE_EQ(max_rel_diff(a.buffer(1), b.buffer(1)), 0.0);
}

TEST(Executor, SplitBoxesEqualWholeBox) {
  Problem a(Coord{16, 8, 8}, StencilSpec::paper_3d7p());
  Problem b(Coord{16, 8, 8}, StencilSpec::paper_3d7p());
  a.initialize();
  b.initialize();
  Executor ea(a), eb(b);
  ea.update_box(whole(a.shape()), 0, 0);
  for (Index z = 0; z < 8; z += 4)
    for (Index y = 0; y < 8; y += 2) {
      Box part;
      part.lo = Coord{0, y, z};
      part.hi = Coord{16, y + 2, z + 4};
      eb.update_box(part, 0, 0);
    }
  EXPECT_DOUBLE_EQ(max_rel_diff(a.buffer(1), b.buffer(1)), 0.0);
  EXPECT_EQ(ea.updates_done(), eb.updates_done());
}

TEST(Executor, UpdateCountAndEmptyBox) {
  Problem p(Coord{10, 5, 4}, StencilSpec::paper_3d7p());
  p.initialize();
  Executor e(p);
  EXPECT_EQ(e.update_box(whole(p.shape()), 0, 0), 200);
  Box empty = whole(p.shape());
  empty.hi[1] = empty.lo[1];
  EXPECT_EQ(e.update_box(empty, 1, 0), 0);
}

TEST(Executor, DependencyCheckerCatchesOutOfOrderUpdate) {
  Problem p(Coord{8, 5, 5}, StencilSpec::paper_3d7p());
  p.initialize();
  DependencyChecker checker(p.volume());
  Instrumentation instr;
  instr.checker = &checker;
  Executor e(p, instr);
  e.update_box(whole(p.shape()), 0, 0);
  // Re-running the same step would update cells already at t=1 from t=0.
  EXPECT_THROW(e.update_box(whole(p.shape()), 0, 0), Error);
}

TEST(Executor, DependencyCheckerCatchesSkippedStep) {
  Problem p(Coord{8, 5, 5}, StencilSpec::paper_3d7p());
  p.initialize();
  DependencyChecker checker(p.volume());
  Instrumentation instr;
  instr.checker = &checker;
  Executor e(p, instr);
  // Jumping straight to t=1 without computing t=0 must trip the checker.
  EXPECT_THROW(e.update_box(whole(p.shape()), 1, 0), Error);
}

TEST(Executor, TrafficAccountingCoversAllFields) {
  const auto machine = topology::xeonX7550();
  numa::PageTable pages(256);
  numa::VirtualTopology topo(machine);
  numa::TrafficRecorder recorder(pages, topo, 1);
  Problem p(Coord{16, 6, 5}, StencilSpec::banded_star(3, 1));
  p.attach(pages);
  Instrumentation instr;
  instr.pages = &pages;
  instr.traffic = &recorder;
  Executor e(p, instr);
  e.first_touch_box(whole(p.shape()), 0, 42);
  e.update_box(whole(p.shape()), 0, 0);
  const auto stats = recorder.collect();
  // Accounting records unique touched bytes per row: destination row,
  // extended centre source row, 4 off-axis neighbour rows, 7 band rows —
  // at least ~13 doubles per update on this shape.
  EXPECT_GE(stats.total_bytes(), static_cast<std::uint64_t>(p.volume()) * 13 * 8);
  EXPECT_DOUBLE_EQ(stats.locality(), 1.0);  // single node owns everything
}

TEST(Reference, HighOrderAgainstBruteForce2D) {
  // Order-2 2D stencil vs a straightforward double-loop implementation.
  const StencilSpec st = StencilSpec::stable_star(2, 2);
  Problem p(Coord{9, 7}, st);
  p.initialize();
  const std::vector<double> u0(p.buffer(0).data(), p.buffer(0).data() + p.volume());
  reference_run(p, 1);
  auto at = [&](Index x, Index y) {
    return u0[static_cast<std::size_t>(pmod(x, 9) + 9 * pmod(y, 7))];
  };
  const auto& pts = st.points();
  const auto& cs = st.coeffs();
  for (Index y = 0; y < 7; ++y)
    for (Index x = 0; x < 9; ++x) {
      double acc = 0.0;
      for (std::size_t k = 0; k < pts.size(); ++k) {
        Index xx = x, yy = y;
        if (pts[k].dim == 0) xx += pts[k].offset;
        if (pts[k].dim == 1) yy += pts[k].offset;
        acc += cs[k] * at(xx, yy);
      }
      EXPECT_NEAR(p.buffer(1).at(Coord{x, y}), acc, 1e-15);
    }
}

}  // namespace
}  // namespace nustencil::core
