// Live telemetry: time-series rings, exact-decimation downsampling, the
// OpenMetrics exposition and JSONL event log, the stall watchdog, and
// the sampler itself in deterministic manual (fake-clock) mode plus on a
// real short run.  The zero-cost-off contract — an untelemetered run
// spawns no sampler thread — is pinned here too.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "metrics/json.hpp"
#include "prof/progress.hpp"
#include "schemes/nucats.hpp"
#include "telemetry/events.hpp"
#include "telemetry/openmetrics.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/timeseries.hpp"
#include "telemetry/watchdog.hpp"
#include "test_util.hpp"
#include "thread/abort.hpp"

namespace nustencil {
namespace {

using telemetry::Config;
using telemetry::EventLog;
using telemetry::MetricFamily;
using telemetry::RunSources;
using telemetry::Sampler;
using telemetry::StallDiagnosis;
using telemetry::ThreadCumulative;
using telemetry::TimeSeriesStore;
using telemetry::Watchdog;
using telemetry::WatchdogAction;

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------- rings

TEST(TimeSeries, AppendsShareOneTimeAxis) {
  TimeSeriesStore store(8);
  const int a = store.add_series("a");
  const int b = store.add_series("b");
  store.append(10, {1.0, 2.0});
  store.append(20, {3.0, 4.0});
  ASSERT_EQ(store.size(), 2u);
  EXPECT_EQ(store.num_series(), 2);
  EXPECT_EQ(store.series_name(a), "a");
  EXPECT_EQ(store.time_ns_at(0), 10);
  EXPECT_EQ(store.time_ns_at(1), 20);
  EXPECT_EQ(store.value_at(a, 1), 3.0);
  EXPECT_EQ(store.value_at(b, 0), 2.0);
}

TEST(TimeSeries, RingOverwritesOldestRowsInChronologicalOrder) {
  TimeSeriesStore store(4);
  const int s = store.add_series("v");
  for (int i = 0; i < 10; ++i)
    store.append(i * 100, {static_cast<double>(i)});
  // 10 appended, 4 retained: rows 6..9 survive, oldest first.
  EXPECT_EQ(store.total_appended(), 10u);
  ASSERT_EQ(store.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(store.time_ns_at(i), static_cast<std::int64_t>((6 + i) * 100));
    EXPECT_EQ(store.value_at(s, i), static_cast<double>(6 + i));
  }
}

TEST(TimeSeries, DownsampleKeepsEverythingWhenItFits) {
  const auto all = TimeSeriesStore::downsample_indices(5, 10);
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(all[i], i);
  // max_points == 0 means "no limit".
  EXPECT_EQ(TimeSeriesStore::downsample_indices(7, 0).size(), 7u);
  EXPECT_TRUE(TimeSeriesStore::downsample_indices(0, 4).empty());
}

TEST(TimeSeries, DownsampleIsExactDecimationKeepingFirstAndLast) {
  for (const std::size_t n : {11u, 100u, 1000u, 4096u}) {
    for (const std::size_t max_points : {2u, 10u, 160u}) {
      const auto idx = TimeSeriesStore::downsample_indices(n, max_points);
      ASSERT_FALSE(idx.empty());
      EXPECT_LE(idx.size(), max_points) << n << "/" << max_points;
      EXPECT_EQ(idx.front(), 0u);
      EXPECT_EQ(idx.back(), n - 1);
      // Strictly increasing and every index addresses an original row:
      // decimation selects samples, it never averages or invents them.
      for (std::size_t i = 1; i < idx.size(); ++i)
        EXPECT_LT(idx[i - 1], idx[i]);
      EXPECT_LT(idx.back(), n);
    }
  }
}

// ---------------------------------------------------------- OpenMetrics

TEST(OpenMetrics, ValidMetricNames) {
  EXPECT_TRUE(telemetry::valid_metric_name("nustencil_mups"));
  EXPECT_TRUE(telemetry::valid_metric_name("_x:total"));
  EXPECT_FALSE(telemetry::valid_metric_name(""));
  EXPECT_FALSE(telemetry::valid_metric_name("9lives"));
  EXPECT_FALSE(telemetry::valid_metric_name("has space"));
  EXPECT_FALSE(telemetry::valid_metric_name("has-dash"));
}

TEST(OpenMetrics, RenderedExpositionHasMetadataSamplesAndEof) {
  std::vector<MetricFamily> families;
  families.push_back({"nustencil_updates_total",
                      "counter",
                      "updates",
                      {{"thread=\"0\"", 12.0}, {"thread=\"1\"", 34.0}}});
  families.push_back({"nustencil_run_mups", "gauge", "throughput", {{"", 5.5}}});
  const std::string text = telemetry::render_openmetrics(families);

  EXPECT_NE(text.find("# TYPE nustencil_updates_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP nustencil_updates_total updates"),
            std::string::npos);
  EXPECT_NE(text.find("nustencil_updates_total{thread=\"1\"} 34"),
            std::string::npos);
  EXPECT_NE(text.find("nustencil_run_mups 5.5"), std::string::npos);

  // Parse-back: every non-comment line is `name[{labels}] value` with a
  // legal metric name and a finite value, and the document ends in # EOF.
  std::istringstream in(text);
  std::string line, last;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    last = line;
    if (line[0] == '#') continue;
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    const std::size_t name_end = std::min(brace, space);
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_TRUE(telemetry::valid_metric_name(line.substr(0, name_end))) << line;
    const std::size_t value_at = line.rfind(' ');
    EXPECT_NO_THROW((void)std::stod(line.substr(value_at + 1))) << line;
  }
  EXPECT_EQ(last, "# EOF");
}

TEST(OpenMetrics, FileRewriteIsAtomicReplace) {
  const std::string path = temp_path("telemetry_test_om.txt");
  std::vector<MetricFamily> families{
      {"nustencil_samples_total", "counter", "ticks", {{"", 1.0}}}};
  ASSERT_TRUE(telemetry::write_openmetrics_file(families, path));
  families[0].points[0].value = 2.0;
  ASSERT_TRUE(telemetry::write_openmetrics_file(families, path));

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");
  // The second write fully replaced the first document.
  EXPECT_NE(lines[2].find("nustencil_samples_total 2"), std::string::npos);
  // The temp file was renamed away, not left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(OpenMetrics, WriteToUnwritablePathReturnsFalseInsteadOfThrowing) {
  EXPECT_FALSE(telemetry::write_openmetrics_file(
      {}, "/nonexistent-dir-for-telemetry-test/om.txt"));
}

// ------------------------------------------------------------ event log

TEST(EventLog, OneValidJsonObjectPerLineInEmissionOrder) {
  const std::string path = temp_path("telemetry_test_events.jsonl");
  {
    EventLog log(path);
    log.event("run_start", 0.0, [](metrics::JsonWriter& w) {
      w.kv("label", "t");
      w.kv("threads", 2);
    });
    log.event("sample", 10.0,
              [](metrics::JsonWriter& w) { w.kv("seq", std::uint64_t{0}); });
    log.event("sample", 20.0,
              [](metrics::JsonWriter& w) { w.kv("seq", std::uint64_t{1}); });
    log.event("run_end", 25.0);
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  const std::vector<std::string> types = {"run_start", "sample", "sample",
                                          "run_end"};
  double prev_ms = -1.0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const metrics::JsonValue ev = metrics::parse_json(lines[i]);
    ASSERT_TRUE(ev.is_object()) << lines[i];
    EXPECT_EQ(ev.at("type").str(), types[i]);
    EXPECT_GE(ev.at("t_ms").num(), prev_ms);
    prev_ms = ev.at("t_ms").num();
  }
  EXPECT_EQ(metrics::parse_json(lines[0]).at("threads").num(), 2.0);
  EXPECT_EQ(metrics::parse_json(lines[2]).at("seq").num(), 1.0);
  std::remove(path.c_str());
}

TEST(EventLog, UnopenablePathThrowsOneLineError) {
  EXPECT_THROW(EventLog("/nonexistent-dir-for-telemetry-test/e.jsonl"), Error);
}

// -------------------------------------------------------------- watchdog

std::vector<ThreadCumulative> cum2(std::uint64_t u0, std::uint64_t u1) {
  std::vector<ThreadCumulative> cum(2);
  cum[0].updates = u0;
  cum[1].updates = u1;
  return cum;
}

TEST(Watchdog, FiresAfterExactlyStallIntervalsAndOncePerEpisode) {
  Watchdog dog(3, WatchdogAction::Warn);
  dog.begin_run(2, /*t0_ns=*/0);

  // Thread 0 advances every tick; thread 1 froze at 5 updates.
  std::int64_t t = 0;
  std::uint64_t u0 = 0;
  dog.tick(t += 1000, cum2(++u0, 5));  // advance observed, arms the episode
  EXPECT_TRUE(dog.tick(t += 1000, cum2(++u0, 5)).empty());  // stuck 1
  EXPECT_TRUE(dog.tick(t += 1000, cum2(++u0, 5)).empty());  // stuck 2
  const auto fired = dog.tick(t += 1000, cum2(++u0, 5));    // stuck 3: fires
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].tid, 1);
  EXPECT_EQ(fired[0].stalled_intervals, 3);
  EXPECT_EQ(fired[0].updates, 5u);
  EXPECT_EQ(dog.stall_events(), 1);

  // The same episode never fires twice.
  EXPECT_TRUE(dog.tick(t += 1000, cum2(++u0, 5)).empty());
  EXPECT_TRUE(dog.tick(t += 1000, cum2(++u0, 5)).empty());
  EXPECT_EQ(dog.stall_events(), 1);

  // Progress re-arms; a second freeze fires a second event.
  EXPECT_TRUE(dog.tick(t += 1000, cum2(++u0, 6)).empty());
  EXPECT_TRUE(dog.tick(t += 1000, cum2(++u0, 6)).empty());
  EXPECT_TRUE(dog.tick(t += 1000, cum2(++u0, 6)).empty());
  ASSERT_EQ(dog.tick(t += 1000, cum2(++u0, 6)).size(), 1u);
  EXPECT_EQ(dog.stall_events(), 2);
}

TEST(Watchdog, DiagnosisReusesStragglerThresholds) {
  Watchdog dog(2, WatchdogAction::Warn);
  dog.begin_run(1, 0);
  // No span completed across the window: the whole window counts as
  // waiting, so the verdict must be spin-bound (same thresholds as the
  // post-mortem straggler table).
  std::vector<ThreadCumulative> cum(1);
  cum[0].updates = 7;
  cum[0].leaf_spans = 4;
  dog.tick(1'000'000, cum);
  dog.tick(2'000'000, cum);
  const auto fired = dog.tick(3'000'000, cum);
  ASSERT_EQ(fired.size(), 1u);
  const StallDiagnosis& d = fired[0];
  EXPECT_TRUE(d.no_spans_completed);
  EXPECT_EQ(d.why.verdict, prof::Verdict::SpinBound);
  EXPECT_NEAR(d.window_s, 2e-3, 1e-9);
  const std::string text = d.render("warn");
  EXPECT_NE(text.find("thread 0 stalled"), std::string::npos);
  EXPECT_NE(text.find("spin-bound"), std::string::npos);
  EXPECT_NE(text.find("action: warn"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Watchdog, ParseActionIsCaseInsensitiveAndStrict) {
  EXPECT_EQ(telemetry::parse_watchdog_action("WARN"), WatchdogAction::Warn);
  EXPECT_EQ(telemetry::parse_watchdog_action("Abort"), WatchdogAction::Abort);
  EXPECT_THROW(telemetry::parse_watchdog_action("panic"), Error);
  EXPECT_EQ(std::string(telemetry::watchdog_action_name(WatchdogAction::Abort)),
            "abort");
}

// ------------------------------------------------- sampler (fake clock)

/// Manual-mode sampler over a ProgressMeter: the test IS the clock.
struct ManualRig {
  std::ostringstream beat_out;
  std::ostringstream diag;
  prof::ProgressMeter meter{1.0, beat_out};
  threading::AbortToken abort;
  Config cfg;

  explicit ManualRig(int threads) {
    cfg.manual = true;
    cfg.interval_s = 0.001;
    cfg.label = "rig";
    meter.begin_run("rig", threads, 0);
  }

  RunSources sources(int threads) {
    RunSources src;
    src.num_threads = threads;
    src.timesteps = 4;
    src.progress = &meter;
    src.abort = &abort;
    return src;
  }
};

TEST(Sampler, ManualModeIsDeterministicUnderAFakeClock) {
  ManualRig rig(2);
  Sampler sampler(rig.cfg, rig.diag);
  sampler.begin_run(rig.sources(2));

  // 2 threads: thread<t>/{mups,locality} then run/{mups,locality,layer}.
  const TimeSeriesStore* store = sampler.store();
  ASSERT_NE(store, nullptr);
  ASSERT_EQ(store->num_series(), 7);
  EXPECT_EQ(store->series_name(0), "thread0/mups");
  EXPECT_EQ(store->series_name(1), "thread0/locality");
  EXPECT_EQ(store->series_name(4), "run/mups");
  EXPECT_EQ(store->series_name(6), "run/layer");

  // Tick 1 at t=1ms: thread 0 did 1000 updates, 75% local traffic.
  rig.meter.publish(0, 1000, 300, 100);
  rig.meter.set_layer(0);
  sampler.sample_once(1'000'000);
  // Tick 2 at t=3ms: +4000 updates over 2ms, all-local window.
  rig.meter.publish(0, 5000, 700, 100);
  rig.meter.set_layer(1);
  sampler.sample_once(3'000'000);

  ASSERT_EQ(store->size(), 2u);
  EXPECT_EQ(sampler.samples_taken(), 2u);
  EXPECT_EQ(store->time_ns_at(0), 1'000'000);
  EXPECT_EQ(store->time_ns_at(1), 3'000'000);
  // Window rates are exact under the fake clock: 1000 up / 1 ms = 1 Mup/s,
  // then 4000 up / 2 ms = 2 Mup/s.
  EXPECT_DOUBLE_EQ(store->value_at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(store->value_at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(store->value_at(1, 0), 75.0);   // 300 / 400 local
  EXPECT_DOUBLE_EQ(store->value_at(1, 1), 100.0);  // +400 local, +0 remote
  // Thread 1 published nothing: zero rate, vacuous 100% locality.
  EXPECT_DOUBLE_EQ(store->value_at(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(store->value_at(3, 1), 100.0);
  // Run aggregates and the layer indicator ride the same rows.
  EXPECT_DOUBLE_EQ(store->value_at(4, 1), 2.0);
  EXPECT_DOUBLE_EQ(store->value_at(6, 0), 0.0);
  EXPECT_DOUBLE_EQ(store->value_at(6, 1), 1.0);
}

TEST(Sampler, ManualModeWritesOrderedJsonlEvents) {
  const std::string path = temp_path("telemetry_test_sampler.jsonl");
  ManualRig rig(1);
  rig.cfg.log_path = path;
  {
    Sampler sampler(rig.cfg, rig.diag);
    sampler.begin_run(rig.sources(1));
    rig.meter.publish(0, 10, 100, 0);
    rig.meter.set_layer(0);
    sampler.sample_once(1'000'000);
    rig.meter.publish(0, 20, 200, 0);
    sampler.sample_once(2'000'000);
    sampler.end_run(/*seconds=*/0.002, /*updates=*/20);
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 5u);
  std::vector<std::string> types;
  double prev_ms = -1.0;
  for (const std::string& line : lines) {
    const metrics::JsonValue ev = metrics::parse_json(line);
    types.push_back(ev.at("type").str());
    EXPECT_GE(ev.at("t_ms").num(), prev_ms) << line;
    prev_ms = ev.at("t_ms").num();
  }
  EXPECT_EQ(types.front(), "run_start");
  EXPECT_EQ(types.back(), "run_end");
  EXPECT_GE(std::count(types.begin(), types.end(), std::string("sample")), 2);
  EXPECT_EQ(std::count(types.begin(), types.end(), std::string("layer")), 1);
  // Per-thread detail rides every sample event.
  const metrics::JsonValue sample = metrics::parse_json(lines[1]);
  ASSERT_EQ(sample.at("type").str(), "sample");
  ASSERT_EQ(sample.at("threads").array.size(), 1u);
  EXPECT_EQ(sample.at("threads").array[0].at("updates").num(), 10.0);
  std::remove(path.c_str());
}

TEST(Sampler, WatchdogAbortTriggersTheRunsAbortToken) {
  ManualRig rig(1);
  rig.cfg.watchdog_stall_intervals = 3;
  rig.cfg.watchdog_action = WatchdogAction::Abort;
  Sampler sampler(rig.cfg, rig.diag);
  sampler.begin_run(rig.sources(1));

  // The thread never publishes: detection within exactly 3 intervals.
  sampler.sample_once(1'000'000);
  sampler.sample_once(2'000'000);
  EXPECT_EQ(sampler.stall_events(), 0);
  EXPECT_FALSE(rig.abort.triggered());
  sampler.sample_once(3'000'000);
  EXPECT_EQ(sampler.stall_events(), 1);
  EXPECT_TRUE(sampler.watchdog_aborted());
  EXPECT_TRUE(rig.abort.triggered());
  EXPECT_NE(rig.diag.str().find("stalled"), std::string::npos);
  EXPECT_NE(rig.diag.str().find("action: abort"), std::string::npos);
}

TEST(Sampler, ReportSectionDownsamplesWithoutAlteringValues) {
  ManualRig rig(1);
  Sampler sampler(rig.cfg, rig.diag);
  sampler.begin_run(rig.sources(1));
  for (int i = 1; i <= 50; ++i) {
    rig.meter.publish(0, static_cast<std::uint64_t>(i) * 100, 100, 0);
    sampler.sample_once(i * 1'000'000);
  }
  const metrics::TimeseriesSection sec = sampler.report_section(10);
  EXPECT_TRUE(sec.enabled);
  EXPECT_EQ(sec.samples, 50u);
  ASSERT_LE(sec.t_ms.size(), 10u);
  ASSERT_EQ(sec.series.size(), 5u);  // 1 thread x 2 + 3 run series
  EXPECT_DOUBLE_EQ(sec.t_ms.front(), 1.0);
  EXPECT_DOUBLE_EQ(sec.t_ms.back(), 50.0);
  const auto idx = TimeSeriesStore::downsample_indices(50, 10);
  ASSERT_EQ(sec.t_ms.size(), idx.size());
  const TimeSeriesStore* store = sampler.store();
  for (const metrics::TimeseriesSection::Series& s : sec.series) {
    ASSERT_EQ(s.values.size(), idx.size()) << s.name;
    // Every exported point is an original ring row, untouched.
    int series = -1;
    for (int k = 0; k < store->num_series(); ++k)
      if (store->series_name(k) == s.name) series = k;
    ASSERT_GE(series, 0) << s.name;
    for (std::size_t i = 0; i < idx.size(); ++i)
      EXPECT_DOUBLE_EQ(s.values[i], store->value_at(series, idx[i]));
  }
}

// --------------------------------------------------- real-run contracts

TEST(Sampler, CleanShortRunStaysSilentUnderTheWatchdog) {
  std::ostringstream beat_out, diag;
  prof::ProgressMeter meter(10.0, beat_out);
  Config cfg;
  cfg.interval_s = 0.002;
  cfg.label = "clean";
  cfg.watchdog_stall_intervals = 50;  // 100 ms of true silence to fire
  Sampler sampler(cfg, diag);
  meter.begin_run("clean", /*num_threads=*/2, /*total_updates=*/0);

  schemes::NuCatsScheme scheme;
  schemes::RunConfig rc;
  rc.num_threads = 2;
  rc.timesteps = 6;
  rc.boundary[2] = core::BoundaryKind::Dirichlet;
  rc.progress = &meter;
  rc.telemetry = &sampler;
  test::expect_matches_reference(scheme, Coord{20, 18, 16},
                                 core::StencilSpec::paper_3d7p(), rc);

  EXPECT_EQ(sampler.stall_events(), 0) << diag.str();
  EXPECT_FALSE(sampler.watchdog_aborted());
  // end_run always takes a closing sample, so even a sub-interval run
  // leaves a readable ring behind.
  EXPECT_GE(sampler.samples_taken(), 1u);
  const metrics::TimeseriesSection sec = sampler.report_section();
  EXPECT_TRUE(sec.enabled);
  EXPECT_EQ(sec.t_ms.size(), sec.series.front().values.size());
}

TEST(Sampler, UntelemeteredRunsSpawnNoSamplerThreads) {
  const std::uint64_t before = Sampler::threads_started();
  schemes::NuCatsScheme scheme;
  schemes::RunConfig rc;
  rc.num_threads = 2;
  rc.timesteps = 4;
  rc.boundary[2] = core::BoundaryKind::Dirichlet;
  test::expect_matches_reference(scheme, Coord{16, 12, 14},
                                 core::StencilSpec::paper_3d7p(), rc);
  // The off path constructs nothing: no Sampler, no thread, no writes.
  EXPECT_EQ(Sampler::threads_started(), before);
}

TEST(Sampler, ParseEnabledIsCaseInsensitiveAndStrict) {
  EXPECT_TRUE(telemetry::parse_telemetry_enabled("ON"));
  EXPECT_FALSE(telemetry::parse_telemetry_enabled("Off"));
  EXPECT_THROW(telemetry::parse_telemetry_enabled("maybe"), Error);
}

}  // namespace
}  // namespace nustencil
