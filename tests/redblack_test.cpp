// In-place red-black Gauss-Seidel: correctness against a brute-force
// implementation, parallel/serial equivalence, smoothing behaviour vs
// Jacobi, and precondition checks.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/redblack.hpp"
#include "core/reference.hpp"
#include "schemes/redblack_smoother.hpp"

namespace nustencil {
namespace {

using core::Color;
using core::RedBlackExecutor;

/// Brute-force red-black sweep on a copy of the data (3D, order 1).
void brute_force_iteration(std::vector<double>& u, const Coord& shape,
                           const core::StencilSpec& st) {
  const Index nx = shape[0], ny = shape[1], nz = shape[2];
  const auto& c = st.coeffs();
  auto at = [&](Index x, Index y, Index z) -> double& {
    return u[static_cast<std::size_t>(pmod(x, nx) + nx * (pmod(y, ny) + ny * pmod(z, nz)))];
  };
  for (int color = 0; color < 2; ++color)
    for (Index z = 0; z < nz; ++z)
      for (Index y = 0; y < ny; ++y)
        for (Index x = 0; x < nx; ++x) {
          if ((x + y + z) % 2 != color) continue;
          at(x, y, z) = c[0] * at(x, y, z) + c[1] * at(x - 1, y, z) +
                        c[2] * at(x + 1, y, z) + c[3] * at(x, y - 1, z) +
                        c[4] * at(x, y + 1, z) + c[5] * at(x, y, z - 1) +
                        c[6] * at(x, y, z + 1);
        }
}

TEST(RedBlack, MatchesBruteForce) {
  const Coord shape{8, 6, 4};
  const auto st = core::StencilSpec::paper_3d7p();
  core::Field field(shape);
  core::Problem seed_problem(shape, st);
  seed_problem.initialize();
  std::vector<double> expect(seed_problem.buffer(0).data(),
                             seed_problem.buffer(0).data() + field.volume());
  for (Index i = 0; i < field.volume(); ++i) field.data()[i] = expect[static_cast<std::size_t>(i)];

  for (int it = 0; it < 3; ++it) brute_force_iteration(expect, shape, st);
  core::redblack_run(field, st, 3);
  for (Index i = 0; i < field.volume(); ++i)
    EXPECT_NEAR(field.data()[i], expect[static_cast<std::size_t>(i)], 1e-14);
}

TEST(RedBlack, HalfSweepOnlyTouchesOneColor) {
  const Coord shape{6, 4, 4};
  const auto st = core::StencilSpec::paper_3d7p();
  core::Field field(shape);
  for (Index i = 0; i < field.volume(); ++i) field.data()[i] = 1.0 + static_cast<double>(i);
  const std::vector<double> before(field.data(), field.data() + field.volume());

  RedBlackExecutor exec(field, st);
  core::Box whole;
  whole.lo = Coord{0, 0, 0};
  whole.hi = shape;
  const Index reds = exec.update_box(whole, Color::Red);
  EXPECT_EQ(reds, field.volume() / 2);
  for (Index z = 0; z < 4; ++z)
    for (Index y = 0; y < 4; ++y)
      for (Index x = 0; x < 6; ++x) {
        const Index i = x + 6 * (y + 4 * z);
        if ((x + y + z) % 2 == 1) {
          EXPECT_EQ(field.data()[i], before[static_cast<std::size_t>(i)])
              << "black cell must be untouched by the red half-sweep";
        }
      }
}

TEST(RedBlack, ParallelMatchesSerial) {
  const Coord shape{16, 12, 8};
  const auto st = core::StencilSpec::paper_3d7p();

  core::Field serial(shape);
  core::Problem seed_problem(shape, st);
  seed_problem.initialize();
  for (Index i = 0; i < serial.volume(); ++i)
    serial.data()[i] = seed_problem.buffer(0).data()[i];
  core::redblack_run(serial, st, 5);

  core::Field parallel(shape);
  const auto result = schemes::run_redblack_smoother(parallel, st, 5, 4);
  EXPECT_EQ(result.updates, shape.product() * 5);
  for (Index i = 0; i < serial.volume(); ++i)
    EXPECT_NEAR(parallel.data()[i], serial.data()[i], 1e-14);
}

TEST(RedBlack, SmoothsFasterThanJacobi) {
  // The classic result: Gauss-Seidel damps error about twice as fast as
  // Jacobi for diffusion-type stencils.
  const Coord shape{16, 16, 16};
  const auto st = core::StencilSpec::paper_3d7p();
  const long sweeps = 12;

  core::Problem jacobi(shape, st);
  jacobi.initialize();
  core::reference_run(jacobi, sweeps);

  core::Field gs(shape);
  for (Index i = 0; i < gs.volume(); ++i) gs.data()[i] = jacobi.buffer(0).data()[i];
  // careful: buffer(0) was overwritten by reference_run for even steps;
  // re-initialise from a fresh problem instead.
  core::Problem fresh(shape, st);
  fresh.initialize();
  for (Index i = 0; i < gs.volume(); ++i) gs.data()[i] = fresh.buffer(0).data()[i];
  core::redblack_run(gs, st, sweeps);

  auto rms = [](const double* data, Index n) {
    double mean = 0.0;
    for (Index i = 0; i < n; ++i) mean += data[i];
    mean /= static_cast<double>(n);
    double sq = 0.0;
    for (Index i = 0; i < n; ++i) sq += (data[i] - mean) * (data[i] - mean);
    return std::sqrt(sq / static_cast<double>(n));
  };
  const double jac = rms(jacobi.buffer(sweeps).data(), shape.product());
  const double rb = rms(gs.data(), shape.product());
  EXPECT_LT(rb, jac * 0.9) << "red-black GS must damp error faster than Jacobi";
}

TEST(RedBlack, MeasuredLocalityHighAcrossSockets) {
  const auto machine = topology::xeonX7550();
  core::Field field(Coord{32, 32, 32});
  const auto result = schemes::run_redblack_smoother(
      field, core::StencilSpec::paper_3d7p(), 4, 16, &machine);
  EXPECT_GT(result.locality, 0.9);
}

TEST(RedBlack, PreconditionsEnforced) {
  core::Field odd(Coord{7, 6, 6});
  core::Field ok(Coord{8, 6, 6});
  const auto st1 = core::StencilSpec::paper_3d7p();
  EXPECT_THROW(RedBlackExecutor(odd, st1), Error);
  // Order 2 needs 3 colours: extents must divide by 3.
  EXPECT_THROW(RedBlackExecutor(ok, core::StencilSpec::stable_star(3, 2)), Error);
  core::Field div3(Coord{9, 6, 6});
  EXPECT_NO_THROW(RedBlackExecutor(div3, core::StencilSpec::stable_star(3, 2)));
  EXPECT_THROW(RedBlackExecutor(ok, core::StencilSpec::banded_star(3, 1)), Error);
  EXPECT_NO_THROW(RedBlackExecutor(ok, st1));
}

TEST(MultiColor, NoSameColorReads) {
  // For order s, colour (x+y+z) mod (s+1): every tap must change colour.
  for (int s = 1; s <= 4; ++s) {
    const auto st = core::StencilSpec::stable_star(3, s);
    for (const auto& pt : st.points()) {
      if (pt.dim < 0) continue;
      EXPECT_NE(pmod(pt.offset, s + 1), 0)
          << "tap offset " << pt.offset << " keeps colour at s=" << s;
    }
  }
}

TEST(MultiColor, Order2MatchesBruteForce) {
  const Coord shape{9, 6, 6};
  const auto st = core::StencilSpec::stable_star(3, 2);
  core::Field field(shape);
  core::Problem seed_problem(shape, st);
  seed_problem.initialize();
  std::vector<double> expect(seed_problem.buffer(0).data(),
                             seed_problem.buffer(0).data() + field.volume());
  for (Index i = 0; i < field.volume(); ++i)
    field.data()[i] = expect[static_cast<std::size_t>(i)];

  // Brute force: 3-colour Gauss-Seidel with the canonical tap order.
  const auto& pts = st.points();
  const auto& c = st.coeffs();
  auto idx = [&](Index x, Index y, Index z) {
    return static_cast<std::size_t>(pmod(x, 9) + 9 * (pmod(y, 6) + 6 * pmod(z, 6)));
  };
  for (int it = 0; it < 2; ++it)
    for (int color = 0; color < 3; ++color)
      for (Index z = 0; z < 6; ++z)
        for (Index y = 0; y < 6; ++y)
          for (Index x = 0; x < 9; ++x) {
            if (pmod(x + y + z, 3) != color) continue;
            double acc = 0.0;
            for (std::size_t k = 0; k < pts.size(); ++k) {
              Index xx = x, yy = y, zz = z;
              if (pts[k].dim == 0) xx += pts[k].offset;
              if (pts[k].dim == 1) yy += pts[k].offset;
              if (pts[k].dim == 2) zz += pts[k].offset;
              acc += c[k] * expect[idx(xx, yy, zz)];
            }
            expect[idx(x, y, z)] = acc;
          }

  core::redblack_run(field, st, 2);
  for (Index i = 0; i < field.volume(); ++i)
    EXPECT_NEAR(field.data()[i], expect[static_cast<std::size_t>(i)], 1e-14);
}

TEST(MultiColor, ParallelMatchesSerialOrder2) {
  const Coord shape{12, 9, 6};
  const auto st = core::StencilSpec::stable_star(3, 2);
  core::Field serial(shape);
  core::Problem seed(shape, st);
  seed.initialize();
  for (Index i = 0; i < serial.volume(); ++i) serial.data()[i] = seed.buffer(0).data()[i];
  core::redblack_run(serial, st, 4);

  core::Field parallel(shape);
  const auto result = schemes::run_redblack_smoother(parallel, st, 4, 3);
  EXPECT_EQ(result.updates, shape.product() * 4);
  for (Index i = 0; i < serial.volume(); ++i)
    EXPECT_NEAR(parallel.data()[i], serial.data()[i], 1e-14);
}

TEST(RedBlackSmoother, TracedRunRecordsFillSweepsAndBarriers) {
  const Coord shape{12, 10, 8};
  const auto st = core::StencilSpec::paper_3d7p();
  const int threads = 2;
  const long iterations = 3;
  core::Field field(shape);
  trace::Trace trace;
  const auto result = schemes::run_redblack_smoother(field, st, iterations, threads,
                                                     nullptr, 42, &trace);
  ASSERT_TRUE(result.phases.enabled);
  ASSERT_EQ(result.phases.threads.size(), static_cast<std::size_t>(threads));
  std::uint64_t barrier_spans = 0;
  for (int tid = 0; tid < threads; ++tid) {
    const trace::ThreadRecorder* rec = trace.thread(tid);
    // One first-touch fill span, one tile span per half-sweep.
    EXPECT_EQ(rec->span_count(trace::Phase::Init), 1u) << "tid " << tid;
    EXPECT_EQ(rec->span_count(trace::Phase::Tile),
              static_cast<std::uint64_t>(2 * iterations))
        << "tid " << tid;
    barrier_spans += rec->span_count(trace::Phase::BarrierWait);
  }
  // participants-1 wait spans per barrier round (one round per half-sweep).
  EXPECT_EQ(barrier_spans,
            static_cast<std::uint64_t>(2 * iterations) * (threads - 1));
}

}  // namespace
}  // namespace nustencil
