// Machine description files: parsing, validation, errors.
#include <gtest/gtest.h>

#include <sstream>

#include "topology/machine_file.hpp"

namespace nustencil::topology {
namespace {

const char* kValid = R"(
# a two-socket example machine
name = EPYC 2S
sockets = 2
cores_per_socket = 32
ghz = 2.0
cache = L1 32768 1 64 8 2000
cache = L2 524288 1 64 8 1200
cache = L3 67108864 8 64 16 900
sys_bw_gbs = 290
peak_dp_gflops = 1024
remote_penalty = 1.8
scaling = 1:1 2:1.9 8:6.5 32:18 64:29
)";

MachineSpec parse(const std::string& text) {
  std::istringstream in(text);
  return parse_machine(in, "test");
}

TEST(MachineFile, ParsesValidDescription) {
  const MachineSpec m = parse(kValid);
  EXPECT_EQ(m.name, "EPYC 2S");
  EXPECT_EQ(m.cores(), 64);
  EXPECT_EQ(m.numa_nodes(), 2);
  EXPECT_EQ(m.caches.size(), 3u);
  EXPECT_EQ(m.caches[2].shared_by_cores, 8);
  EXPECT_DOUBLE_EQ(m.sys_bw_gbs, 290.0);
  EXPECT_DOUBLE_EQ(m.remote_penalty, 1.8);
  EXPECT_DOUBLE_EQ(m.sys_bw_scaling.factor(64), 29.0);
  EXPECT_NEAR(m.sys_bw_at(64), 290.0, 1e-9);
}

TEST(MachineFile, CommentsAndBlankLinesIgnored) {
  const MachineSpec m = parse(std::string(kValid) + "\n\n# trailing comment\n");
  EXPECT_EQ(m.cores(), 64);
}

TEST(MachineFile, DefaultScalingWhenOmitted) {
  std::string text = kValid;
  text.erase(text.find("scaling"));
  const MachineSpec m = parse(text);
  EXPECT_FALSE(m.sys_bw_scaling.anchors.empty());
  EXPECT_GT(m.sys_bw_scaling.factor(m.cores()), 1.0);
}

TEST(MachineFile, MissingRequiredKeysThrow) {
  for (const std::string key : {"name", "cache", "sys_bw_gbs", "peak_dp_gflops"}) {
    std::string text;
    std::istringstream in(kValid);
    std::string line;
    while (std::getline(in, line))
      if (line.find(key) != 0) text += line + "\n";
    EXPECT_THROW(parse(text), Error) << key;
  }
}

TEST(MachineFile, MalformedLinesThrowWithLineNumbers) {
  try {
    parse("name = x\nbogus line without equals\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("test:2"), std::string::npos);
  }
  EXPECT_THROW(parse(std::string(kValid) + "unknown_key = 3\n"), Error);
  EXPECT_THROW(parse(std::string(kValid) + "cache = L4 only three args\n"), Error);
  EXPECT_THROW(parse(std::string(kValid) + "scaling = nocolon\n"), Error);
}

TEST(MachineFile, NonMonotoneScalingThrows) {
  std::string text = kValid;
  text.replace(text.find("scaling = 1:1 2:1.9 8:6.5 32:18 64:29"),
               std::string("scaling = 1:1 2:1.9 8:6.5 32:18 64:29").size(),
               "scaling = 8:6.5 2:1.9");
  EXPECT_THROW(parse(text), Error);
}

TEST(MachineFile, LoadMachineMissingFileThrows) {
  EXPECT_THROW(load_machine("/no/such/machine.conf"), Error);
}

TEST(MachineFile, RoundTripsThroughTheModel) {
  // A parsed machine must be directly usable by the perf model paths.
  const MachineSpec m = parse(kValid);
  EXPECT_GT(m.cache_bw_per_core(2), 0.0);
  EXPECT_EQ(m.active_sockets(33), 2);
  EXPECT_GT(m.node_controller_bw(), 0.0);
}

}  // namespace
}  // namespace nustencil::topology
