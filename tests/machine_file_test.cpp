// Machine description files: parsing, validation, errors, and the
// committed machines/*.conf files staying in sync with the built-ins.
#include <gtest/gtest.h>

#include <sstream>

#include "topology/machine.hpp"
#include "topology/machine_file.hpp"

namespace nustencil::topology {
namespace {

const char* kValid = R"(
# a two-socket example machine
name = EPYC 2S
sockets = 2
cores_per_socket = 32
ghz = 2.0
cache = L1 32768 1 64 8 2000
cache = L2 524288 1 64 8 1200
cache = L3 67108864 8 64 16 900
sys_bw_gbs = 290
peak_dp_gflops = 1024
remote_penalty = 1.8
scaling = 1:1 2:1.9 8:6.5 32:18 64:29
)";

MachineSpec parse(const std::string& text) {
  std::istringstream in(text);
  return parse_machine(in, "test");
}

TEST(MachineFile, ParsesValidDescription) {
  const MachineSpec m = parse(kValid);
  EXPECT_EQ(m.name, "EPYC 2S");
  EXPECT_EQ(m.cores(), 64);
  EXPECT_EQ(m.numa_nodes(), 2);
  EXPECT_EQ(m.caches.size(), 3u);
  EXPECT_EQ(m.caches[2].shared_by_cores, 8);
  EXPECT_DOUBLE_EQ(m.sys_bw_gbs, 290.0);
  EXPECT_DOUBLE_EQ(m.remote_penalty, 1.8);
  EXPECT_DOUBLE_EQ(m.sys_bw_scaling.factor(64), 29.0);
  EXPECT_NEAR(m.sys_bw_at(64), 290.0, 1e-9);
}

TEST(MachineFile, CommentsAndBlankLinesIgnored) {
  const MachineSpec m = parse(std::string(kValid) + "\n\n# trailing comment\n");
  EXPECT_EQ(m.cores(), 64);
}

TEST(MachineFile, DefaultScalingWhenOmitted) {
  std::string text = kValid;
  text.erase(text.find("scaling"));
  const MachineSpec m = parse(text);
  EXPECT_FALSE(m.sys_bw_scaling.anchors.empty());
  EXPECT_GT(m.sys_bw_scaling.factor(m.cores()), 1.0);
}

TEST(MachineFile, MissingRequiredKeysThrow) {
  for (const std::string key : {"name", "cache", "sys_bw_gbs", "peak_dp_gflops"}) {
    std::string text;
    std::istringstream in(kValid);
    std::string line;
    while (std::getline(in, line))
      if (line.find(key) != 0) text += line + "\n";
    EXPECT_THROW(parse(text), Error) << key;
  }
}

TEST(MachineFile, MalformedLinesThrowWithLineNumbers) {
  try {
    parse("name = x\nbogus line without equals\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("test:2"), std::string::npos);
  }
  EXPECT_THROW(parse(std::string(kValid) + "unknown_key = 3\n"), Error);
  EXPECT_THROW(parse(std::string(kValid) + "cache = L4 only three args\n"), Error);
  EXPECT_THROW(parse(std::string(kValid) + "scaling = nocolon\n"), Error);
}

TEST(MachineFile, NonMonotoneScalingThrows) {
  std::string text = kValid;
  text.replace(text.find("scaling = 1:1 2:1.9 8:6.5 32:18 64:29"),
               std::string("scaling = 1:1 2:1.9 8:6.5 32:18 64:29").size(),
               "scaling = 8:6.5 2:1.9");
  EXPECT_THROW(parse(text), Error);
}

TEST(MachineFile, LoadMachineMissingFileThrows) {
  EXPECT_THROW(load_machine("/no/such/machine.conf"), Error);
}

TEST(MachineFile, RoundTripsThroughTheModel) {
  // A parsed machine must be directly usable by the perf model paths.
  const MachineSpec m = parse(kValid);
  EXPECT_GT(m.cache_bw_per_core(2), 0.0);
  EXPECT_EQ(m.active_sockets(33), 2);
  EXPECT_GT(m.node_controller_bw(), 0.0);
}

// The committed Table I description files must keep matching the
// built-in specs the figure harness uses, field by field.
void expect_matches_builtin(const std::string& file, const MachineSpec& want) {
  const MachineSpec got =
      load_machine(std::string(NUSTENCIL_MACHINES_DIR) + "/" + file);
  EXPECT_EQ(got.name, want.name);
  EXPECT_EQ(got.sockets, want.sockets);
  EXPECT_EQ(got.cores_per_socket, want.cores_per_socket);
  EXPECT_DOUBLE_EQ(got.ghz, want.ghz);
  EXPECT_DOUBLE_EQ(got.sys_bw_gbs, want.sys_bw_gbs);
  EXPECT_DOUBLE_EQ(got.peak_dp_gflops, want.peak_dp_gflops);
  EXPECT_DOUBLE_EQ(got.remote_penalty, want.remote_penalty);
  ASSERT_EQ(got.caches.size(), want.caches.size());
  for (std::size_t i = 0; i < want.caches.size(); ++i) {
    SCOPED_TRACE(want.caches[i].name);
    EXPECT_EQ(got.caches[i].name, want.caches[i].name);
    EXPECT_EQ(got.caches[i].size_bytes, want.caches[i].size_bytes);
    EXPECT_EQ(got.caches[i].shared_by_cores, want.caches[i].shared_by_cores);
    EXPECT_EQ(got.caches[i].line_bytes, want.caches[i].line_bytes);
    EXPECT_EQ(got.caches[i].associativity, want.caches[i].associativity);
    EXPECT_DOUBLE_EQ(got.caches[i].aggregate_bw_gbs,
                     want.caches[i].aggregate_bw_gbs);
  }
  ASSERT_EQ(got.sys_bw_scaling.anchors.size(),
            want.sys_bw_scaling.anchors.size());
  for (std::size_t i = 0; i < want.sys_bw_scaling.anchors.size(); ++i) {
    EXPECT_EQ(got.sys_bw_scaling.anchors[i].first,
              want.sys_bw_scaling.anchors[i].first);
    EXPECT_DOUBLE_EQ(got.sys_bw_scaling.anchors[i].second,
                     want.sys_bw_scaling.anchors[i].second);
  }
}

TEST(MachineFile, XeonConfMatchesBuiltin) {
  expect_matches_builtin("xeon-x7550-4s.conf", xeonX7550());
}

TEST(MachineFile, OpteronConfMatchesBuiltin) {
  expect_matches_builtin("opteron-8222-8s.conf", opteron8222());
}

}  // namespace
}  // namespace nustencil::topology
