// Space-time tile geometry: skewed intervals, cuts, and the recursive
// decomposition's coverage and ordering invariants.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/spacetime.hpp"

namespace nustencil::core {
namespace {

SpaceTimeTile tile_1d(Index lo, Index hi, int slope, Index t0, Index t1) {
  SpaceTimeTile t;
  t.rank = 1;
  t.t0 = t0;
  t.t1 = t1;
  t.dims[0] = SkewedInterval{lo, hi, slope, slope};
  return t;
}

TEST(SkewedInterval, Evaluation) {
  SkewedInterval iv{10, 20, -1, -1};
  EXPECT_EQ(iv.lo_at(0), 10);
  EXPECT_EQ(iv.lo_at(3), 7);
  EXPECT_EQ(iv.hi_at(3), 17);
  EXPECT_EQ(iv.width_at(3), 10);
  EXPECT_TRUE(iv.parallel());
}

TEST(SpaceTimeTile, BoxAtAndVolume) {
  const SpaceTimeTile t = tile_1d(0, 10, -1, 0, 4);
  EXPECT_EQ(t.box_at(0).lo[0], 0);
  EXPECT_EQ(t.box_at(3).lo[0], -3);
  EXPECT_EQ(t.box_at(3).hi[0], 7);
  EXPECT_EQ(t.volume(), 40);  // width 10 at each of 4 steps
}

TEST(SpaceTimeTile, TimeCutRebasesUpperTile) {
  const SpaceTimeTile t = tile_1d(0, 10, -2, 0, 6);
  const auto [lower, upper] = t.time_cut(2);
  EXPECT_EQ(lower.t1, 2);
  EXPECT_EQ(upper.t0, 2);
  EXPECT_EQ(upper.dims[0].lo, -4);  // rebased: lo + slope*2
  // The boxes at the cut seam line up.
  EXPECT_EQ(lower.box_at(1).lo[0], upper.box_at(2).lo[0] + 2);
}

TEST(SpaceTimeTile, SpaceCutPartitions) {
  const SpaceTimeTile t = tile_1d(0, 10, -1, 0, 3);
  const auto [left, right] = t.space_cut(0, 4);
  for (Index dt = 0; dt < 3; ++dt) {
    EXPECT_EQ(left.box_at(dt).hi[0], right.box_at(dt).lo[0]);
    EXPECT_EQ(left.box_at(dt).lo[0], t.box_at(dt).lo[0]);
    EXPECT_EQ(right.box_at(dt).hi[0], t.box_at(dt).hi[0]);
  }
}

TEST(SpaceTimeTile, InvalidCutsThrow) {
  SpaceTimeTile t = tile_1d(0, 10, -1, 0, 4);
  EXPECT_THROW(t.time_cut(0), Error);
  EXPECT_THROW(t.time_cut(4), Error);
  EXPECT_THROW(t.space_cut(0, 0), Error);
  t.dims[0].slope_lo = 1;  // trapezoid: space cut undefined here
  EXPECT_THROW(t.space_cut(0, 5), Error);
}

class DecompositionProperty : public ::testing::TestWithParam<std::tuple<Index, Index, int>> {};

TEST_P(DecompositionProperty, BasesPartitionTheRootExactly) {
  const auto [width, steps, slope] = GetParam();
  SpaceTimeTile root = tile_1d(0, width, slope, 0, steps);
  BaseSizes sizes;
  sizes.time = 4;
  sizes.space = {8, 8, 8};
  std::vector<SpaceTimeTile> bases;
  decompose_parallelogram(root, sizes, bases);

  // Every space-time point of the root is covered by exactly one base.
  std::map<std::pair<Index, Index>, int> cover;
  for (const auto& b : bases)
    for (Index t = b.t0; t < b.t1; ++t) {
      const Box box = b.box_at(t);
      for (Index x = box.lo[0]; x < box.hi[0]; ++x) ++cover[{t, x}];
    }
  EXPECT_EQ(static_cast<Index>(cover.size()), root.volume());
  for (const auto& [pt, count] : cover) EXPECT_EQ(count, 1) << "t=" << pt.first;
}

TEST_P(DecompositionProperty, OrderRespectsDependencies) {
  const auto [width, steps, slope] = GetParam();
  if (slope > 0) GTEST_SKIP() << "dependency order is defined for left skew";
  SpaceTimeTile root = tile_1d(0, width, slope, 0, steps);
  BaseSizes sizes;
  sizes.time = 4;
  sizes.space = {8, 8, 8};
  std::vector<SpaceTimeTile> bases;
  decompose_parallelogram(root, sizes, bases);

  // Emulate execution: each point (x, t) requires (x-s..x+s, t-1) points of
  // the root to be done.  Walk bases in order and check.
  const int s = -slope;
  std::map<std::pair<Index, Index>, bool> done;
  for (const auto& b : bases)
    for (Index t = b.t0; t < b.t1; ++t) {
      const Box box = b.box_at(t);
      for (Index x = box.lo[0]; x < box.hi[0]; ++x) {
        if (t > 0) {
          for (Index k = -s; k <= s; ++k) {
            // Only inputs inside the root matter (the rest comes from
            // neighbouring thread parallelograms).
            const Index lo = root.dims[0].lo_at(t - 1), hi = root.dims[0].hi_at(t - 1);
            if (x + k >= lo && x + k < hi) {
              EXPECT_TRUE((done[{t - 1, x + k}]))
                  << "point (" << x << "," << t << ") ran before its input";
            }
          }
        }
        done[{t, x}] = true;
      }
    }
}

TEST_P(DecompositionProperty, BasesRespectSizeBounds) {
  const auto [width, steps, slope] = GetParam();
  SpaceTimeTile root = tile_1d(0, width, slope, 0, steps);
  BaseSizes sizes;
  sizes.time = 4;
  sizes.space = {8, 8, 8};
  std::vector<SpaceTimeTile> bases;
  decompose_parallelogram(root, sizes, bases);
  for (const auto& b : bases) {
    EXPECT_LE(b.timesteps(), sizes.time);
    EXPECT_LE(b.dims[0].hi - b.dims[0].lo, sizes.space[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecompositionProperty,
    ::testing::Values(std::make_tuple<Index, Index, int>(16, 8, -1),
                      std::make_tuple<Index, Index, int>(33, 7, -1),
                      std::make_tuple<Index, Index, int>(64, 16, -2),
                      std::make_tuple<Index, Index, int>(21, 5, -3),
                      std::make_tuple<Index, Index, int>(16, 8, 1),
                      std::make_tuple<Index, Index, int>(40, 12, 2),
                      std::make_tuple<Index, Index, int>(7, 3, -1),
                      std::make_tuple<Index, Index, int>(128, 32, -1)));

TEST(Decomposition, TimeBandsAlignAcrossTranslatedRoots) {
  // The deadlock-freedom of nuCORALS' local synchronisation relies on all
  // thread tiles sharing the same time-band structure (time is cut first).
  BaseSizes sizes;
  std::vector<SpaceTimeTile> a, b;
  decompose_parallelogram(tile_1d(0, 40, -1, 0, 30), sizes, a);
  decompose_parallelogram(tile_1d(13, 52, -1, 0, 30), sizes, b);  // width 39
  std::set<std::pair<Index, Index>> bands_a, bands_b;
  for (const auto& t : a) bands_a.insert({t.t0, t.t1});
  for (const auto& t : b) bands_b.insert({t.t0, t.t1});
  EXPECT_EQ(bands_a, bands_b);
}

}  // namespace
}  // namespace nustencil::core
