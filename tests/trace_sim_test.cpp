// Trace-driven cache simulation of real scheme executions: the paper's
// core claim — temporal blocking moves far less memory traffic per update
// than a naive sweep — demonstrated *empirically* on the simulated cache
// hierarchy, not just via the analytic model.
#include <gtest/gtest.h>

#include "cachesim/shared.hpp"
#include "core/reference.hpp"
#include "schemes/scheme.hpp"

namespace nustencil {
namespace {

/// A machine whose caches sit far below the test domain but still well
/// above one base parallelogram (32 KiB), mirroring the paper-scale
/// proportions: domain/LLC ~ 8x, base/LLC ~ 1/8 — a 40^3 problem (1 MiB
/// per buffer) then behaves like 500^3 against a real L2/L3.
topology::MachineSpec toy_machine() {
  topology::MachineSpec m = topology::opteron8222();
  m.caches = {
      {"L1", 32 * 1024, 1, 64, 2, 600.0},
      {"L2", 256 * 1024, 1, 64, 8, 200.0},
  };
  return m;
}

/// Runs `scheme` with the trace-driven simulator attached and returns the
/// simulated memory traffic in doubles per update.
double simulated_mem_doubles(const std::string& name, Index edge, long steps,
                             int threads) {
  const topology::MachineSpec machine = toy_machine();
  cachesim::SharedHierarchy sim(machine, threads);
  const auto scheme = schemes::make_scheme(name);
  schemes::RunConfig cfg;
  cfg.num_threads = threads;
  cfg.timesteps = steps;
  cfg.cache_sim = &sim;
  if (name == "CATS" || name == "nuCATS")
    cfg.boundary[2] = core::BoundaryKind::Dirichlet;
  core::Problem problem(Coord{edge, edge, edge}, core::StencilSpec::paper_3d7p());
  const auto result = scheme->run(problem, cfg);
  return static_cast<double>(sim.traffic().memory_bytes(sim.line_bytes())) /
         static_cast<double>(result.updates) / 8.0;
}

TEST(TraceSim, TemporalBlockingMovesLessMemoryThanNaive) {
  const double naive = simulated_mem_doubles("NaiveSSE", 40, 12, 2);
  const double nucorals = simulated_mem_doubles("nuCORALS", 40, 12, 2);
  const double nucats = simulated_mem_doubles("nuCATS", 40, 12, 2);
  // Naive re-streams both buffers every step (>= ~2 doubles/update); the
  // temporal blockers must show clear reuse across steps.
  EXPECT_GT(naive, 1.5);
  EXPECT_LT(nucorals, 0.75 * naive);
  EXPECT_LT(nucats, 0.75 * naive);
}

TEST(TraceSim, TemporalBlockersBeatTheIdealCachingBound) {
  // Being below 2 doubles/update means beating SysBandIC — the signature
  // the paper uses in Section IV-D ("transfer on average less than 2
  // doubles from main memory per stencil update").
  EXPECT_LT(simulated_mem_doubles("nuCORALS", 40, 16, 2), 2.0);
  EXPECT_LT(simulated_mem_doubles("nuCATS", 40, 16, 2), 2.0);
}

TEST(TraceSim, BandedTrafficExceedsConstant) {
  const topology::MachineSpec machine = toy_machine();
  cachesim::SharedHierarchy sim_c(machine, 1), sim_b(machine, 1);
  for (const bool banded : {false, true}) {
    schemes::RunConfig cfg;
    cfg.num_threads = 1;
    cfg.timesteps = 6;
    cfg.cache_sim = banded ? &sim_b : &sim_c;
    const auto st = banded ? core::StencilSpec::banded_star(3, 1)
                           : core::StencilSpec::paper_3d7p();
    core::Problem problem(Coord{24, 24, 24}, st);
    schemes::make_scheme("nuCORALS")->run(problem, cfg);
  }
  EXPECT_GT(sim_b.traffic().memory_bytes(64), 2 * sim_c.traffic().memory_bytes(64))
      << "streaming 7 coefficient bands must dominate the banded traffic";
}

TEST(TraceSim, SimulationDoesNotPerturbResults) {
  // Attaching the simulator must not change a single output value.
  const topology::MachineSpec machine = toy_machine();
  cachesim::SharedHierarchy sim(machine, 2);
  schemes::RunConfig with, without;
  with.num_threads = without.num_threads = 2;
  with.timesteps = without.timesteps = 5;
  with.cache_sim = &sim;
  core::Problem a(Coord{16, 14, 12}, core::StencilSpec::paper_3d7p());
  core::Problem b(Coord{16, 14, 12}, core::StencilSpec::paper_3d7p());
  schemes::make_scheme("nuCORALS")->run(a, with);
  schemes::make_scheme("nuCORALS")->run(b, without);
  EXPECT_DOUBLE_EQ(core::max_rel_diff(a.buffer(5), b.buffer(5)), 0.0);
}

}  // namespace
}  // namespace nustencil
